#!/bin/sh
# End-to-end smoke for the HTTP front door: boot a real cmd/gateway
# process on a free port, require 200 on an authenticated search, 401
# without a token, 403 for a non-admin on the admin route, and a clean
# exit-0 drain on SIGTERM. Uses only go + standard POSIX tools.
set -eu

workdir="$(mktemp -d)"
logfile="$workdir/gateway.log"
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/gateway" ./cmd/gateway
"$workdir/gateway" -addr 127.0.0.1:0 \
    -tokens "dev::::admin,reader:::" >"$logfile" 2>&1 &
pid=$!

# The banner prints the bound address once listening.
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's|.*serving on http://\([^ ]*\).*|\1|p' "$logfile")"
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "gateway died:"; cat "$logfile"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "gateway never printed its address:"; cat "$logfile"; exit 1; }

fetch_status() {
    # fetch_status <expected> <curl args...>
    expect="$1"; shift
    status="$(curl -s -o /dev/null -w '%{http_code}' "$@")"
    if [ "$status" != "$expect" ]; then
        echo "smoke: got $status, want $expect for: $*"
        cat "$logfile"
        exit 1
    fi
}

fetch_status 200 -X POST -H "Authorization: Bearer dev" \
    -H "X-Budget-Ms: 5000" -d '{"query":"vintage cars"}' "http://$addr/v1/search"
fetch_status 401 -X POST -d '{"query":"vintage cars"}' "http://$addr/v1/search"
fetch_status 403 -H "Authorization: Bearer reader" "http://$addr/v1/admin/stats"
fetch_status 200 -H "Authorization: Bearer dev" "http://$addr/v1/admin/stats"

# The search response must actually carry experts JSON.
body="$(curl -s -X POST -H "Authorization: Bearer dev" \
    -d '{"query":"vintage cars"}' "http://$addr/v1/search")"
case "$body" in
    *'"experts":'*) ;;
    *) echo "smoke: search body lacks experts: $body"; exit 1 ;;
esac

kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "smoke: gateway did not drain"; cat "$logfile"; exit 1; }
    sleep 0.1
done
wait "$pid" || { echo "smoke: gateway exited non-zero"; cat "$logfile"; exit 1; }
grep -q "drained, bye" "$logfile" || { echo "smoke: drain not narrated"; cat "$logfile"; exit 1; }
trap 'rm -rf "$workdir"' EXIT
echo "smoke-gateway: ok (addr $addr)"
