GO ?= go

.PHONY: all build test race vet bench cover cover-check check docs-check bench-shard bench-remote bench-replica bench-gateway bench-disk bench-json fuzz-smoke run-gateway smoke-gateway

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The serving layer, the online detectors, the streaming index, the
# disk tier, the sharded router, the wire transport, the replica sets
# and the metrics registry are the concurrent surfaces; hammer them
# with the race detector enabled.
race:
	$(GO) test -race ./internal/serve ./internal/core ./internal/expertise ./internal/querylog ./internal/ingest ./internal/diskseg ./internal/shard ./internal/transport ./internal/replica ./internal/obs ./internal/gateway

vet:
	$(GO) vet ./...

# Documentation gate (see BENCHMARKS.md and ARCHITECTURE.md): formatting
# is canonical, vet is clean, and every exported symbol of the flagship
# query-path packages carries a doc comment.
docs-check: vet
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$fmtout"; exit 1; fi
	$(GO) run ./cmd/docscheck ./internal/shard ./internal/core ./internal/transport ./internal/replica ./internal/obs ./internal/gateway ./internal/diskseg

# Hot-path and serving benchmarks; `make bench BENCH=.` runs everything
# in the root package. Streaming benchmarks live in internal/ingest,
# sharded scatter-gather benchmarks in internal/shard, loopback wire
# benchmarks in internal/transport; BENCHMARKS.md maps each name to the
# paper table or serving claim it backs.
BENCH ?= Table9|ServeQPS|OnlineSearch
bench:
	$(GO) test -bench '$(BENCH)' -benchmem -run '^$$' .

bench-ingest:
	$(GO) test -bench 'Ingest|LiveSearch' -benchmem -run '^$$' ./internal/ingest

bench-shard:
	$(GO) test -bench 'Sharded|EpochVector|Reshard' -benchmem -run '^$$' ./internal/shard

bench-remote:
	$(GO) test -bench 'Remote|WireSearchCodec' -benchmem -run '^$$' ./internal/transport

bench-replica:
	$(GO) test -bench 'Replicated|Failover' -benchmem -run '^$$' ./internal/replica

bench-gateway:
	$(GO) test -bench 'Gateway' -benchmem -run '^$$' ./internal/gateway

# Disk-tier benchmarks: spilled-index search latency (hot and
# cache-disabled) against the in-heap LiveSearch rows, plus the
# per-segment spill rewrite and the diskseg micro-benches.
bench-disk:
	$(GO) test -bench 'Disk' -benchmem -run '^$$' ./internal/ingest ./internal/diskseg

# Machine-readable benchmark snapshot: runs every per-layer bench suite
# and converts the output to benchstat-compatible JSON via
# cmd/benchjson. BENCHN names the PR the snapshot belongs to, so
# successive PRs leave comparable BENCH_<n>.json files behind.
BENCHN ?= 10
bench-json:
	@{ $(GO) test -bench 'Table9|ServeQPS|OnlineSearch' -benchmem -run '^$$' . ; \
	   $(GO) test -bench 'Ingest|LiveSearch' -benchmem -run '^$$' ./internal/ingest ; \
	   $(GO) test -bench 'Disk' -benchmem -run '^$$' ./internal/ingest ./internal/diskseg ; \
	   $(GO) test -bench 'Sharded|EpochVector|Reshard' -benchmem -run '^$$' ./internal/shard ; \
	   $(GO) test -bench 'Remote|WireSearchCodec' -benchmem -run '^$$' ./internal/transport ; \
	   $(GO) test -bench 'Replicated|Failover' -benchmem -run '^$$' ./internal/replica ; \
	   $(GO) test -bench 'Gateway' -benchmem -run '^$$' ./internal/gateway ; \
	   $(GO) test -bench 'Obs' -benchmem -run '^$$' ./internal/obs ; } \
	 | tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_$(BENCHN).json

# A brief native-fuzz pass over the wire codec (FuzzDecodeFrame): every
# op's payload decoder — including the PR 6 OpSearchStats composite,
# OpSubscribe/OpEpochDelta acks, the OpDeflate envelope and the PR 8
# resharding extensions (filtered OpTweets handoff pages, the
# expectation-carrying OpInfo) — must never panic or over-allocate on
# adversarial input, and every successful decode must round-trip.
# Raise FUZZTIME for longer local hunts.
FUZZTIME ?= 15s
fuzz-smoke:
	$(GO) test ./internal/transport -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime $(FUZZTIME)

# Coverage over the library packages, with a one-line total summary.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# CI-enforced coverage floor: the total must not sink below 80%.
COVER_FLOOR ?= 80.0
cover-check: cover
	@total=$$($(GO) tool cover -func=coverage.out | tail -n 1 | awk '{gsub("%","",$$3); print $$3}'); \
	awk -v t="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { \
		if (t+0 < floor+0) { printf "coverage %.1f%% is below the %.1f%% floor\n", t, floor; exit 1 } \
		else { printf "coverage %.1f%% (floor %.1f%%)\n", t, floor } }'

# Run the HTTP front door locally: 2 in-process shards, a dev admin
# token, the admin plane on :8081. Ctrl-C drains and exits 0.
run-gateway:
	$(GO) run ./cmd/gateway -addr 127.0.0.1:8080 -admin 127.0.0.1:8081

# Boot a real gateway process on a free port, drive one authenticated
# search, one 401 and a clean SIGTERM drain through it, fail on any
# wrong status. Wired into CI as the end-to-end front-door smoke.
smoke-gateway: build
	./scripts/smoke_gateway.sh

check: build vet test race docs-check cover-check smoke-gateway
