GO ?= go

.PHONY: all build test race vet bench cover check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The serving layer, the online detectors and the streaming index are
# the concurrent surfaces; hammer them with the race detector enabled.
race:
	$(GO) test -race ./internal/serve ./internal/core ./internal/expertise ./internal/querylog ./internal/ingest

vet:
	$(GO) vet ./...

# Hot-path and serving benchmarks; `make bench BENCH=.` runs everything
# in the root package. Streaming benchmarks live in internal/ingest.
BENCH ?= Table9|ServeQPS|OnlineSearch
bench:
	$(GO) test -bench '$(BENCH)' -benchmem -run '^$$' .

bench-ingest:
	$(GO) test -bench 'Ingest|LiveSearch' -benchmem -run '^$$' ./internal/ingest

# Coverage over the library packages, with a one-line total summary.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

check: build vet test race
