GO ?= go

.PHONY: all build test race vet bench check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The serving layer and the online detector are the concurrent
# surfaces; hammer them with the race detector enabled.
race:
	$(GO) test -race ./internal/serve ./internal/core ./internal/expertise ./internal/querylog

vet:
	$(GO) vet ./...

# Hot-path and serving benchmarks; `make bench BENCH=.` runs everything.
BENCH ?= Table9|ServeQPS|OnlineSearch
bench:
	$(GO) test -bench '$(BENCH)' -benchmem -run '^$$' .

check: build vet test race
