GO ?= go

.PHONY: all build test race vet bench cover check docs-check bench-shard

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The serving layer, the online detectors, the streaming index and the
# sharded router are the concurrent surfaces; hammer them with the race
# detector enabled.
race:
	$(GO) test -race ./internal/serve ./internal/core ./internal/expertise ./internal/querylog ./internal/ingest ./internal/shard

vet:
	$(GO) vet ./...

# Documentation gate (see BENCHMARKS.md and ARCHITECTURE.md): formatting
# is canonical, vet is clean, and every exported symbol of the flagship
# query-path packages carries a doc comment.
docs-check: vet
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$fmtout"; exit 1; fi
	$(GO) run ./cmd/docscheck ./internal/shard ./internal/core

# Hot-path and serving benchmarks; `make bench BENCH=.` runs everything
# in the root package. Streaming benchmarks live in internal/ingest,
# sharded scatter-gather benchmarks in internal/shard; BENCHMARKS.md
# maps each name to the paper table or serving claim it backs.
BENCH ?= Table9|ServeQPS|OnlineSearch
bench:
	$(GO) test -bench '$(BENCH)' -benchmem -run '^$$' .

bench-ingest:
	$(GO) test -bench 'Ingest|LiveSearch' -benchmem -run '^$$' ./internal/ingest

bench-shard:
	$(GO) test -bench 'Sharded|EpochVector' -benchmem -run '^$$' ./internal/shard

# Coverage over the library packages, with a one-line total summary.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

check: build vet test race docs-check
