package microblog

import (
	"testing"

	"repro/internal/world"
)

// streamPosts draws n posts from a fresh deterministic stream.
func streamPosts(w *world.World, seed uint64, n int) []Post {
	s := NewPostStream(w, DefaultStreamConfig(seed))
	posts := make([]Post, n)
	for i := range posts {
		posts[i] = s.Next()
	}
	return posts
}

// corporaIdentical fails the test unless the two corpora hold the same
// tweets, postings and per-user counters.
func corporaIdentical(t *testing.T, got, want *Corpus) {
	t.Helper()
	if got.NumTweets() != want.NumTweets() {
		t.Fatalf("tweet counts differ: %d vs %d", got.NumTweets(), want.NumTweets())
	}
	tokens := map[string]bool{}
	for i := 0; i < want.NumTweets(); i++ {
		g, w := got.Tweet(TweetID(i)), want.Tweet(TweetID(i))
		if g.ID != w.ID || g.Author != w.Author || g.Text != w.Text ||
			g.RetweetCount != w.RetweetCount || g.Topic != w.Topic ||
			len(g.Mentions) != len(w.Mentions) || len(g.Terms) != len(w.Terms) {
			t.Fatalf("tweet %d differs:\n  got  %+v\n  want %+v", i, g, w)
		}
		for _, tok := range w.Terms {
			tokens[tok] = true
		}
	}
	for tok := range tokens {
		g, w := got.Postings(tok), want.Postings(tok)
		if len(g) != len(w) {
			t.Fatalf("postings %q: %d ids vs %d", tok, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("postings %q[%d]: %d vs %d", tok, i, g[i], w[i])
			}
		}
	}
	for u := 0; u < want.NumUsers(); u++ {
		id := world.UserID(u)
		if got.NumTweetsBy(id) != want.NumTweetsBy(id) ||
			got.NumMentionsOf(id) != want.NumMentionsOf(id) ||
			got.NumRetweetsOf(id) != want.NumRetweetsOf(id) {
			t.Fatalf("user %d counters differ", u)
		}
	}
}

// TestIncrementalBatchesMatchConcatenated is the property underpinning
// sealing and compaction: a corpus grown from K incremental batches
// must be indistinguishable — postings, counters, tweets — from one
// built over the concatenated batch.
func TestIncrementalBatchesMatchConcatenated(t *testing.T) {
	w := world.Build(world.TinyConfig())
	for _, k := range []int{1, 2, 5, 9} {
		posts := streamPosts(w, 101, 240)
		want := BuildCorpus(w, posts)

		per := (len(posts) + k - 1) / k
		var got *Corpus
		for off := 0; off < len(posts); off += per {
			end := min(off+per, len(posts))
			if got == nil {
				got = BuildCorpus(w, posts[:end])
			} else {
				got = got.ExtendedWith(posts[off:end])
			}
		}
		corporaIdentical(t, got, want)
	}
}

// TestFromTweetsReindexesConcatenation checks the compaction primitive:
// re-indexing the concatenation of two corpora's tweets equals building
// over the concatenated posts directly.
func TestFromTweetsReindexesConcatenation(t *testing.T) {
	w := world.Build(world.TinyConfig())
	posts := streamPosts(w, 202, 180)
	a := BuildCorpus(w, posts[:70])
	b := BuildCorpus(w, posts[70:])
	all := append(append([]Tweet(nil), a.Tweets()...), b.Tweets()...)
	corporaIdentical(t, FromTweets(w, all), BuildCorpus(w, posts))
}

// TestExtendedWithLeavesOriginalUntouched guards the immutability the
// snapshot machinery relies on.
func TestExtendedWithLeavesOriginalUntouched(t *testing.T) {
	w := world.Build(world.TinyConfig())
	posts := streamPosts(w, 303, 120)
	base := BuildCorpus(w, posts[:60])
	n, by := base.NumTweets(), base.NumTweetsBy(posts[0].Author)
	ext := base.ExtendedWith(posts[60:])
	if base.NumTweets() != n || base.NumTweetsBy(posts[0].Author) != by {
		t.Fatal("ExtendedWith mutated the receiver")
	}
	if ext.NumTweets() != len(posts) {
		t.Fatalf("extended corpus has %d tweets, want %d", ext.NumTweets(), len(posts))
	}
}

// TestPostStreamDeterministic pins the stream's determinism in its seed.
func TestPostStreamDeterministic(t *testing.T) {
	w := world.Build(world.TinyConfig())
	a := streamPosts(w, 7, 80)
	b := streamPosts(w, 7, 80)
	for i := range a {
		if a[i].Author != b[i].Author || a[i].Text != b[i].Text {
			t.Fatalf("post %d diverged between identical seeds", i)
		}
	}
	// MakeTweet enforces the 140-rune cap Generate applies.
	long := MakeTweet(Post{Author: 0, Text: longText(200)})
	if got := len([]rune(long.Text)); got > 140 {
		t.Fatalf("MakeTweet left %d runes, cap is 140", got)
	}
}

func longText(n int) string {
	b := make([]rune, n)
	for i := range b {
		b[i] = 'x'
	}
	return string(b)
}
