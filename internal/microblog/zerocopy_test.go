package microblog

import (
	"strings"
	"testing"

	"repro/internal/textutil"
	"repro/internal/world"
	"repro/internal/xrand"
)

// naiveMatch is the brute-force matching oracle: scan every tweet and
// apply the paper's AND predicate directly.
func naiveMatch(c *Corpus, query string) []TweetID {
	tokens := textutil.Tokenize(query)
	if len(tokens) == 0 {
		return nil
	}
	var out []TweetID
	for i := 0; i < c.NumTweets(); i++ {
		if textutil.ContainsAll(c.Tweet(TweetID(i)).Terms, tokens) {
			out = append(out, TweetID(i))
		}
	}
	return out
}

func sameIDs(a, b []TweetID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomQueries draws query strings of 1-3 tokens from the corpus's
// actual vocabulary (plus a sprinkling of unknown tokens), so both the
// hit and miss paths of the matcher are exercised.
func randomQueries(c *Corpus, rng *xrand.RNG, n int) []string {
	vocab := make([]string, 0, 256)
	seen := map[string]bool{}
	for i := 0; i < c.NumTweets(); i++ {
		for _, tok := range c.Tweet(TweetID(i)).Terms {
			if !seen[tok] {
				seen[tok] = true
				vocab = append(vocab, tok)
			}
		}
	}
	queries := make([]string, 0, n)
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(3)
		parts := make([]string, 0, k)
		for j := 0; j < k; j++ {
			if rng.Bool(0.05) {
				parts = append(parts, "zzz-no-such-token")
			} else {
				parts = append(parts, vocab[rng.Intn(len(vocab))])
			}
		}
		queries = append(queries, strings.Join(parts, " "))
	}
	return queries
}

// TestMatchEqualsNaiveOnRandomCorpora is the zero-copy property test:
// over randomized corpora and random queries, the galloping
// buffer-reusing matcher must return exactly what a full corpus scan
// returns.
func TestMatchEqualsNaiveOnRandomCorpora(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		cfg := TinyGenConfig()
		cfg.Seed = seed
		c := Generate(world.Build(world.TinyConfig()), cfg)
		rng := xrand.New(seed * 1000)
		var buf []TweetID
		for _, q := range randomQueries(c, rng, 200) {
			want := naiveMatch(c, q)
			got := c.Match(q)
			if !sameIDs(got, want) {
				t.Fatalf("seed %d query %q: Match=%v want %v", seed, q, got, want)
			}
			if len(want) == 0 && got != nil {
				t.Fatalf("seed %d query %q: Match returned non-nil %v for no match", seed, q, got)
			}
			buf = c.MatchAppend(q, buf)
			if !sameIDs(buf, want) {
				t.Fatalf("seed %d query %q: MatchAppend=%v want %v", seed, q, buf, want)
			}
		}
	}
}

// TestMatchDoesNotAliasIndex guards the one copy the zero-copy API must
// keep: single-token matches hand back a private slice, never the
// index-owned posting list.
func TestMatchDoesNotAliasIndex(t *testing.T) {
	c := tinyCorpus(t)
	var token string
	for i := 0; i < c.NumTweets() && token == ""; i++ {
		if terms := c.Tweet(TweetID(i)).Terms; len(terms) > 0 {
			token = terms[0]
		}
	}
	if token == "" {
		t.Fatal("no tokens in corpus")
	}
	got := c.Match(token)
	if len(got) == 0 {
		t.Fatalf("token %q should match", token)
	}
	postings := c.Postings(token)
	if !sameIDs(got, postings) {
		t.Fatalf("Match(%q)=%v differs from Postings=%v", token, got, postings)
	}
	got[0] = -999
	if c.Postings(token)[0] == -999 {
		t.Fatal("Match result aliases the index")
	}
}

func TestPostingsSortedAndComplete(t *testing.T) {
	c := tinyCorpus(t)
	counts := map[string]int{}
	for i := 0; i < c.NumTweets(); i++ {
		seen := map[string]bool{}
		for _, tok := range c.Tweet(TweetID(i)).Terms {
			if !seen[tok] {
				seen[tok] = true
				counts[tok]++
			}
		}
	}
	for tok, want := range counts {
		p := c.Postings(tok)
		if len(p) != want {
			t.Fatalf("token %q: %d postings, want %d", tok, len(p), want)
		}
		for i := 1; i < len(p); i++ {
			if p[i-1] >= p[i] {
				t.Fatalf("token %q: postings not strictly ascending at %d", tok, i)
			}
		}
	}
	if c.Postings("zzz-no-such-token") != nil {
		t.Fatal("unknown token should have nil postings")
	}
}

// refIntersect is the textbook linear intersection used as the oracle
// for IntersectInto.
func refIntersect(a, b []TweetID) []TweetID {
	var out []TweetID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func randomSortedIDs(rng *xrand.RNG, n, space int) []TweetID {
	seen := map[TweetID]bool{}
	for len(seen) < n {
		seen[TweetID(rng.Intn(space))] = true
	}
	out := make([]TweetID, 0, n)
	for id := 0; id < space && len(out) < n; id++ {
		if seen[TweetID(id)] {
			out = append(out, TweetID(id))
		}
	}
	return out
}

// TestIntersectIntoEqualsReference drives both the linear and the
// galloping branch (size skews from 1:1 up to 1:1000) and the in-place
// aliasing modes against the textbook intersection.
func TestIntersectIntoEqualsReference(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 300; trial++ {
		na := 1 + rng.Intn(40)
		nb := 1 + rng.Intn(40)
		if rng.Bool(0.5) {
			nb = na * (16 + rng.Intn(60)) // force the gallop branch
		}
		space := 2 * (na + nb + rng.Intn(1000))
		a := randomSortedIDs(rng, na, space)
		b := randomSortedIDs(rng, nb, space)
		want := refIntersect(a, b)

		got := IntersectInto(nil, a, b)
		if !sameIDs(got, want) {
			t.Fatalf("trial %d: IntersectInto=%v want %v (a=%v b=%v)", trial, got, want, a, b)
		}
		// dst aliasing a, then dst aliasing b — both must stay correct.
		aCopy := append([]TweetID(nil), a...)
		if got := IntersectInto(aCopy, aCopy, b); !sameIDs(got, want) {
			t.Fatalf("trial %d: in-place (dst=a) %v want %v", trial, got, want)
		}
		bCopy := append([]TweetID(nil), b...)
		if got := IntersectInto(bCopy, a, bCopy); !sameIDs(got, want) {
			t.Fatalf("trial %d: in-place (dst=b) %v want %v", trial, got, want)
		}
	}
	if got := IntersectInto(nil, nil, []TweetID{1, 2}); len(got) != 0 {
		t.Fatalf("empty input should intersect empty, got %v", got)
	}
}
