// Package microblog synthesizes and indexes the tweet corpus that
// replaces the paper's Twitter data. Posts are generated from the same
// world.World as the query log, so search-behaviour semantics and
// microblog authorship share one latent topic structure.
//
// The generator deliberately recreates the recall problem that motivates
// e#: posts are capped at 140 characters and each topical post uses only
// one (occasionally two) of its topic's keywords, drawn by the keyword's
// TweetRate. Keywords that are searched often but tweeted rarely — the
// "west coast football" case from the paper's introduction — therefore
// match almost no posts, and a detector restricted to the literal query
// misses the topic's experts.
package microblog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/textutil"
	"repro/internal/world"
	"repro/internal/xrand"
)

// TweetID identifies a tweet within a corpus.
type TweetID int32

// Tweet is one microblog post.
type Tweet struct {
	ID     TweetID
	Author world.UserID
	// Text is the rendered post, at most 140 runes.
	Text string
	// Terms is the tokenized, lower-cased text.
	Terms []string
	// Mentions lists the users @-mentioned in the post.
	Mentions []world.UserID
	// RetweetCount is how many times the post was retweeted.
	RetweetCount int
	// Topic is the latent topic the post is about (-1 for chatter).
	// It is generator ground truth, invisible to the detectors.
	Topic world.TopicID
}

// GenConfig controls corpus generation.
type GenConfig struct {
	Seed uint64
	// TweetsPerExpert is the mean post count of an influence-1 expert.
	TweetsPerExpert float64
	// TweetsPerCasual and TweetsPerSpammer are mean post counts.
	TweetsPerCasual  float64
	TweetsPerSpammer float64
	// OffTopicRate is the chance an expert post is generic chatter.
	OffTopicRate float64
	// SecondKeywordRate is the chance a topical post carries a second
	// keyword of the same topic (bounded by the 140-char limit).
	SecondKeywordRate float64
	// MentionRate is the chance a topical expert post triggers a fan
	// post mentioning the expert.
	MentionRate float64
	// RetweetBoost scales retweet counts of topical posts.
	RetweetBoost float64
}

// DefaultGenConfig returns corpus defaults for the default world.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed:              11,
		TweetsPerExpert:   60,
		TweetsPerCasual:   10,
		TweetsPerSpammer:  40,
		OffTopicRate:      0.2,
		SecondKeywordRate: 0.2,
		MentionRate:       0.25,
		RetweetBoost:      3,
	}
}

// TinyGenConfig returns a miniature configuration for unit tests.
func TinyGenConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.TweetsPerExpert = 40
	cfg.TweetsPerCasual = 6
	cfg.TweetsPerSpammer = 20
	return cfg
}

// Corpus is the indexed tweet collection.
type Corpus struct {
	w      *world.World
	tweets []Tweet

	// termIndex maps each token to the sorted tweets containing it.
	termIndex map[string][]TweetID

	tweetsBy   []int // posts per user
	mentionsOf []int // mentions received per user
	retweetsOf []int // retweets received per user
}

// World returns the generating world (the evaluation oracle).
func (c *Corpus) World() *world.World { return c.w }

// NumTweets returns the number of posts.
func (c *Corpus) NumTweets() int { return len(c.tweets) }

// Tweet returns the post with the given id.
func (c *Corpus) Tweet(id TweetID) *Tweet { return &c.tweets[id] }

// NumTweetsBy returns how many posts the user authored.
func (c *Corpus) NumTweetsBy(u world.UserID) int { return c.tweetsBy[u] }

// NumMentionsOf returns how many posts mention the user.
func (c *Corpus) NumMentionsOf(u world.UserID) int { return c.mentionsOf[u] }

// NumRetweetsOf returns the total retweets the user's posts received.
func (c *Corpus) NumRetweetsOf(u world.UserID) int { return c.retweetsOf[u] }

// NumUsers returns the number of users in the generating world.
func (c *Corpus) NumUsers() int { return len(c.tweetsBy) }

// Postings returns the index-owned posting list for a single token:
// the ids of all posts containing it, sorted ascending. The returned
// slice aliases the index — callers must treat it as read-only. A nil
// result means the token occurs in no post.
func (c *Corpus) Postings(token string) []TweetID { return c.termIndex[token] }

// Match returns the ids of all posts containing every token of the
// query after lower-casing — the paper's default matching predicate.
// Results are sorted ascending; nil means no match (or an empty query).
// The returned slice is freshly allocated; allocation-sensitive callers
// should use MatchAppend with a reused buffer instead.
func (c *Corpus) Match(query string) []TweetID {
	out := c.MatchAppend(query, nil)
	if len(out) == 0 {
		return nil
	}
	return out
}

// MatchAppend is the zero-copy core of Match: it writes the matching
// tweet ids into buf (reusing its capacity, discarding its contents)
// and returns the filled buffer. It allocates only when buf is too
// small to hold the result.
func (c *Corpus) MatchAppend(query string, buf []TweetID) []TweetID {
	tokens := textutil.Tokenize(query)
	if len(tokens) == 0 {
		return buf[:0]
	}
	if len(tokens) == 1 {
		// Single token: the posting list is index-owned, so hand the
		// caller a copy written into their buffer.
		return append(buf[:0], c.termIndex[tokens[0]]...)
	}
	postings := make([][]TweetID, len(tokens))
	for i, tok := range tokens {
		p, ok := c.termIndex[tok]
		if !ok {
			return buf[:0]
		}
		postings[i] = p
	}
	// Intersect starting from the rarest token: every later pass can
	// only shrink the running result.
	sort.Slice(postings, func(i, j int) bool { return len(postings[i]) < len(postings[j]) })
	buf = IntersectInto(buf, postings[0], postings[1])
	for _, p := range postings[2:] {
		if len(buf) == 0 {
			return buf
		}
		buf = IntersectInto(buf, buf, p)
	}
	return buf
}

// gallopFrom returns the smallest index i >= lo with b[i] >= target,
// probing exponentially before binary-searching the bracketed range.
func gallopFrom(b []TweetID, lo int, target TweetID) int {
	bound := 1
	for lo+bound < len(b) && b[lo+bound] < target {
		bound <<= 1
	}
	hi := lo + bound
	if hi > len(b) {
		hi = len(b)
	}
	lo += bound >> 1
	// Binary search in (lo, hi].
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// IntersectInto writes the intersection of two ascending-sorted lists
// into dst (reusing its capacity, discarding its contents) and returns
// the filled buffer. When one list is much longer than the other it
// gallops through the long list with exponential + binary search
// instead of scanning linearly.
//
// dst may alias a or b: output position k is only written after at
// least k+1 elements of each input have been consumed, so writes never
// clobber unread input.
func IntersectInto(dst, a, b []TweetID) []TweetID {
	dst = dst[:0]
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= 16*len(a) {
		// Gallop: for each element of the short list, leap to its
		// position in the long one.
		j := 0
		for _, v := range a {
			j = gallopFrom(b, j, v)
			if j == len(b) {
				break
			}
			if b[j] == v {
				dst = append(dst, v)
				j++
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// fillerWords pad posts with realistic chatter. They are chosen to be
// disjoint from every anchor-topic keyword token so they never create
// accidental query matches.
var fillerWords = []string{
	"really", "totally", "honestly", "vibes", "lol", "omg", "wow",
	"pretty", "kinda", "super", "definitely", "finally", "tonight",
	"yesterday", "weekend", "morning", "coffee", "friends", "family",
	"mood", "energy", "thoughts", "feeling", "excited", "amazing",
}

// Generate builds a corpus from the world. Generation is deterministic
// in cfg.Seed.
func Generate(w *world.World, cfg GenConfig) *Corpus {
	rng := xrand.New(cfg.Seed)
	c := &Corpus{
		w:          w,
		termIndex:  map[string][]TweetID{},
		tweetsBy:   make([]int, len(w.Users)),
		mentionsOf: make([]int, len(w.Users)),
		retweetsOf: make([]int, len(w.Users)),
	}

	// Per-topic keyword samplers weighted by TweetRate: this is where
	// search popularity and tweet usage deliberately diverge.
	kwSamplers := make([]*xrand.Weighted, len(w.Topics))
	for i := range w.Topics {
		kws := w.Topics[i].Keywords
		weights := make([]float64, len(kws))
		for j := range kws {
			weights[j] = kws[j].TweetRate + 1e-6
		}
		kwSamplers[i] = xrand.NewWeighted(rng.Split(), weights)
	}

	// Casual users double as the fan pool for mention posts.
	var casuals []world.UserID
	for i := range w.Users {
		if w.Users[i].Kind == world.CasualUser {
			casuals = append(casuals, w.Users[i].ID)
		}
	}

	// Spammers chase trending topics: their keyword stuffing follows
	// the topics' actual microblog activity, so dead (navigational)
	// topics attract no spam and stay genuinely unanswerable.
	spamWeights := make([]float64, len(w.Topics))
	for i := range w.Topics {
		spamWeights[i] = w.Topics[i].TweetPop*w.Topics[i].TweetActivity + 1e-9
	}
	spamTopics := xrand.NewWeighted(rng.Split(), spamWeights)

	for i := range w.Users {
		u := &w.Users[i]
		switch u.Kind {
		case world.ExpertUser, world.NewsUser:
			mean := cfg.TweetsPerExpert * (0.3 + u.Influence)
			n := rng.Poisson(mean)
			for k := 0; k < n; k++ {
				if rng.Bool(cfg.OffTopicRate) || len(u.Topics) == 0 {
					c.addChatter(u.ID, rng)
					continue
				}
				topic := u.Topics[rng.Intn(len(u.Topics))]
				// Navigational topics (mapquest-style) are searched but
				// not tweeted: their would-be topical posts degrade to
				// chatter, leaving the query unanswerable by any detector.
				if !rng.Bool(w.Topic(topic).TweetActivity) {
					c.addChatter(u.ID, rng)
					continue
				}
				id := c.addTopical(u.ID, topic, kwSamplers[topic], rng, cfg)
				// Fans mention productive experts in topical posts.
				if rng.Bool(cfg.MentionRate*u.Influence*2) && len(casuals) > 0 {
					fan := casuals[rng.Intn(len(casuals))]
					c.addMentionPost(fan, u.ID, topic, kwSamplers[topic], rng)
				}
				_ = id
			}
		case world.CasualUser:
			n := rng.Poisson(cfg.TweetsPerCasual)
			for k := 0; k < n; k++ {
				c.addChatter(u.ID, rng)
			}
		case world.SpamUser:
			n := rng.Poisson(cfg.TweetsPerSpammer)
			for k := 0; k < n; k++ {
				// Keyword stuffing: a trending topic's head keyword plus bait.
				topic := world.TopicID(spamTopics.Draw())
				kw := w.Topic(topic).Keywords[0].Text
				text := "free prizes " + kw + " click here " + fillerWords[rng.Intn(len(fillerWords))]
				c.append(u.ID, text, nil, 0, -1)
			}
		}
	}
	c.buildIndex()
	return c
}

// addTopical emits one on-topic post for the author.
func (c *Corpus) addTopical(author world.UserID, topic world.TopicID,
	kws *xrand.Weighted, rng *xrand.RNG, cfg GenConfig) TweetID {

	t := c.w.Topic(topic)
	kw := t.Keywords[kws.Draw()].Text
	var b strings.Builder
	b.WriteString(fillerWords[rng.Intn(len(fillerWords))])
	b.WriteByte(' ')
	b.WriteString(kw)
	if rng.Bool(cfg.SecondKeywordRate) {
		second := t.Keywords[kws.Draw()].Text
		if second != kw {
			b.WriteByte(' ')
			b.WriteString(second)
		}
	}
	b.WriteByte(' ')
	b.WriteString(fillerWords[rng.Intn(len(fillerWords))])

	retweets := rng.Poisson(cfg.RetweetBoost * c.w.User(author).Influence * 2)
	return c.append(author, b.String(), nil, retweets, topic)
}

// addMentionPost emits a fan post that @-mentions an expert together
// with a topical keyword, feeding the expert's mention-impact feature.
func (c *Corpus) addMentionPost(fan, expert world.UserID, topic world.TopicID,
	kws *xrand.Weighted, rng *xrand.RNG) {

	t := c.w.Topic(topic)
	kw := t.Keywords[kws.Draw()].Text
	text := fmt.Sprintf("@%s great takes on %s %s",
		c.w.User(expert).ScreenName, kw, fillerWords[rng.Intn(len(fillerWords))])
	c.append(fan, text, []world.UserID{expert}, rng.Poisson(0.2), topic)
}

// addChatter emits a generic off-topic post; occasionally it mentions
// another random user, giving mention denominators realistic mass.
func (c *Corpus) addChatter(author world.UserID, rng *xrand.RNG) {
	var b strings.Builder
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(fillerWords[rng.Intn(len(fillerWords))])
	}
	var mentions []world.UserID
	if rng.Bool(0.08) {
		other := world.UserID(rng.Intn(len(c.w.Users)))
		if other != author {
			b.WriteString(" @")
			b.WriteString(c.w.User(other).ScreenName)
			mentions = append(mentions, other)
		}
	}
	c.append(author, b.String(), mentions, rng.Poisson(0.05), -1)
}

// append finalizes one post: truncates to 140 runes, tokenizes, and
// updates the per-user counters.
func (c *Corpus) append(author world.UserID, text string, mentions []world.UserID, retweets int, topic world.TopicID) TweetID {
	return c.appendTweet(MakeTweet(Post{
		Author:       author,
		Text:         text,
		Mentions:     mentions,
		RetweetCount: retweets,
		Topic:        topic,
	}))
}

// appendTweet appends an already-rendered tweet, reassigning its ID to
// the corpus-local position and updating the per-user counters. The
// Terms slice is shared, not re-tokenized.
func (c *Corpus) appendTweet(tw Tweet) TweetID {
	tw.ID = TweetID(len(c.tweets))
	c.tweets = append(c.tweets, tw)
	c.tweetsBy[tw.Author]++
	for _, m := range tw.Mentions {
		c.mentionsOf[m]++
	}
	c.retweetsOf[tw.Author] += tw.RetweetCount
	return tw.ID
}

// buildIndex constructs the token -> tweet inverted index.
func (c *Corpus) buildIndex() {
	for i := range c.tweets {
		seen := map[string]bool{}
		for _, tok := range c.tweets[i].Terms {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			c.termIndex[tok] = append(c.termIndex[tok], c.tweets[i].ID)
		}
	}
	// Posting lists are already sorted because tweets are appended in id
	// order, but assert the invariant cheaply in debug-style.
	for _, p := range c.termIndex {
		if !sort.SliceIsSorted(p, func(i, j int) bool { return p[i] < p[j] }) {
			panic("microblog: posting list not sorted")
		}
	}
}
