// Posting-block codec: the delta-varint encoding the disk-tiered
// sealed-segment format (internal/diskseg) stores posting lists in.
// A posting list is split into fixed-size blocks; every block is
// independently decodable — the first id travels absolute, every later
// id as the positive delta to its predecessor — so a reader can skip
// straight to the block that covers a target id (the block directory
// carries each block's first id) and decode only what a query touches.
// The codec lives here, next to IntersectInto, because a decoded block
// is exactly the ascending []TweetID the galloping intersection
// consumes: decode straight off an mmap'd segment, feed the existing
// zero-copy matching path, no intermediate representation.
//
// The idiom (uvarints, deltas, decode guards that never trust a count
// past the bytes present) is the same one the expertise wire codec
// proved for the scatter-gather exchange rows.

package microblog

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PostingsBlockLen is the number of tweet ids per posting block — the
// granularity of block-directory skips and of the hot-block cache.
const PostingsBlockLen = 128

// ErrBlockCorrupt reports a posting block that ends mid-varint, breaks
// the ascending-id invariant, or overflows TweetID.
var ErrBlockCorrupt = errors.New("microblog: corrupt posting block")

// AppendPostingsBlock appends one independently decodable block to buf:
// ids[0] absolute, every later id as the uvarint delta to its
// predecessor. ids must be ascending and strictly deduplicated, as
// posting lists are by construction; the encoder panics otherwise
// rather than produce an undecodable block.
func AppendPostingsBlock(buf []byte, ids []TweetID) []byte {
	prev := int64(-1)
	for _, id := range ids {
		if int64(id) <= prev {
			panic("microblog: posting block ids not strictly ascending")
		}
		if prev < 0 {
			buf = binary.AppendUvarint(buf, uint64(id))
		} else {
			buf = binary.AppendUvarint(buf, uint64(int64(id)-prev))
		}
		prev = int64(id)
	}
	return buf
}

// DecodePostingsBlock decodes exactly n ids off the front of data,
// appending them to dst (capacity reused, contents discarded is the
// caller's choice — this appends), and returns the filled slice plus
// the remaining bytes. It never trusts the input: a block that ends
// early, encodes a zero delta, or walks an id past the TweetID range
// fails with ErrBlockCorrupt instead of producing a wrong posting.
func DecodePostingsBlock(dst []TweetID, data []byte, n int) ([]TweetID, []byte, error) {
	prev := int64(-1)
	for i := 0; i < n; i++ {
		v, k := binary.Uvarint(data)
		if k <= 0 {
			return dst, data, fmt.Errorf("posting %d/%d: %w", i, n, ErrBlockCorrupt)
		}
		data = data[k:]
		var id int64
		if prev < 0 {
			id = int64(v)
		} else {
			if v == 0 {
				return dst, data, fmt.Errorf("posting %d/%d: zero delta: %w", i, n, ErrBlockCorrupt)
			}
			id = prev + int64(v)
		}
		if id < 0 || id > int64(^uint32(0)>>1) {
			return dst, data, fmt.Errorf("posting %d/%d: id out of range: %w", i, n, ErrBlockCorrupt)
		}
		dst = append(dst, TweetID(id))
		prev = id
	}
	return dst, data, nil
}
