package microblog

import (
	"testing"
	"unicode/utf8"

	"repro/internal/textutil"
	"repro/internal/world"
)

func tinyCorpus(t testing.TB) *Corpus {
	t.Helper()
	w := world.Build(world.TinyConfig())
	return Generate(w, TinyGenConfig())
}

func TestGenerateDeterministic(t *testing.T) {
	w := world.Build(world.TinyConfig())
	a := Generate(w, TinyGenConfig())
	b := Generate(w, TinyGenConfig())
	if a.NumTweets() != b.NumTweets() {
		t.Fatalf("tweet counts differ: %d vs %d", a.NumTweets(), b.NumTweets())
	}
	for i := 0; i < a.NumTweets(); i++ {
		if a.Tweet(TweetID(i)).Text != b.Tweet(TweetID(i)).Text {
			t.Fatalf("tweet %d differs", i)
		}
	}
}

func TestTweetsRespect140Chars(t *testing.T) {
	c := tinyCorpus(t)
	for i := 0; i < c.NumTweets(); i++ {
		tw := c.Tweet(TweetID(i))
		if n := utf8.RuneCountInString(tw.Text); n > 140 {
			t.Fatalf("tweet %d has %d runes", i, n)
		}
		if tw.Text == "" {
			t.Fatalf("tweet %d empty", i)
		}
	}
}

func TestPerUserCountersConsistent(t *testing.T) {
	c := tinyCorpus(t)
	w := c.World()
	tweetsBy := make([]int, len(w.Users))
	mentionsOf := make([]int, len(w.Users))
	retweetsOf := make([]int, len(w.Users))
	for i := 0; i < c.NumTweets(); i++ {
		tw := c.Tweet(TweetID(i))
		tweetsBy[tw.Author]++
		retweetsOf[tw.Author] += tw.RetweetCount
		for _, m := range tw.Mentions {
			mentionsOf[m]++
		}
	}
	for u := range w.Users {
		uid := world.UserID(u)
		if c.NumTweetsBy(uid) != tweetsBy[u] {
			t.Fatalf("user %d NumTweetsBy=%d, recount=%d", u, c.NumTweetsBy(uid), tweetsBy[u])
		}
		if c.NumMentionsOf(uid) != mentionsOf[u] {
			t.Fatalf("user %d NumMentionsOf=%d, recount=%d", u, c.NumMentionsOf(uid), mentionsOf[u])
		}
		if c.NumRetweetsOf(uid) != retweetsOf[u] {
			t.Fatalf("user %d NumRetweetsOf=%d, recount=%d", u, c.NumRetweetsOf(uid), retweetsOf[u])
		}
	}
}

func TestMatchFindsAllAndOnlyMatches(t *testing.T) {
	c := tinyCorpus(t)
	query := "49ers"
	got := c.Match(query)
	want := map[TweetID]bool{}
	qTokens := textutil.Tokenize(query)
	for i := 0; i < c.NumTweets(); i++ {
		if textutil.ContainsAll(c.Tweet(TweetID(i)).Terms, qTokens) {
			want[TweetID(i)] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Match found %d tweets, brute force %d", len(got), len(want))
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("Match returned non-matching tweet %d: %q", id, c.Tweet(id).Text)
		}
	}
}

func TestMatchMultiTokenQuery(t *testing.T) {
	c := tinyCorpus(t)
	got := c.Match("49ers draft")
	qTokens := textutil.Tokenize("49ers draft")
	for _, id := range got {
		if !textutil.ContainsAll(c.Tweet(id).Terms, qTokens) {
			t.Fatalf("tweet %q does not contain all tokens", c.Tweet(id).Text)
		}
	}
}

func TestMatchEdgeCases(t *testing.T) {
	c := tinyCorpus(t)
	if c.Match("") != nil {
		t.Error("empty query matched")
	}
	if c.Match("zqzqzq never-used-token") != nil {
		t.Error("unknown token matched")
	}
}

func TestMatchSorted(t *testing.T) {
	c := tinyCorpus(t)
	ids := c.Match("49ers")
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("Match result not sorted")
		}
	}
}

func TestExpertsTweetTheirTopics(t *testing.T) {
	c := tinyCorpus(t)
	w := c.World()
	id49, _ := w.KeywordOwner("49ers")
	experts := w.ExpertsOn(id49)
	matched := c.Match("49ers")
	if len(matched) == 0 {
		t.Fatal("no tweets match 49ers")
	}
	byExpert := 0
	for _, tid := range matched {
		author := c.Tweet(tid).Author
		for _, e := range experts {
			if author == e {
				byExpert++
				break
			}
		}
	}
	if byExpert == 0 {
		t.Error("no 49ers tweets authored by 49ers experts")
	}
}

func TestRecallGapExists(t *testing.T) {
	// The motivating asymmetry: a high-search, low-tweet keyword must
	// match far fewer posts than the topic's head keyword.
	c := tinyCorpus(t)
	head := len(c.Match("49ers"))
	rare := len(c.Match("49ers schedule")) // TweetRate 0.01
	if head == 0 {
		t.Fatal("head keyword unmatched")
	}
	if rare*5 > head {
		t.Errorf("no recall gap: head=%d rare=%d", head, rare)
	}
}

func TestMentionsCarryTopicKeywords(t *testing.T) {
	c := tinyCorpus(t)
	found := false
	for i := 0; i < c.NumTweets() && !found; i++ {
		tw := c.Tweet(TweetID(i))
		if len(tw.Mentions) > 0 && tw.Topic >= 0 {
			found = true
			// The mention post must match at least one keyword of its topic.
			topic := c.World().Topic(tw.Topic)
			any := false
			for _, kw := range topic.Keywords {
				if textutil.ContainsAll(tw.Terms, textutil.Tokenize(kw.Text)) {
					any = true
					break
				}
			}
			if !any {
				t.Errorf("mention post %q carries no keyword of topic %q", tw.Text, topic.Name)
			}
		}
	}
	if !found {
		t.Error("no topical mention posts generated")
	}
}

func TestSpammersPostKeywordBait(t *testing.T) {
	c := tinyCorpus(t)
	w := c.World()
	spamPosts := 0
	for i := 0; i < c.NumTweets(); i++ {
		tw := c.Tweet(TweetID(i))
		if w.User(tw.Author).Kind == world.SpamUser {
			spamPosts++
		}
	}
	if spamPosts == 0 {
		t.Error("no spam posts generated")
	}
}

func TestNewsUsersProlific(t *testing.T) {
	c := tinyCorpus(t)
	w := c.World()
	var newsTotal, newsCount, casualTotal, casualCount int
	for i := range w.Users {
		switch w.Users[i].Kind {
		case world.NewsUser:
			newsTotal += c.NumTweetsBy(w.Users[i].ID)
			newsCount++
		case world.CasualUser:
			casualTotal += c.NumTweetsBy(w.Users[i].ID)
			casualCount++
		}
	}
	if newsCount == 0 || casualCount == 0 {
		t.Skip("population too small")
	}
	newsAvg := float64(newsTotal) / float64(newsCount)
	casualAvg := float64(casualTotal) / float64(casualCount)
	if newsAvg <= casualAvg {
		t.Errorf("news accounts (%.1f posts) not more prolific than casual (%.1f)", newsAvg, casualAvg)
	}
}

func BenchmarkMatch(b *testing.B) {
	c := tinyCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Match("49ers")
	}
}

func BenchmarkGenerate(b *testing.B) {
	w := world.Build(world.TinyConfig())
	cfg := TinyGenConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Generate(w, cfg)
	}
}
