// Live-corpus construction: the incremental entry points the streaming
// ingestion subsystem (internal/ingest) builds segments from. A frozen
// Corpus is still produced by Generate; the functions here construct
// the same indexed structure from explicit posts — one batch at a time
// (FromTweets, used when sealing and compacting segments) or as a cold
// rebuild over old-plus-new content (ExtendedWith, the reference the
// live index is checked against). PostStream generates an endless
// deterministic stream of live posts from the same world model, feeding
// load generators and the streaming demo.
package microblog

import (
	"repro/internal/textutil"
	"repro/internal/world"
	"repro/internal/xrand"
)

// Post is one raw incoming microblog post, before truncation and
// tokenization. It is the wire format of the live ingestion path.
type Post struct {
	Author world.UserID
	Text   string
	// Mentions lists the users @-mentioned in the post.
	Mentions []world.UserID
	// RetweetCount is how many times the post was retweeted.
	RetweetCount int
	// Topic is generator ground truth (-1 for chatter).
	Topic world.TopicID
}

// MakeTweet renders a post into an unindexed Tweet: the text is
// truncated to 140 runes and tokenized exactly as Generate does, so a
// post ingested live and the same post in a cold rebuild carry
// identical terms. The ID is left for the indexing corpus to assign.
func MakeTweet(p Post) Tweet {
	text := textutil.TruncateRunes(p.Text, 140)
	return Tweet{
		Author:       p.Author,
		Text:         text,
		Terms:        textutil.Tokenize(text),
		Mentions:     p.Mentions,
		RetweetCount: p.RetweetCount,
		Topic:        p.Topic,
	}
}

// newShell returns an empty corpus wired to w.
func newShell(w *world.World) *Corpus {
	return &Corpus{
		w:          w,
		termIndex:  map[string][]TweetID{},
		tweetsBy:   make([]int, len(w.Users)),
		mentionsOf: make([]int, len(w.Users)),
		retweetsOf: make([]int, len(w.Users)),
	}
}

// FromTweets indexes an explicit, already-rendered tweet sequence. IDs
// are reassigned to the position in the sequence; Terms slices are
// shared with the input, not re-tokenized. This is the segment
// constructor of the live index: sealing hands it the active tail, and
// compaction hands it the concatenation of adjacent segments' tweets.
func FromTweets(w *world.World, tweets []Tweet) *Corpus {
	c := newShell(w)
	c.tweets = make([]Tweet, 0, len(tweets))
	for _, tw := range tweets {
		c.appendTweet(tw)
	}
	c.buildIndex()
	return c
}

// BuildCorpus renders and indexes raw posts (ids 0..len(posts)-1).
func BuildCorpus(w *world.World, posts []Post) *Corpus {
	c := newShell(w)
	c.tweets = make([]Tweet, 0, len(posts))
	for _, p := range posts {
		c.appendTweet(MakeTweet(p))
	}
	c.buildIndex()
	return c
}

// ExtendedWith returns a new corpus holding c's tweets followed by the
// rendered posts — the cold, from-scratch rebuild a quiesced live index
// must be bit-identical to. c is not modified.
func (c *Corpus) ExtendedWith(posts []Post) *Corpus {
	all := make([]Tweet, 0, len(c.tweets)+len(posts))
	all = append(all, c.tweets...)
	for _, p := range posts {
		all = append(all, MakeTweet(p))
	}
	return FromTweets(c.w, all)
}

// Tweets returns the corpus's tweet slice in id order. The slice is
// index-owned — callers must treat it as read-only. Compaction uses it
// to concatenate adjacent segments.
func (c *Corpus) Tweets() []Tweet { return c.tweets }

// StreamConfig tunes a PostStream.
type StreamConfig struct {
	Seed uint64
	// Gen supplies the per-kind behaviour rates (off-topic chance,
	// second keywords, retweet boost); the per-user volume means are
	// reused as author-selection weights.
	Gen GenConfig
	// MentionRate is the chance an expert's turn emits a fan post
	// mentioning the expert instead of the expert's own post, feeding
	// the mention-impact feature of live candidates.
	MentionRate float64
}

// DefaultStreamConfig returns stream defaults matching the corpus
// generator's behaviour rates.
func DefaultStreamConfig(seed uint64) StreamConfig {
	return StreamConfig{Seed: seed, Gen: DefaultGenConfig(), MentionRate: 0.15}
}

// PostStream is an endless deterministic generator of live posts drawn
// from the same world model as Generate: experts post topical keywords
// by TweetRate, casuals post chatter, spammers stuff trending keywords,
// and fans occasionally mention productive experts. It is not safe for
// concurrent use — give each ingester goroutine its own stream (vary
// the seed).
type PostStream struct {
	w          *world.World
	cfg        StreamConfig
	rng        *xrand.RNG
	authors    *xrand.Weighted
	kwSamplers []*xrand.Weighted
	spamTopics *xrand.Weighted
	casuals    []world.UserID
}

// NewPostStream builds a stream over w, deterministic in cfg.Seed.
func NewPostStream(w *world.World, cfg StreamConfig) *PostStream {
	rng := xrand.New(cfg.Seed)
	s := &PostStream{w: w, cfg: cfg, rng: rng}

	// Author selection is weighted by each user's mean posting volume,
	// so the live mix matches the static corpus's authorship skew.
	weights := make([]float64, len(w.Users))
	for i := range w.Users {
		u := &w.Users[i]
		switch u.Kind {
		case world.ExpertUser, world.NewsUser:
			weights[i] = cfg.Gen.TweetsPerExpert * (0.3 + u.Influence)
		case world.CasualUser:
			weights[i] = cfg.Gen.TweetsPerCasual
			s.casuals = append(s.casuals, u.ID)
		case world.SpamUser:
			weights[i] = cfg.Gen.TweetsPerSpammer
		}
		weights[i] += 1e-9
	}
	s.authors = xrand.NewWeighted(rng.Split(), weights)

	s.kwSamplers = make([]*xrand.Weighted, len(w.Topics))
	for i := range w.Topics {
		kws := w.Topics[i].Keywords
		kwWeights := make([]float64, len(kws))
		for j := range kws {
			kwWeights[j] = kws[j].TweetRate + 1e-6
		}
		s.kwSamplers[i] = xrand.NewWeighted(rng.Split(), kwWeights)
	}

	spamWeights := make([]float64, len(w.Topics))
	for i := range w.Topics {
		spamWeights[i] = w.Topics[i].TweetPop*w.Topics[i].TweetActivity + 1e-9
	}
	s.spamTopics = xrand.NewWeighted(rng.Split(), spamWeights)
	return s
}

// Next returns the next post of the stream.
func (s *PostStream) Next() Post {
	u := &s.w.Users[s.authors.Draw()]
	switch u.Kind {
	case world.ExpertUser, world.NewsUser:
		if s.rng.Bool(s.cfg.Gen.OffTopicRate) || len(u.Topics) == 0 {
			return s.chatter(u.ID)
		}
		topic := u.Topics[s.rng.Intn(len(u.Topics))]
		if !s.rng.Bool(s.w.Topic(topic).TweetActivity) {
			return s.chatter(u.ID)
		}
		if s.rng.Bool(s.cfg.MentionRate*u.Influence*2) && len(s.casuals) > 0 {
			return s.fanMention(u.ID, topic)
		}
		return s.topical(u.ID, topic)
	case world.SpamUser:
		topic := world.TopicID(s.spamTopics.Draw())
		kw := s.w.Topic(topic).Keywords[0].Text
		return Post{
			Author: u.ID,
			Text:   "free prizes " + kw + " click here " + fillerWords[s.rng.Intn(len(fillerWords))],
			Topic:  -1,
		}
	default:
		return s.chatter(u.ID)
	}
}

// topical emits one on-topic post mirroring the static generator's
// keyword usage: one TweetRate-weighted keyword, occasionally two.
func (s *PostStream) topical(author world.UserID, topic world.TopicID) Post {
	t := s.w.Topic(topic)
	kw := t.Keywords[s.kwSamplers[topic].Draw()].Text
	text := fillerWords[s.rng.Intn(len(fillerWords))] + " " + kw
	if s.rng.Bool(s.cfg.Gen.SecondKeywordRate) {
		if second := t.Keywords[s.kwSamplers[topic].Draw()].Text; second != kw {
			text += " " + second
		}
	}
	text += " " + fillerWords[s.rng.Intn(len(fillerWords))]
	return Post{
		Author:       author,
		Text:         text,
		RetweetCount: s.rng.Poisson(s.cfg.Gen.RetweetBoost * s.w.User(author).Influence * 2),
		Topic:        topic,
	}
}

// fanMention emits a casual user's post that @-mentions the expert with
// a topical keyword.
func (s *PostStream) fanMention(expert world.UserID, topic world.TopicID) Post {
	fan := s.casuals[s.rng.Intn(len(s.casuals))]
	kw := s.w.Topic(topic).Keywords[s.kwSamplers[topic].Draw()].Text
	return Post{
		Author: fan,
		Text: "@" + s.w.User(expert).ScreenName + " great takes on " + kw +
			" " + fillerWords[s.rng.Intn(len(fillerWords))],
		Mentions:     []world.UserID{expert},
		RetweetCount: s.rng.Poisson(0.2),
		Topic:        topic,
	}
}

// chatter emits a generic off-topic post.
func (s *PostStream) chatter(author world.UserID) Post {
	text := ""
	n := 2 + s.rng.Intn(4)
	for i := 0; i < n; i++ {
		if i > 0 {
			text += " "
		}
		text += fillerWords[s.rng.Intn(len(fillerWords))]
	}
	var mentions []world.UserID
	if s.rng.Bool(0.08) {
		other := world.UserID(s.rng.Intn(len(s.w.Users)))
		if other != author {
			text += " @" + s.w.User(other).ScreenName
			mentions = append(mentions, other)
		}
	}
	return Post{Author: author, Text: text, Mentions: mentions,
		RetweetCount: s.rng.Poisson(0.05), Topic: -1}
}
