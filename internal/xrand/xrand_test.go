package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first draws")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64RangeProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: got %d, want ~%.0f", k, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 12, 50} {
		r := New(19)
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(23)
	for i := 0; i < 10000; i++ {
		if r.Poisson(100) < 0 {
			t.Fatal("negative Poisson draw")
		}
	}
	if r.Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
	if r.Poisson(-5) != 0 {
		t.Fatal("Poisson(-5) != 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	prop := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(64)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(29)
	z := NewZipf(r, 100, 1.1)
	const draws = 100000
	counts := make([]int, 100)
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	// Rank 0 must be drawn far more often than rank 50.
	if counts[0] < 5*counts[50] {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// Monotone head: the first few ranks decrease.
	if counts[0] < counts[1] || counts[1] < counts[4] {
		t.Errorf("Zipf head not decreasing: %v", counts[:5])
	}
}

func TestZipfBounds(t *testing.T) {
	prop := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(30)
		z := NewZipf(r, n, 1.0)
		for i := 0; i < 200; i++ {
			v := z.Draw()
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"n=0": func() { NewZipf(New(1), 0, 1) },
		"s=0": func() { NewZipf(New(1), 5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestWeightedProportions(t *testing.T) {
	r := New(31)
	w := NewWeighted(r, []float64{1, 2, 7})
	counts := make([]int, 3)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[w.Draw()]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.02 {
			t.Errorf("outcome %d: got %.3f want %.3f", i, got, want)
		}
	}
}

func TestWeightedZeroWeightNeverDrawn(t *testing.T) {
	r := New(37)
	w := NewWeighted(r, []float64{0, 1, 0, 1})
	for i := 0; i < 10000; i++ {
		v := w.Draw()
		if v == 0 || v == 2 {
			t.Fatalf("drew zero-weight outcome %d", v)
		}
	}
}

func TestWeightedPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":    func() { NewWeighted(New(1), nil) },
		"negative": func() { NewWeighted(New(1), []float64{1, -1}) },
		"zero sum": func() { NewWeighted(New(1), []float64{0, 0}) },
		"NaN":      func() { NewWeighted(New(1), []float64{math.NaN()}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(41)
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got := Sample(r, items, 10)
	if len(got) != 10 {
		t.Fatalf("Sample returned %d items, want 10", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate %d in sample", v)
		}
		seen[v] = true
	}
}

func TestSampleAllWhenKTooLarge(t *testing.T) {
	r := New(43)
	items := []string{"a", "b", "c"}
	got := Sample(r, items, 10)
	if len(got) != 3 {
		t.Fatalf("got %d items, want all 3", len(got))
	}
	seen := map[string]bool{}
	for _, v := range got {
		seen[v] = true
	}
	if !seen["a"] || !seen["b"] || !seen["c"] {
		t.Fatalf("sample missing elements: %v", got)
	}
}

func TestPick(t *testing.T) {
	r := New(47)
	items := []int{10, 20, 30}
	for i := 0; i < 100; i++ {
		v := Pick(r, items)
		if v != 10 && v != 20 && v != 30 {
			t.Fatalf("Pick returned %d not in slice", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 100000, 1.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Draw()
	}
}
