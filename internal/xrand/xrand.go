// Package xrand provides deterministic pseudo-random primitives used by
// every generator in the repository. All experiment randomness flows
// through an RNG seeded explicitly, so a given seed reproduces a run
// bit-for-bit regardless of Go version or platform.
//
// The generator is SplitMix64 (Steele et al., "Fast splittable
// pseudorandom number generators", OOPSLA 2014): tiny state, excellent
// statistical quality for simulation workloads, and trivially splittable
// so independent sub-streams can be derived for parallel generation.
package xrand

import "math"

// RNG is a deterministic SplitMix64 pseudo-random number generator.
// The zero value is a valid generator seeded with 0; prefer New.
type RNG struct {
	state uint64
}

// New returns an RNG seeded with the given seed. Distinct seeds produce
// statistically independent streams.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new, statistically independent RNG from r. The parent
// stream advances by one step, so repeated Split calls yield distinct
// children. Use it to hand isolated streams to parallel workers.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation would be faster but
	// the modulo bias at n << 2^64 is negligible for simulation use; keep
	// the obvious implementation for auditability.
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method. The method consumes a variable number of uniforms but is
// deterministic for a given stream position.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogNormal returns a log-normally distributed variate with the given
// parameters of the underlying normal distribution. The paper observes
// that TS/MI/RI features "appear to be log-normally distributed"; the
// synthetic generators use this to reproduce that shape.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Poisson returns a Poisson-distributed variate with mean lambda, using
// Knuth's multiplication method for small lambda and a normal
// approximation above 30 (adequate for synthetic count data).
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Shuffle pseudo-randomly permutes the first n elements using the
// Fisher-Yates algorithm, calling swap to exchange two indices.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Zipf samples from a Zipf distribution over {0, ..., n-1} with exponent
// s > 0: P(k) ∝ 1/(k+1)^s. It precomputes the CDF once, so construct it
// outside hot loops.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent s, drawing
// uniforms from rng. It panics if n <= 0 or s <= 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf called with n <= 0")
	}
	if s <= 0 {
		panic("xrand: NewZipf called with s <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	cdf[n-1] = 1 // guard against FP round-off
	return &Zipf{cdf: cdf, rng: rng}
}

// Draw returns the next rank in [0, n).
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }

// Weighted samples indices proportionally to a fixed non-negative weight
// vector. Like Zipf it precomputes the CDF once.
type Weighted struct {
	cdf []float64
	rng *RNG
}

// NewWeighted builds a sampler over len(weights) outcomes. Weights must be
// non-negative with a positive sum; it panics otherwise.
func NewWeighted(rng *RNG, weights []float64) *Weighted {
	if len(weights) == 0 {
		panic("xrand: NewWeighted called with no weights")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("xrand: NewWeighted called with negative or NaN weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum <= 0 {
		panic("xrand: NewWeighted called with zero total weight")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[len(cdf)-1] = 1
	return &Weighted{cdf: cdf, rng: rng}
}

// Clone returns a sampler over the same precomputed CDF driven by an
// independent RNG stream. It exists so concurrent generators can share
// one weight table without racing on the sampler's RNG state.
func (w *Weighted) Clone(rng *RNG) *Weighted {
	return &Weighted{cdf: w.cdf, rng: rng}
}

// Draw returns the next sampled index.
func (w *Weighted) Draw() int {
	u := w.rng.Float64()
	lo, hi := 0, len(w.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Pick returns a uniformly chosen element of items. It panics on an empty
// slice.
func Pick[T any](r *RNG, items []T) T {
	return items[r.Intn(len(items))]
}

// Sample returns k distinct elements drawn uniformly without replacement
// (reservoir sampling). If k >= len(items) a shuffled copy of all items is
// returned. The result order is unspecified but deterministic per seed.
func Sample[T any](r *RNG, items []T, k int) []T {
	if k >= len(items) {
		out := make([]T, len(items))
		copy(out, items)
		r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	out := make([]T, k)
	copy(out, items[:k])
	for i := k; i < len(items); i++ {
		j := r.Intn(i + 1)
		if j < k {
			out[j] = items[i]
		}
	}
	return out
}
