package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/expertise"
	"repro/internal/obs"
	"repro/internal/serve"
)

// stubBackend is a controllable serve.Backend (+ ContextBackend when
// blocking) for gateway mechanics tests: fixed answer, call counter,
// optional gate, optional block-until-deadline mode.
type stubBackend struct {
	calls atomic.Int64
	gate  chan struct{} // nil = never block
	stall bool          // SearchContext parks until ctx expires
}

func (b *stubBackend) answer() []expertise.Expert {
	b.calls.Add(1)
	if b.gate != nil {
		<-b.gate
	}
	return []expertise.Expert{{User: 7, Score: 3.25, TS: 1, MI: 2, RI: 3, OnTopicTweets: 4}}
}

func (b *stubBackend) Search(query string) ([]expertise.Expert, core.SearchTrace) {
	return b.answer(), core.SearchTrace{Query: query}
}
func (b *stubBackend) SearchBaseline(query string) []expertise.Expert { return b.answer() }
func (b *stubBackend) Epoch() uint64                                  { return 0 }

func (b *stubBackend) SearchContext(ctx context.Context, query string) ([]expertise.Expert, core.SearchTrace, error) {
	if b.stall {
		b.calls.Add(1)
		<-ctx.Done()
		return nil, core.SearchTrace{}, ctx.Err()
	}
	experts, tr := b.Search(query)
	return experts, tr, nil
}

func (b *stubBackend) SearchBaselineContext(ctx context.Context, query string) ([]expertise.Expert, error) {
	if b.stall {
		b.calls.Add(1)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return b.SearchBaseline(query), nil
}

// testGateway wires stub → serve → gateway → httptest server.
func testGateway(t *testing.T, backend serve.Backend, scfg serve.Config, mut func(*Config)) (*Gateway, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Serve: serve.New(backend, scfg),
		Tokens: map[string]TokenConfig{
			"reader": {},
			"ops":    {Admin: true},
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(g)
	t.Cleanup(hs.Close)
	t.Cleanup(g.Close)
	return g, hs
}

func post(t *testing.T, url, token, body string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Drain eagerly so the keep-alive connection returns to the pool
	// (goroutine accounting depends on it); hand callers a replayable
	// body.
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	resp.Body = io.NopCloser(bytes.NewReader(b))
	return resp
}

func wantStatus(t *testing.T, resp *http.Response, want int) {
	t.Helper()
	if resp.StatusCode != want {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, want, body)
	}
}

func TestAuthLadder(t *testing.T) {
	g, hs := testGateway(t, &stubBackend{}, serve.DefaultConfig(), nil)
	search := hs.URL + "/v1/search"
	body := `{"query":"vintage cars"}`

	resp := post(t, search, "", body, nil)
	wantStatus(t, resp, http.StatusUnauthorized)
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Fatal("401 without WWW-Authenticate challenge")
	}
	wantStatus(t, post(t, search, "nosuch", body, nil), http.StatusUnauthorized)
	// Wrong scheme is 401 too.
	req, _ := http.NewRequest(http.MethodPost, search, strings.NewReader(body))
	req.Header.Set("Authorization", "Basic cmVhZGVyOg==")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	wantStatus(t, resp2, http.StatusUnauthorized)

	wantStatus(t, post(t, search, "reader", body, nil), http.StatusOK)

	// Admin routes: reader is 403, ops passes; both need a token.
	adminReq := func(token string) *http.Response {
		r, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/admin/stats", nil)
		if token != "" {
			r.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	wantStatus(t, adminReq(""), http.StatusUnauthorized)
	wantStatus(t, adminReq("reader"), http.StatusForbidden)
	resp3 := adminReq("ops")
	wantStatus(t, resp3, http.StatusOK)
	var snap adminSnapshot
	if err := json.NewDecoder(resp3.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Serve.Queries == 0 || snap.Gateway.Requests == 0 {
		t.Fatalf("admin snapshot empty: %+v", snap)
	}

	st := g.Stats()
	if st.Unauthorized != 4 || st.Forbidden != 1 {
		t.Fatalf("auth counters: %+v", st)
	}
	checkStatsInvariant(t, g)
}

func checkStatsInvariant(t *testing.T, g *Gateway) {
	t.Helper()
	st := g.Stats()
	sum := st.OK + st.Unauthorized + st.Forbidden + st.RateLimited +
		st.QuotaExceeded + st.BadRequest + st.Shed + st.Timeout + st.BackendErrors
	if sum != st.Requests {
		t.Fatalf("stats invariant broken: %+v", st)
	}
}

func TestRateLimitAndQuota(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	_, hs := testGateway(t, &stubBackend{}, serve.DefaultConfig(), func(cfg *Config) {
		cfg.Now = clock
		cfg.Tokens = map[string]TokenConfig{
			"bursty": {Rate: 1, Burst: 2},
			"capped": {DailyQuota: 3},
		}
	})
	search := hs.URL + "/v1/search"
	body := `{"query":"vintage cars"}`

	// Token bucket: burst of 2 passes, the third in the same instant
	// trips with a Retry-After.
	wantStatus(t, post(t, search, "bursty", body, nil), http.StatusOK)
	wantStatus(t, post(t, search, "bursty", body, nil), http.StatusOK)
	resp := post(t, search, "bursty", body, nil)
	wantStatus(t, resp, http.StatusTooManyRequests)
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("rate-limit Retry-After = %q, want \"1\"", ra)
	}
	// One second later one token has refilled.
	now = now.Add(time.Second)
	wantStatus(t, post(t, search, "bursty", body, nil), http.StatusOK)

	// Daily quota: three pass, the fourth names the next UTC midnight.
	for i := 0; i < 3; i++ {
		wantStatus(t, post(t, search, "capped", body, nil), http.StatusOK)
	}
	resp = post(t, search, "capped", body, nil)
	wantStatus(t, resp, http.StatusTooManyRequests)
	if ra := resp.Header.Get("Retry-After"); ra != fmt.Sprint(12*3600-1) {
		t.Fatalf("quota Retry-After = %q, want seconds to UTC midnight (%d)", ra, 12*3600-1)
	}
	// The window resets at midnight.
	now = now.Add(13 * time.Hour)
	wantStatus(t, post(t, search, "capped", body, nil), http.StatusOK)
}

func TestBadRequests(t *testing.T) {
	scfg := serve.DefaultConfig()
	scfg.MaxQueryTerms = 4
	g, hs := testGateway(t, &stubBackend{}, scfg, nil)
	search := hs.URL + "/v1/search"

	// Wrong method.
	req, _ := http.NewRequest(http.MethodGet, search, nil)
	req.Header.Set("Authorization", "Bearer reader")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	wantStatus(t, resp, http.StatusMethodNotAllowed)

	wantStatus(t, post(t, search, "reader", `{nope`, nil), http.StatusBadRequest)
	wantStatus(t, post(t, search, "reader", `{"query":"   "}`, nil), http.StatusBadRequest)
	wantStatus(t, post(t, search, "reader", `{"query":"a b c d e"}`, nil), http.StatusBadRequest)
	wantStatus(t, post(t, search, "reader", `{"query":"ok"}`,
		map[string]string{"X-Budget-Ms": "banana"}), http.StatusBadRequest)
	wantStatus(t, post(t, search+"?budget_ms=-5", "reader", `{"query":"ok"}`, nil), http.StatusBadRequest)

	if st := g.Stats(); st.BadRequest != 6 {
		t.Fatalf("BadRequest = %d, want 6: %+v", st.BadRequest, st)
	}
	checkStatsInvariant(t, g)
}

func TestSearchTermsAndBaseline(t *testing.T) {
	backend := &stubBackend{}
	_, hs := testGateway(t, backend, serve.DefaultConfig(), nil)
	search := hs.URL + "/v1/search"

	decode := func(resp *http.Response) searchResponse {
		t.Helper()
		wantStatus(t, resp, http.StatusOK)
		var out searchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	byQuery := decode(post(t, search, "reader", `{"query":"vintage cars"}`, nil))
	byTerms := decode(post(t, search, "reader", `{"terms":["cars","vintage"]}`, nil))
	if len(byQuery.Experts) == 0 {
		t.Fatal("no experts returned")
	}
	a, _ := json.Marshal(byQuery.Experts)
	b, _ := json.Marshal(byTerms.Experts)
	if !bytes.Equal(a, b) {
		t.Fatal("terms spelling diverged from query spelling")
	}
	// Same canonical class → one backend computation.
	if calls := backend.calls.Load(); calls != 1 {
		t.Fatalf("backend ran %d times for one canonical class, want 1", calls)
	}

	base := decode(post(t, search+"?baseline=1", "reader", `{"query":"vintage cars"}`, nil))
	if !base.Baseline {
		t.Fatal("baseline response not flagged")
	}
	if calls := backend.calls.Load(); calls != 2 {
		t.Fatalf("baseline did not compute separately (calls=%d)", calls)
	}
}

// TestBudgetExpiry504 pins the gateway half of deadline propagation: a
// stalled backend turns into 504 within roughly the client's budget,
// and the handler goroutine is released (counted before/after).
func TestBudgetExpiry504(t *testing.T) {
	backend := &stubBackend{stall: true}
	g, hs := testGateway(t, backend, serve.DefaultConfig(), nil)

	// Warm the keep-alive connection first so its read/write loops are
	// part of the baseline, then count.
	wantStatus(t, post(t, hs.URL+"/v1/search", "", "{}", nil), http.StatusUnauthorized)
	before := countGoroutines()
	start := time.Now()
	resp := post(t, hs.URL+"/v1/search", "reader", `{"query":"slow"}`,
		map[string]string{"X-Budget-Ms": "100"})
	elapsed := time.Since(start)
	wantStatus(t, resp, http.StatusGatewayTimeout)
	if elapsed > 400*time.Millisecond {
		t.Fatalf("504 took %v, want ~100ms budget (≤2× plus slack)", elapsed)
	}
	waitGoroutinesSettle(t, before)
	if st := g.Stats(); st.Timeout != 1 {
		t.Fatalf("Timeout = %d, want 1: %+v", st.Timeout, st)
	}
	checkStatsInvariant(t, g)
}

// TestShedKeepsWarmHits pins the gateway half of priority shedding:
// with the serving layer saturated, cold misses get 503 + Retry-After
// while warm cache hits still answer 200.
func TestShedKeepsWarmHits(t *testing.T) {
	backend := &stubBackend{}
	scfg := serve.DefaultConfig()
	scfg.MaxInflightMisses = 1
	g, hs := testGateway(t, backend, scfg, nil)
	search := hs.URL + "/v1/search"

	wantStatus(t, post(t, search, "reader", `{"query":"warm"}`, nil), http.StatusOK)
	backend.gate = make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		resp := post(t, search, "reader", `{"query":"cold leader"}`, nil)
		wantStatus(t, resp, http.StatusOK)
	}()
	for backend.calls.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	resp := post(t, search, "reader", `{"query":"cold shed"}`, nil)
	wantStatus(t, resp, http.StatusServiceUnavailable)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	wantStatus(t, post(t, search, "reader", `{"query":"warm"}`, nil), http.StatusOK)
	close(backend.gate)
	<-leaderDone
	if st := g.Stats(); st.Shed != 1 {
		t.Fatalf("Shed = %d, want 1: %+v", st.Shed, st)
	}
	checkStatsInvariant(t, g)
}

// TestAdminWatchStreams drives the streaming admin route: frames
// arrive on the interval, queries between frames surface in
// delta_queries, and closing the gateway releases the stream.
func TestAdminWatchStreams(t *testing.T) {
	g, hs := testGateway(t, &stubBackend{}, serve.DefaultConfig(), nil)

	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/admin/watch?interval_ms=20", nil)
	req.Header.Set("Authorization", "Bearer ops")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	wantStatus(t, resp, http.StatusOK)
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch Content-Type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	readFrame := func() watchFrame {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("watch stream ended early: %v", sc.Err())
		}
		var f watchFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		return f
	}
	first := readFrame()
	if first.DeltaQueries != 0 {
		t.Fatalf("baseline frame has delta %d", first.DeltaQueries)
	}
	// Traffic between frames must show up as a delta.
	wantStatus(t, post(t, hs.URL+"/v1/search", "reader", `{"query":"storm"}`, nil), http.StatusOK)
	deadline := time.Now().Add(5 * time.Second)
	var sawDelta bool
	for time.Now().Before(deadline) {
		if f := readFrame(); f.DeltaQueries > 0 {
			sawDelta = true
			break
		}
	}
	if !sawDelta {
		t.Fatal("no frame reported the query delta")
	}
	// Close releases the handler; the stream must end.
	g.Close()
	ended := make(chan struct{})
	go func() {
		for sc.Scan() {
		}
		close(ended)
	}()
	select {
	case <-ended:
	case <-time.After(5 * time.Second):
		t.Fatal("watch stream did not end on gateway Close")
	}
}

// TestWatchSlowLogDeltas drives the SlowLog half of the watch stream
// with an instrumented serving layer.
func TestWatchSlowLogDeltas(t *testing.T) {
	reg := obs.NewRegistry()
	scfg := serve.DefaultConfig()
	scfg.Obs = reg
	scfg.SlowLogThreshold = 0 // keep every trace
	_, hs := testGateway(t, &stubBackend{}, scfg, func(cfg *Config) { cfg.Obs = reg })

	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/admin/watch?interval_ms=20", nil)
	req.Header.Set("Authorization", "Bearer ops")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	wantStatus(t, resp, http.StatusOK)
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no baseline frame")
	}
	wantStatus(t, post(t, hs.URL+"/v1/search", "reader", `{"query":"storm"}`, nil), http.StatusOK)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !sc.Scan() {
			t.Fatalf("stream ended: %v", sc.Err())
		}
		var f watchFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatal(err)
		}
		if len(f.Slow) > 0 {
			if f.Slow[0].Query != "storm" {
				t.Fatalf("slow delta carries %q, want \"storm\"", f.Slow[0].Query)
			}
			return
		}
	}
	t.Fatal("no frame carried the slow-log delta")
}

// countGoroutines samples runtime.NumGoroutine after a GC settle so
// freshly-exited goroutines don't inflate the baseline.
func countGoroutines() int {
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	return runtime.NumGoroutine()
}

// waitGoroutinesSettle fails the test if the goroutine count has not
// returned to (at or below) the baseline within a generous window —
// the hand-rolled leak check the acceptance bar asks for.
func waitGoroutinesSettle(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		// Idle keep-alive connections hold read loops on both sides;
		// they are pooling, not leaks — drop them before counting.
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		n = runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline %d", n, baseline)
}

func TestParseTokens(t *testing.T) {
	got, err := ParseTokens("dev::::admin, reader:50:100:10000, free:::")
	if err != nil {
		t.Fatal(err)
	}
	if !got["dev"].Admin || got["dev"].Rate != 0 {
		t.Fatalf("dev = %+v", got["dev"])
	}
	if r := got["reader"]; r.Rate != 50 || r.Burst != 100 || r.DailyQuota != 10000 || r.Admin {
		t.Fatalf("reader = %+v", r)
	}
	if f := got["free"]; f != (TokenConfig{}) {
		t.Fatalf("free = %+v", f)
	}
	for _, bad := range []string{
		"", ":50::", "a:b::", "a::b:", "a:::b", "a::::root", "a:::,a:::", "a:1:2:3:admin:extra",
	} {
		if _, err := ParseTokens(bad); err == nil {
			t.Fatalf("ParseTokens(%q) accepted", bad)
		}
	}
}
