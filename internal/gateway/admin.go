package gateway

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// adminSnapshot is the one-shot /v1/admin/stats body and the cumulative
// section of every watch frame.
type adminSnapshot struct {
	Serve   serve.Stats `json:"serve"`
	Gateway Stats       `json:"gateway"`
}

func (g *Gateway) handleAdminStats(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	if !g.authenticate(w, r, true) {
		return
	}
	g.ok.Add(1)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(adminSnapshot{Serve: g.srv.Stats(), Gateway: g.Stats()})
}

// watchFrame is one line of the /v1/admin/watch stream: the cumulative
// snapshots plus what moved since the previous frame — the query-count
// delta and the slow-log entries recorded in the interval. The first
// frame is the baseline (DeltaQueries 0, no slow entries).
type watchFrame struct {
	Serve        serve.Stats      `json:"serve"`
	Gateway      Stats            `json:"gateway"`
	DeltaQueries int64            `json:"delta_queries"`
	Slow         []obs.QueryTrace `json:"slow,omitempty"`
}

// handleAdminWatch streams newline-delimited JSON frames until the
// client disconnects or the gateway closes. ?interval_ms narrows the
// tick below Config.WatchInterval (floor 10ms) — an operator tailing a
// hot deploy wants seconds, a test wants milliseconds.
func (g *Gateway) handleAdminWatch(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	if !g.authenticate(w, r, true) {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		g.backendErr.Add(1)
		fail(w, http.StatusInternalServerError, "streaming unsupported by this connection", 0)
		return
	}
	interval := g.cfg.WatchInterval
	if raw := r.URL.Query().Get("interval_ms"); raw != "" {
		if ms, err := strconv.ParseInt(raw, 10, 64); err == nil && ms > 0 {
			interval = time.Duration(ms) * time.Millisecond
			if interval < 10*time.Millisecond {
				interval = 10 * time.Millisecond
			}
		}
	}
	g.ok.Add(1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	slow := g.srv.SlowLog()
	var lastQueries, lastSlow int64
	if slow != nil {
		lastSlow = slow.Total()
	}
	enc := json.NewEncoder(w)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	first := true
	for {
		frame := watchFrame{Serve: g.srv.Stats(), Gateway: g.Stats()}
		if !first {
			frame.DeltaQueries = frame.Serve.Queries - lastQueries
		}
		lastQueries = frame.Serve.Queries
		if slow != nil {
			total := slow.Total()
			if n := total - lastSlow; n > 0 && !first {
				// Snapshot is newest-first; the n entries recorded since
				// the last frame are its prefix (or all of it, if the ring
				// overwrote more than it holds).
				entries := slow.Snapshot()
				if int64(len(entries)) > n {
					entries = entries[:n]
				}
				frame.Slow = entries
			}
			lastSlow = total
		}
		first = false
		if err := enc.Encode(frame); err != nil {
			return
		}
		fl.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-g.closed:
			return
		case <-ticker.C:
		}
	}
}
