package gateway

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TokenConfig is one client credential's envelope: how fast it may
// ask, how much it may ask per day, and whether it may look behind the
// curtain.
type TokenConfig struct {
	// Rate is the sustained request rate in requests per second the
	// token refills at; Burst is the bucket capacity (defaults to
	// ceil(Rate), at least 1). Rate 0 disables rate limiting.
	Rate  float64
	Burst int
	// DailyQuota caps admitted requests per UTC day; 0 means
	// unlimited. A quota rejection names the next UTC midnight in
	// Retry-After.
	DailyQuota int64
	// Admin grants the /v1/admin endpoints (stats snapshot and the
	// streaming watch). Non-admin tokens get 403 there.
	Admin bool
}

// tokenState is one token's mutable limiter state: a float64 token
// bucket for rate, and a per-UTC-day admission counter for quota. One
// small mutex per token — contention is per-client, not global.
type tokenState struct {
	cfg   TokenConfig
	burst float64

	mu    sync.Mutex
	level float64   // current bucket fill, [0, burst]
	last  time.Time // last refill instant (zero until first admit)
	day   int64     // UTC day (unix seconds / 86400) of the quota window
	used  int64     // requests admitted in that window
}

// authTable maps bearer tokens to their limiter state. Immutable
// after construction; only the per-token states mutate.
type authTable struct {
	tokens map[string]*tokenState
}

func newAuthTable(tokens map[string]TokenConfig) *authTable {
	t := &authTable{tokens: make(map[string]*tokenState, len(tokens))}
	for tok, cfg := range tokens {
		burst := float64(cfg.Burst)
		if cfg.Burst <= 0 {
			burst = 1
			if cfg.Rate > 1 {
				burst = float64(int(cfg.Rate + 0.999))
			}
		}
		t.tokens[tok] = &tokenState{cfg: cfg, burst: burst, level: burst}
	}
	return t
}

// lookup resolves the Authorization header ("Bearer <token>",
// case-insensitive scheme) to a token's state; nil when the header is
// missing, malformed or names an unknown token — all 401, and
// deliberately indistinguishable to the caller.
func (t *authTable) lookup(authz string) *tokenState {
	const scheme = "bearer "
	if len(authz) <= len(scheme) || !strings.EqualFold(authz[:len(scheme)], scheme) {
		return nil
	}
	return t.tokens[strings.TrimSpace(authz[len(scheme):])]
}

// admit runs one request through the token's quota and rate limiter.
// ok admits; otherwise retryAfter says how long until the same request
// would pass (the Retry-After header, rounded up to whole seconds by
// the caller) and quota distinguishes the daily cap from a rate trip.
// Quota is checked first so a quota-dead token cannot burn bucket
// tokens it will never get to spend.
func (st *tokenState) admit(now time.Time) (ok bool, retryAfter time.Duration, quota bool) {
	st.mu.Lock()
	defer st.mu.Unlock()

	day := now.Unix() / 86400
	if day != st.day {
		st.day, st.used = day, 0
	}
	if st.cfg.DailyQuota > 0 && st.used >= st.cfg.DailyQuota {
		midnight := time.Unix((day+1)*86400, 0)
		return false, midnight.Sub(now), true
	}
	if st.cfg.Rate > 0 {
		if !st.last.IsZero() {
			st.level += now.Sub(st.last).Seconds() * st.cfg.Rate
			if st.level > st.burst {
				st.level = st.burst
			}
		}
		st.last = now
		if st.level < 1 {
			wait := time.Duration((1 - st.level) / st.cfg.Rate * float64(time.Second))
			return false, wait, false
		}
		st.level--
	}
	st.used++
	return true, 0, false
}

// ParseTokens parses the command-line token table syntax:
// comma-separated "token:rate:burst:daily[:admin]" entries, where any
// numeric field may be empty for its zero (unlimited) value and a
// trailing ":admin" grants the admin endpoints.
//
//	dev:::      — token "dev", no limits
//	a:100:200:  — 100 rps, burst 200, no daily cap
//	ops:::1000:admin
func ParseTokens(spec string) (map[string]TokenConfig, error) {
	out := make(map[string]TokenConfig)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) > 5 {
			return nil, fmt.Errorf("gateway: token entry %q: too many fields", entry)
		}
		for len(parts) < 5 {
			parts = append(parts, "")
		}
		tok := parts[0]
		if tok == "" {
			return nil, fmt.Errorf("gateway: token entry %q: empty token", entry)
		}
		var cfg TokenConfig
		var err error
		if parts[1] != "" {
			if cfg.Rate, err = strconv.ParseFloat(parts[1], 64); err != nil || cfg.Rate < 0 {
				return nil, fmt.Errorf("gateway: token %q: bad rate %q", tok, parts[1])
			}
		}
		if parts[2] != "" {
			if cfg.Burst, err = strconv.Atoi(parts[2]); err != nil || cfg.Burst < 0 {
				return nil, fmt.Errorf("gateway: token %q: bad burst %q", tok, parts[2])
			}
		}
		if parts[3] != "" {
			if cfg.DailyQuota, err = strconv.ParseInt(parts[3], 10, 64); err != nil || cfg.DailyQuota < 0 {
				return nil, fmt.Errorf("gateway: token %q: bad daily quota %q", tok, parts[3])
			}
		}
		switch parts[4] {
		case "", "-":
		case "admin":
			cfg.Admin = true
		default:
			return nil, fmt.Errorf("gateway: token %q: bad flag %q (want \"admin\")", tok, parts[4])
		}
		if _, dup := out[tok]; dup {
			return nil, fmt.Errorf("gateway: duplicate token %q", tok)
		}
		out[tok] = cfg
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("gateway: token spec %q names no tokens", spec)
	}
	return out, nil
}
