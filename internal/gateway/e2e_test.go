package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/expertise"
	"repro/internal/fault"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/transport"
)

var (
	pipeOnce sync.Once
	pipe     *core.Pipeline
	pipeSets []eval.QuerySet
	pipeErr  error
)

func testPipeline(t testing.TB) (*core.Pipeline, []eval.QuerySet) {
	t.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = core.BuildPipeline(core.TinyPipelineConfig())
		if pipeErr == nil {
			pipeSets = eval.BuildQuerySets(pipe.World, pipe.Log,
				eval.SetSizes{PerCategory: 25, Top: 60})
		}
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe, pipeSets
}

func streamPosts(p *core.Pipeline, seed uint64, n int) []microblog.Post {
	s := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(seed))
	posts := make([]microblog.Post, n)
	for i := range posts {
		posts[i] = s.Next()
	}
	return posts
}

// realGateway wires an actual e# backend (any serve.Backend over the
// pipeline) through serve into a gateway httptest server with an
// unlimited reader token and an admin token.
func realGateway(t testing.TB, backend serve.Backend, mut func(*serve.Config)) (*Gateway, *httptest.Server) {
	t.Helper()
	scfg := serve.DefaultConfig()
	if mut != nil {
		mut(&scfg)
	}
	g, err := New(Config{
		Serve: serve.New(backend, scfg),
		Tokens: map[string]TokenConfig{
			"reader": {},
			"ops":    {Admin: true},
		},
		// E2E queries over cold tiny-pipeline shards stay well under a
		// second; the wide default keeps a loaded CI container from
		// tripping budgets in the equivalence sweep.
		DefaultBudget: 30 * time.Second,
		MaxBudget:     30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(g)
	t.Cleanup(hs.Close)
	t.Cleanup(g.Close)
	return g, hs
}

// httpSearch POSTs one query and decodes the response body.
func httpSearch(t *testing.T, base, query string, baseline bool) searchResponse {
	t.Helper()
	url := base + "/v1/search"
	if baseline {
		url += "?baseline=1"
	}
	body, err := json.Marshal(searchRequest{Query: query})
	if err != nil {
		t.Fatal(err)
	}
	resp := post(t, url, "reader", string(body), nil)
	wantStatus(t, resp, http.StatusOK)
	var out searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// jsonIdentical asserts the HTTP-delivered experts are byte-identical
// to the reference ranking after both pass through JSON — the
// equivalence spine extended to the front door. float64 survives a
// JSON round trip exactly, so any divergence is a real ranking or
// score difference, not encoding noise.
func jsonIdentical(t *testing.T, label, query string, got, want []expertise.Expert) {
	t.Helper()
	if want == nil {
		// The gateway contract is "experts is never null"; an empty
		// reference ranking is the same result.
		want = []expertise.Expert{}
	}
	a, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("%s %q diverged over HTTP:\n  got  %s\n  want %s", label, query, a, b)
	}
}

// TestGatewayQuiescedEquivalence is the acceptance bar of the front
// door: for every query of every evaluation query set, the ranked
// experts served over HTTP from a quiesced sharded deployment must be
// byte-identical (modulo the JSON round trip) to a cold single-node
// core.Detector rebuilt over the same posts — on both the e# and the
// baseline path. Auth, routing, budgets, caching and JSON must add
// exactly nothing to the numbers.
func TestGatewayQuiescedEquivalence(t *testing.T) {
	p, sets := testPipeline(t)
	posts := streamPosts(p, 83, 400)

	cold := core.NewDetector(p.Collection, p.Corpus.ExtendedWith(posts), p.Cfg.Online)

	router := shard.New(p.Corpus, shard.Config{
		Shards: 2,
		Ingest: ingest.Config{SealThreshold: 32, CompactFanIn: 3},
	})
	defer router.Close()
	router.IngestBatch(posts)
	router.Quiesce()
	live := core.NewShardedLiveDetector(p.Collection, router, p.Cfg.Online)
	_, hs := realGateway(t, live, nil)

	for _, set := range sets {
		for _, q := range set.Queries {
			got := httpSearch(t, hs.URL, q, false)
			want, _ := cold.Search(q)
			jsonIdentical(t, set.Name, q, got.Experts, want)

			gotBase := httpSearch(t, hs.URL, q, true)
			if !gotBase.Baseline {
				t.Fatalf("baseline response for %q not flagged", q)
			}
			jsonIdentical(t, set.Name+"/baseline", q, gotBase.Experts, cold.SearchBaseline(q))
		}
	}
}

// TestGatewayRemoteStalledShard504 is the fault half of the acceptance
// bar, wire edition: with one shard served over a real loopback
// connection that suddenly stalls, a budgeted request must come back
// 504 within roughly its budget (not the transport's much larger
// timeout), warm cache hits must keep answering 200 throughout, no
// goroutine may leak, and the deployment must heal when the stall
// lifts.
func TestGatewayRemoteStalledShard504(t *testing.T) {
	p, sets := testPipeline(t)
	posts := streamPosts(p, 89, 200)
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}

	const n = 2
	dialer := fault.NewDialer()
	backends := make([]shard.Backend, n)
	for i := 0; i < n; i++ {
		part := shard.Partition(p.Corpus, i, n)
		idx := ingest.New(part, icfg)
		srv, err := transport.Listen("127.0.0.1:0", idx, transport.DefaultServerConfig(i, n))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			srv.Close()
			idx.Close()
		})
		// Real wire, fault-injectable: reads on every live connection
		// can be stalled at will. Push subscription stays ON so epoch
		// reads stay local and warm hits never touch the stalled wire.
		ccfg := transport.ClientConfig{Timeout: 10 * time.Second, Dial: dialer.Dial}
		c := transport.NewRemoteShard(srv.Addr().String(), ccfg)
		t.Cleanup(func() { c.Close() })
		if err := c.Handshake(i, n, len(p.World.Users), part.NumTweets()); err != nil {
			t.Fatal(err)
		}
		backends[i] = c
	}
	cluster := shard.NewCluster(p.World, backends...)
	defer cluster.Close()
	if err := cluster.IngestBatch(posts); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Quiesce(); err != nil {
		t.Fatal(err)
	}
	live := core.NewShardedLiveDetectorOver(p.Collection, cluster, p.Cfg.Online)

	// Pick two evaluation queries that provably produce experts: a
	// query matching no collection domain short-circuits before the
	// scatter and would dodge the stalled wire entirely.
	var wireQueries []string
	for _, set := range sets {
		for _, q := range set.Queries {
			if experts, _ := live.Search(q); len(experts) > 0 {
				wireQueries = append(wireQueries, q)
			}
			if len(wireQueries) == 2 {
				break
			}
		}
		if len(wireQueries) == 2 {
			break
		}
	}
	if len(wireQueries) < 2 {
		t.Fatal("no evaluation queries produce experts")
	}
	warmQ, coldQ := wireQueries[0], wireQueries[1]
	g, hs := realGateway(t, live, nil)

	// Warm one query end to end, then measure the goroutine baseline.
	warmBytes, _ := json.Marshal(searchRequest{Query: warmQ})
	warmQuery := string(warmBytes)
	warm := post(t, hs.URL+"/v1/search", "reader", warmQuery, nil)
	wantStatus(t, warm, http.StatusOK)
	var warmBody searchResponse
	if err := json.NewDecoder(warm.Body).Decode(&warmBody); err != nil {
		t.Fatal(err)
	}
	before := countGoroutines()

	// Stall every wire read far beyond the request budget.
	dialer.StallAll(5 * time.Second)

	start := time.Now()
	coldBytes, _ := json.Marshal(searchRequest{Query: coldQ})
	resp := post(t, hs.URL+"/v1/search", "reader", string(coldBytes),
		map[string]string{"X-Budget-Ms": "200"})
	elapsed := time.Since(start)
	wantStatus(t, resp, http.StatusGatewayTimeout)
	// The 504 must come from the budget, not the 10s transport timeout
	// or the 5s stall: within ~2× the budget plus CI slack.
	if elapsed > 600*time.Millisecond {
		t.Fatalf("stalled shard 504 took %v, want ≈200ms budget", elapsed)
	}

	// Warm cache hits keep answering during the stall, and fast.
	during := post(t, hs.URL+"/v1/search", "reader", warmQuery, nil)
	wantStatus(t, during, http.StatusOK)
	var duringBody searchResponse
	if err := json.NewDecoder(during.Body).Decode(&duringBody); err != nil {
		t.Fatal(err)
	}
	jsonIdentical(t, "warm-during-stall", warmQ, duringBody.Experts, warmBody.Experts)

	// Every goroutine the failed scatter started must wind down.
	waitGoroutinesSettle(t, before)
	if st := g.Stats(); st.Timeout != 1 {
		t.Fatalf("Timeout = %d, want 1: %+v", st.Timeout, st)
	}

	// Lift the stall: the next cold query redials and succeeds.
	dialer.StallAll(0)
	healed := post(t, hs.URL+"/v1/search", "reader", string(coldBytes), nil)
	wantStatus(t, healed, http.StatusOK)
}
