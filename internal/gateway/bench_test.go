package gateway

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/serve"
	"repro/internal/shard"
)

// benchGateway builds the full warm stack once: 2-shard quiesced
// deployment under serve under the gateway, with the benchmark query
// already cached so the measured path is auth → budget → cache hit →
// JSON.
func benchGateway(b *testing.B) (*serve.Server, *httptest.Server, string) {
	b.Helper()
	p, sets := testPipeline(b)
	posts := streamPosts(p, 83, 400)
	router := shard.New(p.Corpus, shard.Config{
		Shards: 2,
		Ingest: ingest.Config{SealThreshold: 32, CompactFanIn: 3},
	})
	b.Cleanup(router.Close)
	router.IngestBatch(posts)
	router.Quiesce()
	live := core.NewShardedLiveDetector(p.Collection, router, p.Cfg.Online)

	srv := serve.New(live, serve.DefaultConfig())
	g, err := New(Config{
		Serve:         srv,
		Tokens:        map[string]TokenConfig{"bench": {}},
		DefaultBudget: 30 * time.Second,
		MaxBudget:     30 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(g)
	b.Cleanup(hs.Close)
	b.Cleanup(g.Close)

	query := sets[0].Queries[0]
	body, _ := json.Marshal(searchRequest{Query: query})
	resp, err := http.Post(hs.URL+"/v1/search", "application/json", strings.NewReader(string(body)))
	_ = resp // warm request is unauthenticated on purpose: cheap 401
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	srv.Search(query) // warm the cache slot
	return srv, hs, query
}

func gatewayRoundTrip(b *testing.B, client *http.Client, url, body string) {
	b.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer bench")
	resp, err := client.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// BenchmarkGatewayQPSWarm measures sequential warm-hit round trips over
// a real TCP loopback connection: auth, budget parse, serve cache hit,
// JSON encode, HTTP framing.
func BenchmarkGatewayQPSWarm(b *testing.B) {
	_, hs, query := benchGateway(b)
	body, _ := json.Marshal(searchRequest{Query: query})
	url := hs.URL + "/v1/search"
	gatewayRoundTrip(b, hs.Client(), url, string(body)) // prime the conn
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gatewayRoundTrip(b, hs.Client(), url, string(body))
	}
}

// BenchmarkGatewayQPSParallel is the same round trip under RunParallel:
// the headline concurrent-throughput number for BENCHMARKS.md.
func BenchmarkGatewayQPSParallel(b *testing.B) {
	_, hs, query := benchGateway(b)
	body, _ := json.Marshal(searchRequest{Query: query})
	url := hs.URL + "/v1/search"
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		defer client.CloseIdleConnections()
		for pb.Next() {
			gatewayRoundTrip(b, client, url, string(body))
		}
	})
}

// BenchmarkGatewayOverhead isolates what the front door costs on top of
// the serving layer it wraps: the serve sub-benchmark answers the same
// warm query in-process, the http sub-benchmark answers it through the
// full gateway; the delta is the HTTP+JSON+auth tax per request.
func BenchmarkGatewayOverhead(b *testing.B) {
	srv, hs, query := benchGateway(b)
	b.Run("serve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if srv.Search(query) == nil {
				b.Fatal("warm query lost its experts")
			}
		}
	})
	b.Run("http", func(b *testing.B) {
		body, _ := json.Marshal(searchRequest{Query: query})
		url := hs.URL + "/v1/search"
		client := hs.Client()
		gatewayRoundTrip(b, client, url, string(body))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gatewayRoundTrip(b, client, url, string(body))
		}
	})
}
