// Package gateway is the front door of the reproduction: an HTTP/JSON
// service over a serve.Server, modelling how the paper's expertise
// detector would actually face production web-search traffic —
// authenticated clients, per-client rate limits and daily quotas, a
// latency budget per request, and an operator plane watching the
// serving layer live.
//
// The request surface is deliberately small:
//
//	POST /v1/search            {"query": "vintage cars"} → ranked experts
//	POST /v1/search?baseline=1 the unexpanded Pal & Counts baseline
//	GET  /v1/admin/stats       one-shot serve.Stats + gateway counters (admin token)
//	GET  /v1/admin/watch       streaming JSON lines of stats deltas + new slow queries
//
// Every request carries "Authorization: Bearer <token>"; tokens are
// provisioned in Config.Tokens with a token-bucket rate, a UTC-daily
// quota and an admin bit. The refusal ladder is strict HTTP: 401 for
// no/unknown token, 403 for a non-admin token on an admin route, 429
// with Retry-After for a rate or quota trip, 400 for degenerate
// queries (serve.ErrEmptyQuery, serve.ErrTooManyTerms), 503 with
// Retry-After when the serving layer sheds a cold miss under overload
// (serve.ErrOverloaded — warm cache hits are still answered), and 504
// when the request's latency budget expires before the scatter-gather
// returns.
//
// The budget is the deadline-propagation spine: X-Budget-Ms (or
// ?budget_ms), clamped to Config.MaxBudget, becomes a context deadline
// that rides serve.Server.SearchContext into the sharded detector's
// scatter-gather and from there into per-RPC deadlines on every remote
// shard — a stalled shard costs the client its budget, never more, and
// cancellation releases every pinned snapshot with no goroutine left
// behind (the scatter-gather checks only at its barriers, where all
// workers have already returned).
//
// Results are the serving layer's verbatim: at quiescence the experts
// in the JSON body are bit-identical (modulo the JSON number round
// trip, which is exact for float64) to an in-process detector over the
// same stream — the equivalence spine extends through the front door.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/expertise"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Config wires a Gateway.
type Config struct {
	// Serve is the serving layer fronted; required. Budgets, shedding
	// and admission (empty/oversized queries) are its policy — the
	// gateway only translates its typed errors to HTTP.
	Serve *serve.Server
	// Tokens is the credential table. An empty table refuses every
	// request with 401 — the gateway is closed by default.
	Tokens map[string]TokenConfig
	// DefaultBudget is the per-request latency budget when the client
	// names none (default 2s); MaxBudget clamps client-named budgets
	// (default 10s). A request past its budget gets 504.
	DefaultBudget time.Duration
	MaxBudget     time.Duration
	// Obs, when non-nil, mirrors every gateway counter into the
	// registry (gateway_requests, gateway_ok, gateway_unauthorized,
	// gateway_forbidden, gateway_rate_limited, gateway_quota_exceeded,
	// gateway_bad_request, gateway_shed, gateway_timeout,
	// gateway_backend_errors) and records end-to-end request latency in
	// the gateway_request_ns histogram — typically the same registry
	// the serve.Server and its admin plane share, so the front door and
	// the serving layer land in one /metrics namespace.
	Obs *obs.Registry
	// Now substitutes the wall clock for the rate/quota limiters;
	// tests drive quota windows with it. Nil means time.Now.
	Now func() time.Time
	// WatchInterval is the default tick of /v1/admin/watch (default
	// 500ms; clients may narrow it with ?interval_ms, floored at 10ms).
	WatchInterval time.Duration
}

// Stats is a snapshot of the gateway's request counters. Requests is
// the total; every request lands in exactly one of the other buckets.
type Stats struct {
	Requests      int64
	OK            int64
	Unauthorized  int64 // 401: missing or unknown bearer token
	Forbidden     int64 // 403: non-admin token on an admin route
	RateLimited   int64 // 429: token bucket empty
	QuotaExceeded int64 // 429: UTC-daily quota spent
	BadRequest    int64 // 400/405: malformed body, degenerate query, wrong method
	Shed          int64 // 503: serving layer shed a cold miss under overload
	Timeout       int64 // 504: latency budget expired
	BackendErrors int64 // 502: backend failed for another reason
}

// Gateway is the HTTP front door over one serve.Server. It is an
// http.Handler; Close releases streaming watchers so an http.Server
// can drain.
type Gateway struct {
	cfg  Config
	srv  *serve.Server
	auth *authTable
	mux  *http.ServeMux
	now  func() time.Time

	requests, ok, unauthorized, forbidden atomic.Int64
	rateLimited, quotaExceeded            atomic.Int64
	badRequest, shed, timeout, backendErr atomic.Int64

	obsOn    bool
	obsReqNS *obs.Histogram

	closed chan struct{}
}

// New builds a gateway over cfg.Serve. The only error is a nil Serve.
func New(cfg Config) (*Gateway, error) {
	if cfg.Serve == nil {
		return nil, errors.New("gateway: Config.Serve is required")
	}
	if cfg.DefaultBudget <= 0 {
		cfg.DefaultBudget = 2 * time.Second
	}
	if cfg.MaxBudget <= 0 {
		cfg.MaxBudget = 10 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.WatchInterval <= 0 {
		cfg.WatchInterval = 500 * time.Millisecond
	}
	g := &Gateway{
		cfg:    cfg,
		srv:    cfg.Serve,
		auth:   newAuthTable(cfg.Tokens),
		now:    cfg.Now,
		closed: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/search", g.handleSearch)
	mux.HandleFunc("/v1/admin/stats", g.handleAdminStats)
	mux.HandleFunc("/v1/admin/watch", g.handleAdminWatch)
	g.mux = mux
	if cfg.Obs != nil {
		g.obsOn = true
		g.obsReqNS = cfg.Obs.Histogram("gateway_request_ns")
		cfg.Obs.RegisterFunc("gateway_requests", g.requests.Load)
		cfg.Obs.RegisterFunc("gateway_ok", g.ok.Load)
		cfg.Obs.RegisterFunc("gateway_unauthorized", g.unauthorized.Load)
		cfg.Obs.RegisterFunc("gateway_forbidden", g.forbidden.Load)
		cfg.Obs.RegisterFunc("gateway_rate_limited", g.rateLimited.Load)
		cfg.Obs.RegisterFunc("gateway_quota_exceeded", g.quotaExceeded.Load)
		cfg.Obs.RegisterFunc("gateway_bad_request", g.badRequest.Load)
		cfg.Obs.RegisterFunc("gateway_shed", g.shed.Load)
		cfg.Obs.RegisterFunc("gateway_timeout", g.timeout.Load)
		cfg.Obs.RegisterFunc("gateway_backend_errors", g.backendErr.Load)
	}
	return g, nil
}

// ServeHTTP dispatches to the gateway's routes.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// Close releases streaming watchers (their handlers return), so an
// http.Server.Shutdown over this handler can drain. Idempotent.
func (g *Gateway) Close() {
	select {
	case <-g.closed:
	default:
		close(g.closed)
	}
}

// Stats snapshots the request counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Requests:      g.requests.Load(),
		OK:            g.ok.Load(),
		Unauthorized:  g.unauthorized.Load(),
		Forbidden:     g.forbidden.Load(),
		RateLimited:   g.rateLimited.Load(),
		QuotaExceeded: g.quotaExceeded.Load(),
		BadRequest:    g.badRequest.Load(),
		Shed:          g.shed.Load(),
		Timeout:       g.timeout.Load(),
		BackendErrors: g.backendErr.Load(),
	}
}

// errorBody is the JSON envelope of every non-200 response.
type errorBody struct {
	Error string `json:"error"`
}

// fail writes one error response. retryAfter > 0 adds the Retry-After
// header, rounded up to whole seconds (never 0 — a client that obeys
// "0" would hammer).
func fail(w http.ResponseWriter, status int, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

// authenticate resolves and admits the request's bearer token,
// writing the 401/403/429 refusal itself. ok is false once the
// response has been written.
func (g *Gateway) authenticate(w http.ResponseWriter, r *http.Request, admin bool) bool {
	st := g.auth.lookup(r.Header.Get("Authorization"))
	if st == nil {
		g.unauthorized.Add(1)
		w.Header().Set("WWW-Authenticate", `Bearer realm="esharp"`)
		fail(w, http.StatusUnauthorized, "missing or unknown bearer token", 0)
		return false
	}
	if admin && !st.cfg.Admin {
		g.forbidden.Add(1)
		fail(w, http.StatusForbidden, "token lacks admin grant", 0)
		return false
	}
	admitted, retryAfter, quota := st.admit(g.now())
	if !admitted {
		if quota {
			g.quotaExceeded.Add(1)
			fail(w, http.StatusTooManyRequests, "daily quota exceeded", retryAfter)
		} else {
			g.rateLimited.Add(1)
			fail(w, http.StatusTooManyRequests, "rate limit exceeded", retryAfter)
		}
		return false
	}
	return true
}

// budget resolves the request's latency budget: X-Budget-Ms header,
// then ?budget_ms, then Config.DefaultBudget; client values are
// clamped to (0, Config.MaxBudget].
func (g *Gateway) budget(r *http.Request) (time.Duration, error) {
	raw := r.Header.Get("X-Budget-Ms")
	if raw == "" {
		raw = r.URL.Query().Get("budget_ms")
	}
	if raw == "" {
		return g.cfg.DefaultBudget, nil
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms <= 0 {
		return 0, errors.New("budget must be a positive integer of milliseconds")
	}
	d := time.Duration(ms) * time.Millisecond
	if d > g.cfg.MaxBudget {
		d = g.cfg.MaxBudget
	}
	return d, nil
}

// searchRequest is the POST /v1/search body. Terms, when Query is
// absent, are joined into one query — the two spellings are
// equivalent, and under the canonical cache key so is every ordering.
type searchRequest struct {
	Query string   `json:"query"`
	Terms []string `json:"terms"`
}

// searchResponse carries the ranked experts. Experts is never null —
// an empty result marshals as [].
type searchResponse struct {
	Query    string             `json:"query"`
	Baseline bool               `json:"baseline,omitempty"`
	Experts  []expertise.Expert `json:"experts"`
}

func (g *Gateway) handleSearch(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	var start time.Time
	if g.obsOn {
		start = time.Now()
		defer func() { g.obsReqNS.Observe(time.Since(start).Nanoseconds()) }()
	}
	if r.Method != http.MethodPost {
		g.badRequest.Add(1)
		w.Header().Set("Allow", http.MethodPost)
		fail(w, http.StatusMethodNotAllowed, "POST only", 0)
		return
	}
	if !g.authenticate(w, r, false) {
		return
	}
	var req searchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		g.badRequest.Add(1)
		fail(w, http.StatusBadRequest, "malformed JSON body: "+err.Error(), 0)
		return
	}
	query := req.Query
	if query == "" && len(req.Terms) > 0 {
		// Join with spaces: tokenization splits right back, so
		// {"terms":["a","b"]} ≡ {"query":"a b"}.
		for i, t := range req.Terms {
			if i > 0 {
				query += " "
			}
			query += t
		}
	}
	budget, err := g.budget(r)
	if err != nil {
		g.badRequest.Add(1)
		fail(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	ctx := r.Context()
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	baseline := false
	switch r.URL.Query().Get("baseline") {
	case "", "0", "false":
	default:
		baseline = true
	}
	var experts []expertise.Expert
	if baseline {
		experts, err = g.srv.SearchBaselineContext(ctx, query)
	} else {
		experts, err = g.srv.SearchContext(ctx, query)
	}
	if err != nil {
		switch {
		case errors.Is(err, serve.ErrEmptyQuery), errors.Is(err, serve.ErrTooManyTerms):
			g.badRequest.Add(1)
			fail(w, http.StatusBadRequest, err.Error(), 0)
		case errors.Is(err, serve.ErrOverloaded):
			g.shed.Add(1)
			fail(w, http.StatusServiceUnavailable, err.Error(), time.Second)
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			// The budget ran out (or the client hung up — the response
			// goes nowhere either way): the whole query fails, because a
			// partial answer past the deadline has no reader.
			g.timeout.Add(1)
			fail(w, http.StatusGatewayTimeout, "latency budget exhausted", 0)
		default:
			g.backendErr.Add(1)
			fail(w, http.StatusBadGateway, err.Error(), 0)
		}
		return
	}
	if experts == nil {
		experts = []expertise.Expert{}
	}
	g.ok.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(searchResponse{Query: query, Baseline: baseline, Experts: experts})
}
