package textutil

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"49ers", "49ers"},
		{"  San   Francisco ", "san francisco"},
		{"NFL\tDraft\n2014", "nfl draft 2014"},
		{"", ""},
		{"   ", ""},
		{"#Niners", "#niners"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	prop := func(s string) bool {
		n := Normalize(s)
		return Normalize(n) == n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("The 49ers  Won TODAY!")
	want := []string{"the", "49ers", "won", "today!"}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize("   \t\n "); len(got) != 0 {
		t.Fatalf("Tokenize(whitespace) = %v, want empty", got)
	}
}

func TestContainsAll(t *testing.T) {
	text := Tokenize("Watching the 49ers draft with friends tonight")
	cases := []struct {
		query string
		want  bool
	}{
		{"49ers", true},
		{"49ers draft", true},
		{"draft 49ers", true}, // order irrelevant for AND-match
		{"49ERS", true},       // case folded at tokenize time
		{"49ers nfl", false},
		{"", false},
	}
	for _, c := range cases {
		if got := ContainsAll(text, Tokenize(c.query)); got != c.want {
			t.Errorf("ContainsAll(%q) = %v, want %v", c.query, got, c.want)
		}
	}
}

func TestContainsPhrase(t *testing.T) {
	text := Tokenize("san francisco 49ers draft news")
	cases := []struct {
		query string
		want  bool
	}{
		{"san francisco", true},
		{"francisco 49ers", true},
		{"san 49ers", false},     // not contiguous
		{"francisco san", false}, // wrong order
		{"san francisco 49ers draft news", true},
		{"san francisco 49ers draft news extra", false},
		{"", false},
	}
	for _, c := range cases {
		if got := ContainsPhrase(text, Tokenize(c.query)); got != c.want {
			t.Errorf("ContainsPhrase(%q) = %v, want %v", c.query, got, c.want)
		}
	}
}

func TestPhraseImpliesAll(t *testing.T) {
	// Property: phrase match is strictly stronger than AND match.
	prop := func(a, b, c string) bool {
		text := Tokenize(a + " " + b + " " + c)
		query := Tokenize(b)
		if len(query) == 0 || len(text) == 0 {
			return true
		}
		if ContainsPhrase(text, query) && !ContainsAll(text, query) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqualPhrase(t *testing.T) {
	if !EqualPhrase(" Dow  Futures", "dow futures") {
		t.Error("EqualPhrase should fold case and whitespace")
	}
	if EqualPhrase("dow futures", "dow future") {
		t.Error("EqualPhrase matched different strings")
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("The") {
		t.Error("The should be a stopword")
	}
	if IsStopword("49ers") {
		t.Error("49ers should not be a stopword")
	}
	if len(Stopwords()) == 0 {
		t.Error("Stopwords() empty")
	}
}

func TestVariantHashtag(t *testing.T) {
	if got := Variant("san francisco", VariantHashtag, 0); got != "#sanfrancisco" {
		t.Errorf("got %q", got)
	}
}

func TestVariantConcat(t *testing.T) {
	if got := Variant("san francisco", VariantConcat, 0); got != "sanfrancisco" {
		t.Errorf("got %q", got)
	}
	// Single word: no-op.
	if got := Variant("nfl", VariantConcat, 0); got != "nfl" {
		t.Errorf("got %q", got)
	}
}

func TestVariantAbbrev(t *testing.T) {
	if got := Variant("san francisco", VariantAbbrev, 0); got != "sf" {
		t.Errorf("got %q", got)
	}
	if got := Variant("world war ii", VariantAbbrev, 0); got != "wwi" {
		t.Errorf("got %q", got)
	}
}

func TestVariantDropLetterLength(t *testing.T) {
	in := "football"
	got := Variant(in, VariantDropLetter, 3)
	if utf8.RuneCountInString(got) != utf8.RuneCountInString(in)-1 {
		t.Errorf("DropLetter(%q) = %q, wrong length", in, got)
	}
}

func TestVariantSwapPreservesLetters(t *testing.T) {
	in := "football"
	got := Variant(in, VariantSwapLetters, 2)
	if len(got) != len(in) {
		t.Fatalf("swap changed length: %q -> %q", in, got)
	}
	// Same multiset of characters.
	count := func(s string) map[rune]int {
		m := map[rune]int{}
		for _, r := range s {
			m[r]++
		}
		return m
	}
	ci, cg := count(in), count(got)
	for r, n := range ci {
		if cg[r] != n {
			t.Fatalf("swap changed characters: %q -> %q", in, got)
		}
	}
}

func TestVariantShortInputsSafe(t *testing.T) {
	// No transformation may panic or produce garbage on short inputs.
	for _, in := range []string{"", "a", "ab", "abc", " "} {
		for k := 0; k < NumVariantKinds; k++ {
			for pos := 0; pos < 5; pos++ {
				got := Variant(in, VariantKind(k), pos)
				if strings.Contains(got, "  ") {
					t.Errorf("Variant(%q,%d,%d)=%q has double space", in, k, pos, got)
				}
			}
		}
	}
}

func TestVariantNeverPanicsProperty(t *testing.T) {
	prop := func(s string, k, pos int) bool {
		if k < 0 {
			k = -k
		}
		_ = Variant(s, VariantKind(k%NumVariantKinds), pos)
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVariantsDistinct(t *testing.T) {
	vs := Variants("san francisco", 6, 1)
	if len(vs) == 0 {
		t.Fatal("no variants generated")
	}
	seen := map[string]bool{"san francisco": true}
	for _, v := range vs {
		if seen[v] {
			t.Fatalf("duplicate or canonical variant %q in %v", v, vs)
		}
		seen[v] = true
	}
}

func TestVariantsRespectsMax(t *testing.T) {
	for max := 0; max < 8; max++ {
		vs := Variants("baltimore ravens", max, 0)
		if len(vs) > max {
			t.Fatalf("Variants(max=%d) returned %d", max, len(vs))
		}
	}
}

func TestTruncateRunes(t *testing.T) {
	cases := []struct {
		in   string
		n    int
		want string
	}{
		{"hello", 3, "hel"},
		{"hello", 10, "hello"},
		{"hello", 0, ""},
		{"héllo", 2, "hé"},
		{"", 5, ""},
	}
	for _, c := range cases {
		if got := TruncateRunes(c.in, c.n); got != c.want {
			t.Errorf("TruncateRunes(%q,%d) = %q, want %q", c.in, c.n, got, c.want)
		}
	}
}

func TestTruncateRunesProperty(t *testing.T) {
	prop := func(s string, n int) bool {
		if n < 0 {
			n = -n
		}
		n = n % 200
		got := TruncateRunes(s, n)
		return utf8.RuneCountInString(got) <= n && strings.HasPrefix(s, got)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkContainsAll(b *testing.B) {
	text := Tokenize("watching the 49ers draft with friends tonight at the stadium")
	query := Tokenize("49ers draft")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ContainsAll(text, query)
	}
}

func BenchmarkTokenize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Tokenize("Watching the 49ers Draft with Friends TONIGHT")
	}
}
