// Package textutil implements the light-weight text processing the e#
// pipeline relies on: lower-casing, tokenization, the two matching
// predicates from the paper (AND-match for tweets, exact in-order match
// for community lookup), and the spelling-variant generator used by the
// synthetic world to mimic the "hundreds of variants" a production query
// log contains.
//
// The paper deliberately performs no stemming or spell-correction
// (Section 4.1: queries are left unchanged "to capture as many different
// cases as possible"); this package follows suit.
package textutil

import (
	"sort"
	"strings"
	"unicode"
)

// Normalize lower-cases s and collapses runs of whitespace into single
// spaces. This is the only normalization the paper applies before
// matching.
func Normalize(s string) string {
	return strings.Join(Tokenize(s), " ")
}

// Tokenize lower-cases s and splits it into tokens on whitespace.
// Punctuation is preserved inside tokens (so "49ers" and "#niners" stay
// intact), matching the paper's choice to keep query variants verbatim.
func Tokenize(s string) []string {
	fields := strings.Fields(strings.ToLower(s))
	out := fields[:0]
	for _, f := range fields {
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

// CanonicalTokens sorts tokens ascending and removes duplicates, in
// place, returning the (possibly shortened) slice. Two queries that are
// permutations or repetitions of one another reduce to the same
// canonical token slice — the equivalence class under which the
// AND-match predicate (ContainsAll) is invariant. Callers must own the
// slice: its order is destroyed.
func CanonicalTokens(tokens []string) []string {
	if len(tokens) < 2 {
		return tokens
	}
	sort.Strings(tokens)
	out := tokens[:1]
	for _, t := range tokens[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// Canonical reduces s to its canonical token-set form: lower-cased,
// tokenized, sorted, de-duplicated and re-joined with single spaces.
// "Rust go", "go rust" and "go go rust" all canonicalize to "go rust".
func Canonical(s string) string {
	return strings.Join(CanonicalTokens(Tokenize(s)), " ")
}

// ContainsAll reports whether every token of query appears among the
// tokens of text (both lower-cased). This is the paper's default tweet
// matching predicate: "a tweet matches a query if it contains all of its
// terms after lower-casing".
func ContainsAll(textTokens []string, queryTokens []string) bool {
	if len(queryTokens) == 0 {
		return false
	}
	for _, q := range queryTokens {
		found := false
		for _, t := range textTokens {
			if t == q {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// ContainsPhrase reports whether the query tokens appear in text tokens
// contiguously and in order. This is the paper's community-matching
// predicate: "we find the community which contains the query terms
// exactly and in order, after lower-casing".
func ContainsPhrase(textTokens []string, queryTokens []string) bool {
	n, m := len(textTokens), len(queryTokens)
	if m == 0 || m > n {
		return false
	}
outer:
	for i := 0; i+m <= n; i++ {
		for j := 0; j < m; j++ {
			if textTokens[i+j] != queryTokens[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

// EqualPhrase reports whether two strings normalize to the same token
// sequence. Used for exact-match domain lookup.
func EqualPhrase(a, b string) bool {
	return Normalize(a) == Normalize(b)
}

// stopwords is a small English list; the generators use it to pad tweet
// text with realistic filler that the matcher must ignore.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "and": true, "or": true,
	"of": true, "in": true, "on": true, "at": true, "to": true,
	"is": true, "are": true, "was": true, "for": true, "with": true,
	"this": true, "that": true, "it": true, "as": true, "by": true,
	"be": true, "from": true, "about": true, "just": true, "so": true,
	"my": true, "we": true, "you": true, "i": true, "not": true,
}

// IsStopword reports whether the lower-cased token is a common English
// stopword.
func IsStopword(tok string) bool {
	return stopwords[strings.ToLower(tok)]
}

// Stopwords returns a copy of the built-in stopword list, sorted order
// unspecified.
func Stopwords() []string {
	out := make([]string, 0, len(stopwords))
	for w := range stopwords {
		out = append(out, w)
	}
	return out
}

// VariantKind enumerates the spelling-variant transformations the
// synthetic query-log generator applies to canonical keywords, mirroring
// the variant families the paper cites (football / fotbal / foot /
// #sanfrancisco / sf ...).
type VariantKind int

const (
	// VariantHashtag prefixes the concatenated keyword with '#'.
	VariantHashtag VariantKind = iota
	// VariantConcat removes the spaces of a multi-word keyword.
	VariantConcat
	// VariantDropLetter removes one interior letter (a typo).
	VariantDropLetter
	// VariantSwapLetters transposes two adjacent interior letters.
	VariantSwapLetters
	// VariantAbbrev keeps the first letter of each word.
	VariantAbbrev
	// VariantDoubleLetter doubles one interior letter.
	VariantDoubleLetter
	numVariantKinds
)

// NumVariantKinds is the number of distinct variant transformations.
const NumVariantKinds = int(numVariantKinds)

// Variant applies the given transformation to a canonical keyword. The
// pos argument selects the mutation site deterministically (callers pass
// an RNG draw); it is reduced modulo the valid range. If the
// transformation is not applicable (for example VariantConcat on a
// single-word keyword) the canonical form is returned unchanged, so
// callers can filter with != original.
func Variant(keyword string, kind VariantKind, pos int) string {
	kw := strings.ToLower(strings.TrimSpace(keyword))
	if kw == "" {
		return kw
	}
	if pos < 0 {
		pos = -pos
	}
	switch kind {
	case VariantHashtag:
		return "#" + strings.ReplaceAll(kw, " ", "")
	case VariantConcat:
		return strings.ReplaceAll(kw, " ", "")
	case VariantDropLetter:
		runes := []rune(kw)
		if len(runes) < 4 {
			return kw
		}
		i := 1 + pos%(len(runes)-2)
		if runes[i] == ' ' {
			i++
			if i >= len(runes)-1 {
				return kw
			}
		}
		return string(runes[:i]) + string(runes[i+1:])
	case VariantSwapLetters:
		runes := []rune(kw)
		if len(runes) < 4 {
			return kw
		}
		i := 1 + pos%(len(runes)-3)
		if runes[i] == ' ' || runes[i+1] == ' ' || runes[i] == runes[i+1] {
			return kw
		}
		runes[i], runes[i+1] = runes[i+1], runes[i]
		return string(runes)
	case VariantAbbrev:
		words := strings.Fields(kw)
		if len(words) < 2 {
			return kw
		}
		var b strings.Builder
		for _, w := range words {
			r := []rune(w)
			b.WriteRune(r[0])
		}
		return b.String()
	case VariantDoubleLetter:
		runes := []rune(kw)
		if len(runes) < 3 {
			return kw
		}
		i := 1 + pos%(len(runes)-2)
		if runes[i] == ' ' || !unicode.IsLetter(runes[i]) {
			return kw
		}
		return string(runes[:i+1]) + string(runes[i:])
	default:
		return kw
	}
}

// Variants generates up to max distinct variants of keyword, cycling
// through the transformation kinds with the mutation site advanced by
// salt. The canonical form itself is never included.
func Variants(keyword string, max, salt int) []string {
	canon := Normalize(keyword)
	seen := map[string]bool{canon: true}
	var out []string
	for round := 0; round < 4 && len(out) < max; round++ {
		for k := 0; k < NumVariantKinds && len(out) < max; k++ {
			v := Variant(canon, VariantKind(k), salt+round*7+k)
			if v == "" || seen[v] {
				continue
			}
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// TruncateRunes returns s truncated to at most n runes. The microblog
// generator uses it to enforce the 140-character post limit.
func TruncateRunes(s string, n int) string {
	if n <= 0 {
		return ""
	}
	count := 0
	for i := range s {
		if count == n {
			return s[:i]
		}
		count++
	}
	return s
}
