package transport_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/expertise"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/world"
)

var (
	pipeOnce sync.Once
	pipe     *core.Pipeline
	pipeSets []eval.QuerySet
	pipeErr  error
)

func testPipeline(t testing.TB) (*core.Pipeline, []eval.QuerySet) {
	t.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = core.BuildPipeline(core.TinyPipelineConfig())
		if pipeErr == nil {
			pipeSets = eval.BuildQuerySets(pipe.World, pipe.Log,
				eval.SetSizes{PerCategory: 25, Top: 60})
		}
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe, pipeSets
}

func streamPosts(p *core.Pipeline, seed uint64, n int) []microblog.Post {
	s := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(seed))
	posts := make([]microblog.Post, n)
	for i := range posts {
		posts[i] = s.Next()
	}
	return posts
}

func expertsIdentical(t *testing.T, label, query string, got, want []expertise.Expert) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s %q: %d results, reference has %d", label, query, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s %q rank %d:\n  got  %+v\n  want %+v", label, query, i, got[i], want[i])
		}
	}
}

// testClientConfig keeps test round trips snappy but tolerant of a
// loaded CI container.
func testClientConfig() transport.ClientConfig {
	return transport.ClientConfig{Timeout: 10 * time.Second}
}

// startShardServers partitions the pipeline's base corpus across n
// loopback ShardServers and returns handshaken RemoteShard clients,
// one per shard, with cleanup registered on t.
func startShardServers(t testing.TB, p *core.Pipeline, n int, icfg ingest.Config) []*transport.RemoteShard {
	t.Helper()
	clients := make([]*transport.RemoteShard, n)
	for i := 0; i < n; i++ {
		part := shard.Partition(p.Corpus, i, n)
		idx := ingest.New(part, icfg)
		srv, err := transport.Listen("127.0.0.1:0", idx, transport.DefaultServerConfig(i, n))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			srv.Close()
			idx.Close()
		})
		c := transport.NewRemoteShard(srv.Addr().String(), testClientConfig())
		t.Cleanup(func() { c.Close() })
		if err := c.Handshake(i, n, len(p.World.Users), part.NumTweets()); err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	return clients
}

// TestRemoteQuiescedEquivalence is the acceptance bar of the transport:
// for N ∈ {1, 2, 4}, after routing the same posts through loopback
// ShardServers and quiescing over the wire, the remote scatter-gather
// detector must return bit-identical ranked experts — and matched-tweet
// counts — to the in-process Router and to a cold core.Detector rebuilt
// over the same posts, for every query of every evaluation query set,
// on both the e# and the baseline path. This is the e# equivalence
// spine surviving a process boundary.
func TestRemoteQuiescedEquivalence(t *testing.T) {
	p, sets := testPipeline(t)
	posts := streamPosts(p, 71, 400)
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}

	cold := core.NewDetector(p.Collection, p.Corpus.ExtendedWith(posts), p.Cfg.Online)

	for _, n := range []int{1, 2, 4} {
		// In-process reference over the identical partitioning.
		router := shard.New(p.Corpus, shard.Config{Shards: n, Ingest: icfg})
		router.IngestBatch(posts)
		router.Quiesce()
		local := core.NewShardedLiveDetector(p.Collection, router, p.Cfg.Online)

		clients := startShardServers(t, p, n, icfg)
		backends := make([]shard.Backend, n)
		for i, c := range clients {
			backends[i] = c
		}
		cluster := shard.NewCluster(p.World, backends...)
		if err := cluster.IngestBatch(posts); err != nil {
			t.Fatal(err)
		}
		if err := cluster.Quiesce(); err != nil {
			t.Fatal(err)
		}
		remote := core.NewShardedLiveDetectorOver(p.Collection, cluster, p.Cfg.Online)

		if ev, err := cluster.EpochVector(nil); err != nil || len(ev) != n {
			t.Fatalf("N=%d: epoch vector %v, err %v", n, ev, err)
		}
		total := 0
		for _, set := range sets {
			for _, q := range set.Queries {
				total++
				gotES, gotTrace := remote.Search(q)
				wantES, wantTrace := local.Search(q)
				coldES, coldTrace := cold.Search(q)
				expertsIdentical(t, "remote-vs-local", q, gotES, wantES)
				expertsIdentical(t, "remote-vs-cold", q, gotES, coldES)
				if gotTrace.MatchedTweets != wantTrace.MatchedTweets ||
					gotTrace.MatchedTweets != coldTrace.MatchedTweets {
					t.Fatalf("N=%d %q: matched %d tweets over the wire, local %d, cold %d",
						n, q, gotTrace.MatchedTweets, wantTrace.MatchedTweets, coldTrace.MatchedTweets)
				}
				expertsIdentical(t, "remote-baseline", q,
					remote.SearchBaseline(q), local.SearchBaseline(q))
			}
		}
		if total == 0 {
			t.Fatal("no queries in eval sets")
		}
		if pq, se := remote.PartialStats(); pq != 0 || se != 0 {
			t.Fatalf("N=%d: healthy cluster reported partial queries %d, shard errors %d", n, pq, se)
		}
		router.Close()
	}
}

// TestMixedLocalRemoteEquivalence wires a 4-shard cluster with two
// in-process backends and two behind the wire — the
// drain-one-process-at-a-time deployment shape — and holds it to the
// same bit-identical bar against a cold rebuild.
func TestMixedLocalRemoteEquivalence(t *testing.T) {
	p, sets := testPipeline(t)
	posts := streamPosts(p, 73, 300)
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}
	const n = 4

	clients := startShardServers(t, p, n, icfg)
	backends := make([]shard.Backend, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			idx := ingest.New(shard.Partition(p.Corpus, i, n), icfg)
			t.Cleanup(idx.Close)
			backends[i] = shard.NewLocal(idx)
		} else {
			backends[i] = clients[i]
		}
	}
	cluster := shard.NewCluster(p.World, backends...)
	if err := cluster.IngestBatch(posts); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Quiesce(); err != nil {
		t.Fatal(err)
	}
	mixed := core.NewShardedLiveDetectorOver(p.Collection, cluster, p.Cfg.Online)
	cold := core.NewDetector(p.Collection, p.Corpus.ExtendedWith(posts), p.Cfg.Online)

	for _, set := range sets {
		for _, q := range set.Queries {
			got, gotTrace := mixed.Search(q)
			want, wantTrace := cold.Search(q)
			expertsIdentical(t, "mixed-vs-cold", q, got, want)
			if gotTrace.MatchedTweets != wantTrace.MatchedTweets {
				t.Fatalf("%q: matched %d tweets, cold %d", q, gotTrace.MatchedTweets, wantTrace.MatchedTweets)
			}
		}
	}
	if pq, se := mixed.PartialStats(); pq != 0 || se != 0 {
		t.Fatalf("healthy mixed cluster reported partial queries %d, shard errors %d", pq, se)
	}
}

// TestConcurrentRemoteIngestSearch is the -race hammer over the wire:
// concurrent routed ingesters stream posts through the cluster while
// scatter-gather searchers query it, all over loopback TCP with every
// shard's compactor running. Afterwards the quiesced cluster must match
// a cold detector rebuilt from content paged back over the wire.
func TestConcurrentRemoteIngestSearch(t *testing.T) {
	p, _ := testPipeline(t)
	const n = 2
	clients := startShardServers(t, p, n, ingest.Config{SealThreshold: 16, CompactFanIn: 3})
	backends := make([]shard.Backend, n)
	for i, c := range clients {
		backends[i] = c
	}
	cluster := shard.NewCluster(p.World, backends...)
	remote := core.NewShardedLiveDetectorOver(p.Collection, cluster, p.Cfg.Online)
	queries := []string{"49ers", "diabetes", "nfl", "dow futures", "coffee", "zzz-none"}
	maxResults := p.Cfg.Online.Expertise.MaxResults

	const ingesters, perIngester = 2, 100
	const searchers, perSearcher = 4, 50
	errs := make(chan error, ingesters+searchers)
	var wg sync.WaitGroup
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(uint64(400+g)))
			for i := 0; i < perIngester; i++ {
				if _, err := cluster.Ingest(stream.Next()); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSearcher; i++ {
				q := queries[(g+i)%len(queries)]
				var experts []expertise.Expert
				if i%3 == 0 {
					experts = remote.SearchBaseline(q)
				} else {
					experts, _ = remote.Search(q)
				}
				if maxResults > 0 && len(experts) > maxResults {
					errs <- errInvariant("result cap exceeded")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if pq, se := remote.PartialStats(); pq != 0 || se != 0 {
		t.Fatalf("healthy cluster reported partial queries %d, shard errors %d under load", pq, se)
	}
	if err := cluster.Quiesce(); err != nil {
		t.Fatal(err)
	}

	// Cold rebuild from the shards' own final content, paged back over
	// the wire.
	all := append([]microblog.Tweet(nil), p.Corpus.Tweets()...)
	totalIngested := 0
	for _, c := range clients {
		posts, err := c.DumpIngested()
		if err != nil {
			t.Fatal(err)
		}
		totalIngested += len(posts)
		for _, post := range posts {
			all = append(all, microblog.MakeTweet(post))
		}
	}
	if want := ingesters * perIngester; totalIngested != want {
		t.Fatalf("paged %d ingested posts back, want %d", totalIngested, want)
	}
	cold := core.NewDetector(p.Collection, microblog.FromTweets(p.World, all), p.Cfg.Online)
	for _, q := range queries {
		got, _ := remote.Search(q)
		want, _ := cold.Search(q)
		expertsIdentical(t, "post-hammer", q, got, want)
	}
}

// TestHandshakeRejectsMisdeployment pins the wiring-time checks: a
// client handshaken against the wrong shard index, partition count or
// base slice must fail before any query does.
func TestHandshakeRejectsMisdeployment(t *testing.T) {
	p, _ := testPipeline(t)
	clients := startShardServers(t, p, 2, ingest.DefaultConfig())
	part0 := shard.Partition(p.Corpus, 0, 2)

	if err := clients[0].Handshake(0, 2, len(p.World.Users), part0.NumTweets()); err != nil {
		t.Fatalf("correct handshake failed: %v", err)
	}
	if err := clients[0].Handshake(1, 2, len(p.World.Users), part0.NumTweets()); err == nil {
		t.Fatal("wrong shard index accepted")
	}
	if err := clients[0].Handshake(0, 4, len(p.World.Users), part0.NumTweets()); err == nil {
		t.Fatal("wrong partition count accepted")
	}
	if err := clients[0].Handshake(0, 2, len(p.World.Users)+1, part0.NumTweets()); err == nil {
		t.Fatal("wrong world size accepted")
	}
	if err := clients[0].Handshake(0, 2, len(p.World.Users), part0.NumTweets()+1); err == nil {
		t.Fatal("wrong base slice accepted")
	}
}

// TestDialReplicas pins the replica-aware wiring step: every address
// of a group must serve the same partition coordinates (the
// handshake runs per replica), a group with a mis-deployed member
// fails as a whole with every already-dialed client closed, and an
// empty group is rejected.
func TestDialReplicas(t *testing.T) {
	p, _ := testPipeline(t)
	icfg := ingest.DefaultConfig()
	part := shard.Partition(p.Corpus, 0, 2)
	users := len(p.World.Users)

	// Two interchangeable servers for shard 0 of 2.
	var addrs []string
	for i := 0; i < 2; i++ {
		idx := ingest.New(part, icfg)
		srv, err := transport.Listen("127.0.0.1:0", idx, transport.DefaultServerConfig(0, 2))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			srv.Close()
			idx.Close()
		})
		addrs = append(addrs, srv.Addr().String())
	}
	reps, err := transport.DialReplicas(addrs, 0, 2, users, part.NumTweets(), testClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("dialed %d replicas, want 2", len(reps))
	}
	for i, r := range reps {
		if e, err := r.Epoch(); err != nil || e == 0 {
			t.Fatalf("replica %d: epoch %d, err %v", i, e, err)
		}
		r.Close()
	}

	// A group whose second member claims the wrong partition fails as a
	// whole — the error names the offender.
	wrongIdx := ingest.New(shard.Partition(p.Corpus, 1, 2), icfg)
	wrongSrv, err := transport.Listen("127.0.0.1:0", wrongIdx, transport.DefaultServerConfig(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		wrongSrv.Close()
		wrongIdx.Close()
	})
	if _, err := transport.DialReplicas([]string{addrs[0], wrongSrv.Addr().String()},
		0, 2, users, part.NumTweets(), testClientConfig()); err == nil {
		t.Fatal("a mis-deployed replica was accepted into the group")
	}
	if _, err := transport.DialReplicas(nil, 0, 2, users, part.NumTweets(), testClientConfig()); err == nil {
		t.Fatal("an empty replica group was accepted")
	}
}

// TestConnectionReuse pins the pooling behaviour the latency numbers
// rest on: a sequence of queries on one client reuses one connection
// instead of dialing per request.
func TestConnectionReuse(t *testing.T) {
	p, _ := testPipeline(t)
	clients := startShardServers(t, p, 1, ingest.DefaultConfig())
	c := clients[0]
	// One warmup round first: the first Epoch dedicates a connection to
	// the push subscription, so steady state is two live connections
	// (subscription + query). After the warmup, dials must stay flat.
	if _, err := c.Epoch(); err != nil {
		t.Fatal(err)
	}
	if _, _, v, err := c.Search(context.Background(), []string{"49ers"}, false, nil); err != nil {
		t.Fatal(err)
	} else {
		v.Release()
	}
	dialsAfterHandshake := c.Dials()
	for i := 0; i < 10; i++ {
		if _, err := c.Epoch(); err != nil {
			t.Fatal(err)
		}
		rows, _, v, err := c.Search(context.Background(), []string{"49ers"}, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) > 0 {
			users := make([]world.UserID, 0, len(rows))
			for _, rc := range rows {
				users = append(users, rc.User)
			}
			stats, err := v.Stats(context.Background(), users, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(stats) != len(users) {
				t.Fatalf("stats returned %d triples for %d users", len(stats), len(users))
			}
		}
		v.Release()
	}
	if d := c.Dials(); d != dialsAfterHandshake {
		t.Fatalf("10 query rounds dialed %d extra connections, want 0", d-dialsAfterHandshake)
	}
}

type errInvariant string

func (e errInvariant) Error() string { return string(e) }
