// Package transport puts a wire behind the shard.Backend interface: a
// length-prefixed binary protocol over TCP carrying the scatter-gather
// exchange — term-set searches answered with raw integer candidate
// rows, batched denominator fetches, routed ingest batches, and
// epoch/quiesce probes — between a RemoteShard client and a
// ShardServer wrapping one ingest.Index.
//
// The protocol exists because the sharded read path was
// transport-shaped before any transport existed: everything that
// crosses a shard boundary is an additive integer counter
// (expertise.RawCandidate, expertise.UserStats), every float division
// happens exactly once at the coordinator, and the per-shard unit of
// work runs against one pinned snapshot. Moving those integers through
// a socket therefore cannot change a single bit of the ranking — the
// bar TestRemoteQuiescedEquivalence holds the wire to.
//
// Framing. Every message is one frame: a 4-byte big-endian length (of
// everything after itself: one op byte plus the payload), the op byte,
// and an op-specific varint payload (wire.go). Frames longer than
// MaxFrame are rejected before any allocation, and every count field
// inside a payload is validated against the bytes actually present, so
// a hostile peer can neither panic a decoder nor make it over-allocate
// (FuzzDecodeFrame enforces this).
//
// Conversation state. A connection is a sequential request/response
// stream with exactly one piece of server-side state: the snapshot the
// last OpSearch or OpSearchStats pinned. A following OpStats on the
// same connection is answered from that pinned snapshot, which is what
// keeps one query's numerators and denominators reading the same
// immutable view — the same per-query consistency the in-process path
// gets from holding a snapshot pointer. OpSearchStats collapses the
// whole conversation into one round trip for the shard's own
// candidates; the pin survives only for the optional top-up OpStats a
// multi-shard coordinator issues for foreign candidates, and OpUnpin
// drops it without a response when no top-up comes. RemoteShard checks
// a connection out of its pool for the whole conversation, so
// concurrent queries never interleave on one connection.
//
// Pushes. A connection that sent OpSubscribe additionally receives
// server-initiated OpEpochDelta frames whenever the index publishes a
// new snapshot. Pushes are coalesced (at most one write in flight per
// connection, always carrying the latest epoch) and serialized with
// response writes, so the stream stays framed; a client reading for a
// response absorbs any interleaved deltas. RemoteShard dedicates one
// pooled connection to its subscription and mirrors the pushed epoch
// into an atomic, which is what turns Cluster.EpochVector sampling
// into a memory read on warm connections.
//
// Failure policy is fail-fast: the client applies one deadline per
// round trip, retries once only when a pooled (possibly stale)
// connection dies before ever answering, and otherwise surfaces the
// error to the scatter-gather coordinator, which degrades to partial
// results and counts the event (core.ShardedLiveDetector.PartialStats,
// surfaced through serve.Stats). Reconnects are additionally gated by
// a shard.Health dial budget so a flapping server cannot stack dials.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds one frame's length field: op byte plus payload. 8 MiB
// comfortably holds the largest legitimate message (a few thousand
// candidate rows or a paged ingest batch) while capping what a hostile
// length prefix can make a reader allocate.
const MaxFrame = 8 << 20

// Op identifies a frame's message type. Requests and their responses
// share the op; a server that cannot answer replies OpError instead.
type Op byte

// The protocol ops. The zero value is deliberately invalid.
const (
	// OpSearch carries a term-set search (SearchReq → SearchResp) and
	// pins the answering snapshot to the connection.
	OpSearch Op = 0x01
	// OpStats fetches denominator triples for an ascending user list
	// (StatsReq → StatsResp) from the pinned snapshot (or the current
	// one if the connection has not searched).
	OpStats Op = 0x02
	// OpIngest appends a routed post batch (IngestReq → IngestResp).
	OpIngest Op = 0x03
	// OpEpoch probes the shard's current snapshot epoch (empty request
	// → EpochResp).
	OpEpoch Op = 0x04
	// OpQuiesce synchronously drains eligible compactions (empty
	// request → EpochResp with the post-quiesce epoch).
	OpQuiesce Op = 0x05
	// OpInfo describes the served partition (empty request → InfoResp);
	// clients use it as a deployment-sanity handshake.
	OpInfo Op = 0x06
	// OpTweets pages the shard's post log (TweetsReq → TweetsResp); the
	// cold-rebuild equivalence checks fetch ingested content with it.
	OpTweets Op = 0x07
	// OpSubscribe enrolls the connection for server→client epoch pushes
	// (empty request → EpochResp with the epoch the subscription starts
	// from). After the ack, the server interleaves OpEpochDelta frames
	// into the response stream whenever the index publishes.
	OpSubscribe Op = 0x08
	// OpEpochDelta is a server-initiated push (EpochResp payload, no
	// request): the subscribed shard's new absolute snapshot epoch.
	// Pushes are coalesced — one pusher per connection sends the latest
	// epoch, never a backlog.
	OpEpochDelta Op = 0x09
	// OpSearchStats is the composite query op (SearchReq →
	// SearchStatsResp): search plus denominator stats for the matched
	// candidates, executed server-side against one snapshot and answered
	// in one frame. On a multi-shard deployment the snapshot stays
	// pinned for the top-up OpStats fetching foreign candidates'
	// denominators; a single-shard server has no foreign candidates and
	// skips the pin.
	OpSearchStats Op = 0x0a
	// OpUnpin is fire-and-forget (empty payload, no response): it
	// releases the connection's pinned snapshot without costing a round
	// trip. Unpinning an unpinned connection is a no-op.
	OpUnpin Op = 0x0b
	// OpDeflate is a compression envelope, not a message of its own: its
	// payload is the inner op byte, the inflated payload length as a
	// uvarint, and the flate stream of the inner payload. Either side
	// may send it once OpInfo negotiation establishes both support it;
	// every receiver decodes it unconditionally. Envelopes never nest.
	OpDeflate Op = 0x10
	// OpError is a response-only op whose payload is an error string.
	OpError Op = 0x7f
)

// Name returns the op's lowercase protocol name ("search",
// "search_stats", ...), used to key per-op metrics; an op outside the
// protocol formats as "op_0xNN".
func (o Op) Name() string {
	switch o {
	case OpSearch:
		return "search"
	case OpStats:
		return "stats"
	case OpIngest:
		return "ingest"
	case OpEpoch:
		return "epoch"
	case OpQuiesce:
		return "quiesce"
	case OpInfo:
		return "info"
	case OpTweets:
		return "tweets"
	case OpSubscribe:
		return "subscribe"
	case OpEpochDelta:
		return "epoch_delta"
	case OpSearchStats:
		return "search_stats"
	case OpUnpin:
		return "unpin"
	case OpDeflate:
		return "deflate"
	case OpError:
		return "error"
	}
	return fmt.Sprintf("op_0x%02x", byte(o))
}

// FeatureCompress is the OpInfo-negotiated feature bit for OpDeflate
// frame compression. A client advertises its feature bits as a uvarint
// in the (previously empty) OpInfo request payload; the server reports
// its own in InfoResp.Features and records the intersection for the
// connection. Compression gates only sending — decoding OpDeflate is
// unconditional — so an empty request payload (an old client) simply
// yields an uncompressed connection.
const FeatureCompress uint64 = 1 << 0

// ErrFrameTooLarge reports a length prefix exceeding MaxFrame.
var ErrFrameTooLarge = errors.New("transport: frame exceeds MaxFrame")

// ErrFrameTruncated reports a frame that ends before its declared
// length.
var ErrFrameTruncated = errors.New("transport: truncated frame")

// headerLen is the fixed frame prefix: the 4-byte length field.
const headerLen = 4

// AppendFrame appends one framed message to buf: header, op, payload.
func AppendFrame(buf []byte, op Op, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(1+len(payload)))
	buf = append(buf, byte(op))
	return append(buf, payload...)
}

// DecodeFrame splits one frame off the front of data, returning its op,
// its payload (aliasing data) and the bytes that follow it. It is the
// pure-slice form of ReadFrame and the fuzzing entry point: no input
// can make it panic, and it allocates nothing.
func DecodeFrame(data []byte) (op Op, payload, rest []byte, err error) {
	if len(data) < headerLen {
		return 0, nil, data, ErrFrameTruncated
	}
	n := binary.BigEndian.Uint32(data)
	if n == 0 {
		return 0, nil, data, fmt.Errorf("transport: empty frame body")
	}
	if n > MaxFrame {
		return 0, nil, data, ErrFrameTooLarge
	}
	if uint32(len(data)-headerLen) < n {
		return 0, nil, data, ErrFrameTruncated
	}
	body := data[headerLen : headerLen+int(n)]
	return Op(body[0]), body[1:], data[headerLen+int(n):], nil
}

// ReadFrame reads exactly one frame from r, reusing buf's capacity for
// the body, and returns the op, the payload (aliasing the returned
// buffer) and the grown buffer for the next call. The length prefix is
// validated before the body is read, so a hostile prefix cannot drive
// an allocation past MaxFrame; a short read surfaces as
// ErrFrameTruncated (wrapping the underlying error) rather than a
// partially filled payload.
func ReadFrame(r io.Reader, buf []byte) (op Op, payload, bufOut []byte, err error) {
	var header [headerLen]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		// EOF before any header byte is a clean end of stream; anything
		// later is a truncation.
		if errors.Is(err, io.ErrUnexpectedEOF) {
			err = fmt.Errorf("%w: %v", ErrFrameTruncated, err)
		}
		return 0, nil, buf, err
	}
	n := binary.BigEndian.Uint32(header[:])
	if n == 0 {
		return 0, nil, buf, fmt.Errorf("transport: empty frame body")
	}
	if n > MaxFrame {
		return 0, nil, buf, ErrFrameTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, buf, fmt.Errorf("%w: %v", ErrFrameTruncated, err)
	}
	return Op(buf[0]), buf[1:], buf, nil
}
