package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expertise"
	"repro/internal/microblog"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/world"
)

// ClientConfig tunes a RemoteShard.
type ClientConfig struct {
	// Timeout bounds one request round trip — dial, write, read. Zero
	// means 2s. Quiesce, which drains compactions server-side, gets
	// QuiesceTimeout instead.
	Timeout time.Duration
	// QuiesceTimeout bounds an OpQuiesce round trip. Zero means 10×
	// Timeout.
	QuiesceTimeout time.Duration
	// MaxIdleConns caps the pooled idle connections. Zero means 4.
	MaxIdleConns int
	// IngestChunk caps how many posts one OpIngest frame carries; a
	// larger batch is split into sequential frames. Zero means 512.
	IngestChunk int
	// Dial overrides the dialer — the fault-injection tests wrap
	// connections here. Nil means net.DialTimeout("tcp", addr, timeout).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// DialBackoff tunes the reconnect budget: every fresh dial must be
	// granted by a shard.Health running these windows, so a flapping or
	// dead server costs one dial per backoff window instead of one per
	// request. Zero fields take shard.DefaultBackoff.
	DialBackoff shard.Backoff
	// NoSubscribe disables the epoch-push subscription; Epoch then
	// always probes with an OpEpoch round trip. The fault tests use it
	// to pin the probe path.
	NoSubscribe bool
	// NoCompress keeps this client from advertising FeatureCompress, so
	// neither side sends OpDeflate envelopes on its connections.
	NoCompress bool
	// Obs, when non-nil, exports the client's wire accounting into the
	// registry: per-op round-trip counters and latency histograms
	// (rpc_client_<op>_requests, rpc_client_<op>_ns), byte counters
	// (rpc_client_bytes_read, rpc_client_bytes_written),
	// rpc_client_deflate_saved_bytes, rpc_client_dials and
	// rpc_client_epoch_rtts. Handles are get-or-create by name, so every
	// client sharing one registry aggregates into the same rows —
	// cluster-wide client totals, with per-shard latency split already
	// covered by the coordinator's sharded_shard<i>_* histograms. Nil
	// adds no clock reads to the request path.
	Obs *obs.Registry
}

// DefaultClientConfig returns the client defaults.
func DefaultClientConfig() ClientConfig { return ClientConfig{} }

// ErrClientClosed reports a request on a closed RemoteShard.
var ErrClientClosed = errors.New("transport: client closed")

// RemoteShard speaks the wire protocol to one ShardServer and satisfies
// shard.Backend, so a shard.Cluster (and through it
// core.ShardedLiveDetector) addresses a networked shard exactly as it
// addresses an in-process one. Connections are pooled and reused; a
// request that fails on a pooled — possibly stale — connection before
// ever being answered is retried once on a fresh dial (the reconnect
// path), and every other failure surfaces immediately: fail fast,
// degrade to partial results, let the coordinator count it. Safe for
// concurrent use; concurrent requests use distinct connections.
type RemoteShard struct {
	addr string
	cfg  ClientConfig

	mu     sync.Mutex
	idle   []*clientConn
	closed bool
	// expect, once Handshake succeeds, pins the deployment identity —
	// including the server incarnation — that every freshly dialed
	// connection is re-verified against (see negotiate).
	expect *InfoResp

	// health is the dial budget: every fresh dial must be granted by
	// this backoff state machine, failed dials (and failed negotiation)
	// open its window.
	health *shard.Health

	// The epoch-push subscription. subMu guards subConn and the
	// subscribe/teardown transitions; subOn flips true while a
	// subscription's reader loop is live, and subEpoch mirrors the
	// latest epoch the server reported (pushes, acks, probe and quiesce
	// responses — monotonic via CAS, see noteEpoch). While subOn, Epoch
	// is a memory read.
	subMu    sync.Mutex
	subConn  *clientConn
	subOn    atomic.Bool
	subEpoch atomic.Uint64

	dials atomic.Int64
	// epochRTTs counts round trips spent learning epochs (OpEpoch
	// probes and OpSubscribe exchanges) — the number the push path
	// drives to zero on warm connections.
	epochRTTs atomic.Int64

	// Observability (zero-valued without ClientConfig.Obs): per-op
	// round-trip counters and latency histograms indexed by op byte,
	// plus the wire byte counters. All handles are nil-safe, so the
	// un-instrumented path pays nothing but the obsOn branch.
	obsOn           bool
	obsOpReqs       [128]*obs.Counter
	obsOpNS         [128]*obs.Histogram
	obsBytesR       *obs.Counter
	obsBytesW       *obs.Counter
	obsDeflateSaved *obs.Counter
	obsDials        *obs.Counter
	obsEpochRTTs    *obs.Counter
}

// clientConn is one pooled connection plus its reusable buffers.
type clientConn struct {
	c        net.Conn
	br       *bufio.Reader
	in       []byte // frame read buffer
	out      []byte // frame build buffer
	env      []byte // OpDeflate request envelope buffer
	dec      []byte // OpDeflate response inflate buffer
	pooled   bool   // checked out of the idle pool (retry-once eligible)
	compress bool   // negotiated FeatureCompress on this connection
}

// RemoteShard must keep satisfying the interfaces the in-process
// shards speak — that is the whole point of the transport.
var (
	_ shard.Backend       = (*RemoteShard)(nil)
	_ shard.SearchStatser = (*RemoteShard)(nil)
	_ shard.EpochLocality = (*RemoteShard)(nil)
)

// NewRemoteShard builds a client for one shard server. No connection is
// made until the first request (or Handshake).
func NewRemoteShard(addr string, cfg ClientConfig) *RemoteShard {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.QuiesceTimeout <= 0 {
		cfg.QuiesceTimeout = 10 * cfg.Timeout
	}
	if cfg.MaxIdleConns <= 0 {
		cfg.MaxIdleConns = 4
	}
	if cfg.IngestChunk <= 0 {
		cfg.IngestChunk = 512
	}
	r := &RemoteShard{addr: addr, cfg: cfg, health: shard.NewHealth(cfg.DialBackoff)}
	if cfg.Obs != nil {
		r.obsOn = true
		for _, op := range requestOps {
			r.obsOpReqs[op&0x7f] = cfg.Obs.Counter("rpc_client_" + op.Name() + "_requests")
			r.obsOpNS[op&0x7f] = cfg.Obs.Histogram("rpc_client_" + op.Name() + "_ns")
		}
		r.obsBytesR = cfg.Obs.Counter("rpc_client_bytes_read")
		r.obsBytesW = cfg.Obs.Counter("rpc_client_bytes_written")
		r.obsDeflateSaved = cfg.Obs.Counter("rpc_client_deflate_saved_bytes")
		r.obsDials = cfg.Obs.Counter("rpc_client_dials")
		r.obsEpochRTTs = cfg.Obs.Counter("rpc_client_epoch_rtts")
	}
	return r
}

// Addr returns the server address this client dials.
func (r *RemoteShard) Addr() string { return r.addr }

// Dials returns how many connections this client has opened — the
// fault-injection tests assert reconnects with it.
func (r *RemoteShard) Dials() int64 { return r.dials.Load() }

// EpochRTTs returns how many round trips this client has spent
// learning epochs: OpEpoch probes plus OpSubscribe exchanges. On warm
// subscribed connections the count stays flat — pushes carry the
// epochs — which the streaming example's smoke run asserts.
func (r *RemoteShard) EpochRTTs() int64 { return r.epochRTTs.Load() }

// Subscribed reports whether an epoch-push subscription is currently
// live (Epoch is a memory read while it is).
func (r *RemoteShard) Subscribed() bool { return r.subOn.Load() }

// EpochIsLocal implements shard.EpochLocality dynamically: sampling
// this backend's epoch is free exactly while a subscription is live.
// The Cluster re-checks per sample, so a lapsed subscription falls
// back to health-gated probing automatically.
func (r *RemoteShard) EpochIsLocal() bool { return r.subOn.Load() }

// Health returns the client's dial budget state machine.
func (r *RemoteShard) Health() *shard.Health { return r.health }

// checkout pops an idle connection or dials a fresh one.
func (r *RemoteShard) checkout() (*clientConn, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClientClosed
	}
	if n := len(r.idle); n > 0 {
		cc := r.idle[n-1]
		r.idle = r.idle[:n-1]
		r.mu.Unlock()
		cc.pooled = true
		return cc, nil
	}
	r.mu.Unlock()
	return r.dialConn()
}

// dialConn opens a fresh connection, inside the dial budget: a grant
// is requested from health first, a refused dial fails instantly with
// shard.ErrBackoff, and the dial-plus-negotiation outcome feeds the
// budget back. That caps reconnect attempts per backoff window no
// matter how many requests pile onto a flapping shard.
func (r *RemoteShard) dialConn() (*clientConn, error) {
	if !r.health.Allow() {
		return nil, fmt.Errorf("transport: dial %s: %w", r.addr, shard.ErrBackoff)
	}
	dial := r.cfg.Dial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	c, err := dial(r.addr, r.cfg.Timeout)
	if err != nil {
		r.health.Fail()
		return nil, fmt.Errorf("transport: dial %s: %w", r.addr, err)
	}
	r.dials.Add(1)
	r.obsDials.Add(1)
	cc := &clientConn{c: c, br: bufio.NewReader(c)}
	if err := r.negotiate(cc); err != nil {
		r.health.Fail()
		cc.c.Close()
		return nil, err
	}
	r.health.Ok()
	return cc, nil
}

// release returns a healthy connection to the pool (or closes it when
// the pool is full or the client closed).
func (r *RemoteShard) release(cc *clientConn) {
	cc.pooled = false
	r.mu.Lock()
	if !r.closed && len(r.idle) < r.cfg.MaxIdleConns {
		r.idle = append(r.idle, cc)
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	cc.c.Close()
}

// features returns the feature bits this client advertises.
func (r *RemoteShard) features() uint64 {
	var f uint64
	if !r.cfg.NoCompress {
		f |= FeatureCompress
	}
	return f
}

// infoPayload builds the OpInfo request: feature bits alone before
// Handshake, feature bits plus the pinned deployment coordinates after
// — the renegotiation half of the identity check, run server-side, so
// a client wired to a resharded or rebuilt deployment is refused at
// connect even if it would have skipped its own verification.
func (r *RemoteShard) infoPayload() []byte {
	req := InfoReq{Features: r.features()}
	r.mu.Lock()
	if e := r.expect; e != nil {
		req.ExpectShard = e.Shard
		req.ExpectShards = e.NumShards
		req.ExpectUsers = e.Users
		req.ExpectBase = e.BaseTweets
	}
	r.mu.Unlock()
	return AppendInfoReqExpect(nil, req)
}

// negotiate runs the once-per-connection OpInfo exchange on a freshly
// dialed connection: it advertises the client's feature bits, records
// the negotiated intersection on the connection, and — once Handshake
// has pinned the deployment identity — re-verifies it. The server must
// still be the same shard, partition, world — and the same
// *incarnation*. A restarted shardd starts a fresh index whose epoch
// regresses to zero; silently reconnecting to it would let the serving
// cache treat pre-restart entries as fresh forever. The incarnation
// check turns that into a hard backend failure, which the coordinator
// degrades on (partial results, EpochUnknown, cache bypass) until the
// operator re-wires.
func (r *RemoteShard) negotiate(cc *clientConn) error {
	resp, _, err := r.roundTrip(cc, OpInfo, r.infoPayload(), r.cfg.Timeout)
	if err != nil {
		return err
	}
	info, _, err := ConsumeInfoResp(resp)
	if err != nil {
		return err
	}
	cc.compress = !r.cfg.NoCompress && info.Features&FeatureCompress != 0
	r.mu.Lock()
	expect := r.expect
	r.mu.Unlock()
	if expect == nil {
		return nil
	}
	if info.Shard != expect.Shard || info.NumShards != expect.NumShards ||
		info.Users != expect.Users || info.BaseTweets != expect.BaseTweets {
		return fmt.Errorf("transport: %s now serves shard %d/%d (%d users, %d base tweets), handshake pinned %d/%d (%d, %d)",
			r.addr, info.Shard, info.NumShards, info.Users, info.BaseTweets,
			expect.Shard, expect.NumShards, expect.Users, expect.BaseTweets)
	}
	if info.Incarnation != expect.Incarnation {
		return fmt.Errorf("transport: %s restarted (incarnation %x, handshake pinned %x) — its live content is gone, re-wire before trusting it",
			r.addr, info.Incarnation, expect.Incarnation)
	}
	return nil
}

// roundTrip sends one framed request on cc and reads one response
// frame, under one deadline. The returned payload aliases cc.in or
// cc.dec and is valid until the next roundTrip on cc. An OpError
// response is decoded into an error with okConn=true (the stream is
// still synchronized); an unexpected op poisons the connection. A
// compression-negotiated connection sends fat requests as OpDeflate
// envelopes (when that shrinks them) and unwraps envelope responses;
// interleaved OpEpochDelta pushes are absorbed into the cached epoch
// rather than treated as the response.
func (r *RemoteShard) roundTrip(cc *clientConn, op Op, payload []byte, timeout time.Duration) (respPayload []byte, okConn bool, err error) {
	if r.obsOn {
		// Count and time the whole round trip — write through response
		// read — whatever exit path it takes.
		r.obsOpReqs[op&0x7f].Add(1)
		t0 := time.Now()
		defer func() { r.obsOpNS[op&0x7f].Observe(time.Since(t0).Nanoseconds()) }()
	}
	if err := cc.c.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, false, fmt.Errorf("transport: set deadline: %w", err)
	}
	wireOp, body := op, payload
	if cc.compress && len(payload) >= CompressMin {
		cc.env = AppendDeflate(cc.env[:0], op, payload)
		if len(cc.env) < len(payload) {
			wireOp, body = OpDeflate, cc.env
			r.obsDeflateSaved.Add(int64(len(payload) - len(body)))
		}
	}
	cc.out = cc.out[:0]
	cc.out = binary.BigEndian.AppendUint32(cc.out, uint32(1+len(body)))
	cc.out = append(cc.out, byte(wireOp))
	cc.out = append(cc.out, body...)
	if _, err := cc.c.Write(cc.out); err != nil {
		return nil, false, fmt.Errorf("transport: write %s: %w", r.addr, err)
	}
	r.obsBytesW.Add(int64(len(cc.out)))
	for {
		respOp, resp, buf, err := ReadFrame(cc.br, cc.in)
		cc.in = buf
		if err != nil {
			return nil, false, fmt.Errorf("transport: read %s: %w", r.addr, err)
		}
		r.obsBytesR.Add(int64(headerLen + 1 + len(resp)))
		if respOp == OpEpochDelta {
			er, _, err := ConsumeEpochResp(resp)
			if err != nil {
				return nil, false, fmt.Errorf("transport: %s: bad epoch push: %w", r.addr, err)
			}
			r.noteEpoch(er.Epoch)
			continue
		}
		if respOp == OpDeflate {
			respOp, cc.dec, err = ConsumeDeflate(cc.dec, resp)
			if err != nil {
				return nil, false, fmt.Errorf("transport: %s: %w", r.addr, err)
			}
			resp = cc.dec
		}
		switch respOp {
		case op:
			return resp, true, nil
		case OpError:
			return nil, true, fmt.Errorf("transport: %s: server error: %s", r.addr, resp)
		default:
			return nil, false, fmt.Errorf("transport: %s: op 0x%02x in response to 0x%02x", r.addr, byte(respOp), byte(op))
		}
	}
}

// do runs one single-frame exchange with checkout, the stale-connection
// retry (idempotent requests only — a write whose connection dies after
// the server processed it but before the response arrived must NOT be
// re-sent, or the shard would hold the post twice and break the
// bit-identical bar), and release. decode consumes the response payload
// before the connection goes back to the pool.
func (r *RemoteShard) do(op Op, payload []byte, timeout time.Duration, idempotent bool, decode func(resp []byte) error) error {
	cc, err := r.checkout()
	if err != nil {
		return err
	}
	resp, okConn, err := r.roundTrip(cc, op, payload, timeout)
	if err != nil && !okConn && cc.pooled && idempotent {
		// The pooled connection died before answering — the classic
		// stale-keepalive shape (server restarted, idle timeout). One
		// fresh dial, one more try, then fail fast.
		cc.c.Close()
		if cc, err = r.dialConn(); err != nil {
			return err
		}
		resp, okConn, err = r.roundTrip(cc, op, payload, timeout)
	}
	if err != nil {
		if okConn {
			r.release(cc)
		} else {
			cc.c.Close()
		}
		return err
	}
	if err := decode(resp); err != nil {
		// A response that fails to decode means the stream can no
		// longer be trusted.
		cc.c.Close()
		return err
	}
	r.release(cc)
	return nil
}

// Handshake fetches the server's partition info and verifies it against
// the coordinates the caller is about to wire it into: shard index,
// partition count, world size, and the base-corpus slice (a server
// built from a different pipeline configuration would silently break
// the equivalence bar — this catches it at wiring time).
func (r *RemoteShard) Handshake(shardIdx, numShards, users, baseTweets int) error {
	info, err := r.Info()
	if err != nil {
		return err
	}
	if info.Shard != shardIdx || info.NumShards != numShards {
		return fmt.Errorf("transport: %s serves shard %d/%d, want %d/%d",
			r.addr, info.Shard, info.NumShards, shardIdx, numShards)
	}
	if info.Users != users {
		return fmt.Errorf("transport: %s world has %d users, coordinator has %d",
			r.addr, info.Users, users)
	}
	if info.BaseTweets != baseTweets {
		return fmt.Errorf("transport: %s base holds %d tweets, coordinator's partition has %d",
			r.addr, info.BaseTweets, baseTweets)
	}
	// Pin the verified identity — incarnation included — so every
	// future fresh dial re-verifies against it (verifyConn).
	r.mu.Lock()
	r.expect = &info
	r.mu.Unlock()
	return nil
}

// Info fetches the server's partition description.
func (r *RemoteShard) Info() (InfoResp, error) {
	var info InfoResp
	err := r.do(OpInfo, r.infoPayload(), r.cfg.Timeout, true, func(resp []byte) error {
		var err error
		info, _, err = ConsumeInfoResp(resp)
		return err
	})
	return info, err
}

// reqTimeout derives one RPC's wire deadline from the caller's
// remaining context budget: the configured per-request timeout, clamped
// to whatever the context has left. An already-spent budget fails here
// — before any dial or write — with ctx.Err(), which is how a
// front-door deadline turns into a fast 504 instead of a
// default-timeout hang. RemoteShard starts no per-request goroutines,
// so cancellation leaks nothing by construction.
func (r *RemoteShard) reqTimeout(ctx context.Context, base time.Duration) (time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if d, ok := ctx.Deadline(); ok {
		if rem := time.Until(d); rem <= 0 {
			return 0, context.DeadlineExceeded
		} else if rem < base {
			return rem, nil
		}
	}
	return base, nil
}

// Search implements shard.Backend: one OpSearch round trip whose
// response carries the shard's raw candidate rows and matched-union
// size, and whose connection — with the snapshot the server pinned to
// it — becomes the returned View, so the follow-up denominator fetch
// reads the exact state the rows were extracted from. The wire deadline
// is the configured timeout clamped by ctx's remaining budget.
func (r *RemoteShard) Search(ctx context.Context, terms []string, extended bool, raw []expertise.RawCandidate) ([]expertise.RawCandidate, int, shard.View, error) {
	timeout, err := r.reqTimeout(ctx, r.cfg.Timeout)
	if err != nil {
		return raw[:0], 0, nil, err
	}
	cc, err := r.checkout()
	if err != nil {
		return raw[:0], 0, nil, err
	}
	payload := AppendSearchReq(nil, SearchReq{Extended: extended, Terms: terms})
	resp, okConn, err := r.roundTrip(cc, OpSearch, payload, timeout)
	if err != nil && !okConn && cc.pooled {
		cc.c.Close()
		if timeout, err = r.reqTimeout(ctx, r.cfg.Timeout); err != nil {
			return raw[:0], 0, nil, err
		}
		if cc, err = r.dialConn(); err != nil {
			return raw[:0], 0, nil, err
		}
		resp, okConn, err = r.roundTrip(cc, OpSearch, payload, timeout)
	}
	if err != nil {
		if okConn {
			r.release(cc)
		} else {
			cc.c.Close()
		}
		return raw[:0], 0, nil, err
	}
	sr, _, err := ConsumeSearchResp(raw, resp)
	if err != nil {
		cc.c.Close()
		return raw[:0], 0, nil, err
	}
	return sr.Rows, sr.Matched, &remoteView{r: r, cc: cc}, nil
}

// SearchStats implements shard.SearchStatser: the whole search→stats
// conversation in one OpSearchStats round trip. The response carries
// the shard's candidate rows plus the denominator triples for those
// same candidates, read from one snapshot server-side — on a
// single-shard deployment that is the entire query, one frame each
// way. On a multi-shard one the returned View still works for the
// coordinator's top-up OpStats (foreign candidates' denominators)
// against the pinned snapshot.
func (r *RemoteShard) SearchStats(ctx context.Context, terms []string, extended bool, raw []expertise.RawCandidate, stats []expertise.UserStats) ([]expertise.RawCandidate, int, []expertise.UserStats, shard.View, error) {
	timeout, err := r.reqTimeout(ctx, r.cfg.Timeout)
	if err != nil {
		return raw[:0], 0, stats[:0], nil, err
	}
	cc, err := r.checkout()
	if err != nil {
		return raw[:0], 0, stats[:0], nil, err
	}
	payload := AppendSearchReq(nil, SearchReq{Extended: extended, Terms: terms})
	resp, okConn, err := r.roundTrip(cc, OpSearchStats, payload, timeout)
	if err != nil && !okConn && cc.pooled {
		cc.c.Close()
		if timeout, err = r.reqTimeout(ctx, r.cfg.Timeout); err != nil {
			return raw[:0], 0, stats[:0], nil, err
		}
		if cc, err = r.dialConn(); err != nil {
			return raw[:0], 0, stats[:0], nil, err
		}
		resp, okConn, err = r.roundTrip(cc, OpSearchStats, payload, timeout)
	}
	if err != nil {
		if okConn {
			r.release(cc)
		} else {
			cc.c.Close()
		}
		return raw[:0], 0, stats[:0], nil, err
	}
	sr, _, err := ConsumeSearchStatsResp(raw, stats, resp)
	if err != nil {
		cc.c.Close()
		return raw[:0], 0, stats[:0], nil, err
	}
	v := &remoteView{r: r, cc: cc}
	r.mu.Lock()
	if r.expect != nil && r.expect.NumShards == 1 {
		// A single-shard server does not pin after a composite (there
		// is nothing to top up), so the release needs no OpUnpin.
		v.pinCleared = true
	}
	r.mu.Unlock()
	return sr.Rows, sr.Matched, sr.Stats, v, nil
}

// remoteView is the client end of a pinned search→stats conversation:
// it owns one checked-out connection whose server side holds the
// snapshot the search ran against.
type remoteView struct {
	r      *RemoteShard
	cc     *clientConn
	broken bool
	// pinCleared is set once any op after the search has reached the
	// server (the server drops its snapshot pin on every op that is not
	// the one paired OpStats conversation-opener).
	pinCleared bool
}

// Stats implements shard.View with one OpStats round trip on the
// pinned connection, under the configured timeout clamped by ctx's
// remaining budget. No retry: a fresh connection would see a fresh
// snapshot, not the one the candidates came from — fail fast instead.
func (v *remoteView) Stats(ctx context.Context, users []world.UserID, dst []expertise.UserStats) ([]expertise.UserStats, error) {
	if v.broken {
		return dst[:0], fmt.Errorf("transport: %s: view connection already failed", v.r.addr)
	}
	timeout, err := v.r.reqTimeout(ctx, v.r.cfg.Timeout)
	if err != nil {
		return dst[:0], err
	}
	payload := expertise.AppendUserIDs(nil, users)
	resp, okConn, err := v.r.roundTrip(v.cc, OpStats, payload, timeout)
	if okConn {
		// The request reached the server, which releases its snapshot
		// pin after answering the stats of a search→stats conversation.
		v.pinCleared = true
	}
	if err != nil {
		if !okConn {
			v.broken = true
		}
		return dst[:0], err
	}
	dst, _, err = expertise.ConsumeUserStats(dst, resp)
	if err != nil {
		v.broken = true
		return dst[:0], err
	}
	return dst, nil
}

// Release implements shard.View: a healthy connection returns to the
// pool, a broken one closes. A view released while the server still
// pins a snapshot first clears that pin with one fire-and-forget
// OpUnpin write (no response, no round trip) — otherwise an idle
// pooled connection would retain a retired snapshot server-side
// indefinitely.
func (v *remoteView) Release() {
	if v.broken {
		v.cc.c.Close()
		return
	}
	if !v.pinCleared {
		if err := v.r.writeFrame(v.cc, OpUnpin, nil); err != nil {
			v.cc.c.Close()
			return
		}
	}
	v.r.release(v.cc)
}

// writeFrame writes one frame with no response expected (OpUnpin).
func (r *RemoteShard) writeFrame(cc *clientConn, op Op, payload []byte) error {
	if err := cc.c.SetDeadline(time.Now().Add(r.cfg.Timeout)); err != nil {
		return err
	}
	cc.out = AppendFrame(cc.out[:0], op, payload)
	_, err := cc.c.Write(cc.out)
	if err == nil {
		r.obsOpReqs[op&0x7f].Add(1)
		r.obsBytesW.Add(int64(len(cc.out)))
	}
	return err
}

// Ingest implements shard.Backend with a one-post OpIngest frame.
func (r *RemoteShard) Ingest(p microblog.Post) (microblog.TweetID, error) {
	var id microblog.TweetID
	payload := AppendIngestReq(nil, IngestReq{Posts: []microblog.Post{p}})
	err := r.do(OpIngest, payload, r.cfg.Timeout, false, func(resp []byte) error {
		ir, _, err := ConsumeIngestResp(resp)
		id = ir.First
		return err
	})
	return id, err
}

// IngestBatch implements shard.Backend, shipping the batch as
// IngestChunk-post frames so one call never exceeds MaxFrame.
func (r *RemoteShard) IngestBatch(posts []microblog.Post) error {
	for start := 0; start < len(posts); start += r.cfg.IngestChunk {
		end := min(start+r.cfg.IngestChunk, len(posts))
		payload := AppendIngestReq(nil, IngestReq{Posts: posts[start:end]})
		err := r.do(OpIngest, payload, r.cfg.Timeout, false, func(resp []byte) error {
			_, _, err := ConsumeIngestResp(resp)
			return err
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// noteEpoch folds a server-reported epoch into the cached one,
// monotonically: epochs only grow within one server incarnation (a
// restart is a hard failure via the incarnation pin, never a silent
// regression), so the max of everything observed — pushes, acks,
// probe and quiesce responses — is always the freshest view.
func (r *RemoteShard) noteEpoch(e uint64) {
	for {
		cur := r.subEpoch.Load()
		if e <= cur || r.subEpoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Epoch implements shard.Backend. While an epoch-push subscription is
// live this is a memory read — zero round trips, which is what turns
// the serve cache's per-request epoch-vector sample into nanoseconds.
// Cold (or after a subscription lapse) it subscribes first, paying one
// round trip that buys every future sample; with NoSubscribe it is the
// classic one-RTT OpEpoch probe.
func (r *RemoteShard) Epoch() (uint64, error) {
	if r.subOn.Load() {
		return r.subEpoch.Load(), nil
	}
	if !r.cfg.NoSubscribe {
		return r.subscribe()
	}
	r.epochRTTs.Add(1)
	r.obsEpochRTTs.Add(1)
	var epoch uint64
	err := r.do(OpEpoch, nil, r.cfg.Timeout, true, func(resp []byte) error {
		er, _, err := ConsumeEpochResp(resp)
		epoch = er.Epoch
		return err
	})
	return epoch, err
}

// subscribe establishes the epoch-push subscription: it dedicates one
// connection (from the pool or freshly dialed), sends OpSubscribe, and
// hands the connection to a reader goroutine that mirrors every pushed
// delta into the atomic epoch. Concurrent callers coalesce on subMu —
// the losers see subOn and read the fresh cache.
func (r *RemoteShard) subscribe() (uint64, error) {
	r.subMu.Lock()
	defer r.subMu.Unlock()
	if r.subOn.Load() {
		return r.subEpoch.Load(), nil
	}
	cc, err := r.checkout()
	if err != nil {
		return 0, err
	}
	r.epochRTTs.Add(1)
	r.obsEpochRTTs.Add(1)
	resp, okConn, err := r.roundTrip(cc, OpSubscribe, nil, r.cfg.Timeout)
	if err != nil && !okConn && cc.pooled {
		// Stale pooled connection — same retry-once-on-fresh-dial rule
		// as every idempotent request.
		cc.c.Close()
		if cc, err = r.dialConn(); err != nil {
			return 0, err
		}
		resp, okConn, err = r.roundTrip(cc, OpSubscribe, nil, r.cfg.Timeout)
	}
	if err != nil {
		if okConn {
			r.release(cc)
		} else {
			cc.c.Close()
		}
		return 0, err
	}
	er, _, err := ConsumeEpochResp(resp)
	if err != nil {
		cc.c.Close()
		return 0, err
	}
	// The subscription reader owns the connection from here on; clear
	// the round-trip deadline so an idle (no publishes) subscription
	// does not time itself out.
	if err := cc.c.SetDeadline(time.Time{}); err != nil {
		cc.c.Close()
		return 0, err
	}
	r.noteEpoch(er.Epoch)
	r.subConn = cc
	r.subOn.Store(true)
	go r.subLoop(cc)
	return r.subEpoch.Load(), nil
}

// subLoop is the subscription's dedicated reader: it blocks on the
// connection and mirrors every OpEpochDelta into the atomic epoch.
// Any read error or protocol surprise ends the subscription — subOn
// flips off first, so samplers fall back to probing (and re-subscribe
// through the dial budget) rather than trusting a frozen cache.
func (r *RemoteShard) subLoop(cc *clientConn) {
	for {
		op, payload, buf, err := ReadFrame(cc.br, cc.in)
		cc.in = buf
		if err == nil && op == OpEpochDelta {
			var er EpochResp
			if er, _, err = ConsumeEpochResp(payload); err == nil {
				r.noteEpoch(er.Epoch)
				continue
			}
		}
		r.subOn.Store(false)
		r.subMu.Lock()
		if r.subConn == cc {
			r.subConn = nil
		}
		r.subMu.Unlock()
		cc.c.Close()
		return
	}
}

// Quiesce implements shard.Backend: the server drains its eligible
// compactions before answering, so this round trip gets the longer
// QuiesceTimeout. The post-quiesce epoch folds into the push cache, so
// a quiesce-then-sample sequence observes it even if the corresponding
// push is still in flight.
func (r *RemoteShard) Quiesce() error {
	return r.do(OpQuiesce, nil, r.cfg.QuiesceTimeout, true, func(resp []byte) error {
		er, _, err := ConsumeEpochResp(resp)
		if err == nil {
			r.noteEpoch(er.Epoch)
		}
		return err
	})
}

// Tweets fetches one page of the shard's post log starting at global id
// from (at most max posts; the server applies its own page cap too).
func (r *RemoteShard) Tweets(from, max int) (TweetsResp, error) {
	return r.tweets(TweetsReq{From: from, Max: max})
}

// tweets runs one OpTweets round trip.
func (r *RemoteShard) tweets(req TweetsReq) (TweetsResp, error) {
	var page TweetsResp
	payload := AppendTweetsReq(nil, req)
	err := r.do(OpTweets, payload, r.cfg.Timeout, true, func(resp []byte) error {
		var err error
		page, _, err = ConsumeTweetsResp(resp)
		return err
	})
	return page, err
}

// PagePosts implements shard.LogPager over OpTweets — the resharding
// handoff page: the filter runs server-side (only the destination
// shard's posts cross the wire) and the cursor advances by Scanned,
// which counts skipped posts too.
func (r *RemoteShard) PagePosts(from, max, filterShards, filterIdx int) ([]microblog.Post, int, int, error) {
	page, err := r.tweets(TweetsReq{From: from, Max: max, FilterShards: filterShards, FilterIdx: filterIdx})
	if err != nil {
		return nil, 0, 0, err
	}
	return page.Posts, page.Scanned, page.Total, nil
}

// BasePosts implements shard.LogPager: the shard's frozen base-corpus
// size, from the handshake-pinned identity when available (no round
// trip), otherwise from one OpInfo.
func (r *RemoteShard) BasePosts() (int, error) {
	r.mu.Lock()
	expect := r.expect
	r.mu.Unlock()
	if expect != nil {
		return expect.BaseTweets, nil
	}
	info, err := r.Info()
	if err != nil {
		return 0, err
	}
	return info.BaseTweets, nil
}

// RemoteShard can hand its log to a reshard migration.
var _ shard.LogPager = (*RemoteShard)(nil)

// DumpIngested pages every post the shard holds beyond its frozen base
// — the remote form of walking a snapshot's ingested suffix, which the
// cold-rebuild equivalence checks feed through microblog.MakeTweet.
func (r *RemoteShard) DumpIngested() ([]microblog.Post, error) {
	info, err := r.Info()
	if err != nil {
		return nil, err
	}
	var posts []microblog.Post
	from := info.BaseTweets
	for {
		page, err := r.Tweets(from, 2048)
		if err != nil {
			return nil, err
		}
		posts = append(posts, page.Posts...)
		from += page.Scanned
		if from >= page.Total || page.Scanned == 0 {
			return posts, nil
		}
	}
}

// Close implements shard.Backend: it closes the pooled connections and
// rejects further requests. The remote server keeps running — closing
// a client is a coordinator-side action.
func (r *RemoteShard) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	idle := r.idle
	r.idle = nil
	r.mu.Unlock()
	for _, cc := range idle {
		cc.c.Close()
	}
	// Closing the subscription connection unblocks its reader, which
	// flips subOn off and forgets the connection.
	r.subMu.Lock()
	if r.subConn != nil {
		r.subConn.c.Close()
	}
	r.subMu.Unlock()
	return nil
}
