package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expertise"
	"repro/internal/microblog"
	"repro/internal/shard"
	"repro/internal/world"
)

// ClientConfig tunes a RemoteShard.
type ClientConfig struct {
	// Timeout bounds one request round trip — dial, write, read. Zero
	// means 2s. Quiesce, which drains compactions server-side, gets
	// QuiesceTimeout instead.
	Timeout time.Duration
	// QuiesceTimeout bounds an OpQuiesce round trip. Zero means 10×
	// Timeout.
	QuiesceTimeout time.Duration
	// MaxIdleConns caps the pooled idle connections. Zero means 4.
	MaxIdleConns int
	// IngestChunk caps how many posts one OpIngest frame carries; a
	// larger batch is split into sequential frames. Zero means 512.
	IngestChunk int
	// Dial overrides the dialer — the fault-injection tests wrap
	// connections here. Nil means net.DialTimeout("tcp", addr, timeout).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
}

// DefaultClientConfig returns the client defaults.
func DefaultClientConfig() ClientConfig { return ClientConfig{} }

// ErrClientClosed reports a request on a closed RemoteShard.
var ErrClientClosed = errors.New("transport: client closed")

// RemoteShard speaks the wire protocol to one ShardServer and satisfies
// shard.Backend, so a shard.Cluster (and through it
// core.ShardedLiveDetector) addresses a networked shard exactly as it
// addresses an in-process one. Connections are pooled and reused; a
// request that fails on a pooled — possibly stale — connection before
// ever being answered is retried once on a fresh dial (the reconnect
// path), and every other failure surfaces immediately: fail fast,
// degrade to partial results, let the coordinator count it. Safe for
// concurrent use; concurrent requests use distinct connections.
type RemoteShard struct {
	addr string
	cfg  ClientConfig

	mu     sync.Mutex
	idle   []*clientConn
	closed bool
	// expect, once Handshake succeeds, pins the deployment identity —
	// including the server incarnation — that every freshly dialed
	// connection is re-verified against (see verifyConn).
	expect *InfoResp

	dials atomic.Int64
}

// clientConn is one pooled connection plus its reusable buffers.
type clientConn struct {
	c      net.Conn
	br     *bufio.Reader
	in     []byte // frame read buffer
	out    []byte // frame build buffer
	pooled bool   // checked out of the idle pool (retry-once eligible)
}

// RemoteShard must keep satisfying the interface the in-process shards
// speak — that is the whole point of the transport.
var _ shard.Backend = (*RemoteShard)(nil)

// NewRemoteShard builds a client for one shard server. No connection is
// made until the first request (or Handshake).
func NewRemoteShard(addr string, cfg ClientConfig) *RemoteShard {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.QuiesceTimeout <= 0 {
		cfg.QuiesceTimeout = 10 * cfg.Timeout
	}
	if cfg.MaxIdleConns <= 0 {
		cfg.MaxIdleConns = 4
	}
	if cfg.IngestChunk <= 0 {
		cfg.IngestChunk = 512
	}
	return &RemoteShard{addr: addr, cfg: cfg}
}

// Addr returns the server address this client dials.
func (r *RemoteShard) Addr() string { return r.addr }

// Dials returns how many connections this client has opened — the
// fault-injection tests assert reconnects with it.
func (r *RemoteShard) Dials() int64 { return r.dials.Load() }

// checkout pops an idle connection or dials a fresh one.
func (r *RemoteShard) checkout() (*clientConn, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClientClosed
	}
	if n := len(r.idle); n > 0 {
		cc := r.idle[n-1]
		r.idle = r.idle[:n-1]
		r.mu.Unlock()
		cc.pooled = true
		return cc, nil
	}
	r.mu.Unlock()
	return r.dialConn()
}

// dialConn opens a fresh connection.
func (r *RemoteShard) dialConn() (*clientConn, error) {
	dial := r.cfg.Dial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	c, err := dial(r.addr, r.cfg.Timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", r.addr, err)
	}
	r.dials.Add(1)
	cc := &clientConn{c: c, br: bufio.NewReader(c)}
	if err := r.verifyConn(cc); err != nil {
		cc.c.Close()
		return nil, err
	}
	return cc, nil
}

// release returns a healthy connection to the pool (or closes it when
// the pool is full or the client closed).
func (r *RemoteShard) release(cc *clientConn) {
	cc.pooled = false
	r.mu.Lock()
	if !r.closed && len(r.idle) < r.cfg.MaxIdleConns {
		r.idle = append(r.idle, cc)
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	cc.c.Close()
}

// verifyConn re-runs the deployment handshake on a freshly dialed
// connection once expectations are pinned (Handshake succeeded): the
// server must still be the same shard, partition, world — and the same
// *incarnation*. A restarted shardd starts a fresh index whose epoch
// regresses to zero; silently reconnecting to it would let the serving
// cache treat pre-restart entries as fresh forever. The incarnation
// check turns that into a hard backend failure, which the coordinator
// degrades on (partial results, EpochUnknown, cache bypass) until the
// operator re-wires.
func (r *RemoteShard) verifyConn(cc *clientConn) error {
	r.mu.Lock()
	expect := r.expect
	r.mu.Unlock()
	if expect == nil {
		return nil
	}
	resp, _, err := r.roundTrip(cc, OpInfo, nil, r.cfg.Timeout)
	if err != nil {
		return err
	}
	info, _, err := ConsumeInfoResp(resp)
	if err != nil {
		return err
	}
	if info.Shard != expect.Shard || info.NumShards != expect.NumShards ||
		info.Users != expect.Users || info.BaseTweets != expect.BaseTweets {
		return fmt.Errorf("transport: %s now serves shard %d/%d (%d users, %d base tweets), handshake pinned %d/%d (%d, %d)",
			r.addr, info.Shard, info.NumShards, info.Users, info.BaseTweets,
			expect.Shard, expect.NumShards, expect.Users, expect.BaseTweets)
	}
	if info.Incarnation != expect.Incarnation {
		return fmt.Errorf("transport: %s restarted (incarnation %x, handshake pinned %x) — its live content is gone, re-wire before trusting it",
			r.addr, info.Incarnation, expect.Incarnation)
	}
	return nil
}

// roundTrip sends one framed request on cc and reads one response
// frame, under one deadline. The returned payload aliases cc.in and is
// valid until the next roundTrip on cc. An OpError response is decoded
// into an error with okConn=true (the stream is still synchronized); an
// unexpected op poisons the connection.
func (r *RemoteShard) roundTrip(cc *clientConn, op Op, payload []byte, timeout time.Duration) (respPayload []byte, okConn bool, err error) {
	if err := cc.c.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, false, fmt.Errorf("transport: set deadline: %w", err)
	}
	cc.out = cc.out[:0]
	cc.out = binary.BigEndian.AppendUint32(cc.out, uint32(1+len(payload)))
	cc.out = append(cc.out, byte(op))
	cc.out = append(cc.out, payload...)
	if _, err := cc.c.Write(cc.out); err != nil {
		return nil, false, fmt.Errorf("transport: write %s: %w", r.addr, err)
	}
	respOp, resp, buf, err := ReadFrame(cc.br, cc.in)
	cc.in = buf
	if err != nil {
		return nil, false, fmt.Errorf("transport: read %s: %w", r.addr, err)
	}
	switch respOp {
	case op:
		return resp, true, nil
	case OpError:
		return nil, true, fmt.Errorf("transport: %s: server error: %s", r.addr, resp)
	default:
		return nil, false, fmt.Errorf("transport: %s: op 0x%02x in response to 0x%02x", r.addr, byte(respOp), byte(op))
	}
}

// do runs one single-frame exchange with checkout, the stale-connection
// retry (idempotent requests only — a write whose connection dies after
// the server processed it but before the response arrived must NOT be
// re-sent, or the shard would hold the post twice and break the
// bit-identical bar), and release. decode consumes the response payload
// before the connection goes back to the pool.
func (r *RemoteShard) do(op Op, payload []byte, timeout time.Duration, idempotent bool, decode func(resp []byte) error) error {
	cc, err := r.checkout()
	if err != nil {
		return err
	}
	resp, okConn, err := r.roundTrip(cc, op, payload, timeout)
	if err != nil && !okConn && cc.pooled && idempotent {
		// The pooled connection died before answering — the classic
		// stale-keepalive shape (server restarted, idle timeout). One
		// fresh dial, one more try, then fail fast.
		cc.c.Close()
		if cc, err = r.dialConn(); err != nil {
			return err
		}
		resp, okConn, err = r.roundTrip(cc, op, payload, timeout)
	}
	if err != nil {
		if okConn {
			r.release(cc)
		} else {
			cc.c.Close()
		}
		return err
	}
	if err := decode(resp); err != nil {
		// A response that fails to decode means the stream can no
		// longer be trusted.
		cc.c.Close()
		return err
	}
	r.release(cc)
	return nil
}

// Handshake fetches the server's partition info and verifies it against
// the coordinates the caller is about to wire it into: shard index,
// partition count, world size, and the base-corpus slice (a server
// built from a different pipeline configuration would silently break
// the equivalence bar — this catches it at wiring time).
func (r *RemoteShard) Handshake(shardIdx, numShards, users, baseTweets int) error {
	info, err := r.Info()
	if err != nil {
		return err
	}
	if info.Shard != shardIdx || info.NumShards != numShards {
		return fmt.Errorf("transport: %s serves shard %d/%d, want %d/%d",
			r.addr, info.Shard, info.NumShards, shardIdx, numShards)
	}
	if info.Users != users {
		return fmt.Errorf("transport: %s world has %d users, coordinator has %d",
			r.addr, info.Users, users)
	}
	if info.BaseTweets != baseTweets {
		return fmt.Errorf("transport: %s base holds %d tweets, coordinator's partition has %d",
			r.addr, info.BaseTweets, baseTweets)
	}
	// Pin the verified identity — incarnation included — so every
	// future fresh dial re-verifies against it (verifyConn).
	r.mu.Lock()
	r.expect = &info
	r.mu.Unlock()
	return nil
}

// Info fetches the server's partition description.
func (r *RemoteShard) Info() (InfoResp, error) {
	var info InfoResp
	err := r.do(OpInfo, nil, r.cfg.Timeout, true, func(resp []byte) error {
		var err error
		info, _, err = ConsumeInfoResp(resp)
		return err
	})
	return info, err
}

// Search implements shard.Backend: one OpSearch round trip whose
// response carries the shard's raw candidate rows and matched-union
// size, and whose connection — with the snapshot the server pinned to
// it — becomes the returned View, so the follow-up denominator fetch
// reads the exact state the rows were extracted from.
func (r *RemoteShard) Search(terms []string, extended bool, raw []expertise.RawCandidate) ([]expertise.RawCandidate, int, shard.View, error) {
	cc, err := r.checkout()
	if err != nil {
		return raw[:0], 0, nil, err
	}
	payload := AppendSearchReq(nil, SearchReq{Extended: extended, Terms: terms})
	resp, okConn, err := r.roundTrip(cc, OpSearch, payload, r.cfg.Timeout)
	if err != nil && !okConn && cc.pooled {
		cc.c.Close()
		if cc, err = r.dialConn(); err != nil {
			return raw[:0], 0, nil, err
		}
		resp, okConn, err = r.roundTrip(cc, OpSearch, payload, r.cfg.Timeout)
	}
	if err != nil {
		if okConn {
			r.release(cc)
		} else {
			cc.c.Close()
		}
		return raw[:0], 0, nil, err
	}
	sr, _, err := ConsumeSearchResp(raw, resp)
	if err != nil {
		cc.c.Close()
		return raw[:0], 0, nil, err
	}
	return sr.Rows, sr.Matched, &remoteView{r: r, cc: cc}, nil
}

// remoteView is the client end of a pinned search→stats conversation:
// it owns one checked-out connection whose server side holds the
// snapshot the search ran against.
type remoteView struct {
	r      *RemoteShard
	cc     *clientConn
	broken bool
	// pinCleared is set once any op after the search has reached the
	// server (the server drops its snapshot pin on every op that is not
	// the one paired OpStats conversation-opener).
	pinCleared bool
}

// Stats implements shard.View with one OpStats round trip on the
// pinned connection. No retry: a fresh connection would see a fresh
// snapshot, not the one the candidates came from — fail fast instead.
func (v *remoteView) Stats(users []world.UserID, dst []expertise.UserStats) ([]expertise.UserStats, error) {
	if v.broken {
		return dst[:0], fmt.Errorf("transport: %s: view connection already failed", v.r.addr)
	}
	payload := expertise.AppendUserIDs(nil, users)
	resp, okConn, err := v.r.roundTrip(v.cc, OpStats, payload, v.r.cfg.Timeout)
	if okConn {
		// The request reached the server, which releases its snapshot
		// pin after answering the stats of a search→stats conversation.
		v.pinCleared = true
	}
	if err != nil {
		if !okConn {
			v.broken = true
		}
		return dst[:0], err
	}
	dst, _, err = expertise.ConsumeUserStats(dst, resp)
	if err != nil {
		v.broken = true
		return dst[:0], err
	}
	return dst, nil
}

// Release implements shard.View: a healthy connection returns to the
// pool, a broken one closes. A view released without a stats fetch (the
// query produced no candidates anywhere) first clears the server-side
// snapshot pin with one cheap probe — otherwise an idle pooled
// connection would retain a retired snapshot server-side indefinitely.
func (v *remoteView) Release() {
	if v.broken {
		v.cc.c.Close()
		return
	}
	if !v.pinCleared {
		if _, _, err := v.r.roundTrip(v.cc, OpEpoch, nil, v.r.cfg.Timeout); err != nil {
			v.cc.c.Close()
			return
		}
	}
	v.r.release(v.cc)
}

// Ingest implements shard.Backend with a one-post OpIngest frame.
func (r *RemoteShard) Ingest(p microblog.Post) (microblog.TweetID, error) {
	var id microblog.TweetID
	payload := AppendIngestReq(nil, IngestReq{Posts: []microblog.Post{p}})
	err := r.do(OpIngest, payload, r.cfg.Timeout, false, func(resp []byte) error {
		ir, _, err := ConsumeIngestResp(resp)
		id = ir.First
		return err
	})
	return id, err
}

// IngestBatch implements shard.Backend, shipping the batch as
// IngestChunk-post frames so one call never exceeds MaxFrame.
func (r *RemoteShard) IngestBatch(posts []microblog.Post) error {
	for start := 0; start < len(posts); start += r.cfg.IngestChunk {
		end := min(start+r.cfg.IngestChunk, len(posts))
		payload := AppendIngestReq(nil, IngestReq{Posts: posts[start:end]})
		err := r.do(OpIngest, payload, r.cfg.Timeout, false, func(resp []byte) error {
			_, _, err := ConsumeIngestResp(resp)
			return err
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Epoch implements shard.Backend with one OpEpoch probe.
func (r *RemoteShard) Epoch() (uint64, error) {
	var epoch uint64
	err := r.do(OpEpoch, nil, r.cfg.Timeout, true, func(resp []byte) error {
		er, _, err := ConsumeEpochResp(resp)
		epoch = er.Epoch
		return err
	})
	return epoch, err
}

// Quiesce implements shard.Backend: the server drains its eligible
// compactions before answering, so this round trip gets the longer
// QuiesceTimeout.
func (r *RemoteShard) Quiesce() error {
	return r.do(OpQuiesce, nil, r.cfg.QuiesceTimeout, true, func(resp []byte) error {
		_, _, err := ConsumeEpochResp(resp)
		return err
	})
}

// Tweets fetches one page of the shard's post log starting at global id
// from (at most max posts; the server applies its own page cap too).
func (r *RemoteShard) Tweets(from, max int) (TweetsResp, error) {
	var page TweetsResp
	payload := AppendTweetsReq(nil, TweetsReq{From: from, Max: max})
	err := r.do(OpTweets, payload, r.cfg.Timeout, true, func(resp []byte) error {
		var err error
		page, _, err = ConsumeTweetsResp(resp)
		return err
	})
	return page, err
}

// DumpIngested pages every post the shard holds beyond its frozen base
// — the remote form of walking a snapshot's ingested suffix, which the
// cold-rebuild equivalence checks feed through microblog.MakeTweet.
func (r *RemoteShard) DumpIngested() ([]microblog.Post, error) {
	info, err := r.Info()
	if err != nil {
		return nil, err
	}
	var posts []microblog.Post
	from := info.BaseTweets
	for {
		page, err := r.Tweets(from, 2048)
		if err != nil {
			return nil, err
		}
		posts = append(posts, page.Posts...)
		from += len(page.Posts)
		if from >= page.Total || len(page.Posts) == 0 {
			return posts, nil
		}
	}
}

// Close implements shard.Backend: it closes the pooled connections and
// rejects further requests. The remote server keeps running — closing
// a client is a coordinator-side action.
func (r *RemoteShard) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	idle := r.idle
	r.idle = nil
	r.mu.Unlock()
	for _, cc := range idle {
		cc.c.Close()
	}
	return nil
}
