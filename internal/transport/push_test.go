// Tests for the PR 6 round-trip killers: the server→client epoch push
// (OpSubscribe/OpEpochDelta), the composite OpSearchStats pipeline, the
// per-client dial budget and the OpDeflate envelope. The load-bearing
// assertions are RPC-counted: the server counts requests per op and
// pushes, the client counts epoch round trips, so "one round trip per
// warm query" and "zero probes on a subscribed connection" are measured,
// not inferred from latency.
package transport_test

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ingest"
	"repro/internal/shard"
	"repro/internal/transport"
)

// startCountedShardServers is startShardServers but returns the server
// handles too, for the RPC-accounting assertions.
func startCountedShardServers(t testing.TB, p *core.Pipeline, n int, icfg ingest.Config) ([]*transport.ShardServer, []*transport.RemoteShard) {
	t.Helper()
	servers := make([]*transport.ShardServer, n)
	clients := make([]*transport.RemoteShard, n)
	for i := 0; i < n; i++ {
		part := shard.Partition(p.Corpus, i, n)
		idx := ingest.New(part, icfg)
		srv, err := transport.Listen("127.0.0.1:0", idx, transport.DefaultServerConfig(i, n))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			srv.Close()
			idx.Close()
		})
		c := transport.NewRemoteShard(srv.Addr().String(), testClientConfig())
		t.Cleanup(func() { c.Close() })
		if err := c.Handshake(i, n, len(p.World.Users), part.NumTweets()); err != nil {
			t.Fatal(err)
		}
		servers[i], clients[i] = srv, c
	}
	return servers, clients
}

// TestSubscribePushUpdatesEpoch pins the push channel end to end: after
// the first Epoch subscribes, ingests bump the server's epoch and the
// client's cached value catches up via OpEpochDelta pushes alone — the
// server fields zero OpEpoch probes, and the client spends exactly one
// epoch round trip (the subscribe) ever.
func TestSubscribePushUpdatesEpoch(t *testing.T) {
	p, _ := testPipeline(t)
	servers, clients := startCountedShardServers(t, p, 1, ingest.DefaultConfig())
	srv, c := servers[0], clients[0]

	if _, err := c.Epoch(); err != nil {
		t.Fatal(err)
	}
	if !c.Subscribed() || !c.EpochIsLocal() {
		t.Fatal("first Epoch did not establish a subscription")
	}
	if got := c.EpochRTTs(); got != 1 {
		t.Fatalf("subscribe cost %d epoch round trips, want 1", got)
	}

	for _, post := range streamPosts(p, 211, 5) {
		if _, err := c.Ingest(post); err != nil {
			t.Fatal(err)
		}
	}
	// The ingest responses carry no epoch; only pushes can move the
	// cached value. Poll until it catches the server (compaction may
	// bump the server further while we poll, so chase the live value).
	deadline := time.Now().Add(5 * time.Second)
	for {
		want := srv.Index().Epoch()
		got, err := c.Epoch()
		if err != nil {
			t.Fatal(err)
		}
		if got == want && got > 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pushed epoch stuck at %d, server at %d", got, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := srv.Requests(transport.OpEpoch); got != 0 {
		t.Fatalf("subscribed client still sent %d OpEpoch probes", got)
	}
	if got := srv.Pushes(); got == 0 {
		t.Fatal("server recorded zero pushes after 5 epoch bumps")
	}
	if got := c.EpochRTTs(); got != 1 {
		t.Fatalf("warm epoch reads spent %d round trips, want the 1 subscribe", got)
	}
}

// TestWarmQuerySingleRoundTrip is the acceptance bar of the pipelining
// tentpole, RPC-counted: on a healthy warm connection to a single-shard
// server, one detector query costs exactly one OpSearchStats frame —
// no OpSearch, no OpStats, no OpEpoch, no OpUnpin — and epoch-vector
// sampling on the subscribed client costs zero requests of any kind.
func TestWarmQuerySingleRoundTrip(t *testing.T) {
	p, _ := testPipeline(t)
	servers, clients := startCountedShardServers(t, p, 1, ingest.DefaultConfig())
	srv, c := servers[0], clients[0]
	cluster := shard.NewCluster(p.World, c)
	det := core.NewShardedLiveDetectorOver(p.Collection, cluster, p.Cfg.Online)

	// Warm up: the first sample subscribes, the first query dials the
	// query connection (one OpInfo negotiation ride-along).
	if _, err := cluster.EpochVector(nil); err != nil {
		t.Fatal(err)
	}
	if experts, _ := det.Search("49ers"); len(experts) == 0 {
		t.Fatal("warmup query found no experts")
	}

	ops := []transport.Op{transport.OpSearch, transport.OpSearchStats, transport.OpStats,
		transport.OpEpoch, transport.OpUnpin, transport.OpInfo, transport.OpSubscribe}
	before := make(map[transport.Op]int64, len(ops))
	for _, op := range ops {
		before[op] = srv.Requests(op)
	}
	dials, rtts := c.Dials(), c.EpochRTTs()

	const k = 8
	queries := []string{"49ers", "nfl", "diabetes", "coffee"}
	for i := 0; i < k; i++ {
		det.Search(queries[i%len(queries)])
	}
	if got := srv.Requests(transport.OpSearchStats) - before[transport.OpSearchStats]; got != k {
		t.Fatalf("%d warm queries sent %d OpSearchStats frames, want exactly %d", k, got, k)
	}
	for _, op := range []transport.Op{transport.OpSearch, transport.OpStats,
		transport.OpEpoch, transport.OpUnpin, transport.OpInfo, transport.OpSubscribe} {
		if got := srv.Requests(op) - before[op]; got != 0 {
			t.Fatalf("%d warm queries sent %d extra frames of op 0x%02x, want 0", k, got, byte(op))
		}
	}
	if got := c.Dials() - dials; got != 0 {
		t.Fatalf("warm queries dialed %d fresh connections", got)
	}

	// Epoch sampling on the subscribed client is a memory read: zero
	// frames of any kind, zero epoch round trips.
	for i := 0; i < 32; i++ {
		if _, err := cluster.EpochVector(nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range ops {
		if got := srv.Requests(op) - before[op]; op != transport.OpSearchStats && got != 0 {
			t.Fatalf("32 epoch samples sent %d frames of op 0x%02x, want 0", got, byte(op))
		}
	}
	if got := c.EpochRTTs() - rtts; got != 0 {
		t.Fatalf("32 warm epoch samples spent %d round trips, want 0", got)
	}
}

// TestCompositeTopUpAccounting pins the multi-shard pipeline shape: at
// N=2 every scatter leg is an OpSearchStats composite (OpSearch never
// appears), the only OpStats frames are the foreign-candidate top-ups
// (at most one per shard per query), and the results stay bit-identical
// to a cold single-process detector over the same content.
func TestCompositeTopUpAccounting(t *testing.T) {
	p, sets := testPipeline(t)
	posts := streamPosts(p, 97, 300)
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}
	const n = 2

	servers, clients := startCountedShardServers(t, p, n, icfg)
	backends := make([]shard.Backend, n)
	for i, c := range clients {
		backends[i] = c
	}
	cluster := shard.NewCluster(p.World, backends...)
	if err := cluster.IngestBatch(posts); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Quiesce(); err != nil {
		t.Fatal(err)
	}
	remote := core.NewShardedLiveDetectorOver(p.Collection, cluster, p.Cfg.Online)
	cold := core.NewDetector(p.Collection, p.Corpus.ExtendedWith(posts), p.Cfg.Online)

	queries := 0
	for _, set := range sets {
		for _, q := range set.Queries {
			queries++
			got, _ := remote.Search(q)
			want, _ := cold.Search(q)
			expertsIdentical(t, "composite-vs-cold", q, got, want)
		}
	}
	var searchStats, stats, plainSearch int64
	for _, srv := range servers {
		searchStats += srv.Requests(transport.OpSearchStats)
		stats += srv.Requests(transport.OpStats)
		plainSearch += srv.Requests(transport.OpSearch)
	}
	if plainSearch != 0 {
		t.Fatalf("composite cluster still sent %d plain OpSearch frames", plainSearch)
	}
	if want := int64(queries * n); searchStats != want {
		t.Fatalf("%d queries over %d shards sent %d OpSearchStats frames, want %d",
			queries, n, searchStats, want)
	}
	if max := int64(queries * n); stats > max {
		t.Fatalf("top-ups sent %d OpStats frames for %d scatter legs — more than one per leg", stats, max)
	}
	if pq, se := remote.PartialStats(); pq != 0 || se != 0 {
		t.Fatalf("healthy composite cluster reported partial queries %d, shard errors %d", pq, se)
	}
}

// TestSubscriptionLapseResubscribes pins the fallback: when the push
// connection dies, the client notices, drops to unsubscribed, and the
// next Epoch re-subscribes on a fresh dial with a correct value — the
// lapse costs one dial and one epoch round trip, not a wrong answer.
func TestSubscriptionLapseResubscribes(t *testing.T) {
	p, _ := testPipeline(t)
	addr := startOneServer(t, p, ingest.DefaultConfig())

	d := fault.NewDialer()
	cfg := testClientConfig()
	cfg.Dial = d.Dial
	c := transport.NewRemoteShard(addr, cfg)
	defer c.Close()

	if _, err := c.Epoch(); err != nil {
		t.Fatal(err)
	}
	if !c.Subscribed() {
		t.Fatal("first Epoch did not subscribe")
	}
	dials := c.Dials()

	d.KillAll()
	deadline := time.Now().Add(5 * time.Second)
	for c.Subscribed() {
		if time.Now().After(deadline) {
			t.Fatal("client never noticed the killed push connection")
		}
		time.Sleep(2 * time.Millisecond)
	}

	epoch, err := c.Epoch()
	if err != nil {
		t.Fatalf("epoch after subscription lapse: %v", err)
	}
	if epoch == 0 {
		t.Fatal("re-subscribed epoch is zero")
	}
	if !c.Subscribed() {
		t.Fatal("epoch after lapse did not re-subscribe")
	}
	if got := c.Dials(); got != dials+1 {
		t.Fatalf("lapse recovery dialed %d extra conns, want 1", got-dials)
	}
	if got := c.EpochRTTs(); got != 2 {
		t.Fatalf("subscribe + resubscribe spent %d epoch round trips, want 2", got)
	}
}

// TestDialBudgetCapsReconnects pins the retry-budget satellite at the
// client itself: with a dead server, a burst of requests costs one dial
// attempt per backoff window — the rest fail immediately with
// shard.ErrBackoff — and the window expiry grants exactly one more.
func TestDialBudgetCapsReconnects(t *testing.T) {
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()

	const window = 300 * time.Millisecond
	var attempts int64
	cfg := transport.ClientConfig{
		Timeout:     200 * time.Millisecond,
		DialBackoff: shard.Backoff{Initial: window, Max: window},
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			attempts++
			return net.DialTimeout("tcp", addr, timeout)
		},
	}
	c := transport.NewRemoteShard(deadAddr, cfg)
	defer c.Close()

	sawBackoff := false
	for i := 0; i < 16; i++ {
		_, err := c.Epoch()
		if err == nil {
			t.Fatal("epoch against a dead address succeeded")
		}
		if errors.Is(err, shard.ErrBackoff) {
			sawBackoff = true
		}
	}
	if attempts != 1 {
		t.Fatalf("16 requests inside one backoff window attempted %d dials, want 1", attempts)
	}
	if !sawBackoff {
		t.Fatal("suppressed requests did not surface shard.ErrBackoff")
	}
	if c.Health().Healthy() {
		t.Fatal("client health reports healthy after a failed dial")
	}

	time.Sleep(window + 50*time.Millisecond)
	for i := 0; i < 8; i++ {
		c.Epoch()
	}
	if attempts != 2 {
		t.Fatalf("requests after window expiry attempted %d total dials, want 2", attempts)
	}
}

// TestCompressionNegotiatedIdentical pins the OpDeflate envelope over a
// live conversation: a compressing client and a NoCompress client page
// back bit-identical content after fat ingest batches, and OpInfo
// reports the server's FeatureCompress either way.
func TestCompressionNegotiatedIdentical(t *testing.T) {
	p, _ := testPipeline(t)
	addr := startOneServer(t, p, ingest.DefaultConfig())

	comp := transport.NewRemoteShard(addr, testClientConfig())
	defer comp.Close()
	plainCfg := testClientConfig()
	plainCfg.NoCompress = true
	plain := transport.NewRemoteShard(addr, plainCfg)
	defer plain.Close()

	for _, c := range []*transport.RemoteShard{comp, plain} {
		info, err := c.Info()
		if err != nil {
			t.Fatal(err)
		}
		if info.Features&transport.FeatureCompress == 0 {
			t.Fatal("server does not advertise FeatureCompress")
		}
	}

	// Fat batches: well past CompressMin in both directions.
	posts := streamPosts(p, 131, 1500)
	if err := comp.IngestBatch(posts); err != nil {
		t.Fatal(err)
	}
	got, err := comp.DumpIngested()
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.DumpIngested()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != len(posts) {
		t.Fatalf("paged %d posts compressed, %d plain, ingested %d", len(got), len(want), len(posts))
	}
	for i := range want {
		if got[i].Author != want[i].Author || got[i].Text != want[i].Text ||
			got[i].Topic != want[i].Topic || got[i].RetweetCount != want[i].RetweetCount {
			t.Fatalf("post %d differs across compression settings:\n  comp  %+v\n  plain %+v", i, got[i], want[i])
		}
	}
}

// TestDeflateEnvelopeShrinksAndRoundTrips is the envelope unit bar: a
// compressible payload shrinks, and the decode is a fixed point.
func TestDeflateEnvelopeShrinksAndRoundTrips(t *testing.T) {
	payload := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog "), 100)
	env := transport.AppendDeflate(nil, transport.OpTweets, payload)
	if len(env) >= len(payload) {
		t.Fatalf("envelope grew a compressible payload: %d → %d bytes", len(payload), len(env))
	}
	op, body, err := transport.ConsumeDeflate(nil, env)
	if err != nil || op != transport.OpTweets || !bytes.Equal(body, payload) {
		t.Fatalf("envelope round trip: op %v, %d bytes, err %v", op, len(body), err)
	}
}

// TestNewOpPayloadTruncationEveryOffset holds the new decoders to the
// truncation bar the original codecs meet: every strict prefix of a
// valid payload must be rejected — including a deflate envelope cut
// after the content bits but before the stream terminator.
func TestNewOpPayloadTruncationEveryOffset(t *testing.T) {
	full := seedFrames()
	searchStats := full[14][5:] // OpSearchStats response payload, 2 rows
	if _, _, err := transport.ConsumeSearchStatsResp(nil, nil, searchStats); err != nil {
		t.Fatalf("seed SearchStatsResp does not decode: %v", err)
	}
	for cut := 0; cut < len(searchStats); cut++ {
		if _, _, err := transport.ConsumeSearchStatsResp(nil, nil, searchStats[:cut]); err == nil {
			t.Fatalf("SearchStatsResp prefix of %d/%d bytes decoded", cut, len(searchStats))
		}
	}
	env := transport.AppendDeflate(nil, transport.OpTweets,
		bytes.Repeat([]byte("compressible payload body "), 60))
	if _, _, err := transport.ConsumeDeflate(nil, env); err != nil {
		t.Fatalf("seed envelope does not decode: %v", err)
	}
	for cut := 0; cut < len(env); cut++ {
		if _, _, err := transport.ConsumeDeflate(nil, env[:cut]); err == nil {
			t.Fatalf("deflate envelope prefix of %d/%d bytes decoded", cut, len(env))
		}
	}
}

// TestSearchStatsSurvivesWireTruncation sweeps a byte budget over live
// composite conversations: at every cutoff the client either fails
// cleanly or returns exactly what a clean connection returns — never a
// partial or garbled composite.
func TestSearchStatsSurvivesWireTruncation(t *testing.T) {
	p, _ := testPipeline(t)
	addr := startOneServer(t, p, ingest.DefaultConfig())

	clean := transport.NewRemoteShard(addr, testClientConfig())
	defer clean.Close()
	terms := []string{"49ers", "nfl"}
	wantRows, wantMatched, wantStats, v, err := clean.SearchStats(context.Background(), terms, false, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	v.Release()

	for limit := 0; limit < 600; limit += 7 {
		d := fault.NewDialer()
		d.TruncateAll(limit)
		cfg := testClientConfig()
		cfg.Dial = d.Dial
		cfg.NoSubscribe = true
		cfg.Timeout = 500 * time.Millisecond
		c := transport.NewRemoteShard(addr, cfg)
		rows, matched, stats, view, err := c.SearchStats(context.Background(), terms, false, nil, nil)
		if err == nil {
			if matched != wantMatched || len(rows) != len(wantRows) || len(stats) != len(wantStats) {
				t.Fatalf("limit %d: truncated conn returned matched %d rows %d stats %d, clean %d/%d/%d",
					limit, matched, len(rows), len(stats), wantMatched, len(wantRows), len(wantStats))
			}
			for i := range wantRows {
				if rows[i] != wantRows[i] || stats[i] != wantStats[i] {
					t.Fatalf("limit %d: row %d differs under truncation", limit, i)
				}
			}
			view.Release()
		}
		c.Close()
	}
}

// TestPushInterleavesWithResponses drives one raw socket through a
// subscribe-then-query conversation while another client ingests: the
// server's pusher and request handler share the write side of the
// connection, and every OpSearch response must arrive intact among the
// interleaved OpEpochDelta frames.
func TestPushInterleavesWithResponses(t *testing.T) {
	p, _ := testPipeline(t)
	addr := startOneServer(t, p, ingest.DefaultConfig())

	ingester := transport.NewRemoteShard(addr, testClientConfig())
	defer ingester.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(20 * time.Second))
	br := bufio.NewReader(conn)

	if _, err := conn.Write(transport.AppendFrame(nil, transport.OpSubscribe, nil)); err != nil {
		t.Fatal(err)
	}
	op, payload, buf, err := transport.ReadFrame(br, nil)
	if err != nil || op != transport.OpSubscribe {
		t.Fatalf("subscribe ack: op %v, err %v", op, err)
	}
	if _, _, err := transport.ConsumeEpochResp(payload); err != nil {
		t.Fatalf("subscribe ack payload: %v", err)
	}

	// Ingest churn in the background: every post bumps the epoch, so
	// deltas race the query responses on this connection's write side.
	done := make(chan error, 1)
	go func() {
		posts := streamPosts(p, 149, 200)
		for _, post := range posts {
			if _, err := ingester.Ingest(post); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	searchReq := transport.AppendFrame(nil, transport.OpSearch,
		transport.AppendSearchReq(nil, transport.SearchReq{Terms: []string{"49ers"}}))
	deltas := 0
	for i := 0; i < 25; i++ {
		if _, err := conn.Write(searchReq); err != nil {
			t.Fatal(err)
		}
		for {
			op, payload, buf, err = transport.ReadFrame(br, buf)
			if err != nil {
				t.Fatalf("query %d: read among pushes: %v", i, err)
			}
			if op == transport.OpEpochDelta {
				deltas++
				if _, _, err := transport.ConsumeEpochResp(payload); err != nil {
					t.Fatalf("query %d: corrupt delta among responses: %v", i, err)
				}
				continue
			}
			break
		}
		if op != transport.OpSearch {
			t.Fatalf("query %d: got op 0x%02x, want OpSearch response", i, byte(op))
		}
		if _, _, err := transport.ConsumeSearchResp(nil, payload); err != nil {
			t.Fatalf("query %d: response corrupted by interleaved pushes: %v", i, err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// 200 epoch bumps with coalescing: at least one delta must have
	// landed on this subscribed connection by the time ingest finishes.
	for deltas == 0 {
		op, payload, buf, err = transport.ReadFrame(br, buf)
		if err != nil {
			t.Fatalf("no delta ever arrived: %v", err)
		}
		if op == transport.OpEpochDelta {
			deltas++
		}
	}
}

// TestPushRaceHammer is the -race bar for the new machinery: searchers
// on the composite path, epoch-vector samplers on the subscribed
// clients and routed ingesters all hammer a 2-shard remote cluster
// concurrently; afterwards the quiesced epoch vector must match the
// servers' own epochs exactly.
func TestPushRaceHammer(t *testing.T) {
	p, _ := testPipeline(t)
	servers, clients := startCountedShardServers(t, p, 2, ingest.Config{SealThreshold: 16, CompactFanIn: 3})
	backends := make([]shard.Backend, len(clients))
	for i, c := range clients {
		backends[i] = c
	}
	cluster := shard.NewCluster(p.World, backends...)
	det := core.NewShardedLiveDetectorOver(p.Collection, cluster, p.Cfg.Online)
	queries := []string{"49ers", "nfl", "diabetes", "coffee", "zzz-none"}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, post := range streamPosts(p, uint64(500+g), 150) {
				if _, err := cluster.Ingest(post); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				det.Search(queries[(g+i)%len(queries)])
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := cluster.EpochVector(nil); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if pq, se := det.PartialStats(); pq != 0 || se != 0 {
		t.Fatalf("healthy hammered cluster reported partial queries %d, shard errors %d", pq, se)
	}
	if err := cluster.Quiesce(); err != nil {
		t.Fatal(err)
	}
	// After quiesce the pushed values must settle to the servers' own.
	deadline := time.Now().Add(5 * time.Second)
	for {
		vec, err := cluster.EpochVector(nil)
		if err != nil {
			t.Fatal(err)
		}
		settled := true
		for i, srv := range servers {
			if vec[i] != srv.Index().Epoch() {
				settled = false
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("epoch vector %v never settled to server epochs", vec)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
