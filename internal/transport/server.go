package transport

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expertise"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/world"
)

// serverFeatures is what this server offers in OpInfo negotiation.
const serverFeatures = FeatureCompress

// pushWriteTimeout bounds one OpEpochDelta write: a subscriber that
// cannot absorb a 3-byte frame in this long is dead or wedged, and the
// pusher drops the connection rather than block on it.
const pushWriteTimeout = 5 * time.Second

// newIncarnation draws the per-lifetime random server identity.
func newIncarnation() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a constant
		// here only weakens restart detection, so degrade quietly.
		return 1
	}
	return binary.BigEndian.Uint64(b[:])
}

// ServerConfig tunes a ShardServer.
type ServerConfig struct {
	// Shard and NumShards are the partition coordinates this server
	// claims in OpInfo — the deployment handshake clients verify.
	Shard, NumShards int
	// MaxTweetsPage caps one OpTweets page regardless of what the
	// request asks for, bounding response frames. Zero means 2048.
	MaxTweetsPage int
	// Obs, when non-nil, exports the server's wire accounting into the
	// registry: per-op request counters (rpc_server_<op>_requests, read
	// callbacks over the same atomics Requests reports), per-op
	// dispatch-to-flush latency histograms (rpc_server_<op>_ns),
	// rpc_server_pushes, byte counters (rpc_server_bytes_read,
	// rpc_server_bytes_written) and rpc_server_deflate_saved_bytes —
	// wire bytes compression avoided sending. Nil serves identically
	// with no clock reads on the request loop.
	Obs *obs.Registry
}

// DefaultServerConfig returns the serving defaults for shard i of n.
func DefaultServerConfig(i, n int) ServerConfig {
	return ServerConfig{Shard: i, NumShards: n, MaxTweetsPage: 2048}
}

// ShardServer serves one shard's ingest.Index over the wire protocol:
// each accepted connection is handled by one goroutine running a
// sequential read-dispatch-respond loop. Query execution happens in a
// shard.Local wrapping the index — the identical code path the
// in-process Router topology runs — so the only thing the wire adds is
// encode/decode, which carries integers and therefore cannot perturb
// the ranking.
type ShardServer struct {
	idx   *ingest.Index
	local *shard.Local
	cfg   ServerConfig
	ln    net.Listener
	// incarnation is drawn once per server lifetime and reported in
	// OpInfo; clients pin it at handshake and refuse to silently
	// reconnect to a restarted (epoch-regressed, content-lost) server.
	incarnation uint64

	mu     sync.Mutex
	conns  map[net.Conn]*connState
	closed bool

	// reqs counts request frames by op (after any OpDeflate unwrap);
	// pushes counts OpEpochDelta frames sent. They exist so tests can
	// hold the round-trip accounting to exact numbers: a warm composite
	// query is one OpSearchStats and nothing else, epoch sampling on a
	// subscribed connection is zero OpEpoch. With ServerConfig.Obs the
	// same atomics back the registry's rpc_server_<op>_requests rows
	// through read callbacks — one accounting, two consumers.
	reqs   [128]atomic.Int64
	pushes atomic.Int64

	// Observability (zero-valued without ServerConfig.Obs): per-op
	// latency histograms indexed like reqs, and the wire byte counters.
	obsOn                         bool
	obsOpNS                       [128]*obs.Histogram
	obsBytesRead, obsBytesWritten *obs.Counter
	obsDeflateSaved               *obs.Counter

	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup
}

// Requests returns how many request frames of op the server has
// dispatched since it started.
func (s *ShardServer) Requests(op Op) int64 { return s.reqs[op&0x7f].Load() }

// Pushes returns how many OpEpochDelta frames the server has pushed.
func (s *ShardServer) Pushes() int64 { return s.pushes.Load() }

// Serve starts serving idx on ln in background goroutines and returns
// immediately. Close stops accepting, closes every open connection and
// waits for the handlers; Wait blocks until the accept loop exits.
func Serve(ln net.Listener, idx *ingest.Index, cfg ServerConfig) *ShardServer {
	if cfg.MaxTweetsPage <= 0 {
		cfg.MaxTweetsPage = 2048
	}
	s := &ShardServer{
		idx:         idx,
		local:       shard.NewLocal(idx),
		cfg:         cfg,
		ln:          ln,
		incarnation: newIncarnation(),
		conns:       make(map[net.Conn]*connState),
	}
	if cfg.Obs != nil {
		s.obsOn = true
		for _, op := range requestOps {
			op := op
			cfg.Obs.RegisterFunc("rpc_server_"+op.Name()+"_requests", func() int64 {
				return s.reqs[op&0x7f].Load()
			})
			s.obsOpNS[op&0x7f] = cfg.Obs.Histogram("rpc_server_" + op.Name() + "_ns")
		}
		cfg.Obs.RegisterFunc("rpc_server_pushes", s.pushes.Load)
		s.obsBytesRead = cfg.Obs.Counter("rpc_server_bytes_read")
		s.obsBytesWritten = cfg.Obs.Counter("rpc_server_bytes_written")
		s.obsDeflateSaved = cfg.Obs.Counter("rpc_server_deflate_saved_bytes")
	}
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return s
}

// requestOps is every op a client can legitimately send — the set the
// server pre-registers per-op metrics for. OpEpochDelta (push-only),
// OpDeflate (envelope, unwrapped before counting) and OpError
// (response-only) are deliberately absent.
var requestOps = []Op{
	OpSearch, OpStats, OpIngest, OpEpoch, OpQuiesce, OpInfo,
	OpTweets, OpSubscribe, OpSearchStats, OpUnpin,
}

// Listen is the one-call form of Serve: it binds addr (TCP; ":0" picks
// a free port — read it back with Addr) and starts serving.
func Listen(addr string, idx *ingest.Index, cfg ServerConfig) (*ShardServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return Serve(ln, idx, cfg), nil
}

// Addr returns the listening address.
func (s *ShardServer) Addr() net.Addr { return s.ln.Addr() }

// Index returns the served streaming index.
func (s *ShardServer) Index() *ingest.Index { return s.idx }

// Wait blocks until the server stops accepting (Close, or a fatal
// listener error).
func (s *ShardServer) Wait() {
	s.acceptWG.Wait()
}

// Close stops accepting, closes every open connection and waits for
// the per-connection handlers to drain. The underlying index is not
// closed — it belongs to the caller.
func (s *ShardServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.acceptWG.Wait()
	s.connWG.Wait()
	return err
}

// Shutdown is the graceful form of Close: it stops accepting
// immediately, reaps idle connections (pooled keepalives and push
// subscribers, whose pushers stop through the handler teardown), and
// keeps connections that are mid-conversation — dispatching a request,
// or holding a search op's snapshot pin for its paired OpStats — alive
// for up to grace so the conversation finishes and the response
// reaches the peer. Whatever remains when the grace expires is closed
// abruptly. Safe to call concurrently with Close; both are idempotent.
func (s *ShardServer) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.ln.Close()
	s.mu.Unlock()
	deadline := time.Now().Add(grace)
	for {
		busy := 0
		s.mu.Lock()
		for c, st := range s.conns {
			if st.busy.Load() {
				busy++
				continue
			}
			// The handler wakes from its blocking read with an error and
			// tears the connection down (forget, view release, pusher
			// stop) — reuse of the normal exit path keeps one cleanup.
			c.Close()
		}
		s.mu.Unlock()
		if busy == 0 || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.acceptWG.Wait()
	s.connWG.Wait()
	return err
}

// acceptLoop admits connections until the listener closes.
func (s *ShardServer) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		st := &connState{
			br:              bufio.NewReader(conn),
			bw:              bufio.NewWriter(conn),
			obsBytesW:       s.obsBytesWritten,
			obsDeflateSaved: s.obsDeflateSaved,
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = st
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handle(conn, st)
	}
}

// forget drops a finished connection from the close set.
func (s *ShardServer) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// connState is the per-connection request-handling state: buffered IO,
// reusable frame/payload buffers, and the protocol state — the view
// the last OpSearch/OpSearchStats pinned (which a following OpStats
// reads so both halves of a query observe the same snapshot), the
// negotiated feature bits, and the subscription pusher's controls.
type connState struct {
	br   *bufio.Reader
	bw   *bufio.Writer
	in   []byte // frame read buffer
	out  []byte // response build buffer
	dec  []byte // OpDeflate request inflate buffer
	env  []byte // OpDeflate response envelope buffer (guarded by wmu)
	rows []expertise.RawCandidate
	stat []expertise.UserStats
	uids []world.UserID
	view shard.View

	// busy marks a connection mid-conversation: a request frame is
	// being dispatched, or the last search op left a snapshot pinned
	// for its paired OpStats. Shutdown's drain keeps busy connections
	// alive until the conversation closes (or the grace period runs
	// out) and reaps the rest immediately.
	busy atomic.Bool

	// wmu serializes every frame write on bw: responses from the
	// handler loop and pushes from the connection's pusher goroutine.
	wmu sync.Mutex
	// obsBytesW and obsDeflateSaved are the server's wire-write
	// counters, shared by the handler and the pusher (guarded by wmu
	// like the writer itself); nil on an un-instrumented server, and
	// nil-safe to add to either way.
	obsBytesW       *obs.Counter
	obsDeflateSaved *obs.Counter
	// features holds the negotiated feature bits (atomic: the handler
	// stores on OpInfo while the pusher loads per push).
	features atomic.Uint64
	// subscribed, stop and subEpoch exist once OpSubscribe succeeds:
	// stop ends the pusher when the handler exits, subEpoch is the
	// epoch the subscription ack reported (the pusher's baseline).
	subscribed bool
	stop       chan struct{}
	subEpoch   uint64
}

// handle runs one connection's sequential request loop until the peer
// hangs up, a frame fails to parse, or the server closes.
func (s *ShardServer) handle(conn net.Conn, st *connState) {
	defer s.connWG.Done()
	defer s.forget(conn)
	defer conn.Close()
	defer func() {
		if st.stop != nil {
			close(st.stop)
		}
		if st.view != nil {
			st.view.Release()
			st.view = nil
		}
	}()
	for {
		op, payload, buf, err := ReadFrame(st.br, st.in)
		st.in = buf
		if err != nil {
			// EOF and connection-reset are the peer leaving; a parse
			// error means the stream is unframeable — either way the
			// only safe move is to drop the connection (responding
			// in-stream to an unsynchronized peer would corrupt it).
			return
		}
		var t0 time.Time
		if s.obsOn {
			s.obsBytesRead.Add(int64(headerLen + 1 + len(payload)))
			t0 = time.Now()
		}
		if op == OpDeflate {
			// An undecodable envelope means the stream can no longer be
			// trusted byte-for-byte; drop the connection like any other
			// framing failure.
			op, st.dec, err = ConsumeDeflate(st.dec, payload)
			if err != nil {
				return
			}
			payload = st.dec
		}
		s.reqs[op&0x7f].Add(1)
		st.busy.Store(true)
		st.out = st.out[:0]
		respOp, respErr := s.dispatch(st, op, payload)
		if op != OpSearch && op != OpSearchStats && st.view != nil {
			// The pin exists solely for the one OpStats that may
			// immediately follow a search op; any other op ends that
			// conversation, so drop it rather than let an idle pooled
			// connection retain a retired snapshot (and its segments)
			// server-side indefinitely.
			st.view.Release()
			st.view = nil
		}
		if respOp == opNone && respErr == nil {
			// Fire-and-forget op (OpUnpin): nothing goes back.
			st.busy.Store(st.view != nil)
			if s.obsOn {
				s.obsOpNS[op&0x7f].Observe(time.Since(t0).Nanoseconds())
			}
			continue
		}
		if respErr != nil {
			st.out = append(st.out[:0], respErr.Error()...)
			respOp = OpError
		}
		if err := s.writeResp(st, respOp, st.out); err != nil {
			return
		}
		// The conversation stays open — and the connection drain-exempt —
		// exactly while a search op's snapshot pin awaits its paired
		// OpStats; everything else returns the connection to idle.
		st.busy.Store(st.view != nil)
		if s.obsOn {
			// Dispatch-to-flush: the server-side cost of the request,
			// response serialization and write included. Nil-safe for op
			// bytes outside the protocol (no histogram registered).
			s.obsOpNS[op&0x7f].Observe(time.Since(t0).Nanoseconds())
		}
		if op == OpSubscribe && respErr == nil && !st.subscribed {
			// Start pushing only after the ack is on the wire, so the
			// client's first frame after OpSubscribe is its response.
			st.subscribed = true
			st.stop = make(chan struct{})
			s.connWG.Add(1)
			go s.pushLoop(conn, st, st.subEpoch)
		}
	}
}

// opNone is dispatch's "write no response" sentinel (fire-and-forget
// requests). It is the deliberately invalid zero op.
const opNone Op = 0

// writeResp writes one response frame under the connection's write
// mutex, compressing it into an OpDeflate envelope when negotiation
// allows and it actually helps.
func (s *ShardServer) writeResp(st *connState, op Op, payload []byte) error {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	return writeFrameLocked(st, op, payload)
}

// writeFrameLocked frames, optionally compresses, writes and flushes.
// Callers hold st.wmu.
func writeFrameLocked(st *connState, op Op, payload []byte) error {
	wireOp, body := op, payload
	if st.features.Load()&FeatureCompress != 0 && len(payload) >= CompressMin && op != OpError {
		st.env = AppendDeflate(st.env[:0], op, payload)
		if len(st.env) < len(payload) {
			wireOp, body = OpDeflate, st.env
			st.obsDeflateSaved.Add(int64(len(payload) - len(body)))
		}
	}
	st.obsBytesW.Add(int64(headerLen + 1 + len(body)))
	var hdr [headerLen + 1]byte
	binary.BigEndian.PutUint32(hdr[:headerLen], uint32(1+len(body)))
	hdr[headerLen] = byte(wireOp)
	if _, err := st.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := st.bw.Write(body); err != nil {
		return err
	}
	return st.bw.Flush()
}

// pushLoop is the per-subscribed-connection pusher: it sleeps on the
// index's publish channel and writes one OpEpochDelta with the latest
// epoch per wakeup. Being a single goroutine per connection is what
// coalesces pushes — while one write is in flight no other push can
// start, and the next one reads whatever epoch is current by then, so
// a burst of publishes costs one frame, never a backlog.
func (s *ShardServer) pushLoop(conn net.Conn, st *connState, last uint64) {
	defer s.connWG.Done()
	var payload []byte
	for {
		// Grab the watch channel before reading the epoch: a publish
		// racing these two lines either bumped the epoch read below or
		// closes the channel held here — a wakeup cannot be lost.
		ch := s.idx.Watch()
		if cur := s.idx.Epoch(); cur != last {
			payload = AppendEpochResp(payload[:0], EpochResp{Epoch: cur})
			st.wmu.Lock()
			conn.SetWriteDeadline(time.Now().Add(pushWriteTimeout))
			err := writeFrameLocked(st, OpEpochDelta, payload)
			conn.SetWriteDeadline(time.Time{})
			st.wmu.Unlock()
			if err != nil {
				conn.Close()
				return
			}
			s.pushes.Add(1)
			last = cur
		}
		select {
		case <-ch:
		case <-st.stop:
			return
		}
	}
}

// dispatch decodes one request, executes it and builds the response
// payload in st.out. A returned error becomes an OpError response; the
// connection survives (the request was framed correctly, so the stream
// is still synchronized).
func (s *ShardServer) dispatch(st *connState, op Op, payload []byte) (Op, error) {
	switch op {
	case OpSearch:
		req, _, err := ConsumeSearchReq(payload)
		if err != nil {
			return 0, err
		}
		if st.view != nil {
			st.view.Release()
			st.view = nil
		}
		var matched int
		var view shard.View
		// The wire protocol carries no deadline (the client applies its
		// clamped budget to the conn's IO deadlines instead), so the
		// in-process execution runs unbounded.
		st.rows, matched, view, err = s.local.Search(context.Background(), req.Terms, req.Extended, st.rows)
		if err != nil {
			return 0, err
		}
		st.view = view
		st.out = AppendSearchResp(st.out, SearchResp{Matched: matched, Rows: st.rows})
		return OpSearch, nil

	case OpSearchStats:
		req, _, err := ConsumeSearchReq(payload)
		if err != nil {
			return 0, err
		}
		if st.view != nil {
			st.view.Release()
			st.view = nil
		}
		var matched int
		var view shard.View
		st.rows, matched, view, err = s.local.Search(context.Background(), req.Terms, req.Extended, st.rows)
		if err != nil {
			return 0, err
		}
		st.uids = st.uids[:0]
		for i := range st.rows {
			st.uids = append(st.uids, st.rows[i].User)
		}
		st.stat, err = view.Stats(context.Background(), st.uids, st.stat)
		if err != nil {
			view.Release()
			return 0, err
		}
		if s.cfg.NumShards > 1 {
			// A multi-shard coordinator may top up foreign candidates'
			// denominators with an OpStats next; keep the snapshot
			// pinned for it. A single-shard deployment has no foreign
			// candidates, so skip the pin and let the client skip the
			// OpUnpin too — that is what makes the healthy N=1 query
			// exactly one frame each way.
			st.view = view
		} else {
			view.Release()
		}
		st.out = AppendSearchStatsResp(st.out, SearchStatsResp{Matched: matched, Rows: st.rows, Stats: st.stat})
		return OpSearchStats, nil

	case OpUnpin:
		// Fire-and-forget: the handler loop's post-dispatch release
		// already drops any pin; there is nothing to answer.
		return opNone, nil

	case OpSubscribe:
		e := s.idx.Epoch()
		st.subEpoch = e
		st.out = AppendEpochResp(st.out, EpochResp{Epoch: e})
		return OpSubscribe, nil

	case OpStats:
		var err error
		st.uids, _, err = expertise.ConsumeUserIDs(st.uids, payload)
		if err != nil {
			return 0, err
		}
		// A connection that has not searched yet reads the current
		// snapshot; one that has reads the pinned one, completing the
		// search→stats conversation against a single view.
		view := st.view
		if view == nil {
			view = s.local.View()
			defer view.Release()
		}
		st.stat, err = view.Stats(context.Background(), st.uids, st.stat)
		if err != nil {
			return 0, err
		}
		st.out = expertise.AppendUserStats(st.out, st.stat)
		return OpStats, nil

	case OpIngest:
		req, _, err := ConsumeIngestReq(payload)
		if err != nil {
			return 0, err
		}
		resp := IngestResp{First: -1, Count: len(req.Posts)}
		for i := range req.Posts {
			id := s.idx.Ingest(req.Posts[i])
			if i == 0 {
				resp.First = id
			}
		}
		st.out = AppendIngestResp(st.out, resp)
		return OpIngest, nil

	case OpEpoch:
		st.out = AppendEpochResp(st.out, EpochResp{Epoch: s.idx.Epoch()})
		return OpEpoch, nil

	case OpQuiesce:
		s.idx.Quiesce()
		st.out = AppendEpochResp(st.out, EpochResp{Epoch: s.idx.Epoch()})
		return OpQuiesce, nil

	case OpInfo:
		req, _, err := ConsumeInfoReqExpect(payload)
		if err != nil {
			return 0, err
		}
		// World-size renegotiation: a client restating handshake-pinned
		// coordinates is refused here, at connect, when the topology it
		// was wired for no longer matches this server — a reshard
		// changed the shard count, or the deterministic build diverged.
		// Failing the OpInfo means the client never trusts the
		// connection, instead of silently reading the wrong partition.
		if req.ExpectShards > 0 {
			if req.ExpectShard != s.cfg.Shard || req.ExpectShards != s.cfg.NumShards {
				return 0, fmt.Errorf("transport: client expects shard %d/%d, server is %d/%d (resharded?)",
					req.ExpectShard, req.ExpectShards, s.cfg.Shard, s.cfg.NumShards)
			}
			if users := len(s.idx.World().Users); req.ExpectUsers != users {
				return 0, fmt.Errorf("transport: client expects %d users, server has %d", req.ExpectUsers, users)
			}
			if base := s.idx.Base().NumTweets(); req.ExpectBase != base {
				return 0, fmt.Errorf("transport: client expects %d base tweets, server has %d", req.ExpectBase, base)
			}
		}
		st.features.Store(req.Features & serverFeatures)
		snap := s.idx.Snapshot()
		st.out = AppendInfoResp(st.out, InfoResp{
			Shard:       s.cfg.Shard,
			NumShards:   s.cfg.NumShards,
			Users:       len(s.idx.World().Users),
			BaseTweets:  s.idx.Base().NumTweets(),
			NumTweets:   snap.NumTweets(),
			Epoch:       snap.Epoch(),
			Incarnation: s.incarnation,
			Features:    serverFeatures,
		})
		return OpInfo, nil

	case OpTweets:
		req, _, err := ConsumeTweetsReq(payload)
		if err != nil {
			return 0, err
		}
		snap := s.idx.Snapshot()
		total := snap.NumTweets()
		// Max bounds the ids scanned, not the posts returned: a
		// filtered handoff page may return far fewer posts than it
		// scanned, and Scanned tells the client how far to advance.
		max := min(req.Max, s.cfg.MaxTweetsPage)
		resp := TweetsResp{Total: total}
		for gid := req.From; gid < total && resp.Scanned < max; gid++ {
			resp.Scanned++
			tw := snap.Tweet(microblog.TweetID(gid))
			if req.FilterShards > 0 && shard.ShardOf(tw.Author, req.FilterShards) != req.FilterIdx {
				continue
			}
			resp.Posts = append(resp.Posts, microblog.Post{
				Author:       tw.Author,
				Text:         tw.Text,
				Mentions:     tw.Mentions,
				RetweetCount: tw.RetweetCount,
				Topic:        tw.Topic,
			})
		}
		st.out = AppendTweetsResp(st.out, resp)
		return OpTweets, nil

	default:
		return 0, fmt.Errorf("transport: unknown op 0x%02x", byte(op))
	}
}
