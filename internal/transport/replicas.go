package transport

import (
	"fmt"
	"strings"

	"repro/internal/shard"
)

// DialReplicas builds one handshaken RemoteShard per address, every
// one of them claiming the *same* partition coordinates — the
// client-side wiring step of a replicated shard, whose replicas are
// interchangeable shardd processes serving identical content. The
// handshake pins each server's shard index, partition count, world
// size, base slice and incarnation exactly as a single-replica wiring
// would, so a mis-deployed replica (wrong partition, wrong pipeline
// build, restarted process) fails here instead of skewing rankings
// after a failover. On any failure every already-dialed client is
// closed and the error names the offending address. The returned
// backends are ordered as addrs — addrs[0] becomes the primary when
// handed to replica.NewSet.
func DialReplicas(addrs []string, shardIdx, numShards, users, baseTweets int, cfg ClientConfig) ([]shard.Backend, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("transport: shard %d: no replica addresses", shardIdx)
	}
	backends := make([]shard.Backend, 0, len(addrs))
	for _, addr := range addrs {
		c := NewRemoteShard(strings.TrimSpace(addr), cfg)
		if err := c.Handshake(shardIdx, numShards, users, baseTweets); err != nil {
			c.Close()
			for _, b := range backends {
				b.Close()
			}
			return nil, fmt.Errorf("transport: shard %d replica %s: %w", shardIdx, addr, err)
		}
		backends = append(backends, c)
	}
	return backends, nil
}
