// Fault-injection tests for OpTweets paging — the frames the resharding
// handoff streams author logs over. The paging contract under chaos: a
// response truncated at ANY byte offset yields a clean error, never a
// silently short page (a drain that trusted one would hand the
// destination an incomplete author log and break bit-identical
// cutover); one-byte fragmentation changes nothing; an empty shard and
// an exact page boundary both terminate the cursor loop without
// off-by-ones; server-side filtering partitions the log exactly; and a
// client wired for the old topology is refused at connect.
package transport_test

import (
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/world"
)

// countingConn counts inbound bytes so a test can learn exactly how
// many bytes a clean conversation reads, then truncate at every offset
// below that.
type countingConn struct {
	net.Conn
	n *atomic.Int64
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// postKey flattens a post into a comparable identity; Mentions makes
// microblog.Post itself non-comparable.
func postKey(p microblog.Post) string {
	return fmt.Sprintf("%d|%s|%d|%d|%v", p.Author, p.Text, p.Topic, p.RetweetCount, p.Mentions)
}

// pagingClient returns a probe-mode client (no push subscription, so
// the inbound byte stream of one request is exactly one negotiate plus
// one response — deterministic and countable).
func pagingClient(addr string, dial func(string, time.Duration) (net.Conn, error)) *transport.RemoteShard {
	cfg := testClientConfig()
	cfg.NoSubscribe = true
	cfg.Dial = dial
	return transport.NewRemoteShard(addr, cfg)
}

// TestTweetsPageTruncatedAtEveryOffset is the headline fault case:
// measure the exact inbound byte count of one clean paged read, then
// rerun the identical request with the stream cut after every offset
// 0..N-1. Every cut must surface an error — no partial page ever
// decodes — and at offset N the full page comes back bit-identical.
func TestTweetsPageTruncatedAtEveryOffset(t *testing.T) {
	p, _ := testPipeline(t)
	addr := startOneServer(t, p, ingest.DefaultConfig())

	loader := pagingClient(addr, nil)
	defer loader.Close()
	if err := loader.IngestBatch(streamPosts(p, 8301, 40)); err != nil {
		t.Fatal(err)
	}
	base, err := loader.BasePosts()
	if err != nil {
		t.Fatal(err)
	}

	var inbound atomic.Int64
	counted := pagingClient(addr, func(a string, timeout time.Duration) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", a, timeout)
		if err != nil {
			return nil, err
		}
		return countingConn{Conn: conn, n: &inbound}, nil
	})
	defer counted.Close()
	wantPosts, wantScanned, wantTotal, err := counted.PagePosts(base, 16, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wantScanned != 16 || len(wantPosts) != 16 {
		t.Fatalf("reference page: scanned %d, %d posts, want 16/16", wantScanned, len(wantPosts))
	}
	total := int(inbound.Load())
	if total == 0 {
		t.Fatal("counting dialer saw no inbound bytes")
	}

	for off := 0; off < total; off++ {
		d := fault.NewDialer()
		d.TruncateNext(off)
		c := pagingClient(addr, d.Dial)
		posts, scanned, _, err := c.PagePosts(base, 16, 0, 0)
		c.Close()
		if err == nil {
			t.Fatalf("offset %d/%d: truncated response decoded into a page (%d posts, scanned %d)",
				off, total, len(posts), scanned)
		}
	}

	// The stream cut exactly after the full conversation is not a fault.
	d := fault.NewDialer()
	d.TruncateNext(total)
	c := pagingClient(addr, d.Dial)
	defer c.Close()
	posts, scanned, pageTotal, err := c.PagePosts(base, 16, 0, 0)
	if err != nil {
		t.Fatalf("cut after %d bytes (the full response) failed: %v", total, err)
	}
	if scanned != wantScanned || pageTotal != wantTotal || len(posts) != len(wantPosts) {
		t.Fatalf("page after exact-length cut: scanned %d total %d posts %d, want %d/%d/%d",
			scanned, pageTotal, len(posts), wantScanned, wantTotal, len(wantPosts))
	}
	for i := range wantPosts {
		if postKey(posts[i]) != postKey(wantPosts[i]) {
			t.Fatalf("post %d differs after exact-length cut", i)
		}
	}
}

// TestPagingFragmentedBitIdentical drains the whole ingested log over a
// connection delivering one byte per read/write and requires the exact
// pages a clean connection produces.
func TestPagingFragmentedBitIdentical(t *testing.T) {
	p, _ := testPipeline(t)
	addr := startOneServer(t, p, ingest.DefaultConfig())

	clean := pagingClient(addr, nil)
	defer clean.Close()
	if err := clean.IngestBatch(streamPosts(p, 8302, 30)); err != nil {
		t.Fatal(err)
	}
	base, err := clean.BasePosts()
	if err != nil {
		t.Fatal(err)
	}

	d := fault.NewDialer()
	d.FragmentAll()
	frag := pagingClient(addr, d.Dial)
	defer frag.Close()

	drain := func(c *transport.RemoteShard) (posts []microblog.Post, pages []int) {
		at := base
		for {
			page, scanned, total, err := c.PagePosts(at, 7, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if scanned == 0 {
				if at != total {
					t.Fatalf("drain stopped at %d with total %d", at, total)
				}
				return posts, pages
			}
			posts = append(posts, page...)
			pages = append(pages, scanned)
			at += scanned
		}
	}
	wantPosts, wantPages := drain(clean)
	gotPosts, gotPages := drain(frag)
	if len(gotPosts) != len(wantPosts) || len(gotPages) != len(wantPages) {
		t.Fatalf("fragmented drain: %d posts %d pages, clean %d/%d",
			len(gotPosts), len(gotPages), len(wantPosts), len(wantPages))
	}
	for i := range wantPosts {
		if postKey(gotPosts[i]) != postKey(wantPosts[i]) {
			t.Fatalf("post %d differs over fragmented conn", i)
		}
	}
	for i := range wantPages {
		if gotPages[i] != wantPages[i] {
			t.Fatalf("page %d scanned %d over fragments, clean scanned %d", i, gotPages[i], wantPages[i])
		}
	}
}

// TestPagingEmptyShardAndBeyondEnd pins cursor-loop termination: a
// shard with nothing ingested answers the drain's first page with
// scanned == 0 (the loop's stop condition), and a cursor at or past the
// end of a non-empty log does the same instead of wrapping or erroring.
func TestPagingEmptyShardAndBeyondEnd(t *testing.T) {
	p, _ := testPipeline(t)
	addr := startOneServer(t, p, ingest.DefaultConfig())
	c := pagingClient(addr, nil)
	defer c.Close()

	base, err := c.BasePosts()
	if err != nil {
		t.Fatal(err)
	}
	// Nothing ingested yet: the drain floor IS the log end.
	posts, scanned, total, err := c.PagePosts(base, 32, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if scanned != 0 || len(posts) != 0 || total != base {
		t.Fatalf("empty shard page: scanned %d, %d posts, total %d (base %d)", scanned, len(posts), total, base)
	}

	if err := c.IngestBatch(streamPosts(p, 8303, 12)); err != nil {
		t.Fatal(err)
	}
	for _, from := range []int{base + 12, base + 13, base + 500} {
		posts, scanned, total, err := c.PagePosts(from, 32, 0, 0)
		if err != nil {
			t.Fatalf("from %d: %v", from, err)
		}
		if scanned != 0 || len(posts) != 0 {
			t.Fatalf("from %d past end: scanned %d, %d posts", from, scanned, len(posts))
		}
		if total != base+12 {
			t.Fatalf("from %d: total %d, want %d", from, total, base+12)
		}
	}
	// A max<=0 probe reports the total without moving any posts.
	if posts, scanned, total, err := c.PagePosts(base, 0, 0, 0); err != nil || scanned != 0 || len(posts) != 0 || total != base+12 {
		t.Fatalf("zero-max probe: %d posts, scanned %d, total %d, err %v", len(posts), scanned, total, err)
	}
}

// TestPagingExactPageBoundary ingests exactly three full pages and
// walks them: every page must scan exactly the page size, the fourth
// must be empty (no off-by-one re-serving the last id, none skipped),
// and the concatenation must be the ingested sequence in order.
func TestPagingExactPageBoundary(t *testing.T) {
	p, _ := testPipeline(t)
	addr := startOneServer(t, p, ingest.DefaultConfig())
	c := pagingClient(addr, nil)
	defer c.Close()

	const pageSize, pages = 8, 3
	sent := streamPosts(p, 8304, pageSize*pages)
	if err := c.IngestBatch(sent); err != nil {
		t.Fatal(err)
	}
	base, err := c.BasePosts()
	if err != nil {
		t.Fatal(err)
	}

	var got []microblog.Post
	at := base
	for i := 0; i < pages; i++ {
		page, scanned, total, err := c.PagePosts(at, pageSize, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if scanned != pageSize || len(page) != pageSize {
			t.Fatalf("page %d: scanned %d, %d posts, want exactly %d", i, scanned, len(page), pageSize)
		}
		if total != base+len(sent) {
			t.Fatalf("page %d: total %d, want %d", i, total, base+len(sent))
		}
		got = append(got, page...)
		at += scanned
	}
	if _, scanned, _, err := c.PagePosts(at, pageSize, 0, 0); err != nil || scanned != 0 {
		t.Fatalf("page after exact boundary: scanned %d, err %v", scanned, err)
	}
	for i := range sent {
		if postKey(got[i]) != postKey(sent[i]) {
			t.Fatalf("post %d out of order across exact page boundaries", i)
		}
	}
}

// TestFilteredPagingPartitionsLog pins the server-side handoff filter:
// paging the same range once per destination index must hand every post
// to exactly the index its author hashes to, scan the full range each
// pass (the cursor advances by scanned ids, not returned posts), and
// reassemble the complete ingested multiset with nothing duplicated.
func TestFilteredPagingPartitionsLog(t *testing.T) {
	p, _ := testPipeline(t)
	addr := startOneServer(t, p, ingest.DefaultConfig())
	c := pagingClient(addr, nil)
	defer c.Close()

	sent := streamPosts(p, 8305, 60)
	if err := c.IngestBatch(sent); err != nil {
		t.Fatal(err)
	}
	base, err := c.BasePosts()
	if err != nil {
		t.Fatal(err)
	}

	const fs = 4
	union := map[string]int{}
	for idx := 0; idx < fs; idx++ {
		at, scannedSum := base, 0
		for {
			page, scanned, total, err := c.PagePosts(at, 16, fs, idx)
			if err != nil {
				t.Fatal(err)
			}
			if scanned == 0 {
				if at != total {
					t.Fatalf("idx %d: filtered drain stopped at %d, total %d", idx, at, total)
				}
				break
			}
			for _, post := range page {
				if shard.ShardOf(world.UserID(post.Author), fs) != idx {
					t.Fatalf("idx %d received a post whose author hashes to %d",
						idx, shard.ShardOf(world.UserID(post.Author), fs))
				}
				union[postKey(post)]++
			}
			scannedSum += scanned
			at += scanned
		}
		if scannedSum != len(sent) {
			t.Fatalf("idx %d scanned %d ids, want the full %d-post range", idx, scannedSum, len(sent))
		}
	}
	want := map[string]int{}
	for _, post := range sent {
		want[postKey(post)]++
	}
	if len(union) != len(want) {
		t.Fatalf("filtered union has %d distinct posts, ingested %d", len(union), len(want))
	}
	for k, n := range want {
		if union[k] != n {
			t.Fatalf("post %q count %d across filters, ingested %d times", k, union[k], n)
		}
	}
}

// TestMiswiredClientRejectedAtConnect pins the OpInfo world-size
// renegotiation: a client handshake-pinned to the old topology restates
// its coordinates on every fresh connect, and a server now holding a
// different shard count refuses the OpInfo — the client fails at
// connect instead of reading the wrong partition after a reshard.
func TestMiswiredClientRejectedAtConnect(t *testing.T) {
	p, _ := testPipeline(t)
	part := shard.Partition(p.Corpus, 0, 2)
	idx := ingest.New(part, ingest.DefaultConfig())
	defer idx.Close()
	srv, err := transport.Listen("127.0.0.1:0", idx, transport.DefaultServerConfig(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()

	c := pagingClient(addr, nil)
	defer c.Close()
	if err := c.Handshake(0, 2, len(p.World.Users), part.NumTweets()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Epoch(); err != nil {
		t.Fatal(err)
	}

	// The deployment resharded 2→4: the same address now serves shard
	// 0 of 4 over the narrower partition.
	srv.Close()
	part4 := shard.Partition(p.Corpus, 0, 4)
	idx4 := ingest.New(part4, ingest.DefaultConfig())
	defer idx4.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv4 := transport.Serve(ln, idx4, transport.DefaultServerConfig(0, 4))
	defer srv4.Close()

	_, err = c.Epoch()
	if err == nil {
		t.Fatal("client pinned to 2 shards silently reconnected to a 4-shard server")
	}
	if !strings.Contains(err.Error(), "resharded?") {
		t.Fatalf("want the server-side renegotiation refusal, got: %v", err)
	}
	if _, err := c.Epoch(); err == nil {
		t.Fatal("second request after reshard succeeded")
	}
}
