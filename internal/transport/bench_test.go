// Benchmarks for the wire: scatter-gather query latency when every
// shard sits behind a loopback TCP round trip
// (BenchmarkRemoteSearchSharded*, compared against the in-process
// BenchmarkLiveSearchSharded* numbers in internal/shard — the delta is
// the price of the process boundary: since the OpSearchStats composite,
// one round trip per shard per query on a single-shard deployment,
// plus at most one top-up round trip per shard when N > 1 —
// encode/decode and kernel socket hops on top), the warm epoch-sample
// cost on a subscribed client (BenchmarkRemoteEpochSample — a memory
// read, no frames), a mixed read/write load (BenchmarkRemoteMixedLoad)
// and the isolated frame codec cost (BenchmarkWireSearchCodec).
// BENCHMARKS.md records the per-PR numbers; on the 1-core CI container
// the per-shard round trips serialize, so multi-shard remote latency
// there is an upper bound, not the parallel-deployment number.
package transport_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/expertise"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/world"
)

// benchRemoteCluster boots n loopback shard servers holding the base
// partition plus `posts` streamed posts, quiesced, and returns the
// remote detector.
func benchRemoteCluster(b *testing.B, n, posts int) *core.ShardedLiveDetector {
	p, _ := testPipeline(b)
	clients := startShardServers(b, p, n, ingest.DefaultConfig())
	backends := make([]shard.Backend, n)
	for i, c := range clients {
		backends[i] = c
	}
	cluster := shard.NewCluster(p.World, backends...)
	stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(19))
	batch := make([]microblog.Post, posts)
	for i := range batch {
		batch[i] = stream.Next()
	}
	if err := cluster.IngestBatch(batch); err != nil {
		b.Fatal(err)
	}
	if err := cluster.Quiesce(); err != nil {
		b.Fatal(err)
	}
	online := p.Cfg.Online
	online.MatchWorkers = 1
	return core.NewShardedLiveDetectorOver(p.Collection, cluster, online)
}

// benchRemoteSearch measures steady-state scatter-gather latency with
// every shard behind loopback TCP: per query, each shard costs one
// OpSearchStats composite round trip on a pooled connection, plus (only
// when N > 1 and foreign candidates exist) one top-up OpStats round
// trip against the pinned snapshot.
func benchRemoteSearch(b *testing.B, shards int) {
	d := benchRemoteCluster(b, shards, 2048)
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, _ := d.Search("49ers")
		n = len(results)
	}
	b.ReportMetric(float64(n), "experts")
	b.ReportMetric(float64(shards), "shards")
	if pq, _ := d.PartialStats(); pq != 0 {
		b.Fatalf("%d partial queries during benchmark", pq)
	}
}

func BenchmarkRemoteSearchSharded1(b *testing.B) { benchRemoteSearch(b, 1) }
func BenchmarkRemoteSearchSharded4(b *testing.B) { benchRemoteSearch(b, 4) }

// BenchmarkRemoteEpochSample measures the serving cache's per-request
// freshness check on a warm subscribed client: the epoch vector is a
// local atomic read per shard — no frames, no syscalls — which is what
// the push channel buys over the old per-sample OpEpoch probe.
func BenchmarkRemoteEpochSample(b *testing.B) {
	p, _ := testPipeline(b)
	clients := startShardServers(b, p, 2, ingest.DefaultConfig())
	cluster := shard.NewCluster(p.World, clients[0], clients[1])
	vec, err := cluster.EpochVector(nil) // warm: subscribes both clients
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range clients {
		if !c.Subscribed() {
			b.Fatal("warmup did not subscribe")
		}
	}
	rtts := clients[0].EpochRTTs() + clients[1].EpochRTTs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vec, err = cluster.EpochVector(vec[:0]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := clients[0].EpochRTTs() + clients[1].EpochRTTs() - rtts; got != 0 {
		b.Fatalf("%d warm samples spent %d epoch round trips, want 0", b.N, got)
	}
}

// BenchmarkRemoteMixedLoad measures sustained remote throughput under
// the serving mix: per iteration one scatter-gather query, one
// epoch-vector sample (the cache freshness check) and, every eighth
// iteration, one routed ingest — the workload the round-trip
// reductions of the push + composite protocol are aimed at.
func BenchmarkRemoteMixedLoad(b *testing.B) {
	d := benchRemoteCluster(b, 2, 2048)
	cluster := d.Cluster()
	p, _ := testPipeline(b)
	stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(29))
	queries := []string{"49ers", "nfl", "diabetes", "coffee"}
	var vec []uint64
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Search(queries[i%len(queries)])
		if vec, err = cluster.EpochVector(vec[:0]); err != nil {
			b.Fatal(err)
		}
		if i%8 == 0 {
			if _, err := cluster.Ingest(stream.Next()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if pq, _ := d.PartialStats(); pq != 0 {
		b.Fatalf("%d partial queries during benchmark", pq)
	}
}

// BenchmarkRemoteIngest measures routed write throughput over the
// wire: one OpIngest frame per post on a pooled connection.
func BenchmarkRemoteIngest(b *testing.B) {
	p, _ := testPipeline(b)
	clients := startShardServers(b, p, 2, ingest.DefaultConfig())
	cluster := shard.NewCluster(p.World, clients[0], clients[1])
	stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(23))
	posts := make([]microblog.Post, 4096)
	for i := range posts {
		posts[i] = stream.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Ingest(posts[i%len(posts)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireSearchCodec isolates the codec from the socket: encode
// plus decode of a representative search response (32 candidate rows),
// the marginal CPU the wire adds to the in-process gather path.
func BenchmarkWireSearchCodec(b *testing.B) {
	rows := make([]expertise.RawCandidate, 32)
	for i := range rows {
		rows[i] = expertise.RawCandidate{
			User: world.UserID(7 * (1 + i)), Tweets: i % 5, Mentions: i % 3, Retweets: i % 11,
		}
	}
	var frame, payloadBuf []byte
	var scratch []expertise.RawCandidate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payloadBuf = transport.AppendSearchResp(payloadBuf[:0], transport.SearchResp{Matched: 64, Rows: rows})
		frame = transport.AppendFrame(frame[:0], transport.OpSearch, payloadBuf)
		_, payload, _, err := transport.DecodeFrame(frame)
		if err != nil {
			b.Fatal(err)
		}
		resp, _, err := transport.ConsumeSearchResp(scratch, payload)
		if err != nil || len(resp.Rows) != len(rows) {
			b.Fatal(err)
		}
		scratch = resp.Rows
	}
	b.ReportMetric(float64(len(frame)), "frame-bytes")
}
