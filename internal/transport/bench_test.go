// Benchmarks for the wire: scatter-gather query latency when every
// shard sits behind a loopback TCP round trip
// (BenchmarkRemoteSearchSharded*, compared against the in-process
// BenchmarkLiveSearchSharded* numbers in internal/shard — the delta is
// the price of the process boundary: two round trips per shard per
// query, encode/decode, and kernel socket hops), plus the isolated
// frame codec cost (BenchmarkWireSearchCodec). BENCHMARKS.md records
// the per-PR numbers; on the 1-core CI container the per-shard round
// trips serialize, so multi-shard remote latency there is an upper
// bound, not the parallel-deployment number.
package transport_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/expertise"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/world"
)

// benchRemoteCluster boots n loopback shard servers holding the base
// partition plus `posts` streamed posts, quiesced, and returns the
// remote detector.
func benchRemoteCluster(b *testing.B, n, posts int) *core.ShardedLiveDetector {
	p, _ := testPipeline(b)
	clients := startShardServers(b, p, n, ingest.DefaultConfig())
	backends := make([]shard.Backend, n)
	for i, c := range clients {
		backends[i] = c
	}
	cluster := shard.NewCluster(p.World, backends...)
	stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(19))
	batch := make([]microblog.Post, posts)
	for i := range batch {
		batch[i] = stream.Next()
	}
	if err := cluster.IngestBatch(batch); err != nil {
		b.Fatal(err)
	}
	if err := cluster.Quiesce(); err != nil {
		b.Fatal(err)
	}
	online := p.Cfg.Online
	online.MatchWorkers = 1
	return core.NewShardedLiveDetectorOver(p.Collection, cluster, online)
}

// benchRemoteSearch measures steady-state scatter-gather latency with
// every shard behind loopback TCP: per query, each shard costs one
// OpSearch and (when candidates exist) one OpStats round trip on a
// pooled connection.
func benchRemoteSearch(b *testing.B, shards int) {
	d := benchRemoteCluster(b, shards, 2048)
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, _ := d.Search("49ers")
		n = len(results)
	}
	b.ReportMetric(float64(n), "experts")
	b.ReportMetric(float64(shards), "shards")
	if pq, _ := d.PartialStats(); pq != 0 {
		b.Fatalf("%d partial queries during benchmark", pq)
	}
}

func BenchmarkRemoteSearchSharded1(b *testing.B) { benchRemoteSearch(b, 1) }
func BenchmarkRemoteSearchSharded4(b *testing.B) { benchRemoteSearch(b, 4) }

// BenchmarkRemoteIngest measures routed write throughput over the
// wire: one OpIngest frame per post on a pooled connection.
func BenchmarkRemoteIngest(b *testing.B) {
	p, _ := testPipeline(b)
	clients := startShardServers(b, p, 2, ingest.DefaultConfig())
	cluster := shard.NewCluster(p.World, clients[0], clients[1])
	stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(23))
	posts := make([]microblog.Post, 4096)
	for i := range posts {
		posts[i] = stream.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Ingest(posts[i%len(posts)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireSearchCodec isolates the codec from the socket: encode
// plus decode of a representative search response (32 candidate rows),
// the marginal CPU the wire adds to the in-process gather path.
func BenchmarkWireSearchCodec(b *testing.B) {
	rows := make([]expertise.RawCandidate, 32)
	for i := range rows {
		rows[i] = expertise.RawCandidate{
			User: world.UserID(7 * (1 + i)), Tweets: i % 5, Mentions: i % 3, Retweets: i % 11,
		}
	}
	var frame, payloadBuf []byte
	var scratch []expertise.RawCandidate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payloadBuf = transport.AppendSearchResp(payloadBuf[:0], transport.SearchResp{Matched: 64, Rows: rows})
		frame = transport.AppendFrame(frame[:0], transport.OpSearch, payloadBuf)
		_, payload, _, err := transport.DecodeFrame(frame)
		if err != nil {
			b.Fatal(err)
		}
		resp, _, err := transport.ConsumeSearchResp(scratch, payload)
		if err != nil || len(resp.Rows) != len(rows) {
			b.Fatal(err)
		}
		scratch = resp.Rows
	}
	b.ReportMetric(float64(len(frame)), "frame-bytes")
}
