// Native fuzzing of the wire codec. The decoders' contract against
// adversarial bytes is: never panic, never allocate past the data
// actually present, and accept exactly what the encoders produce. The
// fuzz target decodes a frame and every payload interpretation, and
// whenever a decode succeeds it re-encodes and re-decodes, requiring a
// fixed point — so the corpus explores both rejection paths and
// round-trip identity. `make fuzz-smoke` runs this briefly in CI;
// longer local runs just raise -fuzztime.
package transport_test

import (
	"bytes"
	"testing"

	"repro/internal/expertise"
	"repro/internal/microblog"
	"repro/internal/transport"
	"repro/internal/world"
)

// seedFrames returns one valid encoded frame per op, so the fuzzer
// starts from the accepting region of every decoder.
func seedFrames() [][]byte {
	rows := []expertise.RawCandidate{
		{User: 3, Tweets: 2, Mentions: 1, Retweets: 4, Hashtagged: 0},
		{User: 17, Tweets: 1, Mentions: 0, Retweets: 0, Hashtagged: 1},
	}
	stats := []expertise.UserStats{{Tweets: 9, Mentions: 2, Retweets: 30}, {Tweets: 1}}
	posts := []microblog.Post{
		{Author: 5, Text: "really 49ers vibes", RetweetCount: 2, Topic: 1},
		{Author: 9, Text: "@u7 great takes on nfl", Mentions: []world.UserID{7}, Topic: -1},
	}
	var frames [][]byte
	frames = append(frames,
		transport.AppendFrame(nil, transport.OpSearch,
			transport.AppendSearchReq(nil, transport.SearchReq{Extended: true, Terms: []string{"49ers", "nfl"}})),
		transport.AppendFrame(nil, transport.OpSearch,
			transport.AppendSearchResp(nil, transport.SearchResp{Matched: 12, Rows: rows})),
		transport.AppendFrame(nil, transport.OpStats,
			expertise.AppendUserIDs(nil, []world.UserID{3, 17, 40})),
		transport.AppendFrame(nil, transport.OpStats,
			expertise.AppendUserStats(nil, stats)),
		transport.AppendFrame(nil, transport.OpIngest,
			transport.AppendIngestReq(nil, transport.IngestReq{Posts: posts})),
		transport.AppendFrame(nil, transport.OpIngest,
			transport.AppendIngestResp(nil, transport.IngestResp{First: 1042, Count: 2})),
		transport.AppendFrame(nil, transport.OpEpoch,
			transport.AppendEpochResp(nil, transport.EpochResp{Epoch: 99})),
		transport.AppendFrame(nil, transport.OpInfo,
			transport.AppendInfoResp(nil, transport.InfoResp{Shard: 1, NumShards: 4, Users: 600, BaseTweets: 2500, NumTweets: 2700, Epoch: 7})),
		transport.AppendFrame(nil, transport.OpTweets,
			transport.AppendTweetsReq(nil, transport.TweetsReq{From: 2500, Max: 128})),
		transport.AppendFrame(nil, transport.OpTweets,
			transport.AppendTweetsResp(nil, transport.TweetsResp{Total: 2700, Posts: posts})),
		transport.AppendFrame(nil, transport.OpSubscribe, nil),
		transport.AppendFrame(nil, transport.OpSubscribe,
			transport.AppendEpochResp(nil, transport.EpochResp{Epoch: 41})),
		transport.AppendFrame(nil, transport.OpEpochDelta,
			transport.AppendEpochResp(nil, transport.EpochResp{Epoch: 42})),
		transport.AppendFrame(nil, transport.OpSearchStats,
			transport.AppendSearchReq(nil, transport.SearchReq{Terms: []string{"49ers"}})),
		transport.AppendFrame(nil, transport.OpSearchStats,
			transport.AppendSearchStatsResp(nil, transport.SearchStatsResp{Matched: 12, Rows: rows, Stats: stats})),
		transport.AppendFrame(nil, transport.OpUnpin, nil),
		transport.AppendFrame(nil, transport.OpInfo,
			transport.AppendInfoReq(nil, transport.FeatureCompress)),
		// Resharding-era frames: filtered handoff paging, scan-bounded
		// responses, and the expectation-carrying info request.
		transport.AppendFrame(nil, transport.OpTweets,
			transport.AppendTweetsReq(nil, transport.TweetsReq{From: 2500, Max: 64, FilterShards: 8, FilterIdx: 5})),
		transport.AppendFrame(nil, transport.OpTweets,
			transport.AppendTweetsResp(nil, transport.TweetsResp{Total: 2700, Posts: posts, Scanned: 64})),
		transport.AppendFrame(nil, transport.OpInfo,
			transport.AppendInfoReqExpect(nil, transport.InfoReq{
				Features: transport.FeatureCompress, ExpectShard: 1, ExpectShards: 4, ExpectUsers: 600, ExpectBase: 2500,
			})),
		transport.AppendFrame(nil, transport.OpDeflate,
			transport.AppendDeflate(nil, transport.OpTweets,
				transport.AppendTweetsResp(nil, transport.TweetsResp{Total: 2700, Posts: posts}))),
	)
	return frames
}

// FuzzDecodeFrame is the adversarial-input bar of the satellite task:
// DecodeFrame plus every payload decoder, driven by arbitrary bytes,
// must neither panic nor over-allocate, and every successful decode
// must round-trip through its encoder to an identical re-decode.
func FuzzDecodeFrame(f *testing.F) {
	for _, frame := range seedFrames() {
		f.Add(frame)
	}
	// Truncations and corruptions of a valid frame probe the rejection
	// boundary precisely.
	whole := seedFrames()[1]
	for cut := 0; cut < len(whole); cut += 3 {
		f.Add(whole[:cut])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		op, payload, rest, err := transport.DecodeFrame(data)
		if err != nil {
			return
		}
		if len(payload)+len(rest)+5 != len(data) {
			t.Fatalf("frame accounting: %d payload + %d rest from %d input", len(payload), len(rest), len(data))
		}
		_ = op
		// Try every payload interpretation; the op byte is
		// fuzzer-controlled so it proves nothing about which decoder the
		// bytes were meant for.
		if req, _, err := transport.ConsumeSearchReq(payload); err == nil {
			enc := transport.AppendSearchReq(nil, req)
			again, _, err := transport.ConsumeSearchReq(enc)
			if err != nil {
				t.Fatalf("search req re-decode: %v", err)
			}
			if len(again.Terms) != len(req.Terms) || again.Extended != req.Extended {
				t.Fatalf("search req round trip: %+v vs %+v", again, req)
			}
			for i := range req.Terms {
				if again.Terms[i] != req.Terms[i] {
					t.Fatalf("search req term %d round trip: %q vs %q", i, again.Terms[i], req.Terms[i])
				}
			}
		}
		if resp, _, err := transport.ConsumeSearchResp(nil, payload); err == nil {
			enc := transport.AppendSearchResp(nil, resp)
			again, _, err := transport.ConsumeSearchResp(nil, enc)
			if err != nil || again.Matched != resp.Matched || len(again.Rows) != len(resp.Rows) {
				t.Fatalf("search resp round trip: %+v vs %+v (%v)", again, resp, err)
			}
			for i := range resp.Rows {
				if again.Rows[i] != resp.Rows[i] {
					t.Fatalf("row %d round trip: %+v vs %+v", i, again.Rows[i], resp.Rows[i])
				}
			}
		}
		if req, _, err := transport.ConsumeIngestReq(payload); err == nil {
			enc := transport.AppendIngestReq(nil, req)
			again, _, err := transport.ConsumeIngestReq(enc)
			if err != nil || len(again.Posts) != len(req.Posts) {
				t.Fatalf("ingest req round trip: %d posts vs %d (%v)", len(again.Posts), len(req.Posts), err)
			}
		}
		if req, _, err := transport.ConsumeTweetsReq(payload); err == nil {
			enc := transport.AppendTweetsReq(nil, req)
			again, _, err := transport.ConsumeTweetsReq(enc)
			if err != nil || again != req {
				t.Fatalf("tweets req round trip: %+v vs %+v (%v)", again, req, err)
			}
		}
		if resp, _, err := transport.ConsumeTweetsResp(payload); err == nil {
			enc := transport.AppendTweetsResp(nil, resp)
			again, _, err := transport.ConsumeTweetsResp(enc)
			if err != nil || again.Total != resp.Total || again.Scanned != resp.Scanned || len(again.Posts) != len(resp.Posts) {
				t.Fatalf("tweets resp round trip: %+v vs %+v (%v)", again, resp, err)
			}
		}
		if info, _, err := transport.ConsumeInfoResp(payload); err == nil {
			again, _, err := transport.ConsumeInfoResp(transport.AppendInfoResp(nil, info))
			if err != nil || again != info {
				t.Fatalf("info round trip: %+v vs %+v (%v)", again, info, err)
			}
		}
		if resp, _, err := transport.ConsumeSearchStatsResp(nil, nil, payload); err == nil {
			enc := transport.AppendSearchStatsResp(nil, resp)
			again, _, err := transport.ConsumeSearchStatsResp(nil, nil, enc)
			if err != nil || again.Matched != resp.Matched || len(again.Rows) != len(resp.Rows) || len(again.Stats) != len(resp.Stats) {
				t.Fatalf("search+stats resp round trip: %+v vs %+v (%v)", again, resp, err)
			}
			for i := range resp.Rows {
				if again.Rows[i] != resp.Rows[i] || again.Stats[i] != resp.Stats[i] {
					t.Fatalf("search+stats row %d round trip", i)
				}
			}
		}
		if feats, _, err := transport.ConsumeInfoReq(payload); err == nil {
			again, _, err := transport.ConsumeInfoReq(transport.AppendInfoReq(nil, feats))
			if err != nil || again != feats {
				t.Fatalf("info req round trip: %d vs %d (%v)", again, feats, err)
			}
		}
		if req, _, err := transport.ConsumeInfoReqExpect(payload); err == nil {
			again, _, err := transport.ConsumeInfoReqExpect(transport.AppendInfoReqExpect(nil, req))
			if err != nil || again != req {
				t.Fatalf("info req expect round trip: %+v vs %+v (%v)", again, req, err)
			}
		}
		if inner, body, err := transport.ConsumeDeflate(nil, payload); err == nil {
			enc := transport.AppendDeflate(nil, inner, body)
			innerAgain, bodyAgain, err := transport.ConsumeDeflate(nil, enc)
			if err != nil || innerAgain != inner || !bytes.Equal(bodyAgain, body) {
				t.Fatalf("deflate round trip: op %v vs %v, %d bytes vs %d (%v)", innerAgain, inner, len(bodyAgain), len(body), err)
			}
		}
		if ids, _, err := expertise.ConsumeUserIDs(nil, payload); err == nil && len(ids) > 0 {
			// User ids travel delta-compressed; ascending inputs (the
			// only ones the protocol produces) must round-trip exactly.
			ascending := true
			for i := 1; i < len(ids); i++ {
				if ids[i] < ids[i-1] {
					ascending = false
					break
				}
			}
			if ascending {
				again, _, err := expertise.ConsumeUserIDs(nil, expertise.AppendUserIDs(nil, ids))
				if err != nil || len(again) != len(ids) {
					t.Fatalf("user ids round trip: %v vs %v (%v)", again, ids, err)
				}
			}
		}
		if stats, _, err := expertise.ConsumeUserStats(nil, payload); err == nil {
			again, _, err := expertise.ConsumeUserStats(nil, expertise.AppendUserStats(nil, stats))
			if err != nil || len(again) != len(stats) {
				t.Fatalf("user stats round trip: %d vs %d (%v)", len(again), len(stats), err)
			}
		}
	})
}

// TestDecodeFrameRejectsHostileLengths pins the over-allocation guard
// outside the fuzzer: a length prefix beyond MaxFrame, or a count field
// beyond the payload, must fail before any proportional allocation.
func TestDecodeFrameRejectsHostileLengths(t *testing.T) {
	huge := []byte{0xff, 0xff, 0xff, 0xff, byte(transport.OpSearch)}
	if _, _, _, err := transport.DecodeFrame(huge); err == nil {
		t.Fatal("4 GiB length prefix accepted")
	}
	// A search response claiming 2^40 candidate rows in a 3-byte body.
	payload := []byte{0x00}                                       // matched = 0
	payload = append(payload, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01) // count uvarint = 2^35
	if _, _, err := transport.ConsumeSearchResp(nil, payload); err == nil {
		t.Fatal("absurd row count accepted")
	}
	var roundTripped bytes.Buffer
	frame := transport.AppendFrame(nil, transport.OpEpoch, transport.AppendEpochResp(nil, transport.EpochResp{Epoch: 5}))
	roundTripped.Write(frame)
	op, pl, buf, err := transport.ReadFrame(&roundTripped, nil)
	if err != nil || op != transport.OpEpoch {
		t.Fatalf("ReadFrame: op %v err %v", op, err)
	}
	_ = buf
	if resp, _, err := transport.ConsumeEpochResp(pl); err != nil || resp.Epoch != 5 {
		t.Fatalf("epoch round trip through ReadFrame: %+v %v", resp, err)
	}
	// Truncated stream: header promises more than arrives.
	var short bytes.Buffer
	short.Write(frame[:len(frame)-1])
	if _, _, _, err := transport.ReadFrame(&short, nil); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
