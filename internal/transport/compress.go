// The OpDeflate compression envelope. Negotiated in OpInfo
// (FeatureCompress), it wraps one inner frame — op byte, inflated
// length as a uvarint, flate stream — so the fat messages (OpTweets
// pages, OpIngest batches, large candidate responses) shrink without
// touching any other codec. Compression gates only the send side:
// every receiver decodes envelopes unconditionally, and a sender skips
// the envelope whenever it would not actually shrink the payload, so
// the worst case is the uncompressed status quo.
package transport

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// CompressMin is the payload size below which a compression-negotiated
// connection still sends plain frames: small frames (epoch probes,
// search requests) are dominated by syscall cost, and flate overhead
// would grow them.
const CompressMin = 512

var flateWriters = sync.Pool{New: func() any {
	// BestSpeed: the wire is usually a datacenter hop, so favor cycles
	// over ratio. NewWriter only errors on an invalid level.
	fw, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return fw
}}

var flateReaders = sync.Pool{New: func() any {
	return flate.NewReader(bytes.NewReader(nil))
}}

// appendWriter adapts an append-grown byte slice to io.Writer for the
// pooled flate writer.
type appendWriter struct{ buf []byte }

// Write appends p to the underlying slice; it never fails.
func (w *appendWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// AppendDeflate appends the OpDeflate envelope payload for one inner
// frame (op, payload) to buf. Callers compare the result's length to
// the raw payload and send whichever is smaller.
func AppendDeflate(buf []byte, op Op, payload []byte) []byte {
	buf = append(buf, byte(op))
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	fw := flateWriters.Get().(*flate.Writer)
	w := appendWriter{buf: buf}
	fw.Reset(&w)
	fw.Write(payload) // cannot fail: appendWriter never errors
	fw.Close()
	flateWriters.Put(fw)
	return w.buf
}

// ConsumeDeflate decodes one OpDeflate envelope payload, inflating
// into dst (capacity reused, contents discarded), and returns the
// inner op and payload. Hostile inputs are bounded the same way raw
// frames are: the declared inflated length is capped at MaxFrame, the
// output buffer grows geometrically only as far as the stream actually
// inflates, nesting is rejected, and the stream must end exactly at
// the declared length.
func ConsumeDeflate(dst []byte, payload []byte) (Op, []byte, error) {
	if len(payload) < 2 {
		return 0, dst[:0], fmt.Errorf("deflate envelope: %w", ErrFrameTruncated)
	}
	inner := Op(payload[0])
	if inner == OpDeflate {
		return 0, dst[:0], fmt.Errorf("transport: nested deflate envelope")
	}
	rawLen, rest, err := consumeUvarint(payload[1:])
	if err != nil {
		return 0, dst[:0], fmt.Errorf("deflate envelope length: %w", err)
	}
	if rawLen == 0 || rawLen > MaxFrame-1 {
		return 0, dst[:0], fmt.Errorf("deflate envelope claims %d bytes: %w", rawLen, ErrFrameTooLarge)
	}
	fr := flateReaders.Get().(io.ReadCloser)
	defer flateReaders.Put(fr)
	if err := fr.(flate.Resetter).Reset(bytes.NewReader(rest), nil); err != nil {
		return 0, dst[:0], fmt.Errorf("deflate reset: %w", err)
	}
	dst = dst[:0]
	for uint64(len(dst)) < rawLen {
		// Read in bounded chunks, doubling capacity as the stream earns
		// it, so a lying length prefix costs what actually inflates, not
		// what it claims.
		want := int(min(rawLen-uint64(len(dst)), 64<<10))
		if cap(dst) < len(dst)+want {
			grown := make([]byte, len(dst), max(len(dst)+want, 2*cap(dst)))
			copy(grown, dst)
			dst = grown
		}
		start := len(dst)
		dst = dst[:start+want]
		n, err := io.ReadFull(fr, dst[start:])
		dst = dst[:start+n]
		if err != nil {
			return 0, dst[:0], fmt.Errorf("deflate body: %w: %v", ErrFrameTruncated, err)
		}
	}
	var one [1]byte
	switch _, err := io.ReadFull(fr, one[:]); err {
	case io.EOF:
		// The stream terminated cleanly exactly at rawLen.
	case nil:
		return 0, dst[:0], fmt.Errorf("transport: deflate body exceeds declared %d bytes", rawLen)
	default:
		// All rawLen bytes inflated but the stream is not cleanly
		// terminated — a truncation that happened to spare the content
		// bits. Reject it like any other cut.
		return 0, dst[:0], fmt.Errorf("deflate termination: %w: %v", ErrFrameTruncated, err)
	}
	return inner, dst, nil
}
