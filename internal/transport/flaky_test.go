// Fault-injection tests: the transport's failure contract under
// dropped, truncated, delayed and fragmented connections, driven by
// the shared chaos harness in internal/fault. The wire makes three
// promises — reconnects happen (once, for stale pooled connections),
// deadlines fire (no request outlives its timeout), and a short read
// or write never corrupts a frame (a request either gets the complete
// response or a clean error, never a garbled one) — the fail-fast
// partial-result counts land in serve.Stats, and a *dead* shard costs
// the epoch sampler one dial per backoff window, not one per request.
package transport_test

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ingest"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/transport"
)

// startOneServer boots a single-shard loopback server over the full
// base corpus and returns its address.
func startOneServer(t testing.TB, p *core.Pipeline, icfg ingest.Config) string {
	t.Helper()
	idx := ingest.New(shard.Partition(p.Corpus, 0, 1), icfg)
	srv, err := transport.Listen("127.0.0.1:0", idx, transport.DefaultServerConfig(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		idx.Close()
	})
	return srv.Addr().String()
}

// TestReconnectAfterStaleConn pins the reconnect path: a pooled
// connection dies between requests (server restart, idle reaping —
// here an injected kill), the next request fails its first round trip,
// and the client transparently redials exactly once and succeeds.
func TestReconnectAfterStaleConn(t *testing.T) {
	p, _ := testPipeline(t)
	addr := startOneServer(t, p, ingest.DefaultConfig())

	d := fault.NewDialer()
	cfg := testClientConfig()
	cfg.Dial = d.Dial
	// Probe mode: this test pins the pooled-connection retry-once path,
	// which a push subscription would bypass (the sub conn caches the
	// epoch). The subscription's own lapse/recovery is pinned by
	// TestSubscriptionLapseResubscribes.
	cfg.NoSubscribe = true
	c := transport.NewRemoteShard(addr, cfg)
	defer c.Close()

	if _, err := c.Epoch(); err != nil {
		t.Fatal(err)
	}
	if got := c.Dials(); got != 1 {
		t.Fatalf("first request dialed %d times", got)
	}
	// Kill the pooled connection under the client.
	d.KillAll()
	epoch, err := c.Epoch()
	if err != nil {
		t.Fatalf("request after dropped conn failed instead of reconnecting: %v", err)
	}
	if epoch == 0 {
		t.Fatal("reconnected request returned zero epoch")
	}
	if got := c.Dials(); got != 2 {
		t.Fatalf("reconnect dialed %d total conns, want 2", got)
	}
}

// TestDeadlineFires pins the timeout contract: a server that accepts
// and then stalls forever must not hold a request past its deadline.
func TestDeadlineFires(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Swallow the request, never answer.
			go func() { io.Copy(io.Discard, conn) }()
		}
	}()

	cfg := transport.ClientConfig{Timeout: 100 * time.Millisecond}
	c := transport.NewRemoteShard(ln.Addr().String(), cfg)
	defer c.Close()
	start := time.Now()
	_, err = c.Epoch()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("stalled server answered?")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want a timeout error, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire with a 100ms timeout", elapsed)
	}
}

// TestShortReadsWritesPreserveFrames runs a full search→stats→ingest
// conversation over a connection fragmented to one byte per
// read/write and requires byte-identical behaviour to a clean
// connection: short IO must never corrupt or split a frame.
func TestShortReadsWritesPreserveFrames(t *testing.T) {
	p, _ := testPipeline(t)
	addr := startOneServer(t, p, ingest.DefaultConfig())

	clean := transport.NewRemoteShard(addr, testClientConfig())
	defer clean.Close()
	d := fault.NewDialer()
	d.FragmentAll()
	fragCfg := testClientConfig()
	fragCfg.Dial = d.Dial
	frag := transport.NewRemoteShard(addr, fragCfg)
	defer frag.Close()

	terms := []string{"49ers", "nfl"}
	wantRows, wantMatched, wantView, err := clean.Search(context.Background(), terms, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer wantView.Release()
	gotRows, gotMatched, gotView, err := frag.Search(context.Background(), terms, false, nil)
	if err != nil {
		t.Fatalf("fragmented search failed: %v", err)
	}
	defer gotView.Release()
	if gotMatched != wantMatched || len(gotRows) != len(wantRows) {
		t.Fatalf("fragmented search: matched %d rows %d, clean %d/%d",
			gotMatched, len(gotRows), wantMatched, len(wantRows))
	}
	for i := range wantRows {
		if gotRows[i] != wantRows[i] {
			t.Fatalf("row %d differs over fragmented conn: %+v vs %+v", i, gotRows[i], wantRows[i])
		}
	}
}

// TestTruncatedResponseFailsCleanly pins the short-read contract: a
// response cut mid-frame yields ErrFrameTruncated-shaped failure (or a
// clean EOF), never a partial decode, and the connection is not reused.
func TestTruncatedResponseFailsCleanly(t *testing.T) {
	p, _ := testPipeline(t)
	addr := startOneServer(t, p, ingest.DefaultConfig())

	for _, limit := range []int{0, 1, 3, 4, 5} {
		d := fault.NewDialer()
		d.TruncateNext(limit)
		cfg := testClientConfig()
		cfg.Dial = d.Dial
		c := transport.NewRemoteShard(addr, cfg)
		if _, err := c.Epoch(); err == nil {
			t.Fatalf("limit %d: truncated response decoded successfully", limit)
		}
		c.Close()
	}
}

// TestPartialResultsLandInStats wires a 2-shard cluster whose second
// shard points at a dead address and requires (a) queries still answer
// from the healthy shard, fail-fast, and (b) the degradation is counted
// on the detector and surfaced through serve.Stats.
func TestPartialResultsLandInStats(t *testing.T) {
	p, _ := testPipeline(t)
	icfg := ingest.DefaultConfig()

	// Healthy shard 0 in-process; shard 1 behind a transport to nowhere:
	// reserve a port and close it so dials fail fast.
	idx0 := ingest.New(shard.Partition(p.Corpus, 0, 2), icfg)
	defer idx0.Close()
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()

	dead := transport.NewRemoteShard(deadAddr, transport.ClientConfig{Timeout: 200 * time.Millisecond})
	defer dead.Close()
	cluster := shard.NewCluster(p.World, shard.NewLocal(idx0), dead)
	det := core.NewShardedLiveDetectorOver(p.Collection, cluster, p.Cfg.Online)

	results, _ := det.Search("49ers")
	if pq, se := det.PartialStats(); pq != 1 || se != 1 {
		t.Fatalf("partial queries %d, shard errors %d after one degraded search, want 1, 1", pq, se)
	}
	// The healthy shard alone can still produce experts for a query its
	// partition answers; whether this particular one does depends on the
	// hash split, so only the counters are load-bearing above. Run a few
	// more to see the counts accumulate.
	for i := 0; i < 4; i++ {
		det.SearchBaseline("nfl")
	}
	if pq, se := det.PartialStats(); pq != 5 || se != 5 {
		t.Fatalf("partial queries %d, shard errors %d after five degraded requests", pq, se)
	}
	_ = results

	// Behind a serving front-end the same degradation must surface in
	// Stats — and because the epoch-vector sample contains an unknown
	// component while a shard is down, those requests bypass the cache
	// entirely instead of caching (or serving) unverifiable results.
	srv := serve.New(det, serve.DefaultConfig())
	for i := 0; i < 3; i++ {
		srv.Search("49ers")
	}
	st := srv.Stats()
	if st.PartialResults == 0 || st.ShardErrors == 0 {
		t.Fatalf("serve stats hide the degradation: %+v", st)
	}
	if st.Uncacheable != 3 {
		t.Fatalf("want 3 uncacheable requests while a shard is down, got %d", st.Uncacheable)
	}
	if st.CacheEntries != 0 {
		t.Fatalf("degraded requests were cached: %d entries", st.CacheEntries)
	}
	if len(st.EpochVector) != 2 || st.EpochVector[1] != core.EpochUnknown {
		t.Fatalf("epoch vector does not flag the dead shard: %v", st.EpochVector)
	}
}

// TestEpochSampleBackoff pins the fix for the ROADMAP dial-timeout
// hole: while a shard is down, the serving cache's per-request
// epoch-vector sample must cost at most one dial per backoff window —
// not one dial (and its timeout) per request. The dial count is the
// proof, mirroring PR 4's reconnect-once technique; the sample still
// reports EpochUnknown every time, so every request stays uncacheable
// while the shard is down.
func TestEpochSampleBackoff(t *testing.T) {
	p, _ := testPipeline(t)
	icfg := ingest.DefaultConfig()
	idx0 := ingest.New(shard.Partition(p.Corpus, 0, 2), icfg)
	defer idx0.Close()

	// A dead address that refuses dials instantly. RemoteShard.Dials
	// counts only *successful* dials, so count attempts in the dial
	// func itself.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()
	var dialAttempts int64
	cfg := transport.ClientConfig{
		Timeout: 200 * time.Millisecond,
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			dialAttempts++
			return net.DialTimeout("tcp", addr, timeout)
		},
	}
	dead := transport.NewRemoteShard(deadAddr, cfg)
	defer dead.Close()

	cluster := shard.NewCluster(p.World, shard.NewLocal(idx0), dead)
	const window = 300 * time.Millisecond
	cluster.SetBackoff(shard.Backoff{Initial: window, Max: window})
	det := core.NewShardedLiveDetectorOver(p.Collection, cluster, p.Cfg.Online)
	srv := serve.New(det, serve.Config{CacheSize: 64})

	// A burst of epoch samples inside one window: exactly one dial.
	for i := 0; i < 16; i++ {
		vec, err := cluster.EpochVector(nil)
		if err == nil {
			t.Fatal("sampling a dead shard reported no error")
		}
		if len(vec) != 2 || vec[1] != shard.EpochUnknown {
			t.Fatalf("sample %d: vector %v does not flag the dead shard", i, vec)
		}
	}
	if dialAttempts != 1 {
		t.Fatalf("16 epoch samples inside one backoff window attempted %d dials, want 1", dialAttempts)
	}

	// The serving layer's per-request vector sample goes through the
	// same gate — still no extra dials. Stats() samples the vector
	// without scattering a query (a query's own scatter keeps its
	// fail-fast contract and is deliberately not gated here).
	for i := 0; i < 8; i++ {
		if st := srv.Stats(); len(st.EpochVector) != 2 || st.EpochVector[1] != core.EpochUnknown {
			t.Fatalf("serve stats sample %d: %v", i, st.EpochVector)
		}
	}
	if dialAttempts != 1 {
		t.Fatalf("8 serve-stats samples attempted %d total dials, want still 1", dialAttempts)
	}

	// After the window expires the sampler is granted exactly one fresh
	// probe.
	time.Sleep(window + 50*time.Millisecond)
	for i := 0; i < 8; i++ {
		cluster.EpochVector(nil)
	}
	if dialAttempts != 2 {
		t.Fatalf("samples after window expiry attempted %d total dials, want 2", dialAttempts)
	}
	if h := cluster.Health(1); h.Healthy() {
		t.Fatal("dead shard's health reports healthy")
	}
	if h := cluster.Health(0); !h.Healthy() {
		t.Fatal("live shard's health reports unhealthy")
	}
}

// TestWritesAreNeverRetried pins the idempotency rule: a write that
// fails on a stale pooled connection surfaces the error instead of
// being re-sent — the server may already have applied it, and a
// duplicate post would skew every counter the bit-identical bar is
// stated over. Reads reconnect; writes fail fast.
func TestWritesAreNeverRetried(t *testing.T) {
	p, _ := testPipeline(t)
	addr := startOneServer(t, p, ingest.DefaultConfig())

	d := fault.NewDialer()
	cfg := testClientConfig()
	cfg.Dial = d.Dial
	// Probe mode: with a subscription the first Epoch dedicates its
	// connection to the push reader and the pool stays empty, so the
	// killed-pooled-conn write below would never see a stale conn.
	cfg.NoSubscribe = true
	c := transport.NewRemoteShard(addr, cfg)
	defer c.Close()

	if _, err := c.Epoch(); err != nil {
		t.Fatal(err)
	}
	d.KillAll()
	post := streamPosts(p, 103, 1)[0]
	if _, err := c.Ingest(post); err == nil {
		t.Fatal("write on a dropped connection succeeded — it must have been silently retried")
	}
	if got := c.Dials(); got != 1 {
		t.Fatalf("failed write dialed a new connection (%d dials) — the retry path ran for a write", got)
	}
	// The read path on the now-empty pool reconnects and recovers.
	if _, err := c.Epoch(); err != nil {
		t.Fatalf("recovery read failed: %v", err)
	}
	if got := c.Dials(); got != 2 {
		t.Fatalf("recovery read dialed %d total conns, want 2", got)
	}
}

// TestRestartedServerIsRejected pins the incarnation check: when the
// shardd behind an address dies and a fresh one (same partition, fresh
// index, epoch back to zero) takes its place, the client must refuse to
// silently reconnect — pre-restart cache entries would otherwise look
// "fresh" forever against the regressed epoch vector. The failure
// surfaces as a backend error, which the coordinator degrades on.
func TestRestartedServerIsRejected(t *testing.T) {
	p, _ := testPipeline(t)
	idx1 := ingest.New(shard.Partition(p.Corpus, 0, 1), ingest.DefaultConfig())
	defer idx1.Close()
	srv1, err := transport.Listen("127.0.0.1:0", idx1, transport.DefaultServerConfig(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr().String()

	c := transport.NewRemoteShard(addr, testClientConfig())
	defer c.Close()
	if err := c.Handshake(0, 1, len(p.World.Users), idx1.Base().NumTweets()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Epoch(); err != nil {
		t.Fatal(err)
	}

	// The process dies; a fresh one takes over the same address with the
	// same partition coordinates but a new incarnation (and none of the
	// ingested content).
	srv1.Close()
	idx2 := ingest.New(shard.Partition(p.Corpus, 0, 1), ingest.DefaultConfig())
	defer idx2.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv2 := transport.Serve(ln2, idx2, transport.DefaultServerConfig(0, 1))
	defer srv2.Close()

	// The pooled/subscribed connection is dead; the next dial reaches
	// the impostor and the per-dial handshake must reject it. The
	// subscription lapse is asynchronous (its reader must observe the
	// close), so poll briefly: the cached epoch may answer until the
	// lapse lands, but the first *error* must be the incarnation check.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = c.Epoch()
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client silently reconnected to a restarted server")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(err.Error(), "restarted") {
		t.Fatalf("want an incarnation/restart error, got: %v", err)
	}
	// And it keeps failing (no lucky pooled state) until re-wired.
	if _, err := c.Epoch(); err == nil {
		t.Fatal("second request after restart succeeded")
	}
}
