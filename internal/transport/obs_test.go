package transport_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/transport"
)

// metricValue finds one row in a registry snapshot; missing rows fail
// the test.
func metricValue(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %q not in registry snapshot", name)
	return 0
}

// TestObsPromotesRequestCounters is the counter-promotion satellite:
// the server's pre-existing per-op request counters (the accounting the
// RPC tests assert on) must surface as registry rows without double
// counting — the registry row and Requests(op) read the same atomic.
func TestObsPromotesRequestCounters(t *testing.T) {
	p, _ := testPipeline(t)
	part := shard.Partition(p.Corpus, 0, 1)
	idx := ingest.New(part, ingest.DefaultConfig())
	defer idx.Close()

	serverReg := obs.NewRegistry()
	scfg := transport.DefaultServerConfig(0, 1)
	scfg.Obs = serverReg
	srv, err := transport.Listen("127.0.0.1:0", idx, scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	clientReg := obs.NewRegistry()
	ccfg := testClientConfig()
	ccfg.Obs = clientReg
	c := transport.NewRemoteShard(srv.Addr().String(), ccfg)
	defer c.Close()
	if err := c.Handshake(0, 1, len(p.World.Users), part.NumTweets()); err != nil {
		t.Fatal(err)
	}

	// Drive a few distinct ops so several per-op rows move.
	for i := 0; i < 3; i++ {
		if _, _, _, err := c.Search(context.Background(), []string{"storm"}, true, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, post := range streamPosts(p, 7, 2) {
		if _, err := c.Ingest(post); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}

	// Server side: every request op's registry row must equal the
	// Requests(op) accounting — same atomic, promoted not duplicated.
	for _, op := range []transport.Op{
		transport.OpSearch, transport.OpStats, transport.OpIngest,
		transport.OpEpoch, transport.OpQuiesce, transport.OpInfo,
	} {
		row := fmt.Sprintf("rpc_server_%s_requests", op.Name())
		if got, want := metricValue(t, serverReg, row), srv.Requests(op); got != want {
			t.Errorf("%s = %d, Requests(%s) = %d — promotion out of sync", row, got, op.Name(), want)
		}
	}
	if got := metricValue(t, serverReg, "rpc_server_search_requests"); got != 3 {
		t.Errorf("rpc_server_search_requests = %d, want 3", got)
	}
	if metricValue(t, serverReg, "rpc_server_bytes_read") <= 0 ||
		metricValue(t, serverReg, "rpc_server_bytes_written") <= 0 {
		t.Error("server byte accounting did not move")
	}
	if metricValue(t, serverReg, "rpc_server_search_ns_count") != 3 {
		t.Error("server search latency histogram did not record 3 requests")
	}

	// Client side mirrors its own view of the same traffic.
	if got := metricValue(t, clientReg, "rpc_client_search_requests"); got != 3 {
		t.Errorf("rpc_client_search_requests = %d, want 3", got)
	}
	if got := metricValue(t, clientReg, "rpc_client_ingest_requests"); got != 2 {
		t.Errorf("rpc_client_ingest_requests = %d, want 2", got)
	}
	if metricValue(t, clientReg, "rpc_client_bytes_read") <= 0 ||
		metricValue(t, clientReg, "rpc_client_bytes_written") <= 0 {
		t.Error("client byte accounting did not move")
	}
	if got, want := metricValue(t, clientReg, "rpc_client_dials"), c.Dials(); got != want {
		t.Errorf("rpc_client_dials = %d, Dials() = %d", got, want)
	}
	if metricValue(t, clientReg, "rpc_client_search_ns_count") != 3 {
		t.Error("client search latency histogram did not record 3 round trips")
	}
}

// TestObsUninstrumentedServerStillCounts pins the fallback the promotion
// must preserve: with no registry attached, Requests(op) keeps
// counting — the RPC-accounting tests depend on it.
func TestObsUninstrumentedServerStillCounts(t *testing.T) {
	p, _ := testPipeline(t)
	part := shard.Partition(p.Corpus, 0, 1)
	idx := ingest.New(part, ingest.DefaultConfig())
	defer idx.Close()
	srv, err := transport.Listen("127.0.0.1:0", idx, transport.DefaultServerConfig(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := transport.NewRemoteShard(srv.Addr().String(), testClientConfig())
	defer c.Close()
	if err := c.Handshake(0, 1, len(p.World.Users), part.NumTweets()); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Search(context.Background(), []string{"storm"}, true, nil); err != nil {
		t.Fatal(err)
	}
	if got := srv.Requests(transport.OpSearch); got != 1 {
		t.Fatalf("un-instrumented Requests(OpSearch) = %d, want 1", got)
	}
}
