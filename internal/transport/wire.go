// Payload encodings for every protocol op: varint-based, append-style
// on the encode side, slice-consuming on the decode side. The candidate
// and denominator rows reuse the codecs in internal/expertise (the
// merge inputs are the part of the exchange whose exactness the
// equivalence spine depends on); everything here follows the same
// discipline — length fields are validated against the bytes actually
// present before any allocation.
package transport

import (
	"encoding/binary"
	"fmt"

	"repro/internal/expertise"
	"repro/internal/microblog"
	"repro/internal/world"
)

// SearchReq is the OpSearch payload: the query and its expansion terms
// (the shard matches each and unions the results), plus the
// extended-feature flag the coordinator's parameter set implies.
type SearchReq struct {
	Extended bool
	Terms    []string
}

// AppendSearchReq appends the encoded request to buf.
func AppendSearchReq(buf []byte, req SearchReq) []byte {
	if req.Extended {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(req.Terms)))
	for _, t := range req.Terms {
		buf = appendString(buf, t)
	}
	return buf
}

// ConsumeSearchReq decodes a SearchReq off the front of buf.
func ConsumeSearchReq(buf []byte) (SearchReq, []byte, error) {
	var req SearchReq
	if len(buf) == 0 {
		return req, buf, fmt.Errorf("search req: %w", ErrFrameTruncated)
	}
	req.Extended = buf[0] != 0
	buf = buf[1:]
	n, buf, err := consumeCount(buf, 1)
	if err != nil {
		return req, buf, fmt.Errorf("search req terms: %w", err)
	}
	req.Terms = make([]string, 0, n)
	for i := 0; i < n; i++ {
		var t string
		t, buf, err = consumeString(buf)
		if err != nil {
			return req, buf, fmt.Errorf("search req term %d: %w", i, err)
		}
		req.Terms = append(req.Terms, t)
	}
	return req, buf, nil
}

// SearchResp is the OpSearch response: the size of the shard's
// matched-tweet union and the raw candidate rows extracted from it,
// ascending by user.
type SearchResp struct {
	Matched int
	Rows    []expertise.RawCandidate
}

// AppendSearchResp appends the encoded response to buf.
func AppendSearchResp(buf []byte, resp SearchResp) []byte {
	buf = binary.AppendUvarint(buf, uint64(resp.Matched))
	return expertise.AppendRawCandidates(buf, resp.Rows)
}

// ConsumeSearchResp decodes a SearchResp off the front of buf,
// appending rows into rows (capacity reused, contents discarded).
func ConsumeSearchResp(rows []expertise.RawCandidate, buf []byte) (SearchResp, []byte, error) {
	var resp SearchResp
	m, buf, err := consumeUvarint(buf)
	if err != nil {
		return resp, buf, fmt.Errorf("search resp matched: %w", err)
	}
	resp.Matched = int(m)
	resp.Rows, buf, err = expertise.ConsumeRawCandidates(rows, buf)
	if err != nil {
		return resp, buf, fmt.Errorf("search resp: %w", err)
	}
	return resp, buf, nil
}

// SearchStatsResp is the OpSearchStats response: one frame carrying
// both halves of the query conversation — the shard's matched-union
// size and candidate rows (ascending by user, exactly as OpSearch
// returns them) plus the denominator triples for those same
// candidates, positionally aligned with Rows and read from the same
// snapshot. Foreign candidates' denominators are not here; a
// multi-shard coordinator tops them up with an OpStats against the
// still-pinned snapshot.
type SearchStatsResp struct {
	Matched int
	Rows    []expertise.RawCandidate
	Stats   []expertise.UserStats
}

// AppendSearchStatsResp appends the encoded response to buf.
func AppendSearchStatsResp(buf []byte, resp SearchStatsResp) []byte {
	buf = binary.AppendUvarint(buf, uint64(resp.Matched))
	buf = expertise.AppendRawCandidates(buf, resp.Rows)
	return expertise.AppendUserStats(buf, resp.Stats)
}

// ConsumeSearchStatsResp decodes a SearchStatsResp off the front of
// buf, appending into rows and stats (capacity reused, contents
// discarded). The stats list must be exactly as long as the row list —
// anything else means the peer broke the alignment the accumulation
// step trusts, and is rejected here rather than mis-summed there.
func ConsumeSearchStatsResp(rows []expertise.RawCandidate, stats []expertise.UserStats, buf []byte) (SearchStatsResp, []byte, error) {
	var resp SearchStatsResp
	m, buf, err := consumeUvarint(buf)
	if err != nil {
		return resp, buf, fmt.Errorf("search+stats resp matched: %w", err)
	}
	resp.Matched = int(m)
	resp.Rows, buf, err = expertise.ConsumeRawCandidates(rows, buf)
	if err != nil {
		return resp, buf, fmt.Errorf("search+stats resp rows: %w", err)
	}
	resp.Stats, buf, err = expertise.ConsumeUserStats(stats, buf)
	if err != nil {
		return resp, buf, fmt.Errorf("search+stats resp stats: %w", err)
	}
	if len(resp.Stats) != len(resp.Rows) {
		return resp, buf, fmt.Errorf("search+stats resp: %d stats for %d rows", len(resp.Stats), len(resp.Rows))
	}
	return resp, buf, nil
}

// IngestReq is the OpIngest payload: a batch of routed posts.
type IngestReq struct {
	Posts []microblog.Post
}

// AppendIngestReq appends the encoded request to buf.
func AppendIngestReq(buf []byte, req IngestReq) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(req.Posts)))
	for i := range req.Posts {
		buf = appendPost(buf, &req.Posts[i])
	}
	return buf
}

// ConsumeIngestReq decodes an IngestReq off the front of buf.
func ConsumeIngestReq(buf []byte) (IngestReq, []byte, error) {
	var req IngestReq
	n, buf, err := consumeCount(buf, 4)
	if err != nil {
		return req, buf, fmt.Errorf("ingest req: %w", err)
	}
	req.Posts = make([]microblog.Post, 0, n)
	for i := 0; i < n; i++ {
		var p microblog.Post
		p, buf, err = consumePost(buf)
		if err != nil {
			return req, buf, fmt.Errorf("ingest req post %d: %w", i, err)
		}
		req.Posts = append(req.Posts, p)
	}
	return req, buf, nil
}

// IngestResp is the OpIngest response: the shard-local id of the
// batch's first post (-1 for an empty batch) and the accepted count.
type IngestResp struct {
	First microblog.TweetID
	Count int
}

// AppendIngestResp appends the encoded response to buf.
func AppendIngestResp(buf []byte, resp IngestResp) []byte {
	buf = binary.AppendVarint(buf, int64(resp.First))
	return binary.AppendUvarint(buf, uint64(resp.Count))
}

// ConsumeIngestResp decodes an IngestResp off the front of buf.
func ConsumeIngestResp(buf []byte) (IngestResp, []byte, error) {
	var resp IngestResp
	first, buf, err := consumeVarint(buf)
	if err != nil {
		return resp, buf, fmt.Errorf("ingest resp first: %w", err)
	}
	resp.First = microblog.TweetID(first)
	n, buf, err := consumeUvarint(buf)
	if err != nil {
		return resp, buf, fmt.Errorf("ingest resp count: %w", err)
	}
	resp.Count = int(n)
	return resp, buf, nil
}

// EpochResp is the OpEpoch / OpQuiesce response.
type EpochResp struct {
	Epoch uint64
}

// AppendEpochResp appends the encoded response to buf.
func AppendEpochResp(buf []byte, resp EpochResp) []byte {
	return binary.AppendUvarint(buf, resp.Epoch)
}

// ConsumeEpochResp decodes an EpochResp off the front of buf.
func ConsumeEpochResp(buf []byte) (EpochResp, []byte, error) {
	e, buf, err := consumeUvarint(buf)
	if err != nil {
		return EpochResp{}, buf, fmt.Errorf("epoch resp: %w", err)
	}
	return EpochResp{Epoch: e}, buf, nil
}

// InfoResp is the OpInfo response: which partition this server claims
// to hold and how much of it is populated. Clients use it as a
// deployment handshake — a coordinator wired to the wrong shard, the
// wrong partition count or a differently built base corpus finds out
// before the first query does.
type InfoResp struct {
	// Shard and NumShards are the served partition's coordinates.
	Shard, NumShards int
	// Users is the world size (ranking arenas are sized by it).
	Users int
	// BaseTweets and NumTweets count the frozen base slice and the
	// current total (base plus ingested).
	BaseTweets, NumTweets int
	// Epoch is the current snapshot epoch.
	Epoch uint64
	// Incarnation is a random value drawn once per server lifetime. A
	// client pins it at handshake and re-checks it on every fresh dial:
	// a restarted server carries a new incarnation, and must be treated
	// as a different (empty-again) shard rather than silently reconnected
	// to — its epoch has regressed and its ingested content is gone.
	Incarnation uint64
	// Features is the server's supported feature bits (FeatureCompress).
	// It rides as an optional trailing field: absent on old servers, in
	// which case it decodes as zero and the connection runs without
	// optional features.
	Features uint64
}

// AppendInfoReq appends the encoded OpInfo request payload: the
// client's feature bits. An empty payload (the pre-negotiation
// protocol) means no features.
func AppendInfoReq(buf []byte, features uint64) []byte {
	return binary.AppendUvarint(buf, features)
}

// ConsumeInfoReq decodes the OpInfo request payload; empty means zero
// features.
func ConsumeInfoReq(buf []byte) (uint64, []byte, error) {
	if len(buf) == 0 {
		return 0, buf, nil
	}
	f, buf, err := consumeUvarint(buf)
	if err != nil {
		return 0, buf, fmt.Errorf("info req features: %w", err)
	}
	return f, buf, nil
}

// InfoReq is the full OpInfo request: the client's feature bits plus
// its optional pinned expectations — the world-size renegotiation half
// of resharding. A client that has handshaken against shard i of n
// restates those coordinates on every fresh dial; the server compares
// them against its own and refuses the connection with an explicit
// error instead of answering, so a client wired to a stale topology
// (the deployment resharded underneath it) fails at connect rather
// than serving from the wrong shard. ExpectShards == 0 (the legacy
// one-field payload) means no expectations.
type InfoReq struct {
	// Features is the client's supported feature bits.
	Features uint64
	// ExpectShard and ExpectShards are the shard coordinates the
	// client pinned at handshake; ExpectShards == 0 disables the
	// check. The +1 offset on the wire keeps shard 0 distinguishable
	// from "absent".
	ExpectShard, ExpectShards int
	// ExpectUsers and ExpectBase pin the world size and base-corpus
	// size — the deterministic-build agreement, now enforced on both
	// ends of the wire.
	ExpectUsers, ExpectBase int
}

// AppendInfoReqExpect appends the full OpInfo request; expectations
// are appended only when armed, so expectation-free requests are
// byte-wise identical to the legacy features-only encoding.
func AppendInfoReqExpect(buf []byte, req InfoReq) []byte {
	buf = binary.AppendUvarint(buf, req.Features)
	if req.ExpectShards > 0 {
		buf = binary.AppendUvarint(buf, uint64(req.ExpectShard)+1)
		buf = binary.AppendUvarint(buf, uint64(req.ExpectShards))
		buf = binary.AppendUvarint(buf, uint64(req.ExpectUsers))
		buf = binary.AppendUvarint(buf, uint64(req.ExpectBase))
	}
	return buf
}

// ConsumeInfoReqExpect decodes the full OpInfo request; an empty
// payload or a features-only payload decodes with no expectations.
func ConsumeInfoReqExpect(buf []byte) (InfoReq, []byte, error) {
	var req InfoReq
	if len(buf) == 0 {
		return req, buf, nil
	}
	f, buf, err := consumeUvarint(buf)
	if err != nil {
		return InfoReq{}, buf, fmt.Errorf("info req features: %w", err)
	}
	req.Features = f
	if len(buf) == 0 {
		return req, buf, nil
	}
	var fields [4]uint64
	for i := range fields {
		fields[i], buf, err = consumeUvarint(buf)
		if err != nil {
			return InfoReq{}, buf, fmt.Errorf("info req expect: %w", err)
		}
	}
	// A zero shard+1 or shard count means the expectations are not
	// armed; normalize to the empty form so decode→encode→decode is a
	// fixed point.
	if shard1 := int(fields[0]); shard1 > 0 && int(fields[1]) > 0 {
		req.ExpectShard = shard1 - 1
		req.ExpectShards = int(fields[1])
		req.ExpectUsers = int(fields[2])
		req.ExpectBase = int(fields[3])
	}
	return req, buf, nil
}

// AppendInfoResp appends the encoded response to buf.
func AppendInfoResp(buf []byte, resp InfoResp) []byte {
	buf = binary.AppendUvarint(buf, uint64(resp.Shard))
	buf = binary.AppendUvarint(buf, uint64(resp.NumShards))
	buf = binary.AppendUvarint(buf, uint64(resp.Users))
	buf = binary.AppendUvarint(buf, uint64(resp.BaseTweets))
	buf = binary.AppendUvarint(buf, uint64(resp.NumTweets))
	buf = binary.AppendUvarint(buf, resp.Epoch)
	buf = binary.AppendUvarint(buf, resp.Incarnation)
	return binary.AppendUvarint(buf, resp.Features)
}

// ConsumeInfoResp decodes an InfoResp off the front of buf. The
// trailing Features field is optional for compatibility with payloads
// that predate negotiation.
func ConsumeInfoResp(buf []byte) (InfoResp, []byte, error) {
	var fields [7]uint64
	var err error
	for f := range fields {
		fields[f], buf, err = consumeUvarint(buf)
		if err != nil {
			return InfoResp{}, buf, fmt.Errorf("info resp: %w", err)
		}
	}
	resp := InfoResp{
		Shard:       int(fields[0]),
		NumShards:   int(fields[1]),
		Users:       int(fields[2]),
		BaseTweets:  int(fields[3]),
		NumTweets:   int(fields[4]),
		Epoch:       fields[5],
		Incarnation: fields[6],
	}
	if len(buf) > 0 {
		resp.Features, buf, err = consumeUvarint(buf)
		if err != nil {
			return InfoResp{}, buf, fmt.Errorf("info resp features: %w", err)
		}
	}
	return resp, buf, nil
}

// TweetsReq is the OpTweets payload: a page request over the shard's
// global tweet-id space.
type TweetsReq struct {
	// From is the first global id wanted; Max caps how many ids the
	// page scans (the server may scan fewer — it also honors its own
	// cap).
	From, Max int
	// FilterShards/FilterIdx, when FilterShards > 0, restrict the page
	// to posts whose author maps to FilterIdx under
	// shard.ShardOf(author, FilterShards) — the resharding handoff
	// filter, applied server-side so only a destination shard's
	// content crosses the wire. They ride as optional trailing fields:
	// absent (the pre-resharding protocol) means unfiltered.
	FilterShards, FilterIdx int
}

// AppendTweetsReq appends the encoded request to buf; the filter pair
// is appended only when armed, so unfiltered requests are byte-wise
// identical to the pre-resharding encoding.
func AppendTweetsReq(buf []byte, req TweetsReq) []byte {
	buf = binary.AppendUvarint(buf, uint64(req.From))
	buf = binary.AppendUvarint(buf, uint64(req.Max))
	if req.FilterShards > 0 {
		buf = binary.AppendUvarint(buf, uint64(req.FilterShards))
		buf = binary.AppendUvarint(buf, uint64(req.FilterIdx))
	}
	return buf
}

// ConsumeTweetsReq decodes a TweetsReq off the front of buf.
func ConsumeTweetsReq(buf []byte) (TweetsReq, []byte, error) {
	from, buf, err := consumeUvarint(buf)
	if err != nil {
		return TweetsReq{}, buf, fmt.Errorf("tweets req from: %w", err)
	}
	max, buf, err := consumeUvarint(buf)
	if err != nil {
		return TweetsReq{}, buf, fmt.Errorf("tweets req max: %w", err)
	}
	req := TweetsReq{From: int(from), Max: int(max)}
	if len(buf) > 0 {
		fs, rest, err := consumeUvarint(buf)
		if err != nil {
			return TweetsReq{}, rest, fmt.Errorf("tweets req filter shards: %w", err)
		}
		fi, rest, err := consumeUvarint(rest)
		if err != nil {
			return TweetsReq{}, rest, fmt.Errorf("tweets req filter idx: %w", err)
		}
		// A non-positive FilterShards on the wire means no filter; drop
		// the idx too so decode→encode→decode is a fixed point.
		if n := int(fs); n > 0 {
			req.FilterShards, req.FilterIdx = n, int(fi)
		}
		buf = rest
	}
	return req, buf, nil
}

// TweetsResp is the OpTweets response: the page's posts and the shard's
// current total, so the client knows when it has paged everything. The
// posts travel in the raw Post form; re-rendering through
// microblog.MakeTweet reproduces the exact tokenization the shard
// indexed, so a cold rebuild from paged content is bit-identical.
type TweetsResp struct {
	Total int
	Posts []microblog.Post
	// Scanned is how many global ids the page consumed — equal to
	// len(Posts) for an unfiltered page, larger when a handoff filter
	// (TweetsReq.FilterShards) skipped other shards' posts. The
	// client advances its cursor by Scanned. It rides as an optional
	// trailing field; absent (a pre-resharding server) it decodes as
	// len(Posts).
	Scanned int
}

// AppendTweetsResp appends the encoded response to buf.
func AppendTweetsResp(buf []byte, resp TweetsResp) []byte {
	buf = binary.AppendUvarint(buf, uint64(resp.Total))
	buf = binary.AppendUvarint(buf, uint64(len(resp.Posts)))
	for i := range resp.Posts {
		buf = appendPost(buf, &resp.Posts[i])
	}
	return binary.AppendUvarint(buf, uint64(resp.Scanned))
}

// ConsumeTweetsResp decodes a TweetsResp off the front of buf.
func ConsumeTweetsResp(buf []byte) (TweetsResp, []byte, error) {
	var resp TweetsResp
	total, buf, err := consumeUvarint(buf)
	if err != nil {
		return resp, buf, fmt.Errorf("tweets resp total: %w", err)
	}
	resp.Total = int(total)
	n, buf, err := consumeCount(buf, 4)
	if err != nil {
		return resp, buf, fmt.Errorf("tweets resp: %w", err)
	}
	resp.Posts = make([]microblog.Post, 0, n)
	for i := 0; i < n; i++ {
		var p microblog.Post
		p, buf, err = consumePost(buf)
		if err != nil {
			return resp, buf, fmt.Errorf("tweets resp post %d: %w", i, err)
		}
		resp.Posts = append(resp.Posts, p)
	}
	resp.Scanned = len(resp.Posts)
	if len(buf) > 0 {
		sc, rest, err := consumeUvarint(buf)
		if err != nil {
			return resp, rest, fmt.Errorf("tweets resp scanned: %w", err)
		}
		resp.Scanned = int(sc)
		buf = rest
	}
	return resp, buf, nil
}

// appendPost appends one raw post: author, text, mentions, retweet
// count, and the zigzag-encoded topic (-1 means chatter).
func appendPost(buf []byte, p *microblog.Post) []byte {
	buf = binary.AppendUvarint(buf, uint64(p.Author))
	buf = appendString(buf, p.Text)
	buf = binary.AppendUvarint(buf, uint64(len(p.Mentions)))
	for _, m := range p.Mentions {
		buf = binary.AppendUvarint(buf, uint64(m))
	}
	buf = binary.AppendUvarint(buf, uint64(p.RetweetCount))
	return binary.AppendVarint(buf, int64(p.Topic))
}

// consumePost decodes one raw post off the front of buf.
func consumePost(buf []byte) (microblog.Post, []byte, error) {
	var p microblog.Post
	author, buf, err := consumeUvarint(buf)
	if err != nil {
		return p, buf, err
	}
	p.Author = world.UserID(author)
	p.Text, buf, err = consumeString(buf)
	if err != nil {
		return p, buf, err
	}
	nm, buf, err := consumeCount(buf, 1)
	if err != nil {
		return p, buf, err
	}
	if nm > 0 {
		p.Mentions = make([]world.UserID, 0, nm)
		for i := 0; i < nm; i++ {
			var m uint64
			m, buf, err = consumeUvarint(buf)
			if err != nil {
				return p, buf, err
			}
			p.Mentions = append(p.Mentions, world.UserID(m))
		}
	}
	rt, buf, err := consumeUvarint(buf)
	if err != nil {
		return p, buf, err
	}
	p.RetweetCount = int(rt)
	topic, buf, err := consumeVarint(buf)
	if err != nil {
		return p, buf, err
	}
	p.Topic = world.TopicID(topic)
	return p, buf, nil
}

// appendString appends a length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// consumeString reads a length-prefixed string, validating the length
// against the bytes present before allocating.
func consumeString(buf []byte) (string, []byte, error) {
	n, buf, err := consumeUvarint(buf)
	if err != nil {
		return "", buf, err
	}
	if n > uint64(len(buf)) {
		return "", buf, fmt.Errorf("string length %d exceeds payload: %w", n, ErrFrameTruncated)
	}
	return string(buf[:n]), buf[n:], nil
}

// consumeCount reads an element count and rejects it unless the
// remaining bytes could hold that many elements of at least minBytes
// each — the same over-allocation guard the expertise codecs apply.
func consumeCount(buf []byte, minBytes int) (int, []byte, error) {
	n, buf, err := consumeUvarint(buf)
	if err != nil {
		return 0, buf, err
	}
	if n > uint64(len(buf)/minBytes) {
		return 0, buf, fmt.Errorf("count %d exceeds payload: %w", n, ErrFrameTruncated)
	}
	return int(n), buf, nil
}

// consumeUvarint reads one uvarint off the front of buf.
func consumeUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, buf, ErrFrameTruncated
	}
	return v, buf[n:], nil
}

// consumeVarint reads one zigzag varint off the front of buf.
func consumeVarint(buf []byte) (int64, []byte, error) {
	v, n := binary.Varint(buf)
	if n <= 0 {
		return 0, buf, ErrFrameTruncated
	}
	return v, buf[n:], nil
}
