package community

import (
	"time"

	"repro/internal/simgraph"
)

// DetectSequential runs Newman's seminal greedy agglomerative heuristic
// (the "single-machine heuristic" of Section 4.2.1): starting from
// singletons, repeatedly merge the single pair of connected communities
// with the largest positive modularity gain, stopping when no merge
// improves the score. It is quadratic-ish and intended as the ablation
// baseline for the parallel variant, exactly as in the paper.
func DetectSequential(g *simgraph.IntGraph, opt Options) *Result {
	opt = opt.normalized()
	n := g.NumVertices()
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(v)
	}
	mG := g.TotalUnits()

	res := &Result{}
	res.Iterations = append(res.Iterations, IterStats{
		Iteration:   0,
		Communities: n,
		Modularity:  Modularity(g, labels),
	})
	if mG == 0 || n == 0 {
		res.Labels, res.NumCommunities = canonicalize(labels)
		res.Modularity = Modularity(g, res.Labels)
		return res
	}

	// Community-granularity adjacency and degree sums.
	adj := make(map[int32]map[int32]int64, n)
	deg := make(map[int32]int64, n)
	for v := int32(0); int(v) < n; v++ {
		deg[v] = g.UnitDegree(v)
		for _, nb := range g.Neighbors(v) {
			if adj[v] == nil {
				adj[v] = map[int32]int64{}
			}
			adj[v][nb.To] = nb.Units
		}
	}

	start := time.Now()
	merges := 0
	for {
		// Find the best pair: max ΔMod; ties toward the smaller ids so
		// the run is deterministic despite map iteration.
		var bestA, bestB int32
		bestGain := 0.0
		found := false
		for a, nbrs := range adj {
			for b, units := range nbrs {
				if b <= a {
					continue
				}
				gain := DeltaMod(units, deg[a], deg[b], mG)
				if gain <= 0 {
					continue
				}
				if !found || gain > bestGain ||
					(gain == bestGain && (a < bestA || (a == bestA && b < bestB))) {
					bestA, bestB, bestGain, found = a, b, gain, true
				}
			}
		}
		if !found {
			break
		}
		// Merge bestB into bestA.
		for x, u := range adj[bestB] {
			delete(adj[x], bestB)
			if x == bestA {
				continue
			}
			if adj[bestA] == nil {
				adj[bestA] = map[int32]int64{}
			}
			adj[bestA][x] += u
			if adj[x] == nil {
				adj[x] = map[int32]int64{}
			}
			adj[x][bestA] += u
		}
		delete(adj, bestB)
		delete(adj[bestA], bestB)
		deg[bestA] += deg[bestB]
		delete(deg, bestB)
		for v := range labels {
			if labels[v] == bestB {
				labels[v] = bestA
			}
		}
		merges++
	}

	count := countDistinct(labels)
	res.Iterations = append(res.Iterations, IterStats{
		Iteration:   1,
		Communities: count,
		Modularity:  Modularity(g, labels),
		Merges:      merges,
		Duration:    time.Since(start),
	})
	res.Labels, res.NumCommunities = canonicalize(labels)
	res.Modularity = Modularity(g, res.Labels)
	return res
}

// louvainGraph is the aggregated working graph for Louvain passes; it
// supports self-loops (intra-community units folded into a vertex).
type louvainGraph struct {
	adj  []map[int32]int64 // neighbor -> units (no self entries)
	self []int64           // self-loop units (counted once)
	deg  []int64           // unit degree incl. 2*self
}

// DetectLouvain implements the Louvain method (Blondel et al. 2008), the
// "different community detection paradigm" named in the paper's
// conclusion as future work. Each pass sweeps vertices in order, moving
// each to the neighboring community with the largest positive modularity
// gain until no move helps, then aggregates communities into
// super-vertices and repeats.
func DetectLouvain(g *simgraph.IntGraph, opt Options) *Result {
	opt = opt.normalized()
	n := g.NumVertices()
	mG := g.TotalUnits()

	res := &Result{}
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(v)
	}
	res.Iterations = append(res.Iterations, IterStats{
		Iteration:   0,
		Communities: n,
		Modularity:  Modularity(g, labels),
	})
	if mG == 0 || n == 0 {
		res.Labels, res.NumCommunities = canonicalize(labels)
		res.Modularity = Modularity(g, res.Labels)
		return res
	}

	// Working graph initialized from g.
	lg := &louvainGraph{
		adj:  make([]map[int32]int64, n),
		self: make([]int64, n),
		deg:  make([]int64, n),
	}
	for v := int32(0); int(v) < n; v++ {
		lg.adj[v] = map[int32]int64{}
		for _, nb := range g.Neighbors(v) {
			lg.adj[v][nb.To] = nb.Units
		}
		lg.deg[v] = g.UnitDegree(v)
	}
	// mapping[v] = current community of original vertex v.
	mapping := make([]int32, n)
	for v := range mapping {
		mapping[v] = int32(v)
	}

	for pass := 1; pass <= opt.MaxIterations; pass++ {
		start := time.Now()
		comm, moved := louvainSweep(lg, mG)
		if !moved {
			break
		}
		// Compose the vertex mapping with this pass's assignment, then
		// aggregate the working graph.
		compact, k := compactLabels(comm)
		for v := range mapping {
			mapping[v] = compact[mapping[v]]
		}
		lg = aggregate(lg, compact, k)

		for v := range labels {
			labels[v] = mapping[v]
		}
		count := countDistinct(labels)
		prev := res.Iterations[len(res.Iterations)-1]
		res.Iterations = append(res.Iterations, IterStats{
			Iteration:   pass,
			Communities: count,
			Modularity:  Modularity(g, labels),
			Merges:      prev.Communities - count,
			Duration:    time.Since(start),
		})
		if count == prev.Communities {
			break
		}
	}

	res.Labels, res.NumCommunities = canonicalize(labels)
	res.Modularity = Modularity(g, res.Labels)
	return res
}

// louvainSweep runs local moves until quiescent; returns the community
// of each working vertex and whether anything moved.
func louvainSweep(lg *louvainGraph, mG int64) ([]int32, bool) {
	n := len(lg.adj)
	comm := make([]int32, n)
	commDeg := make([]int64, n)
	for v := range comm {
		comm[v] = int32(v)
		commDeg[v] = lg.deg[v]
	}
	movedAny := false
	for {
		movedRound := false
		for v := int32(0); int(v) < n; v++ {
			cv := comm[v]
			// Units from v to each neighboring community.
			toComm := map[int32]int64{}
			for u, units := range lg.adj[v] {
				toComm[comm[u]] += units
			}
			// Gain of staying: links to own community (minus self) vs
			// expected.
			commDeg[cv] -= lg.deg[v]
			bestC, bestGain := cv, DeltaMod(toComm[cv], lg.deg[v], commDeg[cv], mG)
			for c, units := range toComm {
				if c == cv {
					continue
				}
				gain := DeltaMod(units, lg.deg[v], commDeg[c], mG)
				if gain > bestGain || (gain == bestGain && c < bestC) {
					bestC, bestGain = c, gain
				}
			}
			commDeg[bestC] += lg.deg[v]
			if bestC != cv {
				comm[v] = bestC
				movedRound = true
				movedAny = true
			}
		}
		if !movedRound {
			break
		}
	}
	return comm, movedAny
}

// compactLabels renumbers arbitrary labels densely (order of first
// appearance by vertex index) and returns the mapping and count.
func compactLabels(comm []int32) ([]int32, int) {
	next := int32(0)
	seen := map[int32]int32{}
	out := make([]int32, len(comm))
	for v, c := range comm {
		id, ok := seen[c]
		if !ok {
			id = next
			seen[c] = id
			next++
		}
		out[v] = id
	}
	return out, int(next)
}

// aggregate folds the working graph by the compact assignment.
func aggregate(lg *louvainGraph, compact []int32, k int) *louvainGraph {
	out := &louvainGraph{
		adj:  make([]map[int32]int64, k),
		self: make([]int64, k),
		deg:  make([]int64, k),
	}
	for i := range out.adj {
		out.adj[i] = map[int32]int64{}
	}
	for v := int32(0); int(v) < len(lg.adj); v++ {
		cv := compact[v]
		out.self[cv] += lg.self[v]
		for u, units := range lg.adj[v] {
			cu := compact[u]
			if cu == cv {
				if u > v {
					out.self[cv] += units
				}
				continue
			}
			out.adj[cv][cu] += units
		}
	}
	for c := 0; c < k; c++ {
		d := 2 * out.self[c]
		for _, units := range out.adj[c] {
			d += units
		}
		out.deg[c] = d
	}
	return out
}
