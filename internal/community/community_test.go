package community

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/querylog"
	"repro/internal/simgraph"
	"repro/internal/world"
)

// cliqueGraph builds k cliques of size s with intra-edge weight 10 and a
// weak weight-1 bridge chaining consecutive cliques.
func cliqueGraph(t testing.TB, k, s int) *simgraph.IntGraph {
	t.Helper()
	n := k * s
	labels := make([]string, n)
	for i := range labels {
		labels[i] = "v" + string(rune('a'+i/26)) + string(rune('a'+i%26))
	}
	var edges []simgraph.Edge
	for c := 0; c < k; c++ {
		base := c * s
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				edges = append(edges, simgraph.Edge{A: int32(base + i), B: int32(base + j), Weight: 10})
			}
		}
		if c > 0 {
			edges = append(edges, simgraph.Edge{A: int32((c-1)*s + s - 1), B: int32(base), Weight: 1})
		}
	}
	g, err := simgraph.FromIntEdges(labels, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomGraph builds a reproducible random graph for property tests.
func randomGraph(t testing.TB, seed uint64, n int, p float64, maxW int) *simgraph.IntGraph {
	t.Helper()
	labels := make([]string, n)
	for i := range labels {
		labels[i] = "n" + string(rune('A'+i/26)) + string(rune('A'+i%26))
	}
	var edges []simgraph.Edge
	s := seed
	next := func() uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return s >> 11
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if float64(next()%1000)/1000 < p {
				edges = append(edges, simgraph.Edge{A: int32(a), B: int32(b), Weight: float64(1 + next()%uint64(maxW))})
			}
		}
	}
	g, err := simgraph.FromIntEdges(labels, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParallelSeparatesCliques(t *testing.T) {
	g := cliqueGraph(t, 2, 5)
	res := DetectParallel(g, DefaultOptions())
	if res.NumCommunities != 2 {
		t.Fatalf("found %d communities, want 2", res.NumCommunities)
	}
	// All members of clique 0 share a label distinct from clique 1.
	for v := 1; v < 5; v++ {
		if res.Labels[v] != res.Labels[0] {
			t.Errorf("vertex %d not with clique 0", v)
		}
	}
	for v := 6; v < 10; v++ {
		if res.Labels[v] != res.Labels[5] {
			t.Errorf("vertex %d not with clique 1", v)
		}
	}
	if res.Labels[0] == res.Labels[5] {
		t.Error("cliques merged")
	}
}

func TestParallelManyCliques(t *testing.T) {
	g := cliqueGraph(t, 6, 4)
	res := DetectParallel(g, DefaultOptions())
	if res.NumCommunities != 6 {
		t.Fatalf("found %d communities, want 6", res.NumCommunities)
	}
	if res.Modularity < 0.5 {
		t.Errorf("modularity %v too low for planted cliques", res.Modularity)
	}
}

func TestSequentialSeparatesCliques(t *testing.T) {
	g := cliqueGraph(t, 3, 4)
	res := DetectSequential(g, DefaultOptions())
	if res.NumCommunities != 3 {
		t.Fatalf("sequential found %d communities, want 3", res.NumCommunities)
	}
}

func TestLouvainSeparatesCliques(t *testing.T) {
	g := cliqueGraph(t, 4, 5)
	res := DetectLouvain(g, DefaultOptions())
	if res.NumCommunities != 4 {
		t.Fatalf("louvain found %d communities, want 4", res.NumCommunities)
	}
	if res.Modularity < 0.5 {
		t.Errorf("louvain modularity %v too low", res.Modularity)
	}
}

func TestSQLBackendMatchesParallelOnCliques(t *testing.T) {
	g := cliqueGraph(t, 3, 4)
	mem := DetectParallel(g, DefaultOptions())
	sql, err := DetectSQL(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, mem, sql)
}

func TestSQLBackendMatchesParallelOnRandomGraphs(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234} {
		g := randomGraph(t, seed, 24, 0.18, 5)
		mem := DetectParallel(g, DefaultOptions())
		sql, err := DetectSQL(g, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !sameLabels(mem.Labels, sql.Labels) {
			t.Errorf("seed %d: backends disagree\nmem: %v\nsql: %v", seed, mem.Labels, sql.Labels)
		}
		if len(mem.Iterations) != len(sql.Iterations) {
			t.Errorf("seed %d: iteration counts differ: %d vs %d",
				seed, len(mem.Iterations), len(sql.Iterations))
		}
	}
}

func TestSQLBackendMatchesParallelEdgeWeightMetric(t *testing.T) {
	opt := DefaultOptions()
	opt.Metric = MetricEdgeWeight
	g := randomGraph(t, 99, 20, 0.25, 7)
	mem := DetectParallel(g, opt)
	sql, err := DetectSQL(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, mem, sql)
}

func TestParallelWorkerInvariance(t *testing.T) {
	g := randomGraph(t, 5, 40, 0.12, 4)
	opt := DefaultOptions()
	opt.Workers = 1
	a := DetectParallel(g, opt)
	opt.Workers = 7
	b := DetectParallel(g, opt)
	assertSameResult(t, a, b)
}

func TestModularityHandComputed(t *testing.T) {
	// Two vertices, one edge of 4 units. Split: Q = 0 - 2*(4/16)... wait:
	// mG=4, D_G=8. Singletons: intra=0 each, deg=4 each.
	// Q = 2*(0/4 - (4/8)^2) = -0.5. Merged: Q = 4/4 - (8/8)^2 = 0.
	g, err := simgraph.FromIntEdges([]string{"a", "b"}, []simgraph.Edge{{A: 0, B: 1, Weight: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if q := Modularity(g, []int32{0, 1}); math.Abs(q-(-0.5)) > 1e-12 {
		t.Errorf("split Q = %v, want -0.5", q)
	}
	if q := Modularity(g, []int32{0, 0}); math.Abs(q) > 1e-12 {
		t.Errorf("merged Q = %v, want 0", q)
	}
}

func TestDeltaModMatchesModularityDifference(t *testing.T) {
	// Invariant (eq. 7/8): merging two communities changes raw total
	// modularity by exactly DeltaMod(interUnits, D1, D2, mG).
	for _, seed := range []uint64{3, 11, 29} {
		g := randomGraph(t, seed, 14, 0.3, 6)
		mG := g.TotalUnits()
		if mG == 0 {
			continue
		}
		// Partition: three blocks by vertex index.
		labels := make([]int32, g.NumVertices())
		for v := range labels {
			labels[v] = int32(v % 3)
		}
		qBefore := Modularity(g, labels) * float64(mG)

		// Merge community 1 into 0.
		var inter, d0, d1 int64
		for v := int32(0); int(v) < g.NumVertices(); v++ {
			if labels[v] == 0 {
				d0 += g.UnitDegree(v)
			}
			if labels[v] == 1 {
				d1 += g.UnitDegree(v)
			}
			for _, nb := range g.Neighbors(v) {
				if nb.To > v {
					a, b := labels[v], labels[nb.To]
					if (a == 0 && b == 1) || (a == 1 && b == 0) {
						inter += nb.Units
					}
				}
			}
		}
		merged := make([]int32, len(labels))
		for v := range labels {
			merged[v] = labels[v]
			if merged[v] == 1 {
				merged[v] = 0
			}
		}
		qAfter := Modularity(g, merged) * float64(mG)
		want := DeltaMod(inter, d0, d1, mG)
		if math.Abs((qAfter-qBefore)-want) > 1e-6 {
			t.Errorf("seed %d: ΔQ = %v, DeltaMod = %v", seed, qAfter-qBefore, want)
		}
	}
}

func TestConvergenceTrace(t *testing.T) {
	g := cliqueGraph(t, 5, 5)
	res := DetectParallel(g, DefaultOptions())
	if len(res.Iterations) < 2 {
		t.Fatal("no iterations recorded")
	}
	if res.Iterations[0].Communities != g.NumVertices() {
		t.Errorf("iteration 0 count = %d, want %d", res.Iterations[0].Communities, g.NumVertices())
	}
	for i := 1; i < len(res.Iterations); i++ {
		if res.Iterations[i].Communities > res.Iterations[i-1].Communities {
			t.Errorf("community count increased at iteration %d", i)
		}
	}
	last := res.Iterations[len(res.Iterations)-1]
	if last.Communities != res.NumCommunities {
		t.Errorf("final trace count %d != result %d", last.Communities, res.NumCommunities)
	}
}

func TestCanonicalLabels(t *testing.T) {
	labels, n := canonicalize([]int32{7, 7, 3, 3, 9})
	if n != 3 {
		t.Fatalf("count = %d, want 3", n)
	}
	want := []int32{0, 0, 1, 1, 2}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("canonical labels = %v, want %v", labels, want)
		}
	}
}

func TestSizeHistogram(t *testing.T) {
	r := &Result{Labels: []int32{0, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2}, NumCommunities: 3}
	h := r.SizeHistogram()
	if h[0] != 1 || h[1] != 1 || h[2] != 1 || h[3] != 0 {
		t.Errorf("histogram = %v", h)
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := simgraph.FromIntEdges([]string{"a", "b", "c"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := DetectParallel(g, DefaultOptions())
	if res.NumCommunities != 3 {
		t.Errorf("edgeless graph: %d communities, want 3 singletons", res.NumCommunities)
	}
	seq := DetectSequential(g, DefaultOptions())
	if seq.NumCommunities != 3 {
		t.Errorf("sequential on edgeless graph: %d", seq.NumCommunities)
	}
	sql, err := DetectSQL(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sql.NumCommunities != 3 {
		t.Errorf("sql on edgeless graph: %d", sql.NumCommunities)
	}
	lv := DetectLouvain(g, DefaultOptions())
	if lv.NumCommunities != 3 {
		t.Errorf("louvain on edgeless graph: %d", lv.NumCommunities)
	}
}

func TestMaxIterationsRespected(t *testing.T) {
	g := cliqueGraph(t, 6, 4)
	opt := DefaultOptions()
	opt.MaxIterations = 1
	res := DetectParallel(g, opt)
	// Iteration 0 plus exactly one working iteration.
	if len(res.Iterations) > 2 {
		t.Errorf("ran %d iterations with MaxIterations=1", len(res.Iterations)-1)
	}
}

func TestWorldGraphCommunitiesAlignWithTopics(t *testing.T) {
	w := world.Build(world.TinyConfig())
	log := querylog.AggregateRecords(
		querylog.NewGenerator(w, querylog.TinyGenConfig()).GenerateRecords(), 5)
	sg := simgraph.Build(log, simgraph.DefaultConfig())
	ig := sg.Discretize(20)
	res := DetectParallel(ig, DefaultOptions())
	if res.NumCommunities < 5 {
		t.Fatalf("only %d communities on world graph", res.NumCommunities)
	}
	// 49ers and niners must co-cluster; 49ers and diabetes must not.
	v49, ok1 := sg.Vertex("49ers")
	vNiners, ok2 := sg.Vertex("niners")
	vDiab, ok3 := sg.Vertex("diabetes")
	if !ok1 || !ok2 || !ok3 {
		t.Skip("anchor terms missing from tiny graph")
	}
	if res.Labels[v49] != res.Labels[vNiners] {
		t.Error("49ers and niners in different communities")
	}
	if res.Labels[v49] == res.Labels[vDiab] {
		t.Error("49ers and diabetes merged into one community")
	}
}

func TestMembersPartition(t *testing.T) {
	g := randomGraph(t, 17, 30, 0.15, 4)
	res := DetectParallel(g, DefaultOptions())
	seen := make([]bool, g.NumVertices())
	for _, members := range res.Members() {
		for _, v := range members {
			if seen[v] {
				t.Fatalf("vertex %d in two communities", v)
			}
			seen[v] = true
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("vertex %d missing from Members()", v)
		}
	}
}

func TestLouvainModularityAtLeastParallel(t *testing.T) {
	// Louvain's local moves usually find equal-or-better modularity than
	// the coarse aggregation heuristic on clique-planted graphs.
	g := cliqueGraph(t, 4, 4)
	p := DetectParallel(g, DefaultOptions())
	l := DetectLouvain(g, DefaultOptions())
	if l.Modularity < p.Modularity-0.05 {
		t.Errorf("louvain Q=%v much worse than parallel Q=%v", l.Modularity, p.Modularity)
	}
}

func assertSameResult(t *testing.T, a, b *Result) {
	t.Helper()
	if a.NumCommunities != b.NumCommunities {
		t.Fatalf("community counts differ: %d vs %d", a.NumCommunities, b.NumCommunities)
	}
	if !sameLabels(a.Labels, b.Labels) {
		t.Fatalf("labels differ:\n%v\n%v", a.Labels, b.Labels)
	}
}

func sameLabels(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkDetectParallel(b *testing.B) {
	g := cliqueGraph(b, 20, 8)
	opt := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DetectParallel(g, opt)
	}
}

func BenchmarkDetectSQL(b *testing.B) {
	g := cliqueGraph(b, 8, 5)
	opt := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DetectSQL(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectLouvain(b *testing.B) {
	g := cliqueGraph(b, 20, 8)
	opt := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DetectLouvain(g, opt)
	}
}

func TestCanonicalizeProperties(t *testing.T) {
	prop := func(raw []int32) bool {
		if len(raw) == 0 {
			return true
		}
		labels, n := canonicalize(raw)
		if len(labels) != len(raw) {
			return false
		}
		// Dense range [0, n).
		seen := map[int32]bool{}
		for _, l := range labels {
			if l < 0 || int(l) >= n {
				return false
			}
			seen[l] = true
		}
		if len(seen) != n {
			return false
		}
		// Same-partition structure preserved.
		for i := range raw {
			for j := range raw {
				if (raw[i] == raw[j]) != (labels[i] == labels[j]) {
					return false
				}
			}
		}
		// Idempotent.
		again, n2 := canonicalize(labels)
		if n2 != n {
			return false
		}
		for i := range labels {
			if again[i] != labels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestModularityBounds(t *testing.T) {
	// Q is at most 1 and at least -1 for any labelling of any graph.
	for _, seed := range []uint64{2, 13, 77} {
		g := randomGraph(t, seed, 18, 0.25, 5)
		for block := 1; block <= 4; block++ {
			labels := make([]int32, g.NumVertices())
			for v := range labels {
				labels[v] = int32(v % block)
			}
			q := Modularity(g, labels)
			if q > 1 || q < -1 {
				t.Fatalf("seed %d blocks %d: Q=%v out of [-1,1]", seed, block, q)
			}
		}
	}
}

func TestStarContractionStrictlyDecreases(t *testing.T) {
	// Every recorded iteration with merges > 0 must strictly decrease
	// the community count; a converged run ends because no positive
	// pair remains, never by swapping labels forever.
	for _, seed := range []uint64{4, 9, 51} {
		g := randomGraph(t, seed, 40, 0.15, 4)
		res := DetectParallel(g, DefaultOptions())
		for i := 1; i < len(res.Iterations); i++ {
			if res.Iterations[i].Communities >= res.Iterations[i-1].Communities {
				t.Fatalf("seed %d: iteration %d did not decrease count (%d -> %d)",
					seed, i, res.Iterations[i-1].Communities, res.Iterations[i].Communities)
			}
		}
	}
}

func TestMetricsProduceValidPartitions(t *testing.T) {
	g := randomGraph(t, 23, 30, 0.2, 6)
	for _, metric := range []Metric{MetricDeltaMod, MetricEdgeWeight} {
		opt := DefaultOptions()
		opt.Metric = metric
		res := DetectParallel(g, opt)
		if res.NumCommunities <= 0 || res.NumCommunities > g.NumVertices() {
			t.Errorf("metric %v: %d communities", metric, res.NumCommunities)
		}
		for _, l := range res.Labels {
			if int(l) >= res.NumCommunities {
				t.Fatalf("metric %v: label out of range", metric)
			}
		}
	}
}

func TestSequentialNeverDecreasesModularity(t *testing.T) {
	// The greedy merges only on positive gain, so final Q must be at
	// least the all-singletons Q.
	g := randomGraph(t, 31, 20, 0.3, 4)
	res := DetectSequential(g, DefaultOptions())
	if len(res.Iterations) < 2 {
		t.Skip("no merges")
	}
	if res.Iterations[len(res.Iterations)-1].Modularity < res.Iterations[0].Modularity {
		t.Errorf("sequential decreased modularity: %v -> %v",
			res.Iterations[0].Modularity, res.Iterations[len(res.Iterations)-1].Modularity)
	}
}
