// Package community implements the paper's community detection layer
// (Section 4.2): modularity bookkeeping, Newman's sequential greedy
// heuristic, the paper's parallel three-step algorithm (neighborhood
// creation, neighborhood separation, aggregation), and — because the
// paper's headline engineering claim is that the algorithm "can be
// directly implemented in a SQL-like language" — a second implementation
// of the very same algorithm executed as relational-operator plans on
// internal/relops. Louvain is included as the alternative paradigm the
// conclusion lists as future work.
//
// All detectors consume the discretized multigraph of simgraph.IntGraph
// (paper footnote 1) and produce canonical, backend-independent labels,
// so tests can require the SQL and in-memory backends to agree exactly.
//
// One ambiguity in the paper is resolved here, as documented in
// DESIGN.md: the Figure 4 pseudo-SQL renames each community to its
// chosen neighbor, which livelocks when two communities choose each
// other (the membership merely swaps). We therefore aggregate by "star
// contraction": every community adopts its chosen leader's id, and the
// two members of a mutual choice merge under the smaller id. Because
// gains are symmetric and ties break toward smaller ids, best-choice
// cycles longer than two cannot exist, so each iteration strictly
// shrinks the community count — matching the gradual convergence the
// paper reports in Figure 5. The in-memory backend applies the rule
// directly; the SQL backend detects mutual pairs with a self-join of
// the choice relation — and both yield identical partitions.
package community

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/relops"
	"repro/internal/simgraph"
)

// Metric selects the closeness measure used in step 2 (neighborhood
// separation) when a community picks its best neighborhood.
type Metric int

const (
	// MetricDeltaMod follows the prose: "keep the closest one (ΔMod is as
	// large as possible)". This is the default.
	MetricDeltaMod Metric = iota
	// MetricEdgeWeight follows the literal SQL, which argmaxes the raw
	// graph distance (here: inter-community edge units). ΔMod > 0 still
	// gates candidacy.
	MetricEdgeWeight
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricDeltaMod:
		return "delta-mod"
	case MetricEdgeWeight:
		return "edge-weight"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Options configures a detection run.
type Options struct {
	// Metric is the neighborhood-separation closeness measure.
	Metric Metric
	// MaxIterations caps the outer loop (the paper observes convergence
	// after ~6 iterations; default 20).
	MaxIterations int
	// Workers is the parallelism for partitioned phases (default 4).
	Workers int
	// SQLJoin selects the physical join plan used by the relational
	// backend (Section 4.2.3: replicated vs chained map-side joins).
	// Only DetectSQL consults it.
	SQLJoin relops.JoinStrategy
}

// DefaultOptions returns the defaults used by the pipeline.
func DefaultOptions() Options {
	return Options{
		Metric:        MetricDeltaMod,
		MaxIterations: 20,
		Workers:       4,
		SQLJoin:       relops.ReplicatedJoin,
	}
}

func (o Options) normalized() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 20
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	return o
}

// IterStats records the state after one outer iteration (plus an entry
// for iteration 0, the initial all-singletons state) — the data behind
// Figure 5.
type IterStats struct {
	Iteration   int
	Communities int
	// Modularity is the normalized total modularity Q of the partition.
	Modularity float64
	// Merges is the reduction in community count during this iteration.
	Merges   int
	Duration time.Duration
}

// Result is a completed detection run.
type Result struct {
	// Labels assigns each vertex a dense community id in [0, NumCommunities).
	// Labels are canonical: communities are numbered by their smallest
	// vertex id, so equal partitions have equal labels regardless of the
	// backend that produced them.
	Labels []int32
	// NumCommunities is the number of distinct communities.
	NumCommunities int
	// Iterations traces the convergence (Figure 5).
	Iterations []IterStats
	// Modularity is the normalized total modularity Q of the final
	// partition.
	Modularity float64
}

// Members returns the vertex sets per community, indexed by label, each
// sorted ascending.
func (r *Result) Members() [][]int32 {
	out := make([][]int32, r.NumCommunities)
	for v, c := range r.Labels {
		out[c] = append(out[c], int32(v))
	}
	return out
}

// SizeHistogram buckets community sizes as in Figure 6:
// [singletons, 2–10, 11–50, >50].
func (r *Result) SizeHistogram() [4]int {
	var hist [4]int
	for _, members := range r.Members() {
		switch n := len(members); {
		case n == 1:
			hist[0]++
		case n <= 10:
			hist[1]++
		case n <= 50:
			hist[2]++
		default:
			hist[3]++
		}
	}
	return hist
}

// canonicalize renames arbitrary community labels to dense ids ordered
// by each community's smallest vertex, and counts communities.
func canonicalize(labels []int32) ([]int32, int) {
	minVertex := map[int32]int32{}
	for v := int32(0); int(v) < len(labels); v++ {
		c := labels[v]
		if cur, ok := minVertex[c]; !ok || v < cur {
			minVertex[c] = v
		}
	}
	roots := make([]int32, 0, len(minVertex))
	for _, mv := range minVertex {
		roots = append(roots, mv)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	rank := make(map[int32]int32, len(roots))
	for i, mv := range roots {
		rank[mv] = int32(i)
	}
	out := make([]int32, len(labels))
	for v := range labels {
		out[v] = rank[minVertex[labels[v]]]
	}
	return out, len(roots)
}

// Modularity computes the normalized total modularity Q of a labelling:
//
//	Q = Σ_C [ m_C/m_G − (D_C/D_G)² ]
//
// with m_C the intra-community units, D_C the community's unit-degree
// sum and D_G = 2·m_G (equations 1–6 of the paper, divided by the
// constant m_G as the paper notes many authors do).
func Modularity(g *simgraph.IntGraph, labels []int32) float64 {
	if len(labels) != g.NumVertices() {
		panic("community: label slice length mismatch")
	}
	mG := float64(g.TotalUnits())
	if mG == 0 {
		return 0
	}
	intra := map[int32]int64{}
	deg := map[int32]int64{}
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for _, n := range g.Neighbors(v) {
			deg[labels[v]] += n.Units
			if n.To > v && labels[v] == labels[n.To] {
				intra[labels[v]] += n.Units
			}
		}
	}
	q := 0.0
	for c, d := range deg {
		frac := float64(d) / (2 * mG)
		q += float64(intra[c])/mG - frac*frac
	}
	return q
}

// DeltaMod computes the modularity gain of merging two communities given
// the inter-community units and the two degree sums (equations 8–9):
//
//	ΔMod = m_{1↔2} − D₁·D₂ / (2·m_G)
func DeltaMod(interUnits, d1, d2, mG int64) float64 {
	return float64(interUnits) - float64(d1)*float64(d2)/(2*float64(mG))
}

// vertexDegrees precomputes every vertex's unit degree.
func vertexDegrees(g *simgraph.IntGraph) []int64 {
	deg := make([]int64, g.NumVertices())
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		deg[v] = g.UnitDegree(v)
	}
	return deg
}

// packPair encodes an unordered community pair with the smaller id high.
func packPair(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func unpackPair(k uint64) (int32, int32) {
	return int32(k >> 32), int32(k & 0xffffffff)
}
