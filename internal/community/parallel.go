package community

import (
	"sync"
	"time"

	"repro/internal/simgraph"
)

// DetectParallel runs the paper's three-step parallel algorithm directly
// in memory. Each outer iteration:
//
//  1. Neighborhood creation — every pair of connected communities with
//     positive modularity gain (ΔMod > 0) is a neighbor pair. The pair
//     units are accumulated from the vertex-level graph in parallel
//     partitions.
//  2. Neighborhood separation — every community keeps only its closest
//     neighborhood (maximal metric; ties break toward the smaller
//     community id so the run is deterministic).
//  3. Aggregation — every community adopts the label of its chosen
//     neighborhood owner; the two members of a mutual choice merge under
//     the smaller id. This is a depth-1 "star" contraction of the choice
//     forest: because gains are symmetric and ties break toward smaller
//     ids, best-choice cycles longer than two are impossible, so every
//     iteration strictly reduces the community count until no
//     positive-gain pair remains (the gradual convergence of Figure 5).
//
// The loop stops when no community has a positive-gain neighbor, or
// after opt.MaxIterations.
func DetectParallel(g *simgraph.IntGraph, opt Options) *Result {
	opt = opt.normalized()
	n := g.NumVertices()
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(v)
	}
	mG := g.TotalUnits()
	vdeg := vertexDegrees(g)

	res := &Result{}
	res.Iterations = append(res.Iterations, IterStats{
		Iteration:   0,
		Communities: n,
		Modularity:  Modularity(g, labels),
	})
	if mG == 0 || n == 0 {
		res.Labels, res.NumCommunities = canonicalize(labels)
		res.Modularity = Modularity(g, labels)
		return res
	}

	prevCount := n
	// Community degree sums, dense-indexed by label: labels start as
	// vertex ids and only ever adopt other existing labels, so every
	// label stays < n and the slice replaces a per-iteration map.
	deg := make([]int64, n)
	for iter := 1; iter <= opt.MaxIterations; iter++ {
		start := time.Now()

		for i := range deg {
			deg[i] = 0
		}
		for v := 0; v < n; v++ {
			deg[labels[v]] += vdeg[v]
		}

		// Step 1: inter-community units, accumulated in parallel vertex
		// partitions and merged.
		pairs := accumulatePairs(g, labels, opt.Workers)

		// Step 2: best neighborhood per community.
		type choice struct {
			partner int32
			metric  float64
		}
		best := map[int32]choice{}
		consider := func(c, partner int32, metric float64) {
			cur, ok := best[c]
			if !ok || metric > cur.metric || (metric == cur.metric && partner < cur.partner) {
				best[c] = choice{partner: partner, metric: metric}
			}
		}
		for key, units := range pairs {
			c1, c2 := unpackPair(key)
			gain := DeltaMod(units, deg[c1], deg[c2], mG)
			if gain <= 0 {
				continue
			}
			metric := gain
			if opt.Metric == MetricEdgeWeight {
				metric = float64(units)
			}
			consider(c1, c2, metric)
			consider(c2, c1, metric)
		}
		if len(best) == 0 {
			break
		}

		// Step 3: star aggregation of the choice forest.
		newLabel := make(map[int32]int32, len(best))
		for c, ch := range best {
			l := ch.partner
			if back, ok := best[l]; ok && back.partner == c {
				// Mutual choice: merge under the smaller id.
				if l < c {
					newLabel[c] = l
				} else {
					newLabel[c] = c
				}
				continue
			}
			newLabel[c] = l
		}
		for v := 0; v < n; v++ {
			if nl, ok := newLabel[labels[v]]; ok {
				labels[v] = nl
			}
		}

		count := countDistinct(labels)
		res.Iterations = append(res.Iterations, IterStats{
			Iteration:   iter,
			Communities: count,
			Modularity:  Modularity(g, labels),
			Merges:      prevCount - count,
			Duration:    time.Since(start),
		})
		if count == prevCount {
			break
		}
		prevCount = count
	}

	res.Labels, res.NumCommunities = canonicalize(labels)
	res.Modularity = Modularity(g, res.Labels)
	return res
}

// accumulatePairs sums inter-community edge units over parallel vertex
// partitions. Each undirected edge is visited once (from its lower
// endpoint).
func accumulatePairs(g *simgraph.IntGraph, labels []int32, workers int) map[uint64]int64 {
	n := g.NumVertices()
	partials := make([]map[uint64]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := map[uint64]int64{}
			lo := n * w / workers
			hi := n * (w + 1) / workers
			for v := int32(lo); int(v) < hi; v++ {
				cv := labels[v]
				for _, nb := range g.Neighbors(v) {
					if nb.To <= v {
						continue
					}
					cw := labels[nb.To]
					if cv != cw {
						local[packPair(cv, cw)] += nb.Units
					}
				}
			}
			partials[w] = local
		}(w)
	}
	wg.Wait()
	merged := partials[0]
	for _, p := range partials[1:] {
		for k, v := range p {
			merged[k] += v
		}
	}
	return merged
}

func countDistinct(labels []int32) int {
	seen := map[int32]bool{}
	for _, c := range labels {
		seen[c] = true
	}
	return len(seen)
}
