package community

import (
	"fmt"
	"time"

	"repro/internal/relops"
	"repro/internal/simgraph"
)

// DetectSQL executes the same three-step algorithm as DetectParallel,
// but expressed as relational-operator plans on the relops engine — the
// paper's Figure 4 pseudo-SQL made concrete. Per outer iteration:
//
//	neighbors  = σ[c1≠c2]( graph ⋈ member ⋈ member )        -- step 1
//	             groupby (lo,hi) sum(units), join degrees,
//	             extend gain = ΔMod, σ[gain>0]
//	choices    = groupby (c) argmax(metric, partner)          -- step 2
//	aggregate  = semi-naive min-label propagation over the    -- step 3
//	             choice relation (connected components), then
//	             member ⋈ labels to relabel vertices
//
// The result is identical, label for label, to DetectParallel — the
// property the cross-backend tests assert.
func DetectSQL(g *simgraph.IntGraph, opt Options) (*Result, error) {
	opt = opt.normalized()
	n := g.NumVertices()
	mG := g.TotalUnits()

	// Base tables: the vertex-level graph, the membership relation and
	// the vertex degree relation.
	edges := relops.MustNew(
		relops.Column{Name: "src", Type: relops.Int64},
		relops.Column{Name: "dst", Type: relops.Int64},
		relops.Column{Name: "units", Type: relops.Int64},
	)
	for v := int32(0); int(v) < n; v++ {
		for _, nb := range g.Neighbors(v) {
			if nb.To > v {
				edges.MustAppendRow(int64(v), int64(nb.To), nb.Units)
			}
		}
	}
	member := relops.MustNew(
		relops.Column{Name: "vertex", Type: relops.Int64},
		relops.Column{Name: "comm", Type: relops.Int64},
	)
	vdegT := relops.MustNew(
		relops.Column{Name: "vertex", Type: relops.Int64},
		relops.Column{Name: "deg", Type: relops.Int64},
	)
	vdeg := vertexDegrees(g)
	for v := 0; v < n; v++ {
		member.MustAppendRow(v, v)
		vdegT.MustAppendRow(v, vdeg[v])
	}

	res := &Result{}
	labels := memberLabels(member, n)
	res.Iterations = append(res.Iterations, IterStats{
		Iteration:   0,
		Communities: n,
		Modularity:  Modularity(g, labels),
	})
	if mG == 0 || n == 0 {
		res.Labels, res.NumCommunities = canonicalize(labels)
		res.Modularity = Modularity(g, res.Labels)
		return res, nil
	}

	jopt := relops.JoinOptions{Strategy: opt.SQLJoin, Workers: opt.Workers}
	prevCount := n
	for iter := 1; iter <= opt.MaxIterations; iter++ {
		start := time.Now()

		// Step 1: neighborhood creation. Join the graph with the
		// membership relation on both endpoints (the two aliases c1, c2
		// of Figure 4), keep cross-community rows.
		m1, err := renameAll(member, map[string]string{"vertex": "v1", "comm": "c1"})
		if err != nil {
			return nil, err
		}
		m2, err := renameAll(member, map[string]string{"vertex": "v2", "comm": "c2"})
		if err != nil {
			return nil, err
		}
		j1, err := relops.Join(edges, m1, "src", "v1", jopt)
		if err != nil {
			return nil, fmt.Errorf("community: sql step1 join1: %w", err)
		}
		j2, err := relops.Join(j1, m2, "dst", "v2", jopt)
		if err != nil {
			return nil, fmt.Errorf("community: sql step1 join2: %w", err)
		}
		cross := relops.Select(j2, func(r relops.Row) bool { return r.Int("c1") != r.Int("c2") })
		if cross.NumRows() == 0 {
			break
		}
		lo, err := relops.Extend(cross, "lo", relops.Int64, func(r relops.Row) any {
			return min64(r.Int("c1"), r.Int("c2"))
		})
		if err != nil {
			return nil, err
		}
		lohi, err := relops.Extend(lo, "hi", relops.Int64, func(r relops.Row) any {
			return max64(r.Int("c1"), r.Int("c2"))
		})
		if err != nil {
			return nil, err
		}
		pairs, err := relops.GroupBy(lohi, []string{"lo", "hi"},
			[]relops.Agg{{Kind: relops.Sum, Col: "units", As: "u"}}, opt.Workers)
		if err != nil {
			return nil, fmt.Errorf("community: sql pair aggregation: %w", err)
		}

		// Community degree sums: member ⋈ vdeg, grouped by community.
		mdeg, err := relops.Join(member, vdegT, "vertex", "vertex", jopt)
		if err != nil {
			return nil, err
		}
		cdeg, err := relops.GroupBy(mdeg, []string{"comm"},
			[]relops.Agg{{Kind: relops.Sum, Col: "deg", As: "cd"}}, opt.Workers)
		if err != nil {
			return nil, err
		}

		// Gain computation: join both degree sums, extend ΔMod, filter.
		g1, err := relops.Join(pairs, cdeg, "lo", "comm", jopt)
		if err != nil {
			return nil, err
		}
		g1, err = relops.Rename(g1, "cd", "d1")
		if err != nil {
			return nil, err
		}
		g2, err := relops.Join(g1, cdeg, "hi", "comm", jopt)
		if err != nil {
			return nil, err
		}
		g2, err = relops.Rename(g2, "cd", "d2")
		if err != nil {
			return nil, err
		}
		gains, err := relops.Extend(g2, "gain", relops.Float64, func(r relops.Row) any {
			return DeltaMod(r.Int("u"), r.Int("d1"), r.Int("d2"), mG)
		})
		if err != nil {
			return nil, err
		}
		pos := relops.Select(gains, func(r relops.Row) bool { return r.Float("gain") > 0 })
		if pos.NumRows() == 0 {
			break
		}
		withMetric, err := relops.Extend(pos, "metric", relops.Float64, func(r relops.Row) any {
			if opt.Metric == MetricEdgeWeight {
				return float64(r.Int("u"))
			}
			return r.Float("gain")
		})
		if err != nil {
			return nil, err
		}

		// Step 2: neighborhood separation — both directions of every
		// neighbor pair, argmax per community.
		dir1, err := projectRename(withMetric, []string{"lo", "hi", "metric"},
			map[string]string{"lo": "c", "hi": "partner"})
		if err != nil {
			return nil, err
		}
		dir2, err := projectRename(withMetric, []string{"hi", "lo", "metric"},
			map[string]string{"hi": "c", "lo": "partner"})
		if err != nil {
			return nil, err
		}
		cand, err := relops.Union(dir1, dir2)
		if err != nil {
			return nil, err
		}
		choices, err := relops.GroupBy(cand, []string{"c"},
			[]relops.Agg{{Kind: relops.ArgMax, Col: "metric", Arg: "partner", As: "leader"}}, opt.Workers)
		if err != nil {
			return nil, fmt.Errorf("community: sql neighborhood separation: %w", err)
		}

		// Step 3: star aggregation — each community adopts its leader's
		// label; mutual pairs merge under the smaller id.
		labelsT, err := starLabels(member, choices, jopt)
		if err != nil {
			return nil, err
		}
		nm, err := relops.Join(member, labelsT, "comm", "comm2", jopt)
		if err != nil {
			return nil, fmt.Errorf("community: sql relabel: %w", err)
		}
		nm, err = projectRename(nm, []string{"vertex", "root"}, map[string]string{"root": "comm"})
		if err != nil {
			return nil, err
		}
		member = nm

		labels = memberLabels(member, n)
		count := countDistinct(labels)
		res.Iterations = append(res.Iterations, IterStats{
			Iteration:   iter,
			Communities: count,
			Modularity:  Modularity(g, labels),
			Merges:      prevCount - count,
			Duration:    time.Since(start),
		})
		if count == prevCount {
			break
		}
		prevCount = count
	}

	res.Labels, res.NumCommunities = canonicalize(labels)
	res.Modularity = Modularity(g, res.Labels)
	return res, nil
}

// starLabels computes each community's new label under star
// aggregation, relationally: a self-join of the choice relation exposes
// every leader's own choice, so mutual pairs are detected in one pass
// and labelled with the smaller id; all other choosers adopt their
// leader's id; communities with no positive-gain neighbor keep their
// own label.
func starLabels(member, choices *relops.Table, jopt relops.JoinOptions) (*relops.Table, error) {
	// choices ⋈ choices on leader = c exposes leader2 = choice(leader).
	// The join is total: a chosen community always has a positive-gain
	// neighbor (gain is symmetric), hence its own row in choices.
	leaderSide, err := renameAll(choices, map[string]string{"c": "lc", "leader": "leader2"})
	if err != nil {
		return nil, err
	}
	j, err := relops.Join(choices, leaderSide, "leader", "lc", jopt)
	if err != nil {
		return nil, fmt.Errorf("community: sql mutual detection: %w", err)
	}
	withRoot, err := relops.Extend(j, "root", relops.Int64, func(r relops.Row) any {
		c, l := r.Int("c"), r.Int("leader")
		if r.Int("leader2") == c {
			return min64(c, l) // mutual pair
		}
		return l
	})
	if err != nil {
		return nil, err
	}
	chosen, err := projectRename(withRoot, []string{"c", "root"}, map[string]string{"c": "comm"})
	if err != nil {
		return nil, err
	}

	// Communities with no choice row keep their own label.
	comms := relops.Distinct(mustProject(member, "comm"))
	isolated, err := relops.AntiJoin(comms, choices, "comm", "c")
	if err != nil {
		return nil, err
	}
	isolatedLabels, err := relops.Extend(isolated, "root", relops.Int64, func(r relops.Row) any {
		return r.Int("comm")
	})
	if err != nil {
		return nil, err
	}
	labels, err := relops.Union(chosen, isolatedLabels)
	if err != nil {
		return nil, err
	}
	// The relabel join needs a key column name distinct from member's.
	return relops.Rename(labels, "comm", "comm2")
}

// memberLabels extracts the vertex labelling from the member relation.
func memberLabels(member *relops.Table, n int) []int32 {
	labels := make([]int32, n)
	vs, err := member.Ints("vertex")
	if err != nil {
		panic(err)
	}
	cs, err := member.Ints("comm")
	if err != nil {
		panic(err)
	}
	for i := range vs {
		labels[vs[i]] = int32(cs[i])
	}
	return labels
}

// renameAll applies several renames.
func renameAll(t *relops.Table, renames map[string]string) (*relops.Table, error) {
	out := t
	var err error
	for _, old := range sortedKeys(renames) {
		out, err = relops.Rename(out, old, renames[old])
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// projectRename projects then renames; renames may be nil.
func projectRename(t *relops.Table, cols []string, renames map[string]string) (*relops.Table, error) {
	out, err := relops.Project(t, cols...)
	if err != nil {
		return nil, err
	}
	if renames != nil {
		out, err = renameAll(out, renames)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func mustProject(t *relops.Table, cols ...string) *relops.Table {
	out, err := relops.Project(t, cols...)
	if err != nil {
		panic(err)
	}
	return out
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
