package shard_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/fault"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/serve"
	"repro/internal/shard"
)

// mixedLoadPosts regenerates exactly the post multiset a
// serve.RunMixedLoad run with (seed, total, workers) ingested: worker
// w draws from its own deterministic stream at Seed+w and takes
// total/workers posts (worker 0 takes the slack). Worker interleaving
// is racy but irrelevant — every ranking input is an
// order-independent integer sum, so the multiset pins the cold
// reference.
func mixedLoadPosts(p *core.Pipeline, seed uint64, total, workers int) []microblog.Post {
	var posts []microblog.Post
	for w := 0; w < workers; w++ {
		cfg := microblog.DefaultStreamConfig(seed)
		cfg.Seed = seed + uint64(w)
		stream := microblog.NewPostStream(p.World, cfg)
		n := total / workers
		if w == 0 {
			n += total % workers
		}
		for i := 0; i < n; i++ {
			posts = append(posts, stream.Next())
		}
	}
	return posts
}

// evalQueries flattens every evaluation query set into one load pool.
func evalQueries(sets []eval.QuerySet) []string {
	var qs []string
	for _, set := range sets {
		qs = append(qs, set.Queries...)
	}
	return qs
}

// TestReshardQuiescedEquivalence is the acceptance bar of live
// resharding: migrate a serving deployment from N to M shards while
// a mixed search/ingest load runs against it, quiesce, and the
// migrated deployment must rank bit-identically — experts and
// matched-tweet counts, e# and baseline, every evaluation query set —
// to a cold rebuild at M over the same posts. Grow by an integer
// factor (4→8), grow across the PR's flagship 2→4 step, and shrink
// (4→2); in each case reads flow through the serving layer the whole
// time (its cache tolerating the epoch-vector length change at
// cutover) and writes flow through the migration's routing table.
func TestReshardQuiescedEquivalence(t *testing.T) {
	p, sets := testPipeline(t)
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}
	queries := evalQueries(sets)

	cases := []struct{ from, to int }{{4, 8}, {2, 4}, {4, 2}}
	for ci, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%dto%d", tc.from, tc.to), func(t *testing.T) {
			seed := uint64(8100 + 10*ci)
			src := shard.New(p.Corpus, shard.Config{Shards: tc.from, Ingest: icfg})
			defer src.Close()
			dst := shard.New(p.Corpus, shard.Config{Shards: tc.to, Ingest: icfg})
			defer dst.Close()

			det := core.NewShardedLiveDetectorOver(p.Collection, src.Cluster(), p.Cfg.Online)
			srv := serve.New(det, serve.Config{CacheSize: 256})
			mig, err := shard.NewMigration(src.Cluster(), dst.Cluster(), shard.MigrationConfig{
				PageSize: 64,
				Cutover:  func(to *shard.Cluster) { det.SwapCluster(to) },
			})
			if err != nil {
				t.Fatal(err)
			}
			det.AttachMigration(mig)

			// Pre-migration history: content the drain must move.
			pre := streamPosts(p, seed+1000, 300)
			for _, post := range pre {
				mig.Ingest(post)
			}

			// The mixed load runs concurrently with the whole migration:
			// early writes land before the drain cut, late ones during
			// catch-up rounds and after cutover — all three paths feed
			// the same equivalence check.
			const loadPosts, loadWorkers = 600, 3
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				serve.RunMixedLoad(srv, mig, serve.MixedLoadConfig{
					Queries:       queries,
					Searches:      300,
					SearchWorkers: 4,
					Ingests:       loadPosts,
					IngestWorkers: loadWorkers,
					BaselineEvery: 5,
					Seed:          seed,
				})
			}()

			if err := mig.Start(); err != nil {
				t.Fatal(err)
			}
			if err := mig.Drain(); err != nil {
				t.Fatal(err)
			}
			// The dual-read window is open: reads still route to the
			// (provably complete) source, and each is counted.
			det.Search(queries[0])
			det.Search(queries[1%len(queries)])
			if err := mig.Cutover(); err != nil {
				t.Fatal(err)
			}
			wg.Wait()

			if got := mig.State(); got != shard.MigrationDone {
				t.Fatalf("migration state %v, want done", got)
			}
			if got := mig.Table(); got.Shards != tc.to || got.Version != 2 {
				t.Fatalf("routing table %+v, want shards %d version 2", got, tc.to)
			}
			if det.Cluster() != dst.Cluster() {
				t.Fatal("cutover did not swap the read path to the destination cluster")
			}
			st := mig.Stats()
			if st.WindowHits < 2 {
				t.Fatalf("dual-read window saw %d hits, want >= 2", st.WindowHits)
			}
			if st.PostsStreamed < int64(len(pre)) {
				t.Fatalf("streamed %d posts, want at least the %d pre-migration ones", st.PostsStreamed, len(pre))
			}
			if st.BytesStreamed <= 0 || st.AuthorsMoving <= 0 || st.CatchUpRounds <= 0 {
				t.Fatalf("implausible progress stats: %+v", st)
			}
			sst := srv.Stats()
			if sst.Reshard == nil || sst.Reshard.State != shard.MigrationDone {
				t.Fatalf("serve stats reshard snapshot %+v, want done", sst.Reshard)
			}

			// Quiesced equivalence at M: the migrated deployment against
			// a cold detector rebuilt over base + every post the run
			// ingested.
			dst.Quiesce()
			posts := append(append([]microblog.Post{}, pre...), mixedLoadPosts(p, seed, loadPosts, loadWorkers)...)
			cold := core.NewDetector(p.Collection, p.Corpus.ExtendedWith(posts), p.Cfg.Online)
			for _, set := range sets {
				for _, q := range set.Queries {
					gotES, gotTrace := det.Search(q)
					coldES, coldTrace := cold.Search(q)
					expertsIdentical(t, "resharded-vs-cold", q, gotES, coldES)
					if gotTrace.MatchedTweets != coldTrace.MatchedTweets {
						t.Fatalf("%d→%d %q: matched %d tweets resharded, cold %d",
							tc.from, tc.to, q, gotTrace.MatchedTweets, coldTrace.MatchedTweets)
					}
					expertsIdentical(t, "resharded-baseline", q,
						det.SearchBaseline(q), cold.SearchBaseline(q))
				}
			}
			if pq, se := det.PartialStats(); pq != 0 || se != 0 {
				t.Fatalf("%d→%d: migration degraded reads: partial queries %d, shard errors %d", tc.from, tc.to, pq, se)
			}
		})
	}
}

// TestReshardChaosMidDrain kills a destination backend partway through
// the drain (via the fault gate, at a scripted call count) while mixed
// load runs, and requires the clean half of abort-or-complete: the
// migration aborts, cutover never runs, the routing table stays at N,
// reads never degrade (zero partials — they only ever touched the
// source), and the source still ranks bit-identically to a cold
// rebuild over everything accepted. Nothing is half-applied anywhere a
// query can see.
func TestReshardChaosMidDrain(t *testing.T) {
	p, sets := testPipeline(t)
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}
	queries := evalQueries(sets)
	const from, to = 4, 8
	const seed = uint64(8200)

	src := shard.New(p.Corpus, shard.Config{Shards: from, Ingest: icfg})
	defer src.Close()

	faults := make([]*fault.Backend, to)
	backends := make([]shard.Backend, to)
	for j := 0; j < to; j++ {
		idx := ingest.New(shard.Partition(p.Corpus, j, to), icfg)
		defer idx.Close()
		faults[j] = fault.Wrap(shard.NewLocal(idx))
		backends[j] = faults[j]
	}
	dstCluster := shard.NewCluster(p.World, backends...)

	det := core.NewShardedLiveDetectorOver(p.Collection, src.Cluster(), p.Cfg.Online)
	srv := serve.New(det, serve.Config{CacheSize: 256})
	cutover := false
	mig, err := shard.NewMigration(src.Cluster(), dstCluster, shard.MigrationConfig{
		PageSize: 16,
		Cutover:  func(*shard.Cluster) { cutover = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	det.AttachMigration(mig)

	pre := streamPosts(p, seed+1000, 400)
	for _, post := range pre {
		mig.Ingest(post)
	}
	// The drain will stream dozens of small filtered batches into each
	// destination; dying after a couple of calls lands the kill
	// squarely mid-drain.
	faults[3].KillAfterCalls(2)

	const loadPosts, loadWorkers = 400, 3
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		serve.RunMixedLoad(srv, mig, serve.MixedLoadConfig{
			Queries:       queries,
			Searches:      200,
			SearchWorkers: 4,
			Ingests:       loadPosts,
			IngestWorkers: loadWorkers,
			BaselineEvery: 5,
			Seed:          seed,
		})
	}()
	err = mig.Run()
	wg.Wait()

	if err == nil {
		t.Fatal("migration survived a destination backend killed mid-drain")
	}
	if got := mig.State(); got != shard.MigrationAborted {
		t.Fatalf("migration state %v, want aborted", got)
	}
	if mig.Err() == nil || mig.Stats().Err == "" {
		t.Fatal("aborted migration reports no cause")
	}
	if cutover {
		t.Fatal("cutover ran despite the abort")
	}
	if got := mig.Table(); got.Shards != from || got.Version != 1 {
		t.Fatalf("routing table %+v moved despite the abort", got)
	}
	if det.Cluster() != src.Cluster() {
		t.Fatal("read path left the source cluster despite the abort")
	}

	// The source absorbed every accepted write and still clears the
	// equivalence bar; reads never touched the dying destination.
	src.Quiesce()
	posts := append(append([]microblog.Post{}, pre...), mixedLoadPosts(p, seed, loadPosts, loadWorkers)...)
	cold := core.NewDetector(p.Collection, p.Corpus.ExtendedWith(posts), p.Cfg.Online)
	for _, set := range sets {
		for _, q := range set.Queries {
			gotES, gotTrace := det.Search(q)
			coldES, coldTrace := cold.Search(q)
			expertsIdentical(t, "aborted-vs-cold", q, gotES, coldES)
			if gotTrace.MatchedTweets != coldTrace.MatchedTweets {
				t.Fatalf("%q: matched %d tweets after abort, cold %d",
					q, gotTrace.MatchedTweets, coldTrace.MatchedTweets)
			}
		}
	}
	if pq, se := det.PartialStats(); pq != 0 || se != 0 {
		t.Fatalf("abort degraded reads: partial queries %d, shard errors %d", pq, se)
	}
}

// TestMigrationStateMachine pins the coordinator's lifecycle edges:
// construction validation, phase ordering, idempotent abort, and the
// write path staying on the source after an abort.
func TestMigrationStateMachine(t *testing.T) {
	p, _ := testPipeline(t)
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}
	src := shard.New(p.Corpus, shard.Config{Shards: 2, Ingest: icfg})
	defer src.Close()
	dst := shard.New(p.Corpus, shard.Config{Shards: 4, Ingest: icfg})
	defer dst.Close()

	if _, err := shard.NewMigration(nil, dst.Cluster(), shard.MigrationConfig{}); err == nil {
		t.Fatal("nil source accepted")
	}
	other, err := core.BuildPipeline(core.TinyPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	foreign := shard.New(other.Corpus, shard.Config{Shards: 4, Ingest: icfg})
	defer foreign.Close()
	if _, err := shard.NewMigration(src.Cluster(), foreign.Cluster(), shard.MigrationConfig{}); err == nil ||
		!strings.Contains(err.Error(), "world") {
		t.Fatalf("cross-world migration accepted (err %v)", err)
	}

	mig, err := shard.NewMigration(src.Cluster(), dst.Cluster(), shard.MigrationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mig.State(); got != shard.MigrationIdle {
		t.Fatalf("fresh migration state %v", got)
	}
	if err := mig.Drain(); err == nil {
		t.Fatal("drain before start accepted")
	}
	if err := mig.Cutover(); err == nil {
		t.Fatal("cutover before start accepted")
	}
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	if err := mig.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	mig.Abort()
	mig.Abort() // idempotent
	if got := mig.State(); got != shard.MigrationAborted {
		t.Fatalf("state %v after abort", got)
	}
	if err := mig.Drain(); err == nil {
		t.Fatal("drain after abort accepted")
	}
	// Writes still land on the (authoritative) source after an abort.
	post := streamPosts(p, 9001, 1)[0]
	before := src.Cluster().Epoch()
	if id := mig.Ingest(post); id == 0 && src.Cluster().Epoch() == before {
		t.Fatal("post dropped after abort")
	}
	for _, s := range []shard.MigrationState{shard.MigrationIdle, shard.MigrationDraining,
		shard.MigrationWindowOpen, shard.MigrationDone, shard.MigrationAborted, shard.MigrationState(99)} {
		if s.String() == "" {
			t.Fatalf("state %d has no name", s)
		}
	}
}

// TestHealthFlapDuringMigration pins the Health/Backoff contract a
// retrying drain leans on when a shard flaps mid-migration: however
// many handoff retries hammer AllowAt inside one backoff window,
// exactly one is granted the probe per window; each failed probe
// doubles the window; and the first success restores full health so
// the drain resumes at line rate. (Drain streams consult the same
// per-backend Health the epoch sampler uses, so a flapping shard
// costs one dial per window, not one per page retry.)
func TestHealthFlapDuringMigration(t *testing.T) {
	h := shard.NewHealth(shard.Backoff{Initial: 100 * time.Millisecond, Max: time.Second})
	t0 := time.Unix(1000, 0)

	h.FailAt(t0) // the shard flaps as the drain starts
	if h.Healthy() {
		t.Fatal("healthy immediately after a failure")
	}
	if h.AllowAt(t0.Add(50 * time.Millisecond)) {
		t.Fatal("probe granted inside the backoff window")
	}

	// A drain retry loop plus concurrent epoch samplers all poll at
	// window expiry: exactly one caller wins the probe.
	granted := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	at := t0.Add(101 * time.Millisecond)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if h.AllowAt(at) {
				mu.Lock()
				granted++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if granted != 1 {
		t.Fatalf("%d probes granted at window expiry, want exactly 1", granted)
	}

	// The granted probe fails: the window doubles, and the whole next
	// window grants nothing — the retrying drain is refused cheaply.
	h.FailAt(at)
	if h.AllowAt(at.Add(150 * time.Millisecond)) {
		t.Fatal("probe granted inside the doubled window")
	}
	if !h.AllowAt(at.Add(201 * time.Millisecond)) {
		t.Fatal("no probe granted after the doubled window expired")
	}
	if h.Failures() != 2 {
		t.Fatalf("recorded %d failures, want 2", h.Failures())
	}

	// The flap ends: one success restores full health and the drain's
	// next page is admitted immediately.
	h.Ok()
	if !h.Healthy() || !h.AllowAt(at.Add(202*time.Millisecond)) || h.Failures() != 0 {
		t.Fatal("success did not restore full health")
	}
}
