// Live resharding: an online N→M shard migration that holds the same
// bar every distribution step before it held — the quiesced deployment
// at M shards ranks bit-identically to a cold rebuild at M. ShardOf is
// restart-stable by design, so changing the shard count reassigns
// authors wholesale; the Migration coordinator below moves every
// author's post log from its old owner to its new one while the
// deployment keeps serving reads and accepting writes.
//
// The scheme is drain + catch-up, sequenced by the logical write
// epoch of each source shard (its ingested-log length — global tweet
// ids are append-ordered, so "everything below offset k" is a
// prefix-closed write set):
//
//   - Start pins the per-shard drain floor at the base-corpus boundary
//     (the destination cluster is built over Partition(base, j, M), so
//     the base never travels) and freezes the from/to routing tables.
//   - Drain pages each source shard's ingested log through the
//     LogPager surface — over the wire that is the existing OpTweets
//     paging, server-side filtered to the destination shard — and
//     batch-ingests it into the destination. Writes keep landing on
//     the source; each catch-up round re-reads the source totals and
//     drains the delta, so the gap only shrinks.
//   - When a round moves nothing, the dual-read window opens: both
//     sides hold provably the same post multiset as of the last cut.
//     Reads keep routing to exactly one side — the source, complete by
//     construction — never both, because a query answered half from
//     each side would double-count denominators and break rankings.
//     NoteRead counts queries served inside the window.
//   - Cutover takes the write lock (writes pause for one bounded final
//     catch-up; reads never stop), drains the residue, and only swaps
//     the routing table after source and destination epochs agree:
//     every source shard's total equals its drained offset, and every
//     observable destination shard's total equals its base plus
//     exactly the posts handed to it. Then the swap is one atomic
//     pointer store and subsequent writes route at M.
//
// Any failure — a destination backend dying mid-drain, an epoch
// mismatch at the gate — aborts the migration cleanly: the source
// cluster received every accepted write and stays authoritative, the
// half-built destination is discarded by the caller, and nothing is
// half-applied anywhere reads can see it.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/microblog"
	"repro/internal/obs"
	"repro/internal/world"
)

// RoutingTable is one immutable version of the author→shard mapping:
// ShardOf at a pinned shard count, tagged with a version so the
// serving layer can report which table a deployment is routing on and
// a migration can prove it swapped exactly once. Versions are
// monotone per deployment; the Migration assigns to = from+1.
type RoutingTable struct {
	// Version is the table's monotone version number.
	Version uint64
	// Shards is the shard count the table routes over.
	Shards int
}

// Owner returns the shard that owns the author under this table.
func (t RoutingTable) Owner(u world.UserID) int { return ShardOf(u, t.Shards) }

// LogPager is optionally implemented by backends whose ingested post
// log can be paged out for handoff — Local reads its own snapshots,
// transport.RemoteShard reuses the OpTweets paging. It is the entire
// surface a Migration needs from a source shard.
type LogPager interface {
	// PagePosts returns one page of the shard's post log starting at
	// global id from. scanned is how many ids the page consumed
	// (advance from by scanned, not len(posts)); total is the shard's
	// current log length. When filterShards > 0 only posts whose
	// author maps to filterIdx under ShardOf(·, filterShards) are
	// returned — the per-author handoff filter, applied where the
	// posts live so only moving content crosses the wire. max bounds
	// scanned; max <= 0 returns an empty page (a cheap total probe).
	PagePosts(from, max, filterShards, filterIdx int) (posts []microblog.Post, scanned, total int, err error)
	// BasePosts returns the shard's frozen base-corpus size — the
	// drain floor: ingested content occupies ids [BasePosts, total).
	BasePosts() (int, error)
}

// PagePosts implements LogPager over the local index's snapshot — the
// same read the remote OpTweets handler runs server-side.
func (l *Local) PagePosts(from, max, filterShards, filterIdx int) ([]microblog.Post, int, int, error) {
	snap := l.idx.Snapshot()
	total := snap.NumTweets()
	if max <= 0 || from >= total {
		return nil, 0, total, nil
	}
	var posts []microblog.Post
	scanned := 0
	for gid := from; gid < total && scanned < max; gid++ {
		scanned++
		tw := snap.Tweet(microblog.TweetID(gid))
		if filterShards > 0 && ShardOf(tw.Author, filterShards) != filterIdx {
			continue
		}
		posts = append(posts, microblog.Post{
			Author:       tw.Author,
			Text:         tw.Text,
			Mentions:     tw.Mentions,
			RetweetCount: tw.RetweetCount,
			Topic:        tw.Topic,
		})
	}
	return posts, scanned, total, nil
}

// BasePosts implements LogPager.
func (l *Local) BasePosts() (int, error) { return l.idx.Base().NumTweets(), nil }

var _ LogPager = (*Local)(nil)

// MigrationState is where a Migration is in its lifecycle.
type MigrationState int32

// The migration state machine: Idle → Draining → WindowOpen → Done,
// with Aborted reachable from every non-terminal state.
const (
	// MigrationIdle: constructed, Start not yet called.
	MigrationIdle MigrationState = iota
	// MigrationDraining: handoff streams are paging the source logs.
	MigrationDraining
	// MigrationWindowOpen: the dual-read window — a catch-up round
	// moved nothing, so both sides hold the same posts as of the last
	// cut; reads still route to the source, and NoteRead counts them.
	MigrationWindowOpen
	// MigrationDone: the routing table swapped; the destination owns
	// all reads and writes.
	MigrationDone
	// MigrationAborted: the migration failed or was cancelled; the
	// source is untouched and authoritative, the destination is trash.
	MigrationAborted
)

// String names the state for stats and logs.
func (s MigrationState) String() string {
	switch s {
	case MigrationIdle:
		return "idle"
	case MigrationDraining:
		return "draining"
	case MigrationWindowOpen:
		return "window-open"
	case MigrationDone:
		return "done"
	case MigrationAborted:
		return "aborted"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// ErrMigrationAborted is returned by migration phases that found the
// migration already aborted (by a fault in another stream, or by
// Abort). The underlying cause is available from Err.
var ErrMigrationAborted = errors.New("shard: migration aborted")

// MigrationConfig tunes a Migration. The zero value works.
type MigrationConfig struct {
	// PageSize bounds how many log entries one handoff page scans.
	// Zero means 1024.
	PageSize int
	// MaxCatchUp caps how many catch-up rounds Drain runs before
	// handing the (still shrinking) residue to Cutover's final locked
	// round. Zero means 8.
	MaxCatchUp int
	// FromVersion is the source routing table's version; the
	// destination table gets FromVersion+1. Zero means 1.
	FromVersion uint64
	// Cutover, when non-nil, runs under the write lock at the instant
	// the routing table swaps — wire it to
	// core.ShardedLiveDetector.SwapCluster so the read path moves in
	// the same atomic step as the write path.
	Cutover func(to *Cluster)
	// Obs, when non-nil, exports migration progress gauges:
	// reshard_state, reshard_authors_moving, reshard_posts_streamed,
	// reshard_bytes_streamed, reshard_catchup_rounds and
	// reshard_window_hits.
	Obs *obs.Registry
}

// MigrationStats is a point-in-time snapshot of migration progress.
type MigrationStats struct {
	// State is the migration's current lifecycle state.
	State MigrationState
	// FromShards and ToShards are the two shard counts.
	FromShards, ToShards int
	// TableVersion is the routing table version currently in force
	// (from before cutover, to after).
	TableVersion uint64
	// AuthorsMoving counts authors whose owner changes between the
	// tables — fixed at Start.
	AuthorsMoving int64
	// PostsStreamed and BytesStreamed measure drained handoff volume
	// (bytes are approximate payload bytes, not wire frames).
	PostsStreamed, BytesStreamed int64
	// CatchUpRounds counts completed drain rounds, including the final
	// locked round inside Cutover.
	CatchUpRounds int64
	// WindowHits counts queries NoteRead observed inside the dual-read
	// window.
	WindowHits int64
	// Err is the abort cause, empty unless State is aborted.
	Err string
}

// Migration coordinates one online N→M reshard between two clusters
// over the same world: src (serving, at N) and dst (freshly built over
// Partition(base, j, M), at M). All writes during the migration must
// flow through Migration.Ingest — it is the write path's routing
// table. Reads keep going to the source cluster until the Cutover
// callback swaps them. Safe for concurrent use.
type Migration struct {
	src, dst *Cluster
	cfg      MigrationConfig

	from, to RoutingTable
	table    atomic.Pointer[RoutingTable]

	// mu orders writes against state transitions: Ingest holds RLock,
	// Start/Cutover/Abort hold Lock. state is atomic so drain streams
	// and NoteRead can observe it without the lock.
	mu    sync.RWMutex
	state atomic.Int32

	drained  []atomic.Int64 // per-src-shard drain offset (global ids)
	received []atomic.Int64 // per-dst-shard posts handed over

	authorsMoving atomic.Int64
	postsStreamed atomic.Int64
	bytesStreamed atomic.Int64
	rounds        atomic.Int64
	windowHits    atomic.Int64

	errMu    sync.Mutex
	abortErr error
}

// NewMigration validates the pair of clusters and returns an idle
// Migration. Every source backend must implement LogPager (Local and
// transport.RemoteShard both do); the clusters must share a world.
func NewMigration(src, dst *Cluster, cfg MigrationConfig) (*Migration, error) {
	if src == nil || dst == nil {
		return nil, errors.New("shard: migration needs both clusters")
	}
	if src.World() != dst.World() {
		return nil, errors.New("shard: migration clusters disagree on the world")
	}
	for i := 0; i < src.NumShards(); i++ {
		if _, ok := src.Backend(i).(LogPager); !ok {
			return nil, fmt.Errorf("shard: source shard %d cannot page its log", i)
		}
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 1024
	}
	if cfg.MaxCatchUp <= 0 {
		cfg.MaxCatchUp = 8
	}
	if cfg.FromVersion == 0 {
		cfg.FromVersion = 1
	}
	m := &Migration{
		src:      src,
		dst:      dst,
		cfg:      cfg,
		from:     RoutingTable{Version: cfg.FromVersion, Shards: src.NumShards()},
		to:       RoutingTable{Version: cfg.FromVersion + 1, Shards: dst.NumShards()},
		drained:  make([]atomic.Int64, src.NumShards()),
		received: make([]atomic.Int64, dst.NumShards()),
	}
	m.table.Store(&m.from)
	if reg := cfg.Obs; reg != nil {
		reg.RegisterFunc("reshard_state", func() int64 { return int64(m.state.Load()) })
		reg.RegisterFunc("reshard_authors_moving", m.authorsMoving.Load)
		reg.RegisterFunc("reshard_posts_streamed", m.postsStreamed.Load)
		reg.RegisterFunc("reshard_bytes_streamed", m.bytesStreamed.Load)
		reg.RegisterFunc("reshard_catchup_rounds", m.rounds.Load)
		reg.RegisterFunc("reshard_window_hits", m.windowHits.Load)
	}
	return m, nil
}

// Table returns the routing table currently in force: from before
// cutover, to after.
func (m *Migration) Table() RoutingTable { return *m.table.Load() }

// State returns the migration's current lifecycle state.
func (m *Migration) State() MigrationState { return MigrationState(m.state.Load()) }

// Err returns the abort cause, nil unless the migration aborted.
func (m *Migration) Err() error {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	return m.abortErr
}

// fail records the first abort cause and moves the state machine to
// Aborted from whatever non-terminal state it is in.
func (m *Migration) fail(err error) {
	m.errMu.Lock()
	if m.abortErr == nil {
		m.abortErr = err
	}
	m.errMu.Unlock()
	for {
		s := m.state.Load()
		if MigrationState(s) == MigrationDone || MigrationState(s) == MigrationAborted {
			return
		}
		if m.state.CompareAndSwap(s, int32(MigrationAborted)) {
			return
		}
	}
}

// Abort cancels the migration: the source stays authoritative, the
// destination should be discarded. Idempotent; aborting a Done
// migration is a no-op.
func (m *Migration) Abort() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.State() != MigrationDone {
		m.fail(errors.New("shard: migration cancelled"))
	}
}

// Start freezes the drain floors (each source shard's base boundary)
// and opens the migration: writes keep routing to the source, and the
// handoff streams may begin.
func (m *Migration) Start() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s := m.State(); s != MigrationIdle {
		return fmt.Errorf("shard: migration start in state %v", s)
	}
	for i := 0; i < m.src.NumShards(); i++ {
		base, err := m.src.Backend(i).(LogPager).BasePosts()
		if err != nil {
			m.fail(fmt.Errorf("shard: migration start: shard %d base: %w", i, err))
			return m.Err()
		}
		m.drained[i].Store(int64(base))
	}
	var moving int64
	users := m.src.World().Users
	for u := range users {
		uid := world.UserID(u)
		if m.from.Owner(uid) != m.to.Owner(uid) {
			moving++
		}
	}
	m.authorsMoving.Store(moving)
	m.state.Store(int32(MigrationDraining))
	return nil
}

// pairFeasible reports whether any author can move from source shard i
// of n to destination shard j of m. Because ShardOf is a plain modular
// hash, integer-ratio reshards have sparse feasible pairs: growing to
// m = k·n, an author of source i can only land on j ≡ i (mod n);
// shrinking from n = k·m, all of source i lands on j = i mod m. Other
// ratios admit every pair.
func pairFeasible(i, n, j, m int) bool {
	switch {
	case m >= n && m%n == 0:
		return j%n == i
	case n > m && n%m == 0:
		return i%m == j
	default:
		return true
	}
}

// approxPostBytes estimates a post's handoff payload size.
func approxPostBytes(p *microblog.Post) int64 {
	return int64(len(p.Text) + 8*len(p.Mentions) + 16)
}

// drainRange streams source shard i's log window [from, to) into every
// feasible destination shard, paging with the per-author filter so
// only that destination's content is returned. locked is true inside
// Cutover's final round, where an asynchronous abort can no longer
// happen (the write lock is held).
func (m *Migration) drainRange(i, from, to int, locked bool) error {
	if from >= to {
		return nil
	}
	pager := m.src.Backend(i).(LogPager)
	n, mm := m.from.Shards, m.to.Shards
	for j := 0; j < mm; j++ {
		if !pairFeasible(i, n, j, mm) {
			continue
		}
		dst := m.dst.Backend(j)
		for at := from; at < to; {
			if !locked && m.State() != MigrationDraining {
				return ErrMigrationAborted
			}
			max := m.cfg.PageSize
			if rem := to - at; rem < max {
				max = rem
			}
			posts, scanned, _, err := pager.PagePosts(at, max, mm, j)
			if err != nil {
				return fmt.Errorf("shard: drain %d→%d page at %d: %w", i, j, at, err)
			}
			if scanned == 0 {
				return fmt.Errorf("shard: drain %d→%d: log shrank at %d (total below cut %d)", i, j, at, to)
			}
			if len(posts) > 0 {
				if err := dst.IngestBatch(posts); err != nil {
					return fmt.Errorf("shard: drain %d→%d ingest at %d: %w", i, j, at, err)
				}
				var bytes int64
				for k := range posts {
					bytes += approxPostBytes(&posts[k])
				}
				m.postsStreamed.Add(int64(len(posts)))
				m.bytesStreamed.Add(bytes)
				m.received[j].Add(int64(len(posts)))
			}
			at += scanned
		}
	}
	m.drained[i].Store(int64(to))
	return nil
}

// drainPass runs one catch-up round: every source shard drains, in
// parallel, from its drained offset up to its current total. It
// returns how many log entries the round consumed across all shards.
func (m *Migration) drainPass(locked bool) (int64, error) {
	n := m.src.NumShards()
	var wg sync.WaitGroup
	var consumed atomic.Int64
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		from := int(m.drained[i].Load())
		_, _, total, err := m.src.Backend(i).(LogPager).PagePosts(from, 0, 0, 0)
		if err != nil {
			return consumed.Load(), fmt.Errorf("shard: drain probe shard %d: %w", i, err)
		}
		if total <= from {
			continue
		}
		wg.Add(1)
		go func(i, from, total int) {
			defer wg.Done()
			errs[i] = m.drainRange(i, from, total, locked)
			if errs[i] == nil {
				consumed.Add(int64(total - from))
			}
		}(i, from, total)
	}
	wg.Wait()
	m.rounds.Add(1)
	for _, err := range errs {
		if err != nil {
			return consumed.Load(), err
		}
	}
	return consumed.Load(), nil
}

// Drain runs catch-up rounds until one moves nothing (the dual-read
// window opens) or MaxCatchUp rounds have run (Cutover will drain the
// residue under the write lock). Writes continue throughout; any
// destination failure aborts the migration with the source untouched.
func (m *Migration) Drain() error {
	if s := m.State(); s != MigrationDraining {
		if s == MigrationAborted {
			return m.abortCause()
		}
		return fmt.Errorf("shard: migration drain in state %v", s)
	}
	for r := 0; r < m.cfg.MaxCatchUp; r++ {
		consumed, err := m.drainPass(false)
		if err != nil {
			m.fail(err)
			return m.abortCause()
		}
		if consumed == 0 {
			break
		}
	}
	if !m.state.CompareAndSwap(int32(MigrationDraining), int32(MigrationWindowOpen)) {
		return m.abortCause()
	}
	return nil
}

// abortCause returns the recorded abort cause, falling back to
// ErrMigrationAborted.
func (m *Migration) abortCause() error {
	if err := m.Err(); err != nil {
		return err
	}
	return ErrMigrationAborted
}

// Cutover completes the migration: under the write lock (writes pause,
// reads do not) it drains the final residue, verifies that source and
// destination epochs agree — every source shard's total equals its
// drained offset, every observable destination shard's total equals
// its base plus exactly the posts handed to it — and only then swaps
// the routing table and runs the Cutover callback. Any disagreement
// aborts with the source authoritative.
func (m *Migration) Cutover() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s := m.State(); s != MigrationWindowOpen {
		if s == MigrationAborted {
			return m.abortCause()
		}
		return fmt.Errorf("shard: migration cutover in state %v", s)
	}
	if _, err := m.drainPass(true); err != nil {
		m.fail(err)
		return m.abortCause()
	}
	for i := 0; i < m.src.NumShards(); i++ {
		_, _, total, err := m.src.Backend(i).(LogPager).PagePosts(0, 0, 0, 0)
		if err != nil {
			m.fail(fmt.Errorf("shard: cutover probe shard %d: %w", i, err))
			return m.abortCause()
		}
		if got := m.drained[i].Load(); got != int64(total) {
			m.fail(fmt.Errorf("shard: cutover gate: source shard %d epoch %d, drained %d", i, total, got))
			return m.abortCause()
		}
	}
	for j := 0; j < m.dst.NumShards(); j++ {
		pager, ok := m.dst.Backend(j).(LogPager)
		if !ok {
			continue
		}
		base, err := pager.BasePosts()
		if err != nil {
			m.fail(fmt.Errorf("shard: cutover probe dst %d: %w", j, err))
			return m.abortCause()
		}
		_, _, total, err := pager.PagePosts(0, 0, 0, 0)
		if err != nil {
			m.fail(fmt.Errorf("shard: cutover probe dst %d: %w", j, err))
			return m.abortCause()
		}
		if want := int64(base) + m.received[j].Load(); int64(total) != want {
			m.fail(fmt.Errorf("shard: cutover gate: dst shard %d epoch %d, want %d", j, total, want))
			return m.abortCause()
		}
	}
	m.state.Store(int32(MigrationDone))
	m.table.Store(&m.to)
	if m.cfg.Cutover != nil {
		m.cfg.Cutover(m.dst)
	}
	return nil
}

// Run is Start, Drain and Cutover in sequence — the whole migration as
// one call for callers that do not need to observe the window.
func (m *Migration) Run() error {
	if err := m.Start(); err != nil {
		return err
	}
	if err := m.Drain(); err != nil {
		return err
	}
	return m.Cutover()
}

// NoteRead records one query routed while the dual-read window is
// open; the read path calls it on every query so the window is
// observable (reshard_window_hits).
func (m *Migration) NoteRead() {
	if m.State() == MigrationWindowOpen {
		m.windowHits.Add(1)
	}
}

// Ingest implements serve.Sink as the deployment's write path during
// the migration: writes route by the routing table in force — source
// cluster before cutover, destination after — under a read lock so
// Cutover's gate can exclude in-flight writes. A routing failure
// aborts the migration (observable via Err) and drops the post.
func (m *Migration) Ingest(p microblog.Post) microblog.TweetID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c := m.src
	if m.State() == MigrationDone {
		c = m.dst
	}
	id, err := c.Ingest(p)
	if err != nil {
		m.fail(fmt.Errorf("shard: migration write: %w", err))
		return 0
	}
	return id
}

// IngestBatch routes a batch like Ingest routes one post.
func (m *Migration) IngestBatch(posts []microblog.Post) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c := m.src
	if m.State() == MigrationDone {
		c = m.dst
	}
	if err := c.IngestBatch(posts); err != nil {
		m.fail(fmt.Errorf("shard: migration write: %w", err))
		return err
	}
	return nil
}

// World implements serve.Sink; both clusters share it.
func (m *Migration) World() *world.World { return m.src.World() }

// Epoch implements serve.Sink: the epoch digest of whichever cluster
// currently owns writes.
func (m *Migration) Epoch() uint64 {
	if m.State() == MigrationDone {
		return m.dst.Epoch()
	}
	return m.src.Epoch()
}

// Stats snapshots migration progress.
func (m *Migration) Stats() MigrationStats {
	st := MigrationStats{
		State:         m.State(),
		FromShards:    m.from.Shards,
		ToShards:      m.to.Shards,
		TableVersion:  m.Table().Version,
		AuthorsMoving: m.authorsMoving.Load(),
		PostsStreamed: m.postsStreamed.Load(),
		BytesStreamed: m.bytesStreamed.Load(),
		CatchUpRounds: m.rounds.Load(),
		WindowHits:    m.windowHits.Load(),
	}
	if err := m.Err(); err != nil {
		st.Err = err.Error()
	}
	return st
}
