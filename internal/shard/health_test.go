package shard_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
)

// TestHealthWindowsDoubleAndDecay pins the backoff state machine with
// explicit clocks: windows start at Initial, double per consecutive
// failure up to Max, grant exactly one probe at each expiry, and decay
// all the way back to healthy on one success.
func TestHealthWindowsDoubleAndDecay(t *testing.T) {
	cfg := shard.Backoff{Initial: 100 * time.Millisecond, Max: 350 * time.Millisecond}
	h := shard.NewHealth(cfg)
	t0 := time.Unix(1000, 0)

	if !h.Healthy() || !h.AllowAt(t0) {
		t.Fatal("fresh health must allow everything")
	}
	h.FailAt(t0)
	if h.Healthy() {
		t.Fatal("healthy after a failure")
	}
	if h.AllowAt(t0.Add(50 * time.Millisecond)) {
		t.Fatal("probe allowed inside the initial window")
	}
	if !h.AllowAt(t0.Add(110 * time.Millisecond)) {
		t.Fatal("probe refused after the initial window expired")
	}
	// The granted probe fails: the window doubles to 200ms.
	t1 := t0.Add(110 * time.Millisecond)
	h.FailAt(t1)
	if h.AllowAt(t1.Add(150 * time.Millisecond)) {
		t.Fatal("probe allowed inside the doubled window")
	}
	if !h.AllowAt(t1.Add(210 * time.Millisecond)) {
		t.Fatal("probe refused after the doubled window")
	}
	// Two more failures: 350ms cap (not 400, not 800).
	t2 := t1.Add(210 * time.Millisecond)
	h.FailAt(t2)
	t3 := t2.Add(400 * time.Millisecond)
	if !h.AllowAt(t3) {
		t.Fatal("probe refused after the capped window")
	}
	h.FailAt(t3)
	if h.AllowAt(t3.Add(349 * time.Millisecond)) {
		t.Fatal("window exceeded the Max cap")
	}
	if got := h.Failures(); got != 4 {
		t.Fatalf("consecutive failures %d, want 4", got)
	}
	// One success decays everything back to healthy.
	h.Ok()
	if !h.Healthy() || h.Failures() != 0 {
		t.Fatal("Ok did not restore full health")
	}
	h.FailAt(t3)
	if h.AllowAt(t3.Add(50 * time.Millisecond)) {
		t.Fatal("window after recovery did not restart from Initial")
	}
	if !h.AllowAt(t3.Add(110 * time.Millisecond)) {
		t.Fatal("restarted Initial window refused its probe")
	}
}

// TestHealthOneProbePerWindow pins the concurrency contract the
// dial-counting tests rely on: when a window expires, exactly one of
// many racing callers is granted the probe.
func TestHealthOneProbePerWindow(t *testing.T) {
	h := shard.NewHealth(shard.Backoff{Initial: time.Hour, Max: time.Hour})
	t0 := time.Unix(2000, 0)
	h.FailAt(t0)

	expiry := t0.Add(time.Hour + time.Second)
	const callers = 32
	granted := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer wg.Done()
			if h.AllowAt(expiry) {
				mu.Lock()
				granted++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if granted != 1 {
		t.Fatalf("%d racing callers were granted probes, want exactly 1", granted)
	}
}

// TestHealthZeroConfigDefaults pins that a zero Backoff takes the
// documented defaults instead of a zero-length (always-open) window.
func TestHealthZeroConfigDefaults(t *testing.T) {
	h := shard.NewHealth(shard.Backoff{})
	t0 := time.Unix(3000, 0)
	h.FailAt(t0)
	if h.AllowAt(t0.Add(100 * time.Millisecond)) {
		t.Fatal("zero-config window shorter than the 250ms default")
	}
	if !h.AllowAt(t0.Add(300 * time.Millisecond)) {
		t.Fatal("zero-config window longer than the 250ms default")
	}
}
