package shard_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/expertise"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/shard"
	"repro/internal/world"
)

var (
	pipeOnce sync.Once
	pipe     *core.Pipeline
	pipeSets []eval.QuerySet
	pipeErr  error
)

func testPipeline(t testing.TB) (*core.Pipeline, []eval.QuerySet) {
	t.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = core.BuildPipeline(core.TinyPipelineConfig())
		if pipeErr == nil {
			pipeSets = eval.BuildQuerySets(pipe.World, pipe.Log,
				eval.SetSizes{PerCategory: 25, Top: 60})
		}
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe, pipeSets
}

func streamPosts(p *core.Pipeline, seed uint64, n int) []microblog.Post {
	s := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(seed))
	posts := make([]microblog.Post, n)
	for i := range posts {
		posts[i] = s.Next()
	}
	return posts
}

func expertsIdentical(t *testing.T, label, query string, got, want []expertise.Expert) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s %q: %d results, reference has %d", label, query, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s %q rank %d:\n  got  %+v\n  want %+v", label, query, i, got[i], want[i])
		}
	}
}

// TestShardOfStability pins the routing hash: it must be a pure
// function of (author, shard count) — stable across routers, processes
// and restarts — and the golden values guard the hash constants against
// accidental change (a constant change would silently re-partition
// every deployed stream on upgrade).
func TestShardOfStability(t *testing.T) {
	for n := 1; n <= 16; n++ {
		for u := world.UserID(0); u < 4096; u++ {
			s1 := shard.ShardOf(u, n)
			s2 := shard.ShardOf(u, n)
			if s1 != s2 {
				t.Fatalf("ShardOf(%d, %d) unstable: %d vs %d", u, n, s1, s2)
			}
			if s1 < 0 || s1 >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", u, n, s1)
			}
		}
	}
	// Golden pins computed from the fixed splitmix64 finalizer.
	pins := []struct {
		u    world.UserID
		n    int
		want int
	}{
		{0, 1, 0}, {7, 1, 0},
		{0, 4, 0}, {1, 4, 1}, {2, 4, 2}, {3, 4, 0}, {4, 4, 0},
		{1, 8, 5}, {2, 8, 2}, {3, 8, 0},
		{123456, 8, 0},
	}
	for _, p := range pins {
		if got := shard.ShardOf(p.u, p.n); got != p.want {
			t.Fatalf("golden pin: ShardOf(%d, %d) = %d, want %d (hash constants changed?)",
				p.u, p.n, got, p.want)
		}
	}
}

// TestRouterAuthorAffinity pins the partition invariant: every base
// tweet and every ingested post lands on ShardFor(author)'s index, and
// the shards' contents sum to base plus everything ingested.
func TestRouterAuthorAffinity(t *testing.T) {
	p, _ := testPipeline(t)
	posts := streamPosts(p, 61, 300)
	r := shard.New(p.Corpus, shard.Config{Shards: 4, Ingest: ingest.Config{SealThreshold: 32, CompactFanIn: 3}})
	defer r.Close()
	r.IngestBatch(posts)
	r.Quiesce()

	total := 0
	for i := 0; i < r.NumShards(); i++ {
		snap := r.Shard(i).Snapshot()
		total += snap.NumTweets()
		for gid := 0; gid < snap.NumTweets(); gid++ {
			tw := snap.Tweet(microblog.TweetID(gid))
			if got := r.ShardFor(tw.Author); got != i {
				t.Fatalf("shard %d holds a tweet by author %d, who routes to shard %d",
					i, tw.Author, got)
			}
		}
	}
	if want := p.Corpus.NumTweets() + len(posts); total != want {
		t.Fatalf("shards hold %d tweets in total, want %d", total, want)
	}
	st := r.Stats()
	if st.Ingested != int64(len(posts)) {
		t.Fatalf("router ingested %d, want %d", st.Ingested, len(posts))
	}
	if st.NumTweets != total {
		t.Fatalf("stats count %d tweets, snapshots hold %d", st.NumTweets, total)
	}
}

// TestShardedQuiescedEquivalence is the acceptance bar of the sharded
// subsystem: for every shard count, after routing the same posts and
// quiescing, the sharded detector must return bit-identical ranked
// experts — and matched-tweet counts — to the single-node LiveDetector
// and to a cold core.Detector rebuilt over the same posts, for every
// query of every evaluation query set, on both the e# and the baseline
// path.
func TestShardedQuiescedEquivalence(t *testing.T) {
	p, sets := testPipeline(t)
	posts := streamPosts(p, 41, 400)

	// Single-node live reference (same posts, one index) and cold
	// rebuilt reference.
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}
	single := ingest.New(p.Corpus, icfg)
	defer single.Close()
	single.IngestBatch(posts)
	single.Quiesce()
	live := core.NewLiveDetector(p.Collection, single, p.Cfg.Online)
	cold := core.NewDetector(p.Collection, p.Corpus.ExtendedWith(posts), p.Cfg.Online)

	for _, n := range []int{1, 2, 4, 8} {
		r := shard.New(p.Corpus, shard.Config{Shards: n, Ingest: icfg})
		r.IngestBatch(posts)
		r.Quiesce()
		sharded := core.NewShardedLiveDetector(p.Collection, r, p.Cfg.Online)

		if ev := r.EpochVector(nil); len(ev) != n {
			t.Fatalf("N=%d: epoch vector has %d components", n, len(ev))
		}
		total := 0
		for _, set := range sets {
			for _, q := range set.Queries {
				total++
				gotES, gotTrace := sharded.Search(q)
				wantES, wantTrace := live.Search(q)
				coldES, coldTrace := cold.Search(q)
				expertsIdentical(t, "sharded-vs-live", q, gotES, wantES)
				expertsIdentical(t, "sharded-vs-cold", q, gotES, coldES)
				if gotTrace.MatchedTweets != wantTrace.MatchedTweets ||
					gotTrace.MatchedTweets != coldTrace.MatchedTweets {
					t.Fatalf("N=%d %q: matched %d tweets, live %d, cold %d", n, q,
						gotTrace.MatchedTweets, wantTrace.MatchedTweets, coldTrace.MatchedTweets)
				}
				expertsIdentical(t, "sharded-baseline", q,
					sharded.SearchBaseline(q), live.SearchBaseline(q))
			}
		}
		if total == 0 {
			t.Fatal("no queries in eval sets")
		}
		r.Close()
	}
}

// TestShardedParallelMatchEquivalence forces the shard fan-out onto
// multiple workers and checks it against the sequential sharded path.
// N=2 matters: unlike the per-term heuristic, the shard fan-out
// parallelizes even two shards (a shard's unit of work is heavy).
func TestShardedParallelMatchEquivalence(t *testing.T) {
	p, sets := testPipeline(t)
	for _, shards := range []int{2, 4} {
		r := shard.New(p.Corpus, shard.Config{Shards: shards, Ingest: ingest.Config{SealThreshold: 64, CompactFanIn: 3}})
		r.IngestBatch(streamPosts(p, 43, 300))
		r.Quiesce()

		seqCfg := p.Cfg.Online
		seqCfg.MatchWorkers = 1
		parCfg := p.Cfg.Online
		parCfg.MatchWorkers = 4
		seq := core.NewShardedLiveDetector(p.Collection, r, seqCfg)
		par := core.NewShardedLiveDetector(p.Collection, r, parCfg)
		for _, set := range sets {
			for _, q := range set.Queries {
				want, _ := seq.Search(q)
				got, _ := par.Search(q)
				expertsIdentical(t, "parallel", q, got, want)
			}
		}
		r.Close()
	}
}

// TestEpochVectorSingleShardAdvance pins the vector-epoch contract: one
// ingested post advances exactly its author's shard's component and
// leaves every other component untouched.
func TestEpochVectorSingleShardAdvance(t *testing.T) {
	p, _ := testPipeline(t)
	r := shard.New(p.Corpus, shard.Config{Shards: 4, Ingest: ingest.DefaultConfig()})
	defer r.Close()

	before := r.EpochVector(nil)
	post := streamPosts(p, 67, 1)[0]
	target := r.ShardFor(post.Author)
	r.Ingest(post)
	after := r.EpochVector(nil)

	for i := range before {
		switch {
		case i == target && after[i] != before[i]+1:
			t.Fatalf("author's shard %d epoch %d -> %d, want +1", i, before[i], after[i])
		case i != target && after[i] != before[i]:
			t.Fatalf("untouched shard %d epoch moved %d -> %d", i, before[i], after[i])
		}
	}
	if r.Epoch() != before[0]+before[1]+before[2]+before[3]+1 {
		t.Fatalf("scalar digest %d does not sum the vector", r.Epoch())
	}
}

// TestConcurrentShardedIngestSearch is the -race hammer: concurrent
// routed ingesters and scatter-gather searchers share one router while
// every shard's compactor runs. Afterwards the quiesced router must
// match a cold detector rebuilt from the shards' own final content.
func TestConcurrentShardedIngestSearch(t *testing.T) {
	p, _ := testPipeline(t)
	r := shard.New(p.Corpus, shard.Config{Shards: 4, Ingest: ingest.Config{SealThreshold: 16, CompactFanIn: 3}})
	defer r.Close()
	sharded := core.NewShardedLiveDetector(p.Collection, r, p.Cfg.Online)
	queries := []string{"49ers", "diabetes", "nfl", "dow futures", "coffee", "zzz-none"}
	maxResults := p.Cfg.Online.Expertise.MaxResults

	const ingesters, perIngester = 2, 150
	const searchers, perSearcher = 4, 100
	errs := make(chan error, searchers)
	var wg sync.WaitGroup
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(uint64(200+g)))
			for i := 0; i < perIngester; i++ {
				r.Ingest(stream.Next())
			}
		}(g)
	}
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSearcher; i++ {
				q := queries[(g+i)%len(queries)]
				var experts []expertise.Expert
				if i%3 == 0 {
					experts = sharded.SearchBaseline(q)
				} else {
					experts, _ = sharded.Search(q)
				}
				if maxResults > 0 && len(experts) > maxResults {
					errs <- errInvariant("result cap exceeded")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	r.Quiesce()
	if st := r.Stats(); st.Ingested != ingesters*perIngester {
		t.Fatalf("ingested %d posts, want %d", st.Ingested, ingesters*perIngester)
	}

	// Cold rebuild from the shards' own final content.
	all := append([]microblog.Tweet(nil), p.Corpus.Tweets()...)
	for i := 0; i < r.NumShards(); i++ {
		snap := r.Shard(i).Snapshot()
		base := r.Shard(i).Base().NumTweets()
		for gid := base; gid < snap.NumTweets(); gid++ {
			all = append(all, *snap.Tweet(microblog.TweetID(gid)))
		}
	}
	cold := core.NewDetector(p.Collection, microblog.FromTweets(p.World, all), p.Cfg.Online)
	for _, q := range queries {
		got, _ := sharded.Search(q)
		want, _ := cold.Search(q)
		expertsIdentical(t, "post-hammer", q, got, want)
	}
}

type errInvariant string

func (e errInvariant) Error() string { return string(e) }
