package shard_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/expertise"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/shard"
	"repro/internal/world"
)

var (
	pipeOnce sync.Once
	pipe     *core.Pipeline
	pipeSets []eval.QuerySet
	pipeErr  error
)

func testPipeline(t testing.TB) (*core.Pipeline, []eval.QuerySet) {
	t.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = core.BuildPipeline(core.TinyPipelineConfig())
		if pipeErr == nil {
			pipeSets = eval.BuildQuerySets(pipe.World, pipe.Log,
				eval.SetSizes{PerCategory: 25, Top: 60})
		}
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe, pipeSets
}

func streamPosts(p *core.Pipeline, seed uint64, n int) []microblog.Post {
	s := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(seed))
	posts := make([]microblog.Post, n)
	for i := range posts {
		posts[i] = s.Next()
	}
	return posts
}

func expertsIdentical(t *testing.T, label, query string, got, want []expertise.Expert) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s %q: %d results, reference has %d", label, query, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s %q rank %d:\n  got  %+v\n  want %+v", label, query, i, got[i], want[i])
		}
	}
}

// TestShardOfStability pins the routing hash: it must be a pure
// function of (author, shard count) — stable across routers, processes
// and restarts — and the golden values guard the hash constants against
// accidental change (a constant change would silently re-partition
// every deployed stream on upgrade).
func TestShardOfStability(t *testing.T) {
	for n := 1; n <= 16; n++ {
		for u := world.UserID(0); u < 4096; u++ {
			s1 := shard.ShardOf(u, n)
			s2 := shard.ShardOf(u, n)
			if s1 != s2 {
				t.Fatalf("ShardOf(%d, %d) unstable: %d vs %d", u, n, s1, s2)
			}
			if s1 < 0 || s1 >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", u, n, s1)
			}
		}
	}
	// Golden pins computed from the fixed splitmix64 finalizer.
	pins := []struct {
		u    world.UserID
		n    int
		want int
	}{
		{0, 1, 0}, {7, 1, 0},
		{0, 4, 0}, {1, 4, 1}, {2, 4, 2}, {3, 4, 0}, {4, 4, 0},
		{1, 8, 5}, {2, 8, 2}, {3, 8, 0},
		{123456, 8, 0},
	}
	for _, p := range pins {
		if got := shard.ShardOf(p.u, p.n); got != p.want {
			t.Fatalf("golden pin: ShardOf(%d, %d) = %d, want %d (hash constants changed?)",
				p.u, p.n, got, p.want)
		}
	}
}

// TestRouterAuthorAffinity pins the partition invariant: every base
// tweet and every ingested post lands on ShardFor(author)'s index, and
// the shards' contents sum to base plus everything ingested.
func TestRouterAuthorAffinity(t *testing.T) {
	p, _ := testPipeline(t)
	posts := streamPosts(p, 61, 300)
	r := shard.New(p.Corpus, shard.Config{Shards: 4, Ingest: ingest.Config{SealThreshold: 32, CompactFanIn: 3}})
	defer r.Close()
	r.IngestBatch(posts)
	r.Quiesce()

	total := 0
	for i := 0; i < r.NumShards(); i++ {
		snap := r.Shard(i).Snapshot()
		total += snap.NumTweets()
		for gid := 0; gid < snap.NumTweets(); gid++ {
			tw := snap.Tweet(microblog.TweetID(gid))
			if got := r.ShardFor(tw.Author); got != i {
				t.Fatalf("shard %d holds a tweet by author %d, who routes to shard %d",
					i, tw.Author, got)
			}
		}
	}
	if want := p.Corpus.NumTweets() + len(posts); total != want {
		t.Fatalf("shards hold %d tweets in total, want %d", total, want)
	}
	st := r.Stats()
	if st.Ingested != int64(len(posts)) {
		t.Fatalf("router ingested %d, want %d", st.Ingested, len(posts))
	}
	if st.NumTweets != total {
		t.Fatalf("stats count %d tweets, snapshots hold %d", st.NumTweets, total)
	}
}

// TestShardedQuiescedEquivalence is the acceptance bar of the sharded
// subsystem: for every shard count, after routing the same posts and
// quiescing, the sharded detector must return bit-identical ranked
// experts — and matched-tweet counts — to the single-node LiveDetector
// and to a cold core.Detector rebuilt over the same posts, for every
// query of every evaluation query set, on both the e# and the baseline
// path.
func TestShardedQuiescedEquivalence(t *testing.T) {
	p, sets := testPipeline(t)
	posts := streamPosts(p, 41, 400)

	// Single-node live reference (same posts, one index) and cold
	// rebuilt reference.
	icfg := ingest.Config{SealThreshold: 32, CompactFanIn: 3}
	single := ingest.New(p.Corpus, icfg)
	defer single.Close()
	single.IngestBatch(posts)
	single.Quiesce()
	live := core.NewLiveDetector(p.Collection, single, p.Cfg.Online)
	cold := core.NewDetector(p.Collection, p.Corpus.ExtendedWith(posts), p.Cfg.Online)

	for _, n := range []int{1, 2, 4, 8} {
		r := shard.New(p.Corpus, shard.Config{Shards: n, Ingest: icfg})
		r.IngestBatch(posts)
		r.Quiesce()
		sharded := core.NewShardedLiveDetector(p.Collection, r, p.Cfg.Online)

		if ev := r.EpochVector(nil); len(ev) != n {
			t.Fatalf("N=%d: epoch vector has %d components", n, len(ev))
		}
		total := 0
		for _, set := range sets {
			for _, q := range set.Queries {
				total++
				gotES, gotTrace := sharded.Search(q)
				wantES, wantTrace := live.Search(q)
				coldES, coldTrace := cold.Search(q)
				expertsIdentical(t, "sharded-vs-live", q, gotES, wantES)
				expertsIdentical(t, "sharded-vs-cold", q, gotES, coldES)
				if gotTrace.MatchedTweets != wantTrace.MatchedTweets ||
					gotTrace.MatchedTweets != coldTrace.MatchedTweets {
					t.Fatalf("N=%d %q: matched %d tweets, live %d, cold %d", n, q,
						gotTrace.MatchedTweets, wantTrace.MatchedTweets, coldTrace.MatchedTweets)
				}
				expertsIdentical(t, "sharded-baseline", q,
					sharded.SearchBaseline(q), live.SearchBaseline(q))
			}
		}
		if total == 0 {
			t.Fatal("no queries in eval sets")
		}
		r.Close()
	}
}

// TestShardedParallelMatchEquivalence forces the shard fan-out onto
// multiple workers and checks it against the sequential sharded path.
// N=2 matters: unlike the per-term heuristic, the shard fan-out
// parallelizes even two shards (a shard's unit of work is heavy).
func TestShardedParallelMatchEquivalence(t *testing.T) {
	p, sets := testPipeline(t)
	for _, shards := range []int{2, 4} {
		r := shard.New(p.Corpus, shard.Config{Shards: shards, Ingest: ingest.Config{SealThreshold: 64, CompactFanIn: 3}})
		r.IngestBatch(streamPosts(p, 43, 300))
		r.Quiesce()

		seqCfg := p.Cfg.Online
		seqCfg.MatchWorkers = 1
		parCfg := p.Cfg.Online
		parCfg.MatchWorkers = 4
		seq := core.NewShardedLiveDetector(p.Collection, r, seqCfg)
		par := core.NewShardedLiveDetector(p.Collection, r, parCfg)
		for _, set := range sets {
			for _, q := range set.Queries {
				want, _ := seq.Search(q)
				got, _ := par.Search(q)
				expertsIdentical(t, "parallel", q, got, want)
			}
		}
		r.Close()
	}
}

// TestEpochVectorSingleShardAdvance pins the vector-epoch contract: one
// ingested post advances exactly its author's shard's component and
// leaves every other component untouched.
func TestEpochVectorSingleShardAdvance(t *testing.T) {
	p, _ := testPipeline(t)
	r := shard.New(p.Corpus, shard.Config{Shards: 4, Ingest: ingest.DefaultConfig()})
	defer r.Close()

	before := r.EpochVector(nil)
	post := streamPosts(p, 67, 1)[0]
	target := r.ShardFor(post.Author)
	r.Ingest(post)
	after := r.EpochVector(nil)

	for i := range before {
		switch {
		case i == target && after[i] != before[i]+1:
			t.Fatalf("author's shard %d epoch %d -> %d, want +1", i, before[i], after[i])
		case i != target && after[i] != before[i]:
			t.Fatalf("untouched shard %d epoch moved %d -> %d", i, before[i], after[i])
		}
	}
	if r.Epoch() != before[0]+before[1]+before[2]+before[3]+1 {
		t.Fatalf("scalar digest %d does not sum the vector", r.Epoch())
	}
}

// TestConcurrentShardedIngestSearch is the -race hammer: concurrent
// routed ingesters and scatter-gather searchers share one router while
// every shard's compactor runs. Afterwards the quiesced router must
// match a cold detector rebuilt from the shards' own final content.
func TestConcurrentShardedIngestSearch(t *testing.T) {
	p, _ := testPipeline(t)
	r := shard.New(p.Corpus, shard.Config{Shards: 4, Ingest: ingest.Config{SealThreshold: 16, CompactFanIn: 3}})
	defer r.Close()
	sharded := core.NewShardedLiveDetector(p.Collection, r, p.Cfg.Online)
	queries := []string{"49ers", "diabetes", "nfl", "dow futures", "coffee", "zzz-none"}
	maxResults := p.Cfg.Online.Expertise.MaxResults

	const ingesters, perIngester = 2, 150
	const searchers, perSearcher = 4, 100
	errs := make(chan error, searchers)
	var wg sync.WaitGroup
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(uint64(200+g)))
			for i := 0; i < perIngester; i++ {
				r.Ingest(stream.Next())
			}
		}(g)
	}
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSearcher; i++ {
				q := queries[(g+i)%len(queries)]
				var experts []expertise.Expert
				if i%3 == 0 {
					experts = sharded.SearchBaseline(q)
				} else {
					experts, _ = sharded.Search(q)
				}
				if maxResults > 0 && len(experts) > maxResults {
					errs <- errInvariant("result cap exceeded")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	r.Quiesce()
	if st := r.Stats(); st.Ingested != ingesters*perIngester {
		t.Fatalf("ingested %d posts, want %d", st.Ingested, ingesters*perIngester)
	}

	// Cold rebuild from the shards' own final content.
	all := append([]microblog.Tweet(nil), p.Corpus.Tweets()...)
	for i := 0; i < r.NumShards(); i++ {
		snap := r.Shard(i).Snapshot()
		base := r.Shard(i).Base().NumTweets()
		for gid := base; gid < snap.NumTweets(); gid++ {
			all = append(all, *snap.Tweet(microblog.TweetID(gid)))
		}
	}
	cold := core.NewDetector(p.Collection, microblog.FromTweets(p.World, all), p.Cfg.Online)
	for _, q := range queries {
		got, _ := sharded.Search(q)
		want, _ := cold.Search(q)
		expertsIdentical(t, "post-hammer", q, got, want)
	}
}

type errInvariant string

func (e errInvariant) Error() string { return string(e) }

// TestRouterCloseQuiesceLifecycle covers the shutdown paths: Close is
// idempotent, the shards stay readable and writable afterwards (only
// background compaction stops), and an explicit Quiesce after Close
// still drains eligible merges synchronously.
func TestRouterCloseQuiesceLifecycle(t *testing.T) {
	p, _ := testPipeline(t)
	r := shard.New(p.Corpus, shard.Config{Shards: 2, Ingest: ingest.Config{SealThreshold: 8, CompactFanIn: 2}})
	posts := streamPosts(p, 97, 100)
	r.IngestBatch(posts[:50])

	r.Close()
	r.Close() // double Close must be a no-op, not a panic or deadlock

	// Writes after Close still land and publish fresh snapshots.
	before := r.Stats()
	r.IngestBatch(posts[50:])
	after := r.Stats()
	if after.Ingested != before.Ingested+50 {
		t.Fatalf("ingested after Close: %d -> %d, want +50", before.Ingested, after.Ingested)
	}
	if after.NumTweets != p.Corpus.NumTweets()+len(posts) {
		t.Fatalf("tweets after Close: %d, want %d", after.NumTweets, p.Corpus.NumTweets()+len(posts))
	}

	// With the compactor stopped, Quiesce is the only merge driver; it
	// must leave no eligible run behind.
	r.Quiesce()
	st := r.Stats()
	for i, ps := range st.PerShard {
		if ps.Segments >= 2*2 { // a full fan-in run left unmerged
			t.Fatalf("shard %d still has %d sealed segments after Quiesce", i, ps.Segments)
		}
	}

	// And the quiesced post-Close router still ranks identically to a
	// cold rebuild — Close must never cost correctness.
	det := core.NewShardedLiveDetector(p.Collection, r, p.Cfg.Online)
	cold := core.NewDetector(p.Collection, p.Corpus.ExtendedWith(posts), p.Cfg.Online)
	for _, q := range []string{"49ers", "nfl", "coffee"} {
		got, _ := det.Search(q)
		want, _ := cold.Search(q)
		expertsIdentical(t, "post-close", q, got, want)
	}
}

// TestClusterLocalRouting covers the Cluster composition surface the
// remote topology shares with the Router: ordered backends, write
// routing by author hash, run-grouped batch ingest, and the epoch
// vector/digest pair.
func TestClusterLocalRouting(t *testing.T) {
	p, _ := testPipeline(t)
	const n = 4
	backends := make([]shard.Backend, n)
	locals := make([]*shard.Local, n)
	for i := 0; i < n; i++ {
		idx := ingest.New(shard.Partition(p.Corpus, i, n), ingest.DefaultConfig())
		defer idx.Close()
		locals[i] = shard.NewLocal(idx)
		backends[i] = locals[i]
	}
	c := shard.NewCluster(p.World, backends...)
	if c.NumShards() != n || c.World() != p.World {
		t.Fatal("cluster surface broken")
	}

	posts := streamPosts(p, 101, 200)
	if err := c.IngestBatch(posts); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < n; i++ {
		if c.Backend(i) != backends[i] {
			t.Fatalf("backend %d identity changed", i)
		}
		idx := locals[i].Index()
		snap := idx.Snapshot()
		for gid := idx.Base().NumTweets(); gid < snap.NumTweets(); gid++ {
			if got := c.ShardFor(snap.Tweet(microblog.TweetID(gid)).Author); got != i {
				t.Fatalf("shard %d holds a post routed to %d", i, got)
			}
			total++
		}
	}
	if total != len(posts) {
		t.Fatalf("shards hold %d ingested posts, want %d", total, len(posts))
	}

	ev, err := c.EpochVector(nil)
	if err != nil || len(ev) != n {
		t.Fatalf("epoch vector %v err %v", ev, err)
	}
	var sum uint64
	for _, e := range ev {
		sum += e
	}
	if got := c.Epoch(); got != sum {
		t.Fatalf("scalar digest %d does not sum the vector %v", got, ev)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil { // idempotent through Local
		t.Fatal(err)
	}
}

// TestLocalViewPinsSnapshot pins the view contract the two-phase
// gather relies on: a view's Stats answer from the state Search pinned,
// not from writes that land afterwards.
func TestLocalViewPinsSnapshot(t *testing.T) {
	p, _ := testPipeline(t)
	idx := ingest.New(p.Corpus, ingest.DefaultConfig())
	defer idx.Close()
	l := shard.NewLocal(idx)

	rows, _, v, err := l.Search(context.Background(), []string{"49ers"}, false, nil)
	if err != nil || len(rows) == 0 {
		t.Fatalf("search: %d rows, err %v", len(rows), err)
	}
	u := rows[0].User
	before, err := v.Stats(context.Background(), []world.UserID{u}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// A burst of new posts by that user lands after the pin.
	for i := 0; i < 5; i++ {
		idx.Ingest(microblog.Post{Author: u, Text: "vibes 49ers tonight", Topic: -1})
	}
	after, err := v.Stats(context.Background(), []world.UserID{u}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if after[0] != before[0] {
		t.Fatalf("pinned view drifted under ingest: %+v -> %+v", before[0], after[0])
	}
	v.Release()

	// A fresh view observes the writes.
	fresh := l.View()
	defer fresh.Release()
	now, err := fresh.Stats(context.Background(), []world.UserID{u}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if now[0].Tweets != before[0].Tweets+5 {
		t.Fatalf("fresh view misses writes: %+v vs %+v + 5", now[0], before[0])
	}
}

// flakyEpochBackend is a minimal non-Local backend whose Epoch can be
// made to fail — it stands in for a remote shard so the cluster's
// concurrent epoch sampling (taken only when a member is not Local) and
// its EpochUnknown degradation run under this package's own tests.
type flakyEpochBackend struct {
	inner *shard.Local
	fail  bool
}

func (f *flakyEpochBackend) Search(ctx context.Context, terms []string, extended bool, raw []expertise.RawCandidate) ([]expertise.RawCandidate, int, shard.View, error) {
	return f.inner.Search(ctx, terms, extended, raw)
}
func (f *flakyEpochBackend) Ingest(p microblog.Post) (microblog.TweetID, error) {
	return f.inner.Ingest(p)
}
func (f *flakyEpochBackend) IngestBatch(posts []microblog.Post) error {
	return f.inner.IngestBatch(posts)
}
func (f *flakyEpochBackend) Epoch() (uint64, error) {
	if f.fail {
		return 0, errInvariant("epoch probe failed")
	}
	return f.inner.Epoch()
}
func (f *flakyEpochBackend) Quiesce() error { return f.inner.Quiesce() }
func (f *flakyEpochBackend) Close() error   { return f.inner.Close() }

// TestClusterEpochVectorWithRemoteMembers drives the concurrent
// sampling path: a cluster with a non-Local member samples every
// component, reports EpochUnknown (plus the error) for a member whose
// probe fails, and recovers once the member heals.
func TestClusterEpochVectorWithRemoteMembers(t *testing.T) {
	p, _ := testPipeline(t)
	mk := func(i, n int) *shard.Local {
		idx := ingest.New(shard.Partition(p.Corpus, i, n), ingest.DefaultConfig())
		t.Cleanup(idx.Close)
		return shard.NewLocal(idx)
	}
	flaky := &flakyEpochBackend{inner: mk(1, 3)}
	c := shard.NewCluster(p.World, mk(0, 3), flaky, mk(2, 3))
	// Wide enough that the inside-window assertions below cannot be
	// straddled by a scheduler or GC pause on a loaded CI machine; the
	// recovery loop polls rather than sleeping a whole window.
	const window = 750 * time.Millisecond
	c.SetBackoff(shard.Backoff{Initial: window, Max: window})

	ev, err := c.EpochVector(nil)
	if err != nil || len(ev) != 3 {
		t.Fatalf("healthy sample: %v, err %v", ev, err)
	}
	for i, e := range ev {
		if e == shard.EpochUnknown || e == 0 {
			t.Fatalf("component %d implausible: %d", i, e)
		}
	}

	flaky.fail = true
	ev, err = c.EpochVector(ev)
	if err == nil {
		t.Fatal("failed probe reported no error")
	}
	if ev[1] != shard.EpochUnknown {
		t.Fatalf("failed component is %d, want EpochUnknown", ev[1])
	}
	if ev[0] == shard.EpochUnknown || ev[2] == shard.EpochUnknown {
		t.Fatalf("healthy components poisoned: %v", ev)
	}
	digest := c.Epoch() // includes the unknown component; must not panic
	_ = digest

	// The failed member is now inside its backoff window: healing it
	// does not readmit it until the window expires and the one granted
	// probe succeeds — samples in between report EpochUnknown without
	// touching the backend.
	flaky.fail = false
	ev, err = c.EpochVector(ev)
	if err == nil || ev[1] != shard.EpochUnknown {
		t.Fatalf("sample inside the backoff window probed the backend: %v, err %v", ev, err)
	}
	if c.Health(1).Healthy() {
		t.Fatal("failed member reports healthy inside its window")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ev, err = c.EpochVector(ev)
		if err == nil && ev[1] != shard.EpochUnknown {
			break // the granted probe readmitted the healed member
		}
		if time.Now().After(deadline) {
			t.Fatalf("healed member never readmitted: %v, err %v", ev, err)
		}
		time.Sleep(window / 3)
	}
	if !c.Health(1).Healthy() {
		t.Fatal("readmitted member still reports unhealthy")
	}
}
