// The per-shard query surface the scatter-gather read path addresses.
// PR 3 left the shards in-process — core.ShardedLiveDetector reached
// straight into each ingest.Index snapshot. This file lifts that
// contact surface into an interface narrow enough to put a wire behind:
// a shard answers a term-set search with raw integer candidate rows and
// a pinned view, the pinned view answers one batched denominator fetch,
// and writes arrive as routed posts. A Local wraps an ingest.Index
// in-process; transport.RemoteShard speaks the same interface to a
// transport.ShardServer over TCP; and a Cluster composes any mix of the
// two behind the routing and epoch-vector surfaces the detector and the
// serving cache consume.
package shard

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/expertise"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/world"
)

// EpochUnknown is the epoch-vector component a Cluster reports for a
// shard whose epoch it cannot observe (the shard's transport failed).
// The serving layer treats any sample containing it as uncacheable —
// an unobservable view must neither serve nor admit cache entries.
const EpochUnknown = ^uint64(0)

// Backend is one shard of the author-partitioned stream as the
// scatter-gather read path addresses it — local (a Local over an
// ingest.Index) or remote (a transport.RemoteShard speaking the wire
// protocol to a transport.ShardServer). Every method may fail: a local
// backend never does, a remote one fails fast when its transport does,
// and the caller (core.ShardedLiveDetector) degrades to partial
// results. Implementations are safe for concurrent use.
type Backend interface {
	// Search runs the per-shard scatter stage against one pinned
	// immutable view: match every term, union the per-term id lists,
	// and extract raw candidates, appended to raw (capacity reused,
	// contents discarded) in ascending user order. It returns the
	// filled row slice, the size of the matched-tweet union, and a View
	// pinned to the exact state the rows were extracted from. The
	// caller must Release the view, error or not search again on it.
	// extended asks extraction to also count hashtagged posts (the
	// extended feature set); it travels with the request because a
	// remote shard does not share the coordinator's parameter set.
	// ctx carries the caller's remaining deadline budget: a local
	// backend checks it once at entry, a remote one derives each RPC's
	// wire deadline from it and fails with ctx.Err() when the budget is
	// already spent — the front door's 504 instead of a default-timeout
	// hang.
	Search(ctx context.Context, terms []string, extended bool, raw []expertise.RawCandidate) (rows []expertise.RawCandidate, matched int, v View, err error)
	// Ingest appends one post to the shard's stream and returns the
	// shard-local tweet id it was assigned.
	Ingest(p microblog.Post) (microblog.TweetID, error)
	// IngestBatch appends posts in order. A remote backend ships the
	// whole batch in a handful of frames instead of one round trip per
	// post.
	IngestBatch(posts []microblog.Post) error
	// Epoch returns the shard's current snapshot epoch.
	Epoch() (uint64, error)
	// Quiesce synchronously drains the shard's eligible compactions.
	Quiesce() error
	// Close releases the backend: a Local stops its index's compactor,
	// a remote client closes its connections (the remote server keeps
	// running).
	Close() error
}

// SearchStatser is optionally implemented by backends that can answer
// the whole search→stats conversation in one call: the candidate rows
// plus the denominator triples for those same candidates (positionally
// aligned with rows), all read from one pinned view. For a remote
// backend that is the OpSearchStats composite — one round trip instead
// of two — and the returned View still answers the coordinator's
// top-up Stats for foreign candidates against the same pinned state.
// A backend without this interface runs the classic two-step; the
// results are bit-identical either way, because the denominators are
// commutative integer sums.
type SearchStatser interface {
	// SearchStats is Backend.Search fused with a View.Stats for the
	// returned rows' own users: stats[i] belongs to rows[i].User. The
	// caller must Release the view exactly as with Search. ctx carries
	// the deadline budget exactly as in Backend.Search.
	SearchStats(ctx context.Context, terms []string, extended bool, raw []expertise.RawCandidate, stats []expertise.UserStats) (rows []expertise.RawCandidate, matched int, rowStats []expertise.UserStats, v View, err error)
}

// EpochLocality is optionally implemented by backends whose Epoch is a
// process-local read (an atomic load or a counter) rather than an RPC.
// A Cluster samples such backends in a tight sequential loop with no
// failure bookkeeping — the probe cannot dial and cannot fail. Local
// is implicitly epoch-local; replica.Set implements this interface
// because its logical write epoch is a coordinator-side counter even
// when every replica behind it is remote; transport.RemoteShard
// implements it dynamically — true exactly while an epoch-push
// subscription keeps its cached epoch fresh.
type EpochLocality interface {
	// EpochIsLocal reports whether Epoch reads process-local state.
	EpochIsLocal() bool
}

// FailoverReporter is optionally implemented by backends that can
// serve a read from more than one place (replica.Set): Failovers
// counts reads answered by a non-first-choice replica after at least
// one replica failed. Cluster.Failovers sums it across shards and the
// serving layer mirrors the total into serve.Stats.
type FailoverReporter interface {
	// Failovers returns the cumulative failed-over read count.
	Failovers() int64
}

// View is one pinned immutable shard state, handed out by
// Backend.Search so the gather stage's denominator fetch reads the
// same state candidate extraction did — for a local shard an
// ingest.Snapshot, for a remote shard a connection whose server end
// pinned the snapshot. Views are single-query, single-goroutine
// objects; Release returns the underlying resources for reuse.
type View interface {
	// Stats appends the shard's denominator triple for each user to dst
	// (capacity reused, contents discarded), evaluated against the
	// pinned state. users must be ascending (the wire encoding is
	// delta-compressed). ctx bounds the fetch like Backend.Search.
	Stats(ctx context.Context, users []world.UserID, dst []expertise.UserStats) ([]expertise.UserStats, error)
	// Release returns the view's resources. No method may be called
	// afterwards.
	Release()
}

// Local adapts one ingest.Index to the Backend interface: the
// in-process implementation the Router serves its shards through, and
// the execution engine a transport.ShardServer dispatches decoded
// frames to — both sides of the wire run exactly this code, which is
// how the equivalence spine survives the process boundary. Safe for
// concurrent use; per-query buffers are pooled.
type Local struct {
	idx    *ingest.Index
	ranker *expertise.Ranker
	pool   sync.Pool // of *localScratch
	views  sync.Pool // of *localView
}

var _ Backend = (*Local)(nil)

// localScratch holds one query's match buffers: a matched-id buffer and
// segment-local scratch per term, the merge frontier and the union.
type localScratch struct {
	lists    [][]microblog.TweetID
	locals   [][]microblog.TweetID
	frontier [][]microblog.TweetID
	merged   []microblog.TweetID
	users    []world.UserID
}

// NewLocal wraps a streaming index as a Backend.
func NewLocal(idx *ingest.Index) *Local {
	l := &Local{
		idx: idx,
		// Extraction needs only the arena (sized to the user universe)
		// and the explicit extended flag; ranking weights stay with the
		// coordinator.
		ranker: expertise.NewRanker(len(idx.World().Users), expertise.DefaultParams()),
	}
	l.pool.New = func() any { return &localScratch{} }
	l.views.New = func() any { return &localView{owner: l} }
	return l
}

// Index returns the wrapped streaming index.
func (l *Local) Index() *ingest.Index { return l.idx }

// Search implements Backend: one atomic snapshot load pins the view,
// every term runs the zero-copy per-segment match, the per-term lists
// union through the k-way merge, and raw candidates are extracted from
// the union — the identical per-shard unit of work the PR 3 in-process
// fan-out ran inline. The context is checked once at entry — an
// in-process match never blocks, so a live budget runs it to
// completion; an already-expired one fails before pinning a snapshot.
func (l *Local) Search(ctx context.Context, terms []string, extended bool, raw []expertise.RawCandidate) ([]expertise.RawCandidate, int, View, error) {
	if err := ctx.Err(); err != nil {
		return raw[:0], 0, nil, err
	}
	snap := l.idx.Snapshot()
	s := l.pool.Get().(*localScratch)
	for len(s.lists) < len(terms) {
		s.lists = append(s.lists, nil)
		s.locals = append(s.locals, nil)
	}
	lists := s.lists[:len(terms)]
	for i, t := range terms {
		lists[i], s.locals[i] = snap.MatchAppendScratch(t, lists[i], s.locals[i])
	}
	s.merged, s.frontier = expertise.MergeTweetsInto(s.merged, s.frontier, lists...)
	raw = l.ranker.RawCandidatesModeInto(raw, snap, s.merged, extended)
	matched := len(s.merged)
	l.pool.Put(s)

	v := l.views.Get().(*localView)
	v.snap = snap
	return raw, matched, v, nil
}

// SearchStats implements SearchStatser in-process: Search plus a
// stats evaluation for the matched candidates against the same pinned
// snapshot. It exists so a Local slots into the same composite
// coordinator path a remote shard uses — same work, same totals
// (own-candidate stats here, foreign top-up through the view), which
// keeps the mixed local/remote topology on a single code path and the
// equivalence spine easy to hold.
func (l *Local) SearchStats(ctx context.Context, terms []string, extended bool, raw []expertise.RawCandidate, stats []expertise.UserStats) ([]expertise.RawCandidate, int, []expertise.UserStats, View, error) {
	rows, matched, v, err := l.Search(ctx, terms, extended, raw)
	if err != nil {
		return rows, matched, stats[:0], nil, err
	}
	s := l.pool.Get().(*localScratch)
	s.users = s.users[:0]
	for i := range rows {
		s.users = append(s.users, rows[i].User)
	}
	stats, err = v.Stats(ctx, s.users, stats)
	l.pool.Put(s)
	if err != nil {
		v.Release()
		return rows, matched, stats[:0], nil, err
	}
	return rows, matched, stats, v, nil
}

var _ SearchStatser = (*Local)(nil)

// View pins the current snapshot without running a search — the stats
// surface a protocol peer may hit on a connection that has not searched
// yet.
func (l *Local) View() View {
	v := l.views.Get().(*localView)
	v.snap = l.idx.Snapshot()
	return v
}

// Ingest implements Backend.
func (l *Local) Ingest(p microblog.Post) (microblog.TweetID, error) {
	return l.idx.Ingest(p), nil
}

// IngestBatch implements Backend.
func (l *Local) IngestBatch(posts []microblog.Post) error {
	for _, p := range posts {
		l.idx.Ingest(p)
	}
	return nil
}

// Epoch implements Backend.
func (l *Local) Epoch() (uint64, error) { return l.idx.Epoch(), nil }

// EpochIsLocal implements EpochLocality: a Local's epoch is one
// atomic load.
func (l *Local) EpochIsLocal() bool { return true }

// Quiesce implements Backend.
func (l *Local) Quiesce() error {
	l.idx.Quiesce()
	return nil
}

// Close implements Backend: it stops the index's background compactor.
// The index remains readable and writable; Close is idempotent.
func (l *Local) Close() error {
	l.idx.Close()
	return nil
}

// localView is a pinned ingest.Snapshot plus its pool slot.
type localView struct {
	owner *Local
	snap  *ingest.Snapshot
}

// Stats implements View against the pinned snapshot. Like Search, the
// context is checked once at entry — the evaluation itself is
// non-blocking.
func (v *localView) Stats(ctx context.Context, users []world.UserID, dst []expertise.UserStats) ([]expertise.UserStats, error) {
	if err := ctx.Err(); err != nil {
		return dst[:0], err
	}
	return expertise.SourceStatsInto(dst, v.snap, users), nil
}

// Release implements View. Dropping the snapshot reference matters: a
// pooled idle view must not pin retired segments (and their lazily
// built tail indexes) in memory between queries.
func (v *localView) Release() {
	v.snap = nil
	v.owner.views.Put(v)
}

// Cluster composes an ordered shard set — any mix of Local and remote
// backends — behind the surfaces the write path, the scatter-gather
// detector and the serving cache consume: author-hash write routing
// (position in the backend list is the shard index ShardOf routes to),
// the per-shard epoch vector and its scalar digest, and whole-cluster
// quiesce/close. A Router's shards form the all-local special case
// (Router.Cluster); cmd/shardd plus transport.RemoteShard clients form
// the all-remote one; mixing them is how a deployment drains one
// process at a time.
type Cluster struct {
	w        *world.World
	backends []Backend
	// health holds one failure-backoff state machine per backend; epoch
	// probes consult it so a dead shard costs one dial per backoff
	// window, not one per request (see Health).
	health []*Health
	// localEpochs notes a cluster whose every backend answers Epoch
	// from process-local state (Local indexes, or replica.Sets whose
	// logical epoch is a coordinator-side counter): epoch sampling
	// stays a tight sequential loop (nanoseconds per shard) with no
	// failure bookkeeping, instead of paying goroutine fan-out and
	// health checks on every cache lookup.
	localEpochs bool
}

// epochIsLocal reports whether b answers Epoch from process-local
// state — any backend claims it through the EpochLocality interface
// (Local and replica.Set both do).
func epochIsLocal(b Backend) bool {
	el, ok := b.(EpochLocality)
	return ok && el.EpochIsLocal()
}

// NewCluster assembles a cluster over an ordered backend list. Backend
// i must hold exactly the authors ShardOf routes to i — for remote
// backends that contract is established at deployment (cmd/shardd's
// -shard/-of flags) and checked by the transport handshake. Epoch
// probing starts with DefaultBackoff failure windows; SetBackoff
// retunes them.
func NewCluster(w *world.World, backends ...Backend) *Cluster {
	c := &Cluster{w: w, backends: backends, localEpochs: true}
	c.health = make([]*Health, len(backends))
	for i, b := range backends {
		c.health[i] = NewHealth(DefaultBackoff())
		if !epochIsLocal(b) {
			c.localEpochs = false
		}
	}
	return c
}

// SetBackoff replaces every backend's epoch-probe failure windows
// (and resets their backoff state). Call it at wiring time, before
// the cluster serves traffic.
func (c *Cluster) SetBackoff(cfg Backoff) {
	for i := range c.health {
		c.health[i] = NewHealth(cfg)
	}
}

// Health returns shard i's epoch-probe backoff state — exposed so the
// serving layer and tests can observe which shards are inside failure
// windows.
func (c *Cluster) Health(i int) *Health { return c.health[i] }

// World returns the generating world shared by every shard.
func (c *Cluster) World() *world.World { return c.w }

// NumShards returns the partition count.
func (c *Cluster) NumShards() int { return len(c.backends) }

// Backend returns the i-th shard.
func (c *Cluster) Backend(i int) Backend { return c.backends[i] }

// ShardFor returns the shard index the user's posts route to.
func (c *Cluster) ShardFor(u world.UserID) int { return ShardOf(u, len(c.backends)) }

// Ingest routes one post to its author's shard and returns the
// shard-local tweet id. Safe for concurrent use.
func (c *Cluster) Ingest(p microblog.Post) (microblog.TweetID, error) {
	return c.backends[ShardOf(p.Author, len(c.backends))].Ingest(p)
}

// IngestBatch routes posts to their author shards, preserving per-shard
// arrival order for a single caller, and ships each shard's run as a
// batch (one wire frame per run for remote backends). The first error
// aborts the remainder.
func (c *Cluster) IngestBatch(posts []microblog.Post) error {
	for start := 0; start < len(posts); {
		si := ShardOf(posts[start].Author, len(c.backends))
		end := start + 1
		for end < len(posts) && ShardOf(posts[end].Author, len(c.backends)) == si {
			end++
		}
		if err := c.backends[si].IngestBatch(posts[start:end]); err != nil {
			return fmt.Errorf("shard %d: %w", si, err)
		}
		start = end
	}
	return nil
}

// probeEpoch samples shard i's epoch through its failure-backoff
// gate: a backend inside a backoff window is reported EpochUnknown
// immediately — no dial, no timeout — and at most one caller per
// window actually probes it. Probe outcomes feed the same gate, so a
// recovering shard re-admits itself on its first successful probe.
func (c *Cluster) probeEpoch(i int) (uint64, error) {
	h := c.health[i]
	if !h.Allow() {
		return EpochUnknown, fmt.Errorf("shard %d: %w", i, ErrBackoff)
	}
	e, err := c.backends[i].Epoch()
	if err != nil {
		h.Fail()
		return EpochUnknown, fmt.Errorf("shard %d: %w", i, err)
	}
	h.Ok()
	return e, nil
}

// EpochVector appends each shard's current epoch to dst (capacity
// reused, contents discarded). A shard whose epoch cannot be observed
// contributes EpochUnknown — the serving cache bypasses itself for
// such samples — and the first failure is also returned. For a
// cluster of epoch-local backends the sample is a tight loop of
// atomic loads. Otherwise locality is re-checked per shard per sample:
// backends that are epoch-local right now (Local, replica.Set, a
// RemoteShard with a live push subscription) are read inline, and only
// the rest — cold or lapsed remotes — fan out as concurrent RPC
// probes, so one slow shard costs one round trip, not N stacked ones.
// Each probe runs through a per-shard failure backoff (Health), so a
// *dead* shard costs one dial per backoff window rather than one dial
// timeout per request; on the warm all-subscribed path the fan-out
// (and its goroutines) disappears entirely.
func (c *Cluster) EpochVector(dst []uint64) ([]uint64, error) {
	dst = dst[:0]
	if c.localEpochs {
		var firstErr error
		for i, b := range c.backends {
			e, err := b.Epoch()
			if err != nil {
				e = EpochUnknown
				if firstErr == nil {
					firstErr = fmt.Errorf("shard %d: %w", i, err)
				}
			}
			dst = append(dst, e)
		}
		return dst, firstErr
	}
	var pend []int
	var firstErr error
	for i, b := range c.backends {
		if epochIsLocal(b) {
			// A local read cannot dial, but its outcome still feeds the
			// shard's health gate so a lapse-then-recovery sequence
			// observes consistent bookkeeping.
			e, err := b.Epoch()
			if err != nil {
				c.health[i].Fail()
				e = EpochUnknown
				if firstErr == nil {
					firstErr = fmt.Errorf("shard %d: %w", i, err)
				}
			} else {
				c.health[i].Ok()
			}
			dst = append(dst, e)
			continue
		}
		dst = append(dst, 0)
		pend = append(pend, i)
	}
	switch len(pend) {
	case 0:
		return dst, firstErr
	case 1:
		i := pend[0]
		e, err := c.probeEpoch(i)
		dst[i] = e
		if firstErr == nil {
			firstErr = err
		}
		return dst, firstErr
	}
	errs := make([]error, len(pend))
	var wg sync.WaitGroup
	wg.Add(len(pend))
	for pi, i := range pend {
		go func(pi, i int) {
			defer wg.Done()
			dst[i], errs[pi] = c.probeEpoch(i)
		}(pi, i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return dst, firstErr
}

// Failovers sums the failed-over read counts of every backend that
// reports one (replica.Set members; plain backends contribute zero) —
// the cluster-wide count the serving layer surfaces as
// serve.Stats.Failovers.
func (c *Cluster) Failovers() int64 {
	var sum int64
	for _, b := range c.backends {
		if fr, ok := b.(FailoverReporter); ok {
			sum += fr.Failovers()
		}
	}
	return sum
}

// Epoch returns the sum of the per-shard epochs — the scalar digest of
// the vector (see Router.Epoch), sampled with the same concurrency as
// EpochVector. Unobservable components contribute EpochUnknown to the
// sum, which still changes the digest as failed samples' neighbors
// advance.
func (c *Cluster) Epoch() uint64 {
	vec, _ := c.EpochVector(make([]uint64, 0, len(c.backends)))
	var sum uint64
	for _, e := range vec {
		sum += e
	}
	return sum
}

// Quiesce synchronously drains every shard's eligible compactions. All
// shards are attempted; the first error is returned.
func (c *Cluster) Quiesce() error {
	var firstErr error
	for i, b := range c.backends {
		if err := b.Quiesce(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return firstErr
}

// Close releases every backend (local compactors stop, remote clients
// disconnect). All backends are attempted; the first error is returned.
func (c *Cluster) Close() error {
	var firstErr error
	for i, b := range c.backends {
		if err := b.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return firstErr
}
