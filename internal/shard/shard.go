// Package shard partitions the live post stream by author across N
// independent streaming indexes (internal/ingest), the scale-out step
// the single-node live index was designed for: web-scale expert-mining
// systems only reach millions of users by sharding the ingestion and
// scoring pipeline by user.
//
// A Router owns the shards and routes every post to
// ShardOf(author, N) — a fixed avalanche hash of the author id, stable
// across processes and restarts, so a given author's posts always land
// on the same shard, in this process and the next one. Author affinity
// is the load-bearing property: a user's authored posts (and therefore
// the TS and RI feature denominators, which count the user's own tweets
// and the retweets they received) live entirely on one shard, so those
// per-shard ranking inputs are exact, not approximate. Mention counts
// are the exception — a post mentioning u lives on its author's shard —
// which is why the scatter-gather read path
// (core.ShardedLiveDetector) merges raw integer counters across shards
// (expertise.RawCandidatesInto / MergeRawCandidates) before the single
// global ranking pass, keeping an N-shard query bit-identical to a
// single-node one.
//
// Each shard is a full ingest.Index: its own segments, compactor and
// epoch-tagged snapshots. The Router composes the per-shard epochs into
// a vector epoch (EpochVector) that the serving cache keys invalidation
// on: a cached result is stale as soon as any component advances.
package shard

import (
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/world"
)

// Config tunes a Router.
type Config struct {
	// Shards is the number of partitions. Zero or negative means 1.
	Shards int
	// Ingest is the per-shard streaming-index configuration (seal
	// threshold, compaction fan-in); the zero value takes the ingest
	// defaults.
	Ingest ingest.Config
}

// DefaultConfig returns a 4-way partitioning with default per-shard
// streaming settings.
func DefaultConfig() Config { return Config{Shards: 4, Ingest: ingest.DefaultConfig()} }

// ShardOf maps an author to a shard in [0, n). The hash is a fixed
// 64-bit avalanche mix (splitmix64's finalizer) of the author id — no
// process state, no seed — so the assignment is a pure function of
// (author, n) and survives restarts; the router property tests pin
// golden values against accidental constant changes.
func ShardOf(u world.UserID, n int) int {
	if n <= 1 {
		return 0
	}
	x := uint64(u)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// Partition returns the slice of base that shard i of n owns: exactly
// the tweets whose author hashes to i. Router construction partitions
// its base corpus with it, and cmd/shardd uses it directly so a shard
// process rebuilt from the same deterministic pipeline starts from the
// identical base slice the in-process router would give that shard.
func Partition(base *microblog.Corpus, i, n int) *microblog.Corpus {
	var part []microblog.Tweet
	for _, tw := range base.Tweets() {
		if ShardOf(tw.Author, n) == i {
			part = append(part, tw)
		}
	}
	return microblog.FromTweets(base.World(), part)
}

// Router hash-partitions a post stream by author across N independent
// streaming indexes. Ingest routes writes (safe for concurrent use —
// each shard serializes internally); the read side acquires one
// immutable snapshot per shard (Snapshots) and scatter-gathers across
// them (see core.ShardedLiveDetector). Close stops every shard's
// background compactor.
type Router struct {
	w       *world.World
	shards  []*ingest.Index
	cluster *Cluster
}

// New builds a router over a frozen base corpus, partitioning the base
// tweets by author so every shard starts from its own slice of history:
// shard i's base holds exactly the base tweets whose author hashes to
// i. The union of the shards' content therefore always equals base
// plus everything ingested — the invariant the bit-identical
// equivalence bar is stated over.
func New(base *microblog.Corpus, cfg Config) *Router {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	w := base.World()
	parts := make([][]microblog.Tweet, n)
	for _, tw := range base.Tweets() {
		si := ShardOf(tw.Author, n)
		parts[si] = append(parts[si], tw)
	}
	r := &Router{w: w, shards: make([]*ingest.Index, n)}
	backends := make([]Backend, n)
	for i := range r.shards {
		r.shards[i] = ingest.New(microblog.FromTweets(w, parts[i]), cfg.Ingest)
		backends[i] = NewLocal(r.shards[i])
	}
	r.cluster = NewCluster(w, backends...)
	return r
}

// Cluster returns the router's shards behind the Backend interface —
// the all-local shard set core.ShardedLiveDetector scatter-gathers
// over, interchangeable with (or mixable into) a set of
// transport.RemoteShard clients.
func (r *Router) Cluster() *Cluster { return r.cluster }

// World returns the generating world shared by every shard.
func (r *Router) World() *world.World { return r.w }

// NumShards returns the partition count.
func (r *Router) NumShards() int { return len(r.shards) }

// Shard returns the i-th streaming index.
func (r *Router) Shard(i int) *ingest.Index { return r.shards[i] }

// ShardFor returns the shard index the user's posts route to.
func (r *Router) ShardFor(u world.UserID) int { return ShardOf(u, len(r.shards)) }

// Ingest routes one post to its author's shard and returns the
// shard-local tweet id the shard assigned (ids are per-shard; use
// ShardFor to recover which shard it landed on). Safe for concurrent
// use.
func (r *Router) Ingest(p microblog.Post) microblog.TweetID {
	return r.shards[ShardOf(p.Author, len(r.shards))].Ingest(p)
}

// IngestBatch routes posts one at a time on the calling goroutine,
// preserving per-shard arrival order for a single caller. Concurrency
// comes from running multiple ingesting goroutines — writers to
// different shards share no lock.
func (r *Router) IngestBatch(posts []microblog.Post) {
	for _, p := range posts {
		r.Ingest(p)
	}
}

// Snapshots appends one epoch-tagged immutable snapshot per shard to
// dst (capacity reused, contents discarded), acquired with one atomic
// load each. The composite is not a single globally-atomic cut — shard
// k's snapshot may be a few posts ahead of shard j's under concurrent
// ingest — but each author's timeline lives on exactly one shard, so
// every per-user ranking input is internally consistent, and a quiesced
// router yields the exact global state.
func (r *Router) Snapshots(dst []*ingest.Snapshot) []*ingest.Snapshot {
	dst = dst[:0]
	for _, s := range r.shards {
		dst = append(dst, s.Snapshot())
	}
	return dst
}

// EpochVector appends each shard's current epoch to dst (capacity
// reused, contents discarded). Component i advances on every publish of
// shard i (ingest, seal, compaction); the vector as a whole identifies
// the composite view, and the serving cache invalidates an entry as
// soon as any component advances past the entry's.
func (r *Router) EpochVector(dst []uint64) []uint64 {
	dst = dst[:0]
	for _, s := range r.shards {
		dst = append(dst, s.Epoch())
	}
	return dst
}

// Epoch returns the sum of the per-shard epochs — a scalar digest of
// the vector. Epochs never decrease, so the sum advances if and only if
// some component advances; it backs the scalar Backend.Epoch surface
// while the cache's correctness argument uses the full vector.
func (r *Router) Epoch() uint64 {
	var sum uint64
	for _, s := range r.shards {
		sum += s.Epoch()
	}
	return sum
}

// Quiesce synchronously drains every shard's eligible compactions.
func (r *Router) Quiesce() {
	for _, s := range r.shards {
		s.Quiesce()
	}
}

// Close stops every shard's background compactor. The shards remain
// readable and writable.
func (r *Router) Close() {
	for _, s := range r.shards {
		s.Close()
	}
}

// Stats aggregates the per-shard writer-side counters.
type Stats struct {
	// Shards is the partition count.
	Shards int
	// PerShard holds each shard's individual counters, indexed by
	// shard.
	PerShard []ingest.IndexStats
	// NumTweets and Segments sum visible tweets and sealed segments
	// across all shards.
	NumTweets, Segments int
	// Ingested counts live posts accepted across all shards.
	Ingested int64
	// Seals and Compactions count background structural events across
	// all shards.
	Seals, Compactions int64
}

// Stats snapshots every shard's counters and their totals.
func (r *Router) Stats() Stats {
	st := Stats{Shards: len(r.shards), PerShard: make([]ingest.IndexStats, 0, len(r.shards))}
	for _, s := range r.shards {
		is := s.Stats()
		st.PerShard = append(st.PerShard, is)
		st.NumTweets += is.NumTweets
		st.Segments += is.Segments
		st.Ingested += is.Ingested
		st.Seals += is.Seals
		st.Compactions += is.Compactions
	}
	return st
}
