// Failure backoff for shard and replica probing. PR 4's transport
// fails fast — which is right for queries, but meant every epoch-vector
// sample paid a full dial (and its timeout) per request while a shard
// was down. Health is the shared fix: a per-backend decaying-backoff
// state machine that grants at most one probe per backoff window, so a
// dead backend costs one dial per window instead of one per request.
// The Cluster consults one Health per backend when sampling epochs
// (EpochVector); replica.Set consults one per replica when choosing a
// read target and when probing a recovering follower.
package shard

import (
	"errors"
	"sync"
	"time"
)

// ErrBackoff reports a probe suppressed because its backend is inside
// a failure-backoff window: the backend failed recently, the window
// has not expired, and this caller was not granted the one probe the
// window allows. Callers treat it exactly like the underlying failure
// it stands in for — the backend is unreachable as far as this request
// is concerned — but it costs nothing to produce.
var ErrBackoff = errors.New("shard: backend in failure backoff")

// Backoff tunes a Health state machine.
type Backoff struct {
	// Initial is the window after the first failure. Zero means 250ms.
	Initial time.Duration
	// Max caps the window growth: each consecutive failure doubles the
	// window up to Max. Zero means 15s.
	Max time.Duration
}

// DefaultBackoff returns the probing defaults: 250ms after the first
// failure, doubling to a 15s ceiling.
func DefaultBackoff() Backoff {
	return Backoff{Initial: 250 * time.Millisecond, Max: 15 * time.Second}
}

// withDefaults fills zero fields.
func (b Backoff) withDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = 250 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 15 * time.Second
	}
	if b.Max < b.Initial {
		b.Max = b.Initial
	}
	return b
}

// Health tracks one backend's reachability as a decaying-backoff state
// machine. A healthy backend admits every probe. A failure opens a
// backoff window (Initial, doubling per consecutive failure up to Max)
// during which Allow admits nothing; when the window expires, Allow
// grants exactly one caller a probe — concurrent callers are refused,
// so a dead backend costs at most one dial per window no matter the
// request rate — and the probe's outcome (Ok or Fail) either restores
// full health or doubles the window. Safe for concurrent use.
type Health struct {
	cfg Backoff

	mu      sync.Mutex
	window  time.Duration // current backoff window; 0 = healthy
	retryAt time.Time     // gate for the next granted probe; zero = healthy
	fails   int64         // consecutive failures since the last success
}

// NewHealth returns a healthy state machine with cfg's windows (zero
// fields take the defaults).
func NewHealth(cfg Backoff) *Health {
	return &Health{cfg: cfg.withDefaults()}
}

// Allow reports whether a probe may run now; see AllowAt.
func (h *Health) Allow() bool { return h.AllowAt(time.Now()) }

// AllowAt reports whether a probe may run at time now. For a healthy
// backend it always does. Inside a backoff window it does not; at the
// window's expiry exactly one caller is granted the probe (the grant
// itself pushes the gate one window forward, so racing callers are
// refused until the granted probe reports Ok or Fail, or its window
// also lapses — a hung probe cannot wedge recovery forever).
func (h *Health) AllowAt(now time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.retryAt.IsZero() {
		return true
	}
	if now.Before(h.retryAt) {
		return false
	}
	h.retryAt = now.Add(h.window)
	return true
}

// Fail records a failed probe; see FailAt.
func (h *Health) Fail() { h.FailAt(time.Now()) }

// FailAt records a failed probe at time now: the backoff window starts
// at Initial and doubles per consecutive failure up to Max, and the
// next probe is gated a full window out.
func (h *Health) FailAt(now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.window <= 0 {
		h.window = h.cfg.Initial
	} else if h.window < h.cfg.Max {
		h.window = min(2*h.window, h.cfg.Max)
	}
	h.fails++
	h.retryAt = now.Add(h.window)
}

// Ok records a successful probe: the backoff state decays all the way
// back to healthy, so the next failure starts again from the Initial
// window.
func (h *Health) Ok() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.window = 0
	h.retryAt = time.Time{}
	h.fails = 0
}

// Healthy reports whether the backend is outside any backoff window
// (its last probe succeeded, or it has never failed).
func (h *Health) Healthy() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.retryAt.IsZero()
}

// Failures returns the consecutive failures since the last success.
func (h *Health) Failures() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fails
}
