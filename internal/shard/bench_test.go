// Benchmarks for the sharded streaming subsystem: scatter-gather read
// latency at increasing shard counts (BenchmarkLiveSearchSharded*,
// compared against the single-node BenchmarkLiveSearch* numbers in
// internal/ingest), routed write throughput (BenchmarkShardedIngest),
// and mixed read/write serving QPS over the vector-epoch cache
// (BenchmarkServeQPSShardedMixed*). CHANGES.md and BENCHMARKS.md
// record the per-PR measurements; note the GOMAXPROCS=1 CI-container
// caveat there — shard fan-out degenerates to sequential on one core,
// so multi-shard latency gains only appear on multicore hardware.
package shard_test

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/serve"
	"repro/internal/shard"
)

// benchRouter returns a quiesced router over the shared tiny pipeline
// with n posts already routed.
func benchRouter(b *testing.B, shards, posts int) (*core.Pipeline, *shard.Router) {
	p, _ := testPipeline(b)
	r := shard.New(p.Corpus, shard.Config{Shards: shards, Ingest: ingest.DefaultConfig()})
	stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(11))
	for i := 0; i < posts; i++ {
		r.Ingest(stream.Next())
	}
	r.Quiesce()
	return p, r
}

// benchShardedSearch measures steady-state scatter-gather query
// latency over a quiesced router holding the base corpus plus 2048
// streamed posts, MatchWorkers=1 (the serving configuration — on the
// 1-core CI container fan-out would only add scheduling overhead).
func benchShardedSearch(b *testing.B, shards int) {
	p, r := benchRouter(b, shards, 2048)
	defer r.Close()
	online := p.Cfg.Online
	online.MatchWorkers = 1
	d := core.NewShardedLiveDetector(p.Collection, r, online)
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, _ := d.Search("49ers")
		n = len(results)
	}
	b.ReportMetric(float64(n), "experts")
	b.ReportMetric(float64(shards), "shards")
}

func BenchmarkLiveSearchSharded1(b *testing.B) { benchShardedSearch(b, 1) }
func BenchmarkLiveSearchSharded4(b *testing.B) { benchShardedSearch(b, 4) }
func BenchmarkLiveSearchSharded8(b *testing.B) { benchShardedSearch(b, 8) }

// BenchmarkShardedIngest measures single-writer routed write
// throughput: one avalanche hash plus the target shard's full ingest
// path (tokenize, append, seal, publish).
func BenchmarkShardedIngest(b *testing.B) {
	p, _ := testPipeline(b)
	r := shard.New(p.Corpus, shard.DefaultConfig())
	defer r.Close()
	stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(13))
	posts := make([]microblog.Post, 4096)
	for i := range posts {
		posts[i] = stream.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Ingest(posts[i%len(posts)])
	}
}

// BenchmarkShardedIngestParallel measures contended routed writes:
// unlike the single-node index, writers to different shards do not
// share a lock, so on multicore hardware throughput should scale with
// the shard count.
func BenchmarkShardedIngestParallel(b *testing.B) {
	p, _ := testPipeline(b)
	r := shard.New(p.Corpus, shard.DefaultConfig())
	defer r.Close()
	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(300+seed.Add(1)))
		for pb.Next() {
			r.Ingest(stream.Next())
		}
	})
}

// benchShardedMixedQPS measures serving throughput under concurrent
// ingestion at a given shard count: every iteration replays a mixed
// read/write workload (searches via the vector-epoch cache, posts
// routed across the shards) and reports both throughputs.
func benchShardedMixedQPS(b *testing.B, shards int) {
	p, sets := testPipeline(b)
	var pool []string
	for _, set := range sets {
		pool = append(pool, set.Queries...)
	}
	r := shard.New(p.Corpus, shard.Config{Shards: shards, Ingest: ingest.DefaultConfig()})
	defer r.Close()
	online := p.Cfg.Online
	online.MatchWorkers = 1
	srv := serve.New(core.NewShardedLiveDetector(p.Collection, r, online), serve.DefaultConfig())
	workers := runtime.GOMAXPROCS(0)
	var res serve.MixedLoadResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = serve.RunMixedLoad(srv, r, serve.MixedLoadConfig{
			Queries:       pool,
			Searches:      2 * len(pool),
			SearchWorkers: workers,
			Ingests:       500,
			IngestWorkers: 2,
			BaselineEvery: 5,
			Seed:          uint64(i),
		})
	}
	b.ReportMetric(res.SearchQPS, "qps")
	b.ReportMetric(res.IngestPerSec, "posts/s")
	b.ReportMetric(float64(shards), "shards")
}

func BenchmarkServeQPSShardedMixed1(b *testing.B) { benchShardedMixedQPS(b, 1) }
func BenchmarkServeQPSShardedMixed4(b *testing.B) { benchShardedMixedQPS(b, 4) }
func BenchmarkServeQPSShardedMixed8(b *testing.B) { benchShardedMixedQPS(b, 8) }

// BenchmarkReshardDrain measures migration throughput: one iteration
// drains a 2-shard deployment holding the base corpus plus 2048
// streamed posts into 4 fresh shards and cuts over (Start + catch-up
// drain rounds + the locked residue pass). Setup — building both
// deployments and routing the posts — is excluded; the metric is posts
// moved per second of drain wall time.
func BenchmarkReshardDrain(b *testing.B) {
	p, _ := testPipeline(b)
	const posts = 2048
	var streamed float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		src := shard.New(p.Corpus, shard.Config{Shards: 2, Ingest: ingest.DefaultConfig()})
		dst := shard.New(p.Corpus, shard.Config{Shards: 4, Ingest: ingest.DefaultConfig()})
		stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(17+uint64(i)))
		for j := 0; j < posts; j++ {
			src.Ingest(stream.Next())
		}
		src.Quiesce()
		mig, err := shard.NewMigration(src.Cluster(), dst.Cluster(), shard.MigrationConfig{PageSize: 256})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := mig.Run(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		streamed = float64(mig.Stats().PostsStreamed)
		src.Close()
		dst.Close()
		b.StartTimer()
	}
	b.ReportMetric(streamed, "posts")
	b.ReportMetric(streamed*float64(b.N)/b.Elapsed().Seconds(), "posts/s")
}

// BenchmarkEpochVectorSample isolates the per-request cost the serving
// layer pays to sample the vector epoch, which scales with N.
func BenchmarkEpochVectorSample(b *testing.B) {
	for _, shards := range []int{1, 4, 8, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p, _ := testPipeline(b)
			r := shard.New(p.Corpus, shard.Config{Shards: shards, Ingest: ingest.DefaultConfig()})
			defer r.Close()
			buf := make([]uint64, 0, shards)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = r.EpochVector(buf)
			}
		})
	}
}
