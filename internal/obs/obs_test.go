package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	// Every handle method must tolerate a nil receiver — this is the
	// whole un-instrumented fast path.
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Load() != 0 {
		t.Fatal("nil counter loaded non-zero")
	}
	var g *Gauge
	g.Set(5)
	g.Add(5)
	if g.Load() != 0 {
		t.Fatal("nil gauge loaded non-zero")
	}
	var h *Histogram
	h.Observe(5)
	if h.Count() != 0 {
		t.Fatal("nil histogram counted")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot counted")
	}
	var l *SlowLog
	l.Record(QueryTrace{TotalNS: 1})
	if l.Total() != 0 || l.Snapshot() != nil || l.Threshold() != 0 {
		t.Fatal("nil slow log recorded")
	}

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry returned non-nil handle")
	}
	r.RegisterFunc("x", func() int64 { return 1 })
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot non-nil")
	}
	if out := r.WriteMetrics(nil); len(out) != 0 {
		t.Fatalf("nil registry wrote metrics: %q", out)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
		{1<<62 + 1, 63}, // saturates into the top bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramQuantileMax(t *testing.T) {
	var h Histogram
	// 90 fast observations around 100ns, 10 slow around 1ms.
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	// 100 lands in [64,128) → upper bound 128; 1e6 in [2^19,2^20) → 2^20.
	if p50 := s.Quantile(0.50); p50 != 128 {
		t.Errorf("p50 = %d, want 128", p50)
	}
	if p99 := s.Quantile(0.99); p99 != 1<<20 {
		t.Errorf("p99 = %d, want %d", p99, 1<<20)
	}
	if max := s.Max(); max != 1<<20 {
		t.Errorf("max = %d, want %d", max, 1<<20)
	}
	// Quantile bounds clamp rather than panic.
	if lo := s.Quantile(-1); lo != 128 {
		t.Errorf("q(-1) = %d, want 128", lo)
	}
	if hi := s.Quantile(2); hi != 1<<20 {
		t.Errorf("q(2) = %d, want %d", hi, 1<<20)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Max() != 0 || s.Count != 0 {
		t.Fatal("empty histogram reported non-zero statistics")
	}
}

// TestHistogramConcurrentConserved hammers one histogram from many
// goroutines and checks no observation is lost — the acceptance bar for
// the lock-free recording path (run under -race in CI).
func TestHistogramConcurrentConserved(t *testing.T) {
	const goroutines = 8
	const perG = 10_000
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Spread across buckets so the adds contend on several words.
				h.Observe(int64(1) << uint((g*perG+i)%20))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d (observations lost)", got, goroutines*perG)
	}
	s := h.Snapshot()
	var sum int64
	for _, b := range s.Buckets {
		sum += b
	}
	if sum != s.Count || sum != goroutines*perG {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

// TestCounterConcurrentConserved does the same for counters and gauges
// shared through the registry: concurrent get-or-create must converge
// on one underlying atomic.
func TestCounterConcurrentConserved(t *testing.T) {
	const goroutines = 8
	const perG = 10_000
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("c") != r.Counter("c") {
		t.Fatal("same-name counters are distinct")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same-name gauges are distinct")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same-name histograms are distinct")
	}
	// Distinct names are distinct handles.
	if r.Counter("c") == r.Counter("c2") {
		t.Fatal("distinct-name counters are shared")
	}
}

func TestSnapshotAndWriteMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("zebra_total").Add(3)
	r.Gauge("apple_level").Set(-2)
	h := r.Histogram("req_ns")
	h.Observe(100) // one observation in [64,128)
	r.RegisterFunc("callback_value", func() int64 { return 11 })

	got := string(r.WriteMetrics(nil))
	want := strings.Join([]string{
		"apple_level -2",
		"callback_value 11",
		"req_ns_count 1",
		"req_ns_max 128",
		"req_ns_p50 128",
		"req_ns_p99 128",
		"zebra_total 3",
	}, "\n") + "\n"
	if got != want {
		t.Fatalf("WriteMetrics:\n got %q\nwant %q", got, want)
	}

	// Re-registering a func replaces it.
	r.RegisterFunc("callback_value", func() int64 { return 12 })
	for _, m := range r.Snapshot() {
		if m.Name == "callback_value" && m.Value != 12 {
			t.Fatalf("re-registered callback read %d, want 12", m.Value)
		}
	}
}

// TestSnapshotCallbackMayUseRegistry guards against the callback
// deadlock: RegisterFunc callbacks run outside the registry lock, so a
// callback reading another registry handle must not self-deadlock.
func TestSnapshotCallbackMayUseRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("base").Add(5)
	r.RegisterFunc("derived", func() int64 { return r.Counter("base").Load() * 2 })
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, m := range r.Snapshot() {
			if m.Name == "derived" && m.Value != 10 {
				t.Errorf("derived = %d, want 10", m.Value)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Snapshot deadlocked on a callback that re-enters the registry")
	}
}

func TestSlowLogThresholdAndRing(t *testing.T) {
	l := NewSlowLog(3, 100*time.Nanosecond)
	if l.Threshold() != 100*time.Nanosecond {
		t.Fatalf("threshold = %v", l.Threshold())
	}
	l.Record(QueryTrace{Query: "fast", TotalNS: 99}) // below threshold: dropped
	for i := 0; i < 5; i++ {
		l.Record(QueryTrace{Query: fmt.Sprintf("q%d", i), TotalNS: int64(100 + i)})
	}
	if got := l.Total(); got != 5 {
		t.Fatalf("total = %d, want 5 (fast query must not count)", got)
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring kept %d, want 3", len(snap))
	}
	// Newest first: q4, q3, q2 survive; q0/q1 evicted.
	for i, want := range []string{"q4", "q3", "q2"} {
		if snap[i].Query != want {
			t.Fatalf("snapshot[%d] = %q, want %q (order %v)", i, snap[i].Query, want, snap)
		}
	}
}

func TestSlowLogZeroThresholdKeepsAll(t *testing.T) {
	l := NewSlowLog(0, 0) // size clamps to 1
	l.Record(QueryTrace{Query: "a", TotalNS: 0})
	l.Record(QueryTrace{Query: "b", TotalNS: 0})
	if l.Total() != 2 {
		t.Fatalf("total = %d, want 2", l.Total())
	}
	snap := l.Snapshot()
	if len(snap) != 1 || snap[0].Query != "b" {
		t.Fatalf("snapshot = %v, want just b", snap)
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(8, 0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Record(QueryTrace{TotalNS: int64(i)})
			}
		}()
	}
	wg.Wait()
	if l.Total() != 4000 {
		t.Fatalf("total = %d, want 4000", l.Total())
	}
	if len(l.Snapshot()) != 8 {
		t.Fatalf("ring = %d, want 8", len(l.Snapshot()))
	}
}
