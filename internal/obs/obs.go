// Package obs is the observability plane: a dependency-free metrics
// registry (atomic counters, gauges and fixed-bucket latency
// histograms), lightweight per-query trace spans that ride the
// scatter-gather read path, and an admin HTTP surface (/metrics,
// /healthz, /stats, /debug/pprof/) that makes a live multi-process
// deployment inspectable with curl.
//
// The design contract is that instrumentation must never perturb the
// frozen hot path:
//
//   - Recording is a single atomic add behind a pre-registered handle —
//     callers obtain *Counter/*Gauge/*Histogram once at construction
//     and record lock-free afterwards, with zero allocations.
//   - Every handle method is nil-safe: a nil *Counter (or *Gauge,
//     *Histogram, *SlowLog) records nothing, so an un-instrumented
//     deployment pays one predictable-branch nil check and nothing
//     else. Layers gate their time.Now() calls on the registry being
//     present, so the un-instrumented configuration takes zero timing
//     overhead too.
//   - Snapshots (the read side) take the registry lock only to walk the
//     name table; metric values are atomic loads, so readers never
//     stall writers.
//
// A Registry names metrics and serves snapshots; the handles themselves
// are plain structs that work standalone, which is what lets a layer
// fall back to private unregistered counters when no registry is wired
// (the transport server's per-op request counters, for example, must
// keep counting for the RPC-accounting tests whether or not an operator
// attached an admin plane).
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; all methods are safe for concurrent use and nil-safe
// (a nil Counter records nothing and reads zero).
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time level (current segment count, cache size).
// The zero value is ready to use; all methods are safe for concurrent
// use and nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge's level by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Load returns the current level.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of every Histogram: bucket i
// holds observations v with bits.Len64(v) == i, i.e. v in
// [2^(i-1), 2^i). 64 power-of-two buckets cover the full int64 range —
// for latencies in nanoseconds that is sub-ns through ~292 years — so
// recording never needs range checks beyond one clamp.
const histBuckets = 64

// Histogram is a fixed-bucket distribution tuned for latency
// recording: Observe is one atomic add into a power-of-two bucket —
// no locks, no allocation, single-digit nanoseconds — and the read
// side reconstructs count, approximate quantiles and an approximate
// mean from the bucket counts alone. The zero value is ready to use;
// all methods are safe for concurrent use and nil-safe.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one value (for latency histograms, nanoseconds).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// HistSnapshot is one consistent-enough read of a histogram: bucket
// counts are loaded in one pass (concurrent Observes may land between
// loads, which only ever under-counts the tail of the pass — totals
// are conserved per bucket, never lost).
type HistSnapshot struct {
	// Buckets[i] counts observations in [2^(i-1), 2^i).
	Buckets [histBuckets]int64
	// Count is the sum over Buckets.
	Count int64
}

// Snapshot loads the bucket counts.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		b := h.buckets[i].Load()
		s.Buckets[i] = b
		s.Count += b
	}
	return s
}

// Quantile returns the upper bound (2^i) of the bucket the q-quantile
// falls in, for q in [0, 1] — an upper estimate no more than 2x the
// true value, which is the right fidelity for latency dashboards at
// one atomic add per observation. Zero observations report zero.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for i, b := range s.Buckets {
		seen += b
		if seen > rank {
			return upperBound(i)
		}
	}
	return upperBound(histBuckets - 1)
}

// Max returns the upper bound of the highest non-empty bucket (an
// upper estimate of the largest observation). Zero observations report
// zero.
func (s HistSnapshot) Max() int64 {
	for i := histBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return upperBound(i)
		}
	}
	return 0
}

// upperBound returns bucket i's exclusive upper bound, saturating at
// MaxInt64.
func upperBound(i int) int64 {
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1) << i
}

// Metric is one flattened registry entry: a counter, gauge or func
// value, or one derived histogram statistic (histograms flatten to
// <name>_count / _p50 / _p99 / _max rows). The flattening is what
// keeps /metrics a flat text key-value dump and /stats a flat JSON
// object.
type Metric struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Registry names metrics and serves snapshots. Handles are get-or-
// create by name: the first caller allocates, later callers (and the
// snapshot side) share the same underlying atomic. All methods are
// safe for concurrent use; every lookup method is nil-safe and returns
// a nil handle on a nil registry, which downstream records discard —
// the zero-cost un-instrumented path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A
// nil registry returns a nil (no-op) handle.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc exposes a read-callback metric: fn is evaluated at
// snapshot time, which is how pre-existing counters (serve.Stats
// fields, an index's segment count) surface in the registry without
// double accounting on their write paths. Re-registering a name
// replaces the callback. No-op on a nil registry.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Snapshot flattens every metric to sorted name/value rows: counters,
// gauges and funcs one row each, histograms four derived rows
// (<name>_count, <name>_p50, <name>_p99, <name>_max — for latency
// histograms the suffix convention is a _ns name, so the derived rows
// read e.g. serve_request_ns_p99). Func callbacks run outside the
// registry lock.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+4*len(r.hists)+len(r.funcs))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Value: c.Load()})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Value: g.Load()})
	}
	for name, h := range r.hists {
		s := h.Snapshot()
		out = append(out,
			Metric{Name: name + "_count", Value: s.Count},
			Metric{Name: name + "_p50", Value: s.Quantile(0.50)},
			Metric{Name: name + "_p99", Value: s.Quantile(0.99)},
			Metric{Name: name + "_max", Value: s.Max()},
		)
	}
	// Capture the callbacks so they run unlocked: a callback is free to
	// take other locks (serve.Stats takes the cache mutex) without any
	// ordering constraint against the registry's.
	type pending struct {
		name string
		fn   func() int64
	}
	pend := make([]pending, 0, len(r.funcs))
	for name, fn := range r.funcs {
		pend = append(pend, pending{name, fn})
	}
	r.mu.Unlock()
	for _, p := range pend {
		out = append(out, Metric{Name: p.name, Value: p.fn()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteMetrics appends the flat text form — one "name value" line per
// snapshot row, sorted by name — to dst and returns it. This is the
// /metrics wire format.
func (r *Registry) WriteMetrics(dst []byte) []byte {
	for _, m := range r.Snapshot() {
		dst = append(dst, m.Name...)
		dst = append(dst, ' ')
		dst = fmt.Appendf(dst, "%d", m.Value)
		dst = append(dst, '\n')
	}
	return dst
}
