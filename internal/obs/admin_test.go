package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// get performs one request against the admin mux and returns status and
// body.
func get(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestAdminMetricsGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve_queries").Add(2)
	r.Histogram("serve_request_ns").Observe(100)
	mux := NewAdminMux(AdminConfig{Registry: r})
	code, body := get(t, mux, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	want := "serve_queries 2\n" +
		"serve_request_ns_count 1\n" +
		"serve_request_ns_max 128\n" +
		"serve_request_ns_p50 128\n" +
		"serve_request_ns_p99 128\n"
	if body != want {
		t.Fatalf("/metrics:\n got %q\nwant %q", body, want)
	}
}

func TestAdminMetricsEmptyRegistry(t *testing.T) {
	// A nil registry still answers — the plane must not 500 before
	// instrumentation is wired.
	mux := NewAdminMux(AdminConfig{})
	if code, body := get(t, mux, "/metrics"); code != http.StatusOK || body != "" {
		t.Fatalf("/metrics on empty plane: %d %q", code, body)
	}
}

func TestAdminHealthz(t *testing.T) {
	var fail error
	mux := NewAdminMux(AdminConfig{Health: func() error { return fail }})

	code, body := get(t, mux, "/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Fatalf("healthy probe: %d %q", code, body)
	}

	// A backend error must flip the probe to 503 with the error text.
	fail = errors.New("shard 1 unreachable")
	code, body = get(t, mux, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy probe status = %d, want 503", code)
	}
	if !strings.Contains(body, "shard 1 unreachable") {
		t.Fatalf("unhealthy probe body = %q", body)
	}

	// Recovery flips it back.
	fail = nil
	if code, _ = get(t, mux, "/healthz"); code != http.StatusOK {
		t.Fatalf("recovered probe status = %d", code)
	}
}

func TestAdminStatsJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries").Add(7)
	sl := NewSlowLog(4, 0)
	sl.Record(QueryTrace{Query: "storm", TotalNS: 123, Outcome: OutcomeMiss, Start: time.Unix(0, 0)})
	type fakeStats struct {
		Segments int `json:"segments"`
	}
	mux := NewAdminMux(AdminConfig{
		Registry: r,
		SlowLog:  sl,
		Stats:    func() any { return fakeStats{Segments: 3} },
	})
	code, body := get(t, mux, "/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats status = %d", code)
	}
	var payload struct {
		Stats   fakeStats    `json:"stats"`
		Metrics []Metric     `json:"metrics"`
		Slow    []QueryTrace `json:"slow_queries"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/stats is not JSON: %v\n%s", err, body)
	}
	if payload.Stats.Segments != 3 {
		t.Errorf("stats section = %+v", payload.Stats)
	}
	if len(payload.Metrics) != 1 || payload.Metrics[0].Name != "queries" || payload.Metrics[0].Value != 7 {
		t.Errorf("metrics section = %+v", payload.Metrics)
	}
	if len(payload.Slow) != 1 || payload.Slow[0].Query != "storm" || payload.Slow[0].Outcome != OutcomeMiss {
		t.Errorf("slow_queries section = %+v", payload.Slow)
	}
}

func TestAdminPprof(t *testing.T) {
	mux := NewAdminMux(AdminConfig{})
	code, body := get(t, mux, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d %q", code, body)
	}
}

// TestStartAdminServes exercises the real listener end to end: bind :0,
// scrape over TCP, close idempotently.
func TestStartAdminServes(t *testing.T) {
	r := NewRegistry()
	r.Counter("up").Inc()
	adm, err := StartAdmin("127.0.0.1:0", AdminConfig{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()

	resp, err := http.Get("http://" + adm.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: %v status=%d", err, resp.StatusCode)
	}
	if got := string(body); got != "up 1\n" {
		t.Fatalf("scraped %q", got)
	}

	if err := adm.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := adm.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := http.Get("http://" + adm.Addr().String() + "/metrics"); err == nil {
		t.Fatal("scrape succeeded after Close")
	}
}
