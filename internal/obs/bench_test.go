package obs

import "testing"

// BenchmarkObsRecord is the acceptance bar for the recording hot path:
// Histogram.Observe must be a single atomic add — single-digit
// nanoseconds, zero allocations.
func BenchmarkObsRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkObsRecordNil measures the un-instrumented path: a nil handle
// must cost one predictable branch.
func BenchmarkObsRecordNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkObsCounterInc measures the counter path used by the
// per-request accounting.
func BenchmarkObsCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkObsSlowLogFast measures the fast-majority SlowLog path: a
// trace below threshold takes one branch and no lock.
func BenchmarkObsSlowLogFast(b *testing.B) {
	l := NewSlowLog(64, 1<<40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Record(QueryTrace{TotalNS: int64(i & 1023)})
	}
}
