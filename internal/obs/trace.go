package obs

import (
	"sync"
	"time"
)

// Cache outcome labels a QueryTrace carries — the serving layer's
// disposition of a request.
const (
	OutcomeHit         = "hit"         // served from the result cache
	OutcomeMiss        = "miss"        // ran the detector
	OutcomeCoalesced   = "coalesced"   // waited on an identical in-flight request
	OutcomeUncacheable = "uncacheable" // ran around the cache (unobservable epoch vector)
	OutcomeShed        = "shed"        // cold miss refused under overload
	OutcomeRejected    = "rejected"    // degenerate query refused before the cache
)

// ShardSpan is one shard's slice of a scatter-gather query: how long
// its scatter (match + extract, for a remote shard one round trip) and
// gather (denominator fetch) phases took, what it contributed, and
// whether it failed. Spans are recorded by core.ShardedLiveDetector
// only while a registry is attached — the un-instrumented read path
// allocates none of this.
type ShardSpan struct {
	// Shard is the partition index.
	Shard int `json:"shard"`
	// SearchNS and StatsNS time the scatter and gather phases.
	SearchNS int64 `json:"search_ns"`
	StatsNS  int64 `json:"stats_ns"`
	// Matched is the shard's matched-tweet union size; Rows its raw
	// candidate count.
	Matched int `json:"matched"`
	Rows    int `json:"rows"`
	// Err carries the shard's failure, empty when healthy. A failed
	// shard contributed nothing (fail-fast partial results).
	Err string `json:"err,omitempty"`
}

// QueryTrace is one query's end-to-end record: total latency, the
// serving-layer cache outcome, and — for scatter-gather backends with
// a registry attached — the per-shard spans plus the global merge/rank
// time. The serving layer keeps the slow ones in a SlowLog ring.
type QueryTrace struct {
	// Query is the normalized query text; Baseline marks the
	// unexpanded Pal & Counts endpoint.
	Query    string `json:"query"`
	Baseline bool   `json:"baseline,omitempty"`
	// Start is when the serving layer admitted the request.
	Start time.Time `json:"start"`
	// TotalNS is the end-to-end serving latency.
	TotalNS int64 `json:"total_ns"`
	// Outcome is the cache disposition (Outcome* constants).
	Outcome string `json:"outcome"`
	// MatchedTweets is the global matched-union size (zero for cache
	// hits, which never touched the detector).
	MatchedTweets int `json:"matched_tweets,omitempty"`
	// MergeRankNS times the global gather tail: numerator merge,
	// denominator accumulation, finalize and rank.
	MergeRankNS int64 `json:"merge_rank_ns,omitempty"`
	// Failovers counts replicated reads that failed over during this
	// query (best-effort under concurrency: the delta of the backend's
	// cumulative counter across the request).
	Failovers int64 `json:"failovers,omitempty"`
	// Shards holds the per-shard spans (nil for non-sharded backends
	// and cache hits).
	Shards []ShardSpan `json:"shards,omitempty"`
}

// SlowLog is a fixed-size ring of the most recent query traces that
// crossed a latency threshold. Record is cheap for the fast majority —
// one branch against the threshold, no lock taken — and the ring holds
// the evidence an operator needs when tail latency moves: which
// queries, which shards, cache outcome, where the time went. All
// methods are safe for concurrent use and nil-safe.
type SlowLog struct {
	threshold int64 // ns; traces at or above it are kept
	mu        sync.Mutex
	ring      []QueryTrace
	next      int   // ring write cursor
	total     int64 // traces recorded since construction
}

// NewSlowLog returns a ring of size entries keeping traces whose total
// latency is at least threshold. Size is clamped to at least 1; a zero
// threshold keeps everything (useful in tests and demos).
func NewSlowLog(size int, threshold time.Duration) *SlowLog {
	if size < 1 {
		size = 1
	}
	return &SlowLog{threshold: int64(threshold), ring: make([]QueryTrace, 0, size)}
}

// Threshold returns the minimum total latency a kept trace has.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.threshold)
}

// Record keeps t if it crosses the threshold, evicting the oldest
// entry when the ring is full.
func (l *SlowLog) Record(t QueryTrace) {
	if l == nil || t.TotalNS < l.threshold {
		return
	}
	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, t)
	} else {
		l.ring[l.next] = t
		l.next = (l.next + 1) % cap(l.ring)
	}
	l.total++
	l.mu.Unlock()
}

// Total returns how many traces have been recorded (kept) since
// construction, including ones the ring has since evicted.
func (l *SlowLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the kept traces, newest first.
func (l *SlowLog) Snapshot() []QueryTrace {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QueryTrace, 0, len(l.ring))
	// The ring is ordered oldest→newest starting at next (once full);
	// walk it backwards for newest-first.
	for k := len(l.ring) - 1; k >= 0; k-- {
		i := k
		if len(l.ring) == cap(l.ring) {
			i = (l.next + k) % cap(l.ring)
		}
		out = append(out, l.ring[i])
	}
	return out
}
