package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// AdminConfig wires an admin HTTP surface over one registry.
type AdminConfig struct {
	// Registry backs /metrics and the "metrics" section of /stats. Nil
	// serves an empty metric set (the endpoints still answer).
	Registry *Registry
	// SlowLog, when non-nil, adds the "slow_queries" section to /stats.
	SlowLog *SlowLog
	// Health drives /healthz: nil means always healthy; a non-nil
	// error flips the endpoint to 503 with the error text — a shard
	// backend failing is exactly the state an orchestrator's probe
	// should see.
	Health func() error
	// Stats, when non-nil, supplies the "stats" section of /stats —
	// typically a serve.Stats or ingest.IndexStats snapshot; anything
	// encoding/json can marshal.
	Stats func() any
}

// NewAdminMux builds the admin endpoints on a fresh mux:
//
//	/metrics       flat text key-value dump of the registry
//	/healthz       200 "ok" or 503 with the health error
//	/stats         JSON: stats snapshot + registry snapshot + slow queries
//	/debug/pprof/  the standard runtime profiles
//
// The mux is standalone (nothing registers on http.DefaultServeMux),
// so two servers in one process — a shard's admin plane and a test's —
// never collide.
func NewAdminMux(cfg AdminConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(cfg.Registry.WriteMetrics(nil))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.Health != nil {
			if err := cfg.Health(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "unhealthy: %v\n", err)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		payload := struct {
			Stats   any          `json:"stats,omitempty"`
			Metrics []Metric     `json:"metrics"`
			Slow    []QueryTrace `json:"slow_queries,omitempty"`
		}{Metrics: cfg.Registry.Snapshot()}
		if payload.Metrics == nil {
			payload.Metrics = []Metric{}
		}
		if cfg.Stats != nil {
			payload.Stats = cfg.Stats()
		}
		payload.Slow = cfg.SlowLog.Snapshot()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// AdminServer is one listening admin plane; Close stops it.
type AdminServer struct {
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	closed bool
}

// StartAdmin binds addr (":0" picks a free port — read it back with
// Addr) and serves the admin endpoints in a background goroutine until
// Close.
func StartAdmin(addr string, cfg AdminConfig) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	a := &AdminServer{
		ln: ln,
		srv: &http.Server{
			Handler: NewAdminMux(cfg),
			// An admin plane must not let a stuck scraper pin goroutines;
			// pprof's CPU profile endpoint needs headroom, so only reads
			// are bounded tightly.
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go a.srv.Serve(ln)
	return a, nil
}

// Addr returns the bound listen address.
func (a *AdminServer) Addr() net.Addr { return a.ln.Addr() }

// Close stops the listener and closes open admin connections.
// Idempotent.
func (a *AdminServer) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	a.closed = true
	return a.srv.Close()
}
