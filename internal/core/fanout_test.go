package core

import (
	"sync"
	"testing"
)

var fanoutQueries = []string{
	"49ers", "49ers schedule", "diabetes", "nfl", "dow futures",
	"sarah palin", "world war i", "coffee", "zzz-none",
}

// TestParallelFanOutMatchesSequential forces the matching fan-out onto
// multiple workers (GOMAXPROCS may be 1 on CI) and checks that results
// are identical to sequential matching, query by query.
func TestParallelFanOutMatchesSequential(t *testing.T) {
	p := tinyPipeline(t)
	cfg := p.Cfg.Online
	cfg.MatchWorkers = 4
	par := NewDetector(p.Collection, p.Corpus, cfg)
	cfg.MatchWorkers = 1
	seq := NewDetector(p.Collection, p.Corpus, cfg)
	for _, q := range fanoutQueries {
		got, gotTrace := par.Search(q)
		want, wantTrace := seq.Search(q)
		if len(got) != len(want) {
			t.Fatalf("query %q: parallel %d results, sequential %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %q rank %d: parallel %+v, sequential %+v", q, i, got[i], want[i])
			}
		}
		if gotTrace.MatchedTweets != wantTrace.MatchedTweets {
			t.Fatalf("query %q: parallel matched %d tweets, sequential %d",
				q, gotTrace.MatchedTweets, wantTrace.MatchedTweets)
		}
	}
}

// TestDetectorConcurrentSearch hammers one detector (parallel fan-out
// enabled) from many goroutines — run under the race detector by
// `make race` — and checks every response against precomputed answers.
func TestDetectorConcurrentSearch(t *testing.T) {
	p := tinyPipeline(t)
	cfg := p.Cfg.Online
	cfg.MatchWorkers = 4
	det := NewDetector(p.Collection, p.Corpus, cfg)
	type answer struct {
		users   []int32
		matched int
	}
	want := make(map[string]answer, len(fanoutQueries))
	for _, q := range fanoutQueries {
		res, trace := det.Search(q)
		a := answer{matched: trace.MatchedTweets}
		for _, e := range res {
			a.users = append(a.users, int32(e.User))
		}
		want[q] = a
	}

	const workers, rounds = 8, 50
	errs := make(chan string, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				q := fanoutQueries[(w+i)%len(fanoutQueries)]
				res, trace := det.Search(q)
				exp := want[q]
				if trace.MatchedTweets != exp.matched || len(res) != len(exp.users) {
					errs <- "mismatch for " + q
					return
				}
				for j, e := range res {
					if int32(e.User) != exp.users[j] {
						errs <- "user mismatch for " + q
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
