// Package core assembles e#, the paper's contribution: a recall-oriented
// expert-detection pipeline that augments the Pal & Counts baseline with
// query expansion over a collection of expertise domains mined from a
// search query log.
//
// The offline stage (BuildCollection) extracts the term similarity graph
// from the click log, clusters it with the parallel modularity algorithm
// and indexes the resulting domains. The online stage (Detector) matches
// an incoming query against a domain "exactly and in order, after
// lower-casing", runs the base expert search once per related term,
// unions the matched tweets and ranks the pooled candidates once — the
// two-phase architecture of Figure 1.
//
// The online stage comes in three flavours over the same algorithm:
// Detector searches a frozen corpus; LiveDetector (live.go) searches
// the streaming index of internal/ingest — each query runs against one
// epoch-tagged snapshot (base corpus + sealed segments + active tail)
// acquired with a single atomic load, so tweets keep arriving while
// searches run; and ShardedLiveDetector (sharded.go) scatter-gathers
// over the author-partitioned router of internal/shard — one snapshot
// per shard, per-shard matching and raw-candidate extraction, a global
// merge of the integer feature counters, one ranking pass. All three
// are held to the same bar: a quiesced live or sharded index ranks
// bit-identically to a cold Detector over the same posts. See
// ARCHITECTURE.md at the repo root for the full layer-by-layer tour.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/community"
	"repro/internal/domains"
	"repro/internal/expertise"
	"repro/internal/microblog"
	"repro/internal/obs"
	"repro/internal/querylog"
	"repro/internal/simgraph"
	"repro/internal/world"
)

// OfflineConfig tunes the offline collection build.
type OfflineConfig struct {
	// Graph configures similarity-graph construction (Section 4.1).
	Graph simgraph.Config
	// Resolution discretizes edge weights into integer units (footnote 1).
	Resolution int
	// Community configures the clustering stage (Section 4.2).
	Community community.Options
	// UseSQLBackend runs clustering on the relational engine instead of
	// the direct in-memory implementation. Both produce identical
	// domains; the SQL path exists because the paper's deployment does.
	UseSQLBackend bool
}

// DefaultOfflineConfig returns the offline defaults.
func DefaultOfflineConfig() OfflineConfig {
	return OfflineConfig{
		Graph:      simgraph.DefaultConfig(),
		Resolution: 20,
		Community:  community.DefaultOptions(),
	}
}

// BuildResult carries the offline artifacts and their statistics.
type BuildResult struct {
	Graph      *simgraph.Graph
	Clustering *community.Result
	Collection *domains.Collection
	// GraphStats and ClusterStats are Table 9 rows for the two offline
	// steps.
	GraphStats   querylog.Stats
	ClusterStats querylog.Stats
}

// BuildCollection runs the offline stage on an aggregated click log.
func BuildCollection(log *querylog.Log, cfg OfflineConfig) (*BuildResult, error) {
	if cfg.Resolution <= 0 {
		cfg.Resolution = 20
	}
	start := time.Now()
	graph := simgraph.Build(log, cfg.Graph)
	graphStats := querylog.Stats{
		Stage:    "graph",
		Workers:  cfg.Graph.Workers,
		Duration: time.Since(start),
		Records:  graph.NumEdges(),
	}

	start = time.Now()
	ig := graph.Discretize(cfg.Resolution)
	var res *community.Result
	var err error
	if cfg.UseSQLBackend {
		res, err = community.DetectSQL(ig, cfg.Community)
		if err != nil {
			return nil, fmt.Errorf("core: sql clustering: %w", err)
		}
	} else {
		res = community.DetectParallel(ig, cfg.Community)
	}
	clusterStats := querylog.Stats{
		Stage:    "clustering",
		Workers:  cfg.Community.Workers,
		Duration: time.Since(start),
		Records:  res.NumCommunities,
	}

	return &BuildResult{
		Graph:        graph,
		Clustering:   res,
		Collection:   domains.FromClustering(graph, res),
		GraphStats:   graphStats,
		ClusterStats: clusterStats,
	}, nil
}

// OnlineConfig tunes the online detector.
type OnlineConfig struct {
	// MaxExpansionTerms caps how many related terms augment the query
	// (most central terms first). Zero means 10.
	MaxExpansionTerms int
	// Match selects the domain matching predicate. The default is the
	// paper's conservative exact match; the relaxed modes are ablations.
	Match domains.MatchMode
	// MatchWorkers caps the per-term matching fan-out of Search. Zero
	// means GOMAXPROCS; 1 forces sequential matching. Serving layers
	// that already run many Search calls concurrently (internal/serve)
	// should set 1: request-level parallelism saturates the cores, and
	// per-query fan-out on top only adds scheduling overhead.
	MatchWorkers int
	// Expertise parameterizes the underlying Pal & Counts ranker.
	Expertise expertise.Params
	// Obs, when non-nil, attaches the detector to a metrics registry.
	// ShardedLiveDetector then times each shard's scatter and gather
	// phases into per-shard latency histograms, times the global
	// merge/rank tail, and fills SearchTrace.Shards with per-query
	// spans for the serving layer's slow-query log. Nil (the default)
	// keeps the read path exactly as fast and allocation-free as
	// un-instrumented — no clock reads, no span slices.
	Obs *obs.Registry
}

// DefaultOnlineConfig returns the online defaults.
func DefaultOnlineConfig() OnlineConfig {
	return OnlineConfig{
		MaxExpansionTerms: 10,
		Match:             domains.MatchExact,
		Expertise:         expertise.DefaultParams(),
	}
}

// Detector is the online e# engine. It answers both e# queries
// (Search) and baseline queries (SearchBaseline) so evaluations compare
// the two on identical state.
type Detector struct {
	collection *domains.Collection
	corpus     *microblog.Corpus
	base       *expertise.Detector
	cfg        OnlineConfig
	scratch    sync.Pool // of *searchScratch, reused across queries
}

// searchScratch holds the per-query buffers of the online stage: one
// matched-tweet buffer per expansion term, the k-way merge frontier,
// and the merged union. It is pooled so steady-state queries run
// near-allocation-free.
type searchScratch struct {
	lists    [][]microblog.TweetID
	frontier [][]microblog.TweetID
	merged   []microblog.TweetID
}

// NewDetector wires the online stage.
func NewDetector(coll *domains.Collection, corpus *microblog.Corpus, cfg OnlineConfig) *Detector {
	if cfg.MaxExpansionTerms <= 0 {
		cfg.MaxExpansionTerms = 10
	}
	d := &Detector{
		collection: coll,
		corpus:     corpus,
		base:       expertise.New(corpus, cfg.Expertise),
		cfg:        cfg,
	}
	d.scratch.New = func() any { return &searchScratch{} }
	return d
}

// Collection returns the domain collection backing expansion.
func (d *Detector) Collection() *domains.Collection { return d.collection }

// Corpus returns the microblog corpus being searched.
func (d *Detector) Corpus() *microblog.Corpus { return d.corpus }

// Base returns the underlying baseline detector.
func (d *Detector) Base() *expertise.Detector { return d.base }

// Epoch returns 0: a frozen index has a single, eternal view, so
// results cached against it never go stale (see internal/serve's
// epoch-keyed invalidation and LiveDetector.Epoch).
func (d *Detector) Epoch() uint64 { return 0 }

// Expand returns the expansion terms for a query (excluding the query
// itself). Empty means the query matched no domain or an orphan.
func (d *Detector) Expand(query string) []string {
	return d.collection.ExpandMode(query, d.cfg.MaxExpansionTerms, d.cfg.Match)
}

// SearchTrace reports what the online stage did for one query.
type SearchTrace struct {
	Query string
	// Expansion lists the related terms appended to the query.
	Expansion []string
	// MatchedTweets is the size of the unioned matched-tweet set.
	MatchedTweets int
	// ExpandDuration and SearchDuration split the online latency into
	// the Table 9 "Expansion" and "Detection" rows.
	ExpandDuration time.Duration
	SearchDuration time.Duration
	// Shards holds per-shard scatter/gather spans and MergeRankNS the
	// global merge+rank tail — filled only by ShardedLiveDetector, and
	// only while OnlineConfig.Obs attaches a registry (the serving
	// layer's slow-query log rides them). Nil/zero otherwise.
	Shards      []obs.ShardSpan
	MergeRankNS int64
}

// Search runs the full e# online stage: expansion, per-term matching
// fanned out over parallel workers, a k-way merge union, and a single
// ranking pass. It is safe for concurrent use; per-query buffers are
// pooled, so steady-state queries allocate almost nothing beyond the
// returned result slice.
func (d *Detector) Search(query string) ([]expertise.Expert, SearchTrace) {
	trace := SearchTrace{Query: query}

	start := time.Now()
	trace.Expansion = d.Expand(query)
	trace.ExpandDuration = time.Since(start)

	start = time.Now()
	s := d.scratch.Get().(*searchScratch)
	nTerms := 1 + len(trace.Expansion)
	for len(s.lists) < nTerms {
		s.lists = append(s.lists, nil)
	}
	lists := s.lists[:nTerms]
	term := func(i int) string {
		if i == 0 {
			return query
		}
		return trace.Expansion[i-1]
	}
	matchFanOut(nTerms, d.cfg.MatchWorkers, func(i int) {
		lists[i] = d.corpus.MatchAppend(term(i), lists[i])
	})
	s.merged, s.frontier = expertise.MergeTweetsInto(s.merged, s.frontier, lists...)
	trace.MatchedTweets = len(s.merged)
	results := d.base.Rank(d.base.CandidatesFromTweets(s.merged))
	d.scratch.Put(s)
	trace.SearchDuration = time.Since(start)
	return results, trace
}

// SearchContext is Search with a cancellation check at entry; the
// frozen detector never blocks, so no deeper check is useful. See
// LiveDetector.SearchContext.
func (d *Detector) SearchContext(ctx context.Context, query string) ([]expertise.Expert, SearchTrace, error) {
	if err := ctx.Err(); err != nil {
		return nil, SearchTrace{Query: query}, err
	}
	results, trace := d.Search(query)
	return results, trace, nil
}

// SearchBaselineContext is SearchBaseline with a cancellation check at
// entry, mirroring SearchContext.
func (d *Detector) SearchBaselineContext(ctx context.Context, query string) ([]expertise.Expert, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return d.SearchBaseline(query), nil
}

// SearchBaseline runs the unexpanded Pal & Counts baseline.
func (d *Detector) SearchBaseline(query string) []expertise.Expert {
	return d.base.Search(query)
}

// matchFanOut runs matchTerm(i) for every i in [0, nTerms), spread
// over up to maxWorkers goroutines (maxWorkers <= 0 means GOMAXPROCS).
// Short queries (one term, or two with nothing to amortize the
// goroutine cost over) run sequentially — a heuristic sized to cheap
// per-term matches; heavier work units (per-shard scatter-gather)
// should call fanOut directly. Shared by the frozen and live search
// paths so their parallelism heuristics cannot drift apart.
func matchFanOut(nTerms, maxWorkers int, matchTerm func(i int)) {
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	workers := min(nTerms, maxWorkers)
	if workers <= 1 || nTerms <= 2 {
		for i := 0; i < nTerms; i++ {
			matchTerm(i)
		}
		return
	}
	fanOut(nTerms, workers, matchTerm)
}

// fanOut runs task(i) for every i in [0, n) over exactly workers
// goroutines pulling indices from a shared counter; workers <= 1 (or a
// single task) runs inline.
func fanOut(n, workers int, task func(i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
}

// PipelineConfig configures an end-to-end build from a synthetic world.
type PipelineConfig struct {
	World     world.Config
	Log       querylog.GenConfig
	Tweets    microblog.GenConfig
	Offline   OfflineConfig
	Online    OnlineConfig
	MinClicks int
	// ShardDir, when non-empty, routes the click log through sharded
	// files on disk (measuring real I/O for Table 9); otherwise the log
	// is aggregated in memory.
	ShardDir string
}

// DefaultPipelineConfig returns the laptop-scale configuration used by
// cmd/experiments: it reproduces every figure in minutes.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		World:     world.DefaultConfig(),
		Log:       querylog.DefaultGenConfig(),
		Tweets:    microblog.DefaultGenConfig(),
		Offline:   DefaultOfflineConfig(),
		Online:    DefaultOnlineConfig(),
		MinClicks: 20,
	}
}

// TinyPipelineConfig returns a miniature configuration for tests.
func TinyPipelineConfig() PipelineConfig {
	cfg := DefaultPipelineConfig()
	cfg.World = world.TinyConfig()
	cfg.Log = querylog.TinyGenConfig()
	cfg.Tweets = microblog.TinyGenConfig()
	cfg.MinClicks = 5
	return cfg
}

// Pipeline bundles every artifact of an end-to-end build.
type Pipeline struct {
	Cfg        PipelineConfig
	World      *world.World
	Log        *querylog.Log
	Graph      *simgraph.Graph
	Clustering *community.Result
	Collection *domains.Collection
	Corpus     *microblog.Corpus
	Detector   *Detector
	// Stages collects the Table 9 resource rows in execution order.
	Stages []querylog.Stats
}

// BuildPipeline generates the world, click log and corpus, then runs
// the offline stage and wires the online detector.
func BuildPipeline(cfg PipelineConfig) (*Pipeline, error) {
	p := &Pipeline{Cfg: cfg}
	p.World = world.Build(cfg.World)

	gen := querylog.NewGenerator(p.World, cfg.Log)
	if cfg.ShardDir != "" {
		genStats, err := gen.Generate(cfg.ShardDir)
		if err != nil {
			return nil, fmt.Errorf("core: generate log: %w", err)
		}
		p.Stages = append(p.Stages, genStats)
		log, aggStats, err := querylog.AggregateShards(cfg.ShardDir, cfg.MinClicks)
		if err != nil {
			return nil, fmt.Errorf("core: aggregate log: %w", err)
		}
		p.Log = log
		p.Stages = append(p.Stages, aggStats)
	} else {
		start := time.Now()
		p.Log = querylog.AggregateRecords(gen.GenerateRecords(), cfg.MinClicks)
		p.Stages = append(p.Stages, querylog.Stats{
			Stage:    "extraction",
			Workers:  1,
			Duration: time.Since(start),
			Records:  p.Log.NumQueries(),
		})
	}

	build, err := BuildCollection(p.Log, cfg.Offline)
	if err != nil {
		return nil, err
	}
	p.Graph = build.Graph
	p.Clustering = build.Clustering
	p.Collection = build.Collection
	p.Stages = append(p.Stages, build.GraphStats, build.ClusterStats)

	start := time.Now()
	p.Corpus = microblog.Generate(p.World, cfg.Tweets)
	p.Stages = append(p.Stages, querylog.Stats{
		Stage:    "corpus",
		Workers:  1,
		Duration: time.Since(start),
		Records:  p.Corpus.NumTweets(),
	})

	p.Detector = NewDetector(p.Collection, p.Corpus, cfg.Online)
	return p, nil
}

// RefreshConfig controls a weekly refresh of the offline collection.
type RefreshConfig struct {
	// Log generates the new period's click events (give it a fresh Seed).
	Log querylog.GenConfig
	// Decay scales the previous log's click counts before merging
	// (1 keeps full history, 0 discards it).
	Decay float64
	// MinClicks is the noise filter applied to the merged log.
	MinClicks int
}

// Refresh folds a new period of search behaviour into the pipeline —
// the paper's offline stage "runs weekly on a production cluster". The
// previous log decays, the new log merges in, and the similarity graph,
// clustering, domain collection and online detector are rebuilt. The
// tweet corpus is left untouched: refresh changes what queries expand
// to, not what was posted.
func (p *Pipeline) Refresh(cfg RefreshConfig) error {
	if cfg.Decay < 0 || cfg.Decay > 1 {
		return fmt.Errorf("core: refresh decay %v outside [0,1]", cfg.Decay)
	}
	if cfg.MinClicks <= 0 {
		cfg.MinClicks = p.Cfg.MinClicks
	}
	start := time.Now()
	gen := querylog.NewGenerator(p.World, cfg.Log)
	fresh := querylog.AggregateRecords(gen.GenerateRecords(), 1)
	p.Log = querylog.Merge(p.Log.Scale(cfg.Decay), fresh, cfg.MinClicks)
	p.Stages = append(p.Stages, querylog.Stats{
		Stage:    "refresh",
		Workers:  1,
		Duration: time.Since(start),
		Records:  p.Log.NumQueries(),
	})

	build, err := BuildCollection(p.Log, p.Cfg.Offline)
	if err != nil {
		return fmt.Errorf("core: refresh rebuild: %w", err)
	}
	p.Graph = build.Graph
	p.Clustering = build.Clustering
	p.Collection = build.Collection
	p.Stages = append(p.Stages, build.GraphStats, build.ClusterStats)
	p.Detector = NewDetector(p.Collection, p.Corpus, p.Cfg.Online)
	return nil
}
