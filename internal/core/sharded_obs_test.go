package core

import (
	"testing"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/shard"
)

// TestShardedDetectorObsInstrumentation pins the scatter-gather
// instrumentation from inside the package: per-shard histograms and
// spans are recorded when a registry is wired, the accessors agree
// with the router, and — the must-not-perturb bar — the instrumented
// detector ranks identically to an un-instrumented one.
func TestShardedDetectorObsInstrumentation(t *testing.T) {
	p := tinyPipeline(t)
	r := shard.New(p.Corpus, shard.Config{Shards: 2, Ingest: ingest.DefaultConfig()})
	defer r.Close()

	reg := obs.NewRegistry()
	cfg := p.Cfg.Online
	cfg.Obs = reg
	d := NewShardedLiveDetector(p.Collection, r, cfg)
	plainCfg := p.Cfg.Online
	plain := NewShardedLiveDetector(p.Collection, r, plainCfg)

	experts, trace := d.Search("49ers")
	wantExperts, wantTrace := plain.Search("49ers")
	if len(experts) != len(wantExperts) {
		t.Fatalf("instrumented returned %d experts, plain %d", len(experts), len(wantExperts))
	}
	for i := range wantExperts {
		if experts[i] != wantExperts[i] {
			t.Fatalf("rank %d diverged: %+v vs %+v", i, experts[i], wantExperts[i])
		}
	}
	if trace.MatchedTweets != wantTrace.MatchedTweets {
		t.Fatalf("matched %d vs %d", trace.MatchedTweets, wantTrace.MatchedTweets)
	}

	// The instrumented trace carries spans; the plain one must not.
	if len(trace.Shards) != 2 {
		t.Fatalf("trace has %d spans, want 2: %+v", len(trace.Shards), trace)
	}
	if wantTrace.Shards != nil {
		t.Fatalf("un-instrumented trace grew spans: %+v", wantTrace.Shards)
	}
	var matched int
	for i, sp := range trace.Shards {
		if sp.Shard != i || sp.Err != "" {
			t.Errorf("span %d: %+v", i, sp)
		}
		if sp.SearchNS <= 0 {
			t.Errorf("span %d has no scatter timing", i)
		}
		matched += sp.Matched
	}
	if matched != trace.MatchedTweets {
		t.Errorf("span matched sum %d != trace matched %d", matched, trace.MatchedTweets)
	}
	if trace.MergeRankNS <= 0 {
		t.Errorf("merge/rank not timed: %+v", trace)
	}

	// Registry rows moved once per shard, and merge/rank once.
	rows := map[string]int64{}
	for _, m := range reg.Snapshot() {
		rows[m.Name] = m.Value
	}
	for _, name := range []string{
		"sharded_shard0_search_ns_count",
		"sharded_shard1_search_ns_count",
		"sharded_merge_rank_ns_count",
	} {
		if rows[name] != 1 {
			t.Errorf("%s = %d, want 1", name, rows[name])
		}
	}
	if rows["sharded_shard_errors"] != 0 {
		t.Errorf("sharded_shard_errors = %d, want 0", rows["sharded_shard_errors"])
	}

	// Baseline path records too (no expansion, same scatter).
	base := d.SearchBaseline("49ers")
	wantBase := plain.SearchBaseline("49ers")
	if len(base) != len(wantBase) {
		t.Fatalf("baseline diverged: %d vs %d experts", len(base), len(wantBase))
	}

	// Accessors agree with the router they wrap.
	if d.Router() != r || d.Cluster() != r.Cluster() || d.Collection() != p.Collection {
		t.Error("accessors do not round-trip construction")
	}
	if d.Epoch() != r.Epoch() {
		t.Errorf("Epoch %d != router %d", d.Epoch(), r.Epoch())
	}
	if v := d.EpochVector(nil); len(v) != 2 {
		t.Errorf("EpochVector = %v, want 2 components", v)
	}
	if pq, se := d.PartialStats(); pq != 0 || se != 0 {
		t.Errorf("healthy cluster reported partials: %d/%d", pq, se)
	}
	if d.Failovers() != 0 {
		t.Errorf("Failovers = %d, want 0", d.Failovers())
	}
}
