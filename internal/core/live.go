package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/domains"
	"repro/internal/expertise"
	"repro/internal/ingest"
	"repro/internal/microblog"
)

// LiveDetector is the online e# engine over a streaming index: the
// same two-phase architecture as Detector — expansion, per-term
// matching fanned out over workers, k-way merge union, one ranking
// pass — but every query runs against a single epoch-tagged snapshot
// acquired with one atomic load, so concurrent ingestion, sealing and
// compaction never perturb an in-flight query. A live index that has
// quiesced ranks bit-identically to a cold Detector built over the
// same posts (the ingest equivalence tests enforce this).
type LiveDetector struct {
	collection *domains.Collection
	index      *ingest.Index
	ranker     *expertise.Ranker
	cfg        OnlineConfig
	scratch    sync.Pool // of *liveScratch, reused across queries
}

// liveScratch holds the per-query buffers of the live online stage:
// one matched-tweet buffer and one segment-local scratch per expansion
// term, the k-way merge frontier, and the merged union.
type liveScratch struct {
	lists    [][]microblog.TweetID
	locals   [][]microblog.TweetID
	frontier [][]microblog.TweetID
	merged   []microblog.TweetID
}

// NewLiveDetector wires the online stage over a streaming index.
func NewLiveDetector(coll *domains.Collection, idx *ingest.Index, cfg OnlineConfig) *LiveDetector {
	if cfg.MaxExpansionTerms <= 0 {
		cfg.MaxExpansionTerms = 10
	}
	d := &LiveDetector{
		collection: coll,
		index:      idx,
		ranker:     expertise.NewRanker(idx.Base().NumUsers(), cfg.Expertise),
		cfg:        cfg,
	}
	d.scratch.New = func() any { return &liveScratch{} }
	return d
}

// Collection returns the domain collection backing expansion.
func (d *LiveDetector) Collection() *domains.Collection { return d.collection }

// Index returns the streaming index being searched.
func (d *LiveDetector) Index() *ingest.Index { return d.index }

// Epoch returns the epoch of the view the next query would observe.
// Serving layers key cache validity on it: a snapshot swap bumps the
// epoch, invalidating results computed over the older view.
func (d *LiveDetector) Epoch() uint64 { return d.index.Epoch() }

// Expand returns the expansion terms for a query (excluding the query
// itself).
func (d *LiveDetector) Expand(query string) []string {
	return d.collection.ExpandMode(query, d.cfg.MaxExpansionTerms, d.cfg.Match)
}

// Search runs the full e# online stage against the current snapshot.
// Safe for concurrent use with ingestion and compaction.
func (d *LiveDetector) Search(query string) ([]expertise.Expert, SearchTrace) {
	trace := SearchTrace{Query: query}

	start := time.Now()
	trace.Expansion = d.Expand(query)
	trace.ExpandDuration = time.Since(start)

	start = time.Now()
	snap := d.index.Snapshot()
	s := d.scratch.Get().(*liveScratch)
	nTerms := 1 + len(trace.Expansion)
	for len(s.lists) < nTerms {
		s.lists = append(s.lists, nil)
		s.locals = append(s.locals, nil)
	}
	lists := s.lists[:nTerms]
	locals := s.locals[:nTerms]
	term := func(i int) string {
		if i == 0 {
			return query
		}
		return trace.Expansion[i-1]
	}
	matchFanOut(nTerms, d.cfg.MatchWorkers, func(i int) {
		lists[i], locals[i] = snap.MatchAppendScratch(term(i), lists[i], locals[i])
	})
	s.merged, s.frontier = expertise.MergeTweetsInto(s.merged, s.frontier, lists...)
	trace.MatchedTweets = len(s.merged)
	results := d.ranker.Rank(d.ranker.CandidatesFrom(snap, s.merged))
	d.scratch.Put(s)
	trace.SearchDuration = time.Since(start)
	return results, trace
}

// SearchContext is Search with a cancellation check at entry. The
// single-node search never blocks (no I/O, bounded CPU), so honoring
// the context any deeper would buy nothing; the check exists so the
// serving layer can treat every detector uniformly.
func (d *LiveDetector) SearchContext(ctx context.Context, query string) ([]expertise.Expert, SearchTrace, error) {
	if err := ctx.Err(); err != nil {
		return nil, SearchTrace{Query: query}, err
	}
	results, trace := d.Search(query)
	return results, trace, nil
}

// SearchBaselineContext is SearchBaseline with a cancellation check at
// entry, mirroring SearchContext.
func (d *LiveDetector) SearchBaselineContext(ctx context.Context, query string) ([]expertise.Expert, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return d.SearchBaseline(query), nil
}

// SearchBaseline runs the unexpanded Pal & Counts baseline against the
// current snapshot.
func (d *LiveDetector) SearchBaseline(query string) []expertise.Expert {
	snap := d.index.Snapshot()
	s := d.scratch.Get().(*liveScratch)
	if len(s.lists) == 0 {
		s.lists = append(s.lists, nil)
		s.locals = append(s.locals, nil)
	}
	s.lists[0], s.locals[0] = snap.MatchAppendScratch(query, s.lists[0], s.locals[0])
	results := d.ranker.Rank(d.ranker.CandidatesFrom(snap, s.lists[0]))
	d.scratch.Put(s)
	return results
}
