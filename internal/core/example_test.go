package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/domains"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/shard"
	"repro/internal/world"
)

// ExampleShardedLiveDetector shows the scatter-gather read path over an
// author-partitioned stream: posts route to their author's shard, a
// query fans out across every shard's snapshot, and the per-shard
// candidates merge into one globally ranked answer. The router's epoch
// vector (one component per shard) is what the serving cache
// invalidates on.
func ExampleShardedLiveDetector() {
	w := world.Build(world.TinyConfig())
	r := shard.New(microblog.BuildCorpus(w, nil),
		shard.Config{Shards: 4, Ingest: ingest.DefaultConfig()})
	defer r.Close()

	r.Ingest(microblog.Post{Author: 3, Text: "rust borrow checker tips"})
	r.Ingest(microblog.Post{Author: 7, Text: "the borrow checker explained"})

	// An empty collection means no query expansion — fine for a demo;
	// production passes the mined domain collection.
	d := core.NewShardedLiveDetector(&domains.Collection{}, r, core.DefaultOnlineConfig())
	experts, trace := d.Search("borrow checker")
	fmt.Println("matched tweets:", trace.MatchedTweets)
	fmt.Println("experts:", len(experts))
	fmt.Println("epoch vector components:", len(r.EpochVector(nil)))
	// Output:
	// matched tweets: 2
	// experts: 2
	// epoch vector components: 4
}
