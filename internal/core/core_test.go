package core

import (
	"sync"
	"testing"
	"time"
)

// sharedPipeline builds the tiny pipeline once; it is read-only after
// construction so tests share it.
var (
	pipeOnce sync.Once
	pipe     *Pipeline
	pipeErr  error
)

func tinyPipeline(t testing.TB) *Pipeline {
	t.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = BuildPipeline(TinyPipelineConfig())
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe
}

func TestBuildPipelineArtifacts(t *testing.T) {
	p := tinyPipeline(t)
	if p.Log.NumQueries() == 0 {
		t.Error("empty log")
	}
	if p.Graph.NumEdges() == 0 {
		t.Error("empty graph")
	}
	if p.Collection.NumDomains() == 0 {
		t.Error("empty collection")
	}
	if p.Corpus.NumTweets() == 0 {
		t.Error("empty corpus")
	}
	if len(p.Stages) < 3 {
		t.Errorf("only %d stage stats recorded", len(p.Stages))
	}
}

func TestExpansionContainsRelatedTerms(t *testing.T) {
	p := tinyPipeline(t)
	exp := p.Detector.Expand("49ers")
	if len(exp) == 0 {
		t.Fatal("no expansion for 49ers")
	}
	for _, term := range exp {
		if term == "49ers" {
			t.Error("expansion includes the query itself")
		}
	}
	// Expansion is capped.
	if len(exp) > 10 {
		t.Errorf("expansion has %d terms, cap 10", len(exp))
	}
}

func TestESharpFindsAtLeastBaseline(t *testing.T) {
	p := tinyPipeline(t)
	queries := []string{"49ers", "diabetes", "dow futures", "bluetooth speakers", "nfl", "sarah palin"}
	for _, q := range queries {
		base := p.Detector.SearchBaseline(q)
		esharp, _ := p.Detector.Search(q)
		if len(esharp) < len(base) && len(esharp) < p.Cfg.Online.Expertise.MaxResults {
			t.Errorf("%q: e# found %d < baseline %d (and not capped)", q, len(esharp), len(base))
		}
	}
}

func TestRecallGapClosedByExpansion(t *testing.T) {
	p := tinyPipeline(t)
	// "49ers schedule" has TweetRate 0.01: the baseline should find few
	// or no experts, e# should recover them via the community.
	q := "49ers schedule"
	base := p.Detector.SearchBaseline(q)
	esharp, trace := p.Detector.Search(q)
	if len(esharp) <= len(base) {
		t.Errorf("expansion did not help %q: baseline=%d e#=%d (expansion: %v)",
			q, len(base), len(esharp), trace.Expansion)
	}
}

func TestSearchTraceAccounting(t *testing.T) {
	p := tinyPipeline(t)
	results, trace := p.Detector.Search("49ers")
	if trace.Query != "49ers" {
		t.Error("trace query wrong")
	}
	if trace.MatchedTweets == 0 {
		t.Error("trace reports no matched tweets")
	}
	if len(results) == 0 {
		t.Error("no results")
	}
	if trace.SearchDuration <= 0 {
		t.Error("no search duration recorded")
	}
}

func TestOnlineLatencyWithinTable9Budget(t *testing.T) {
	// Table 9: expansion < 100ms, detection < 1s. Our laptop-scale
	// corpus must beat that comfortably.
	p := tinyPipeline(t)
	_, trace := p.Detector.Search("49ers")
	if trace.ExpandDuration > 100*time.Millisecond {
		t.Errorf("expansion took %v, budget 100ms", trace.ExpandDuration)
	}
	if trace.SearchDuration > time.Second {
		t.Errorf("detection took %v, budget 1s", trace.SearchDuration)
	}
}

func TestUnknownQueryStillSearchable(t *testing.T) {
	p := tinyPipeline(t)
	// A query outside every domain falls back to the plain search.
	results, trace := p.Detector.Search("zzzz nothing")
	if len(trace.Expansion) != 0 {
		t.Error("unknown query got expansion")
	}
	if results != nil {
		t.Error("unknown query returned results")
	}
}

func TestESharpPrecisionOnGroundTruth(t *testing.T) {
	p := tinyPipeline(t)
	w := p.World
	topicID, ok := w.KeywordOwner("49ers")
	if !ok {
		t.Fatal("49ers missing")
	}
	results, _ := p.Detector.Search("49ers")
	if len(results) == 0 {
		t.Fatal("no results")
	}
	relevant := 0
	for _, e := range results {
		if w.IsRelevantExpert(e.User, topicID) {
			relevant++
		}
	}
	frac := float64(relevant) / float64(len(results))
	if frac < 0.4 {
		t.Errorf("only %.0f%% of e# results are relevant", frac*100)
	}
}

func TestSQLBackendPipelineAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("sql backend pipeline skipped in -short")
	}
	cfg := TinyPipelineConfig()
	cfg.Log.Events = 20_000 // keep the relational join sizes test-friendly
	mem, err := BuildPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Offline.UseSQLBackend = true
	sql, err := BuildPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Collection.NumDomains() != sql.Collection.NumDomains() {
		t.Fatalf("backends disagree: %d vs %d domains",
			mem.Collection.NumDomains(), sql.Collection.NumDomains())
	}
	for i := 0; i < mem.Collection.NumDomains(); i++ {
		a := mem.Collection.Domain(int32(i))
		b := sql.Collection.Domain(int32(i))
		if a.Size() != b.Size() || a.Head() != b.Head() {
			t.Fatalf("domain %d differs between backends", i)
		}
	}
}

func TestBuildCollectionStats(t *testing.T) {
	p := tinyPipeline(t)
	build, err := BuildCollection(p.Log, DefaultOfflineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if build.GraphStats.Records != build.Graph.NumEdges() {
		t.Error("graph stats records mismatch")
	}
	if build.ClusterStats.Records != build.Clustering.NumCommunities {
		t.Error("cluster stats records mismatch")
	}
	if len(build.Clustering.Iterations) < 2 {
		t.Error("clustering trace too short")
	}
}

func TestShardedPipeline(t *testing.T) {
	cfg := TinyPipelineConfig()
	cfg.Log.Events = 20_000
	cfg.ShardDir = t.TempDir()
	p, err := BuildPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sharded path must record generate + extraction stages with real I/O.
	var sawGen, sawExtract bool
	for _, s := range p.Stages {
		if s.Stage == "generate" && s.BytesWritten > 0 {
			sawGen = true
		}
		if s.Stage == "extraction" && s.BytesRead > 0 {
			sawExtract = true
		}
	}
	if !sawGen || !sawExtract {
		t.Errorf("sharded pipeline stages incomplete: %+v", p.Stages)
	}
}

func TestDeterministicAcrossBuilds(t *testing.T) {
	cfg := TinyPipelineConfig()
	cfg.Log.Events = 20_000
	a, err := BuildPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := a.Detector.Search("49ers")
	rb, _ := b.Detector.Search("49ers")
	if len(ra) != len(rb) {
		t.Fatalf("result counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].User != rb[i].User || ra[i].Score != rb[i].Score {
			t.Fatalf("result %d differs across identical builds", i)
		}
	}
}

func TestWorldOracleAgreesWithDetector(t *testing.T) {
	p := tinyPipeline(t)
	// Every anchor query must be answerable by e#.
	answered := 0
	anchors := []string{"49ers", "diabetes", "nfl", "xbox", "nasdaq", "beyonce", "honda"}
	for _, q := range anchors {
		if _, ok := p.World.KeywordOwner(q); !ok {
			continue
		}
		if results, _ := p.Detector.Search(q); len(results) > 0 {
			answered++
		}
	}
	if answered < len(anchors)-1 {
		t.Errorf("e# answered only %d/%d anchor queries", answered, len(anchors))
	}
}

func BenchmarkESharpSearch(b *testing.B) {
	p := tinyPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Detector.Search("49ers")
	}
}

func BenchmarkBaselineSearch(b *testing.B) {
	p := tinyPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Detector.SearchBaseline("49ers")
	}
}

func BenchmarkBuildTinyPipeline(b *testing.B) {
	cfg := TinyPipelineConfig()
	cfg.Log.Events = 20_000
	for i := 0; i < b.N; i++ {
		if _, err := BuildPipeline(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRefreshRebuildsCollection(t *testing.T) {
	cfg := TinyPipelineConfig()
	cfg.Log.Events = 30_000
	p, err := BuildPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := p.Collection.NumDomains()
	beforeStages := len(p.Stages)

	refresh := RefreshConfig{Log: cfg.Log, Decay: 0.5, MinClicks: cfg.MinClicks}
	refresh.Log.Seed = 4242
	if err := p.Refresh(refresh); err != nil {
		t.Fatal(err)
	}
	if p.Collection.NumDomains() == 0 {
		t.Fatal("refresh emptied the collection")
	}
	if len(p.Stages) <= beforeStages {
		t.Error("refresh recorded no stage stats")
	}
	// Anchors survive a refresh: the 49ers domain must still exist and
	// still answer queries.
	if _, ok := p.Collection.Lookup("49ers"); !ok {
		t.Error("49ers domain lost in refresh")
	}
	results, _ := p.Detector.Search("49ers")
	if len(results) == 0 {
		t.Error("detector broken after refresh")
	}
	t.Logf("domains before=%d after=%d", before, p.Collection.NumDomains())
}

func TestRefreshRejectsBadDecay(t *testing.T) {
	p := tinyPipeline(t)
	if err := p.Refresh(RefreshConfig{Decay: 1.5}); err == nil {
		t.Error("decay 1.5 accepted")
	}
	if err := p.Refresh(RefreshConfig{Decay: -0.1}); err == nil {
		t.Error("negative decay accepted")
	}
}

func TestRefreshIsDeterministic(t *testing.T) {
	run := func() int {
		cfg := TinyPipelineConfig()
		cfg.Log.Events = 30_000
		p, err := BuildPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := RefreshConfig{Log: cfg.Log, Decay: 0.5}
		r.Log.Seed = 77
		if err := p.Refresh(r); err != nil {
			t.Fatal(err)
		}
		return p.Collection.NumDomains()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("refresh not deterministic: %d vs %d domains", a, b)
	}
}
