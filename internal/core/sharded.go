package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/domains"
	"repro/internal/expertise"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/world"
)

// EpochUnknown is the epoch-vector component reported for a shard whose
// epoch cannot be observed (its transport failed). The serving layer
// must treat any vector sample containing it as uncacheable.
const EpochUnknown = shard.EpochUnknown

// ShardedLiveDetector is the online e# engine over an author-partitioned
// stream: the same two-phase architecture as Detector and LiveDetector,
// scaled out by scatter-gather over a shard.Cluster — an ordered shard
// set whose members are in-process (shard.Local over an ingest.Index,
// the Router topology) or remote (transport.RemoteShard speaking the
// wire protocol), in any mix, with this code unable to tell the
// difference. A query fans the scatter stage out across the shards —
// each shard matches every term, unions the tweet ids and extracts raw
// integer candidate rows against one pinned view — then gathers:
// numerators merge by summation, one batched denominator fetch per
// shard runs against the same pinned views, and a single global ranking
// pass produces the top-k. A quiesced N-shard cluster ranks
// bit-identically to the single-node LiveDetector and to a cold
// Detector over the same posts, for any N and any local/remote mix —
// the sharded and remote equivalence tests enforce this.
//
// Failure policy is fail-fast partial results: a shard whose transport
// errors contributes nothing to that query (no retry inside the query),
// the remaining shards' results are returned, and the Partials counters
// — surfaced through serve.Stats — record the degradation.
type ShardedLiveDetector struct {
	collection *domains.Collection
	router     *shard.Router
	// cluster is an atomic pointer because live resharding swaps the
	// whole shard set out from under in-flight queries: SwapCluster
	// stores a new cluster (possibly with a different shard count),
	// each query loads the pointer exactly once and runs entirely
	// against that one cluster, and the serving cache tolerates the
	// resulting epoch-vector length change by treating it as
	// conservatively stale.
	cluster atomic.Pointer[shard.Cluster]
	// reshard, when non-nil, is the in-flight migration; the read path
	// reports each query to it so the dual-read window is observable.
	reshard  atomic.Pointer[shard.Migration]
	ranker   *expertise.Ranker
	extended bool
	cfg      OnlineConfig
	scratch  sync.Pool // of *shardedScratch, reused across queries

	partialQueries atomic.Int64
	shardErrors    atomic.Int64

	// Observability (nil without OnlineConfig.Obs): per-shard scatter
	// and gather latency histograms, the global merge+rank histogram,
	// and per-query span collection for the serving layer's slow log.
	// All handles are pre-registered at construction so the query path
	// records with plain atomic adds. The per-shard slices live behind
	// one atomic pointer so SwapCluster can regrow them for a larger
	// cluster while queries are in flight.
	obsOn          bool
	obsShard       atomic.Pointer[shardObsHandles]
	obsMergeRankNS *obs.Histogram
	obsShardErrs   *obs.Counter
	obsReg         *obs.Registry
}

// shardObsHandles is one immutable generation of the per-shard
// histogram handles; handles are get-or-create by name in the
// registry, so regrowing for a swapped-in cluster reuses the existing
// histograms for shard indexes both generations share.
type shardObsHandles struct {
	search []*obs.Histogram
	stats  []*obs.Histogram
}

// shardSlot holds one shard's per-query state: the extracted raw rows,
// the shard's matched-union size, the pinned view, the denominator
// fetch buffers and the per-phase errors. composite marks a slot whose
// scatter ran the fused SearchStats — ownStats then already holds the
// denominators for the shard's own candidates (aligned with raw), and
// phase two only tops up the foreign candidates in topUsers.
type shardSlot struct {
	raw       []expertise.RawCandidate
	matched   int
	view      shard.View
	stats     []expertise.UserStats
	ownStats  []expertise.UserStats
	topUsers  []world.UserID
	composite bool
	err       error
	// searchNS and statsNS time this shard's scatter and gather phases
	// for the current query — written only when the detector is
	// instrumented (obsOn), stale otherwise.
	searchNS int64
	statsNS  int64
}

// shardedScratch is the pooled per-query state of the sharded online
// stage: the term list, one slot per shard, the gather-stage merge
// buffers and the finalized candidate pool.
type shardedScratch struct {
	terms  []string
	shards []shardSlot
	raws   [][]expertise.RawCandidate
	merged []expertise.RawCandidate
	users  []world.UserID
	denoms []expertise.UserStats
	cands  []expertise.Expert
}

// NewShardedLiveDetector wires the online stage over an in-process
// author-partitioned stream. The router's shards are addressed through
// the same Backend interface remote shards speak, so this is exactly
// NewShardedLiveDetectorOver(coll, r.Cluster(), cfg) plus the Router
// accessor.
func NewShardedLiveDetector(coll *domains.Collection, r *shard.Router, cfg OnlineConfig) *ShardedLiveDetector {
	d := NewShardedLiveDetectorOver(coll, r.Cluster(), cfg)
	d.router = r
	return d
}

// NewShardedLiveDetectorOver wires the online stage over an explicit
// shard cluster — local backends, remote backends behind a transport,
// or a mix.
func NewShardedLiveDetectorOver(coll *domains.Collection, c *shard.Cluster, cfg OnlineConfig) *ShardedLiveDetector {
	if cfg.MaxExpansionTerms <= 0 {
		cfg.MaxExpansionTerms = 10
	}
	d := &ShardedLiveDetector{
		collection: coll,
		ranker:     expertise.NewRanker(len(c.World().Users), cfg.Expertise),
		cfg:        cfg,
	}
	d.cluster.Store(c)
	p := d.ranker.Params()
	d.extended = p.WeightHT != 0 || p.WeightAV != 0 || p.WeightGI != 0
	d.scratch.New = func() any { return &shardedScratch{} }
	if cfg.Obs != nil {
		d.obsOn = true
		d.obsReg = cfg.Obs
		d.obsShard.Store(shardHandles(cfg.Obs, nil, c.NumShards()))
		d.obsMergeRankNS = cfg.Obs.Histogram("sharded_merge_rank_ns")
		d.obsShardErrs = cfg.Obs.Counter("sharded_shard_errors")
	}
	return d
}

// shardHandles extends a previous generation of per-shard histogram
// handles to cover n shards; shared indexes keep their handles (and
// therefore their histograms — registry handles are get-or-create by
// name).
func shardHandles(reg *obs.Registry, prev *shardObsHandles, n int) *shardObsHandles {
	h := &shardObsHandles{}
	if prev != nil {
		h.search = append(h.search, prev.search...)
		h.stats = append(h.stats, prev.stats...)
	}
	for i := len(h.search); i < n; i++ {
		h.search = append(h.search, reg.Histogram(fmt.Sprintf("sharded_shard%d_search_ns", i)))
		h.stats = append(h.stats, reg.Histogram(fmt.Sprintf("sharded_shard%d_stats_ns", i)))
	}
	return h
}

// SwapCluster atomically replaces the shard set the read path
// scatter-gathers over and returns the previous cluster (still open —
// the caller decides when to close it, after in-flight queries
// drain). It is the read half of a reshard cutover: wire it into
// shard.MigrationConfig.Cutover so reads move in the same atomic step
// as writes. The new cluster may have a different shard count; it
// must be over the same world, because the ranker's candidate arena
// is sized to the user universe at construction.
func (d *ShardedLiveDetector) SwapCluster(next *shard.Cluster) *shard.Cluster {
	prev := d.cluster.Load()
	if next.World() != prev.World() {
		panic("core: SwapCluster across worlds")
	}
	if d.obsOn {
		if n := next.NumShards(); n > len(d.obsShard.Load().search) {
			d.obsShard.Store(shardHandles(d.obsReg, d.obsShard.Load(), n))
		}
	}
	d.cluster.Store(next)
	return prev
}

// AttachMigration points the read path at an in-flight migration: every
// query reports to Migration.NoteRead (counting dual-read-window hits),
// and the serving layer surfaces Migration.Stats. Pass nil to detach
// after the migration finishes or aborts.
func (d *ShardedLiveDetector) AttachMigration(m *shard.Migration) { d.reshard.Store(m) }

// ReshardStats returns the attached migration's progress snapshot;
// ok is false when no migration is attached.
func (d *ShardedLiveDetector) ReshardStats() (st shard.MigrationStats, ok bool) {
	m := d.reshard.Load()
	if m == nil {
		return shard.MigrationStats{}, false
	}
	return m.Stats(), true
}

// Collection returns the domain collection backing expansion.
func (d *ShardedLiveDetector) Collection() *domains.Collection { return d.collection }

// Router returns the in-process author-partitioned stream being
// searched, or nil when the detector was built over an explicit
// cluster (NewShardedLiveDetectorOver) rather than a Router.
func (d *ShardedLiveDetector) Router() *shard.Router { return d.router }

// Cluster returns the shard set being scatter-gathered over (the
// current one, if a reshard cutover has swapped it).
func (d *ShardedLiveDetector) Cluster() *shard.Cluster { return d.cluster.Load() }

// Epoch returns the scalar digest (component sum) of the cluster's
// vector epoch; see EpochVector for the full vector the serving cache
// invalidates on.
func (d *ShardedLiveDetector) Epoch() uint64 { return d.cluster.Load().Epoch() }

// EpochVector appends the per-shard epochs of the view the next query
// would observe to dst (capacity reused, contents discarded). The
// serving layer tags cache entries with this vector and invalidates as
// soon as any component advances; a component whose shard could not be
// reached is EpochUnknown, which makes the sample uncacheable.
func (d *ShardedLiveDetector) EpochVector(dst []uint64) []uint64 {
	dst, _ = d.cluster.Load().EpochVector(dst)
	return dst
}

// PartialStats reports the fail-fast degradation counters: queries
// answered with at least one shard missing from the result, and the
// total number of per-shard failures behind them. Both are zero for an
// all-local cluster.
func (d *ShardedLiveDetector) PartialStats() (partialQueries, shardErrors int64) {
	return d.partialQueries.Load(), d.shardErrors.Load()
}

// Failovers reports the cluster-wide count of reads a replicated
// shard answered from a non-first-choice replica after a replica
// failure (shard.Cluster.Failovers) — the healthy counterpart of
// PartialStats: a failover kept the query whole where a plain shard
// would have degraded. Zero for clusters with no replicated members.
// The serving layer mirrors it into serve.Stats.Failovers.
func (d *ShardedLiveDetector) Failovers() int64 { return d.cluster.Load().Failovers() }

// Expand returns the expansion terms for a query (excluding the query
// itself).
func (d *ShardedLiveDetector) Expand(query string) []string {
	return d.collection.ExpandMode(query, d.cfg.MaxExpansionTerms, d.cfg.Match)
}

// Search runs the full e# online stage scattered across the shards.
// Safe for concurrent use with ingestion and compaction on every shard.
func (d *ShardedLiveDetector) Search(query string) ([]expertise.Expert, SearchTrace) {
	results, trace, _ := d.SearchContext(context.Background(), query)
	return results, trace
}

// SearchContext is Search under a caller deadline: the remaining
// budget rides the context down the scatter-gather into every
// per-shard RPC, and an expired budget fails the whole query with the
// context's error instead of degrading to partial results — a
// front-door request past its deadline has no reader left to serve a
// partial answer to. With context.Background() it is exactly Search.
func (d *ShardedLiveDetector) SearchContext(ctx context.Context, query string) ([]expertise.Expert, SearchTrace, error) {
	trace := SearchTrace{Query: query}

	start := time.Now()
	trace.Expansion = d.Expand(query)
	trace.ExpandDuration = time.Since(start)

	start = time.Now()
	results, matched, spans, mergeRank, err := d.scatterGather(ctx, query, trace.Expansion)
	trace.MatchedTweets = matched
	trace.SearchDuration = time.Since(start)
	trace.Shards = spans
	trace.MergeRankNS = mergeRank
	return results, trace, err
}

// SearchBaseline runs the unexpanded Pal & Counts baseline scattered
// across the shards.
func (d *ShardedLiveDetector) SearchBaseline(query string) []expertise.Expert {
	results, _ := d.SearchBaselineContext(context.Background(), query)
	return results
}

// SearchBaselineContext is SearchBaseline under a caller deadline,
// with the same whole-query expiry semantics as SearchContext.
func (d *ShardedLiveDetector) SearchBaselineContext(ctx context.Context, query string) ([]expertise.Expert, error) {
	results, _, _, _, err := d.scatterGather(ctx, query, nil)
	return results, err
}

// scatterGather is the shared read path: fan the scatter stage (each
// shard matches every term against one pinned view, unions the ids and
// extracts raw candidate rows) out over the shards, merge the integer
// numerators, fan the batched per-shard denominator fetch out against
// the same pinned views, then finalize and rank once globally. It
// returns the ranked experts and the total matched-tweet count
// (per-shard unions are disjoint — every post lives on exactly one
// shard — so their sum is the size of the global union). A failing
// shard is skipped fail-fast and counted in PartialStats. On an
// instrumented detector (obsOn) it additionally returns the per-shard
// spans and the merge+rank nanoseconds, recording both into the
// registry's histograms; un-instrumented, the two extras are nil/0 and
// no clock is read.
//
// Deadline policy: ctx expiry is a whole-query error, not a partial
// result. The check sits after each fan-out barrier — every worker has
// returned, so every pinned view can be released before bailing, which
// is what keeps cancellation leak-free (no goroutine outlives the
// fan-out, no view outlives the query).
// ctxExpired is the barrier check. ctx.Err() alone is racy against
// wire deadlines: a per-RPC conn deadline derived from this context
// fires on wall-clock time, while ctx.Err() flips only after the
// context's own timer goroutine has run — so for a few scheduler ticks
// after the shared instant, the shard has already failed with a
// deadline error but ctx.Err() still reads nil, and the query would
// degrade to a partial result instead of the whole-query timeout the
// caller's budget demands. Checking the deadline against the clock
// closes that window deterministically.
func ctxExpired(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}

func (d *ShardedLiveDetector) scatterGather(ctx context.Context, query string, expansion []string) ([]expertise.Expert, int, []obs.ShardSpan, int64, error) {
	if mig := d.reshard.Load(); mig != nil {
		mig.NoteRead()
	}
	// One load pins this query to one cluster generation: a reshard
	// cutover swapping the pointer mid-query cannot mix shard sets
	// (which would double-count denominators across the two sides).
	c := d.cluster.Load()
	s := d.scratch.Get().(*shardedScratch)
	n := c.NumShards()
	for len(s.shards) < n {
		s.shards = append(s.shards, shardSlot{})
	}
	s.terms = append(s.terms[:0], query)
	s.terms = append(s.terms, expansion...)

	// Fan out over shards directly (not through matchFanOut, whose
	// short-query sequential heuristic is sized to cheap per-term
	// matches): a shard's unit of work — every term matched, the union,
	// the extraction, for a remote shard a network round trip — is heavy
	// enough to parallelize even at N=2.
	workers := d.cfg.MatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fanOut(n, min(n, workers), func(si int) {
		sl := &s.shards[si]
		sl.view = nil
		sl.composite = false
		sl.searchNS, sl.statsNS = 0, 0
		var t0 time.Time
		if d.obsOn {
			t0 = time.Now()
		}
		b := c.Backend(si)
		if ss, ok := b.(shard.SearchStatser); ok {
			// Composite scatter: rows plus the shard's own candidates'
			// denominators arrive together (for a remote shard, in one
			// round trip). Phase two then owes only the foreign
			// candidates' denominators — nothing at all when this shard
			// saw every global candidate, which is the healthy N=1 case.
			sl.raw, sl.matched, sl.ownStats, sl.view, sl.err =
				ss.SearchStats(ctx, s.terms, d.extended, sl.raw, sl.ownStats)
			sl.composite = sl.err == nil
		} else {
			sl.raw, sl.matched, sl.view, sl.err =
				b.Search(ctx, s.terms, d.extended, sl.raw)
		}
		if d.obsOn {
			sl.searchNS = time.Since(t0).Nanoseconds()
		}
	})

	if err := ctxExpired(ctx); err != nil {
		d.abandon(s, n)
		return nil, 0, nil, 0, err
	}

	var mergeRank int64
	var tMerge time.Time
	if d.obsOn {
		tMerge = time.Now()
	}
	matched := 0
	s.raws = s.raws[:0]
	for si := 0; si < n; si++ {
		sl := &s.shards[si]
		if sl.err != nil {
			continue
		}
		matched += sl.matched
		s.raws = append(s.raws, sl.raw)
	}
	s.merged = expertise.MergeRawNumerators(s.merged, s.raws...)

	// Gather stage phase two: one batched denominator fetch per live
	// shard, against the view its candidates were extracted from. Every
	// shard answers for the whole global candidate set — a user's
	// mention denominators live partly on shards where the user never
	// surfaced as a candidate.
	s.users = s.users[:0]
	for i := range s.merged {
		s.users = append(s.users, s.merged[i].User)
	}
	if d.obsOn {
		mergeRank += time.Since(tMerge).Nanoseconds()
	}
	if len(s.users) > 0 {
		fanOut(n, min(n, workers), func(si int) {
			sl := &s.shards[si]
			if sl.err != nil {
				return
			}
			if d.obsOn {
				t0 := time.Now()
				defer func() { sl.statsNS = time.Since(t0).Nanoseconds() }()
			}
			if !sl.composite {
				sl.stats, sl.err = sl.view.Stats(ctx, s.users, sl.stats)
				return
			}
			// Top up the composite: only the global candidates this
			// shard did not itself surface still need its denominators —
			// a user's mentions live partly on shards where the user
			// never posted. The fetch runs against the same pinned view
			// the composite answered from, so the totals stay exact.
			sl.topUsers = missingUsers(sl.topUsers[:0], s.users, sl.raw)
			if len(sl.topUsers) == 0 {
				sl.stats = sl.stats[:0]
				return
			}
			sl.stats, sl.err = sl.view.Stats(ctx, sl.topUsers, sl.stats)
		})
		if err := ctxExpired(ctx); err != nil {
			d.abandon(s, n)
			return nil, 0, nil, 0, err
		}
	}
	if d.obsOn {
		tMerge = time.Now()
	}
	s.denoms = s.denoms[:0]
	for range s.users {
		s.denoms = append(s.denoms, expertise.UserStats{})
	}
	var spans []obs.ShardSpan
	var oh *shardObsHandles
	if d.obsOn {
		spans = make([]obs.ShardSpan, 0, n)
		oh = d.obsShard.Load()
	}
	// failed counts shards missing from the result: a scatter failure
	// contributes nothing at all; a shard that searched fine but failed
	// its denominator fetch is partial too (its numerators are in the
	// pool, its denominators are not) and joins the count.
	failed := 0
	for si := 0; si < n; si++ {
		sl := &s.shards[si]
		if sl.view != nil {
			sl.view.Release()
			sl.view = nil
		}
		if d.obsOn {
			sp := obs.ShardSpan{Shard: si, SearchNS: sl.searchNS, StatsNS: sl.statsNS}
			if sl.err != nil {
				sp.Err = sl.err.Error()
				d.obsShardErrs.Inc()
			} else {
				sp.Matched = sl.matched
				sp.Rows = len(sl.raw)
			}
			spans = append(spans, sp)
			// The handle generation can trail a concurrent SwapCluster
			// by one query; skip rather than index past it.
			if si < len(oh.search) {
				oh.search[si].Observe(sl.searchNS)
				if sl.statsNS > 0 {
					oh.stats[si].Observe(sl.statsNS)
				}
			}
		}
		if sl.err != nil {
			sl.err = nil
			failed++
			continue
		}
		if len(s.users) == 0 {
			continue
		}
		if sl.composite {
			// The shard's contribution arrives in two aligned pieces:
			// own-candidate denominators (positionally aligned with its
			// rows) and the topped-up foreign ones. Integer adds commute,
			// so the split accumulation sums to exactly what one full
			// fetch would have.
			addStatsForRows(s.denoms, s.users, sl.raw, sl.ownStats)
			if len(sl.topUsers) > 0 {
				addStatsForUsers(s.denoms, s.users, sl.topUsers, sl.stats)
			}
			continue
		}
		expertise.AddUserStats(s.denoms, sl.stats)
	}

	s.cands = d.ranker.FinalizeRaw(s.cands, s.merged, s.denoms, c.World())
	results := d.ranker.Rank(s.cands)
	if d.obsOn {
		mergeRank += time.Since(tMerge).Nanoseconds()
		d.obsMergeRankNS.Observe(mergeRank)
	}
	d.scratch.Put(s)
	if failed > 0 {
		d.partialQueries.Add(1)
		d.shardErrors.Add(int64(failed))
	}
	return results, matched, spans, mergeRank, nil
}

// abandon is the deadline-expiry exit: release every view the query
// still pins, clear the per-slot errors and pool the scratch. It runs
// only after a fan-out barrier, so no worker can still be writing to
// the slots.
func (d *ShardedLiveDetector) abandon(s *shardedScratch, n int) {
	for si := 0; si < n; si++ {
		sl := &s.shards[si]
		if sl.view != nil {
			sl.view.Release()
			sl.view = nil
		}
		sl.err = nil
	}
	d.scratch.Put(s)
}

// missingUsers appends to dst every user in all that rows does not
// cover — the foreign candidates whose denominators a composite shard
// still owes. Both inputs are ascending by user (the merge and the
// per-shard extraction both emit that order), so one two-pointer pass
// suffices and dst comes out ascending, as View.Stats requires.
func missingUsers(dst []world.UserID, all []world.UserID, rows []expertise.RawCandidate) []world.UserID {
	j := 0
	for _, u := range all {
		for j < len(rows) && rows[j].User < u {
			j++
		}
		if j < len(rows) && rows[j].User == u {
			j++
			continue
		}
		dst = append(dst, u)
	}
	return dst
}

// addStatsForRows accumulates a composite shard's own-candidate
// denominators (stats aligned with rows) into the global accumulator
// (denoms aligned with users). rows' users are a subset of users and
// both are ascending; entries that fall outside users — impossible
// from a well-behaved shard, since the global candidate set is the
// union of per-shard rows — are dropped rather than mis-added.
func addStatsForRows(denoms []expertise.UserStats, users []world.UserID, rows []expertise.RawCandidate, stats []expertise.UserStats) {
	j := 0
	n := min(len(rows), len(stats))
	for i := 0; i < n; i++ {
		u := rows[i].User
		for j < len(users) && users[j] < u {
			j++
		}
		if j == len(users) {
			return
		}
		if users[j] != u {
			continue
		}
		denoms[j].Tweets += stats[i].Tweets
		denoms[j].Mentions += stats[i].Mentions
		denoms[j].Retweets += stats[i].Retweets
		j++
	}
}

// addStatsForUsers accumulates a top-up fetch (stats aligned with sub,
// an ascending subset of users) into the global accumulator (denoms
// aligned with users) — the same bounded two-pointer walk as
// addStatsForRows, keyed by an explicit user list.
func addStatsForUsers(denoms []expertise.UserStats, users []world.UserID, sub []world.UserID, stats []expertise.UserStats) {
	j := 0
	n := min(len(sub), len(stats))
	for i := 0; i < n; i++ {
		u := sub[i]
		for j < len(users) && users[j] < u {
			j++
		}
		if j == len(users) {
			return
		}
		if users[j] != u {
			continue
		}
		denoms[j].Tweets += stats[i].Tweets
		denoms[j].Mentions += stats[i].Mentions
		denoms[j].Retweets += stats[i].Retweets
		j++
	}
}
