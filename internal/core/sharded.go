package core

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/domains"
	"repro/internal/expertise"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/shard"
)

// ShardedLiveDetector is the online e# engine over an author-partitioned
// stream (shard.Router): the same two-phase architecture as Detector
// and LiveDetector, scaled out by scatter-gather. A query snapshots
// every shard (one atomic load each), fans out across the shards —
// each shard runs the zero-copy per-term match, the k-way tweet-id
// union and raw-candidate extraction against its own immutable
// snapshot — then gathers: per-user raw integer counters are merged
// across shards (mention numerators and denominators span shards, so
// only integer sums merge exactly) and a single global ranking pass
// produces the top-k through the same bounded heap as every other
// path. A quiesced N-shard router ranks bit-identically to the
// single-node LiveDetector and to a cold Detector over the same posts,
// for any N — the sharded equivalence tests enforce this.
type ShardedLiveDetector struct {
	collection *domains.Collection
	router     *shard.Router
	ranker     *expertise.Ranker
	cfg        OnlineConfig
	scratch    sync.Pool // of *shardedScratch, reused across queries
}

// shardScratch holds one shard's per-query buffers: a matched-id buffer
// and segment-local scratch per expansion term, the merge frontier, the
// shard-local union, and the extracted raw candidates.
type shardScratch struct {
	lists    [][]microblog.TweetID
	locals   [][]microblog.TweetID
	frontier [][]microblog.TweetID
	merged   []microblog.TweetID
	raw      []expertise.RawCandidate
}

// shardedScratch is the pooled per-query state of the sharded online
// stage: the acquired snapshots, one shardScratch per shard, the
// gather-stage list-of-lists view and the merged candidate pool.
type shardedScratch struct {
	snaps  []*ingest.Snapshot
	shards []shardScratch
	srcs   []expertise.Source
	raws   [][]expertise.RawCandidate
	cands  []expertise.Expert
}

// NewShardedLiveDetector wires the online stage over an
// author-partitioned stream.
func NewShardedLiveDetector(coll *domains.Collection, r *shard.Router, cfg OnlineConfig) *ShardedLiveDetector {
	if cfg.MaxExpansionTerms <= 0 {
		cfg.MaxExpansionTerms = 10
	}
	d := &ShardedLiveDetector{
		collection: coll,
		router:     r,
		ranker:     expertise.NewRanker(len(r.World().Users), cfg.Expertise),
		cfg:        cfg,
	}
	d.scratch.New = func() any { return &shardedScratch{} }
	return d
}

// Collection returns the domain collection backing expansion.
func (d *ShardedLiveDetector) Collection() *domains.Collection { return d.collection }

// Router returns the author-partitioned stream being searched.
func (d *ShardedLiveDetector) Router() *shard.Router { return d.router }

// Epoch returns the scalar digest (component sum) of the router's
// vector epoch; see EpochVector for the full vector the serving cache
// invalidates on.
func (d *ShardedLiveDetector) Epoch() uint64 { return d.router.Epoch() }

// EpochVector appends the per-shard epochs of the view the next query
// would observe to dst (capacity reused, contents discarded). The
// serving layer tags cache entries with this vector and invalidates as
// soon as any component advances.
func (d *ShardedLiveDetector) EpochVector(dst []uint64) []uint64 {
	return d.router.EpochVector(dst)
}

// Expand returns the expansion terms for a query (excluding the query
// itself).
func (d *ShardedLiveDetector) Expand(query string) []string {
	return d.collection.ExpandMode(query, d.cfg.MaxExpansionTerms, d.cfg.Match)
}

// Search runs the full e# online stage scattered across the shards.
// Safe for concurrent use with ingestion and compaction on every shard.
func (d *ShardedLiveDetector) Search(query string) ([]expertise.Expert, SearchTrace) {
	trace := SearchTrace{Query: query}

	start := time.Now()
	trace.Expansion = d.Expand(query)
	trace.ExpandDuration = time.Since(start)

	start = time.Now()
	results, matched := d.scatterGather(query, trace.Expansion)
	trace.MatchedTweets = matched
	trace.SearchDuration = time.Since(start)
	return results, trace
}

// SearchBaseline runs the unexpanded Pal & Counts baseline scattered
// across the shards.
func (d *ShardedLiveDetector) SearchBaseline(query string) []expertise.Expert {
	results, _ := d.scatterGather(query, nil)
	return results
}

// scatterGather is the shared read path: snapshot every shard, fan the
// per-shard work (zero-copy matching, tweet-id union, raw-candidate
// extraction) out over matchFanOut workers, then merge the per-shard
// raw counters and rank once globally. It returns the ranked experts
// and the total matched-tweet count (per-shard unions are disjoint —
// every post lives on exactly one shard — so their sum is the size of
// the global union).
func (d *ShardedLiveDetector) scatterGather(query string, expansion []string) ([]expertise.Expert, int) {
	s := d.scratch.Get().(*shardedScratch)
	n := d.router.NumShards()
	s.snaps = d.router.Snapshots(s.snaps)
	for len(s.shards) < n {
		s.shards = append(s.shards, shardScratch{})
	}

	nTerms := 1 + len(expansion)
	term := func(i int) string {
		if i == 0 {
			return query
		}
		return expansion[i-1]
	}
	// Fan out over shards directly (not through matchFanOut, whose
	// short-query sequential heuristic is sized to cheap per-term
	// matches): a shard's unit of work — every term matched, the union,
	// the extraction — is heavy enough to parallelize even at N=2.
	workers := d.cfg.MatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fanOut(n, min(n, workers), func(si int) {
		sh := &s.shards[si]
		snap := s.snaps[si]
		for len(sh.lists) < nTerms {
			sh.lists = append(sh.lists, nil)
			sh.locals = append(sh.locals, nil)
		}
		lists := sh.lists[:nTerms]
		for i := 0; i < nTerms; i++ {
			lists[i], sh.locals[i] = snap.MatchAppendScratch(term(i), lists[i], sh.locals[i])
		}
		sh.merged, sh.frontier = expertise.MergeTweetsInto(sh.merged, sh.frontier, lists...)
		sh.raw = d.ranker.RawCandidatesInto(sh.raw, snap, sh.merged)
	})

	matched := 0
	s.raws = s.raws[:0]
	s.srcs = s.srcs[:0]
	for si := 0; si < n; si++ {
		matched += len(s.shards[si].merged)
		s.raws = append(s.raws, s.shards[si].raw)
		s.srcs = append(s.srcs, s.snaps[si])
	}
	s.cands = d.ranker.MergeRawCandidates(s.cands, s.srcs, s.raws...)
	results := d.ranker.Rank(s.cands)
	// Drop the snapshot references before pooling the scratch: an idle
	// pooled scratch must not pin retired segments (and their lazily
	// built tail indexes) in memory between queries.
	for i := range s.snaps {
		s.snaps[i] = nil
	}
	s.snaps = s.snaps[:0]
	for i := range s.srcs {
		s.srcs[i] = nil
	}
	s.srcs = s.srcs[:0]
	d.scratch.Put(s)
	return results, matched
}
