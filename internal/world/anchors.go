package world

import "repro/internal/xrand"

// anchorKeyword is a curated keyword in an anchor topic spec.
type anchorKeyword struct {
	text      string
	searchPop float64
	tweetRate float64
}

// anchorSpec hand-describes a topic that mirrors one of the paper's
// worked examples, so the qualitative experiments (Fig 7, Tables 2–7) can
// be run with the very query strings the paper uses.
type anchorSpec struct {
	name     string
	category Category
	keywords []anchorKeyword
	urls     []string
	// related lists anchor names this topic relates to, with weights.
	related map[string]float64
}

// anchorSpecs returns the curated topics. The 49ers cluster reproduces
// Figure 7: the 49ers community proper plus its three closest communities
// (San Francisco tourism, the SF Gate newspaper, and Colin Kaepernick).
// TweetRate values encode the paper's motivating observation: "49ers" is
// tweeted constantly, but satellite terms like "west coast football" or
// player names are searched far more often than they fit into tweets.
func anchorSpecs() []anchorSpec {
	return []anchorSpec{
		{
			name:     "49ers",
			category: Sports,
			keywords: []anchorKeyword{
				{"49ers", 1.0, 0.7},
				{"niners", 0.5, 0.4},
				{"#niners", 0.3, 0.3},
				{"49ers draft", 0.45, 0.15},
				{"49ers schedule", 0.4, 0.01},
				{"vernon davis", 0.3, 0.05},
				{"bruce ellington", 0.2, 0.03},
				{"west coast football", 0.25, 0.01},
				{"sf 49ers", 0.2, 0.02},
				{"49res", 0.1, 0.002},
			},
			urls:    []string{"49ers.com", "ninersnation.com", "49erswebzone.com"},
			related: map[string]float64{"san francisco": 0.35, "sf gate": 0.3, "colin kaepernick": 0.45},
		},
		{
			name:     "san francisco",
			category: General,
			keywords: []anchorKeyword{
				{"san francisco", 1.0, 0.5},
				{"#sanfrancisco", 0.3, 0.2},
				{"sf", 0.6, 0.3},
				{"golden gate bridge", 0.5, 0.1},
				{"alcatraz", 0.4, 0.05},
				{"fishermans wharf", 0.3, 0.02},
				{"san francisco hotels", 0.35, 0.01},
			},
			urls:    []string{"sftravel.com", "sanfrancisco.gov", "goldengate.org"},
			related: map[string]float64{"49ers": 0.35, "sf gate": 0.4},
		},
		{
			name:     "sf gate",
			category: General,
			keywords: []anchorKeyword{
				{"sf gate", 1.0, 0.3},
				{"sfgate", 0.7, 0.2},
				{"san francisco chronicle", 0.5, 0.05},
				{"sfgate sports", 0.3, 0.01},
			},
			urls:    []string{"sfgate.com", "sfchronicle.com"},
			related: map[string]float64{"49ers": 0.3, "san francisco": 0.4},
		},
		{
			name:     "colin kaepernick",
			category: Sports,
			keywords: []anchorKeyword{
				{"colin kaepernick", 1.0, 0.4},
				{"kaepernick", 0.7, 0.35},
				{"kaepernick jersey", 0.3, 0.01},
				{"kap", 0.2, 0.1},
			},
			urls:    []string{"kaepernick7.com", "nfl.com/kaepernick"},
			related: map[string]float64{"49ers": 0.45},
		},
		{
			name:     "nfl",
			category: Sports,
			keywords: []anchorKeyword{
				{"nfl", 1.0, 0.7},
				{"nfl scores", 0.6, 0.1},
				{"nfl draft", 0.55, 0.2},
				{"nfl standings", 0.4, 0.01},
				{"fantasy football", 0.5, 0.25},
			},
			urls:    []string{"nfl.com", "espn.com/nfl"},
			related: map[string]float64{"49ers": 0.5, "buffalo bills": 0.5, "baltimore ravens": 0.5},
		},
		{
			name:     "buffalo bills",
			category: Sports,
			keywords: []anchorKeyword{
				{"buffalo bills", 1.0, 0.6},
				{"bills mafia", 0.4, 0.3},
				{"buffalo bills schedule", 0.35, 0.01},
			},
			urls:    []string{"buffalobills.com", "billswire.com"},
			related: map[string]float64{"nfl": 0.5},
		},
		{
			name:     "baltimore ravens",
			category: Sports,
			keywords: []anchorKeyword{
				{"baltimore ravens", 1.0, 0.6},
				{"ravens flock", 0.35, 0.25},
				{"ravens roster", 0.3, 0.02},
			},
			urls:    []string{"baltimoreravens.com", "ravenswire.com"},
			related: map[string]float64{"nfl": 0.5},
		},
		{
			name:     "nascar",
			category: Sports,
			keywords: []anchorKeyword{
				{"nascar", 1.0, 0.65},
				{"nascar standings", 0.45, 0.02},
				{"daytona 500", 0.5, 0.15},
				{"nascar schedule", 0.4, 0.01},
			},
			urls:    []string{"nascar.com", "racing-reference.info"},
			related: map[string]float64{},
		},
		{
			name:     "bluetooth speakers",
			category: Electronics,
			keywords: []anchorKeyword{
				{"bluetooth speakers", 1.0, 0.3},
				{"bluetooth speaker", 0.8, 0.3},
				{"bluetooth", 0.9, 0.5},
				{"wireless speakers", 0.5, 0.1},
				{"portable speaker", 0.45, 0.08},
				{"bluetooth speaker review", 0.3, 0.01},
				{"best bluetooth speakers", 0.35, 0.01},
			},
			urls:    []string{"soundguys.com", "speakerdeals.com", "audioreview.net"},
			related: map[string]float64{"ipad mini": 0.25},
		},
		{
			name:     "ipad mini",
			category: Electronics,
			keywords: []anchorKeyword{
				{"ipad mini", 1.0, 0.5},
				{"ipad mini case", 0.4, 0.02},
				{"ipad mini review", 0.35, 0.01},
				{"ipad", 0.9, 0.6},
			},
			urls:    []string{"apple.com/ipad", "ipadforums.net"},
			related: map[string]float64{"bluetooth speakers": 0.25},
		},
		{
			name:     "xbox",
			category: Electronics,
			keywords: []anchorKeyword{
				{"xbox", 1.0, 0.7},
				{"xbox one", 0.7, 0.5},
				{"xbox live", 0.5, 0.3},
				{"xbox controller", 0.4, 0.05},
			},
			urls:    []string{"xbox.com", "majornelson.com"},
			related: map[string]float64{},
		},
		{
			name:     "garmin",
			category: Electronics,
			keywords: []anchorKeyword{
				{"garmin", 1.0, 0.4},
				{"garmin watch", 0.5, 0.1},
				{"garmin connect", 0.45, 0.05},
				{"garmin update", 0.3, 0.01},
			},
			urls:    []string{"garmin.com", "dcrainmaker.com"},
			related: map[string]float64{},
		},
		{
			name:     "dow futures",
			category: Finance,
			keywords: []anchorKeyword{
				{"dow futures", 1.0, 0.2},
				{"dow jones futures", 0.6, 0.1},
				{"stock futures", 0.55, 0.15},
				{"premarket", 0.5, 0.25},
				{"dow jones", 0.8, 0.4},
				{"futures market", 0.3, 0.02},
			},
			urls:    []string{"marketwatch.com", "cnbc.com/futures", "investing.com"},
			related: map[string]float64{"nasdaq": 0.5},
		},
		{
			name:     "nasdaq",
			category: Finance,
			keywords: []anchorKeyword{
				{"nasdaq", 1.0, 0.5},
				{"nasdaq composite", 0.4, 0.05},
				{"nasdaq today", 0.35, 0.02},
				{"msft", 0.5, 0.3},
			},
			urls:    []string{"nasdaq.com", "marketwatch.com"},
			related: map[string]float64{"dow futures": 0.5, "bloomberg": 0.4},
		},
		{
			name:     "bloomberg",
			category: Finance,
			keywords: []anchorKeyword{
				{"bloomberg", 1.0, 0.45},
				{"bloomberg terminal", 0.3, 0.02},
				{"bloomberg markets", 0.35, 0.05},
			},
			urls:    []string{"bloomberg.com"},
			related: map[string]float64{"nasdaq": 0.4},
		},
		{
			name:     "diabetes",
			category: Health,
			keywords: []anchorKeyword{
				{"diabetes", 1.0, 0.5},
				{"type 1 diabetes", 0.55, 0.2},
				{"type 2 diabetes", 0.6, 0.2},
				{"blood sugar", 0.5, 0.25},
				{"insulin", 0.5, 0.3},
				{"diabetes symptoms", 0.45, 0.01},
				{"diabetic diet", 0.4, 0.02},
				{"t1d", 0.2, 0.15},
			},
			urls:    []string{"diabetes.org", "diabetesdaily.com", "t1dexchange.org"},
			related: map[string]float64{"bmi": 0.3},
		},
		{
			name:     "asthma",
			category: Health,
			keywords: []anchorKeyword{
				{"asthma", 1.0, 0.45},
				{"asthma attack", 0.45, 0.1},
				{"inhaler", 0.4, 0.15},
				{"asthma triggers", 0.3, 0.01},
			},
			urls:    []string{"aafa.org", "asthma.org.uk"},
			related: map[string]float64{},
		},
		{
			name:     "scoliosis",
			category: Health,
			keywords: []anchorKeyword{
				{"scoliosis", 1.0, 0.3},
				{"scoliosis surgery", 0.4, 0.02},
				{"scoliosis brace", 0.35, 0.02},
			},
			urls:    []string{"scoliosis.org", "srs.org"},
			related: map[string]float64{},
		},
		{
			name:     "bmi",
			category: Health,
			keywords: []anchorKeyword{
				{"bmi", 1.0, 0.3},
				{"bmi calculator", 0.6, 0.01},
				{"body mass index", 0.4, 0.03},
			},
			urls:    []string{"cdc.gov/bmi", "nhs.uk/bmi"},
			related: map[string]float64{"diabetes": 0.3},
		},
		{
			name:     "world war i",
			category: Wikipedia,
			keywords: []anchorKeyword{
				{"world war i", 1.0, 0.15},
				{"ww1", 0.6, 0.2},
				{"first world war", 0.5, 0.05},
				{"1914 1918", 0.25, 0.01},
				{"western front", 0.3, 0.03},
				{"ww1 in africa", 0.15, 0.01},
			},
			urls:    []string{"iwm.org.uk", "firstworldwar.com", "1914.org"},
			related: map[string]float64{"world war ii": 0.45},
		},
		{
			name:     "world war ii",
			category: Wikipedia,
			keywords: []anchorKeyword{
				{"world war ii", 1.0, 0.2},
				{"ww2", 0.7, 0.25},
				{"second world war", 0.45, 0.05},
				{"d day", 0.5, 0.1},
			},
			urls:    []string{"ww2history.com", "nationalww2museum.org"},
			related: map[string]float64{"world war i": 0.45},
		},
		{
			name:     "beyonce",
			category: Wikipedia,
			keywords: []anchorKeyword{
				{"beyonce", 1.0, 0.7},
				{"beyonce tour", 0.5, 0.1},
				{"beyonce album", 0.45, 0.08},
				{"queen b", 0.3, 0.15},
			},
			urls:    []string{"beyonce.com", "beyhive.net"},
			related: map[string]float64{},
		},
		{
			name:     "albert einstein",
			category: Wikipedia,
			keywords: []anchorKeyword{
				{"albert einstein", 1.0, 0.2},
				{"einstein", 0.8, 0.3},
				{"theory of relativity", 0.4, 0.03},
				{"einstein quotes", 0.5, 0.05},
			},
			urls:    []string{"einstein-website.de", "nobelprize.org/einstein"},
			related: map[string]float64{},
		},
		{
			name:     "sarah palin",
			category: General,
			keywords: []anchorKeyword{
				{"sarah palin", 1.0, 0.4},
				{"palin", 0.6, 0.3},
				{"sarah palin news", 0.4, 0.02},
				{"palin speech", 0.3, 0.03},
				{"#palin", 0.2, 0.15},
			},
			urls:    []string{"sarahpac.com", "palinnews.net"},
			related: map[string]float64{},
		},
		{
			name:     "mapquest",
			category: General,
			keywords: []anchorKeyword{
				{"mapquest", 1.0, 0.2},
				{"mapquest directions", 0.5, 0.01},
				{"driving directions", 0.45, 0.02},
			},
			urls:    []string{"mapquest.com"},
			related: map[string]float64{},
		},
		{
			name:     "honda",
			category: General,
			keywords: []anchorKeyword{
				{"honda", 1.0, 0.4},
				{"honda civic", 0.6, 0.2},
				{"honda accord", 0.55, 0.15},
				{"honda dealership", 0.35, 0.01},
			},
			urls:    []string{"honda.com", "hondanews.com"},
			related: map[string]float64{},
		},
	}
}

// addAnchorTopic instantiates one curated topic spec.
func (w *World) addAnchorTopic(spec anchorSpec, rng *xrand.RNG) {
	t := w.newTopic(spec.category, spec.name, true)
	t.SearchPop = 2.5 + rng.Float64() // anchors sit in the popularity head
	t.TweetPop = 2.0 + rng.Float64()
	t.TweetActivity = 1
	if spec.name == "mapquest" {
		// The paper's canonical navigational query: everyone searches
		// it, nobody tweets about it.
		t.TweetActivity = 0.05
	}
	for _, ak := range spec.keywords {
		w.addKeyword(t, Keyword{Text: ak.text, SearchPop: ak.searchPop, TweetRate: ak.tweetRate})
	}
	t.URLs = append(t.URLs, spec.urls...)
	t.NumCoreURLs = len(t.URLs)
}

// wireAnchorRelations installs the curated related-topic edges once all
// anchors exist. Called from wireRelations via name lookup.
func (w *World) wireAnchorRelations() {
	byName := map[string]TopicID{}
	for i := range w.Topics {
		if w.Topics[i].Anchor {
			byName[w.Topics[i].Name] = w.Topics[i].ID
		}
	}
	for _, spec := range anchorSpecs() {
		from, ok := byName[spec.name]
		if !ok {
			continue
		}
		t := w.Topic(from)
		for name, weight := range spec.related {
			to, ok := byName[name]
			if !ok {
				continue
			}
			if !t.hasRelation(to) {
				t.Related = append(t.Related, RelatedTopic{ID: to, Weight: weight})
			}
		}
	}
	// Sort each topic's relations for determinism (map iteration above).
	for i := range w.Topics {
		rel := w.Topics[i].Related
		for a := 1; a < len(rel); a++ {
			for b := a; b > 0 && rel[b].ID < rel[b-1].ID; b-- {
				rel[b], rel[b-1] = rel[b-1], rel[b]
			}
		}
	}
}
