package world

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/textutil"
)

func tinyWorld(t testing.TB) *World {
	t.Helper()
	return Build(TinyConfig())
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(TinyConfig())
	b := Build(TinyConfig())
	if len(a.Topics) != len(b.Topics) || len(a.Users) != len(b.Users) {
		t.Fatalf("sizes differ: %d/%d topics, %d/%d users",
			len(a.Topics), len(b.Topics), len(a.Users), len(b.Users))
	}
	for i := range a.Topics {
		if a.Topics[i].Name != b.Topics[i].Name {
			t.Fatalf("topic %d name differs: %q vs %q", i, a.Topics[i].Name, b.Topics[i].Name)
		}
		if len(a.Topics[i].Keywords) != len(b.Topics[i].Keywords) {
			t.Fatalf("topic %d keyword count differs", i)
		}
	}
	for i := range a.Users {
		if a.Users[i].ScreenName != b.Users[i].ScreenName {
			t.Fatalf("user %d differs", i)
		}
	}
}

func TestSeedChangesWorld(t *testing.T) {
	cfg := TinyConfig()
	a := Build(cfg)
	cfg.Seed = 99
	b := Build(cfg)
	same := 0
	n := len(a.Topics)
	if len(b.Topics) < n {
		n = len(b.Topics)
	}
	for i := 0; i < n; i++ {
		if a.Topics[i].Name == b.Topics[i].Name {
			same++
		}
	}
	// Anchor topics are identical by design; procedural ones must differ.
	anchors := 0
	for i := range a.Topics {
		if a.Topics[i].Anchor {
			anchors++
		}
	}
	if same > anchors {
		t.Errorf("seeds 1 and 99 share %d topic names (only %d anchors expected)", same, anchors)
	}
}

func TestAnchorTopicsPresent(t *testing.T) {
	w := tinyWorld(t)
	for _, name := range []string{"49ers", "diabetes", "dow futures", "bluetooth speakers", "world war i", "sarah palin"} {
		id, ok := w.KeywordOwner(name)
		if !ok {
			t.Errorf("anchor keyword %q missing", name)
			continue
		}
		if !w.Topic(id).Anchor {
			t.Errorf("keyword %q owned by non-anchor topic %q", name, w.Topic(id).Name)
		}
	}
}

func TestKeywordOwnerUnique(t *testing.T) {
	w := tinyWorld(t)
	seen := map[string]TopicID{}
	for i := range w.Topics {
		for _, kw := range w.Topics[i].Keywords {
			if owner, dup := seen[kw.Text]; dup {
				t.Fatalf("keyword %q owned by topics %d and %d", kw.Text, owner, w.Topics[i].ID)
			}
			seen[kw.Text] = w.Topics[i].ID
		}
	}
	if len(seen) == 0 {
		t.Fatal("no keywords generated")
	}
}

func TestKeywordsNormalized(t *testing.T) {
	w := tinyWorld(t)
	for i := range w.Topics {
		for _, kw := range w.Topics[i].Keywords {
			if kw.Text != textutil.Normalize(kw.Text) {
				t.Errorf("keyword %q not normalized", kw.Text)
			}
			if kw.Canonical == "" {
				t.Errorf("keyword %q has empty canonical", kw.Text)
			}
			if kw.SearchPop <= 0 {
				t.Errorf("keyword %q has non-positive SearchPop", kw.Text)
			}
			if kw.TweetRate < 0 || kw.TweetRate > 1 {
				t.Errorf("keyword %q TweetRate out of range: %v", kw.Text, kw.TweetRate)
			}
		}
	}
}

func TestKeywordOwnerLookup(t *testing.T) {
	w := tinyWorld(t)
	for i := range w.Topics {
		for _, kw := range w.Topics[i].Keywords {
			id, ok := w.KeywordOwner(kw.Text)
			if !ok || id != w.Topics[i].ID {
				t.Fatalf("KeywordOwner(%q) = %v,%v want %v", kw.Text, id, ok, w.Topics[i].ID)
			}
		}
	}
	if _, ok := w.KeywordOwner("no such keyword zzz"); ok {
		t.Error("lookup of unknown keyword succeeded")
	}
}

func TestTopicURLs(t *testing.T) {
	w := tinyWorld(t)
	for i := range w.Topics {
		tp := &w.Topics[i]
		if tp.NumCoreURLs == 0 || len(tp.URLs) < tp.NumCoreURLs {
			t.Errorf("topic %q has %d URLs, %d core", tp.Name, len(tp.URLs), tp.NumCoreURLs)
		}
		for _, u := range tp.URLs {
			if strings.Contains(u, " ") || u == "" {
				t.Errorf("topic %q has malformed URL %q", tp.Name, u)
			}
		}
	}
}

func TestRelationsAreSane(t *testing.T) {
	w := tinyWorld(t)
	for i := range w.Topics {
		tp := &w.Topics[i]
		seen := map[TopicID]bool{}
		for _, r := range tp.Related {
			if r.ID == tp.ID {
				t.Errorf("topic %q related to itself", tp.Name)
			}
			if int(r.ID) < 0 || int(r.ID) >= len(w.Topics) {
				t.Errorf("topic %q has out-of-range relation %d", tp.Name, r.ID)
			}
			if r.Weight <= 0 || r.Weight > 1 {
				t.Errorf("topic %q relation weight %v out of (0,1]", tp.Name, r.Weight)
			}
			if seen[r.ID] {
				t.Errorf("topic %q has duplicate relation to %d", tp.Name, r.ID)
			}
			seen[r.ID] = true
		}
	}
}

func TestFig7ClusterWired(t *testing.T) {
	w := tinyWorld(t)
	id, ok := w.KeywordOwner("49ers")
	if !ok {
		t.Fatal("49ers topic missing")
	}
	topic := w.Topic(id)
	wantRelated := map[string]bool{"san francisco": false, "sf gate": false, "colin kaepernick": false}
	for _, r := range topic.Related {
		name := w.Topic(r.ID).Name
		if _, want := wantRelated[name]; want {
			wantRelated[name] = true
		}
	}
	for name, found := range wantRelated {
		if !found {
			t.Errorf("49ers not related to %q", name)
		}
	}
}

func TestExpertsOnEveryAnchor(t *testing.T) {
	w := tinyWorld(t)
	for i := range w.Topics {
		if !w.Topics[i].Anchor {
			continue
		}
		if len(w.ExpertsOn(w.Topics[i].ID)) < 4 {
			t.Errorf("anchor %q has only %d experts", w.Topics[i].Name, len(w.ExpertsOn(w.Topics[i].ID)))
		}
	}
}

func TestExpertIndexConsistent(t *testing.T) {
	w := tinyWorld(t)
	for i := range w.Topics {
		id := w.Topics[i].ID
		for _, uid := range w.ExpertsOn(id) {
			if !w.IsRelevantExpert(uid, id) {
				t.Fatalf("user %d indexed as expert on %d but oracle disagrees", uid, id)
			}
		}
	}
}

func TestCasualUsersNotExperts(t *testing.T) {
	w := tinyWorld(t)
	for i := range w.Users {
		u := &w.Users[i]
		if (u.Kind == CasualUser || u.Kind == SpamUser) && len(u.Topics) != 0 {
			t.Errorf("%s user %q has expertise topics", u.Kind, u.ScreenName)
		}
	}
}

func TestScreenNamesUnique(t *testing.T) {
	w := tinyWorld(t)
	seen := map[string]bool{}
	for i := range w.Users {
		n := w.Users[i].ScreenName
		if n == "" {
			t.Fatal("empty screen name")
		}
		if seen[n] {
			t.Fatalf("duplicate screen name %q", n)
		}
		seen[n] = true
	}
}

func TestFollowersPositive(t *testing.T) {
	w := tinyWorld(t)
	for i := range w.Users {
		if w.Users[i].Followers <= 0 {
			t.Errorf("user %q has %d followers", w.Users[i].ScreenName, w.Users[i].Followers)
		}
	}
}

func TestTopicsInCategoryOrdering(t *testing.T) {
	w := tinyWorld(t)
	for _, cat := range Categories() {
		ids := w.TopicsInCategory(cat)
		for _, id := range ids {
			if w.Topic(id).Category != cat {
				t.Fatalf("TopicsInCategory(%v) returned topic of category %v", cat, w.Topic(id).Category)
			}
		}
		// Anchors first.
		sawNonAnchor := false
		for _, id := range ids {
			if !w.Topic(id).Anchor {
				sawNonAnchor = true
			} else if sawNonAnchor {
				t.Fatalf("anchor after non-anchor in category %v", cat)
			}
		}
	}
}

func TestRelevantExpertRelatedTopics(t *testing.T) {
	w := tinyWorld(t)
	id49, _ := w.KeywordOwner("49ers")
	idKap, _ := w.KeywordOwner("colin kaepernick")
	// A Kaepernick expert is relevant for 49ers queries (weight 0.45 < 0.5 — not
	// relevant) — check the oracle respects the 0.5 cutoff in both directions.
	kapExperts := w.ExpertsOn(idKap)
	if len(kapExperts) == 0 {
		t.Fatal("no kaepernick experts")
	}
	// Build the set of topics that make a user relevant for 49ers:
	// 49ers itself plus its >= 0.5-weight relations.
	relevantTopics := map[TopicID]bool{id49: true}
	for _, r := range w.Topic(id49).Related {
		if r.Weight >= 0.5 {
			relevantTopics[r.ID] = true
		}
	}
	checked := 0
	for _, uid := range kapExperts {
		covered := false
		for _, tp := range w.User(uid).Topics {
			if relevantTopics[tp] {
				covered = true
			}
		}
		if covered {
			continue // legitimately relevant through another topic
		}
		checked++
		if w.IsRelevantExpert(uid, id49) {
			t.Errorf("expert %d (kaepernick, weight 0.45 < 0.5) judged relevant for 49ers", uid)
		}
	}
	if checked == 0 {
		t.Skip("every kaepernick expert also covers a 49ers-relevant topic")
	}
	// nfl <-> 49ers has weight 0.5: NFL experts are relevant for 49ers.
	idNFL, _ := w.KeywordOwner("nfl")
	nflExperts := w.ExpertsOn(idNFL)
	if len(nflExperts) == 0 {
		t.Fatal("no nfl experts")
	}
	found := false
	for _, uid := range nflExperts {
		if w.IsRelevantExpert(uid, id49) {
			found = true
		}
	}
	if !found {
		t.Error("no NFL expert judged relevant for 49ers despite weight-0.5 relation")
	}
}

func TestVocabularySorted(t *testing.T) {
	w := tinyWorld(t)
	v := w.Vocabulary()
	if len(v) < 50 {
		t.Fatalf("vocabulary too small: %d", len(v))
	}
	for i := 1; i < len(v); i++ {
		if v[i-1] >= v[i] {
			t.Fatalf("vocabulary not sorted/unique at %d: %q >= %q", i, v[i-1], v[i])
		}
	}
}

func TestDefaultConfigScale(t *testing.T) {
	if testing.Short() {
		t.Skip("default world build skipped in -short")
	}
	w := Build(DefaultConfig())
	if len(w.Topics) < 200 {
		t.Errorf("default world has only %d topics", len(w.Topics))
	}
	if len(w.Vocabulary()) < 1500 {
		t.Errorf("default world vocabulary only %d terms", len(w.Vocabulary()))
	}
	if len(w.Users) < 2500 {
		t.Errorf("default world has only %d users", len(w.Users))
	}
}

func TestSanitizeHost(t *testing.T) {
	cases := []struct{ in, want string }{
		{"san francisco", "san-francisco"},
		{"49ers", "49ers"},
		{"Dow Futures!", "dow-futures"},
		{"", "site"},
		{"***", "site"},
	}
	for _, c := range cases {
		if got := sanitizeHost(c.in); got != c.want {
			t.Errorf("sanitizeHost(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSanitizeHostProperty(t *testing.T) {
	prop := func(s string) bool {
		h := sanitizeHost(s)
		if h == "" {
			return false
		}
		for _, r := range h {
			ok := (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r == '-'
			if !ok {
				return false
			}
		}
		return !strings.HasPrefix(h, "-") && !strings.HasSuffix(h, "-")
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildTinyWorld(b *testing.B) {
	cfg := TinyConfig()
	for i := 0; i < b.N; i++ {
		_ = Build(cfg)
	}
}
