package world

import (
	"fmt"

	"repro/internal/xrand"
)

// buildUsers populates the account roster: dedicated experts per topic,
// category-wide news outlets, a casual background population and a small
// spammer contingent. Expert rosters are indexed so the evaluation oracle
// can answer relevance questions in O(1).
func (w *World) buildUsers(namer *namer, rng *xrand.RNG) {
	// Dedicated experts: Poisson-many per topic, each covering the topic
	// plus occasionally one strongly related neighbour (a 49ers blogger
	// also covering Kaepernick).
	for i := range w.Topics {
		t := &w.Topics[i]
		n := rng.Poisson(w.Cfg.ExpertsPerTopic)
		if t.Anchor && n < 4 {
			n = 4 // anchors must have enough experts for Tables 2-7
		}
		for k := 0; k < n; k++ {
			topics := []TopicID{t.ID}
			for _, rel := range t.Related {
				if rel.Weight >= 0.4 && rng.Bool(0.3) {
					topics = append(topics, rel.ID)
				}
			}
			infl := rng.LogNormal(-1.5, 1.0)
			if infl > 1 {
				infl = 1
			}
			u := w.addUser(User{
				ScreenName:  namer.ScreenName(ExpertUser, t.Name),
				Kind:        ExpertUser,
				Topics:      topics,
				Influence:   infl,
				Verified:    rng.Bool(0.12 + 0.5*infl*infl),
				Description: expertDescription(t.Name, k),
			}, rng)
			for _, tid := range topics {
				w.expertsByTopic[tid] = append(w.expertsByTopic[tid], u)
			}
		}
	}

	// News outlets: cover a sample of topics in one category, verified,
	// high influence — the "CNBC Newsroom" archetype.
	for _, cat := range Categories() {
		ids := w.TopicsInCategory(cat)
		for k := 0; k < w.Cfg.NewsPerCategory && len(ids) > 0; k++ {
			cover := xrand.Sample(rng, ids, 3+rng.Intn(5))
			infl := 0.5 + 0.5*rng.Float64()
			u := w.addUser(User{
				ScreenName:  namer.ScreenName(NewsUser, cat.String()+fmt.Sprint(k)),
				Kind:        NewsUser,
				Topics:      cover,
				Influence:   infl,
				Verified:    rng.Bool(0.7),
				Description: fmt.Sprintf("breaking %s news and analysis", cat),
			}, rng)
			for _, tid := range cover {
				w.expertsByTopic[tid] = append(w.expertsByTopic[tid], u)
			}
		}
	}

	// Casual users: no expertise, low influence.
	for k := 0; k < w.Cfg.CasualUsers; k++ {
		w.addUser(User{
			ScreenName:  namer.ScreenName(CasualUser, ""),
			Kind:        CasualUser,
			Influence:   0.02 + 0.1*rng.Float64(),
			Description: "just here for the memes",
		}, rng)
	}

	// Spammers: keyword-stuffing accounts with zero genuine expertise.
	for k := 0; k < w.Cfg.SpamUsers; k++ {
		w.addUser(User{
			ScreenName:  namer.ScreenName(SpamUser, ""),
			Kind:        SpamUser,
			Influence:   0.01,
			Description: "FREE prizes click here!!!",
		}, rng)
	}
}

// addUser assigns an ID and derived follower count, then appends.
func (w *World) addUser(u User, rng *xrand.RNG) UserID {
	u.ID = UserID(len(w.Users))
	base := u.Influence * u.Influence * 200000
	u.Followers = int(base * (0.5 + rng.Float64()))
	if u.Verified && u.Followers < 5000 {
		u.Followers += 5000 + rng.Intn(40000)
	}
	if u.Followers < 10 {
		u.Followers = 10 + rng.Intn(200)
	}
	w.Users = append(w.Users, u)
	return u.ID
}

func expertDescription(topic string, k int) string {
	templates := []string{
		"all news about %s",
		"covering %s for the daily herald",
		"huge %s fan. opinions my own",
		"your source for everything %s",
		"%s analysis and commentary",
		"helping others learn about %s",
	}
	return fmt.Sprintf(templates[k%len(templates)], topic)
}
