// Package world defines the synthetic ground-truth universe that replaces
// the paper's two proprietary data assets: the Bing search query log and
// the Twitter corpus. A World holds a set of expertise topics (each with
// keywords, spelling variants and clickable URLs) and a population of
// user accounts (experts, casual users, news outlets and spammers).
//
// Both the query-log generator (internal/querylog) and the microblog
// generator (internal/microblog) sample from the *same* World, so the
// semantic associations that e# mines from search behaviour genuinely
// predict which accounts are expert on which tweets. The World also acts
// as the evaluation oracle: unlike the paper, which needed 64
// crowdworkers because no ground truth existed, we can measure recall and
// precision exactly (the crowd simulation in internal/crowd adds the
// human noise back on top for the Fig 10 reproduction).
package world

import (
	"fmt"
	"sort"

	"repro/internal/textutil"
	"repro/internal/xrand"
)

// Category is a coarse interest area; the six values mirror the paper's
// Table 1 query sets.
type Category int

const (
	Sports Category = iota
	Electronics
	Finance
	Health
	Wikipedia
	General
	numCategories
)

// NumCategories is the number of distinct categories.
const NumCategories = int(numCategories)

// Categories lists every category in declaration order.
func Categories() []Category {
	out := make([]Category, NumCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// String returns the lowercase set name used in the paper's tables.
func (c Category) String() string {
	switch c {
	case Sports:
		return "sports"
	case Electronics:
		return "electronics"
	case Finance:
		return "finance"
	case Health:
		return "health"
	case Wikipedia:
		return "wikipedia"
	case General:
		return "top 250"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// TopicID identifies a topic within a World.
type TopicID int

// UserID identifies a user account within a World.
type UserID int

// Keyword is one search term belonging to a topic.
type Keyword struct {
	// Text is the normalized keyword string (lower case, single spaces).
	Text string
	// Canonical is the canonical form this keyword is a variant of; it
	// equals Text for canonical keywords.
	Canonical string
	// SearchPop is the keyword's relative search popularity within its
	// topic (higher = searched more often).
	SearchPop float64
	// TweetRate is the probability that a topical tweet uses this exact
	// keyword. Keywords with high SearchPop but low TweetRate are the
	// paper's motivating case: searchable terms that rarely fit in 140
	// characters, which the baseline detector therefore misses.
	TweetRate float64
	// SelfClickRate is the probability a click on this keyword lands on
	// the keyword's own navigational URL (SelfURL) instead of the
	// topic's URLs. Navigational keywords end up weakly connected in the
	// similarity graph and become the orphan communities of Figure 6.
	SelfClickRate float64
	// SelfURL is the keyword-specific destination (set only when
	// SelfClickRate > 0).
	SelfURL string
}

// RelatedTopic is a weighted edge in the topic relatedness graph. Related
// topics share some click URLs (producing nearby-but-separate
// communities, Fig 7) and their experts count as marginally relevant.
type RelatedTopic struct {
	ID     TopicID
	Weight float64 // in (0, 1]; strength of the relation
}

// Topic is one latent domain of expertise.
type Topic struct {
	ID       TopicID
	Category Category
	// Name is the topic's canonical headline keyword (e.g. "49ers").
	Name string
	// Keywords lists all search terms of the topic, canonical forms first.
	Keywords []Keyword
	// URLs are the web destinations whose clicks characterize the topic.
	// URLs[0..NumCoreURLs-1] are topic-specific; the rest are category
	// hubs shared with related topics.
	URLs        []string
	NumCoreURLs int
	// Related lists semantically adjacent topics.
	Related []RelatedTopic
	// SearchPop is the topic's overall search popularity weight.
	SearchPop float64
	// TweetPop is the topic's overall microblog activity weight.
	TweetPop float64
	// TweetActivity in (0,1] scales how much of the topic's expert
	// attention becomes actual posts. Navigational topics (mapquest-
	// style: searched constantly, tweeted never) get a value near zero —
	// they are why the paper's baseline answers only 64% of the Top 250
	// set, and e# cannot rescue them either (0.86, not 1.0).
	TweetActivity float64
	// Anchor marks hand-curated topics that mirror the paper's worked
	// examples (49ers, diabetes, dow futures, ...).
	Anchor bool
}

// UserKind classifies synthetic accounts.
type UserKind int

const (
	// ExpertUser posts consistently about a small set of topics.
	ExpertUser UserKind = iota
	// NewsUser is a high-follower outlet covering a whole category.
	NewsUser
	// CasualUser posts occasionally about many topics with low signal.
	CasualUser
	// SpamUser posts high volumes of off-topic or keyword-stuffed text.
	SpamUser
)

// String names the user kind.
func (k UserKind) String() string {
	switch k {
	case ExpertUser:
		return "expert"
	case NewsUser:
		return "news"
	case CasualUser:
		return "casual"
	case SpamUser:
		return "spam"
	default:
		return fmt.Sprintf("userkind(%d)", int(k))
	}
}

// User is one synthetic account.
type User struct {
	ID         UserID
	ScreenName string
	Kind       UserKind
	// Topics lists the topics the account is genuinely expert on (empty
	// for casual and spam users; a whole category's topics for news).
	Topics []TopicID
	// Influence in (0,1] drives follower count, mention and retweet
	// probability.
	Influence   float64
	Verified    bool
	Followers   int
	Description string
}

// Config controls world generation. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	Seed uint64
	// TopicsPerCategory is the number of procedurally generated topics in
	// each category (anchor topics come on top).
	TopicsPerCategory int
	// KeywordsPerTopicMin/Max bound the canonical keyword count per topic.
	KeywordsPerTopicMin int
	KeywordsPerTopicMax int
	// MaxVariantsPerKeyword bounds spelling variants per canonical keyword.
	MaxVariantsPerKeyword int
	// URLsPerTopic is the number of topic-specific URLs.
	URLsPerTopic int
	// HubURLsPerCategory is the number of shared category-hub URLs.
	HubURLsPerCategory int
	// ExpertsPerTopic is the mean number of dedicated expert accounts.
	ExpertsPerTopic float64
	// CasualUsers and SpamUsers size the background population.
	CasualUsers int
	SpamUsers   int
	// NewsPerCategory is the number of news outlets per category.
	NewsPerCategory int
	// RelatedPerTopic is the mean number of related-topic edges.
	RelatedPerTopic float64
	// RareKeywordFraction is the fraction of canonical keywords given a
	// near-zero TweetRate (searchable but rarely tweeted verbatim) — the
	// knob that creates the recall gap e# closes.
	RareKeywordFraction float64
	// LonerKeywordFraction is the fraction of satellite keywords with a
	// navigational click profile (SelfClickRate high). They become the
	// orphan communities of Figure 6.
	LonerKeywordFraction float64
	// NavigationalTopicFraction is the fraction of topics that are
	// searched but essentially never tweeted (TweetActivity ~ 0). The
	// General category doubles this rate, which is what drags the
	// baseline's Top 250 answered-rate down, as in Table 8.
	NavigationalTopicFraction float64
}

// DefaultConfig returns the laptop-scale configuration used by the
// experiment harness: ~250 topics, ~6k terms, a few thousand accounts.
func DefaultConfig() Config {
	return Config{
		Seed:                      1,
		TopicsPerCategory:         40,
		KeywordsPerTopicMin:       4,
		KeywordsPerTopicMax:       9,
		MaxVariantsPerKeyword:     2,
		URLsPerTopic:              4,
		HubURLsPerCategory:        2,
		ExpertsPerTopic:           5,
		CasualUsers:               2500,
		SpamUsers:                 120,
		NewsPerCategory:           8,
		RelatedPerTopic:           2.5,
		RareKeywordFraction:       0.3,
		LonerKeywordFraction:      0.12,
		NavigationalTopicFraction: 0.07,
	}
}

// TinyConfig returns a miniature world for unit tests: a handful of
// topics and users so tests run in milliseconds.
func TinyConfig() Config {
	cfg := DefaultConfig()
	cfg.TopicsPerCategory = 4
	cfg.KeywordsPerTopicMin = 3
	cfg.KeywordsPerTopicMax = 6
	cfg.MaxVariantsPerKeyword = 2
	cfg.ExpertsPerTopic = 3
	cfg.CasualUsers = 120
	cfg.SpamUsers = 10
	cfg.NewsPerCategory = 2
	return cfg
}

// World is the generated universe.
type World struct {
	Cfg    Config
	Topics []Topic
	Users  []User

	// keywordOwner maps normalized keyword text to its owning topic.
	// Keyword strings are unique across topics by construction.
	keywordOwner map[string]TopicID
	// expertsByTopic maps a topic to the users expert on it (dedicated
	// experts plus the category's news outlets).
	expertsByTopic map[TopicID][]UserID
}

// Build generates a World from cfg. Generation is fully deterministic in
// cfg.Seed.
func Build(cfg Config) *World {
	rng := xrand.New(cfg.Seed)
	w := &World{
		Cfg:            cfg,
		keywordOwner:   make(map[string]TopicID),
		expertsByTopic: make(map[TopicID][]UserID),
	}
	namer := newNamer(rng.Split())

	// 1. Anchor topics first (they mirror the paper's worked examples and
	//    must exist at every scale), then procedural topics per category.
	for _, spec := range anchorSpecs() {
		w.addAnchorTopic(spec, rng.Split())
	}
	for _, cat := range Categories() {
		for i := 0; i < cfg.TopicsPerCategory; i++ {
			w.addProceduralTopic(cat, namer, rng.Split())
		}
	}

	// 2. Relatedness edges: anchors carry curated relations; procedural
	//    topics link to random same-category peers.
	w.wireRelations(rng.Split())

	// 3. Category hub URLs shared across a category's topics.
	w.attachHubURLs(rng.Split())

	// 4. Population.
	w.buildUsers(namer, rng.Split())

	return w
}

// Topic returns the topic with the given ID.
func (w *World) Topic(id TopicID) *Topic {
	return &w.Topics[int(id)]
}

// User returns the user with the given ID.
func (w *World) User(id UserID) *User {
	return &w.Users[int(id)]
}

// KeywordOwner returns the topic owning the normalized keyword, if any.
func (w *World) KeywordOwner(term string) (TopicID, bool) {
	id, ok := w.keywordOwner[textutil.Normalize(term)]
	return id, ok
}

// ExpertsOn returns the users who are genuinely expert on the topic.
func (w *World) ExpertsOn(id TopicID) []UserID {
	return w.expertsByTopic[id]
}

// Vocabulary returns every keyword string in the world, sorted.
func (w *World) Vocabulary() []string {
	out := make([]string, 0, len(w.keywordOwner))
	for k := range w.keywordOwner {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// IsRelevantExpert is the ground-truth oracle: it reports whether user u
// is a relevant expert for a query owned by topic t. Direct expertise
// always counts; expertise on a related topic counts when the relation
// weight is at least 0.5 (Fig 7's "related but not closely enough"
// communities sit below that line).
func (w *World) IsRelevantExpert(u UserID, t TopicID) bool {
	user := w.User(u)
	for _, ut := range user.Topics {
		if ut == t {
			return true
		}
	}
	topic := w.Topic(t)
	for _, rel := range topic.Related {
		if rel.Weight < 0.5 {
			continue
		}
		for _, ut := range user.Topics {
			if ut == rel.ID {
				return true
			}
		}
	}
	return false
}

// TopicsInCategory returns the IDs of all topics in the category, anchor
// topics first, then by descending search popularity.
func (w *World) TopicsInCategory(cat Category) []TopicID {
	var ids []TopicID
	for i := range w.Topics {
		if w.Topics[i].Category == cat {
			ids = append(ids, w.Topics[i].ID)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		ta, tb := w.Topic(ids[a]), w.Topic(ids[b])
		if ta.Anchor != tb.Anchor {
			return ta.Anchor
		}
		if ta.SearchPop != tb.SearchPop {
			return ta.SearchPop > tb.SearchPop
		}
		return ta.ID < tb.ID
	})
	return ids
}

// addKeyword registers a keyword on the topic, skipping duplicates across
// the whole world so every term has a unique owning topic.
func (w *World) addKeyword(t *Topic, kw Keyword) bool {
	kw.Text = textutil.Normalize(kw.Text)
	kw.Canonical = textutil.Normalize(kw.Canonical)
	if kw.Text == "" {
		return false
	}
	if kw.Canonical == "" {
		kw.Canonical = kw.Text
	}
	if _, taken := w.keywordOwner[kw.Text]; taken {
		return false
	}
	w.keywordOwner[kw.Text] = t.ID
	t.Keywords = append(t.Keywords, kw)
	return true
}

// newTopic appends an empty topic shell and returns it.
func (w *World) newTopic(cat Category, name string, anchor bool) *Topic {
	id := TopicID(len(w.Topics))
	w.Topics = append(w.Topics, Topic{
		ID:       id,
		Category: cat,
		Name:     textutil.Normalize(name),
		Anchor:   anchor,
	})
	return &w.Topics[int(id)]
}

// addProceduralTopic synthesizes one topic with generated names, keyword
// variants, URLs and popularity draws.
func (w *World) addProceduralTopic(cat Category, namer *namer, rng *xrand.RNG) {
	name := namer.TopicName(cat)
	t := w.newTopic(cat, name, false)
	t.SearchPop = rng.LogNormal(0, 1)
	t.TweetPop = rng.LogNormal(0, 1)
	t.TweetActivity = 1
	navFraction := w.Cfg.NavigationalTopicFraction
	if cat == General {
		// Mapquest-style navigational queries cluster in the general
		// category, which feeds the Top 250 set.
		navFraction = 0.5
	}
	if rng.Bool(navFraction) {
		t.TweetActivity = 0.001
		if cat == General {
			// Navigational queries dominate the head of real search
			// logs (mapquest, facebook, ...): boosting their search
			// popularity floods the Top 250 set with them — the reason
			// that set has the paper's lowest baseline answered-rate
			// (0.64) and why even e# only reaches 0.86 there.
			t.SearchPop *= 3
		}
	}

	nKw := w.Cfg.KeywordsPerTopicMin
	if spread := w.Cfg.KeywordsPerTopicMax - w.Cfg.KeywordsPerTopicMin; spread > 0 {
		nKw += rng.Intn(spread + 1)
	}
	canonicals := []string{name}
	for i := 1; i < nKw; i++ {
		canonicals = append(canonicals, namer.SubKeyword(cat, name))
	}
	for i, c := range canonicals {
		pop := 1.0 / float64(i+1) // head keyword most searched
		tweetRate := 0.25 + 0.5*rng.Float64()
		if i > 0 && rng.Bool(w.Cfg.RareKeywordFraction) {
			tweetRate = 0.003 // searchable but almost never tweeted verbatim
		}
		kw := Keyword{Text: c, SearchPop: pop, TweetRate: tweetRate}
		if i > 0 && rng.Bool(w.Cfg.LonerKeywordFraction) {
			kw.SelfClickRate = 0.85
			kw.SelfURL = sanitizeHost(c) + ".site"
		}
		if !w.addKeyword(t, kw) {
			continue
		}
		nv := rng.Intn(w.Cfg.MaxVariantsPerKeyword + 1)
		for _, v := range textutil.Variants(c, nv, rng.Intn(1<<16)) {
			// Variants are searched but essentially never tweeted. They
			// inherit the canonical keyword's click profile, so a loner's
			// variants co-cluster with it in a tiny community.
			w.addKeyword(t, Keyword{
				Text: v, Canonical: c, SearchPop: pop * 0.4, TweetRate: 0.0005,
				SelfClickRate: kw.SelfClickRate, SelfURL: kw.SelfURL,
			})
		}
	}
	for i := 0; i < w.Cfg.URLsPerTopic; i++ {
		t.URLs = append(t.URLs, namer.TopicURL(name, i))
	}
	t.NumCoreURLs = len(t.URLs)
}

// wireRelations links topics within a category. Anchor relations were
// installed by addAnchorTopic; procedural topics receive random peers.
func (w *World) wireRelations(rng *xrand.RNG) {
	w.wireAnchorRelations()
	byCat := map[Category][]TopicID{}
	for i := range w.Topics {
		byCat[w.Topics[i].Category] = append(byCat[w.Topics[i].Category], w.Topics[i].ID)
	}
	for i := range w.Topics {
		t := &w.Topics[i]
		if t.Anchor || t.navigational() {
			// Navigational topics have no semantic neighborhood: their
			// clicks go to one destination, so nothing co-clicks with
			// them and query expansion cannot rescue their queries —
			// the 14% of Top 250 that even e# leaves unanswered.
			continue
		}
		peers := byCat[t.Category]
		n := rng.Poisson(w.Cfg.RelatedPerTopic)
		for k := 0; k < n && len(peers) > 1; k++ {
			p := peers[rng.Intn(len(peers))]
			if p == t.ID || t.hasRelation(p) || w.Topic(p).navigational() {
				continue
			}
			weight := 0.2 + 0.6*rng.Float64()
			t.Related = append(t.Related, RelatedTopic{ID: p, Weight: weight})
			// Relations are symmetric.
			other := w.Topic(p)
			if !other.hasRelation(t.ID) {
				other.Related = append(other.Related, RelatedTopic{ID: t.ID, Weight: weight})
			}
		}
	}
}

// navigational reports whether the topic is searched but essentially
// never tweeted.
func (t *Topic) navigational() bool { return t.TweetActivity > 0 && t.TweetActivity < 0.01 }

func (t *Topic) hasRelation(id TopicID) bool {
	for _, r := range t.Related {
		if r.ID == id {
			return true
		}
	}
	return false
}

// attachHubURLs adds per-category hub URLs (espn.com-style portals) to
// every topic of the category. Hub clicks create the weak inter-topic
// edges that give rise to Fig 7's nearby communities.
func (w *World) attachHubURLs(rng *xrand.RNG) {
	for _, cat := range Categories() {
		hubs := make([]string, w.Cfg.HubURLsPerCategory)
		for i := range hubs {
			hubs[i] = fmt.Sprintf("%s-hub%d.com", sanitizeHost(cat.String()), i)
		}
		for i := range w.Topics {
			t := &w.Topics[i]
			if t.Category != cat || t.navigational() {
				continue
			}
			// Each topic links to a subset of its category hubs.
			for _, h := range hubs {
				if rng.Bool(0.7) {
					t.URLs = append(t.URLs, h)
				}
			}
		}
	}
}
