package world

import (
	"fmt"
	"strings"

	"repro/internal/xrand"
)

// namer generates pronounceable, category-flavoured names for topics,
// keywords, URLs and user accounts. All output is deterministic in the
// RNG stream it is constructed with, and global uniqueness of topic names
// is enforced with a seen-set so every keyword has a single owning topic.
type namer struct {
	rng  *xrand.RNG
	seen map[string]bool
}

func newNamer(rng *xrand.RNG) *namer {
	return &namer{rng: rng, seen: make(map[string]bool)}
}

var (
	consonants = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m",
		"n", "p", "r", "s", "t", "v", "w", "z", "br", "ch", "cl", "dr",
		"gr", "kr", "pl", "pr", "sh", "st", "th", "tr"}
	vowels = []string{"a", "e", "i", "o", "u", "ai", "ea", "io", "ou"}

	sportsSuffixes = []string{"ers", "hawks", "cats", "bulls", "stars",
		"united", "racing", "fc", "wolves", "riders"}
	electronicsNouns = []string{"phone", "tablet", "watch", "camera",
		"speaker", "headset", "drone", "router", "console", "tv"}
	financeSuffixes = []string{"capital", "futures", "index", "holdings",
		"etf", "stock", "bank", "fund", "markets", "exchange"}
	healthSuffixes = []string{"itis", "emia", "osis", "algia", "pathy",
		"syndrome", "disorder", "therapy", "fever", "deficiency"}
	wikiSuffixes = []string{"dynasty", "revolution", "treaty", "empire",
		"expedition", "biography", "festival", "saga", "doctrine", "era"}
	generalSuffixes = []string{"news", "online", "maps", "travel",
		"recipes", "weather", "deals", "motors", "airlines", "games"}

	subKeywordPatterns = map[Category][]string{
		Sports:      {"%s roster", "%s schedule", "%s draft", "%s trade", "%s score", "%s tickets", "%s highlights", "%s coach", "%s rumors", "%s injury"},
		Electronics: {"%s review", "%s price", "%s specs", "%s manual", "%s case", "%s charger", "%s vs", "%s deals", "%s battery", "%s setup"},
		Finance:     {"%s price", "%s forecast", "%s chart", "%s dividend", "%s earnings", "%s analysis", "%s today", "%s news", "%s outlook", "%s rate"},
		Health:      {"%s symptoms", "%s treatment", "%s diet", "%s causes", "%s medication", "%s diagnosis", "%s prevention", "%s risk", "%s test", "%s cure"},
		Wikipedia:   {"%s history", "%s timeline", "%s facts", "%s summary", "%s causes", "%s map", "%s quotes", "%s legacy", "%s museum", "%s documentary"},
		General:     {"%s news", "%s online", "%s login", "%s app", "%s reviews", "%s hours", "%s near me", "%s coupons", "%s website", "%s phone number"},
	}
)

// word builds a pronounceable word of the requested syllable count.
func (n *namer) word(syllables int) string {
	var b strings.Builder
	for i := 0; i < syllables; i++ {
		b.WriteString(xrand.Pick(n.rng, consonants))
		b.WriteString(xrand.Pick(n.rng, vowels))
	}
	return b.String()
}

// TopicName generates a unique category-flavoured topic headline keyword.
func (n *namer) TopicName(cat Category) string {
	for attempt := 0; ; attempt++ {
		var name string
		base := n.word(2 + n.rng.Intn(2))
		switch cat {
		case Sports:
			name = base + " " + xrand.Pick(n.rng, sportsSuffixes)
		case Electronics:
			name = base + " " + xrand.Pick(n.rng, electronicsNouns)
		case Finance:
			if n.rng.Bool(0.4) {
				// Ticker-style keyword.
				name = strings.ToLower(base[:min(4, len(base))]) + " " + xrand.Pick(n.rng, financeSuffixes)
			} else {
				name = base + " " + xrand.Pick(n.rng, financeSuffixes)
			}
		case Health:
			name = base + xrand.Pick(n.rng, healthSuffixes)
		case Wikipedia:
			if n.rng.Bool(0.5) {
				// Person-style two-word name.
				name = base + " " + n.word(2)
			} else {
				name = base + " " + xrand.Pick(n.rng, wikiSuffixes)
			}
		default:
			if n.rng.Bool(0.35) {
				name = base // single brand-style token
			} else {
				name = base + " " + xrand.Pick(n.rng, generalSuffixes)
			}
		}
		if !n.seen[name] {
			n.seen[name] = true
			return name
		}
		if attempt > 100 {
			// Fall back to an indexed name; practically unreachable.
			name = fmt.Sprintf("%s %d", name, len(n.seen))
			n.seen[name] = true
			return name
		}
	}
}

// SubKeyword generates a satellite keyword for a topic: either a
// pattern-expanded phrase ("<name> schedule") or a fresh entity name
// (player, product, author...) associated with the topic.
func (n *namer) SubKeyword(cat Category, topicName string) string {
	if n.rng.Bool(0.6) {
		pat := xrand.Pick(n.rng, subKeywordPatterns[cat])
		return fmt.Sprintf(pat, topicName)
	}
	// Entity-style keyword: two fresh words (a player, device model...).
	return n.word(2) + " " + n.word(1+n.rng.Intn(2))
}

// TopicURL derives the i-th topic-specific URL for a topic name.
func (n *namer) TopicURL(topicName string, i int) string {
	host := sanitizeHost(topicName)
	switch i {
	case 0:
		return host + ".com"
	case 1:
		return "www." + host + ".org"
	case 2:
		return host + ".blog"
	default:
		return fmt.Sprintf("%s-%d.net", host, i)
	}
}

// ScreenName generates a unique account handle flavoured by the account
// kind and (for experts) the topic it covers.
func (n *namer) ScreenName(kind UserKind, topicName string) string {
	base := strings.ReplaceAll(topicName, " ", "")
	if base == "" {
		base = n.word(2)
	}
	var name string
	switch kind {
	case ExpertUser:
		switch n.rng.Intn(4) {
		case 0:
			name = base + "fan" + fmt.Sprint(n.rng.Intn(100))
		case 1:
			name = "all_" + base
		case 2:
			name = base + "_daily"
		default:
			name = n.word(2) + "_" + base
		}
	case NewsUser:
		name = base + "news"
	case SpamUser:
		name = "win_" + n.word(2) + fmt.Sprint(n.rng.Intn(1000))
	default:
		name = n.word(2) + fmt.Sprint(n.rng.Intn(10000))
	}
	for n.seen["@"+name] {
		name += fmt.Sprint(n.rng.Intn(10))
	}
	n.seen["@"+name] = true
	return name
}

// sanitizeHost converts free text to a hostname-safe label.
func sanitizeHost(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteByte('-')
		}
	}
	out := strings.Trim(b.String(), "-")
	if out == "" {
		return "site"
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
