package eval

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/world"
)

var (
	once    sync.Once
	pipe    *core.Pipeline
	sets    []QuerySet
	pipeErr error
)

// testPipeline builds one shared tiny pipeline plus query sets.
func testPipeline(t testing.TB) (*core.Pipeline, []QuerySet) {
	t.Helper()
	once.Do(func() {
		cfg := core.TinyPipelineConfig()
		pipe, pipeErr = core.BuildPipeline(cfg)
		if pipeErr == nil {
			sets = BuildQuerySets(pipe.World, pipe.Log, SetSizes{PerCategory: 25, Top: 60})
		}
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe, sets
}

func TestQuerySetsShape(t *testing.T) {
	_, qsets := testPipeline(t)
	if len(qsets) != 6 {
		t.Fatalf("got %d sets, want 6", len(qsets))
	}
	names := map[string]bool{}
	for _, qs := range qsets {
		names[qs.Name] = true
		if qs.Size() == 0 {
			t.Errorf("set %q empty", qs.Name)
		}
		if len(qs.Queries) != len(qs.Topics) {
			t.Errorf("set %q misaligned topics", qs.Name)
		}
	}
	for _, want := range []string{"sports", "electronics", "finance", "health", "wikipedia", "top 250"} {
		if !names[want] {
			t.Errorf("missing set %q", want)
		}
	}
}

func TestQuerySetsRespectSizes(t *testing.T) {
	p, _ := testPipeline(t)
	small := BuildQuerySets(p.World, p.Log, SetSizes{PerCategory: 5, Top: 9})
	for _, qs := range small {
		limit := 5
		if qs.Name == "top 250" {
			limit = 9
		}
		if qs.Size() > limit {
			t.Errorf("set %q has %d queries, limit %d", qs.Name, qs.Size(), limit)
		}
	}
}

func TestQuerySetsCategoriesConsistent(t *testing.T) {
	p, qsets := testPipeline(t)
	wantCat := map[string]world.Category{
		"sports": world.Sports, "electronics": world.Electronics,
		"finance": world.Finance, "health": world.Health,
		"wikipedia": world.Wikipedia,
	}
	for _, qs := range qsets {
		cat, ok := wantCat[qs.Name]
		if !ok {
			continue
		}
		for i, topic := range qs.Topics {
			if p.World.Topic(topic).Category != cat {
				t.Errorf("set %q query %q topic in wrong category", qs.Name, qs.Queries[i])
			}
		}
	}
}

func TestQuerySetsSortedByPopularity(t *testing.T) {
	p, qsets := testPipeline(t)
	for _, qs := range qsets {
		for i := 1; i < qs.Size(); i++ {
			if p.Log.Total(qs.Queries[i-1]) < p.Log.Total(qs.Queries[i]) {
				t.Errorf("set %q not sorted by clicks at %d", qs.Name, i)
				break
			}
		}
	}
}

func TestTable8ShowsImprovement(t *testing.T) {
	p, qsets := testPipeline(t)
	rows := RunTable8(p.Detector, qsets)
	if len(rows) != len(qsets) {
		t.Fatalf("got %d rows", len(rows))
	}
	improved := 0
	for _, r := range rows {
		if r.Baseline < 0 || r.Baseline > 1 || r.ESharp < 0 || r.ESharp > 1 {
			t.Errorf("set %s rates out of range: %+v", r.Set, r)
		}
		if r.ESharp < r.Baseline {
			t.Errorf("set %s: e# answered fewer queries than baseline (%v < %v)",
				r.Set, r.ESharp, r.Baseline)
		}
		if r.ESharp > r.Baseline {
			improved++
		}
	}
	if improved < 3 {
		t.Errorf("e# improved only %d/%d sets", improved, len(rows))
	}
}

func TestFigure8CurvesMonotone(t *testing.T) {
	p, qsets := testPipeline(t)
	curves := RunFigure8(p.Detector, qsets[:2], 14)
	for _, c := range curves {
		if c.Baseline[0] != 100 || c.ESharp[0] != 100 {
			t.Errorf("set %s: curve must start at 100%%", c.Set)
		}
		for n := 1; n <= c.MaxN; n++ {
			if c.Baseline[n] > c.Baseline[n-1]+1e-9 || c.ESharp[n] > c.ESharp[n-1]+1e-9 {
				t.Errorf("set %s: coverage curve not monotone at n=%d", c.Set, n)
			}
		}
		// e# dominates the baseline pointwise (query expansion can only
		// add matched tweets).
		for n := 0; n <= c.MaxN; n++ {
			if c.ESharp[n] < c.Baseline[n]-1e-9 {
				t.Errorf("set %s: e# below baseline at n=%d (%.1f < %.1f)",
					c.Set, n, c.ESharp[n], c.Baseline[n])
			}
		}
	}
}

func TestFigure9Decreasing(t *testing.T) {
	p, qsets := testPipeline(t)
	top := qsets[len(qsets)-1]
	points := RunFigure9(p, top, []float64{0, 0.5, 1, 2, 4})
	if len(points) != 5 {
		t.Fatalf("got %d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].BaselineAvg > points[i-1].BaselineAvg+1e-9 {
			t.Errorf("baseline avg increased at threshold %v", points[i].MinZ)
		}
		if points[i].ESharpAvg > points[i-1].ESharpAvg+1e-9 {
			t.Errorf("e# avg increased at threshold %v", points[i].MinZ)
		}
	}
	// At a permissive threshold e# must return more experts on average.
	if points[0].ESharpAvg <= points[0].BaselineAvg {
		t.Errorf("e# avg %v not above baseline %v at z=0",
			points[0].ESharpAvg, points[0].BaselineAvg)
	}
	// At an extreme threshold both tend to zero.
	last := points[len(points)-1]
	if last.BaselineAvg > 2 || last.ESharpAvg > 2 {
		t.Errorf("averages did not decay: %+v", last)
	}
}

func TestFigure10ImpurityComparable(t *testing.T) {
	p, qsets := testPipeline(t)
	study := crowd.NewStudy(p.World, crowd.DefaultConfig())
	curves := RunFigure10(p, study, qsets[:1], []float64{0, 1}, 10)
	if len(curves) != 1 {
		t.Fatalf("got %d curves", len(curves))
	}
	c := curves[0]
	if len(c.Baseline) != 2 || len(c.ESharp) != 2 {
		t.Fatalf("curve lengths wrong: %d/%d", len(c.Baseline), len(c.ESharp))
	}
	for i := range c.Baseline {
		for _, pt := range []ImpurityPoint{c.Baseline[i], c.ESharp[i]} {
			if pt.Impurity < 0 || pt.Impurity > 1 {
				t.Errorf("impurity out of range: %+v", pt)
			}
			if pt.AvgExperts < 0 {
				t.Errorf("negative avg experts: %+v", pt)
			}
		}
	}
	// Key claim of the paper: the e# accuracy penalty is small. Allow a
	// generous margin on the tiny world.
	if c.ESharp[0].Impurity > c.Baseline[0].Impurity+0.3 {
		t.Errorf("e# impurity %.3f far above baseline %.3f",
			c.ESharp[0].Impurity, c.Baseline[0].Impurity)
	}
}

func TestFigure7Report(t *testing.T) {
	p, _ := testPipeline(t)
	rep, err := RunFigure7(p.Detector, "49ers", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Domain) == 0 {
		t.Fatal("empty 49ers domain")
	}
	found := false
	for _, term := range rep.Domain {
		if term == "49ers" {
			found = true
		}
	}
	if !found {
		t.Error("49ers missing from own domain")
	}
	if len(rep.Neighbors) == 0 {
		t.Error("no neighboring communities")
	}
	if _, err := RunFigure7(p.Detector, "no such term zz", 3); err == nil {
		t.Error("unknown term produced a report")
	}
}

func TestExampleTables(t *testing.T) {
	p, _ := testPipeline(t)
	rows := RunExampleTable(p.Detector, p.World, "49ers", 3)
	if len(rows) == 0 {
		t.Fatal("no example rows")
	}
	algos := map[string]int{}
	for _, r := range rows {
		algos[r.Algorithm]++
		if r.ScreenName == "" {
			t.Error("row with empty screen name")
		}
	}
	if algos["baseline"] == 0 || algos["e#"] == 0 {
		t.Errorf("missing algorithm rows: %v", algos)
	}
	if algos["baseline"] > 3 || algos["e#"] > 3 {
		t.Errorf("k=3 not respected: %v", algos)
	}
}

func TestTable9IncludesOnlineSteps(t *testing.T) {
	p, _ := testPipeline(t)
	rows := RunTable9(p, []string{"49ers", "diabetes"})
	steps := map[string]bool{}
	for _, r := range rows {
		steps[r.Step] = true
	}
	for _, want := range []string{"extraction", "graph", "clustering", "expansion", "detection"} {
		if !steps[want] {
			t.Errorf("Table 9 missing step %q (have %v)", want, steps)
		}
	}
}

func TestGroundTruthRecallGain(t *testing.T) {
	p, qsets := testPipeline(t)
	rows := RunGroundTruth(p.Detector, p.World, qsets)
	gained := 0
	for _, r := range rows {
		if r.ESharpRecall > r.BaselineRecall {
			gained++
		}
		if r.BaselineRecall < 0 || r.BaselineRecall > 1 || r.ESharpRecall < 0 || r.ESharpRecall > 1 {
			t.Errorf("recall out of range: %+v", r)
		}
	}
	if gained < 3 {
		t.Errorf("e# improved oracle recall on only %d/%d sets", gained, len(rows))
	}
}

func TestRenderers(t *testing.T) {
	p, qsets := testPipeline(t)
	study := crowd.NewStudy(p.World, crowd.DefaultConfig())

	outputs := []string{
		RenderTable1(qsets),
		RenderTable8(RunTable8(p.Detector, qsets[:2])),
		RenderFigure5(Figure5(p.Clustering)),
		RenderFigure9(RunFigure9(p, qsets[len(qsets)-1], []float64{0, 1})),
		RenderTable9(RunTable9(p, []string{"49ers"})),
		RenderGroundTruth(RunGroundTruth(p.Detector, p.World, qsets[:1])),
	}
	labels, counts := Figure6(p.Clustering)
	outputs = append(outputs, RenderFigure6(labels, counts))
	if rep, err := RunFigure7(p.Detector, "49ers", 3); err == nil {
		outputs = append(outputs, RenderFigure7(rep))
	}
	outputs = append(outputs, RenderFigure8(RunFigure8(p.Detector, qsets[:1], 5)))
	outputs = append(outputs, RenderFigure10(RunFigure10(p, study, qsets[:1], []float64{0}, 5)))
	outputs = append(outputs, RenderExampleTable("49ers", RunExampleTable(p.Detector, p.World, "49ers", 3)))

	for i, out := range outputs {
		if strings.TrimSpace(out) == "" {
			t.Errorf("renderer %d produced empty output", i)
		}
		if strings.Contains(out, "%!") {
			t.Errorf("renderer %d has formatting error:\n%s", i, out)
		}
	}
}

func TestRenderTableAlignment(t *testing.T) {
	out := RenderTable([]string{"a", "long header"}, [][]string{
		{"xxxxxxxx", "y"},
		{"z", "w"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	// All rows same width.
	for _, l := range lines[1:] {
		if len(strings.TrimRight(l, " ")) > len(lines[0])+8 {
			t.Errorf("row much wider than header: %q", l)
		}
	}
}

func BenchmarkTable8(b *testing.B) {
	p, qsets := testPipeline(b)
	small := qsets[:1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunTable8(p.Detector, small)
	}
}

func TestRunTable9NoSampleQueries(t *testing.T) {
	p, _ := testPipeline(t)
	rows := RunTable9(p, nil)
	for _, r := range rows {
		if r.Step == "expansion" || r.Step == "detection" {
			t.Error("online rows present without sample queries")
		}
	}
	if len(rows) == 0 {
		t.Fatal("no offline rows")
	}
}

func TestEmptyQuerySetSafe(t *testing.T) {
	p, _ := testPipeline(t)
	empty := []QuerySet{{Name: "empty"}}
	rows := RunTable8(p.Detector, empty)
	if len(rows) != 1 {
		t.Fatal("no row for empty set")
	}
	curves := RunFigure8(p.Detector, empty, 5)
	if len(curves) != 1 {
		t.Fatal("no curve for empty set")
	}
}

func TestFigure9EmptyThresholds(t *testing.T) {
	p, qsets := testPipeline(t)
	if pts := RunFigure9(p, qsets[0], nil); len(pts) != 0 {
		t.Error("points from empty threshold list")
	}
}
