// Package eval is the experiment harness: it constructs the paper's six
// query sets (Table 1), runs both detectors over them, simulates the
// crowdsourced judgments, and renders every table and figure of the
// evaluation section (Tables 1–9, Figures 5–10) as plain text.
package eval

import (
	"sort"

	"repro/internal/querylog"
	"repro/internal/world"
)

// QuerySet is one evaluation workload: queries plus their ground-truth
// topics (the alignment the synthetic world gives us for free).
type QuerySet struct {
	Name    string
	Queries []string
	// Topics aligns with Queries: the owning topic of each query.
	Topics []world.TopicID
}

// Size returns the number of queries in the set.
func (qs *QuerySet) Size() int { return len(qs.Queries) }

// Examples returns up to n example queries for the Table 1 rendering.
func (qs *QuerySet) Examples(n int) []string {
	if n > len(qs.Queries) {
		n = len(qs.Queries)
	}
	return qs.Queries[:n]
}

// SetSizes mirrors Table 1: 100 queries for the four category sets and
// Wikipedia, 250 for the popularity set.
type SetSizes struct {
	PerCategory int
	Top         int
}

// DefaultSetSizes returns the paper's sizes.
func DefaultSetSizes() SetSizes { return SetSizes{PerCategory: 100, Top: 250} }

// BuildQuerySets assembles the six sets from the world and the
// aggregated click log, ranking candidate queries by their observed
// click volume ("the most popular search terms ... for each category").
// Only queries surviving the log's noise filter are eligible, exactly as
// a production system would sample them.
func BuildQuerySets(w *world.World, log *querylog.Log, sizes SetSizes) []QuerySet {
	if sizes.PerCategory <= 0 {
		sizes.PerCategory = 100
	}
	if sizes.Top <= 0 {
		sizes.Top = 250
	}

	categoryFor := func(q string) (world.TopicID, world.Category, bool) {
		id, ok := w.KeywordOwner(q)
		if !ok {
			return 0, 0, false
		}
		return id, w.Topic(id).Category, true
	}

	type scored struct {
		query  string
		topic  world.TopicID
		clicks int
	}
	byCat := map[world.Category][]scored{}
	var all []scored
	for _, q := range log.Queries() {
		id, cat, ok := categoryFor(q)
		if !ok {
			continue // junk query that survived the filter
		}
		s := scored{query: q, topic: id, clicks: log.Total(q)}
		// The paper's category sets are curated lists of clean terms
		// ("49ers, hernandez, buffalo bills, ..."), so they contain
		// canonical keywords only; the Top 250 set is the raw log head,
		// spelling variants, navigational queries and all.
		if canonicalKeyword(w, id, q) {
			byCat[cat] = append(byCat[cat], s)
		}
		all = append(all, s)
	}
	rank := func(xs []scored) {
		sort.Slice(xs, func(i, j int) bool {
			if xs[i].clicks != xs[j].clicks {
				return xs[i].clicks > xs[j].clicks
			}
			return xs[i].query < xs[j].query
		})
	}
	take := func(name string, xs []scored, n int) QuerySet {
		rank(xs)
		if n > len(xs) {
			n = len(xs)
		}
		qs := QuerySet{Name: name}
		for _, s := range xs[:n] {
			qs.Queries = append(qs.Queries, s.query)
			qs.Topics = append(qs.Topics, s.topic)
		}
		return qs
	}

	sets := []QuerySet{
		take("sports", byCat[world.Sports], sizes.PerCategory),
		take("electronics", byCat[world.Electronics], sizes.PerCategory),
		take("finance", byCat[world.Finance], sizes.PerCategory),
		take("health", byCat[world.Health], sizes.PerCategory),
		take("wikipedia", byCat[world.Wikipedia], sizes.PerCategory),
		take("top 250", all, sizes.Top),
	}
	return sets
}

// canonicalKeyword reports whether q is a canonical (non-variant)
// keyword of the topic.
func canonicalKeyword(w *world.World, id world.TopicID, q string) bool {
	for _, kw := range w.Topic(id).Keywords {
		if kw.Text == q {
			return kw.Canonical == kw.Text
		}
	}
	return false
}
