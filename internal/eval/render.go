package eval

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/community"
	"repro/internal/querylog"
)

// RenderTable renders rows as an aligned ASCII table.
func RenderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// RenderTable1 renders the query-set summary.
func RenderTable1(sets []QuerySet) string {
	rows := make([][]string, 0, len(sets))
	for _, qs := range sets {
		rows = append(rows, []string{
			qs.Name,
			fmt.Sprint(qs.Size()),
			strings.Join(qs.Examples(5), ", "),
		})
	}
	return "Table 1: Queries used for the study\n" +
		RenderTable([]string{"Set Name", "Count", "Examples"}, rows)
}

// RenderTable8 renders the answered-rate comparison.
func RenderTable8(rows []Table8Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Set,
			fmt.Sprintf("%.2f", r.Baseline),
			fmt.Sprintf("%.2f", r.ESharp),
			fmt.Sprintf("%+.1f%%", 100*r.Improvement),
		})
	}
	return "Table 8: Proportion of queries with at least one expert\n" +
		RenderTable([]string{"Data set", "Baseline", "e#", "Improvement"}, out)
}

// RenderFigure5 renders the convergence trace.
func RenderFigure5(iters []community.IterStats) string {
	rows := make([][]string, 0, len(iters))
	for _, it := range iters {
		rows = append(rows, []string{
			fmt.Sprint(it.Iteration),
			fmt.Sprint(it.Communities),
			fmt.Sprintf("%.4f", it.Modularity),
			fmt.Sprint(it.Merges),
		})
	}
	return "Figure 5: Convergence of the community detection algorithm\n" +
		RenderTable([]string{"Iteration", "Communities", "Modularity", "Merges"}, rows)
}

// RenderFigure6 renders the community-size distribution.
func RenderFigure6(labels [4]string, counts [4]int) string {
	total := 0
	for _, c := range counts {
		total += c
	}
	rows := make([][]string, 0, 4)
	for i := range labels {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(counts[i]) / float64(total)
		}
		rows = append(rows, []string{
			labels[i],
			fmt.Sprint(counts[i]),
			fmt.Sprintf("%.1f%%", pct),
			strings.Repeat("#", int(pct/2)),
		})
	}
	return "Figure 6: Distribution of the community sizes\n" +
		RenderTable([]string{"Queries per community", "Count", "Share", "Bar"}, rows)
}

// RenderFigure7 renders the neighborhood report.
func RenderFigure7(rep NeighborhoodReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: Graph and communities around the term %q\n", rep.Query)
	fmt.Fprintf(&b, "community: %s\n", strings.Join(rep.Domain, ", "))
	for i, terms := range rep.Neighbors {
		fmt.Fprintf(&b, "neighbor %d (proximity %.3f): %s\n",
			i+1, rep.Weights[i], strings.Join(terms, ", "))
	}
	return b.String()
}

// RenderFigure8 renders the coverage curves.
func RenderFigure8(curves []CoverageCurve) string {
	var b strings.Builder
	b.WriteString("Figure 8: Queries (% of set) with at least n experts\n")
	for _, c := range curves {
		rows := make([][]string, 0, c.MaxN+1)
		for n := 0; n <= c.MaxN; n++ {
			rows = append(rows, []string{
				fmt.Sprint(n),
				fmt.Sprintf("%.1f", c.Baseline[n]),
				fmt.Sprintf("%.1f", c.ESharp[n]),
			})
		}
		fmt.Fprintf(&b, "set %s:\n%s", c.Set,
			RenderTable([]string{"n", "Baseline %", "e# %"}, rows))
	}
	return b.String()
}

// RenderFigure9 renders the z-score sweep.
func RenderFigure9(points []ZSweepPoint) string {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.MinZ),
			fmt.Sprintf("%.2f", p.BaselineAvg),
			fmt.Sprintf("%.2f", p.ESharpAvg),
		})
	}
	return "Figure 9: Impact of the z-score on the number of experts (Top 250)\n" +
		RenderTable([]string{"Min z-score", "Baseline avg", "e# avg"}, rows)
}

// RenderFigure10 renders the size/quality trade-off.
func RenderFigure10(curves []ImpurityCurve) string {
	var b strings.Builder
	b.WriteString("Figure 10: Size vs. quality trade-off (impurity = share judged non-relevant)\n")
	for _, c := range curves {
		rows := make([][]string, 0, len(c.Baseline))
		for i := range c.Baseline {
			rows = append(rows, []string{
				fmt.Sprintf("%.2f", c.Baseline[i].MinZ),
				fmt.Sprintf("%.2f", c.Baseline[i].AvgExperts),
				fmt.Sprintf("%.3f", c.Baseline[i].Impurity),
				fmt.Sprintf("%.2f", c.ESharp[i].AvgExperts),
				fmt.Sprintf("%.3f", c.ESharp[i].Impurity),
			})
		}
		fmt.Fprintf(&b, "set %s:\n%s", c.Set, RenderTable(
			[]string{"Min z", "Base avg", "Base impurity", "e# avg", "e# impurity"}, rows))
	}
	return b.String()
}

// RenderExampleTable renders one of the Tables 2–7.
func RenderExampleTable(query string, rows []ExpertRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Algorithm,
			r.ScreenName,
			clip(r.Description, 48),
			fmt.Sprint(r.Verified),
			fmt.Sprint(r.Followers),
			fmt.Sprint(r.Relevant),
		})
	}
	return fmt.Sprintf("Selected experts for the query %q\n", query) +
		RenderTable([]string{"Algorithm", "Screen Name", "Description", "Verified", "Followers", "Relevant"}, out)
}

// RenderTable9 renders the resource-consumption table.
func RenderTable9(rows []Table9Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Step,
			fmt.Sprint(r.Workers),
			r.Runtime.Round(time.Microsecond).String(),
			querylog.FormatBytes(r.Read),
			querylog.FormatBytes(r.Write),
		})
	}
	return "Table 9: Resource consumption for one iteration\n" +
		RenderTable([]string{"Step", "Workers", "Runtime", "Read", "Write"}, out)
}

// RenderGroundTruth renders the oracle recall/precision extension.
func RenderGroundTruth(rows []GroundTruthRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Set,
			fmt.Sprintf("%.3f", r.BaselineRecall),
			fmt.Sprintf("%.3f", r.ESharpRecall),
			fmt.Sprintf("%.3f", r.BaselinePrecision),
			fmt.Sprintf("%.3f", r.ESharpPrecision),
		})
	}
	return "Ground truth (oracle) recall and precision — beyond the paper\n" +
		RenderTable([]string{"Data set", "Base recall", "e# recall", "Base precision", "e# precision"}, out)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
