package eval

import (
	"fmt"
	"time"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/expertise"
	"repro/internal/querylog"
	"repro/internal/world"
)

// Table8Row is one row of Table 8: the proportion of queries answered
// (at least one expert found) by each algorithm, with the relative
// improvement.
type Table8Row struct {
	Set         string
	Queries     int
	Baseline    float64
	ESharp      float64
	Improvement float64 // relative, e.g. 0.10 for +10%
}

// RunTable8 measures answered-rate per query set.
func RunTable8(d *core.Detector, sets []QuerySet) []Table8Row {
	rows := make([]Table8Row, 0, len(sets))
	for _, qs := range sets {
		var base, esharp int
		for _, q := range qs.Queries {
			if len(d.SearchBaseline(q)) > 0 {
				base++
			}
			if r, _ := d.Search(q); len(r) > 0 {
				esharp++
			}
		}
		n := float64(qs.Size())
		row := Table8Row{
			Set:      qs.Name,
			Queries:  qs.Size(),
			Baseline: float64(base) / n,
			ESharp:   float64(esharp) / n,
		}
		if base > 0 {
			row.Improvement = float64(esharp-base) / float64(base)
		}
		rows = append(rows, row)
	}
	return rows
}

// CoverageCurve is one panel of Figure 8: for n = 0..MaxN, the
// percentage of the set's queries for which each algorithm returned at
// least n experts.
type CoverageCurve struct {
	Set      string
	MaxN     int
	Baseline []float64 // index n -> % of queries with >= n experts
	ESharp   []float64
}

// RunFigure8 computes the coverage curves (the paper plots n up to 14).
func RunFigure8(d *core.Detector, sets []QuerySet, maxN int) []CoverageCurve {
	if maxN <= 0 {
		maxN = 14
	}
	out := make([]CoverageCurve, 0, len(sets))
	for _, qs := range sets {
		c := CoverageCurve{
			Set:      qs.Name,
			MaxN:     maxN,
			Baseline: make([]float64, maxN+1),
			ESharp:   make([]float64, maxN+1),
		}
		for _, q := range qs.Queries {
			nb := len(d.SearchBaseline(q))
			re, _ := d.Search(q)
			ne := len(re)
			for n := 0; n <= maxN; n++ {
				if nb >= n {
					c.Baseline[n]++
				}
				if ne >= n {
					c.ESharp[n]++
				}
			}
		}
		total := float64(qs.Size())
		for n := 0; n <= maxN; n++ {
			c.Baseline[n] = 100 * c.Baseline[n] / total
			c.ESharp[n] = 100 * c.ESharp[n] / total
		}
		out = append(out, c)
	}
	return out
}

// ZSweepPoint is one x-position of Figure 9: the average number of
// experts returned per query at a given minimum z-score.
type ZSweepPoint struct {
	MinZ        float64
	BaselineAvg float64
	ESharpAvg   float64
}

// RunFigure9 sweeps the z-score threshold on one query set (the paper
// uses Top 250). Detectors are rebuilt per threshold over the same
// corpus and collection.
func RunFigure9(p *core.Pipeline, qs QuerySet, thresholds []float64) []ZSweepPoint {
	out := make([]ZSweepPoint, 0, len(thresholds))
	for _, z := range thresholds {
		cfg := p.Cfg.Online
		cfg.Expertise.MinZScore = z
		det := core.NewDetector(p.Collection, p.Corpus, cfg)
		var sumB, sumE float64
		for _, q := range qs.Queries {
			sumB += float64(len(det.SearchBaseline(q)))
			re, _ := det.Search(q)
			sumE += float64(len(re))
		}
		n := float64(qs.Size())
		out = append(out, ZSweepPoint{MinZ: z, BaselineAvg: sumB / n, ESharpAvg: sumE / n})
	}
	return out
}

// ImpurityPoint is one point of Figure 10 for one algorithm: the
// size/quality trade-off at a given threshold.
type ImpurityPoint struct {
	MinZ       float64
	AvgExperts float64
	Impurity   float64
	// TruthImpurity is the oracle impurity (not available to the paper).
	TruthImpurity float64
}

// ImpurityCurve is one panel of Figure 10.
type ImpurityCurve struct {
	Set      string
	Baseline []ImpurityPoint
	ESharp   []ImpurityPoint
}

// RunFigure10 sweeps the threshold and, at every point, judges all
// returned experts with the simulated crowd, reproducing the size
// versus impurity trade-off. maxQueries caps per-set work (0 = all).
func RunFigure10(p *core.Pipeline, study *crowd.Study, sets []QuerySet,
	thresholds []float64, maxQueries int) []ImpurityCurve {

	out := make([]ImpurityCurve, 0, len(sets))
	for _, qs := range sets {
		queries, topics := qs.Queries, qs.Topics
		if maxQueries > 0 && len(queries) > maxQueries {
			queries, topics = queries[:maxQueries], topics[:maxQueries]
		}
		curve := ImpurityCurve{Set: qs.Name}
		for _, z := range thresholds {
			cfg := p.Cfg.Online
			cfg.Expertise.MinZScore = z
			det := core.NewDetector(p.Collection, p.Corpus, cfg)

			judgeAll := func(search func(string) []expertise.Expert) ImpurityPoint {
				var experts, bad, truthBad int
				for qi, q := range queries {
					results := search(q)
					experts += len(results)
					if len(results) == 0 {
						continue
					}
					users := make([]world.UserID, len(results))
					for i, e := range results {
						users[i] = e.User
					}
					for _, j := range study.JudgeCandidates(topics[qi], users) {
						if !j.Relevant {
							bad++
						}
						if !j.Truth {
							truthBad++
						}
					}
				}
				pt := ImpurityPoint{MinZ: z}
				if len(queries) > 0 {
					pt.AvgExperts = float64(experts) / float64(len(queries))
				}
				if experts > 0 {
					pt.Impurity = float64(bad) / float64(experts)
					pt.TruthImpurity = float64(truthBad) / float64(experts)
				}
				return pt
			}

			curve.Baseline = append(curve.Baseline, judgeAll(det.SearchBaseline))
			curve.ESharp = append(curve.ESharp, judgeAll(func(q string) []expertise.Expert {
				r, _ := det.Search(q)
				return r
			}))
		}
		out = append(out, curve)
	}
	return out
}

// Figure5 returns the convergence trace (communities per iteration).
func Figure5(res *community.Result) []community.IterStats {
	return res.Iterations
}

// Figure6 returns the community size histogram with the paper's bucket
// labels.
func Figure6(res *community.Result) (labels [4]string, counts [4]int) {
	labels = [4]string{"1", "2 to 10", "10 to 50", "More than 50"}
	counts = res.SizeHistogram()
	return labels, counts
}

// NeighborhoodReport is the Figure 7 reproduction: the community of a
// focus term plus its closest communities.
type NeighborhoodReport struct {
	Query     string
	Domain    []string
	Neighbors [][]string // up to k nearby domains' terms
	Weights   []float64  // proximity of each neighbor
}

// RunFigure7 renders the communities around a term (default: 49ers).
func RunFigure7(d *core.Detector, query string, k int) (NeighborhoodReport, error) {
	rep := NeighborhoodReport{Query: query}
	dom, ok := d.Collection().Lookup(query)
	if !ok {
		return rep, fmt.Errorf("eval: %q matches no domain", query)
	}
	rep.Domain = dom.Terms
	for _, link := range d.Collection().Closest(dom.ID, k) {
		rep.Neighbors = append(rep.Neighbors, d.Collection().Domain(link.ID).Terms)
		rep.Weights = append(rep.Weights, link.Weight)
	}
	return rep, nil
}

// ExpertRow is one listed expert for the Tables 2–7 reproduction.
type ExpertRow struct {
	Algorithm   string
	ScreenName  string
	Description string
	Verified    bool
	Followers   int
	Score       float64
	// Relevant is the ground-truth relevance (the paper's tables carry
	// no such column; we can afford one).
	Relevant bool
}

// RunExampleTable reproduces one of Tables 2–7: the top-k experts from
// each algorithm for a single query.
func RunExampleTable(d *core.Detector, w *world.World, query string, k int) []ExpertRow {
	topic, hasTopic := w.KeywordOwner(query)
	rows := []ExpertRow{}
	add := func(algo string, experts []expertise.Expert) {
		for i, e := range experts {
			if i == k {
				break
			}
			u := w.User(e.User)
			row := ExpertRow{
				Algorithm:   algo,
				ScreenName:  u.ScreenName,
				Description: u.Description,
				Verified:    u.Verified,
				Followers:   u.Followers,
				Score:       e.Score,
			}
			if hasTopic {
				row.Relevant = w.IsRelevantExpert(e.User, topic)
			}
			rows = append(rows, row)
		}
	}
	add("baseline", d.SearchBaseline(query))
	esharp, _ := d.Search(query)
	add("e#", esharp)
	return rows
}

// Table9Row is one resource-consumption row.
type Table9Row struct {
	Step    string
	Workers int
	Runtime time.Duration
	Read    int64
	Write   int64
}

// RunTable9 assembles the resource table from the pipeline's recorded
// stage stats plus measured online latencies averaged over sample
// queries.
func RunTable9(p *core.Pipeline, sampleQueries []string) []Table9Row {
	rows := make([]Table9Row, 0, len(p.Stages)+2)
	for _, s := range p.Stages {
		rows = append(rows, Table9Row{
			Step:    s.Stage,
			Workers: s.Workers,
			Runtime: s.Duration,
			Read:    s.BytesRead,
			Write:   s.BytesWritten,
		})
	}
	if len(sampleQueries) > 0 {
		var expand, detect time.Duration
		for _, q := range sampleQueries {
			_, trace := p.Detector.Search(q)
			expand += trace.ExpandDuration
			detect += trace.SearchDuration
		}
		n := time.Duration(len(sampleQueries))
		rows = append(rows,
			Table9Row{Step: "expansion", Workers: 1, Runtime: expand / n},
			Table9Row{Step: "detection", Workers: 1, Runtime: detect / n},
		)
	}
	return rows
}

// GroundTruthRow extends the paper: with a synthetic world the true
// expert sets are known, so real recall and precision are measurable.
type GroundTruthRow struct {
	Set               string
	BaselineRecall    float64
	ESharpRecall      float64
	BaselinePrecision float64
	ESharpPrecision   float64
}

// RunGroundTruth measures oracle recall (fraction of a topic's true
// experts retrieved) and precision (fraction of retrieved accounts that
// are relevant) per set — the measurement the paper's crowdsourcing
// study approximates.
func RunGroundTruth(d *core.Detector, w *world.World, sets []QuerySet) []GroundTruthRow {
	out := make([]GroundTruthRow, 0, len(sets))
	for _, qs := range sets {
		var row GroundTruthRow
		row.Set = qs.Name
		var bRecall, eRecall, bPrec, ePrec float64
		var nRecall, nbPrec, nePrec int
		evalOne := func(topic world.TopicID, results []expertise.Expert) (recall, precision float64, ok bool) {
			truth := w.ExpertsOn(topic)
			if len(truth) == 0 {
				return 0, 0, false
			}
			truthSet := map[world.UserID]bool{}
			for _, u := range truth {
				truthSet[u] = true
			}
			hit, rel := 0, 0
			for _, e := range results {
				if truthSet[e.User] {
					hit++
				}
				if w.IsRelevantExpert(e.User, topic) {
					rel++
				}
			}
			recall = float64(hit) / float64(len(truth))
			if len(results) > 0 {
				precision = float64(rel) / float64(len(results))
			}
			return recall, precision, true
		}
		for qi, q := range qs.Queries {
			topic := qs.Topics[qi]
			rb := d.SearchBaseline(q)
			re, _ := d.Search(q)
			if r, p, ok := evalOne(topic, rb); ok {
				bRecall += r
				nRecall++
				if len(rb) > 0 {
					bPrec += p
					nbPrec++
				}
			}
			if r, p, ok := evalOne(topic, re); ok {
				eRecall += r
				if len(re) > 0 {
					ePrec += p
					nePrec++
				}
			}
		}
		if nRecall > 0 {
			row.BaselineRecall = bRecall / float64(nRecall)
			row.ESharpRecall = eRecall / float64(nRecall)
		}
		if nbPrec > 0 {
			row.BaselinePrecision = bPrec / float64(nbPrec)
		}
		if nePrec > 0 {
			row.ESharpPrecision = ePrec / float64(nePrec)
		}
		out = append(out, row)
	}
	return out
}

// StageStatsString renders recorded pipeline stages compactly.
func StageStatsString(stages []querylog.Stats) string {
	s := ""
	for _, st := range stages {
		s += st.String() + "\n"
	}
	return s
}
