package relops

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func mkTable(t *testing.T) *Table {
	t.Helper()
	tbl := MustNew(
		Column{"id", Int64},
		Column{"score", Float64},
		Column{"name", String},
	)
	tbl.MustAppendRow(1, 0.5, "alpha")
	tbl.MustAppendRow(2, 1.5, "beta")
	tbl.MustAppendRow(3, -0.5, "gamma")
	tbl.MustAppendRow(2, 2.5, "delta")
	return tbl
}

func TestNewRejectsBadSchemas(t *testing.T) {
	if _, err := New(Column{"a", Int64}, Column{"a", String}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := New(Column{"", Int64}); err == nil {
		t.Error("empty column name accepted")
	}
}

func TestAppendRowTypeChecks(t *testing.T) {
	tbl := MustNew(Column{"id", Int64}, Column{"name", String})
	if err := tbl.AppendRow(1, "x"); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
	if err := tbl.AppendRow("bad", "x"); err == nil {
		t.Error("wrong type accepted for int column")
	}
	if err := tbl.AppendRow(1); err == nil {
		t.Error("short row accepted")
	}
	if err := tbl.AppendRow(1, 2); err == nil {
		t.Error("int accepted for string column")
	}
	// int and int32 widen.
	if err := tbl.AppendRow(int32(7), "y"); err != nil {
		t.Errorf("int32 not widened: %v", err)
	}
}

func TestColumnAccessors(t *testing.T) {
	tbl := mkTable(t)
	ids, err := tbl.Ints("id")
	if err != nil || len(ids) != 4 || ids[0] != 1 {
		t.Fatalf("Ints: %v %v", ids, err)
	}
	if _, err := tbl.Ints("score"); err == nil {
		t.Error("Ints on float column succeeded")
	}
	if _, err := tbl.Floats("nonexistent"); err == nil {
		t.Error("unknown column succeeded")
	}
	names, err := tbl.Strings("name")
	if err != nil || names[3] != "delta" {
		t.Fatalf("Strings: %v %v", names, err)
	}
}

func TestSelect(t *testing.T) {
	tbl := mkTable(t)
	out := Select(tbl, func(r Row) bool { return r.Int("id") == 2 })
	if out.NumRows() != 2 {
		t.Fatalf("got %d rows, want 2", out.NumRows())
	}
	names, _ := out.Strings("name")
	if names[0] != "beta" || names[1] != "delta" {
		t.Errorf("order not preserved: %v", names)
	}
}

func TestProjectSharesData(t *testing.T) {
	tbl := mkTable(t)
	out, err := Project(tbl, "name", "id")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumCols() != 2 || out.Schema()[0].Name != "name" {
		t.Fatalf("bad projection schema: %v", out.Schema())
	}
	if out.NumRows() != tbl.NumRows() {
		t.Fatal("row count changed")
	}
	if _, err := Project(tbl, "nope"); err == nil {
		t.Error("unknown column projected")
	}
	if _, err := Project(tbl, "id", "id"); err == nil {
		t.Error("duplicate projection accepted")
	}
}

func TestRename(t *testing.T) {
	tbl := mkTable(t)
	out, err := Rename(tbl, "id", "vertex")
	if err != nil {
		t.Fatal(err)
	}
	if !out.HasColumn("vertex") || out.HasColumn("id") {
		t.Error("rename did not take")
	}
	// Original untouched.
	if !tbl.HasColumn("id") {
		t.Error("rename mutated source")
	}
	if _, err := Rename(tbl, "id", "name"); err == nil {
		t.Error("rename onto existing column accepted")
	}
	if _, err := Rename(tbl, "zzz", "w"); err == nil {
		t.Error("rename of unknown column accepted")
	}
}

func TestUnion(t *testing.T) {
	a := mkTable(t)
	b := mkTable(t)
	out, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 8 {
		t.Fatalf("union rows = %d, want 8", out.NumRows())
	}
	c := MustNew(Column{"id", Int64})
	if _, err := Union(a, c); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestDistinct(t *testing.T) {
	tbl := MustNew(Column{"a", Int64}, Column{"b", String})
	tbl.MustAppendRow(1, "x")
	tbl.MustAppendRow(1, "x")
	tbl.MustAppendRow(1, "y")
	tbl.MustAppendRow(2, "x")
	out := Distinct(tbl)
	if out.NumRows() != 3 {
		t.Fatalf("distinct rows = %d, want 3", out.NumRows())
	}
}

func TestSortOrdersNegativesAndFloats(t *testing.T) {
	tbl := MustNew(Column{"i", Int64}, Column{"f", Float64})
	tbl.MustAppendRow(5, 1.0)
	tbl.MustAppendRow(-3, -2.5)
	tbl.MustAppendRow(0, 0.0)
	tbl.MustAppendRow(-3, -7.25)
	out, err := Sort(tbl, "i", "f")
	if err != nil {
		t.Fatal(err)
	}
	is, _ := out.Ints("i")
	fs, _ := out.Floats("f")
	wantI := []int64{-3, -3, 0, 5}
	wantF := []float64{-7.25, -2.5, 0.0, 1.0}
	for k := range wantI {
		if is[k] != wantI[k] || fs[k] != wantF[k] {
			t.Fatalf("sort order wrong: %v %v", is, fs)
		}
	}
}

func TestKeyBytesOrderMatchesValueOrder(t *testing.T) {
	prop := func(a, b int64) bool {
		tbl := MustNew(Column{"v", Int64})
		tbl.MustAppendRow(a)
		tbl.MustAppendRow(b)
		ka := tbl.encodeKey(nil, []int{0}, 0)
		kb := tbl.encodeKey(nil, []int{0}, 1)
		return (a < b) == (bytes.Compare(ka, kb) < 0) &&
			(a == b) == bytes.Equal(ka, kb)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	propF := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		tbl := MustNew(Column{"v", Float64})
		tbl.MustAppendRow(a)
		tbl.MustAppendRow(b)
		ka := tbl.encodeKey(nil, []int{0}, 0)
		kb := tbl.encodeKey(nil, []int{0}, 1)
		return (a < b) == (bytes.Compare(ka, kb) < 0)
	}
	if err := quick.Check(propF, nil); err != nil {
		t.Fatal(err)
	}
	propS := func(a, b string) bool {
		tbl := MustNew(Column{"v", String})
		tbl.MustAppendRow(a)
		tbl.MustAppendRow(b)
		ka := tbl.encodeKey(nil, []int{0}, 0)
		kb := tbl.encodeKey(nil, []int{0}, 1)
		return (a < b) == (bytes.Compare(ka, kb) < 0)
	}
	if err := quick.Check(propS, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringKeyNotPrefixAmbiguous(t *testing.T) {
	// Composite keys ("a", "b") and ("ab", "") must encode differently.
	tbl := MustNew(Column{"x", String}, Column{"y", String})
	tbl.MustAppendRow("a", "b")
	tbl.MustAppendRow("ab", "")
	k0 := tbl.encodeKey(nil, []int{0, 1}, 0)
	k1 := tbl.encodeKey(nil, []int{0, 1}, 1)
	if bytes.Equal(k0, k1) {
		t.Fatal("composite string keys collide")
	}
	// Embedded NUL handled.
	tbl2 := MustNew(Column{"x", String})
	tbl2.MustAppendRow("a\x00b")
	tbl2.MustAppendRow("a")
	if bytes.Equal(tbl2.encodeKey(nil, []int{0}, 0), tbl2.encodeKey(nil, []int{0}, 1)) {
		t.Fatal("NUL-containing keys collide")
	}
}

func joinInputs() (*Table, *Table) {
	l := MustNew(Column{"src", Int64}, Column{"w", Float64})
	l.MustAppendRow(1, 0.1)
	l.MustAppendRow(2, 0.2)
	l.MustAppendRow(2, 0.3)
	l.MustAppendRow(3, 0.4)
	r := MustNew(Column{"comm", Int64}, Column{"member", Int64})
	r.MustAppendRow(10, 1)
	r.MustAppendRow(10, 2)
	r.MustAppendRow(20, 2)
	r.MustAppendRow(30, 9)
	return l, r
}

func TestJoinInner(t *testing.T) {
	l, r := joinInputs()
	out, err := Join(l, r, "src", "member", JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// src=1 matches comm=10; src=2 (two rows) matches comm=10 and 20
	// (so 2*2=4 rows); src=3 matches nothing. Total 5.
	if out.NumRows() != 5 {
		t.Fatalf("join rows = %d, want 5", out.NumRows())
	}
	if !out.HasColumn("comm") || out.HasColumn("member") {
		t.Errorf("join schema wrong: %v", out.Schema())
	}
}

func TestJoinStrategiesAgree(t *testing.T) {
	l, r := joinInputs()
	a, err := Join(l, r, "src", "member", JoinOptions{Strategy: PartitionedJoin, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Join(l, r, "src", "member", JoinOptions{Strategy: ReplicatedJoin, Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, a, b)
}

func TestJoinWorkerInvariance(t *testing.T) {
	l, r := joinInputs()
	var prev *Table
	for _, w := range []int{1, 2, 7} {
		out, err := Join(l, r, "src", "member", JoinOptions{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			assertTablesEqual(t, prev, out)
		}
		prev = out
	}
}

func TestJoinAgainstNaive(t *testing.T) {
	// Property: hash join equals nested-loop join (as multisets; we
	// canonicalize by sorting).
	prop := func(seed uint64) bool {
		s := seed
		next := func(n int) int {
			s = s*6364136223846793005 + 1442695040888963407
			return int(s>>33) % n
		}
		l := MustNew(Column{"k", Int64}, Column{"lv", Int64})
		r := MustNew(Column{"rk", Int64}, Column{"rv", Int64})
		for i := 0; i < 30; i++ {
			l.MustAppendRow(next(8), i)
		}
		for i := 0; i < 25; i++ {
			r.MustAppendRow(next(8), 100+i)
		}
		got, err := Join(l, r, "k", "rk", JoinOptions{Workers: 3})
		if err != nil {
			return false
		}
		want := MustNew(Column{"k", Int64}, Column{"lv", Int64}, Column{"rv", Int64})
		lk, _ := l.Ints("k")
		lv, _ := l.Ints("lv")
		rk, _ := r.Ints("rk")
		rv, _ := r.Ints("rv")
		for i := range lk {
			for j := range rk {
				if lk[i] == rk[j] {
					want.MustAppendRow(lk[i], lv[i], rv[j])
				}
			}
		}
		gs, err := Sort(got, "k", "lv", "rv")
		if err != nil {
			return false
		}
		ws, err := Sort(want, "k", "lv", "rv")
		if err != nil {
			return false
		}
		return tablesEqual(gs, ws)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinErrors(t *testing.T) {
	l, r := joinInputs()
	if _, err := Join(l, r, "nope", "member", JoinOptions{}); err == nil {
		t.Error("unknown left key accepted")
	}
	if _, err := Join(l, r, "src", "nope", JoinOptions{}); err == nil {
		t.Error("unknown right key accepted")
	}
	if _, err := Join(l, r, "src", "comm", JoinOptions{}); err == nil {
		// comm is int64 too, so force a type mismatch differently.
		t.Log("same-type key join fine")
	}
	mixed := MustNew(Column{"k", String})
	if _, err := Join(l, mixed, "src", "k", JoinOptions{}); err == nil {
		t.Error("type-mismatched join accepted")
	}
	collide := MustNew(Column{"key2", Int64}, Column{"w", Float64})
	if _, err := Join(l, collide, "src", "key2", JoinOptions{}); err == nil {
		t.Error("column collision accepted")
	}
}

func TestAntiJoin(t *testing.T) {
	l, r := joinInputs()
	out, err := AntiJoin(l, r, "src", "member")
	if err != nil {
		t.Fatal(err)
	}
	// Only src=3 has no match.
	if out.NumRows() != 1 {
		t.Fatalf("antijoin rows = %d, want 1", out.NumRows())
	}
	srcs, _ := out.Ints("src")
	if srcs[0] != 3 {
		t.Errorf("antijoin kept %d", srcs[0])
	}
}

func TestGroupByCountSumMaxMin(t *testing.T) {
	tbl := MustNew(Column{"g", String}, Column{"v", Int64})
	tbl.MustAppendRow("a", 3)
	tbl.MustAppendRow("b", 10)
	tbl.MustAppendRow("a", 5)
	tbl.MustAppendRow("b", -2)
	tbl.MustAppendRow("a", 4)
	out, err := GroupBy(tbl, []string{"g"}, []Agg{
		{Kind: Count, As: "n"},
		{Kind: Sum, Col: "v", As: "total"},
		{Kind: Max, Col: "v", As: "hi"},
		{Kind: Min, Col: "v", As: "lo"},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("groups = %d, want 2", out.NumRows())
	}
	gs, _ := out.Strings("g")
	ns, _ := out.Ints("n")
	totals, _ := out.Ints("total")
	his, _ := out.Ints("hi")
	los, _ := out.Ints("lo")
	if gs[0] != "a" || ns[0] != 3 || totals[0] != 12 || his[0] != 5 || los[0] != 3 {
		t.Errorf("group a wrong: n=%d total=%d hi=%d lo=%d", ns[0], totals[0], his[0], los[0])
	}
	if gs[1] != "b" || ns[1] != 2 || totals[1] != 8 || his[1] != 10 || los[1] != -2 {
		t.Errorf("group b wrong: n=%d total=%d hi=%d lo=%d", ns[1], totals[1], his[1], los[1])
	}
}

func TestGroupByArgMax(t *testing.T) {
	tbl := MustNew(Column{"g", Int64}, Column{"dist", Float64}, Column{"who", Int64})
	tbl.MustAppendRow(1, 0.5, 100)
	tbl.MustAppendRow(1, 0.9, 200)
	tbl.MustAppendRow(1, 0.9, 150) // tie on dist: smaller who wins
	tbl.MustAppendRow(2, 0.1, 300)
	out, err := GroupBy(tbl, []string{"g"}, []Agg{
		{Kind: ArgMax, Col: "dist", Arg: "who", As: "leader"},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	leaders, _ := out.Ints("leader")
	if leaders[0] != 150 {
		t.Errorf("group 1 leader = %d, want 150 (tie-break to smaller)", leaders[0])
	}
	if leaders[1] != 300 {
		t.Errorf("group 2 leader = %d, want 300", leaders[1])
	}
}

func TestGroupByWorkerInvariance(t *testing.T) {
	tbl := MustNew(Column{"g", Int64}, Column{"v", Float64}, Column{"a", Int64})
	s := uint64(5)
	for i := 0; i < 500; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		// Multiples of 1/8 are exactly representable, so float sums are
		// associative and the comparison below can be exact.
		tbl.MustAppendRow(int64(s%17), float64(s%1000)/8, int64(s%97))
	}
	var prev *Table
	for _, w := range []int{1, 3, 8} {
		out, err := GroupBy(tbl, []string{"g"}, []Agg{
			{Kind: Count, As: "n"},
			{Kind: Sum, Col: "v", As: "sum"},
			{Kind: ArgMax, Col: "v", Arg: "a", As: "am"},
		}, w)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			assertTablesEqual(t, prev, out)
		}
		prev = out
	}
}

func TestGroupByMultiKey(t *testing.T) {
	tbl := MustNew(Column{"a", Int64}, Column{"b", Int64}, Column{"v", Int64})
	tbl.MustAppendRow(1, 1, 10)
	tbl.MustAppendRow(1, 2, 20)
	tbl.MustAppendRow(1, 1, 30)
	out, err := GroupBy(tbl, []string{"a", "b"}, []Agg{{Kind: Sum, Col: "v", As: "s"}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("groups = %d, want 2", out.NumRows())
	}
	ss, _ := out.Ints("s")
	if ss[0] != 40 || ss[1] != 20 {
		t.Errorf("sums = %v", ss)
	}
}

func TestGroupByErrors(t *testing.T) {
	tbl := mkTable(t)
	if _, err := GroupBy(tbl, nil, []Agg{{Kind: Count, As: "n"}}, 1); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := GroupBy(tbl, []string{"id"}, []Agg{{Kind: Sum, Col: "name", As: "s"}}, 1); err == nil {
		t.Error("sum over string accepted")
	}
	if _, err := GroupBy(tbl, []string{"id"}, []Agg{{Kind: Count, As: ""}}, 1); err == nil {
		t.Error("empty output name accepted")
	}
	if _, err := GroupBy(tbl, []string{"id"}, []Agg{{Kind: Count, As: "id"}}, 1); err == nil {
		t.Error("output collision accepted")
	}
	if _, err := GroupBy(tbl, []string{"zz"}, []Agg{{Kind: Count, As: "n"}}, 1); err == nil {
		t.Error("unknown key accepted")
	}
}

// assertTablesEqual fails the test unless both tables are identical in
// schema and content (including row order).
func assertTablesEqual(t *testing.T, a, b *Table) {
	t.Helper()
	if !tablesEqual(a, b) {
		t.Fatalf("tables differ:\nA schema=%v rows=%d\nB schema=%v rows=%d",
			a.Schema(), a.NumRows(), b.Schema(), b.NumRows())
	}
}

func tablesEqual(a, b *Table) bool {
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		return false
	}
	as, bs := a.Schema(), b.Schema()
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	for r := 0; r < a.rows; r++ {
		for c := range a.cols {
			if a.value(c, r) != b.value(c, r) {
				return false
			}
		}
	}
	return true
}

func BenchmarkJoinPartitioned(b *testing.B) {
	l := MustNew(Column{"k", Int64}, Column{"v", Int64})
	r := MustNew(Column{"rk", Int64}, Column{"rv", Int64})
	for i := 0; i < 10000; i++ {
		l.MustAppendRow(i%997, i)
		r.MustAppendRow(i%997, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Join(l, r, "k", "rk", JoinOptions{Strategy: PartitionedJoin, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinReplicated(b *testing.B) {
	l := MustNew(Column{"k", Int64}, Column{"v", Int64})
	r := MustNew(Column{"rk", Int64}, Column{"rv", Int64})
	for i := 0; i < 10000; i++ {
		l.MustAppendRow(i%997, i)
		r.MustAppendRow(i%997, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Join(l, r, "k", "rk", JoinOptions{Strategy: ReplicatedJoin, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupBy(b *testing.B) {
	tbl := MustNew(Column{"g", Int64}, Column{"v", Float64})
	for i := 0; i < 50000; i++ {
		tbl.MustAppendRow(i%1000, float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GroupBy(tbl, []string{"g"}, []Agg{{Kind: Sum, Col: "v", As: "s"}}, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExtend(t *testing.T) {
	tbl := MustNew(Column{"a", Int64}, Column{"b", Int64})
	tbl.MustAppendRow(3, 4)
	tbl.MustAppendRow(10, 2)
	out, err := Extend(tbl, "sum", Int64, func(r Row) any { return r.Int("a") + r.Int("b") })
	if err != nil {
		t.Fatal(err)
	}
	sums, _ := out.Ints("sum")
	if sums[0] != 7 || sums[1] != 12 {
		t.Errorf("sums = %v", sums)
	}
	// Source table untouched.
	if tbl.NumCols() != 2 {
		t.Error("Extend mutated source")
	}
	if _, err := Extend(tbl, "a", Int64, func(r Row) any { return int64(0) }); err == nil {
		t.Error("duplicate extend column accepted")
	}
	if _, err := Extend(tbl, "bad", Int64, func(r Row) any { return "str" }); err == nil {
		t.Error("type-mismatched extend accepted")
	}
}

func TestExtendFloatAndString(t *testing.T) {
	tbl := MustNew(Column{"a", Int64})
	tbl.MustAppendRow(2)
	out, err := Extend(tbl, "half", Float64, func(r Row) any { return float64(r.Int("a")) / 2 })
	if err != nil {
		t.Fatal(err)
	}
	hs, _ := out.Floats("half")
	if hs[0] != 1.0 {
		t.Errorf("half = %v", hs)
	}
	out2, err := Extend(out, "label", String, func(r Row) any { return "v" })
	if err != nil {
		t.Fatal(err)
	}
	ls, _ := out2.Strings("label")
	if ls[0] != "v" {
		t.Errorf("label = %v", ls)
	}
}
