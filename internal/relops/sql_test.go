package relops

import (
	"strings"
	"testing"
)

func sqlCatalog() Catalog {
	users := MustNew(Column{"id", Int64}, Column{"name", String}, Column{"score", Float64})
	users.MustAppendRow(1, "ann", 2.5)
	users.MustAppendRow(2, "bob", 1.0)
	users.MustAppendRow(3, "cat", 4.0)
	users.MustAppendRow(4, "dan", 1.5)

	posts := MustNew(Column{"author", Int64}, Column{"likes", Int64})
	posts.MustAppendRow(1, 10)
	posts.MustAppendRow(1, 20)
	posts.MustAppendRow(2, 5)
	posts.MustAppendRow(3, 7)
	posts.MustAppendRow(3, 0)
	posts.MustAppendRow(3, 3)
	return Catalog{"users": users, "posts": posts}
}

func TestSQLSelectProject(t *testing.T) {
	out, err := Exec(sqlCatalog(), "SELECT name, id FROM users", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 4 || out.NumCols() != 2 {
		t.Fatalf("got %dx%d", out.NumRows(), out.NumCols())
	}
	if out.Schema()[0].Name != "name" {
		t.Errorf("column order not preserved: %v", out.Schema())
	}
}

func TestSQLWhere(t *testing.T) {
	out, err := Exec(sqlCatalog(), "SELECT id FROM users WHERE score > 1.2 AND id < 4", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := out.Ints("id")
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("ids = %v, want [1 3]", ids)
	}
}

func TestSQLWhereString(t *testing.T) {
	out, err := Exec(sqlCatalog(), "SELECT id FROM users WHERE name = 'bob'", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := out.Ints("id")
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestSQLComputedColumn(t *testing.T) {
	out, err := Exec(sqlCatalog(), "SELECT id, score * 2 AS double FROM users", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := out.Floats("double")
	if err != nil {
		t.Fatal(err)
	}
	if ds[0] != 5.0 {
		t.Errorf("double[0] = %v", ds[0])
	}
	// Integer arithmetic stays integer except division.
	out2, err := Exec(sqlCatalog(), "SELECT id + 10 AS shifted FROM users", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := out2.Ints("shifted"); err != nil {
		t.Errorf("int arithmetic lost type: %v", err)
	}
	out3, err := Exec(sqlCatalog(), "SELECT id / 2 AS half FROM users", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hs, err := out3.Floats("half")
	if err != nil {
		t.Fatal(err)
	}
	if hs[0] != 0.5 {
		t.Errorf("division not float: %v", hs[0])
	}
}

func TestSQLJoin(t *testing.T) {
	out, err := Exec(sqlCatalog(),
		"SELECT name, likes FROM posts INNER JOIN users ON author = id", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 6 {
		t.Fatalf("join rows = %d, want 6", out.NumRows())
	}
}

func TestSQLGroupByAggregates(t *testing.T) {
	out, err := Exec(sqlCatalog(),
		"SELECT author, COUNT(*) AS n, SUM(likes) AS total, MAX(likes) AS best FROM posts GROUP BY author",
		ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Fatalf("groups = %d", out.NumRows())
	}
	authors, _ := out.Ints("author")
	ns, _ := out.Ints("n")
	totals, _ := out.Ints("total")
	bests, _ := out.Ints("best")
	if authors[0] != 1 || ns[0] != 2 || totals[0] != 30 || bests[0] != 20 {
		t.Errorf("group 1 wrong: %v %v %v %v", authors[0], ns[0], totals[0], bests[0])
	}
	if authors[2] != 3 || ns[2] != 3 || totals[2] != 10 || bests[2] != 7 {
		t.Errorf("group 3 wrong")
	}
}

func TestSQLScalarFunction(t *testing.T) {
	opts := ExecOptions{Funcs: map[string]func(...float64) float64{
		"boost": func(args ...float64) float64 { return args[0]*10 + args[1] },
	}}
	out, err := Exec(sqlCatalog(), "SELECT boost(id, score) AS b FROM users WHERE boost(id, score) > 20", opts)
	if err != nil {
		t.Fatal(err)
	}
	bs, _ := out.Floats("b")
	if len(bs) != 3 { // ids 2,3,4 boost to 21, 34, 41.5
		t.Fatalf("rows = %d, want 3 (%v)", len(bs), bs)
	}
}

// TestSQLFigure4 runs the paper's Figure 4 community detection queries
// as literal SQL text: the neighbors query (join the graph with the
// community relation on both endpoints, filter by positive modularity
// gain) and the partitions query (argmax per community).
func TestSQLFigure4(t *testing.T) {
	// Vertex-level graph: two triangles {0,1,2} and {3,4,5} linked by a
	// weak 2-3 edge. Communities: every vertex its own.
	graph := MustNew(Column{"query1", Int64}, Column{"query2", Int64}, Column{"distance", Float64})
	for _, e := range [][3]float64{
		{0, 1, 10}, {0, 2, 10}, {1, 2, 10},
		{3, 4, 10}, {3, 5, 10}, {4, 5, 10},
		{2, 3, 1},
	} {
		graph.MustAppendRow(int64(e[0]), int64(e[1]), e[2])
		graph.MustAppendRow(int64(e[1]), int64(e[0]), e[2]) // symmetric
	}
	comm1 := MustNew(Column{"q1", Int64}, Column{"c1", Int64})
	comm2 := MustNew(Column{"q2", Int64}, Column{"c2", Int64})
	for v := 0; v < 6; v++ {
		comm1.MustAppendRow(v, v)
		comm2.MustAppendRow(v, v)
	}
	cat := Catalog{"graph": graph, "comm1": comm1, "comm2": comm2}

	// Degrees: each triangle vertex has 20 (or 21 for the bridge ends);
	// total edge mass 2*61. ModulGain(a,b) approximates ΔMod with the
	// vertex degrees captured in the closure.
	deg := map[int]float64{0: 20, 1: 20, 2: 21, 3: 21, 4: 20, 5: 20}
	mG := 61.0
	opts := ExecOptions{Funcs: map[string]func(...float64) float64{
		// ΔMod = m₁↔₂ − D₁·D₂/(2·m_G): positive for the strong triangle
		// edges (10 − ~3.4), negative for the weak bridge (1 − ~3.6).
		"modulgain": func(args ...float64) float64 {
			d1, d2 := deg[int(args[0])], deg[int(args[1])]
			return args[2] - d1*d2/(2*mG)
		},
	}}

	neighbors, err := Exec(cat, `
		SELECT c1 AS query1, c2 AS query2, distance
		FROM graph
		INNER JOIN comm1 ON query1 = q1
		INNER JOIN comm2 ON query2 = q2
		WHERE modulgain(c1, c2, distance) > 0 AND c1 <> c2`, opts)
	if err != nil {
		t.Fatal(err)
	}
	if neighbors.NumRows() == 0 {
		t.Fatal("no neighbor pairs")
	}

	cat["neighbors"] = neighbors
	partitions, err := Exec(cat, `
		SELECT query2, ARGMAX(distance, query1) AS leader
		FROM neighbors
		GROUP BY query2`, opts)
	if err != nil {
		t.Fatal(err)
	}
	if partitions.NumRows() != 6 {
		t.Fatalf("partitions rows = %d, want 6", partitions.NumRows())
	}
	// Every vertex's chosen leader must be a triangle-mate (distance 10
	// beats the weak bridge's 1), with ties broken toward the smaller id.
	q2s, _ := partitions.Ints("query2")
	leaders, _ := partitions.Ints("leader")
	sameTriangle := func(a, b int64) bool { return (a < 3) == (b < 3) }
	for i := range q2s {
		if !sameTriangle(q2s[i], leaders[i]) {
			t.Errorf("vertex %d chose cross-triangle leader %d", q2s[i], leaders[i])
		}
		if q2s[i] == leaders[i] {
			t.Errorf("vertex %d chose itself", q2s[i])
		}
	}
}

func TestSQLErrors(t *testing.T) {
	cat := sqlCatalog()
	cases := []string{
		"SELECT FROM users",
		"SELECT id FROM nope",
		"SELECT zzz FROM users",
		"SELECT id FROM users WHERE name > 5",
		"SELECT SUM(likes) AS s FROM posts",                        // aggregate without GROUP BY
		"SELECT likes, SUM(likes) AS s FROM posts GROUP BY author", // non-key bare column
		"SELECT SUM(likes) FROM posts GROUP BY author",             // aggregate without alias
		"SELECT id FROM users WHERE unknownfn(id) > 0",
		"SELECT 'oops",
		"SELECT id FROM users INNER JOIN posts ON missing = author",
		"SELECT id FROM users trailing garbage",
	}
	for _, q := range cases {
		if _, err := Exec(cat, q, ExecOptions{}); err == nil {
			t.Errorf("query %q succeeded, want error", q)
		}
	}
}

func TestSQLCaseInsensitiveKeywords(t *testing.T) {
	out, err := Exec(sqlCatalog(), "select ID from USERS where SCORE >= 2.5 group by id", ExecOptions{})
	if err != nil {
		// GROUP BY with no aggregates: plain grouping of keys.
		t.Fatal(err)
	}
	if out.NumRows() == 0 {
		t.Fatal("no rows")
	}
}

func TestSQLWhereMatchesSelect(t *testing.T) {
	// Equivalence: SQL WHERE produces the same rows as a hand-written
	// Select over the same predicate.
	cat := sqlCatalog()
	out, err := Exec(cat, "SELECT id, score FROM users WHERE score >= 1.5", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := Select(cat["users"], func(r Row) bool { return r.Float("score") >= 1.5 })
	if out.NumRows() != want.NumRows() {
		t.Fatalf("SQL %d rows, Select %d rows", out.NumRows(), want.NumRows())
	}
}

func TestSQLLexer(t *testing.T) {
	toks, err := lexSQL("SELECT a, b FROM t WHERE x <= 3.5 AND y <> 'z it'")
	if err != nil {
		t.Fatal(err)
	}
	joined := make([]string, len(toks))
	for i, tk := range toks {
		joined[i] = tk.text
	}
	s := strings.Join(joined, "|")
	for _, want := range []string{"SELECT", "<=", "3.5", "<>", "z it"} {
		if !strings.Contains(s, want) {
			t.Errorf("token stream %q missing %q", s, want)
		}
	}
	if _, err := lexSQL("SELECT ~"); err == nil {
		t.Error("bad byte accepted")
	}
}

func BenchmarkSQLJoinGroupBy(b *testing.B) {
	posts := MustNew(Column{"author", Int64}, Column{"likes", Int64})
	users := MustNew(Column{"id", Int64}, Column{"region", Int64})
	for i := 0; i < 5000; i++ {
		posts.MustAppendRow(i%500, i%37)
		if i < 500 {
			users.MustAppendRow(i, i%13)
		}
	}
	cat := Catalog{"posts": posts, "users": users}
	q := "SELECT region, SUM(likes) AS total FROM posts INNER JOIN users ON author = id GROUP BY region"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(cat, q, ExecOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
