// Package relops is a miniature in-process relational engine: typed
// columnar tables and the parallel operators needed to execute the
// paper's pseudo-SQL community detection (Figure 4) exactly as written —
// selections, projections, partitioned and replicated hash joins, and
// grouped aggregation including the argmax aggregate.
//
// It stands in for the SCOPE/Hive cluster of the paper's production
// deployment: every operator is expressed as independent partition tasks
// executed by a goroutine pool, so the physical plan mirrors the
// map-reduce shapes discussed in Section 4.2.3. All operators produce
// deterministic output (stable row order independent of scheduling),
// which the tests rely on to compare the relational backend bit-for-bit
// with the direct in-memory implementation.
package relops

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Type enumerates column types.
type Type int

const (
	// Int64 is a 64-bit signed integer column.
	Int64 Type = iota
	// Float64 is a double-precision column.
	Float64
	// String is a UTF-8 string column.
	String
)

// String names the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Column is one schema entry.
type Column struct {
	Name string
	Type Type
}

// Table is a columnar relation. Columns are stored as typed slices; rows
// are addressed by index. A Table is not safe for concurrent mutation,
// but read-only access from multiple goroutines is fine.
type Table struct {
	cols   []Column
	idx    map[string]int
	ints   [][]int64
	floats [][]float64
	strs   [][]string
	rows   int
}

// New creates an empty table with the given schema. Column names must be
// unique and non-empty.
func New(cols ...Column) (*Table, error) {
	t := &Table{
		cols:   append([]Column(nil), cols...),
		idx:    make(map[string]int, len(cols)),
		ints:   make([][]int64, len(cols)),
		floats: make([][]float64, len(cols)),
		strs:   make([][]string, len(cols)),
	}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relops: column %d has empty name", i)
		}
		if _, dup := t.idx[c.Name]; dup {
			return nil, fmt.Errorf("relops: duplicate column %q", c.Name)
		}
		t.idx[c.Name] = i
	}
	return t, nil
}

// MustNew is New panicking on error; for statically correct schemas.
func MustNew(cols ...Column) *Table {
	t, err := New(cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.rows }

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// Schema returns a copy of the column definitions.
func (t *Table) Schema() []Column { return append([]Column(nil), t.cols...) }

// HasColumn reports whether the named column exists.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.idx[name]
	return ok
}

// colPos returns the position of a column or an error.
func (t *Table) colPos(name string) (int, error) {
	i, ok := t.idx[name]
	if !ok {
		return 0, fmt.Errorf("relops: unknown column %q", name)
	}
	return i, nil
}

// AppendRow adds one row. Values must match the schema; int and int32
// are widened to int64 for convenience.
func (t *Table) AppendRow(vals ...any) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("relops: AppendRow got %d values for %d columns", len(vals), len(t.cols))
	}
	for i, v := range vals {
		switch t.cols[i].Type {
		case Int64:
			switch x := v.(type) {
			case int64:
				t.ints[i] = append(t.ints[i], x)
			case int:
				t.ints[i] = append(t.ints[i], int64(x))
			case int32:
				t.ints[i] = append(t.ints[i], int64(x))
			default:
				return fmt.Errorf("relops: column %q wants int64, got %T", t.cols[i].Name, v)
			}
		case Float64:
			x, ok := v.(float64)
			if !ok {
				return fmt.Errorf("relops: column %q wants float64, got %T", t.cols[i].Name, v)
			}
			t.floats[i] = append(t.floats[i], x)
		case String:
			x, ok := v.(string)
			if !ok {
				return fmt.Errorf("relops: column %q wants string, got %T", t.cols[i].Name, v)
			}
			t.strs[i] = append(t.strs[i], x)
		}
	}
	t.rows++
	return nil
}

// MustAppendRow is AppendRow panicking on error.
func (t *Table) MustAppendRow(vals ...any) {
	if err := t.AppendRow(vals...); err != nil {
		panic(err)
	}
}

// Ints returns the backing slice of an Int64 column (do not mutate).
func (t *Table) Ints(name string) ([]int64, error) {
	i, err := t.colPos(name)
	if err != nil {
		return nil, err
	}
	if t.cols[i].Type != Int64 {
		return nil, fmt.Errorf("relops: column %q is %s, not int64", name, t.cols[i].Type)
	}
	return t.ints[i], nil
}

// Floats returns the backing slice of a Float64 column (do not mutate).
func (t *Table) Floats(name string) ([]float64, error) {
	i, err := t.colPos(name)
	if err != nil {
		return nil, err
	}
	if t.cols[i].Type != Float64 {
		return nil, fmt.Errorf("relops: column %q is %s, not float64", name, t.cols[i].Type)
	}
	return t.floats[i], nil
}

// Strings returns the backing slice of a String column (do not mutate).
func (t *Table) Strings(name string) ([]string, error) {
	i, err := t.colPos(name)
	if err != nil {
		return nil, err
	}
	if t.cols[i].Type != String {
		return nil, fmt.Errorf("relops: column %q is %s, not string", name, t.cols[i].Type)
	}
	return t.strs[i], nil
}

// value returns the cell (col position, row) as an any.
func (t *Table) value(col, row int) any {
	switch t.cols[col].Type {
	case Int64:
		return t.ints[col][row]
	case Float64:
		return t.floats[col][row]
	default:
		return t.strs[col][row]
	}
}

// appendFrom copies row r of src column sc into column dc of t.
// Schemas must already agree in type.
func (t *Table) appendFrom(dc int, src *Table, sc, r int) {
	switch t.cols[dc].Type {
	case Int64:
		t.ints[dc] = append(t.ints[dc], src.ints[sc][r])
	case Float64:
		t.floats[dc] = append(t.floats[dc], src.floats[sc][r])
	default:
		t.strs[dc] = append(t.strs[dc], src.strs[sc][r])
	}
}

// appendRowFrom copies a whole row from a table with identical layout.
func (t *Table) appendRowFrom(src *Table, r int) {
	for c := range t.cols {
		t.appendFrom(c, src, c, r)
	}
	t.rows++
}

// Rename returns a shallow copy of t with one column renamed. The
// underlying column data is shared, so Rename is O(columns).
func Rename(t *Table, old, new string) (*Table, error) {
	pos, err := t.colPos(old)
	if err != nil {
		return nil, err
	}
	if old == new {
		return t, nil
	}
	if _, dup := t.idx[new]; dup {
		return nil, fmt.Errorf("relops: rename target %q already exists", new)
	}
	out := &Table{
		cols:   append([]Column(nil), t.cols...),
		idx:    make(map[string]int, len(t.cols)),
		ints:   t.ints,
		floats: t.floats,
		strs:   t.strs,
		rows:   t.rows,
	}
	out.cols[pos].Name = new
	for i, c := range out.cols {
		out.idx[c.Name] = i
	}
	return out, nil
}

// Row is a cursor over one row of a table, passed to Select predicates.
type Row struct {
	t *Table
	i int
}

// Index returns the row's position in the table.
func (r Row) Index() int { return r.i }

// Int returns the named Int64 cell; it panics on type or name mismatch
// (predicates are static code, so a panic is a programming error).
func (r Row) Int(name string) int64 {
	c, err := r.t.colPos(name)
	if err != nil || r.t.cols[c].Type != Int64 {
		panic(fmt.Sprintf("relops: Row.Int(%q) on %v", name, err))
	}
	return r.t.ints[c][r.i]
}

// Float returns the named Float64 cell.
func (r Row) Float(name string) float64 {
	c, err := r.t.colPos(name)
	if err != nil || r.t.cols[c].Type != Float64 {
		panic(fmt.Sprintf("relops: Row.Float(%q) on %v", name, err))
	}
	return r.t.floats[c][r.i]
}

// Str returns the named String cell.
func (r Row) Str(name string) string {
	c, err := r.t.colPos(name)
	if err != nil || r.t.cols[c].Type != String {
		panic(fmt.Sprintf("relops: Row.Str(%q) on %v", name, err))
	}
	return r.t.strs[c][r.i]
}

// keyBytes appends a memcomparable encoding of cell (col,row): byte-wise
// lexicographic comparison of encodings matches the natural ordering of
// the values. Int64 is encoded big-endian with the sign bit flipped;
// Float64 uses the standard IEEE-754 total-order trick; strings append a
// 0x00 0x01 terminator so no encoding is a prefix of another.
func (t *Table) keyBytes(dst []byte, col, row int) []byte {
	switch t.cols[col].Type {
	case Int64:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(t.ints[col][row])^(1<<63))
		return append(dst, b[:]...)
	case Float64:
		bits := math.Float64bits(t.floats[col][row])
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits ^= 1 << 63
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], bits)
		return append(dst, b[:]...)
	default:
		s := t.strs[col][row]
		for i := 0; i < len(s); i++ {
			if s[i] == 0x00 {
				dst = append(dst, 0x00, 0xff)
			} else {
				dst = append(dst, s[i])
			}
		}
		return append(dst, 0x00, 0x01)
	}
}

// encodeKey builds the composite memcomparable key of the given columns
// for one row.
func (t *Table) encodeKey(dst []byte, cols []int, row int) []byte {
	for _, c := range cols {
		dst = t.keyBytes(dst, c, row)
	}
	return dst
}
