package relops

import (
	"bytes"
	"fmt"
	"hash/maphash"
	"math"
	"sort"
	"sync"
)

// defaultWorkers is the parallelism used when an operator is invoked
// with Workers <= 0. It is deliberately larger than one even on a single
// core so that the partitioned execution paths stay exercised.
const defaultWorkers = 4

// Select returns the rows of t for which pred is true, preserving order.
func Select(t *Table, pred func(Row) bool) *Table {
	out := MustNew(t.cols...)
	for r := 0; r < t.rows; r++ {
		if pred(Row{t: t, i: r}) {
			out.appendRowFrom(t, r)
		}
	}
	return out
}

// Project returns a table with only the named columns, in the given
// order. Column data is shared with the source (projection is O(cols)).
func Project(t *Table, names ...string) (*Table, error) {
	out := &Table{
		idx: make(map[string]int, len(names)),
	}
	for _, n := range names {
		p, err := t.colPos(n)
		if err != nil {
			return nil, err
		}
		if _, dup := out.idx[n]; dup {
			return nil, fmt.Errorf("relops: duplicate column %q in projection", n)
		}
		out.idx[n] = len(out.cols)
		out.cols = append(out.cols, t.cols[p])
		out.ints = append(out.ints, t.ints[p])
		out.floats = append(out.floats, t.floats[p])
		out.strs = append(out.strs, t.strs[p])
	}
	out.rows = t.rows
	return out, nil
}

// Union appends all rows of b to a copy of a. Schemas must be identical
// (names and types, in order).
func Union(a, b *Table) (*Table, error) {
	if err := sameSchema(a, b); err != nil {
		return nil, err
	}
	out := MustNew(a.cols...)
	for r := 0; r < a.rows; r++ {
		out.appendRowFrom(a, r)
	}
	for r := 0; r < b.rows; r++ {
		out.appendRowFrom(b, r)
	}
	return out, nil
}

func sameSchema(a, b *Table) error {
	if len(a.cols) != len(b.cols) {
		return fmt.Errorf("relops: schema mismatch: %d vs %d columns", len(a.cols), len(b.cols))
	}
	for i := range a.cols {
		if a.cols[i] != b.cols[i] {
			return fmt.Errorf("relops: schema mismatch at column %d: %v vs %v", i, a.cols[i], b.cols[i])
		}
	}
	return nil
}

// Distinct removes duplicate rows (over all columns), keeping the first
// occurrence of each and preserving order.
func Distinct(t *Table) *Table {
	all := make([]int, len(t.cols))
	for i := range all {
		all[i] = i
	}
	seen := make(map[string]bool, t.rows)
	out := MustNew(t.cols...)
	var buf []byte
	for r := 0; r < t.rows; r++ {
		buf = t.encodeKey(buf[:0], all, r)
		k := string(buf)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.appendRowFrom(t, r)
	}
	return out
}

// Sort returns a copy of t ordered by the named columns ascending
// (memcomparable composite key). The sort is stable.
func Sort(t *Table, names ...string) (*Table, error) {
	cols := make([]int, len(names))
	for i, n := range names {
		p, err := t.colPos(n)
		if err != nil {
			return nil, err
		}
		cols[i] = p
	}
	keys := make([][]byte, t.rows)
	order := make([]int, t.rows)
	for r := 0; r < t.rows; r++ {
		keys[r] = t.encodeKey(nil, cols, r)
		order[r] = r
	}
	sort.SliceStable(order, func(i, j int) bool {
		return bytes.Compare(keys[order[i]], keys[order[j]]) < 0
	})
	out := MustNew(t.cols...)
	for _, r := range order {
		out.appendRowFrom(t, r)
	}
	return out, nil
}

// JoinStrategy selects the physical join plan (Section 4.2.3).
type JoinStrategy int

const (
	// PartitionedJoin hashes both inputs into worker partitions and joins
	// each partition independently — the paper's chained map-side join
	// for when neither input fits in one node's memory.
	PartitionedJoin JoinStrategy = iota
	// ReplicatedJoin builds a single hash table over the right input and
	// probes it from parallel partitions of the left input — the paper's
	// replicated join for when the build side fits in memory.
	ReplicatedJoin
)

// String names the strategy.
func (s JoinStrategy) String() string {
	switch s {
	case PartitionedJoin:
		return "partitioned"
	case ReplicatedJoin:
		return "replicated"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// JoinOptions configures Join.
type JoinOptions struct {
	Strategy JoinStrategy
	// Workers is the partition parallelism (defaults to 4).
	Workers int
}

// Join computes the inner equi-join of l and r on l.lKey = r.rKey. The
// output schema is all columns of l followed by all columns of r except
// rKey; it is an error for names to collide (use Rename first, as SQL
// aliases would). Output order is deterministic and identical across
// strategies and worker counts.
func Join(l, r *Table, lKey, rKey string, opt JoinOptions) (*Table, error) {
	lPos, err := l.colPos(lKey)
	if err != nil {
		return nil, fmt.Errorf("relops: join left: %w", err)
	}
	rPos, err := r.colPos(rKey)
	if err != nil {
		return nil, fmt.Errorf("relops: join right: %w", err)
	}
	if l.cols[lPos].Type != r.cols[rPos].Type {
		return nil, fmt.Errorf("relops: join key type mismatch: %s vs %s",
			l.cols[lPos].Type, r.cols[rPos].Type)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = defaultWorkers
	}

	// Output schema: left columns then right columns minus the key.
	outCols := append([]Column(nil), l.cols...)
	rightCols := make([]int, 0, len(r.cols)-1)
	for i, c := range r.cols {
		if i == rPos {
			continue
		}
		for _, lc := range l.cols {
			if lc.Name == c.Name {
				return nil, fmt.Errorf("relops: join output column %q collides; rename first", c.Name)
			}
		}
		outCols = append(outCols, c)
		rightCols = append(rightCols, i)
	}

	lKeys := hashKeys(l, lPos)
	rKeys := hashKeys(r, rPos)

	parts := make([]*Table, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			parts[w] = joinPartition(l, r, lPos, rPos, rightCols, outCols,
				lKeys, rKeys, uint64(w), uint64(workers), opt.Strategy)
		}(w)
	}
	wg.Wait()

	out := MustNew(outCols...)
	for _, p := range parts {
		for rr := 0; rr < p.rows; rr++ {
			out.appendRowFrom(p, rr)
		}
	}
	return out, nil
}

// joinSeed is the fixed maphash seed: join partitioning must be
// deterministic across runs for reproducible row order.
var joinSeed = maphash.MakeSeed()

// hashKeys precomputes the partition hash of every row's key column.
func hashKeys(t *Table, keyPos int) []uint64 {
	out := make([]uint64, t.rows)
	var h maphash.Hash
	switch t.cols[keyPos].Type {
	case Int64:
		col := t.ints[keyPos]
		for i, v := range col {
			// Cheap integer mix; avoids per-row maphash overhead.
			x := uint64(v) * 0x9e3779b97f4a7c15
			x ^= x >> 29
			out[i] = x
		}
	case Float64:
		col := t.floats[keyPos]
		for i, v := range col {
			h.SetSeed(joinSeed)
			var b [8]byte
			putFloatBits(b[:], v)
			h.Write(b[:])
			out[i] = h.Sum64()
		}
	default:
		col := t.strs[keyPos]
		for i, v := range col {
			h.SetSeed(joinSeed)
			h.WriteString(v)
			out[i] = h.Sum64()
		}
	}
	return out
}

func putFloatBits(b []byte, v float64) {
	bits := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(bits >> (8 * i))
	}
}

// joinPartition joins the slice of the key space owned by worker w.
// For PartitionedJoin both sides are filtered to the partition before
// building; for ReplicatedJoin the build table spans all rows (built
// redundantly per worker, as a replicated plan would broadcast it) and
// only the probe side is partitioned.
func joinPartition(l, r *Table, lPos, rPos int, rightCols []int, outCols []Column,
	lKeys, rKeys []uint64, w, workers uint64, strategy JoinStrategy) *Table {

	build := make(map[any][]int)
	for i := 0; i < r.rows; i++ {
		if strategy == PartitionedJoin && rKeys[i]%workers != w {
			continue
		}
		k := r.value(rPos, i)
		build[k] = append(build[k], i)
	}
	out := MustNew(outCols...)
	for i := 0; i < l.rows; i++ {
		if lKeys[i]%workers != w {
			continue
		}
		matches, ok := build[l.value(lPos, i)]
		if !ok {
			continue
		}
		for _, m := range matches {
			for c := range l.cols {
				out.appendFrom(c, l, c, i)
			}
			for j, rc := range rightCols {
				out.appendFrom(len(l.cols)+j, r, rc, m)
			}
			out.rows++
		}
	}
	return out
}

// AntiJoin returns the rows of l whose lKey value has no match in
// r.rKey, preserving l's order. It is the relational complement used to
// carry over communities that found no positive-gain neighbor.
func AntiJoin(l, r *Table, lKey, rKey string) (*Table, error) {
	lPos, err := l.colPos(lKey)
	if err != nil {
		return nil, fmt.Errorf("relops: antijoin left: %w", err)
	}
	rPos, err := r.colPos(rKey)
	if err != nil {
		return nil, fmt.Errorf("relops: antijoin right: %w", err)
	}
	if l.cols[lPos].Type != r.cols[rPos].Type {
		return nil, fmt.Errorf("relops: antijoin key type mismatch")
	}
	present := make(map[any]bool, r.rows)
	for i := 0; i < r.rows; i++ {
		present[r.value(rPos, i)] = true
	}
	out := MustNew(l.cols...)
	for i := 0; i < l.rows; i++ {
		if !present[l.value(lPos, i)] {
			out.appendRowFrom(l, i)
		}
	}
	return out, nil
}

// AggKind enumerates grouped aggregates.
type AggKind int

const (
	// Count counts rows per group.
	Count AggKind = iota
	// Sum sums a numeric column.
	Sum
	// Max takes the maximum of a numeric column.
	Max
	// Min takes the minimum of a numeric column.
	Min
	// ArgMax returns the value of Arg on the row where Col is maximal.
	// Ties break toward the smallest Arg value, making the aggregate
	// deterministic — the property that lets the SQL backend reproduce
	// the in-memory algorithm exactly.
	ArgMax
)

// Agg describes one aggregate output.
type Agg struct {
	Kind AggKind
	// Col is the aggregated column (ignored for Count).
	Col string
	// Arg is the column returned by ArgMax.
	Arg string
	// As names the output column.
	As string
}

// GroupBy groups t by the key columns and computes the aggregates. The
// output contains the key columns followed by one column per aggregate,
// with groups ordered by their composite key (memcomparable order).
// Aggregation runs as parallel partial aggregation over row partitions
// followed by a merge, the one-pass map-reduce shape of Section 4.2.3.
func GroupBy(t *Table, keys []string, aggs []Agg, workers int) (*Table, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("relops: GroupBy needs at least one key")
	}
	if workers <= 0 {
		workers = defaultWorkers
	}
	keyPos := make([]int, len(keys))
	for i, k := range keys {
		p, err := t.colPos(k)
		if err != nil {
			return nil, err
		}
		keyPos[i] = p
	}
	specs, outCols, err := resolveAggs(t, keys, keyPos, aggs)
	if err != nil {
		return nil, err
	}

	// Parallel partial aggregation.
	partials := make([]map[string]*groupState, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := map[string]*groupState{}
			lo := t.rows * w / workers
			hi := t.rows * (w + 1) / workers
			var buf []byte
			for r := lo; r < hi; r++ {
				buf = t.encodeKey(buf[:0], keyPos, r)
				k := string(buf)
				st := local[k]
				if st == nil {
					st = newGroupState(specs, r)
					local[k] = st
				}
				st.update(t, specs, r)
			}
			partials[w] = local
		}(w)
	}
	wg.Wait()

	merged := partials[0]
	for _, p := range partials[1:] {
		for k, st := range p {
			if have, ok := merged[k]; ok {
				have.merge(t, specs, st)
			} else {
				merged[k] = st
			}
		}
	}

	// Deterministic group order: sort by encoded key.
	order := make([]string, 0, len(merged))
	for k := range merged {
		order = append(order, k)
	}
	sort.Strings(order)

	out := MustNew(outCols...)
	for _, k := range order {
		st := merged[k]
		for i := range keyPos {
			out.appendFrom(i, t, keyPos[i], st.firstRow)
		}
		for ai, sp := range specs {
			c := len(keyPos) + ai
			switch sp.kind {
			case Count:
				out.ints[c] = append(out.ints[c], st.counts[ai])
			case Sum, Max, Min:
				if sp.colType == Int64 {
					out.ints[c] = append(out.ints[c], st.accInt[ai])
				} else {
					out.floats[c] = append(out.floats[c], st.accFloat[ai])
				}
			case ArgMax:
				out.appendFrom(c, t, sp.argPos, st.argRows[ai])
			}
		}
		out.rows++
	}
	return out, nil
}

type aggSpec struct {
	kind    AggKind
	colPos  int
	colType Type
	argPos  int
	argType Type
}

func resolveAggs(t *Table, keys []string, keyPos []int, aggs []Agg) ([]aggSpec, []Column, error) {
	outCols := make([]Column, 0, len(keys)+len(aggs))
	for i, k := range keys {
		outCols = append(outCols, Column{Name: k, Type: t.cols[keyPos[i]].Type})
	}
	specs := make([]aggSpec, len(aggs))
	for i, a := range aggs {
		if a.As == "" {
			return nil, nil, fmt.Errorf("relops: aggregate %d has empty output name", i)
		}
		sp := aggSpec{kind: a.Kind}
		switch a.Kind {
		case Count:
			outCols = append(outCols, Column{Name: a.As, Type: Int64})
		case Sum, Max, Min:
			p, err := t.colPos(a.Col)
			if err != nil {
				return nil, nil, err
			}
			ct := t.cols[p].Type
			if ct == String {
				return nil, nil, fmt.Errorf("relops: %v over string column %q", a.Kind, a.Col)
			}
			sp.colPos, sp.colType = p, ct
			outCols = append(outCols, Column{Name: a.As, Type: ct})
		case ArgMax:
			p, err := t.colPos(a.Col)
			if err != nil {
				return nil, nil, err
			}
			if t.cols[p].Type == String {
				return nil, nil, fmt.Errorf("relops: ArgMax over string column %q", a.Col)
			}
			ap, err := t.colPos(a.Arg)
			if err != nil {
				return nil, nil, err
			}
			sp.colPos, sp.colType = p, t.cols[p].Type
			sp.argPos, sp.argType = ap, t.cols[ap].Type
			outCols = append(outCols, Column{Name: a.As, Type: t.cols[ap].Type})
		default:
			return nil, nil, fmt.Errorf("relops: unknown aggregate kind %d", a.Kind)
		}
		specs[i] = sp
	}
	// Check for output name collisions.
	seen := map[string]bool{}
	for _, c := range outCols {
		if seen[c.Name] {
			return nil, nil, fmt.Errorf("relops: duplicate output column %q", c.Name)
		}
		seen[c.Name] = true
	}
	return specs, outCols, nil
}

// groupState carries per-group accumulator values, indexed by aggregate.
type groupState struct {
	firstRow int
	counts   []int64
	accInt   []int64
	accFloat []float64
	argRows  []int
}

func newGroupState(specs []aggSpec, row int) *groupState {
	st := &groupState{
		firstRow: row,
		counts:   make([]int64, len(specs)),
		accInt:   make([]int64, len(specs)),
		accFloat: make([]float64, len(specs)),
		argRows:  make([]int, len(specs)),
	}
	for i := range st.argRows {
		st.argRows[i] = -1
	}
	return st
}

func (st *groupState) update(t *Table, specs []aggSpec, r int) {
	for i, sp := range specs {
		switch sp.kind {
		case Count:
			st.counts[i]++
		case Sum:
			if sp.colType == Int64 {
				st.accInt[i] += t.ints[sp.colPos][r]
			} else {
				st.accFloat[i] += t.floats[sp.colPos][r]
			}
			st.counts[i]++
		case Max, Min:
			first := st.counts[i] == 0
			st.counts[i]++
			if sp.colType == Int64 {
				v := t.ints[sp.colPos][r]
				if first || (sp.kind == Max && v > st.accInt[i]) || (sp.kind == Min && v < st.accInt[i]) {
					st.accInt[i] = v
				}
			} else {
				v := t.floats[sp.colPos][r]
				if first || (sp.kind == Max && v > st.accFloat[i]) || (sp.kind == Min && v < st.accFloat[i]) {
					st.accFloat[i] = v
				}
			}
		case ArgMax:
			if st.argRows[i] < 0 || argMaxBetter(t, sp, r, st.argRows[i]) {
				st.argRows[i] = r
			}
		}
	}
}

// argMaxBetter reports whether row a beats the incumbent row b for an
// ArgMax aggregate: strictly larger value, or equal value with smaller
// argument (deterministic tie-break).
func argMaxBetter(t *Table, sp aggSpec, a, b int) bool {
	var cmp int
	if sp.colType == Int64 {
		va, vb := t.ints[sp.colPos][a], t.ints[sp.colPos][b]
		switch {
		case va > vb:
			cmp = 1
		case va < vb:
			cmp = -1
		}
	} else {
		va, vb := t.floats[sp.colPos][a], t.floats[sp.colPos][b]
		switch {
		case va > vb:
			cmp = 1
		case va < vb:
			cmp = -1
		}
	}
	if cmp != 0 {
		return cmp > 0
	}
	// Tie on value: smaller argument wins.
	ka := t.encodeKey(nil, []int{sp.argPos}, a)
	kb := t.encodeKey(nil, []int{sp.argPos}, b)
	return bytes.Compare(ka, kb) < 0
}

func (st *groupState) merge(t *Table, specs []aggSpec, other *groupState) {
	for i, sp := range specs {
		switch sp.kind {
		case Count:
			st.counts[i] += other.counts[i]
		case Sum:
			st.accInt[i] += other.accInt[i]
			st.accFloat[i] += other.accFloat[i]
			st.counts[i] += other.counts[i]
		case Max, Min:
			if other.counts[i] == 0 {
				continue
			}
			if st.counts[i] == 0 {
				st.accInt[i], st.accFloat[i] = other.accInt[i], other.accFloat[i]
				st.counts[i] = other.counts[i]
				continue
			}
			st.counts[i] += other.counts[i]
			if sp.colType == Int64 {
				if (sp.kind == Max && other.accInt[i] > st.accInt[i]) ||
					(sp.kind == Min && other.accInt[i] < st.accInt[i]) {
					st.accInt[i] = other.accInt[i]
				}
			} else {
				if (sp.kind == Max && other.accFloat[i] > st.accFloat[i]) ||
					(sp.kind == Min && other.accFloat[i] < st.accFloat[i]) {
					st.accFloat[i] = other.accFloat[i]
				}
			}
		case ArgMax:
			if other.argRows[i] < 0 {
				continue
			}
			if st.argRows[i] < 0 || argMaxBetter(t, sp, other.argRows[i], st.argRows[i]) {
				st.argRows[i] = other.argRows[i]
			}
		}
		if other.firstRow < st.firstRow {
			st.firstRow = other.firstRow
		}
	}
}

// Extend returns t plus one computed column. The value function receives
// each row and must return a value of the declared type (int64, float64
// or string; int and int32 widen). It stands in for SQL computed
// expressions such as the ModulGain(...) call in the paper's Figure 4.
func Extend(t *Table, name string, typ Type, fn func(Row) any) (*Table, error) {
	if _, dup := t.idx[name]; dup {
		return nil, fmt.Errorf("relops: extend column %q already exists", name)
	}
	out := MustNew(append(t.Schema(), Column{Name: name, Type: typ})...)
	for r := 0; r < t.rows; r++ {
		vals := make([]any, 0, len(t.cols)+1)
		for c := range t.cols {
			vals = append(vals, t.value(c, r))
		}
		vals = append(vals, fn(Row{t: t, i: r}))
		if err := out.AppendRow(vals...); err != nil {
			return nil, fmt.Errorf("relops: extend row %d: %w", r, err)
		}
	}
	return out, nil
}
