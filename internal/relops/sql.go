package relops

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements a small SQL dialect over the engine — enough to
// run the paper's Figure 4 pseudo-SQL as actual query text:
//
//	SELECT c1, c2, distance
//	FROM graph
//	INNER JOIN comm1 ON query1 = q1
//	INNER JOIN comm2 ON query2 = q2
//	WHERE modulgain(c1, c2) > 0
//
//	SELECT c2, ARGMAX(distance, c1) AS leader FROM neighbors GROUP BY c2
//
// Supported grammar (case-insensitive keywords):
//
//	query      := SELECT items FROM ident join* [WHERE cond] [GROUP BY idents]
//	join       := INNER JOIN ident ON ident '=' ident
//	items      := item (',' item)*
//	item       := expr [AS ident] | aggregate [AS ident]
//	aggregate  := COUNT '(' '*' ')' | (SUM|MIN|MAX) '(' ident ')'
//	            | ARGMAX '(' ident ',' ident ')'
//	cond       := cmp (AND cmp)*
//	cmp        := expr ('='|'<>'|'<'|'>'|'<='|'>=') expr
//	expr       := term (('+'|'-') term)*
//	term       := factor (('*'|'/') factor)*
//	factor     := number | 'string' | ident | func '(' expr,... ')' | '(' expr ')'
//
// Scalar functions (like the paper's ModulGain) are registered through
// ExecOptions.Funcs as Go closures over float64 arguments.

// ExecOptions configures Exec.
type ExecOptions struct {
	// Funcs registers scalar functions callable from expressions; all
	// arguments and results are float64 (integer columns promote).
	Funcs map[string]func(args ...float64) float64
	// Join configures the physical join plan.
	Join JoinOptions
	// Workers is the group-by parallelism (default 4).
	Workers int
}

// Catalog names the tables visible to a query.
type Catalog map[string]*Table

// Exec parses and executes one SELECT statement against the catalog.
func Exec(cat Catalog, query string, opt ExecOptions) (*Table, error) {
	toks, err := lexSQL(query)
	if err != nil {
		return nil, fmt.Errorf("relops: sql lex: %w", err)
	}
	p := &sqlParser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, fmt.Errorf("relops: sql parse: %w", err)
	}
	out, err := stmt.exec(cat, opt)
	if err != nil {
		return nil, fmt.Errorf("relops: sql exec: %w", err)
	}
	return out, nil
}

// --- lexer ---

type sqlToken struct {
	kind string // "ident", "num", "str", "punct"
	text string
}

func lexSQL(s string) ([]sqlToken, error) {
	var toks []sqlToken
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.') {
				j++
			}
			toks = append(toks, sqlToken{"num", s[i:j]})
			i = j
		case c == '\'':
			j := i + 1
			for j < len(s) && s[j] != '\'' {
				j++
			}
			if j == len(s) {
				return nil, fmt.Errorf("unterminated string at offset %d", i)
			}
			toks = append(toks, sqlToken{"str", s[i+1 : j]})
			i = j + 1
		case isIdentByte(c):
			j := i
			for j < len(s) && isIdentByte(s[j]) {
				j++
			}
			toks = append(toks, sqlToken{"ident", s[i:j]})
			i = j
		case strings.IndexByte("(),*=+-/", c) >= 0:
			toks = append(toks, sqlToken{"punct", string(c)})
			i++
		case c == '<':
			if i+1 < len(s) && (s[i+1] == '=' || s[i+1] == '>') {
				toks = append(toks, sqlToken{"punct", s[i : i+2]})
				i += 2
			} else {
				toks = append(toks, sqlToken{"punct", "<"})
				i++
			}
		case c == '>':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, sqlToken{"punct", ">="})
				i += 2
			} else {
				toks = append(toks, sqlToken{"punct", ">"})
				i++
			}
		default:
			return nil, fmt.Errorf("unexpected byte %q at offset %d", c, i)
		}
	}
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '#'
}

// --- AST ---

type sqlExpr interface{}

type exprIdent struct{ name string }
type exprNum struct {
	f     float64
	i     int64
	isInt bool
}
type exprStr struct{ s string }
type exprBin struct {
	op   string
	l, r sqlExpr
}
type exprCall struct {
	fn   string
	args []sqlExpr
}

type selectItem struct {
	expr sqlExpr // nil when agg != nil
	agg  *Agg
	as   string
}

type joinClause struct {
	table      string
	lkey, rkey string
}

type compareClause struct {
	op   string
	l, r sqlExpr
}

type selectStmt struct {
	items   []selectItem
	from    string
	joins   []joinClause
	where   []compareClause
	groupBy []string
}

// --- parser ---

type sqlParser struct {
	toks []sqlToken
	pos  int
}

func (p *sqlParser) peek() sqlToken {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return sqlToken{}
}

func (p *sqlParser) next() sqlToken {
	t := p.peek()
	p.pos++
	return t
}

func (p *sqlParser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == "ident" && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *sqlParser) expectPunct(s string) error {
	t := p.next()
	if t.kind != "punct" || t.text != s {
		return fmt.Errorf("expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *sqlParser) ident() (string, error) {
	t := p.next()
	if t.kind != "ident" {
		return "", fmt.Errorf("expected identifier, got %q", t.text)
	}
	return strings.ToLower(t.text), nil
}

var aggKeywords = map[string]AggKind{
	"count": Count, "sum": Sum, "min": Min, "max": Max, "argmax": ArgMax,
}

func (p *sqlParser) parseSelect() (*selectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &selectStmt{}
	for {
		item, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		stmt.items = append(stmt.items, item)
		if p.peek().kind == "punct" && p.peek().text == "," {
			p.pos++
			continue
		}
		break
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	from, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.from = from
	for p.keyword("inner") {
		if err := p.expectKeyword("join"); err != nil {
			return nil, err
		}
		j := joinClause{}
		if j.table, err = p.ident(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return nil, err
		}
		if j.lkey, err = p.ident(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		if j.rkey, err = p.ident(); err != nil {
			return nil, err
		}
		stmt.joins = append(stmt.joins, j)
	}
	if p.keyword("where") {
		for {
			cmp, err := p.parseCompare()
			if err != nil {
				return nil, err
			}
			stmt.where = append(stmt.where, cmp)
			if !p.keyword("and") {
				break
			}
		}
	}
	if p.keyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			g, err := p.ident()
			if err != nil {
				return nil, err
			}
			stmt.groupBy = append(stmt.groupBy, g)
			if p.peek().kind == "punct" && p.peek().text == "," {
				p.pos++
				continue
			}
			break
		}
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("trailing input at %q", p.peek().text)
	}
	return stmt, nil
}

func (p *sqlParser) parseItem() (selectItem, error) {
	// Aggregate?
	if t := p.peek(); t.kind == "ident" {
		if kind, isAgg := aggKeywords[strings.ToLower(t.text)]; isAgg &&
			p.pos+1 < len(p.toks) && p.toks[p.pos+1].text == "(" {
			p.pos += 2 // consume name and '('
			agg := &Agg{Kind: kind}
			switch kind {
			case Count:
				if err := p.expectPunct("*"); err != nil {
					return selectItem{}, err
				}
			case ArgMax:
				col, err := p.ident()
				if err != nil {
					return selectItem{}, err
				}
				if err := p.expectPunct(","); err != nil {
					return selectItem{}, err
				}
				arg, err := p.ident()
				if err != nil {
					return selectItem{}, err
				}
				agg.Col, agg.Arg = col, arg
			default:
				col, err := p.ident()
				if err != nil {
					return selectItem{}, err
				}
				agg.Col = col
			}
			if err := p.expectPunct(")"); err != nil {
				return selectItem{}, err
			}
			item := selectItem{agg: agg}
			if p.keyword("as") {
				as, err := p.ident()
				if err != nil {
					return selectItem{}, err
				}
				item.as = as
			}
			return item, nil
		}
	}
	expr, err := p.parseExpr()
	if err != nil {
		return selectItem{}, err
	}
	item := selectItem{expr: expr}
	if p.keyword("as") {
		as, err := p.ident()
		if err != nil {
			return selectItem{}, err
		}
		item.as = as
	}
	return item, nil
}

func (p *sqlParser) parseCompare() (compareClause, error) {
	l, err := p.parseExpr()
	if err != nil {
		return compareClause{}, err
	}
	t := p.next()
	switch t.text {
	case "=", "<>", "<", ">", "<=", ">=":
	default:
		return compareClause{}, fmt.Errorf("expected comparison operator, got %q", t.text)
	}
	r, err := p.parseExpr()
	if err != nil {
		return compareClause{}, err
	}
	return compareClause{op: t.text, l: l, r: r}, nil
}

func (p *sqlParser) parseExpr() (sqlExpr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == "punct" && (t.text == "+" || t.text == "-") {
			p.pos++
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = exprBin{op: t.text, l: l, r: r}
			continue
		}
		return l, nil
	}
}

func (p *sqlParser) parseTerm() (sqlExpr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == "punct" && (t.text == "*" || t.text == "/") {
			p.pos++
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			l = exprBin{op: t.text, l: l, r: r}
			continue
		}
		return l, nil
	}
}

func (p *sqlParser) parseFactor() (sqlExpr, error) {
	t := p.next()
	switch t.kind {
	case "num":
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, err
			}
			return exprNum{f: f}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		return exprNum{i: i, isInt: true, f: float64(i)}, nil
	case "str":
		return exprStr{s: t.text}, nil
	case "ident":
		if p.peek().kind == "punct" && p.peek().text == "(" {
			p.pos++
			call := exprCall{fn: strings.ToLower(t.text)}
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.args = append(call.args, arg)
				if p.peek().text == "," {
					p.pos++
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return exprIdent{name: strings.ToLower(t.text)}, nil
	case "punct":
		if t.text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("unexpected token %q", t.text)
}

// --- compiler / executor ---

// compiledExpr evaluates to a value of typ for each row.
type compiledExpr struct {
	typ  Type
	eval func(Row) any
}

func compileExpr(e sqlExpr, t *Table, funcs map[string]func(...float64) float64) (compiledExpr, error) {
	switch x := e.(type) {
	case exprIdent:
		pos, err := t.colPos(x.name)
		if err != nil {
			return compiledExpr{}, err
		}
		name := x.name
		switch t.cols[pos].Type {
		case Int64:
			return compiledExpr{Int64, func(r Row) any { return r.Int(name) }}, nil
		case Float64:
			return compiledExpr{Float64, func(r Row) any { return r.Float(name) }}, nil
		default:
			return compiledExpr{String, func(r Row) any { return r.Str(name) }}, nil
		}
	case exprNum:
		if x.isInt {
			v := x.i
			return compiledExpr{Int64, func(Row) any { return v }}, nil
		}
		v := x.f
		return compiledExpr{Float64, func(Row) any { return v }}, nil
	case exprStr:
		v := x.s
		return compiledExpr{String, func(Row) any { return v }}, nil
	case exprCall:
		fn, ok := funcs[x.fn]
		if !ok {
			return compiledExpr{}, fmt.Errorf("unknown function %q", x.fn)
		}
		args := make([]compiledExpr, len(x.args))
		for i, a := range x.args {
			c, err := compileExpr(a, t, funcs)
			if err != nil {
				return compiledExpr{}, err
			}
			if c.typ == String {
				return compiledExpr{}, fmt.Errorf("function %q: string argument", x.fn)
			}
			args[i] = c
		}
		return compiledExpr{Float64, func(r Row) any {
			vals := make([]float64, len(args))
			for i, a := range args {
				vals[i] = toFloat(a.eval(r))
			}
			return fn(vals...)
		}}, nil
	case exprBin:
		l, err := compileExpr(x.l, t, funcs)
		if err != nil {
			return compiledExpr{}, err
		}
		r, err := compileExpr(x.r, t, funcs)
		if err != nil {
			return compiledExpr{}, err
		}
		if l.typ == String || r.typ == String {
			return compiledExpr{}, fmt.Errorf("arithmetic on strings")
		}
		op := x.op
		if l.typ == Int64 && r.typ == Int64 && op != "/" {
			le, re := l.eval, r.eval
			return compiledExpr{Int64, func(row Row) any {
				a, b := le(row).(int64), re(row).(int64)
				switch op {
				case "+":
					return a + b
				case "-":
					return a - b
				default:
					return a * b
				}
			}}, nil
		}
		le, re := l.eval, r.eval
		return compiledExpr{Float64, func(row Row) any {
			a, b := toFloat(le(row)), toFloat(re(row))
			switch op {
			case "+":
				return a + b
			case "-":
				return a - b
			case "*":
				return a * b
			default:
				return a / b
			}
		}}, nil
	}
	return compiledExpr{}, fmt.Errorf("unsupported expression %T", e)
}

func toFloat(v any) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	default:
		panic(fmt.Sprintf("relops: non-numeric value %T", v))
	}
}

func (stmt *selectStmt) exec(cat Catalog, opt ExecOptions) (*Table, error) {
	cur, ok := cat[stmt.from]
	if !ok {
		return nil, fmt.Errorf("unknown table %q", stmt.from)
	}
	var err error
	// Joins, in order.
	for _, j := range stmt.joins {
		right, ok := cat[j.table]
		if !ok {
			return nil, fmt.Errorf("unknown table %q", j.table)
		}
		lk, rk := j.lkey, j.rkey
		// Accept the keys in either order, as SQL does.
		if !cur.HasColumn(lk) {
			lk, rk = rk, lk
		}
		cur, err = Join(cur, right, lk, rk, opt.Join)
		if err != nil {
			return nil, err
		}
	}
	// WHERE.
	for _, w := range stmt.where {
		l, err := compileExpr(w.l, cur, opt.Funcs)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(w.r, cur, opt.Funcs)
		if err != nil {
			return nil, err
		}
		if (l.typ == String) != (r.typ == String) {
			return nil, fmt.Errorf("comparing string with number")
		}
		op := w.op
		pred := func(row Row) bool {
			if l.typ == String {
				a, b := l.eval(row).(string), r.eval(row).(string)
				return cmpResult(strings.Compare(a, b), op)
			}
			a, b := toFloat(l.eval(row)), toFloat(r.eval(row))
			switch {
			case a < b:
				return cmpResult(-1, op)
			case a > b:
				return cmpResult(1, op)
			default:
				return cmpResult(0, op)
			}
		}
		cur = Select(cur, pred)
	}

	// Aggregation vs projection.
	hasAgg := false
	for _, it := range stmt.items {
		if it.agg != nil {
			hasAgg = true
		}
	}
	if hasAgg {
		if len(stmt.groupBy) == 0 {
			return nil, fmt.Errorf("aggregates require GROUP BY")
		}
		var aggs []Agg
		for _, it := range stmt.items {
			if it.agg == nil {
				// Must be a bare group key.
				id, ok := it.expr.(exprIdent)
				if !ok || !contains(stmt.groupBy, id.name) {
					return nil, fmt.Errorf("non-aggregate select item must be a group key")
				}
				continue
			}
			a := *it.agg
			if it.as == "" {
				return nil, fmt.Errorf("aggregate needs AS alias")
			}
			a.As = it.as
			aggs = append(aggs, a)
		}
		grouped, err := GroupBy(cur, stmt.groupBy, aggs, opt.Workers)
		if err != nil {
			return nil, err
		}
		// Order output columns as written.
		var names []string
		for _, it := range stmt.items {
			if it.agg != nil {
				names = append(names, it.as)
			} else {
				names = append(names, it.expr.(exprIdent).name)
			}
		}
		return Project(grouped, names...)
	}

	// Plain projection with computed columns. Computed expressions are
	// materialized under scratch names first, then the output table is
	// assembled column by column so SQL aliases may legally shadow
	// existing column names (SELECT c1 AS query1 ...).
	tmp := cur
	type outCol struct{ src, final string }
	var outs []outCol
	for i, it := range stmt.items {
		if id, ok := it.expr.(exprIdent); ok {
			final := it.as
			if final == "" {
				final = id.name
			}
			outs = append(outs, outCol{src: id.name, final: final})
			continue
		}
		final := it.as
		if final == "" {
			final = fmt.Sprintf("col%d", i)
		}
		scratch := fmt.Sprintf("__sel_%d", i)
		c, err := compileExpr(it.expr, tmp, opt.Funcs)
		if err != nil {
			return nil, err
		}
		tmp, err = Extend(tmp, scratch, c.typ, c.eval)
		if err != nil {
			return nil, err
		}
		outs = append(outs, outCol{src: scratch, final: final})
	}
	out := &Table{idx: map[string]int{}, rows: tmp.rows}
	for _, oc := range outs {
		pos, err := tmp.colPos(oc.src)
		if err != nil {
			return nil, err
		}
		if _, dup := out.idx[oc.final]; dup {
			return nil, fmt.Errorf("duplicate output column %q", oc.final)
		}
		out.idx[oc.final] = len(out.cols)
		out.cols = append(out.cols, Column{Name: oc.final, Type: tmp.cols[pos].Type})
		out.ints = append(out.ints, tmp.ints[pos])
		out.floats = append(out.floats, tmp.floats[pos])
		out.strs = append(out.strs, tmp.strs[pos])
	}
	return out, nil
}

func cmpResult(cmp int, op string) bool {
	switch op {
	case "=":
		return cmp == 0
	case "<>":
		return cmp != 0
	case "<":
		return cmp < 0
	case ">":
		return cmp > 0
	case "<=":
		return cmp <= 0
	default:
		return cmp >= 0
	}
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
