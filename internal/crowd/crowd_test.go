package crowd

import (
	"testing"

	"repro/internal/world"
)

func setup(t testing.TB) (*world.World, *Study) {
	t.Helper()
	w := world.Build(world.TinyConfig())
	return w, NewStudy(w, DefaultConfig())
}

func TestStudyDeterministic(t *testing.T) {
	w := world.Build(world.TinyConfig())
	id, _ := w.KeywordOwner("49ers")
	users := w.ExpertsOn(id)
	a := NewStudy(w, DefaultConfig()).JudgeCandidates(id, users)
	b := NewStudy(w, DefaultConfig()).JudgeCandidates(id, users)
	for i := range a {
		if a[i].Relevant != b[i].Relevant {
			t.Fatalf("judgment %d differs across identical studies", i)
		}
	}
}

func TestEveryCandidateGetsThreeVotes(t *testing.T) {
	w, s := setup(t)
	id, _ := w.KeywordOwner("49ers")
	users := w.ExpertsOn(id)
	judgments := s.JudgeCandidates(id, users)
	if len(judgments) != len(users) {
		t.Fatalf("judged %d of %d candidates", len(judgments), len(users))
	}
	for i, j := range judgments {
		if len(j.Votes) != 3 {
			t.Errorf("candidate %d got %d votes", i, len(j.Votes))
		}
		if j.User != users[i] {
			t.Errorf("judgment %d misaligned with input order", i)
		}
	}
	if s.JudgmentsIssued() != 3*len(users) {
		t.Errorf("issued %d judgments, want %d", s.JudgmentsIssued(), 3*len(users))
	}
}

func TestExpertsMostlyJudgedRelevant(t *testing.T) {
	w, s := setup(t)
	id, _ := w.KeywordOwner("49ers")
	experts := w.ExpertsOn(id)
	judgments := s.JudgeCandidates(id, experts)
	if imp := Impurity(judgments); imp > 0.35 {
		t.Errorf("impurity %v too high for genuine experts", imp)
	}
	if ti := TruthImpurity(judgments); ti != 0 {
		t.Errorf("ground truth impurity %v for genuine experts", ti)
	}
}

func TestNonExpertsMostlyRejected(t *testing.T) {
	w, s := setup(t)
	id, _ := w.KeywordOwner("49ers")
	// Spam and casual users are never relevant.
	var nonExperts []world.UserID
	for i := range w.Users {
		if w.Users[i].Kind == world.SpamUser || w.Users[i].Kind == world.CasualUser {
			nonExperts = append(nonExperts, w.Users[i].ID)
		}
		if len(nonExperts) == 30 {
			break
		}
	}
	judgments := s.JudgeCandidates(id, nonExperts)
	if imp := Impurity(judgments); imp < 0.6 {
		t.Errorf("impurity %v too low for non-experts", imp)
	}
	if ti := TruthImpurity(judgments); ti != 1 {
		t.Errorf("ground truth impurity %v, want 1", ti)
	}
}

func TestMajorityBeatsIndividualError(t *testing.T) {
	w, s := setup(t)
	id, _ := w.KeywordOwner("49ers")
	// Large mixed pool: majority voting should agree with ground truth
	// more often than a single worker's (1 - BaseErrorRate).
	var pool []world.UserID
	for i := range w.Users {
		pool = append(pool, w.Users[i].ID)
		if len(pool) == 200 {
			break
		}
	}
	judgments := s.JudgeCandidates(id, pool)
	if ar := AgreementRate(judgments); ar < 0.8 {
		t.Errorf("majority agreement %v too low", ar)
	}
}

func TestQualificationFiltersSpammers(t *testing.T) {
	w := world.Build(world.TinyConfig())
	cfg := DefaultConfig()
	cfg.NumWorkers = 500
	cfg.SpamWorkerRate = 0.5
	cfg.QualificationCatchRate = 0.9
	s := NewStudy(w, cfg)
	// Roughly half are spammers; 90% of those are caught.
	if s.SpammersCaught() < 150 {
		t.Errorf("only %d spammers caught", s.SpammersCaught())
	}
	if len(s.workers) > 400 {
		t.Errorf("pool kept %d workers of 500 with heavy spam", len(s.workers))
	}
}

func TestDegenerateConfigStillJudges(t *testing.T) {
	w := world.Build(world.TinyConfig())
	cfg := DefaultConfig()
	cfg.NumWorkers = 1
	cfg.SpamWorkerRate = 1.0
	cfg.QualificationCatchRate = 1.0
	s := NewStudy(w, cfg)
	id, _ := w.KeywordOwner("49ers")
	judgments := s.JudgeCandidates(id, w.ExpertsOn(id))
	if len(judgments) == 0 {
		t.Fatal("no judgments from degenerate pool")
	}
}

func TestImpurityBounds(t *testing.T) {
	if Impurity(nil) != 0 {
		t.Error("empty impurity should be 0")
	}
	js := []Judgment{{Relevant: true}, {Relevant: false}, {Relevant: false}, {Relevant: true}}
	if got := Impurity(js); got != 0.5 {
		t.Errorf("impurity = %v, want 0.5", got)
	}
}

func TestInterleave(t *testing.T) {
	a := []int{1, 2, 3}
	b := []int{4, 2, 5}
	got := Interleave(a, b)
	want := []int{1, 4, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("interleave = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleave = %v, want %v", got, want)
		}
	}
}

func TestInterleaveUnequalLengths(t *testing.T) {
	got := Interleave([]string{"a"}, []string{"b", "c", "d"})
	if len(got) != 4 {
		t.Fatalf("interleave dropped items: %v", got)
	}
}

func TestChunkingCoversEveryone(t *testing.T) {
	w := world.Build(world.TinyConfig())
	cfg := DefaultConfig()
	cfg.ChunkSize = 4
	s := NewStudy(w, cfg)
	id, _ := w.KeywordOwner("49ers")
	var pool []world.UserID
	for i := 0; i < 23; i++ { // deliberately not a multiple of ChunkSize
		pool = append(pool, w.Users[i].ID)
	}
	judgments := s.JudgeCandidates(id, pool)
	if len(judgments) != 23 {
		t.Fatalf("judged %d of 23", len(judgments))
	}
	for i, j := range judgments {
		if len(j.Votes) == 0 {
			t.Errorf("candidate %d unjudged", i)
		}
	}
}

func BenchmarkJudgeCandidates(b *testing.B) {
	w, s := setup(b)
	id, _ := w.KeywordOwner("49ers")
	users := w.ExpertsOn(id)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.JudgeCandidates(id, users)
	}
}
