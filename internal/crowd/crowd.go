// Package crowd simulates the paper's crowdsourcing study (Section 6.2):
// 64 third-party workers judge candidate experts, spammers are filtered
// by trivial qualification questions, results are interleaved, chunked
// into sets of at most six, order-randomized against position bias, and
// every expert is reviewed by three distinct workers whose votes are
// aggregated by majority.
//
// Workers are asked to spot "non-experts" — accounts from which no
// objective information about the topic can be obtained — exactly the
// task framing the paper chose because rejecting is easier than
// validating. Ground truth comes from the generating world; workers err
// with a rate that shrinks with their knowledge of the topic's category,
// reproducing the paper's observation that judging expertise requires
// some expertise.
package crowd

import (
	"fmt"

	"repro/internal/world"
	"repro/internal/xrand"
)

// Config tunes the simulated study.
type Config struct {
	Seed uint64
	// NumWorkers is the judge pool size (the paper had 64).
	NumWorkers int
	// JudgesPerExpert is the number of distinct workers reviewing each
	// candidate (the paper used 3, aggregated by majority).
	JudgesPerExpert int
	// ChunkSize caps how many candidates one worker sees per task (6).
	ChunkSize int
	// SpamWorkerRate is the fraction of workers who answer randomly.
	SpamWorkerRate float64
	// QualificationCatchRate is the probability a spam worker fails the
	// trivial preliminary questions and is excluded.
	QualificationCatchRate float64
	// BaseErrorRate is a qualified worker's misjudgment probability on
	// an unfamiliar category.
	BaseErrorRate float64
	// KnowledgeDiscount scales the error rate down on the worker's
	// strongest categories.
	KnowledgeDiscount float64
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{
		Seed:                   21,
		NumWorkers:             64,
		JudgesPerExpert:        3,
		ChunkSize:              6,
		SpamWorkerRate:         0.12,
		QualificationCatchRate: 0.9,
		BaseErrorRate:          0.18,
		KnowledgeDiscount:      0.7,
	}
}

// worker is one simulated judge.
type worker struct {
	id        int
	spammer   bool
	knowledge [world.NumCategories]float64 // in [0,1]
}

// errorRate returns the worker's misjudgment probability for a category.
func (w *worker) errorRate(cfg Config, cat world.Category) float64 {
	e := cfg.BaseErrorRate * (1 - cfg.KnowledgeDiscount*w.knowledge[cat])
	if e < 0.01 {
		e = 0.01
	}
	return e
}

// Study is a reusable judge pool.
type Study struct {
	cfg     Config
	w       *world.World
	workers []worker
	rng     *xrand.RNG
	// stats
	judgmentsIssued int
	spammersCaught  int
}

// NewStudy recruits and qualifies the worker pool.
func NewStudy(w *world.World, cfg Config) *Study {
	if cfg.NumWorkers <= 0 {
		cfg.NumWorkers = 64
	}
	if cfg.JudgesPerExpert <= 0 {
		cfg.JudgesPerExpert = 3
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 6
	}
	rng := xrand.New(cfg.Seed)
	s := &Study{cfg: cfg, w: w, rng: rng}
	for i := 0; i < cfg.NumWorkers; i++ {
		wk := worker{id: i, spammer: rng.Bool(cfg.SpamWorkerRate)}
		for c := range wk.knowledge {
			wk.knowledge[c] = rng.Float64()
		}
		if wk.spammer && rng.Bool(cfg.QualificationCatchRate) {
			// Failed the trivial preliminary questions: not recruited.
			s.spammersCaught++
			continue
		}
		s.workers = append(s.workers, wk)
	}
	if len(s.workers) == 0 {
		// Degenerate config: keep one honest worker so judging proceeds.
		s.workers = append(s.workers, worker{id: 0})
	}
	return s
}

// SpammersCaught reports how many workers the qualification filter
// excluded.
func (s *Study) SpammersCaught() int { return s.spammersCaught }

// JudgmentsIssued reports the total number of individual votes cast.
func (s *Study) JudgmentsIssued() int { return s.judgmentsIssued }

// Judgment is the majority outcome for one candidate.
type Judgment struct {
	User world.UserID
	// Relevant is true unless a majority marked the account non-expert.
	Relevant bool
	// Truth is the ground-truth relevance (for calibration analyses;
	// the paper could not observe this).
	Truth bool
	// Votes records each worker's verdict (true = relevant).
	Votes []bool
}

// JudgeCandidates runs the full protocol for one query's interleaved
// result list: chunking, order randomization, three votes per candidate
// from distinct workers, majority aggregation.
func (s *Study) JudgeCandidates(topic world.TopicID, users []world.UserID) []Judgment {
	out := make([]Judgment, len(users))
	cat := s.w.Topic(topic).Category

	// Randomize presentation order (position-bias control), then chunk.
	order := s.rng.Perm(len(users))
	var chunks [][]int
	for start := 0; start < len(order); start += s.cfg.ChunkSize {
		end := start + s.cfg.ChunkSize
		if end > len(order) {
			end = len(order)
		}
		chunks = append(chunks, order[start:end])
	}

	for _, chunk := range chunks {
		for _, idx := range chunk {
			u := users[idx]
			truth := s.w.IsRelevantExpert(u, topic)
			j := Judgment{User: u, Truth: truth}
			picked := s.pickWorkers(s.cfg.JudgesPerExpert)
			for _, wk := range picked {
				j.Votes = append(j.Votes, s.vote(wk, truth, cat))
				s.judgmentsIssued++
			}
			yes := 0
			for _, v := range j.Votes {
				if v {
					yes++
				}
			}
			j.Relevant = yes*2 >= len(j.Votes) // ties favour the account
			out[idx] = j
		}
	}
	return out
}

// pickWorkers selects k distinct workers uniformly.
func (s *Study) pickWorkers(k int) []*worker {
	if k > len(s.workers) {
		k = len(s.workers)
	}
	idx := s.rng.Perm(len(s.workers))[:k]
	out := make([]*worker, k)
	for i, id := range idx {
		out[i] = &s.workers[id]
	}
	return out
}

// vote returns one worker's verdict given the ground truth.
func (s *Study) vote(wk *worker, truth bool, cat world.Category) bool {
	if wk.spammer {
		// Survived qualification but answers with a coin flip.
		return s.rng.Bool(0.5)
	}
	if s.rng.Bool(wk.errorRate(s.cfg, cat)) {
		return !truth
	}
	return truth
}

// Impurity is the proportion of judged candidates marked non-relevant —
// the y-axis of Figure 10.
func Impurity(judgments []Judgment) float64 {
	if len(judgments) == 0 {
		return 0
	}
	bad := 0
	for _, j := range judgments {
		if !j.Relevant {
			bad++
		}
	}
	return float64(bad) / float64(len(judgments))
}

// TruthImpurity is the ground-truth proportion of non-relevant
// candidates, available only because the world is synthetic.
func TruthImpurity(judgments []Judgment) float64 {
	if len(judgments) == 0 {
		return 0
	}
	bad := 0
	for _, j := range judgments {
		if !j.Truth {
			bad++
		}
	}
	return float64(bad) / float64(len(judgments))
}

// AgreementRate reports how often the majority verdict matches ground
// truth — a calibration statistic for the simulated crowd.
func AgreementRate(judgments []Judgment) float64 {
	if len(judgments) == 0 {
		return 1
	}
	agree := 0
	for _, j := range judgments {
		if j.Relevant == j.Truth {
			agree++
		}
	}
	return float64(agree) / float64(len(judgments))
}

// Interleave merges two ranked lists alternately (a first), skipping
// duplicates, as the paper interleaves the two algorithms' results
// before judging.
func Interleave[T comparable](a, b []T) []T {
	seen := map[T]bool{}
	out := make([]T, 0, len(a)+len(b))
	for i := 0; i < len(a) || i < len(b); i++ {
		if i < len(a) && !seen[a[i]] {
			seen[a[i]] = true
			out = append(out, a[i])
		}
		if i < len(b) && !seen[b[i]] {
			seen[b[i]] = true
			out = append(out, b[i])
		}
	}
	return out
}

// String renders a judgment compactly for logs.
func (j Judgment) String() string {
	return fmt.Sprintf("user=%d relevant=%v truth=%v votes=%v", j.User, j.Relevant, j.Truth, j.Votes)
}
