package ingest

import (
	"sort"
	"sync"

	"repro/internal/microblog"
	"repro/internal/textutil"
	"repro/internal/world"
)

// Snapshot is one epoch-tagged immutable view of the stream: the base
// corpus, the sealed segments and a frozen prefix of the active tail.
// It satisfies expertise.Source, so the ranking path runs against it
// exactly as it runs against a frozen corpus. All methods are safe for
// concurrent use; a snapshot never changes after publication.
//
// Tweet ids are global: [0, base.NumTweets()) addresses the base, then
// each sealed segment's range, then the tail. Tweet(id).ID is the
// segment-local id, not the global one.
type Snapshot struct {
	epoch     uint64
	base      *microblog.Corpus
	segs      []*segment
	tail      []microblog.Tweet
	tailStart microblog.TweetID

	// The tail index and tail stat deltas are built lazily on first
	// use: publishing stays O(segments) — a pointer swap plus a small
	// slice copy — and only snapshots that actually serve a query pay
	// the O(tail) indexing cost, once.
	once      sync.Once
	tailIdx   map[string][]microblog.TweetID
	tailStats map[world.UserID]userDelta
}

// userDelta is the active tail's contribution to one user's feature
// denominators.
type userDelta struct{ tweets, mentions, retweets int }

// Epoch identifies this view; it increases with every publish.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumTweets returns the number of posts visible in this view.
func (s *Snapshot) NumTweets() int { return int(s.tailStart) + len(s.tail) }

// NumSegments returns the sealed-segment count of this view.
func (s *Snapshot) NumSegments() int { return len(s.segs) }

// World returns the generating world.
func (s *Snapshot) World() *world.World { return s.base.World() }

// NumUsers returns the number of users in the generating world.
func (s *Snapshot) NumUsers() int { return s.base.NumUsers() }

// Tweet returns the post with the given global id. The returned
// tweet's ID field is segment-local.
func (s *Snapshot) Tweet(id microblog.TweetID) *microblog.Tweet {
	if int(id) < s.base.NumTweets() {
		return s.base.Tweet(id)
	}
	if id >= s.tailStart {
		return &s.tail[id-s.tailStart]
	}
	// Find the last segment starting at or before id.
	n := sort.Search(len(s.segs), func(j int) bool { return s.segs[j].start > id })
	sg := s.segs[n-1]
	return sg.tweet(id - sg.start)
}

// ensureTail builds the tail's term index and per-user deltas once.
func (s *Snapshot) ensureTail() {
	s.once.Do(func() {
		idx := make(map[string][]microblog.TweetID)
		stats := make(map[world.UserID]userDelta)
		for j := range s.tail {
			tw := &s.tail[j]
			gid := s.tailStart + microblog.TweetID(j)
			seen := map[string]bool{}
			for _, tok := range tw.Terms {
				if !seen[tok] {
					seen[tok] = true
					idx[tok] = append(idx[tok], gid)
				}
			}
			d := stats[tw.Author]
			d.tweets++
			d.retweets += tw.RetweetCount
			stats[tw.Author] = d
			for _, m := range tw.Mentions {
				dm := stats[m]
				dm.mentions++
				stats[m] = dm
			}
		}
		s.tailIdx = idx
		s.tailStats = stats
	})
}

// NumTweetsBy returns how many visible posts the user authored, summed
// across base, sealed segments and the frozen tail.
func (s *Snapshot) NumTweetsBy(u world.UserID) int {
	n := s.base.NumTweetsBy(u)
	for _, sg := range s.segs {
		n += sg.numTweetsBy(u)
	}
	if len(s.tail) > 0 {
		s.ensureTail()
		n += s.tailStats[u].tweets
	}
	return n
}

// NumMentionsOf returns how many visible posts mention the user.
func (s *Snapshot) NumMentionsOf(u world.UserID) int {
	n := s.base.NumMentionsOf(u)
	for _, sg := range s.segs {
		n += sg.numMentionsOf(u)
	}
	if len(s.tail) > 0 {
		s.ensureTail()
		n += s.tailStats[u].mentions
	}
	return n
}

// NumRetweetsOf returns the total retweets the user's visible posts
// received.
func (s *Snapshot) NumRetweetsOf(u world.UserID) int {
	n := s.base.NumRetweetsOf(u)
	for _, sg := range s.segs {
		n += sg.numRetweetsOf(u)
	}
	if len(s.tail) > 0 {
		s.ensureTail()
		n += s.tailStats[u].retweets
	}
	return n
}

// Match returns the global ids of all visible posts containing every
// token of the query, sorted ascending; nil means no match. The result
// is freshly allocated — hot paths should use MatchAppendScratch.
func (s *Snapshot) Match(query string) []microblog.TweetID {
	out, _ := s.MatchAppendScratch(query, nil, nil)
	if len(out) == 0 {
		return nil
	}
	return out
}

// MatchAppendScratch is the zero-copy matcher of the live path: it
// writes the matching global tweet ids into dst (reusing its capacity,
// discarding its contents) and returns the filled buffer. Matching
// runs per segment through the frozen zero-copy path and rebases
// segment-local ids by the segment's start offset; because segments
// partition the id space in order, the concatenation is globally
// sorted with no merge step. local is a scratch buffer for the
// per-segment results; both buffers are returned for reuse.
func (s *Snapshot) MatchAppendScratch(query string, dst, local []microblog.TweetID) (out, localOut []microblog.TweetID) {
	dst = s.base.MatchAppend(query, dst)
	for _, sg := range s.segs {
		local = sg.matchAppend(query, local)
		for _, id := range local {
			dst = append(dst, id+sg.start)
		}
	}
	if len(s.tail) > 0 {
		s.ensureTail()
		local = s.matchTailInto(query, local)
		dst = append(dst, local...)
	}
	return dst, local
}

// matchTailInto intersects the query's tokens over the lazily built
// tail index, writing global ids into buf (contents discarded).
func (s *Snapshot) matchTailInto(query string, buf []microblog.TweetID) []microblog.TweetID {
	tokens := textutil.Tokenize(query)
	if len(tokens) == 0 {
		return buf[:0]
	}
	if len(tokens) == 1 {
		return append(buf[:0], s.tailIdx[tokens[0]]...)
	}
	postings := make([][]microblog.TweetID, len(tokens))
	for i, tok := range tokens {
		p, ok := s.tailIdx[tok]
		if !ok {
			return buf[:0]
		}
		postings[i] = p
	}
	sort.Slice(postings, func(i, j int) bool { return len(postings[i]) < len(postings[j]) })
	buf = microblog.IntersectInto(buf, postings[0], postings[1])
	for _, p := range postings[2:] {
		if len(buf) == 0 {
			return buf
		}
		buf = microblog.IntersectInto(buf, buf, p)
	}
	return buf
}
