package ingest_test

import (
	"fmt"

	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/world"
)

// ExampleIndex_ingest shows the write-then-read contract of the
// streaming index: every Ingest publishes a fresh epoch-tagged
// snapshot, and a snapshot answers zero-copy matches over base plus
// everything ingested before it was acquired.
func ExampleIndex_ingest() {
	w := world.Build(world.TinyConfig())
	base := microblog.BuildCorpus(w, []microblog.Post{
		{Author: 0, Text: "shipping a go generics tutorial"},
	})
	idx := ingest.New(base, ingest.DefaultConfig())
	defer idx.Close()

	idx.Ingest(microblog.Post{Author: 1, Text: "go generics deep dive"})
	idx.Ingest(microblog.Post{Author: 2, Text: "unrelated lunch post"})

	snap := idx.Snapshot()
	fmt.Println("tweets:", snap.NumTweets())
	fmt.Println("matches:", len(snap.Match("generics")))
	fmt.Println("epoch:", snap.Epoch())

	// A snapshot is immutable: ingesting more does not change it, only
	// later snapshots see the new post.
	idx.Ingest(microblog.Post{Author: 1, Text: "generics part two"})
	fmt.Println("old still:", len(snap.Match("generics")), "new:", len(idx.Snapshot().Match("generics")))
	// Output:
	// tweets: 3
	// matches: 2
	// epoch: 3
	// old still: 2 new: 3
}
