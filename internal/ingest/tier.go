// The storage tier of the streaming index. A sealed segment lives in
// exactly one of two tiers: in-heap (corpus-backed, the only tier
// before PR 10) or on-disk (an mmap-backed diskseg.Segment in the
// compact compressed format). The tier methods below are the single
// seam the snapshot read path and the compactor go through, so neither
// ever branches on tier anywhere else — which is what keeps the
// equivalence spine one property: a quiesced index ranks bit-identical
// to a cold rebuild regardless of where its segments live.
//
// Tiering policy. When Config.SpillDir is set, the background
// compactor rewrites any in-heap sealed segment holding at least
// Config.SpillThreshold posts into the on-disk format (spillOnce), and
// every compaction merge whose result crosses the same threshold
// writes its output directly to disk — compaction becomes a
// disk-format rewrite, and a long-running index converges to a handful
// of large cold segments on disk plus small hot ones in heap.
//
// Pinning. Disk segments are refcounted (see diskseg): the live layout
// holds one reference, and every published snapshot that includes the
// segment takes another, released by a GC cleanup when the snapshot is
// retired. A compaction that drops a disk segment from the layout only
// releases the layout's reference — readers still running against
// older snapshots keep the map (and the file) alive, and the file is
// deleted when the last snapshot lets go. A spill that fails (disk
// full, I/O fault) marks the segment noSpill and leaves it in heap:
// degraded capacity, never a wrong ranking.
package ingest

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/diskseg"
	"repro/internal/microblog"
	"repro/internal/world"
)

// numTweets returns the segment's post count regardless of tier.
func (sg *segment) numTweets() int {
	if sg.disk != nil {
		return sg.disk.NumTweets()
	}
	return sg.corpus.NumTweets()
}

// matchAppend runs the zero-copy matcher of the segment's tier.
func (sg *segment) matchAppend(query string, buf []microblog.TweetID) []microblog.TweetID {
	if sg.disk != nil {
		return sg.disk.MatchAppend(query, buf)
	}
	return sg.corpus.MatchAppend(query, buf)
}

// tweet returns the post with the given segment-local id.
func (sg *segment) tweet(id microblog.TweetID) *microblog.Tweet {
	if sg.disk != nil {
		return sg.disk.Tweet(id)
	}
	return sg.corpus.Tweet(id)
}

// numTweetsBy returns the segment's authored-post count for one user.
func (sg *segment) numTweetsBy(u world.UserID) int {
	if sg.disk != nil {
		return sg.disk.NumTweetsBy(u)
	}
	return sg.corpus.NumTweetsBy(u)
}

// numMentionsOf returns the segment's mentions-received count.
func (sg *segment) numMentionsOf(u world.UserID) int {
	if sg.disk != nil {
		return sg.disk.NumMentionsOf(u)
	}
	return sg.corpus.NumMentionsOf(u)
}

// numRetweetsOf returns the segment's retweets-received count.
func (sg *segment) numRetweetsOf(u world.UserID) int {
	if sg.disk != nil {
		return sg.disk.NumRetweetsOf(u)
	}
	return sg.corpus.NumRetweetsOf(u)
}

// tweets materializes the segment's posts in id order (compaction).
func (sg *segment) tweets() []microblog.Tweet {
	if sg.disk != nil {
		return sg.disk.Tweets()
	}
	return sg.corpus.Tweets()
}

// releaseLayoutRef drops the live layout's reference when the segment
// leaves it. In-heap segments are plain garbage; disk segments may
// stay mapped for as long as older snapshots pin them.
func (sg *segment) releaseLayoutRef() {
	if sg.disk != nil {
		sg.disk.Release()
	}
}

// spillEnabled reports whether the disk tier is configured.
func (i *Index) spillEnabled() bool {
	return i.cfg.SpillDir != "" && i.cfg.SpillThreshold > 0
}

// writeSpill rewrites one immutable corpus into a fresh on-disk
// segment and opens it. The file is named by a monotonic sequence so a
// merged segment never collides with the (still pinned) segments it
// replaces; it is deleted when the last reference releases it.
func (i *Index) writeSpill(c *microblog.Corpus) (*diskseg.Segment, error) {
	i.mu.Lock()
	i.spillSeq++
	seq := i.spillSeq
	i.mu.Unlock()
	path := filepath.Join(i.cfg.SpillDir, fmt.Sprintf("seg-%06d-%d.esg", seq, c.NumTweets()))
	if err := diskseg.Write(path, c); err != nil {
		return nil, err
	}
	disk, err := diskseg.Open(path, diskseg.Options{
		IO:         i.cfg.SpillIO,
		BlockCache: i.cfg.SpillBlockCache,
		Obs:        i.cfg.Obs,
	})
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	disk.RemoveOnRelease()
	return disk, nil
}

// spillOnce rewrites the first eligible in-heap sealed segment to the
// disk tier and publishes the new layout. It reports whether it should
// be called again (it made progress, hit a fault it recorded, or lost
// a race and must re-scan). The expensive rewrite runs outside the
// lock — the segment is immutable — and the splice re-validates the
// layout before applying, exactly like compactOnce.
func (i *Index) spillOnce() bool {
	if !i.spillEnabled() {
		return false
	}
	i.mu.Lock()
	var target *segment
	for _, sg := range i.sealed {
		if sg.disk == nil && !sg.noSpill && sg.corpus.NumTweets() >= i.cfg.SpillThreshold {
			target = sg
			break
		}
	}
	i.mu.Unlock()
	if target == nil {
		return false
	}

	disk, err := i.writeSpill(target.corpus)

	i.mu.Lock()
	defer i.mu.Unlock()
	at := -1
	for j, sg := range i.sealed {
		if sg == target {
			at = j
			break
		}
	}
	if at < 0 {
		// A concurrent compaction absorbed the segment; this rewrite is
		// garbage. Drop it (the file goes with the last reference).
		if err == nil {
			disk.Release()
		}
		return true
	}
	if err != nil {
		// Spill faulted: stay in heap, never retry this segment (a
		// compaction absorbing it will try again at the merge), count
		// the fault. Results are unaffected — the heap tier keeps
		// serving exactly what the disk tier would have.
		target.noSpill = true
		i.spillErrors++
		i.obsSpillErrors.Inc()
		return true
	}
	i.sealed[at] = &segment{start: target.start, disk: disk}
	i.spills++
	i.obsSpills.Inc()
	i.publishLocked()
	return true
}
