// Disk-tier benchmarks, backing the BENCHMARKS.md claim that hot-term
// search over a spilled corpus stays within 2× of the in-heap
// BenchmarkLiveSearchESharp latency. Named Disk* (and not *LiveSearch*)
// so `make bench-disk` and `make bench-ingest` partition cleanly.
package ingest_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/microblog"
)

// benchDiskSearch measures steady-state e# query latency over a live
// index whose sealed segments were all rewritten to the disk tier.
func benchDiskSearch(b *testing.B, blockCache int) {
	p, _ := testPipeline(b)
	idx := ingest.New(p.Corpus, ingest.Config{
		SealThreshold: 512, CompactFanIn: 4,
		SpillDir: b.TempDir(), SpillThreshold: 512, SpillBlockCache: blockCache,
	})
	defer idx.Close()
	stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(19))
	for i := 0; i < 2048; i++ {
		idx.Ingest(stream.Next())
	}
	idx.Quiesce()
	if st := idx.Stats(); st.DiskSegments == 0 {
		b.Fatalf("benchmark index has no disk segments: %+v", st)
	}
	online := p.Cfg.Online
	online.MatchWorkers = 1
	live := core.NewLiveDetector(p.Collection, idx, online)
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, _ := live.Search("49ers")
		n = len(results)
	}
	b.ReportMetric(float64(n), "experts")
	b.ReportMetric(float64(idx.Stats().DiskSegments), "disksegs")
}

// BenchmarkDiskSearchHot is the headline disk-tier number: repeated
// hot-term searches against spilled segments, decoded blocks served
// from the LRU. Compare with BenchmarkLiveSearchESharp (all-heap).
func BenchmarkDiskSearchHot(b *testing.B) { benchDiskSearch(b, 0) }

// BenchmarkDiskSearchUncached disables the block cache, so every
// posting block decodes off the map on every query — the worst-case
// cold-read path.
func BenchmarkDiskSearchUncached(b *testing.B) { benchDiskSearch(b, -1) }

// BenchmarkDiskSpill measures the spill rewrite itself: encoding one
// sealed 512-post segment to the on-disk format, fsync-free, including
// the reopen. This is the background cost the compactor pays per
// segment that crosses the threshold.
func BenchmarkDiskSpill(b *testing.B) {
	p, _ := testPipeline(b)
	dir := b.TempDir()
	stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(23))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		idx := ingest.New(p.Corpus, ingest.Config{
			SealThreshold: 512, CompactFanIn: 4, DisableCompactor: true,
			SpillDir: dir, SpillThreshold: 512,
		})
		for j := 0; j < 512; j++ {
			idx.Ingest(stream.Next())
		}
		b.StartTimer()
		idx.Quiesce() // exactly one spill: 1 sealed segment ≥ threshold
		b.StopTimer()
		if st := idx.Stats(); st.Spills != 1 {
			b.Fatalf("expected exactly 1 spill, got %+v", st)
		}
		idx.Close()
		b.StartTimer()
	}
}
