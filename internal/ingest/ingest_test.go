package ingest_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/expertise"
	"repro/internal/ingest"
	"repro/internal/microblog"
)

var (
	pipeOnce sync.Once
	pipe     *core.Pipeline
	pipeSets []eval.QuerySet
	pipeErr  error
)

func testPipeline(t testing.TB) (*core.Pipeline, []eval.QuerySet) {
	t.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = core.BuildPipeline(core.TinyPipelineConfig())
		if pipeErr == nil {
			pipeSets = eval.BuildQuerySets(pipe.World, pipe.Log,
				eval.SetSizes{PerCategory: 25, Top: 60})
		}
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe, pipeSets
}

func streamPosts(p *core.Pipeline, seed uint64, n int) []microblog.Post {
	s := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(seed))
	posts := make([]microblog.Post, n)
	for i := range posts {
		posts[i] = s.Next()
	}
	return posts
}

func expertsIdentical(t *testing.T, label, query string, got, want []expertise.Expert) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s %q: %d results, cold reference has %d", label, query, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s %q rank %d:\n  live %+v\n  cold %+v", label, query, i, got[i], want[i])
		}
	}
}

// TestQuiescedEquivalence is the acceptance bar of the streaming
// subsystem: after ingesting posts T and quiescing, the live index must
// return bit-identical ranked experts to a cold core.Detector built
// over the same posts, for every query of every evaluation query set —
// on both the e# and the baseline path.
func TestQuiescedEquivalence(t *testing.T) {
	p, sets := testPipeline(t)
	posts := streamPosts(p, 41, 400)

	// A small threshold and fan-in force many seals and several
	// compactions, so the equivalence runs over a genuinely segmented
	// index, not a trivial tail.
	idx := ingest.New(p.Corpus, ingest.Config{SealThreshold: 32, CompactFanIn: 3})
	defer idx.Close()
	idx.IngestBatch(posts)
	idx.Quiesce()

	st := idx.Stats()
	if st.Seals == 0 || st.Compactions == 0 {
		t.Fatalf("test did not exercise sealing/compaction: %+v", st)
	}
	if st.NumTweets != p.Corpus.NumTweets()+len(posts) {
		t.Fatalf("index holds %d tweets, want %d", st.NumTweets, p.Corpus.NumTweets()+len(posts))
	}

	live := core.NewLiveDetector(p.Collection, idx, p.Cfg.Online)
	cold := core.NewDetector(p.Collection, p.Corpus.ExtendedWith(posts), p.Cfg.Online)

	total := 0
	for _, set := range sets {
		for _, q := range set.Queries {
			total++
			gotES, gotTrace := live.Search(q)
			wantES, wantTrace := cold.Search(q)
			expertsIdentical(t, "esharp", q, gotES, wantES)
			if gotTrace.MatchedTweets != wantTrace.MatchedTweets {
				t.Fatalf("esharp %q: live matched %d tweets, cold %d",
					q, gotTrace.MatchedTweets, wantTrace.MatchedTweets)
			}
			expertsIdentical(t, "baseline", q, live.SearchBaseline(q), cold.SearchBaseline(q))
		}
	}
	if total == 0 {
		t.Fatal("no queries in eval sets")
	}
}

// TestLiveParallelMatchEquivalence forces the per-term fan-out of the
// live search onto multiple workers and checks it against the
// sequential live path.
func TestLiveParallelMatchEquivalence(t *testing.T) {
	p, sets := testPipeline(t)
	idx := ingest.New(p.Corpus, ingest.Config{SealThreshold: 64, CompactFanIn: 3})
	defer idx.Close()
	idx.IngestBatch(streamPosts(p, 43, 300))
	idx.Quiesce()

	seqCfg := p.Cfg.Online
	seqCfg.MatchWorkers = 1
	parCfg := p.Cfg.Online
	parCfg.MatchWorkers = 4
	seq := core.NewLiveDetector(p.Collection, idx, seqCfg)
	par := core.NewLiveDetector(p.Collection, idx, parCfg)
	for _, set := range sets {
		for _, q := range set.Queries {
			want, _ := seq.Search(q)
			got, _ := par.Search(q)
			expertsIdentical(t, "parallel", q, got, want)
		}
	}
}

// TestSnapshotImmutableUnderWrites pins the snapshot contract: a view
// acquired before further ingestion keeps answering from its frozen
// prefix, while new views see the new posts and a higher epoch.
func TestSnapshotImmutableUnderWrites(t *testing.T) {
	p, _ := testPipeline(t)
	idx := ingest.New(p.Corpus, ingest.Config{SealThreshold: 16, CompactFanIn: 3})
	defer idx.Close()

	posts := streamPosts(p, 47, 120)
	idx.IngestBatch(posts[:40])
	old := idx.Snapshot()
	oldTweets := old.NumTweets()
	oldMatch := append([]microblog.TweetID(nil), old.Match("49ers")...)

	idx.IngestBatch(posts[40:])
	if got := old.NumTweets(); got != oldTweets {
		t.Fatalf("old snapshot grew from %d to %d tweets", oldTweets, got)
	}
	again := old.Match("49ers")
	if len(again) != len(oldMatch) {
		t.Fatalf("old snapshot match changed: %d vs %d ids", len(again), len(oldMatch))
	}
	for i := range oldMatch {
		if again[i] != oldMatch[i] {
			t.Fatalf("old snapshot match changed at %d", i)
		}
	}

	cur := idx.Snapshot()
	if cur.Epoch() <= old.Epoch() {
		t.Fatalf("epoch did not advance: %d -> %d", old.Epoch(), cur.Epoch())
	}
	if cur.NumTweets() != p.Corpus.NumTweets()+len(posts) {
		t.Fatalf("current snapshot has %d tweets, want %d",
			cur.NumTweets(), p.Corpus.NumTweets()+len(posts))
	}
}

// TestCompactionPreservesResults compares a fragmented index (compactor
// disabled) with a fully compacted one over identical posts: same
// matches, same ranked experts, fewer segments.
func TestCompactionPreservesResults(t *testing.T) {
	p, sets := testPipeline(t)
	posts := streamPosts(p, 53, 360)

	frag := ingest.New(p.Corpus, ingest.Config{SealThreshold: 24, CompactFanIn: 3, DisableCompactor: true})
	defer frag.Close()
	frag.IngestBatch(posts)

	comp := ingest.New(p.Corpus, ingest.Config{SealThreshold: 24, CompactFanIn: 3})
	defer comp.Close()
	comp.IngestBatch(posts)
	comp.Quiesce()

	fs, cs := frag.Snapshot(), comp.Snapshot()
	if fs.NumSegments() <= cs.NumSegments() {
		t.Fatalf("compaction did not reduce segments: %d vs %d", fs.NumSegments(), cs.NumSegments())
	}
	dFrag := core.NewLiveDetector(p.Collection, frag, p.Cfg.Online)
	dComp := core.NewLiveDetector(p.Collection, comp, p.Cfg.Online)
	for _, set := range sets {
		for _, q := range set.Queries {
			want, _ := dFrag.Search(q)
			got, _ := dComp.Search(q)
			expertsIdentical(t, "compacted", q, got, want)
		}
	}
}

// TestConcurrentIngestSearchCompaction is the -race hammer: concurrent
// ingesters, searchers and the background compactor share one index.
// Searchers check per-query invariants (monotonic epochs, monotonic
// tweet counts, result caps); afterwards the quiesced index must match
// a cold detector rebuilt from the index's own final content.
func TestConcurrentIngestSearchCompaction(t *testing.T) {
	p, _ := testPipeline(t)
	idx := ingest.New(p.Corpus, ingest.Config{SealThreshold: 16, CompactFanIn: 3})
	defer idx.Close()

	live := core.NewLiveDetector(p.Collection, idx, p.Cfg.Online)
	queries := []string{"49ers", "diabetes", "nfl", "dow futures", "coffee", "sarah palin", "zzz-none"}
	maxResults := p.Cfg.Online.Expertise.MaxResults

	const ingesters, perIngester = 2, 150
	const searchers, perSearcher = 4, 120
	var stop atomic.Bool
	errs := make(chan error, ingesters+searchers)
	var wg sync.WaitGroup

	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(uint64(100+g)))
			for i := 0; i < perIngester; i++ {
				idx.Ingest(stream.Next())
			}
		}(g)
	}
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var lastEpoch uint64
			var lastTweets int
			for i := 0; i < perSearcher && !stop.Load(); i++ {
				snap := idx.Snapshot()
				if snap.Epoch() < lastEpoch {
					errs <- errInvariant("epoch went backwards")
					stop.Store(true)
					return
				}
				if snap.NumTweets() < lastTweets {
					errs <- errInvariant("tweet count went backwards")
					stop.Store(true)
					return
				}
				lastEpoch, lastTweets = snap.Epoch(), snap.NumTweets()
				q := queries[(g+i)%len(queries)]
				var experts []expertise.Expert
				if i%3 == 0 {
					experts = live.SearchBaseline(q)
				} else {
					experts, _ = live.Search(q)
				}
				if maxResults > 0 && len(experts) > maxResults {
					errs <- errInvariant("result cap exceeded")
					stop.Store(true)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	idx.Quiesce()
	st := idx.Stats()
	if st.Ingested != ingesters*perIngester {
		t.Fatalf("ingested %d posts, want %d", st.Ingested, ingesters*perIngester)
	}

	// Structural self-check: a cold detector over the index's own final
	// content (base + every ingested tweet in global order) must agree
	// with the live path — postings, counters and ranking all intact
	// after the concurrent seals and compactions.
	snap := idx.Snapshot()
	all := append([]microblog.Tweet(nil), p.Corpus.Tweets()...)
	for gid := p.Corpus.NumTweets(); gid < snap.NumTweets(); gid++ {
		all = append(all, *snap.Tweet(microblog.TweetID(gid)))
	}
	cold := core.NewDetector(p.Collection, microblog.FromTweets(p.World, all), p.Cfg.Online)
	for _, q := range queries {
		got, _ := live.Search(q)
		want, _ := cold.Search(q)
		expertsIdentical(t, "post-hammer", q, got, want)
	}
}

type errInvariant string

func (e errInvariant) Error() string { return string(e) }
