// Package ingest is the live ingestion subsystem: a segmented
// streaming index that accepts microblog posts while concurrent
// searches keep running against immutable views.
//
// Architecture. Writes land in an append-only active segment under a
// short mutex. When the active segment reaches Config.SealThreshold it
// is sealed into an immutable segment backed by a microblog.Corpus
// (postings, per-user counters) built from the buffered tweets. A
// background compactor merges adjacent sealed segments of similar size
// into larger ones, LSM-style, so a long-running index converges to a
// handful of segments instead of an ever-growing chain. Readers never
// lock: they acquire an epoch-tagged *Snapshot — base corpus + sealed
// segments + a frozen view of the active tail — via a single atomic
// pointer load; every Ingest publishes a fresh snapshot with a single
// atomic pointer swap, so a query observes one consistent prefix of the
// stream for its whole lifetime.
//
// Per segment the existing zero-copy matching path is reused unchanged
// (Corpus.MatchAppend, galloping IntersectInto); segment-local ids are
// rebased to global ids by segment start offset, per-term candidate
// lists are concatenated in segment order (globally ascending), and the
// union across expansion terms runs through expertise.MergeTweets. The
// per-user feature denominators a ranking pass needs are summed across
// base, sealed segments and the frozen tail, which makes a quiesced
// live index bit-identical to a cold rebuild over the same posts — the
// correctness bar the equivalence tests enforce.
//
// One Index is one node. Scale-out stacks on top rather than inside:
// internal/shard runs N of these indexes behind an author-hash router,
// and core.ShardedLiveDetector scatter-gathers queries across their
// snapshots, composing the per-shard epochs into the vector epoch the
// serving cache invalidates on. See ARCHITECTURE.md at the repo root.
package ingest

import (
	"math/bits"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diskseg"
	"repro/internal/microblog"
	"repro/internal/obs"
	"repro/internal/world"
)

// Config tunes the streaming index.
type Config struct {
	// SealThreshold is the active-segment size that triggers sealing
	// into an immutable corpus-backed segment. Zero means 512.
	SealThreshold int
	// CompactFanIn is how many adjacent similar-sized sealed segments
	// the compactor merges at a time. Zero means 4.
	CompactFanIn int
	// DisableCompactor skips starting the background compactor (used by
	// tests and benchmarks that want to observe fragmented state). An
	// explicit Quiesce still compacts.
	DisableCompactor bool
	// SpillDir enables the disk tier: the compactor rewrites sealed
	// segments holding at least SpillThreshold posts into the compact
	// on-disk format (internal/diskseg) under this directory, and
	// compaction merges whose result crosses the threshold write
	// straight to disk. Empty keeps every segment in heap. The index
	// owns the directory exclusively: segment files left behind by a
	// previous run are removed at startup (there is no recovery — the
	// stream is rebuilt by replaying posts), so two indexes must not
	// share one SpillDir.
	SpillDir string
	// SpillThreshold is the minimum segment size (posts) the disk tier
	// accepts. Zero with SpillDir set means 4×SealThreshold.
	SpillThreshold int
	// SpillBlockCache caps each disk segment's LRU of hot decoded
	// blocks; see diskseg.Options.BlockCache. Zero means the diskseg
	// default.
	SpillBlockCache int
	// SpillIO overrides the disk tier's file/mmap layer — the fault
	// seam of the disk chaos suite. Nil means the real OS.
	SpillIO diskseg.IO
	// Obs, when non-nil, attaches the index to a metrics registry:
	// ingest latency (ingest_ns), accepted posts (ingest_posts), seal
	// and compaction counts (ingest_seals, ingest_compactions) and the
	// live sealed-segment gauge (ingest_segments). Nil keeps the write
	// path exactly as fast and allocation-free as un-instrumented.
	Obs *obs.Registry
}

// DefaultConfig returns the streaming defaults.
func DefaultConfig() Config { return Config{SealThreshold: 512, CompactFanIn: 4} }

// segment is one immutable slice of the stream, in exactly one
// storage tier: corpus-backed in heap, or an mmap-backed on-disk
// rewrite (see tier.go). Tweet ids inside either tier are
// segment-local; start rebases them to global.
type segment struct {
	start  microblog.TweetID
	corpus *microblog.Corpus // in-heap tier; nil when spilled
	disk   *diskseg.Segment  // disk tier; nil while in heap
	// noSpill pins a segment to the heap tier after a failed spill so
	// the compactor does not retry a faulting disk forever.
	noSpill bool
}

// Index is the writer side of the streaming index. Ingest is safe for
// concurrent use (writes serialize on a short internal lock);
// Snapshot, and everything reachable from a snapshot, is lock-free.
type Index struct {
	w    *world.World
	base *microblog.Corpus
	cfg  Config

	mu          sync.Mutex
	active      []microblog.Tweet // segment-local ids, global = activeStart+i
	activeStart microblog.TweetID
	sealed      []*segment
	epoch       uint64
	ingested    int64
	seals       int64
	compactions int64
	spills      int64
	spillErrors int64
	spillSeq    int64

	snap atomic.Pointer[Snapshot]
	// watch is the publish notification channel: closed and replaced on
	// publishLocked, so anyone holding the channel Watch returned is
	// woken exactly when a newer snapshot than the one they read becomes
	// visible. The pointer swap happens after snap.Store, which is what
	// makes the Watch-then-Epoch idiom race-free (see Watch). watched
	// makes the publish-side work lazy: the swap+close (one channel
	// allocation per publish) runs only when some Watch call armed it
	// since the last swap, so an index nobody watches — every in-process
	// deployment — publishes with zero notification overhead.
	watch   atomic.Pointer[chan struct{}]
	watched atomic.Bool

	compactReq chan struct{}
	done       chan struct{}
	closeOnce  sync.Once
	wg         sync.WaitGroup

	// Pre-registered observability handles (nil without Config.Obs —
	// every record below is then a nil-check no-op, and the latency
	// clock is not even read).
	obsIngestNS     *obs.Histogram
	obsPosts        *obs.Counter
	obsSeals        *obs.Counter
	obsCompactions  *obs.Counter
	obsSegments     *obs.Gauge
	obsDiskSegments *obs.Gauge
	obsSpills       *obs.Counter
	obsSpillErrors  *obs.Counter
}

// New wires a streaming index over a frozen base corpus (which may be
// empty but supplies the world) and starts the background compactor.
// Call Close to stop it.
func New(base *microblog.Corpus, cfg Config) *Index {
	if cfg.SealThreshold <= 0 {
		cfg.SealThreshold = 512
	}
	if cfg.CompactFanIn <= 1 {
		cfg.CompactFanIn = 4
	}
	if cfg.SpillDir != "" {
		if cfg.SpillThreshold <= 0 {
			cfg.SpillThreshold = 4 * cfg.SealThreshold
		}
		// A failure here surfaces on the first spill attempt as a
		// recorded spill error; the index keeps serving from heap.
		_ = os.MkdirAll(cfg.SpillDir, 0o755)
		// Stale segment files from a previous run are garbage: there is
		// no recovery path, so nothing will ever read them again.
		if ents, err := os.ReadDir(cfg.SpillDir); err == nil {
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".esg") {
					_ = os.Remove(filepath.Join(cfg.SpillDir, e.Name()))
				}
			}
		}
	}
	i := &Index{
		w:           base.World(),
		base:        base,
		cfg:         cfg,
		activeStart: microblog.TweetID(base.NumTweets()),
		compactReq:  make(chan struct{}, 1),
		done:        make(chan struct{}),
	}
	if cfg.Obs != nil {
		i.obsIngestNS = cfg.Obs.Histogram("ingest_ns")
		i.obsPosts = cfg.Obs.Counter("ingest_posts")
		i.obsSeals = cfg.Obs.Counter("ingest_seals")
		i.obsCompactions = cfg.Obs.Counter("ingest_compactions")
		i.obsSegments = cfg.Obs.Gauge("ingest_segments")
		i.obsDiskSegments = cfg.Obs.Gauge("disk_segments")
		i.obsSpills = cfg.Obs.Counter("ingest_spills")
		i.obsSpillErrors = cfg.Obs.Counter("ingest_spill_errors")
	}
	w0 := make(chan struct{})
	i.watch.Store(&w0)
	i.mu.Lock()
	i.publishLocked()
	i.mu.Unlock()
	if !cfg.DisableCompactor {
		i.wg.Add(1)
		go i.compactLoop()
	}
	return i
}

// Base returns the frozen corpus the stream extends.
func (i *Index) Base() *microblog.Corpus { return i.base }

// World returns the generating world.
func (i *Index) World() *world.World { return i.w }

// Ingest appends one post to the stream and publishes a fresh snapshot.
// It returns the post's global tweet id. Safe for concurrent use.
func (i *Index) Ingest(p microblog.Post) microblog.TweetID {
	var start time.Time
	if i.obsIngestNS != nil {
		start = time.Now()
	}
	tw := microblog.MakeTweet(p)
	i.mu.Lock()
	gid := i.activeStart + microblog.TweetID(len(i.active))
	// The stored id is segment-local so it survives sealing unchanged
	// (FromTweets reassigns ids to the position in the sealed batch).
	tw.ID = microblog.TweetID(len(i.active))
	i.active = append(i.active, tw)
	i.ingested++
	sealedNow := false
	if len(i.active) >= i.cfg.SealThreshold {
		i.sealLocked()
		sealedNow = true
	}
	i.publishLocked()
	i.mu.Unlock()
	if sealedNow {
		i.kickCompactor()
	}
	if i.obsIngestNS != nil {
		i.obsIngestNS.Observe(time.Since(start).Nanoseconds())
		i.obsPosts.Inc()
	}
	return gid
}

// IngestBatch ingests posts in order and returns the global id of the
// first one. The batch's ids are contiguous only with a single writer;
// concurrent ingesters interleave their batches (never the posts
// inside one). The whole batch is appended under one lock acquisition
// and published with one snapshot swap — sealing mid-batch as the
// threshold demands — so a K-post batch advances the epoch by exactly
// 1 instead of K: one serve-cache invalidation, one watcher wakeup,
// regardless of batch size.
func (i *Index) IngestBatch(posts []microblog.Post) microblog.TweetID {
	if len(posts) == 0 {
		return -1
	}
	var start time.Time
	if i.obsIngestNS != nil {
		start = time.Now()
	}
	// Render (truncate + tokenize) outside the lock; only the appends
	// and seals run inside it.
	tws := make([]microblog.Tweet, len(posts))
	for j := range posts {
		tws[j] = microblog.MakeTweet(posts[j])
	}
	i.mu.Lock()
	first := i.activeStart + microblog.TweetID(len(i.active))
	sealedNow := false
	for _, tw := range tws {
		tw.ID = microblog.TweetID(len(i.active))
		i.active = append(i.active, tw)
		i.ingested++
		if len(i.active) >= i.cfg.SealThreshold {
			i.sealLocked()
			sealedNow = true
		}
	}
	i.publishLocked()
	i.mu.Unlock()
	if sealedNow {
		i.kickCompactor()
	}
	if i.obsIngestNS != nil {
		i.obsIngestNS.Observe(time.Since(start).Nanoseconds())
		i.obsPosts.Add(int64(len(posts)))
	}
	return first
}

// Snapshot returns the current epoch-tagged immutable view. The
// returned snapshot stays valid (and frozen) forever; a query should
// acquire one snapshot and run entirely against it.
func (i *Index) Snapshot() *Snapshot { return i.snap.Load() }

// Epoch returns the epoch of the current snapshot.
func (i *Index) Epoch() uint64 { return i.snap.Load().epoch }

// Watch returns a channel that is closed when a snapshot newer than
// the current one is published. To wait without losing a wakeup, grab
// the channel first and read Epoch (or Snapshot) second: a publish
// racing the two reads either bumped the epoch you are about to read
// or will close the channel you already hold. Each publish retires the
// channel, so re-Watch after every wakeup.
//
// The channel is loaded before watched is armed: any channel this
// returns is either still current when the caller sleeps on it — in
// which case watched is already true and the next publish closes it —
// or it was retired by a racing publish, which means it is closed and
// the caller wakes immediately. Either way no wakeup is lost.
func (i *Index) Watch() <-chan struct{} {
	ch := *i.watch.Load()
	i.watched.Store(true)
	return ch
}

// sealLocked freezes the active segment into an immutable
// corpus-backed segment. Called with mu held; the build cost is bounded
// by SealThreshold, keeping the write stall short.
func (i *Index) sealLocked() {
	seg := &segment{start: i.activeStart, corpus: microblog.FromTweets(i.w, i.active)}
	i.sealed = append(i.sealed, seg)
	i.activeStart += microblog.TweetID(len(i.active))
	i.active = make([]microblog.Tweet, 0, i.cfg.SealThreshold)
	i.seals++
	i.obsSeals.Inc()
}

// publishLocked swaps in a fresh snapshot. The tail shares the active
// segment's backing array — safe because readers only touch indices
// below the frozen length and the atomic store orders the published
// elements before any reader's load.
func (i *Index) publishLocked() {
	i.epoch++
	segs := make([]*segment, len(i.sealed))
	copy(segs, i.sealed)
	snap := &Snapshot{
		epoch:     i.epoch,
		base:      i.base,
		segs:      segs,
		tail:      i.active[:len(i.active):len(i.active)],
		tailStart: i.activeStart,
	}
	// Pin the disk tier: the snapshot takes one reference per disk
	// segment, released by a GC cleanup when the snapshot is retired.
	// A compaction dropping the segment from the layout only releases
	// the layout's own reference, so a reader on this snapshot can
	// never see its map pulled out from under it.
	nDisk := 0
	for _, sg := range segs {
		if sg.disk != nil {
			nDisk++
		}
	}
	if nDisk > 0 {
		disks := make([]*diskseg.Segment, 0, nDisk)
		for _, sg := range segs {
			if sg.disk != nil {
				sg.disk.Retain()
				disks = append(disks, sg.disk)
			}
		}
		runtime.AddCleanup(snap, releaseDiskRefs, disks)
	}
	i.obsDiskSegments.Set(int64(nDisk))
	i.snap.Store(snap)
	// Wake watchers only after the new snapshot is visible, and replace
	// the channel before closing it so a watcher that re-Watches
	// immediately gets the next generation, not a closed channel. The
	// swap runs only when someone armed watched since the last one —
	// channels are retired exclusively by being closed here (swaps
	// serialize under mu), so a skipped publish leaves every handed-out
	// channel current and its holder covered by the next armed publish.
	if i.watched.Swap(false) {
		next := make(chan struct{})
		old := i.watch.Swap(&next)
		close(*old)
	}
	i.obsSegments.Set(int64(len(i.sealed)))
}

// kickCompactor nudges the background compactor without blocking.
func (i *Index) kickCompactor() {
	select {
	case i.compactReq <- struct{}{}:
	default:
	}
}

// compactLoop runs until Close, merging whenever a seal makes a run of
// similar-sized segments eligible.
func (i *Index) compactLoop() {
	defer i.wg.Done()
	for {
		select {
		case <-i.done:
			return
		case <-i.compactReq:
			for i.compactOnce() || i.spillOnce() {
			}
		}
	}
}

// releaseDiskRefs is the snapshot-retirement cleanup (a top-level
// function so the GC cleanup captures only the segment list).
func releaseDiskRefs(disks []*diskseg.Segment) {
	for _, d := range disks {
		d.Release()
	}
}

// tier buckets a segment size into a size class: segments of the same
// tier are candidates for merging, which gives LSM-style geometric
// growth and O(n log n) total compaction work. Both storage tiers
// participate — merging two disk segments is a disk-format rewrite.
func (i *Index) tier(seg *segment) int {
	return bits.Len(uint(seg.numTweets() / i.cfg.SealThreshold))
}

// pickRunLocked finds the first adjacent run of CompactFanIn
// same-tier sealed segments, returning its start index and a copy.
func (i *Index) pickRunLocked() (int, []*segment) {
	fanIn := i.cfg.CompactFanIn
	for a := 0; a+fanIn <= len(i.sealed); a++ {
		t := i.tier(i.sealed[a])
		ok := true
		for j := 1; j < fanIn; j++ {
			if i.tier(i.sealed[a+j]) != t {
				ok = false
				break
			}
		}
		if ok {
			return a, append([]*segment(nil), i.sealed[a:a+fanIn]...)
		}
	}
	return 0, nil
}

// compactOnce merges one eligible run and publishes the new layout. It
// reports whether it should be called again (it made progress, or lost
// a race with a concurrent compaction and must re-scan). The expensive
// re-index runs outside the lock — the run's segments are immutable —
// and the splice re-validates the layout before applying.
func (i *Index) compactOnce() bool {
	i.mu.Lock()
	a, run := i.pickRunLocked()
	if run == nil {
		i.mu.Unlock()
		return false
	}
	i.mu.Unlock()

	n := 0
	for _, sg := range run {
		n += sg.numTweets()
	}
	all := make([]microblog.Tweet, 0, n)
	for _, sg := range run {
		all = append(all, sg.tweets()...)
	}
	mergedCorpus := microblog.FromTweets(i.w, all)
	merged := &segment{start: run[0].start, corpus: mergedCorpus}
	// A merge whose result crosses the spill threshold goes straight to
	// the disk tier — compaction is the disk format's rewrite path. A
	// faulted spill falls back to the in-heap merge, results unchanged.
	if i.spillEnabled() && n >= i.cfg.SpillThreshold {
		if disk, err := i.writeSpill(mergedCorpus); err == nil {
			merged = &segment{start: run[0].start, disk: disk}
		} else {
			merged.noSpill = true
			i.mu.Lock()
			i.spillErrors++
			i.mu.Unlock()
			i.obsSpillErrors.Inc()
		}
	}

	i.mu.Lock()
	defer i.mu.Unlock()
	abort := a+len(run) > len(i.sealed)
	if !abort {
		for j, sg := range run {
			if i.sealed[a+j] != sg {
				abort = true // a concurrent compaction won; re-scan
				break
			}
		}
	}
	if abort {
		if merged.disk != nil {
			merged.disk.Release() // unreferenced rewrite; file goes too
		}
		return true
	}
	i.sealed = append(i.sealed[:a:a], append([]*segment{merged}, i.sealed[a+len(run):]...)...)
	i.compactions++
	i.obsCompactions.Inc()
	if merged.disk != nil {
		i.spills++
		i.obsSpills.Inc()
	}
	i.publishLocked()
	// Only now — with the new layout published and pinned by its
	// snapshot — drop the layout references of the replaced segments.
	// Older snapshots still holding them keep their maps alive.
	for _, sg := range run {
		sg.releaseLayoutRef()
	}
	return true
}

// Quiesce synchronously drains every eligible compaction and — when
// the disk tier is configured — every eligible spill. Afterwards,
// absent concurrent ingest, the segment layout is stable and every
// segment past the spill threshold lives on disk, which the
// equivalence tests rely on. (A concurrent background merge may still
// publish afterwards; merged segments index identical content, so
// query results are unaffected.)
func (i *Index) Quiesce() {
	for i.compactOnce() || i.spillOnce() {
	}
}

// Close stops the background compactor. The index remains readable and
// writable (no further compaction happens).
func (i *Index) Close() {
	i.closeOnce.Do(func() { close(i.done) })
	i.wg.Wait()
}

// IndexStats is a snapshot of the writer-side counters.
type IndexStats struct {
	// Epoch is the current snapshot epoch (one publish per ingest,
	// seal or compaction).
	Epoch uint64
	// NumTweets counts base plus ingested tweets.
	NumTweets int
	// Ingested counts live posts accepted.
	Ingested int64
	// Segments is the current sealed-segment count; DiskSegments how
	// many of those live in the disk tier; ActiveLen the unsealed tail
	// length.
	Segments     int
	DiskSegments int
	ActiveLen    int
	// Seals and Compactions count background structural events; Spills
	// counts segments rewritten to the disk tier and SpillErrors the
	// rewrites that faulted (the segment stayed in heap).
	Seals, Compactions  int64
	Spills, SpillErrors int64
}

// Stats snapshots the writer-side counters.
func (i *Index) Stats() IndexStats {
	i.mu.Lock()
	defer i.mu.Unlock()
	nDisk := 0
	for _, sg := range i.sealed {
		if sg.disk != nil {
			nDisk++
		}
	}
	return IndexStats{
		Epoch:        i.epoch,
		NumTweets:    int(i.activeStart) + len(i.active),
		Ingested:     i.ingested,
		Segments:     len(i.sealed),
		DiskSegments: nDisk,
		ActiveLen:    len(i.active),
		Seals:        i.seals,
		Compactions:  i.compactions,
		Spills:       i.spills,
		SpillErrors:  i.spillErrors,
	}
}
