package ingest_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/serve"
)

// TestIngestBatchSingleEpoch pins the batch-publish contract: a K-post
// batch — even one spanning several seals — advances the epoch by
// exactly 1, and therefore costs the serving cache exactly one
// invalidation, not K. (The compactor is disabled so no background
// publish can interleave with the measurement.)
func TestIngestBatchSingleEpoch(t *testing.T) {
	p, _ := testPipeline(t)
	idx := ingest.New(p.Corpus, ingest.Config{SealThreshold: 16, CompactFanIn: 3, DisableCompactor: true})
	defer idx.Close()
	live := core.NewLiveDetector(p.Collection, idx, p.Cfg.Online)
	srv := serve.New(live, serve.Config{CacheSize: 64})

	srv.Search("49ers")
	if st := srv.Stats(); st.CacheEntries != 1 {
		t.Fatalf("warmup cached %d entries, want 1", st.CacheEntries)
	}

	before := idx.Epoch()
	idx.IngestBatch(streamPosts(p, 83, 100)) // spans 6 seals at threshold 16
	if st := idx.Stats(); st.Seals < 2 {
		t.Fatalf("batch did not span multiple seals: %+v", st)
	}
	if after := idx.Epoch(); after != before+1 {
		t.Fatalf("one batch advanced epoch by %d, want 1", after-before)
	}

	srv.Search("49ers")
	if st := srv.Stats(); st.Invalidations != 1 {
		t.Fatalf("one batch cost the cache %d invalidations, want 1", st.Invalidations)
	}
}

// TestSnapshotTweetAcrossLayouts pins Snapshot.Tweet's binary search
// over every layout the segment machinery can produce — fragmented,
// compacted, and spilled to disk. The exhaustive sweep covers every
// boundary the search can get wrong: the base-corpus edge, the first
// and last global id of each sealed segment (including post-compaction
// rebased starts), and the active tail.
func TestSnapshotTweetAcrossLayouts(t *testing.T) {
	p, _ := testPipeline(t)
	posts := streamPosts(p, 89, 200)
	cold := p.Corpus.ExtendedWith(posts)

	for _, tc := range []struct {
		name string
		cfg  ingest.Config
	}{
		{"fragmented", ingest.Config{SealThreshold: 24, CompactFanIn: 3, DisableCompactor: true}},
		{"compacted", ingest.Config{SealThreshold: 24, CompactFanIn: 3}},
		{"spilled", ingest.Config{SealThreshold: 24, CompactFanIn: 3,
			SpillDir: t.TempDir(), SpillThreshold: 48}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			idx := ingest.New(p.Corpus, tc.cfg)
			defer idx.Close()
			// 200 posts at threshold 24 leave a non-empty tail (200 = 8*24
			// + 8), so the sweep crosses base, segments and tail.
			idx.IngestBatch(posts)
			idx.Quiesce()
			snap := idx.Snapshot()
			if tc.name == "compacted" || tc.name == "spilled" {
				if idx.Stats().Compactions == 0 {
					t.Fatalf("layout %q saw no compaction", tc.name)
				}
			}
			if tc.name == "spilled" && idx.Stats().DiskSegments == 0 {
				t.Fatal("layout \"spilled\" has no disk segments")
			}
			if snap.NumTweets() != cold.NumTweets() {
				t.Fatalf("snapshot has %d tweets, cold %d", snap.NumTweets(), cold.NumTweets())
			}
			for gid := 0; gid < snap.NumTweets(); gid++ {
				got := snap.Tweet(microblog.TweetID(gid))
				want := cold.Tweet(microblog.TweetID(gid))
				// The ID field is segment-local by contract; every other
				// field must match the cold rebuild at the same global id.
				if got.Author != want.Author || got.Text != want.Text ||
					got.RetweetCount != want.RetweetCount || got.Topic != want.Topic {
					t.Fatalf("tweet %d:\n  live %+v\n  cold %+v", gid, got, want)
				}
			}
		})
	}
}
