package ingest_test

import (
	"testing"

	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/obs"
)

// TestIngestObsAccounting pins the write-path instrumentation: with a
// registry wired, posts, seals, compactions and segment levels surface
// as rows and the ingest latency histogram records once per post —
// without changing what the index serves.
func TestIngestObsAccounting(t *testing.T) {
	p, _ := testPipeline(t)
	reg := obs.NewRegistry()
	idx := ingest.New(p.Corpus, ingest.Config{SealThreshold: 8, CompactFanIn: 2, Obs: reg})
	defer idx.Close()

	const posts = 40 // 5 seals at threshold 8, with fan-in 2 compactions behind them
	stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(11))
	for i := 0; i < posts; i++ {
		idx.Ingest(stream.Next())
	}
	idx.Quiesce()

	rows := map[string]int64{}
	for _, m := range reg.Snapshot() {
		rows[m.Name] = m.Value
	}
	if rows["ingest_posts"] != posts {
		t.Errorf("ingest_posts = %d, want %d", rows["ingest_posts"], posts)
	}
	if rows["ingest_ns_count"] != posts {
		t.Errorf("ingest_ns_count = %d, want %d", rows["ingest_ns_count"], posts)
	}
	if rows["ingest_seals"] < 4 {
		t.Errorf("ingest_seals = %d, want >= 4 at threshold 8", rows["ingest_seals"])
	}
	if rows["ingest_compactions"] < 1 {
		t.Errorf("ingest_compactions = %d, want >= 1 at fan-in 2", rows["ingest_compactions"])
	}
	st := idx.Stats()
	if rows["ingest_segments"] != int64(st.Segments) {
		t.Errorf("ingest_segments = %d, Stats().Segments = %d", rows["ingest_segments"], st.Segments)
	}
	if st.Ingested != posts {
		t.Errorf("Stats().Ingested = %d, want %d", st.Ingested, posts)
	}
}
