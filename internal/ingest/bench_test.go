// Benchmarks for the streaming subsystem: write-path throughput
// (BenchmarkIngest*) and read-path latency over a live, segmented
// index (BenchmarkLiveSearch*), compared against the frozen-index
// OnlineSearch* numbers in the repo root. CHANGES.md records the
// per-PR measurements.
package ingest_test

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/microblog"
)

// benchIndex returns a live index over the shared tiny pipeline with
// n posts already ingested and — unless the config opts out of
// compaction to keep the index fragmented — compaction drained.
func benchIndex(b *testing.B, n int, cfg ingest.Config) (*core.Pipeline, *ingest.Index) {
	p, _ := testPipeline(b)
	idx := ingest.New(p.Corpus, cfg)
	stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(11))
	for i := 0; i < n; i++ {
		idx.Ingest(stream.Next())
	}
	if !cfg.DisableCompactor {
		idx.Quiesce()
	}
	return p, idx
}

// BenchmarkIngest measures single-writer throughput through the full
// path: tokenize, append, seal at threshold, publish a snapshot per
// post (amortized sealing and compaction included).
func BenchmarkIngest(b *testing.B) {
	p, _ := testPipeline(b)
	idx := ingest.New(p.Corpus, ingest.DefaultConfig())
	defer idx.Close()
	stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(13))
	posts := make([]microblog.Post, 4096)
	for i := range posts {
		posts[i] = stream.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Ingest(posts[i%len(posts)])
	}
}

// BenchmarkIngestParallel measures contended writer throughput: the
// write lock serializes appends, so this bounds how much concurrent
// producers lose to contention.
func BenchmarkIngestParallel(b *testing.B) {
	p, _ := testPipeline(b)
	idx := ingest.New(p.Corpus, ingest.DefaultConfig())
	defer idx.Close()
	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(100+seed.Add(1)))
		for pb.Next() {
			idx.Ingest(stream.Next())
		}
	})
}

// benchLiveSearch measures steady-state query latency over a live
// index holding the base corpus plus 2048 streamed posts.
func benchLiveSearch(b *testing.B, query string, baseline bool, cfg ingest.Config) {
	p, idx := benchIndex(b, 2048, cfg)
	defer idx.Close()
	online := p.Cfg.Online
	online.MatchWorkers = 1
	live := core.NewLiveDetector(p.Collection, idx, online)
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if baseline {
			n = len(live.SearchBaseline(query))
		} else {
			results, _ := live.Search(query)
			n = len(results)
		}
	}
	b.ReportMetric(float64(n), "experts")
	b.ReportMetric(float64(idx.Snapshot().NumSegments()), "segments")
}

func BenchmarkLiveSearchESharp(b *testing.B) {
	benchLiveSearch(b, "49ers", false, ingest.DefaultConfig())
}

func BenchmarkLiveSearchBaseline(b *testing.B) {
	benchLiveSearch(b, "49ers", true, ingest.DefaultConfig())
}

// BenchmarkLiveSearchFragmented holds the same content in many small
// never-compacted segments — the read-path cost compaction removes.
func BenchmarkLiveSearchFragmented(b *testing.B) {
	benchLiveSearch(b, "49ers", false,
		ingest.Config{SealThreshold: 64, CompactFanIn: 4, DisableCompactor: true})
}

// BenchmarkLiveSearchUnderIngest measures query latency under write
// churn: every iteration ingests one post before searching, so every
// query observes a brand-new snapshot and pays the cold-tail lazy
// indexing a frozen-snapshot benchmark never sees. The write is paced
// with the reads — an unthrottled background writer on this single-core
// container would grow the index without bound and starve the
// searches — so each op is one ingest (~4µs) plus one cold-view search.
func BenchmarkLiveSearchUnderIngest(b *testing.B) {
	p, idx := benchIndex(b, 1024, ingest.DefaultConfig())
	defer idx.Close()
	online := p.Cfg.Online
	online.MatchWorkers = 1
	live := core.NewLiveDetector(p.Collection, idx, online)
	stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(17))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Ingest(stream.Next())
		live.Search("49ers")
	}
}
