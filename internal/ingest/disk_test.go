package ingest_test

// The disk-tier suite: the acceptance bar of PR 10. A spilled index
// must be indistinguishable from an all-heap one except for where the
// bytes live — bit-identical rankings, snapshots that keep answering
// after compaction drops their segments, clean degradation to heap
// under storage faults, and race-cleanliness with the spiller in the
// loop.

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ingest"
	"repro/internal/microblog"
)

// segFiles counts the segment files currently in a spill directory.
func segFiles(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

// TestDiskQuiescedEquivalence is the acceptance bar of the disk tier:
// after ingesting posts and quiescing, an index that spilled segments
// to disk must return bit-identical ranked experts and matched counts
// to an all-heap index over the same posts AND to a cold detector
// rebuilt from scratch — for every query of every evaluation query
// set, on both the e# and the baseline path.
func TestDiskQuiescedEquivalence(t *testing.T) {
	p, sets := testPipeline(t)
	posts := streamPosts(p, 67, 400)

	heap := ingest.New(p.Corpus, ingest.Config{SealThreshold: 32, CompactFanIn: 3})
	defer heap.Close()
	heap.IngestBatch(posts)
	heap.Quiesce()

	disk := ingest.New(p.Corpus, ingest.Config{
		SealThreshold: 32, CompactFanIn: 3,
		SpillDir: t.TempDir(), SpillThreshold: 64,
	})
	defer disk.Close()
	disk.IngestBatch(posts)
	disk.Quiesce()

	st := disk.Stats()
	if st.Spills == 0 || st.DiskSegments == 0 {
		t.Fatalf("test did not exercise the disk tier: %+v", st)
	}
	if st.NumTweets != p.Corpus.NumTweets()+len(posts) {
		t.Fatalf("index holds %d tweets, want %d", st.NumTweets, p.Corpus.NumTweets()+len(posts))
	}

	liveDisk := core.NewLiveDetector(p.Collection, disk, p.Cfg.Online)
	liveHeap := core.NewLiveDetector(p.Collection, heap, p.Cfg.Online)
	cold := core.NewDetector(p.Collection, p.Corpus.ExtendedWith(posts), p.Cfg.Online)

	total := 0
	for _, set := range sets {
		for _, q := range set.Queries {
			total++
			gotES, gotTrace := liveDisk.Search(q)
			heapES, heapTrace := liveHeap.Search(q)
			coldES, coldTrace := cold.Search(q)
			expertsIdentical(t, "disk-vs-heap", q, gotES, heapES)
			expertsIdentical(t, "disk-vs-cold", q, gotES, coldES)
			if gotTrace.MatchedTweets != heapTrace.MatchedTweets ||
				gotTrace.MatchedTweets != coldTrace.MatchedTweets {
				t.Fatalf("%q: matched %d tweets, heap %d, cold %d",
					q, gotTrace.MatchedTweets, heapTrace.MatchedTweets, coldTrace.MatchedTweets)
			}
			expertsIdentical(t, "disk-baseline", q, liveDisk.SearchBaseline(q), cold.SearchBaseline(q))
		}
	}
	if total == 0 {
		t.Fatal("no queries in eval sets")
	}
}

// TestDiskSnapshotPinning pins the unmap-under-reader rule: a snapshot
// acquired before a compaction replaces its disk segments keeps
// answering from them, the replaced file stays on disk for as long as
// any snapshot pins it, and it is deleted once the last reference is
// collected.
func TestDiskSnapshotPinning(t *testing.T) {
	p, _ := testPipeline(t)
	dir := t.TempDir()
	idx := ingest.New(p.Corpus, ingest.Config{
		SealThreshold: 16, CompactFanIn: 2, DisableCompactor: true,
		SpillDir: dir, SpillThreshold: 16,
	})
	defer idx.Close()

	posts := streamPosts(p, 71, 32)
	idx.IngestBatch(posts[:16])
	idx.Quiesce() // seals then spills segment 1
	if st := idx.Stats(); st.DiskSegments != 1 {
		t.Fatalf("after first quiesce: %+v, want 1 disk segment", st)
	}
	old := idx.Snapshot()
	oldMatch := append([]microblog.TweetID(nil), old.Match("49ers")...)

	idx.IngestBatch(posts[16:])
	idx.Quiesce() // merges disk segment 1 + heap segment 2 straight to disk
	st := idx.Stats()
	if st.Compactions == 0 || st.DiskSegments != 1 {
		t.Fatalf("after second quiesce: %+v, want a compaction into 1 disk segment", st)
	}

	// The old snapshot's segment left the layout, but the snapshot pins
	// it: identical answers, file still present (alongside the merged
	// segment's).
	again := old.Match("49ers")
	if len(again) != len(oldMatch) {
		t.Fatalf("pinned snapshot match changed: %d vs %d ids", len(again), len(oldMatch))
	}
	for i := range oldMatch {
		if again[i] != oldMatch[i] {
			t.Fatalf("pinned snapshot match changed at %d", i)
		}
	}
	if n := segFiles(t, dir); n != 2 {
		t.Fatalf("%d segment files while old snapshot pinned, want 2", n)
	}

	// Retire the snapshot: its GC cleanup releases the pin and the
	// replaced file goes away, leaving only the live merged segment.
	old, oldMatch, again = nil, nil, nil
	deadline := time.Now().Add(10 * time.Second)
	for segFiles(t, dir) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("%d segment files after snapshot retirement, want 1", segFiles(t, dir))
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDiskSpillFault drives every storage fault the chaos harness can
// inject through the spill path: the index must record the fault, pin
// the segment to heap, keep the spill directory free of half-written
// files — and rank exactly as if the disk tier did not exist.
func TestDiskSpillFault(t *testing.T) {
	p, sets := testPipeline(t)
	posts := streamPosts(p, 73, 200)

	heap := ingest.New(p.Corpus, ingest.Config{SealThreshold: 32, CompactFanIn: 3})
	defer heap.Close()
	heap.IngestBatch(posts)
	heap.Quiesce()
	liveHeap := core.NewLiveDetector(p.Collection, heap, p.Cfg.Online)

	for _, tc := range []struct {
		name string
		arm  func(*fault.DiskIO)
	}{
		{"open-refused", func(d *fault.DiskIO) { d.FailOpens(nil) }},
		{"mmap-refused", func(d *fault.DiskIO) { d.FailMmaps(nil) }},
		{"truncated", func(d *fault.DiskIO) { d.TruncateTo(100) }},
		{"corrupted", func(d *fault.DiskIO) { d.CorruptByte(200) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			io := fault.NewDiskIO()
			tc.arm(io)
			dir := t.TempDir()
			idx := ingest.New(p.Corpus, ingest.Config{
				SealThreshold: 32, CompactFanIn: 3,
				SpillDir: dir, SpillThreshold: 64, SpillIO: io,
			})
			defer idx.Close()
			idx.IngestBatch(posts)
			idx.Quiesce()

			st := idx.Stats()
			if st.SpillErrors == 0 {
				t.Fatalf("no spill errors recorded: %+v", st)
			}
			if st.DiskSegments != 0 || st.Spills != 0 {
				t.Fatalf("faulting disk tier accepted segments: %+v", st)
			}
			if n := segFiles(t, dir); n != 0 {
				t.Fatalf("%d segment files left behind by failed spills, want 0", n)
			}
			live := core.NewLiveDetector(p.Collection, idx, p.Cfg.Online)
			for _, set := range sets {
				for _, q := range set.Queries {
					got, _ := live.Search(q)
					want, _ := liveHeap.Search(q)
					expertsIdentical(t, tc.name, q, got, want)
				}
			}
		})
	}
}

// TestDiskConcurrentIngestSearchCompaction is the disk-tier -race
// hammer: concurrent ingesters and searchers share an index whose
// background compactor is actively spilling and merging disk segments
// under them. Afterwards the quiesced index must match a cold detector
// rebuilt from its own final content.
func TestDiskConcurrentIngestSearchCompaction(t *testing.T) {
	p, _ := testPipeline(t)
	idx := ingest.New(p.Corpus, ingest.Config{
		SealThreshold: 16, CompactFanIn: 3,
		SpillDir: t.TempDir(), SpillThreshold: 32,
	})
	defer idx.Close()

	live := core.NewLiveDetector(p.Collection, idx, p.Cfg.Online)
	queries := []string{"49ers", "diabetes", "nfl", "dow futures", "coffee", "zzz-none"}

	const ingesters, perIngester = 2, 150
	const searchers, perSearcher = 4, 100
	var stop atomic.Bool
	errs := make(chan error, searchers)
	var wg sync.WaitGroup

	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(uint64(200+g)))
			for i := 0; i < perIngester; i++ {
				idx.Ingest(stream.Next())
			}
		}(g)
	}
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var lastEpoch uint64
			for i := 0; i < perSearcher && !stop.Load(); i++ {
				snap := idx.Snapshot()
				if snap.Epoch() < lastEpoch {
					errs <- errInvariant("epoch went backwards")
					stop.Store(true)
					return
				}
				lastEpoch = snap.Epoch()
				q := queries[(g+i)%len(queries)]
				if i%3 == 0 {
					live.SearchBaseline(q)
				} else {
					live.Search(q)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	idx.Quiesce()
	st := idx.Stats()
	if st.Ingested != ingesters*perIngester {
		t.Fatalf("ingested %d posts, want %d", st.Ingested, ingesters*perIngester)
	}
	if st.Spills == 0 {
		t.Fatalf("hammer never spilled: %+v", st)
	}

	snap := idx.Snapshot()
	all := append([]microblog.Tweet(nil), p.Corpus.Tweets()...)
	for gid := p.Corpus.NumTweets(); gid < snap.NumTweets(); gid++ {
		all = append(all, *snap.Tweet(microblog.TweetID(gid)))
	}
	cold := core.NewDetector(p.Collection, microblog.FromTweets(p.World, all), p.Cfg.Online)
	for _, q := range queries {
		got, _ := live.Search(q)
		want, _ := cold.Search(q)
		expertsIdentical(t, "post-hammer", q, got, want)
	}
}

// TestDiskStaleFileCleanup pins the SpillDir ownership contract: a new
// index removes segment files a previous run left behind.
func TestDiskStaleFileCleanup(t *testing.T) {
	p, _ := testPipeline(t)
	dir := t.TempDir()
	idx := ingest.New(p.Corpus, ingest.Config{
		SealThreshold: 16, CompactFanIn: 2, DisableCompactor: true,
		SpillDir: dir, SpillThreshold: 16,
	})
	idx.IngestBatch(streamPosts(p, 79, 16))
	idx.Quiesce()
	if n := segFiles(t, dir); n != 1 {
		t.Fatalf("%d segment files after spill, want 1", n)
	}
	idx.Close() // no recovery: the file on disk is now garbage

	idx2 := ingest.New(p.Corpus, ingest.Config{
		SealThreshold: 16, CompactFanIn: 2, DisableCompactor: true,
		SpillDir: dir, SpillThreshold: 16,
	})
	defer idx2.Close()
	if n := segFiles(t, dir); n != 0 {
		t.Fatalf("%d stale segment files survived startup, want 0", n)
	}
}
