// Package querylog synthesizes and processes the web-search click log
// that replaces the paper's 998 GB of Bing query logs (May 2014, US).
//
// The generator samples click events from a world.World: a searcher picks
// a topic (weighted by topic search popularity), a keyword within it
// (weighted by keyword popularity), and clicks either one of the topic's
// URLs (core URLs preferred over shared category hubs) or, with a small
// probability, an unrelated URL — the noise the paper's >=50-clicks
// filter exists to remove. A configurable fraction of events are junk
// queries owned by no topic at all.
//
// Events are written as sharded text logs (one "query\turl" line per
// click) and aggregated back with one goroutine per shard, mirroring the
// paper's distributed extraction stage at laptop scale. All byte counts
// and durations are recorded for the Table 9 reproduction.
package querylog

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/world"
	"repro/internal/xrand"
)

// ClickRecord is one aggregated (query, url) pair with its click count.
type ClickRecord struct {
	Query  string
	URL    string
	Clicks int
}

// GenConfig controls click-log generation.
type GenConfig struct {
	Seed uint64
	// Events is the total number of click events to sample.
	Events int
	// Shards is the number of log files to spread events over.
	Shards int
	// NoiseClickRate is the probability a click lands on a random
	// unrelated URL instead of one of the query's topic URLs.
	NoiseClickRate float64
	// JunkQueryRate is the probability an event uses a junk query that
	// belongs to no topic (misspellings beyond recognition, one-off
	// searches). Junk queries are rare individually, so the minimum-click
	// filter removes them, as in the paper.
	JunkQueryRate float64
	// HubClickRate is the probability a topical click lands on a shared
	// category-hub URL rather than a topic-core URL.
	HubClickRate float64
	// BridgeClickRate scales the probability that a click on a topic's
	// keyword lands on a *related* topic's main URL (a 49ers searcher
	// clicking sfgate.com). Bridge clicks create the weak inter-community
	// edges behind Figure 7's neighboring communities; the effective
	// probability is BridgeClickRate times the relation weight.
	BridgeClickRate float64
}

// DefaultGenConfig returns generation defaults sized for the default
// world (~6k terms): enough events that canonical keywords comfortably
// clear the noise filter while junk does not.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed:            7,
		Events:          2_000_000,
		Shards:          8,
		NoiseClickRate:  0.04,
		JunkQueryRate:   0.04,
		HubClickRate:    0.12,
		BridgeClickRate: 0.3,
	}
}

// TinyGenConfig returns a miniature configuration for unit tests.
func TinyGenConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.Events = 60_000
	cfg.Shards = 3
	return cfg
}

// Stats records resource consumption of a pipeline stage (Table 9).
type Stats struct {
	Stage        string
	Workers      int
	Duration     time.Duration
	BytesRead    int64
	BytesWritten int64
	Records      int
}

// String renders one Table 9 row.
func (s Stats) String() string {
	return fmt.Sprintf("%-12s workers=%-3d runtime=%-12s read=%-10s write=%-10s records=%d",
		s.Stage, s.Workers, s.Duration.Round(time.Millisecond),
		FormatBytes(s.BytesRead), FormatBytes(s.BytesWritten), s.Records)
}

// FormatBytes renders a byte count in human units.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Generator samples click events from a world.
type Generator struct {
	World *world.World
	Cfg   GenConfig

	topicSampler *xrand.Weighted
	kwSamplers   []*xrand.Weighted // per topic, over its keywords
	globalURLs   []string
	rng          *xrand.RNG
}

// NewGenerator prepares the samplers. The generator is not safe for
// concurrent use; shard generation splits RNG streams internally.
func NewGenerator(w *world.World, cfg GenConfig) *Generator {
	rng := xrand.New(cfg.Seed)
	weights := make([]float64, len(w.Topics))
	for i := range w.Topics {
		weights[i] = w.Topics[i].SearchPop
	}
	g := &Generator{
		World:        w,
		Cfg:          cfg,
		rng:          rng,
		topicSampler: xrand.NewWeighted(rng.Split(), weights),
	}
	g.kwSamplers = make([]*xrand.Weighted, len(w.Topics))
	for i := range w.Topics {
		kws := w.Topics[i].Keywords
		kwWeights := make([]float64, len(kws))
		for j := range kws {
			kwWeights[j] = kws[j].SearchPop
		}
		g.kwSamplers[i] = xrand.NewWeighted(rng.Split(), kwWeights)
		g.globalURLs = append(g.globalURLs, w.Topics[i].URLs...)
	}
	sort.Strings(g.globalURLs)
	return g
}

// samplers bundles the weighted draws one event stream needs. Shard
// goroutines get private clones (shared CDFs, independent RNG streams)
// so concurrent generation never races on sampler state.
type samplers struct {
	topics   *xrand.Weighted
	keywords []*xrand.Weighted
}

// shardSamplers clones the generator's samplers onto fresh RNG streams
// split from the seed.
func (g *Generator) shardSamplers() samplers {
	kws := make([]*xrand.Weighted, len(g.kwSamplers))
	for i, s := range g.kwSamplers {
		kws[i] = s.Clone(g.rng.Split())
	}
	return samplers{topics: g.topicSampler.Clone(g.rng.Split()), keywords: kws}
}

// event samples one click event using the supplied RNG stream.
func (g *Generator) event(rng *xrand.RNG, junkRng *xrand.RNG, smp samplers) (query, url string) {
	if rng.Bool(g.Cfg.JunkQueryRate) {
		// Junk query: pronounceable nonsense clicking a random URL.
		query = junkWord(junkRng)
		url = xrand.Pick(rng, g.globalURLs)
		return query, url
	}
	ti := smp.topics.Draw()
	topic := &g.World.Topics[ti]
	ki := smp.keywords[ti].Draw()
	kw := &topic.Keywords[ki]
	query = kw.Text

	switch {
	case kw.SelfClickRate > 0 && rng.Bool(kw.SelfClickRate):
		// Navigational keyword: the click lands on its own destination.
		url = kw.SelfURL
	case rng.Bool(g.Cfg.NoiseClickRate):
		url = xrand.Pick(rng, g.globalURLs)
	case len(topic.Related) > 0 && rng.Bool(g.Cfg.BridgeClickRate):
		// Related-topic click: pick a relation (stronger relations more
		// often) and visit that topic's primary destination.
		rel := topic.Related[rng.Intn(len(topic.Related))]
		if rng.Bool(rel.Weight) {
			url = g.World.Topic(rel.ID).URLs[0]
		} else {
			url = topic.URLs[rng.Intn(topic.NumCoreURLs)]
		}
	case len(topic.URLs) > topic.NumCoreURLs && rng.Bool(g.Cfg.HubClickRate):
		url = topic.URLs[topic.NumCoreURLs+rng.Intn(len(topic.URLs)-topic.NumCoreURLs)]
	default:
		url = topic.URLs[rng.Intn(topic.NumCoreURLs)]
	}
	return query, url
}

// junkWord produces a throwaway query string.
func junkWord(rng *xrand.RNG) string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	n := 5 + rng.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

// Generate writes the sharded click log under dir (created if needed).
// Shards are generated concurrently, one goroutine per shard, each with
// an independent RNG stream split from the seed.
func (g *Generator) Generate(dir string) (Stats, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Stats{}, fmt.Errorf("querylog: create dir: %w", err)
	}
	perShard := g.Cfg.Events / g.Cfg.Shards
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		total    int64
		written  int64
		firstErr error
	)
	for s := 0; s < g.Cfg.Shards; s++ {
		events := perShard
		if s == g.Cfg.Shards-1 {
			events = g.Cfg.Events - perShard*(g.Cfg.Shards-1)
		}
		rng := g.rng.Split()
		junk := g.rng.Split()
		smp := g.shardSamplers()
		path := filepath.Join(dir, fmt.Sprintf("shard-%04d.log", s))
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := g.writeShard(path, events, rng, junk, smp)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			written += n
			total += int64(events)
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return Stats{}, firstErr
	}
	return Stats{
		Stage:        "generate",
		Workers:      g.Cfg.Shards,
		Duration:     time.Since(start),
		BytesWritten: written,
		Records:      int(total),
	}, nil
}

func (g *Generator) writeShard(path string, events int, rng, junk *xrand.RNG, smp samplers) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("querylog: create shard: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var n int64
	for i := 0; i < events; i++ {
		q, u := g.event(rng, junk, smp)
		written, err := fmt.Fprintf(w, "%s\t%s\n", q, u)
		if err != nil {
			f.Close()
			return n, fmt.Errorf("querylog: write shard: %w", err)
		}
		n += int64(written)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return n, err
	}
	return n, f.Close()
}

// GenerateRecords samples the configured number of events entirely in
// memory and returns them pre-aggregated. Used by tests and small
// experiments that do not need the sharded file path.
func (g *Generator) GenerateRecords() []ClickRecord {
	rng := g.rng.Split()
	junk := g.rng.Split()
	// The in-memory path draws from the generator's own sampler streams,
	// preserving the exact event sequence of the seed implementation.
	counts := make(map[[2]string]int)
	smp := samplers{topics: g.topicSampler, keywords: g.kwSamplers}
	for i := 0; i < g.Cfg.Events; i++ {
		q, u := g.event(rng, junk, smp)
		counts[[2]string{q, u}]++
	}
	out := make([]ClickRecord, 0, len(counts))
	for k, c := range counts {
		out = append(out, ClickRecord{Query: k[0], URL: k[1], Clicks: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Query != out[j].Query {
			return out[i].Query < out[j].Query
		}
		return out[i].URL < out[j].URL
	})
	return out
}

// Log is the aggregated, noise-filtered click log: for every surviving
// query, its clicks per URL. This is the input to similarity-graph
// extraction (Section 4.1).
type Log struct {
	queries []string
	vectors []map[string]int // parallel to queries: url -> clicks
	totals  []int
	index   map[string]int
}

// NumQueries returns the number of distinct surviving queries.
func (l *Log) NumQueries() int { return len(l.queries) }

// Queries returns the surviving query strings in sorted order.
func (l *Log) Queries() []string { return l.queries }

// Vector returns the click vector (url -> clicks) for a query, or nil.
func (l *Log) Vector(query string) map[string]int {
	if i, ok := l.index[query]; ok {
		return l.vectors[i]
	}
	return nil
}

// Total returns the total clicks recorded for a query.
func (l *Log) Total(query string) int {
	if i, ok := l.index[query]; ok {
		return l.totals[i]
	}
	return 0
}

// Has reports whether the query survived aggregation and filtering.
func (l *Log) Has(query string) bool {
	_, ok := l.index[query]
	return ok
}

// AggregateRecords folds pre-aggregated records into a Log, dropping
// queries whose total clicks fall below minClicks (the paper removes
// queries appearing fewer than 50 times per month).
func AggregateRecords(recs []ClickRecord, minClicks int) *Log {
	byQuery := map[string]map[string]int{}
	totals := map[string]int{}
	for _, r := range recs {
		m := byQuery[r.Query]
		if m == nil {
			m = map[string]int{}
			byQuery[r.Query] = m
		}
		m[r.URL] += r.Clicks
		totals[r.Query] += r.Clicks
	}
	return buildLog(byQuery, totals, minClicks)
}

// AggregateShards streams every shard file in dir concurrently (one
// goroutine per shard), merges the partial aggregates, applies the
// minClicks filter, and reports resource statistics.
func AggregateShards(dir string, minClicks int) (*Log, Stats, error) {
	start := time.Now()
	paths, err := filepath.Glob(filepath.Join(dir, "shard-*.log"))
	if err != nil {
		return nil, Stats{}, err
	}
	if len(paths) == 0 {
		return nil, Stats{}, fmt.Errorf("querylog: no shards in %s", dir)
	}
	sort.Strings(paths)

	type partial struct {
		byQuery map[string]map[string]int
		bytes   int64
		records int
		err     error
	}
	parts := make([]partial, len(paths))
	var wg sync.WaitGroup
	for i, p := range paths {
		wg.Add(1)
		go func(i int, path string) {
			defer wg.Done()
			parts[i] = aggregateShard(path)
		}(i, p)
	}
	wg.Wait()

	merged := map[string]map[string]int{}
	totals := map[string]int{}
	var bytesRead int64
	records := 0
	for _, p := range parts {
		if p.err != nil {
			return nil, Stats{}, p.err
		}
		bytesRead += p.bytes
		records += p.records
		for q, urls := range p.byQuery {
			m := merged[q]
			if m == nil {
				merged[q] = urls
				for _, c := range urls {
					totals[q] += c
				}
				continue
			}
			for u, c := range urls {
				m[u] += c
				totals[q] += c
			}
		}
	}
	log := buildLog(merged, totals, minClicks)
	return log, Stats{
		Stage:     "extraction",
		Workers:   len(paths),
		Duration:  time.Since(start),
		BytesRead: bytesRead,
		Records:   records,
	}, nil
}

func aggregateShard(path string) (p struct {
	byQuery map[string]map[string]int
	bytes   int64
	records int
	err     error
}) {
	f, err := os.Open(path)
	if err != nil {
		p.err = fmt.Errorf("querylog: open shard: %w", err)
		return p
	}
	defer f.Close()
	p.byQuery = map[string]map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		p.bytes += int64(len(line)) + 1
		tab := strings.IndexByte(line, '\t')
		if tab <= 0 || tab == len(line)-1 {
			continue // malformed line: skip, do not abort the shard
		}
		q, u := line[:tab], line[tab+1:]
		m := p.byQuery[q]
		if m == nil {
			m = map[string]int{}
			p.byQuery[q] = m
		}
		m[u]++
		p.records++
	}
	if err := sc.Err(); err != nil {
		p.err = fmt.Errorf("querylog: scan shard %s: %w", path, err)
	}
	return p
}

func buildLog(byQuery map[string]map[string]int, totals map[string]int, minClicks int) *Log {
	queries := make([]string, 0, len(byQuery))
	for q, total := range totals {
		if total >= minClicks {
			queries = append(queries, q)
		}
	}
	sort.Strings(queries)
	l := &Log{
		queries: queries,
		vectors: make([]map[string]int, len(queries)),
		totals:  make([]int, len(queries)),
		index:   make(map[string]int, len(queries)),
	}
	for i, q := range queries {
		l.vectors[i] = byQuery[q]
		l.totals[i] = totals[q]
		l.index[q] = i
	}
	return l
}

// Scale returns a copy of the log with every click count multiplied by
// f and rounded down; entries that reach zero clicks are dropped. It
// implements the exponential decay of a weekly refresh: last week's
// behaviour still counts, but less than this week's.
func (l *Log) Scale(f float64) *Log {
	if f < 0 {
		f = 0
	}
	byQuery := map[string]map[string]int{}
	totals := map[string]int{}
	for i, q := range l.queries {
		m := map[string]int{}
		for u, c := range l.vectors[i] {
			scaled := int(float64(c) * f)
			if scaled > 0 {
				m[u] = scaled
				totals[q] += scaled
			}
		}
		if len(m) > 0 {
			byQuery[q] = m
		}
	}
	return buildLog(byQuery, totals, 1)
}

// Merge combines two aggregated logs (summing per-URL clicks) and
// re-applies the minimum-click filter. It is the heart of the paper's
// weekly refresh: the offline stage "runs weekly on a production
// cluster", folding the newest week of behaviour into the collection.
func Merge(a, b *Log, minClicks int) *Log {
	byQuery := map[string]map[string]int{}
	totals := map[string]int{}
	add := func(l *Log) {
		for i, q := range l.queries {
			m := byQuery[q]
			if m == nil {
				m = map[string]int{}
				byQuery[q] = m
			}
			for u, c := range l.vectors[i] {
				m[u] += c
				totals[q] += c
			}
		}
	}
	add(a)
	add(b)
	return buildLog(byQuery, totals, minClicks)
}
