package querylog

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/world"
)

func tinySetup(t testing.TB) (*world.World, *Generator) {
	t.Helper()
	w := world.Build(world.TinyConfig())
	g := NewGenerator(w, TinyGenConfig())
	return w, g
}

func TestGenerateRecordsDeterministic(t *testing.T) {
	w := world.Build(world.TinyConfig())
	a := NewGenerator(w, TinyGenConfig()).GenerateRecords()
	b := NewGenerator(w, TinyGenConfig()).GenerateRecords()
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateRecordsCoverVocabulary(t *testing.T) {
	w, g := tinySetup(t)
	recs := g.GenerateRecords()
	seen := map[string]bool{}
	for _, r := range recs {
		seen[r.Query] = true
		if r.Clicks <= 0 {
			t.Fatalf("record with non-positive clicks: %+v", r)
		}
	}
	// The head anchor keyword must be searched.
	if !seen["49ers"] {
		t.Error("49ers never searched")
	}
	covered := 0
	for _, kw := range w.Vocabulary() {
		if seen[kw] {
			covered++
		}
	}
	if frac := float64(covered) / float64(len(w.Vocabulary())); frac < 0.5 {
		t.Errorf("only %.0f%% of vocabulary searched", 100*frac)
	}
}

func TestAggregateRecordsFiltering(t *testing.T) {
	recs := []ClickRecord{
		{"49ers", "49ers.com", 30},
		{"49ers", "espn.com", 25},
		{"rare query", "x.com", 3},
	}
	log := AggregateRecords(recs, 50)
	if !log.Has("49ers") {
		t.Error("49ers (55 clicks) filtered out at min 50")
	}
	if log.Has("rare query") {
		t.Error("rare query (3 clicks) survived min 50")
	}
	if got := log.Total("49ers"); got != 55 {
		t.Errorf("Total(49ers) = %d, want 55", got)
	}
	v := log.Vector("49ers")
	if v["49ers.com"] != 30 || v["espn.com"] != 25 {
		t.Errorf("vector wrong: %v", v)
	}
	if log.Vector("rare query") != nil {
		t.Error("filtered query has a vector")
	}
	if log.Total("absent") != 0 {
		t.Error("Total of absent query should be 0")
	}
}

func TestAggregateRecordsMergesDuplicates(t *testing.T) {
	recs := []ClickRecord{
		{"nfl", "nfl.com", 10},
		{"nfl", "nfl.com", 5},
		{"nfl", "espn.com", 1},
	}
	log := AggregateRecords(recs, 1)
	if got := log.Vector("nfl")["nfl.com"]; got != 15 {
		t.Errorf("duplicate records not merged: %d", got)
	}
	if log.NumQueries() != 1 {
		t.Errorf("NumQueries = %d, want 1", log.NumQueries())
	}
}

func TestJunkFilteredAtRealisticThreshold(t *testing.T) {
	w, _ := tinySetup(t)
	g := NewGenerator(w, TinyGenConfig())
	recs := g.GenerateRecords()
	log := AggregateRecords(recs, 5)
	// Junk queries are one-off nonsense; at minClicks=5 the surviving
	// vocabulary should be dominated by real keywords.
	known, unknown := 0, 0
	for _, q := range log.Queries() {
		if _, ok := w.KeywordOwner(q); ok {
			known++
		} else {
			unknown++
		}
	}
	if known == 0 {
		t.Fatal("no known keywords survived")
	}
	if unknown > known/5 {
		t.Errorf("too much junk survived: %d junk vs %d known", unknown, known)
	}
}

func TestShardRoundTrip(t *testing.T) {
	w, _ := tinySetup(t)
	cfg := TinyGenConfig()
	cfg.Events = 20_000
	g := NewGenerator(w, cfg)
	dir := t.TempDir()
	stats, err := g.Generate(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != cfg.Events {
		t.Errorf("generated %d records, want %d", stats.Records, cfg.Events)
	}
	if stats.BytesWritten <= 0 {
		t.Error("no bytes written")
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "shard-*.log"))
	if len(paths) != cfg.Shards {
		t.Fatalf("wrote %d shards, want %d", len(paths), cfg.Shards)
	}

	log, aggStats, err := AggregateShards(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if aggStats.Records != cfg.Events {
		t.Errorf("aggregated %d records, want %d", aggStats.Records, cfg.Events)
	}
	if aggStats.BytesRead != stats.BytesWritten {
		t.Errorf("read %d bytes, wrote %d", aggStats.BytesRead, stats.BytesWritten)
	}
	if log.NumQueries() == 0 {
		t.Fatal("no queries aggregated")
	}
	// Totals must sum to the number of events.
	sum := 0
	for _, q := range log.Queries() {
		sum += log.Total(q)
	}
	if sum != cfg.Events {
		t.Errorf("click totals sum to %d, want %d", sum, cfg.Events)
	}
}

func TestAggregateShardsMissingDir(t *testing.T) {
	_, _, err := AggregateShards(filepath.Join(t.TempDir(), "nope"), 1)
	if err == nil {
		t.Fatal("expected error for missing shard dir")
	}
}

func TestAggregateShardSkipsMalformedLines(t *testing.T) {
	dir := t.TempDir()
	content := "good query\turl.com\nmalformed-no-tab\n\ttrailing\nleading\t\nq\tu\n"
	if err := os.WriteFile(filepath.Join(dir, "shard-0000.log"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	log, stats, err := AggregateShards(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 {
		t.Errorf("parsed %d records, want 2 (malformed skipped)", stats.Records)
	}
	if !log.Has("good query") || !log.Has("q") {
		t.Error("valid records lost")
	}
}

func TestQueriesSorted(t *testing.T) {
	_, g := tinySetup(t)
	log := AggregateRecords(g.GenerateRecords(), 3)
	qs := log.Queries()
	for i := 1; i < len(qs); i++ {
		if qs[i-1] >= qs[i] {
			t.Fatalf("queries not sorted at %d: %q >= %q", i, qs[i-1], qs[i])
		}
	}
}

func TestHeadKeywordDominates(t *testing.T) {
	w, g := tinySetup(t)
	log := AggregateRecords(g.GenerateRecords(), 1)
	// Within the 49ers topic the head keyword must collect more clicks
	// than the rarest variant (SearchPop ordering).
	id, _ := w.KeywordOwner("49ers")
	topic := w.Topic(id)
	head := log.Total(topic.Keywords[0].Text)
	last := log.Total(topic.Keywords[len(topic.Keywords)-1].Text)
	if head <= last {
		t.Errorf("head keyword %q (%d clicks) should out-collect tail %q (%d)",
			topic.Keywords[0].Text, head, topic.Keywords[len(topic.Keywords)-1].Text, last)
	}
}

func TestClicksConcentrateOnTopicURLs(t *testing.T) {
	w, g := tinySetup(t)
	log := AggregateRecords(g.GenerateRecords(), 1)
	id, _ := w.KeywordOwner("49ers")
	topic := w.Topic(id)
	vec := log.Vector("49ers")
	if vec == nil {
		t.Fatal("no vector for 49ers")
	}
	own := map[string]bool{}
	for _, u := range topic.URLs {
		own[u] = true
	}
	onTopic, total := 0, 0
	for u, c := range vec {
		total += c
		if own[u] {
			onTopic += c
		}
	}
	// Bridge clicks intentionally divert some mass to related topics'
	// URLs, so the bar is 70%, not higher.
	if frac := float64(onTopic) / float64(total); frac < 0.7 {
		t.Errorf("only %.0f%% of 49ers clicks on topic URLs", 100*frac)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KB"},
		{3 << 20, "3.00 MB"},
		{5 << 30, "5.00 GB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Stage: "extraction", Workers: 8, Records: 100}
	out := s.String()
	if out == "" {
		t.Fatal("empty Stats string")
	}
}

func BenchmarkGenerateRecords(b *testing.B) {
	w := world.Build(world.TinyConfig())
	cfg := TinyGenConfig()
	cfg.Events = 10_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGenerator(w, cfg)
		_ = g.GenerateRecords()
	}
}

func BenchmarkAggregateRecords(b *testing.B) {
	w := world.Build(world.TinyConfig())
	recs := NewGenerator(w, TinyGenConfig()).GenerateRecords()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AggregateRecords(recs, 5)
	}
}

func TestScale(t *testing.T) {
	recs := []ClickRecord{
		{"a", "u1", 10},
		{"a", "u2", 1},
		{"b", "u1", 2},
	}
	log := AggregateRecords(recs, 1)
	half := log.Scale(0.5)
	if got := half.Vector("a")["u1"]; got != 5 {
		t.Errorf("scaled a/u1 = %d, want 5", got)
	}
	// 1 * 0.5 rounds down to 0 and is dropped.
	if _, ok := half.Vector("a")["u2"]; ok {
		t.Error("zero-click entry survived scaling")
	}
	if half.Total("b") != 1 {
		t.Errorf("scaled b total = %d, want 1", half.Total("b"))
	}
	// Scale(0) empties the log.
	if log.Scale(0).NumQueries() != 0 {
		t.Error("Scale(0) kept queries")
	}
	// Source untouched.
	if log.Total("a") != 11 {
		t.Error("Scale mutated source")
	}
}

func TestMerge(t *testing.T) {
	a := AggregateRecords([]ClickRecord{
		{"shared", "u1", 10},
		{"only-a", "u2", 30},
	}, 1)
	b := AggregateRecords([]ClickRecord{
		{"shared", "u1", 5},
		{"shared", "u3", 2},
		{"only-b", "u4", 40},
	}, 1)
	m := Merge(a, b, 1)
	if got := m.Vector("shared")["u1"]; got != 15 {
		t.Errorf("merged shared/u1 = %d, want 15", got)
	}
	if m.Total("shared") != 17 {
		t.Errorf("merged shared total = %d, want 17", m.Total("shared"))
	}
	if !m.Has("only-a") || !m.Has("only-b") {
		t.Error("merge lost one-sided queries")
	}
	// Filter re-applied on the merged totals.
	strict := Merge(a, b, 20)
	if strict.Has("shared") {
		t.Error("17-click query survived minClicks=20 after merge")
	}
	if !strict.Has("only-a") || !strict.Has("only-b") {
		t.Error("merge filter dropped qualifying queries")
	}
}

func TestMergeWithDecayModelsRefresh(t *testing.T) {
	w, _ := tinySetup(t)
	cfgOld := TinyGenConfig()
	cfgNew := TinyGenConfig()
	cfgNew.Seed = 99
	oldLog := AggregateRecords(NewGenerator(w, cfgOld).GenerateRecords(), 1)
	newLog := AggregateRecords(NewGenerator(w, cfgNew).GenerateRecords(), 1)
	merged := Merge(oldLog.Scale(0.5), newLog, 5)
	if merged.NumQueries() == 0 {
		t.Fatal("refresh produced empty log")
	}
	// The head keyword accumulates from both weeks.
	if merged.Total("49ers") <= newLog.Total("49ers") {
		t.Error("decayed history did not contribute clicks")
	}
}
