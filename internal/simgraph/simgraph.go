// Package simgraph builds the term similarity graph of Section 4.1: each
// vertex is a surviving query string, and two queries are connected with
// the cosine similarity of their click-URL vectors.
//
// Instead of comparing every possible pair (quadratic in the vocabulary),
// the builder walks an inverted index from URL to the queries that
// clicked it: only query pairs sharing at least one URL can have non-zero
// similarity, which is exactly the sparsity a production implementation
// exploits. URL postings are processed in parallel worker partitions and
// the partial dot-products merged.
package simgraph

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/querylog"
)

// Config controls graph construction.
type Config struct {
	// MinSimilarity prunes edges below this cosine similarity; the paper
	// keeps the graph sparse to make clustering tractable.
	MinSimilarity float64
	// ProximityFloor keeps edges in [ProximityFloor, MinSimilarity) as a
	// separate weak tier: too faint to influence clustering, but exactly
	// what connects a community to its neighbors in Figure 7. Zero
	// disables the weak tier.
	ProximityFloor float64
	// MaxNeighbors, when positive, keeps only the top-k strongest edges
	// per vertex (a standard sparsification; 0 disables it).
	MaxNeighbors int
	// Workers is the number of concurrent partitions used for the
	// inverted-index sweep. Zero means 4.
	Workers int
}

// DefaultConfig returns the construction defaults used by the pipeline.
// The similarity floor is calibrated so that intra-topic keyword pairs
// (which share most of their click mass) stay connected while pairs that
// only co-occur on category hubs or noise clicks are pruned — real
// query-log graphs are similarly fragmented, which is what gives the
// paper its many small communities (Figure 6).
func DefaultConfig() Config {
	return Config{MinSimilarity: 0.25, ProximityFloor: 0.04, MaxNeighbors: 0, Workers: 4}
}

// Neighbor is one adjacency entry.
type Neighbor struct {
	To     int32
	Weight float64
}

// Edge is an undirected weighted edge with A < B.
type Edge struct {
	A, B   int32
	Weight float64
}

// Graph is the weighted undirected term similarity graph.
type Graph struct {
	terms []string
	index map[string]int32
	adj   [][]Neighbor
	edges int
	// weak holds sub-threshold edges (each once, A < B), used only for
	// inter-domain proximity, never for clustering.
	weak []Edge
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.terms) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Term returns the query string of vertex v.
func (g *Graph) Term(v int32) string { return g.terms[v] }

// Terms returns all vertex labels indexed by vertex id.
func (g *Graph) Terms() []string { return g.terms }

// Vertex returns the vertex id of a term.
func (g *Graph) Vertex(term string) (int32, bool) {
	v, ok := g.index[term]
	return v, ok
}

// Neighbors returns the adjacency list of v (do not mutate).
func (g *Graph) Neighbors(v int32) []Neighbor { return g.adj[v] }

// Degree returns the number of incident edges of v.
func (g *Graph) Degree(v int32) int { return len(g.adj[v]) }

// Edges returns every undirected edge once, sorted by (A, B).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for a := int32(0); int(a) < len(g.adj); a++ {
		for _, n := range g.adj[a] {
			if n.To > a {
				out = append(out, Edge{A: a, B: n.To, Weight: n.Weight})
			}
		}
	}
	return out
}

// WeakEdges returns the sub-threshold proximity edges (each once,
// A < B, sorted). Do not mutate.
func (g *Graph) WeakEdges() []Edge { return g.weak }

// WeightBetween returns the edge weight between two vertices (0 if absent).
func (g *Graph) WeightBetween(a, b int32) float64 {
	for _, n := range g.adj[a] {
		if n.To == b {
			return n.Weight
		}
	}
	return 0
}

// Build constructs the similarity graph from an aggregated click log.
func Build(log *querylog.Log, cfg Config) *Graph {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	terms := log.Queries()
	g := &Graph{
		terms: terms,
		index: make(map[string]int32, len(terms)),
		adj:   make([][]Neighbor, len(terms)),
	}
	for i, t := range terms {
		g.index[t] = int32(i)
	}

	// Vector norms and the URL -> postings inverted index.
	norms := make([]float64, len(terms))
	postings := map[string][]posting{}
	for i, t := range terms {
		vec := log.Vector(t)
		var sq float64
		for u, c := range vec {
			fc := float64(c)
			sq += fc * fc
			postings[u] = append(postings[u], posting{term: int32(i), clicks: fc})
		}
		norms[i] = math.Sqrt(sq)
	}

	// Deterministic partition of URLs over workers.
	urls := make([]string, 0, len(postings))
	for u := range postings {
		urls = append(urls, u)
	}
	sort.Strings(urls)

	partials := make([]map[uint64]float64, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dots := map[uint64]float64{}
			for i := w; i < len(urls); i += cfg.Workers {
				ps := postings[urls[i]]
				for a := 0; a < len(ps); a++ {
					for b := a + 1; b < len(ps); b++ {
						dots[pairKey(ps[a].term, ps[b].term)] += ps[a].clicks * ps[b].clicks
					}
				}
			}
			partials[w] = dots
		}(w)
	}
	wg.Wait()

	// Merge partials and emit edges above the similarity floor.
	merged := partials[0]
	for _, p := range partials[1:] {
		for k, v := range p {
			merged[k] += v
		}
	}
	for k, dot := range merged {
		a, b := unpairKey(k)
		sim := dot / (norms[a] * norms[b])
		switch {
		case sim >= cfg.MinSimilarity:
			g.adj[a] = append(g.adj[a], Neighbor{To: b, Weight: sim})
			g.adj[b] = append(g.adj[b], Neighbor{To: a, Weight: sim})
			g.edges++
		case cfg.ProximityFloor > 0 && sim >= cfg.ProximityFloor:
			g.weak = append(g.weak, Edge{A: a, B: b, Weight: sim})
		}
	}
	sort.Slice(g.weak, func(i, j int) bool {
		if g.weak[i].A != g.weak[j].A {
			return g.weak[i].A < g.weak[j].A
		}
		return g.weak[i].B < g.weak[j].B
	})
	for v := range g.adj {
		sortNeighbors(g.adj[v])
	}
	if cfg.MaxNeighbors > 0 {
		g.sparsify(cfg.MaxNeighbors)
	}
	return g
}

type posting struct {
	term   int32
	clicks float64
}

func pairKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func unpairKey(k uint64) (int32, int32) {
	return int32(k >> 32), int32(k & 0xffffffff)
}

func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].To < ns[j].To })
}

// sparsify keeps, for each vertex, the k strongest incident edges; an
// edge survives if either endpoint ranks it in its top k (the usual
// mutual-OR rule so the graph stays symmetric).
func (g *Graph) sparsify(k int) {
	keep := map[uint64]bool{}
	for v := range g.adj {
		ns := make([]Neighbor, len(g.adj[v]))
		copy(ns, g.adj[v])
		sort.Slice(ns, func(i, j int) bool {
			if ns[i].Weight != ns[j].Weight {
				return ns[i].Weight > ns[j].Weight
			}
			return ns[i].To < ns[j].To
		})
		for i := 0; i < len(ns) && i < k; i++ {
			keep[pairKey(int32(v), ns[i].To)] = true
		}
	}
	edges := 0
	for v := range g.adj {
		filtered := g.adj[v][:0]
		for _, n := range g.adj[v] {
			if keep[pairKey(int32(v), n.To)] {
				filtered = append(filtered, n)
				if n.To > int32(v) {
					edges++
				}
			}
		}
		g.adj[v] = filtered
	}
	g.edges = edges
}

// FromEdges builds a graph directly from labelled edges; used by tests,
// examples and the community-detection benchmarks that bypass the click
// pipeline. Duplicate edges accumulate weight; self-loops are rejected.
func FromEdges(labels []string, edges []Edge) (*Graph, error) {
	g := &Graph{
		terms: labels,
		index: make(map[string]int32, len(labels)),
		adj:   make([][]Neighbor, len(labels)),
	}
	for i, t := range labels {
		if _, dup := g.index[t]; dup {
			return nil, fmt.Errorf("simgraph: duplicate label %q", t)
		}
		g.index[t] = int32(i)
	}
	acc := map[uint64]float64{}
	for _, e := range edges {
		if e.A == e.B {
			return nil, fmt.Errorf("simgraph: self-loop on vertex %d", e.A)
		}
		if int(e.A) < 0 || int(e.A) >= len(labels) || int(e.B) < 0 || int(e.B) >= len(labels) {
			return nil, fmt.Errorf("simgraph: edge (%d,%d) out of range", e.A, e.B)
		}
		if e.Weight <= 0 {
			return nil, fmt.Errorf("simgraph: non-positive weight on edge (%d,%d)", e.A, e.B)
		}
		acc[pairKey(e.A, e.B)] += e.Weight
	}
	keys := make([]uint64, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		a, b := unpairKey(k)
		w := acc[k]
		g.adj[a] = append(g.adj[a], Neighbor{To: b, Weight: w})
		g.adj[b] = append(g.adj[b], Neighbor{To: a, Weight: w})
		g.edges++
	}
	for v := range g.adj {
		sortNeighbors(g.adj[v])
	}
	return g, nil
}

// Discretize converts the real-valued similarity weights into the
// integer multi-edge representation of the paper's footnote 1 ("rescale
// and discretize the weights to obtain integers; create one edge for
// each unit"). Every surviving edge carries at least one unit.
// resolution is the number of units a weight of 1.0 maps to.
func (g *Graph) Discretize(resolution int) *IntGraph {
	if resolution <= 0 {
		resolution = 10
	}
	ig := &IntGraph{
		terms: g.terms,
		adj:   make([][]IntNeighbor, len(g.terms)),
	}
	for a := int32(0); int(a) < len(g.adj); a++ {
		for _, n := range g.adj[a] {
			if n.To <= a {
				continue
			}
			units := int64(math.Round(n.Weight * float64(resolution)))
			if units < 1 {
				units = 1
			}
			ig.adj[a] = append(ig.adj[a], IntNeighbor{To: n.To, Units: units})
			ig.adj[n.To] = append(ig.adj[n.To], IntNeighbor{To: a, Units: units})
			ig.totalUnits += units
			ig.edges++
		}
	}
	for v := range ig.adj {
		sort.Slice(ig.adj[v], func(i, j int) bool { return ig.adj[v][i].To < ig.adj[v][j].To })
	}
	return ig
}

// IntNeighbor is an adjacency entry of an IntGraph: Units parallel edges
// to the target vertex.
type IntNeighbor struct {
	To    int32
	Units int64
}

// IntGraph is the discretized multigraph consumed by modularity
// maximization: edge weights are integer unit counts.
type IntGraph struct {
	terms      []string
	adj        [][]IntNeighbor
	edges      int
	totalUnits int64
}

// NumVertices returns the vertex count.
func (g *IntGraph) NumVertices() int { return len(g.terms) }

// NumEdges returns the number of distinct vertex pairs with an edge.
func (g *IntGraph) NumEdges() int { return g.edges }

// TotalUnits returns m_G: the total number of unit edges in the graph.
func (g *IntGraph) TotalUnits() int64 { return g.totalUnits }

// Term returns the label of vertex v.
func (g *IntGraph) Term(v int32) string { return g.terms[v] }

// Terms returns all vertex labels indexed by vertex id.
func (g *IntGraph) Terms() []string { return g.terms }

// Neighbors returns the adjacency list of v (do not mutate).
func (g *IntGraph) Neighbors(v int32) []IntNeighbor { return g.adj[v] }

// UnitDegree returns the unit-edge degree of v (sum of incident units).
func (g *IntGraph) UnitDegree(v int32) int64 {
	var d int64
	for _, n := range g.adj[v] {
		d += n.Units
	}
	return d
}

// FromIntEdges builds an IntGraph directly; used in tests and benches.
// Duplicate pairs accumulate units.
func FromIntEdges(labels []string, edges []Edge) (*IntGraph, error) {
	g, err := FromEdges(labels, edges)
	if err != nil {
		return nil, err
	}
	return g.Discretize(1), nil
}
