package simgraph

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/querylog"
	"repro/internal/world"
)

// paperLog reproduces the worked example of Figure 2: the queries
// "49ers" and "nfl" share clicks on espn.com.
func paperLog() *querylog.Log {
	recs := []querylog.ClickRecord{
		{Query: "49ers", URL: "49ers.com", Clicks: 25},
		{Query: "49ers", URL: "espn.com", Clicks: 10},
		{Query: "nfl", URL: "nfl.com", Clicks: 20},
		{Query: "nfl", URL: "espn.com", Clicks: 15},
	}
	return querylog.AggregateRecords(recs, 1)
}

func TestFigure2CosineSimilarity(t *testing.T) {
	g := Build(paperLog(), Config{MinSimilarity: 0.01, Workers: 2})
	a, ok := g.Vertex("49ers")
	if !ok {
		t.Fatal("49ers vertex missing")
	}
	b, ok := g.Vertex("nfl")
	if !ok {
		t.Fatal("nfl vertex missing")
	}
	// cos = (10*15) / (sqrt(25²+10²)·sqrt(20²+15²)) = 150/(26.93·25) ≈ 0.2228.
	// (The paper's figure rounds to 0.29 with slightly different counts;
	// the formula is what matters.)
	got := g.WeightBetween(a, b)
	want := 150.0 / (math.Sqrt(25*25+10*10) * math.Sqrt(20*20+15*15))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("similarity = %v, want %v", got, want)
	}
}

func TestNoSharedURLNoEdge(t *testing.T) {
	recs := []querylog.ClickRecord{
		{Query: "a", URL: "a.com", Clicks: 10},
		{Query: "b", URL: "b.com", Clicks: 10},
	}
	g := Build(querylog.AggregateRecords(recs, 1), Config{MinSimilarity: 0.0001, Workers: 1})
	if g.NumEdges() != 0 {
		t.Errorf("disconnected queries produced %d edges", g.NumEdges())
	}
}

func TestMinSimilarityPrunes(t *testing.T) {
	log := paperLog()
	loose := Build(log, Config{MinSimilarity: 0.01, Workers: 1})
	strict := Build(log, Config{MinSimilarity: 0.9, Workers: 1})
	if loose.NumEdges() != 1 {
		t.Errorf("loose graph has %d edges, want 1", loose.NumEdges())
	}
	if strict.NumEdges() != 0 {
		t.Errorf("strict graph has %d edges, want 0", strict.NumEdges())
	}
}

func TestGraphSymmetry(t *testing.T) {
	w := world.Build(world.TinyConfig())
	cfg := querylog.TinyGenConfig()
	log := querylog.AggregateRecords(querylog.NewGenerator(w, cfg).GenerateRecords(), 5)
	g := Build(log, DefaultConfig())
	if g.NumEdges() == 0 {
		t.Fatal("empty graph")
	}
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for _, n := range g.Neighbors(v) {
			if back := g.WeightBetween(n.To, v); back != n.Weight {
				t.Fatalf("asymmetric edge %d->%d: %v vs %v", v, n.To, n.Weight, back)
			}
			if n.To == v {
				t.Fatalf("self-loop at %d", v)
			}
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	w := world.Build(world.TinyConfig())
	cfg := querylog.TinyGenConfig()
	cfg.Events = 20_000
	log := querylog.AggregateRecords(querylog.NewGenerator(w, cfg).GenerateRecords(), 3)
	g1 := Build(log, Config{MinSimilarity: 0.1, Workers: 1})
	g4 := Build(log, Config{MinSimilarity: 0.1, Workers: 7})
	if g1.NumEdges() != g4.NumEdges() {
		t.Fatalf("edge count depends on workers: %d vs %d", g1.NumEdges(), g4.NumEdges())
	}
	for v := int32(0); int(v) < g1.NumVertices(); v++ {
		n1, n4 := g1.Neighbors(v), g4.Neighbors(v)
		if len(n1) != len(n4) {
			t.Fatalf("vertex %d adjacency differs across worker counts", v)
		}
		for i := range n1 {
			if n1[i].To != n4[i].To || math.Abs(n1[i].Weight-n4[i].Weight) > 1e-9 {
				t.Fatalf("vertex %d neighbor %d differs", v, i)
			}
		}
	}
}

func TestSameTopicTermsMoreSimilar(t *testing.T) {
	w := world.Build(world.TinyConfig())
	log := querylog.AggregateRecords(querylog.NewGenerator(w, querylog.TinyGenConfig()).GenerateRecords(), 5)
	g := Build(log, Config{MinSimilarity: 0.05, Workers: 2})
	a, ok1 := g.Vertex("49ers")
	b, ok2 := g.Vertex("niners")
	if !ok1 || !ok2 {
		t.Skip("anchor keywords did not survive tiny log")
	}
	intra := g.WeightBetween(a, b)
	if intra == 0 {
		t.Fatal("same-topic keywords not connected")
	}
	// Cross-category similarity must be weaker than intra-topic.
	if c, ok := g.Vertex("diabetes"); ok {
		if cross := g.WeightBetween(a, c); cross >= intra {
			t.Errorf("cross-category similarity %v >= intra-topic %v", cross, intra)
		}
	}
}

func TestEdgesListedOnce(t *testing.T) {
	w := world.Build(world.TinyConfig())
	log := querylog.AggregateRecords(querylog.NewGenerator(w, querylog.TinyGenConfig()).GenerateRecords(), 5)
	g := Build(log, DefaultConfig())
	edges := g.Edges()
	if len(edges) != g.NumEdges() {
		t.Fatalf("Edges() returned %d, NumEdges %d", len(edges), g.NumEdges())
	}
	seen := map[[2]int32]bool{}
	for _, e := range edges {
		if e.A >= e.B {
			t.Fatalf("edge not ordered: %+v", e)
		}
		k := [2]int32{e.A, e.B}
		if seen[k] {
			t.Fatalf("duplicate edge %+v", e)
		}
		seen[k] = true
	}
}

func TestSparsifyBoundsDegree(t *testing.T) {
	w := world.Build(world.TinyConfig())
	log := querylog.AggregateRecords(querylog.NewGenerator(w, querylog.TinyGenConfig()).GenerateRecords(), 5)
	full := Build(log, Config{MinSimilarity: 0.02, Workers: 2})
	k := 3
	sparse := Build(log, Config{MinSimilarity: 0.02, Workers: 2, MaxNeighbors: k})
	if sparse.NumEdges() > full.NumEdges() {
		t.Fatal("sparsified graph has more edges")
	}
	// Mutual-OR top-k: degree can exceed k (edges kept by the other
	// endpoint), but the total must shrink substantially on dense graphs.
	if full.NumEdges() > 4*sparse.NumEdges() && sparse.NumEdges() == 0 {
		t.Fatal("sparsify removed everything")
	}
	// Symmetry preserved.
	for v := int32(0); int(v) < sparse.NumVertices(); v++ {
		for _, n := range sparse.Neighbors(v) {
			if sparse.WeightBetween(n.To, v) == 0 {
				t.Fatalf("sparsify broke symmetry at %d->%d", v, n.To)
			}
		}
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges([]string{"a", "b", "c"}, []Edge{
		{A: 0, B: 1, Weight: 0.5},
		{A: 1, B: 2, Weight: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.NumVertices() != 3 {
		t.Fatalf("got %d edges, %d vertices", g.NumEdges(), g.NumVertices())
	}
	if g.WeightBetween(0, 1) != 0.5 {
		t.Errorf("weight(0,1) = %v", g.WeightBetween(0, 1))
	}
}

func TestFromEdgesAccumulatesDuplicates(t *testing.T) {
	g, err := FromEdges([]string{"a", "b"}, []Edge{
		{A: 0, B: 1, Weight: 0.5},
		{A: 1, B: 0, Weight: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.WeightBetween(0, 1); got != 0.75 {
		t.Errorf("duplicate edge weight = %v, want 0.75", got)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestFromEdgesRejectsBadInput(t *testing.T) {
	if _, err := FromEdges([]string{"a", "a"}, nil); err == nil {
		t.Error("duplicate labels accepted")
	}
	if _, err := FromEdges([]string{"a", "b"}, []Edge{{A: 0, B: 0, Weight: 1}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := FromEdges([]string{"a", "b"}, []Edge{{A: 0, B: 5, Weight: 1}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := FromEdges([]string{"a", "b"}, []Edge{{A: 0, B: 1, Weight: -1}}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestDiscretize(t *testing.T) {
	g, err := FromEdges([]string{"a", "b", "c"}, []Edge{
		{A: 0, B: 1, Weight: 0.95},
		{A: 1, B: 2, Weight: 0.03}, // rounds to 0 at resolution 10 -> floor 1
	})
	if err != nil {
		t.Fatal(err)
	}
	ig := g.Discretize(10)
	if ig.NumEdges() != 2 {
		t.Fatalf("IntGraph edges = %d, want 2", ig.NumEdges())
	}
	var u01 int64
	for _, n := range ig.Neighbors(0) {
		if n.To == 1 {
			u01 = n.Units
		}
	}
	if u01 != 10 { // round(0.95*10) = 10
		t.Errorf("units(0,1) = %d, want 10", u01)
	}
	if ig.TotalUnits() != 11 { // 10 + floor-at-1
		t.Errorf("TotalUnits = %d, want 11", ig.TotalUnits())
	}
}

func TestUnitDegreeSum(t *testing.T) {
	// Property: sum of unit degrees == 2 * total units (handshake lemma).
	prop := func(seed int64) bool {
		n := 4 + int(uint64(seed)%5)
		labels := make([]string, n)
		for i := range labels {
			labels[i] = string(rune('a' + i))
		}
		var edges []Edge
		s := uint64(seed)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				s = s*6364136223846793005 + 1442695040888963407
				if s%3 == 0 {
					edges = append(edges, Edge{A: int32(a), B: int32(b), Weight: float64(1+s%4) / 2})
				}
			}
		}
		ig, err := FromIntEdges(labels, edges)
		if err != nil {
			return false
		}
		var degSum int64
		for v := int32(0); int(v) < ig.NumVertices(); v++ {
			degSum += ig.UnitDegree(v)
		}
		return degSum == 2*ig.TotalUnits()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVertexLookup(t *testing.T) {
	g := Build(paperLog(), Config{MinSimilarity: 0.01, Workers: 1})
	if _, ok := g.Vertex("nonexistent"); ok {
		t.Error("lookup of unknown term succeeded")
	}
	v, ok := g.Vertex("49ers")
	if !ok || g.Term(v) != "49ers" {
		t.Error("vertex round-trip failed")
	}
}

func BenchmarkBuildGraph(b *testing.B) {
	w := world.Build(world.TinyConfig())
	log := querylog.AggregateRecords(querylog.NewGenerator(w, querylog.TinyGenConfig()).GenerateRecords(), 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Build(log, DefaultConfig())
	}
}

func TestWeakEdgeTier(t *testing.T) {
	w := world.Build(world.TinyConfig())
	log := querylog.AggregateRecords(
		querylog.NewGenerator(w, querylog.TinyGenConfig()).GenerateRecords(), 5)
	cfg := Config{MinSimilarity: 0.3, ProximityFloor: 0.05, Workers: 2}
	g := Build(log, cfg)
	weak := g.WeakEdges()
	if len(weak) == 0 {
		t.Fatal("no weak edges recorded")
	}
	for i, e := range weak {
		if e.Weight < cfg.ProximityFloor || e.Weight >= cfg.MinSimilarity {
			t.Fatalf("weak edge weight %v outside [%v,%v)", e.Weight, cfg.ProximityFloor, cfg.MinSimilarity)
		}
		if e.A >= e.B {
			t.Fatalf("weak edge not ordered: %+v", e)
		}
		if i > 0 && (weak[i-1].A > e.A || (weak[i-1].A == e.A && weak[i-1].B >= e.B)) {
			t.Fatal("weak edges not sorted")
		}
		// Weak edges must not be in the strong adjacency.
		if g.WeightBetween(e.A, e.B) != 0 {
			t.Fatalf("edge (%d,%d) in both tiers", e.A, e.B)
		}
	}
	// Disabling the floor removes the tier.
	g2 := Build(log, Config{MinSimilarity: 0.3, Workers: 2})
	if len(g2.WeakEdges()) != 0 {
		t.Error("weak tier present with zero floor")
	}
}

func TestWeakTierDoesNotChangeClusteringInput(t *testing.T) {
	w := world.Build(world.TinyConfig())
	log := querylog.AggregateRecords(
		querylog.NewGenerator(w, querylog.TinyGenConfig()).GenerateRecords(), 5)
	with := Build(log, Config{MinSimilarity: 0.3, ProximityFloor: 0.05, Workers: 2})
	without := Build(log, Config{MinSimilarity: 0.3, Workers: 2})
	if with.NumEdges() != without.NumEdges() {
		t.Fatalf("proximity floor changed strong edges: %d vs %d",
			with.NumEdges(), without.NumEdges())
	}
	ia := with.Discretize(20)
	ib := without.Discretize(20)
	if ia.TotalUnits() != ib.TotalUnits() {
		t.Error("proximity floor changed discretized units")
	}
}
