package serve

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/shard"
)

// obsRow finds one row in a registry snapshot; missing rows fail the
// test.
func obsRow(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %q not in registry snapshot", name)
	return 0
}

// TestServerObsTracesAndMetrics drives an instrumented server over an
// instrumented sharded backend and checks the whole observability
// story: outcome labels, the request-latency histogram, per-shard
// spans in the slow log, and — the must-not-perturb bar — results
// identical to an un-instrumented server.
func TestServerObsTracesAndMetrics(t *testing.T) {
	p := testPipeline(t)
	r := shard.New(p.Corpus, shard.Config{Shards: 4, Ingest: ingest.DefaultConfig()})
	defer r.Close()

	reg := obs.NewRegistry()
	online := p.Cfg.Online
	online.Obs = reg
	sharded := core.NewShardedLiveDetector(p.Collection, r, online)
	s := New(sharded, Config{CacheSize: 4, Obs: reg, SlowLogSize: 8})

	first := s.Search("49ers")
	second := s.Search("49ers")
	if !sameExperts(first, second) {
		t.Fatal("cache hit diverged from the miss that filled it")
	}
	if got := obsRow(t, reg, "serve_queries"); got != 2 {
		t.Errorf("serve_queries = %d, want 2", got)
	}
	if got := obsRow(t, reg, "serve_cache_hits"); got != 1 {
		t.Errorf("serve_cache_hits = %d, want 1", got)
	}
	if got := obsRow(t, reg, "serve_cache_misses"); got != 1 {
		t.Errorf("serve_cache_misses = %d, want 1", got)
	}
	if got := obsRow(t, reg, "serve_request_ns_count"); got != 2 {
		t.Errorf("serve_request_ns_count = %d, want 2", got)
	}
	// The sharded detector's scatter-gather instrumentation moved too.
	if got := obsRow(t, reg, "sharded_merge_rank_ns_count"); got != 1 {
		t.Errorf("sharded_merge_rank_ns_count = %d, want 1 (one uncached search)", got)
	}
	for i := 0; i < 4; i++ {
		name := "sharded_shard" + string(rune('0'+i)) + "_search_ns_count"
		if got := obsRow(t, reg, name); got != 1 {
			t.Errorf("%s = %d, want 1", name, got)
		}
	}

	// SlowLog (zero threshold keeps everything): newest first, the hit
	// then the miss; the miss carries the scatter-gather spans.
	snap := s.SlowLog().Snapshot()
	if len(snap) != 2 {
		t.Fatalf("slow log kept %d traces, want 2: %+v", len(snap), snap)
	}
	hit, miss := snap[0], snap[1]
	if hit.Outcome != obs.OutcomeHit || hit.Query != "49ers" || hit.Shards != nil {
		t.Errorf("hit trace = %+v", hit)
	}
	if miss.Outcome != obs.OutcomeMiss || miss.Query != "49ers" {
		t.Errorf("miss trace = %+v", miss)
	}
	if len(miss.Shards) != 4 {
		t.Fatalf("miss trace has %d shard spans, want 4: %+v", len(miss.Shards), miss)
	}
	var matched int
	for i, sp := range miss.Shards {
		if sp.Shard != i {
			t.Errorf("span %d labeled shard %d", i, sp.Shard)
		}
		if sp.SearchNS <= 0 {
			t.Errorf("span %d has no scatter timing: %+v", i, sp)
		}
		if sp.Err != "" {
			t.Errorf("span %d unexpectedly failed: %+v", i, sp)
		}
		matched += sp.Matched
	}
	if matched != miss.MatchedTweets {
		t.Errorf("span matched sum %d != trace MatchedTweets %d", matched, miss.MatchedTweets)
	}
	if miss.MergeRankNS <= 0 || miss.TotalNS < miss.MergeRankNS {
		t.Errorf("merge/rank timing inconsistent: %+v", miss)
	}

	// Instrumentation must not change rankings: an un-instrumented
	// server over the same detector agrees bit for bit. (Run last —
	// this search moves the shared detector's histograms.)
	plain := New(sharded, Config{CacheSize: 4})
	if want := plain.Search("49ers"); !sameExperts(first, want) {
		t.Fatal("instrumented result diverged from un-instrumented server")
	}
}

// TestServerObsBaselineAndThreshold checks the baseline label and that
// a high threshold keeps the ring empty while counters still move.
func TestServerObsBaselineAndThreshold(t *testing.T) {
	p := testPipeline(t)
	reg := obs.NewRegistry()
	s := New(p.Detector, Config{CacheSize: 4, Obs: reg, SlowLogSize: 4, SlowLogThreshold: 1 << 40})

	s.SearchBaseline("nfl")
	if got := obsRow(t, reg, "serve_queries"); got != 1 {
		t.Errorf("serve_queries = %d, want 1", got)
	}
	if got := obsRow(t, reg, "serve_request_ns_count"); got != 1 {
		t.Errorf("serve_request_ns_count = %d, want 1", got)
	}
	if got := s.SlowLog().Snapshot(); len(got) != 0 {
		t.Errorf("sub-threshold query landed in the slow log: %+v", got)
	}
	if s.SlowLog().Threshold() != 1<<40 {
		t.Errorf("threshold = %v", s.SlowLog().Threshold())
	}
}

// TestServerObsNilRegistry pins the zero-cost path: no registry, no
// slow log, and the serving behavior is unchanged.
func TestServerObsNilRegistry(t *testing.T) {
	p := testPipeline(t)
	s := New(p.Detector, DefaultConfig())
	if s.SlowLog() != nil {
		t.Fatal("un-instrumented server grew a slow log")
	}
	got := s.Search("nfl")
	want, _ := p.Detector.Search("nfl")
	if !sameExperts(got, want) {
		t.Fatal("un-instrumented serve diverged from detector")
	}
}
