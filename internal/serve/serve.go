// Package serve is the online serving layer of the reproduction: a
// concurrent query front-end over a shared, immutable e# pipeline. The
// paper's deployment answers expert queries from production web-search
// traffic; this package models that stage so the serving throughput of
// the online hot path (expansion → matching → union → ranking) can be
// measured and improved PR over PR.
//
// A Server multiplexes concurrent Search and SearchBaseline requests
// over one core.Detector — safe because the corpus, domain collection
// and detector are all read-only after construction — and fronts them
// with an LRU result cache keyed on the normalized query text (repeat
// queries dominate real search traffic, so the paper's latency budget
// is really about cache misses). Build the detector with
// core.OnlineConfig.MatchWorkers = 1 when serving concurrently:
// request-level parallelism already saturates the cores, and per-query
// matching fan-out on top only adds scheduling overhead. The companion load generator in
// loadgen.go drives a Server at a configurable concurrency and reports
// throughput, feeding the BenchmarkServeQPS* suite.
package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/expertise"
	"repro/internal/textutil"
)

// Config tunes a Server.
type Config struct {
	// CacheSize is the maximum number of cached query results across
	// both endpoints. Zero disables caching entirely.
	CacheSize int
}

// DefaultConfig returns the serving defaults.
func DefaultConfig() Config { return Config{CacheSize: 4096} }

// Stats is a snapshot of the server's counters.
type Stats struct {
	// Queries is the total number of requests served.
	Queries int64
	// CacheHits and CacheMisses split Queries by cache outcome. With
	// caching disabled every query is a miss.
	CacheHits, CacheMisses int64
	// CacheEntries is the current number of cached results.
	CacheEntries int
}

// cacheKey distinguishes the two endpoints for one normalized query.
type cacheKey struct {
	query    string
	baseline bool
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key     cacheKey
	experts []expertise.Expert
}

// Server answers concurrent expert-search requests over a shared
// pipeline. All methods are safe for concurrent use.
type Server struct {
	det *core.Detector
	cfg Config

	queries, hits, misses atomic.Int64

	// mu guards the LRU structures only; detector calls run outside the
	// lock, so two concurrent misses on the same cold query may both
	// compute it (the second insert wins — results are deterministic, so
	// either value is correct).
	mu    sync.Mutex
	order *list.List // front = most recently used; values are *cacheEntry
	slots map[cacheKey]*list.Element
}

// New wires a server over an online detector.
func New(det *core.Detector, cfg Config) *Server {
	s := &Server{det: det, cfg: cfg}
	if cfg.CacheSize > 0 {
		s.order = list.New()
		s.slots = make(map[cacheKey]*list.Element, cfg.CacheSize)
	}
	return s
}

// Detector returns the underlying online detector.
func (s *Server) Detector() *core.Detector { return s.det }

// Search answers one e# query. The returned slice may be shared with
// the cache and other callers — treat it as read-only.
func (s *Server) Search(query string) []expertise.Expert {
	return s.serve(query, false)
}

// SearchBaseline answers one unexpanded Pal & Counts baseline query.
// The returned slice may be shared — treat it as read-only.
func (s *Server) SearchBaseline(query string) []expertise.Expert {
	return s.serve(query, true)
}

func (s *Server) serve(query string, baseline bool) []expertise.Expert {
	s.queries.Add(1)
	key := cacheKey{query: textutil.Normalize(query), baseline: baseline}
	if experts, ok := s.lookup(key); ok {
		s.hits.Add(1)
		return experts
	}
	s.misses.Add(1)
	var experts []expertise.Expert
	if baseline {
		experts = s.det.SearchBaseline(key.query)
	} else {
		experts, _ = s.det.Search(key.query)
	}
	s.insert(key, experts)
	return experts
}

// lookup fetches a cached result and marks it most recently used.
func (s *Server) lookup(key cacheKey) ([]expertise.Expert, bool) {
	if s.slots == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.slots[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).experts, true
}

// insert stores a result, evicting the least recently used entry when
// the cache is full.
func (s *Server) insert(key cacheKey, experts []expertise.Expert) {
	if s.slots == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.slots[key]; ok {
		// A concurrent miss on the same query filled the slot first;
		// refresh it and keep a single entry.
		el.Value.(*cacheEntry).experts = experts
		s.order.MoveToFront(el)
		return
	}
	s.slots[key] = s.order.PushFront(&cacheEntry{key: key, experts: experts})
	if s.order.Len() > s.cfg.CacheSize {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.slots, oldest.Value.(*cacheEntry).key)
	}
}

// ResetStats zeroes the counters (the cache contents are kept).
func (s *Server) ResetStats() {
	s.queries.Store(0)
	s.hits.Store(0)
	s.misses.Store(0)
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Queries:     s.queries.Load(),
		CacheHits:   s.hits.Load(),
		CacheMisses: s.misses.Load(),
	}
	if s.slots != nil {
		s.mu.Lock()
		st.CacheEntries = s.order.Len()
		s.mu.Unlock()
	}
	return st
}
