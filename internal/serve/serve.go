// Package serve is the online serving layer of the reproduction: a
// concurrent query front-end over a shared e# engine behind the
// Backend interface — frozen (core.Detector), live (core.LiveDetector
// over the streaming index in internal/ingest) or sharded
// (core.ShardedLiveDetector over the author-partitioned router in
// internal/shard). The paper's deployment answers expert queries from
// production web-search traffic while new tweets keep arriving; this
// package models that stage so serving throughput can be measured and
// improved PR over PR under both read-only and mixed read/write load.
//
// A Server multiplexes concurrent Search and SearchBaseline requests
// over one Backend and fronts them with an LRU result cache keyed on
// the canonical token set of the query — lower-cased, sorted and
// de-duplicated. The paper's AND-match predicate is invariant under
// token permutation and repetition, and domain lookup resolves the
// whole canonical class to one community (domains.Collection.Lookup),
// so "go rust", "rust go" and "go go rust" are one query: they share a
// cache slot and coalesce onto a single in-flight computation. The
// backend still receives the normalized (order-preserving) text, so
// the ablation-only phrase-match mode keeps its verbatim semantics —
// at the cost that phrase-mode backends must not share a Server cache
// across permutations (no shipped configuration does). Three
// mechanisms keep the cache honest and cheap under load:
//
//   - Epoch invalidation: every cache entry is tagged with the
//     backend's view identity at compute time. A live backend bumps
//     its epoch on every snapshot swap (ingest, seal, compaction), so
//     a lookup that finds an entry from an older view drops it and
//     recomputes instead of serving pre-ingest results. A sharded
//     backend (VectorBackend) tags entries with the full vector of
//     per-shard epochs, and an entry is stale as soon as any component
//     advances — exactly one shard absorbing a post invalidates the
//     results computed over the older composite view. Frozen backends
//     report a constant epoch and never invalidate.
//   - Singleflight: concurrent identical cold misses coalesce onto one
//     in-flight computation; followers wait for the leader's result
//     instead of running the detector N times. Coalescing keys on the
//     normalized query, not the epoch sample, so cold misses under
//     ingest churn still collapse; the leader's entry carries the
//     epoch (or epoch vector) it sampled before computing, which is
//     conservatively already stale if the index moved mid-flight.
//   - Admission control: degenerate queries (empty, or over
//     Config.MaxQueryTerms tokens) are rejected with a typed error
//     before touching the cache, and under overload a cold miss is
//     shed with ErrOverloaded once Config.MaxInflightMisses detector
//     computations are already running — warm cache hits are always
//     answered, so a saturated backend degrades to a read-only cache
//     instead of queueing unbounded detector work.
//
// SearchContext and SearchBaselineContext carry the caller's deadline
// into the backend (ContextBackend, satisfied by every core detector):
// the remaining budget rides the context down the scatter-gather into
// per-shard RPC deadlines, and an expired budget surfaces as the
// context's error — the gateway maps it to 504.
//
// Build detectors with core.OnlineConfig.MatchWorkers = 1 when serving
// concurrently: request-level parallelism already saturates the cores.
// The load generators in loadgen.go drive a Server at configurable
// concurrency — read-only (RunLoad) or mixed with live ingestion into
// any Sink, single-node index or sharded router alike (RunMixedLoad) —
// feeding the BenchmarkServeQPS* suites here and in internal/shard.
package serve

import (
	"container/list"
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/expertise"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/textutil"
)

// Backend is the query engine a Server fronts. core.Detector (frozen
// index, constant epoch), core.LiveDetector (streaming index, epoch
// bumped on every snapshot swap) and core.ShardedLiveDetector
// (author-partitioned stream; also a VectorBackend) all satisfy it.
type Backend interface {
	Search(query string) ([]expertise.Expert, core.SearchTrace)
	SearchBaseline(query string) []expertise.Expert
	// Epoch identifies the index view queries currently run against;
	// cached results from older epochs are stale. Vector backends
	// return a scalar digest here (the component sum) and expose the
	// full vector through EpochVector.
	Epoch() uint64
}

// ContextBackend is a Backend that can run a query under a caller
// deadline. Every core detector satisfies it; the sharded detector
// threads the context down its scatter-gather into per-shard RPC
// deadlines. A Server detects the interface at construction; without
// it, SearchContext still rejects, sheds and coalesces under the
// caller's context but runs the backend itself uncancellably.
type ContextBackend interface {
	SearchContext(ctx context.Context, query string) ([]expertise.Expert, core.SearchTrace, error)
	SearchBaselineContext(ctx context.Context, query string) ([]expertise.Expert, error)
}

// Typed request-rejection errors. The gateway maps them onto HTTP
// status codes (400, 400, 503); callers test with errors.Is.
var (
	// ErrEmptyQuery rejects a query that tokenizes to nothing. The
	// AND-match predicate is defined over a non-empty term set
	// (textutil.ContainsAll matches no tweet on zero tokens), so such a
	// request can only ever return an empty result — rejecting it at
	// admission spares a pointless scatter across every shard.
	ErrEmptyQuery = errors.New("serve: empty query")
	// ErrTooManyTerms rejects a query over Config.MaxQueryTerms tokens.
	ErrTooManyTerms = errors.New("serve: too many query terms")
	// ErrOverloaded sheds a cold cache miss under overload
	// (Config.MaxInflightMisses); warm hits are never shed.
	ErrOverloaded = errors.New("serve: overloaded, cold query shed")
)

// VectorBackend is a Backend whose view identity is a vector of
// per-shard epochs (core.ShardedLiveDetector over a shard.Router or a
// remote cluster). A Server detects the interface at construction and
// keys cache invalidation on the vector: an entry is stale as soon as
// any component advances past the entry's, so ingest on exactly one
// shard invalidates results computed over the older composite view.
type VectorBackend interface {
	Backend
	// EpochVector appends the per-shard epochs of the current view to
	// dst (capacity reused, contents discarded). Components are
	// per-shard monotonic, except that an unobservable shard (its
	// transport failed) reports core.EpochUnknown — the server bypasses
	// the cache entirely for such samples, in both directions.
	EpochVector(dst []uint64) []uint64
}

// PartialReporter is a Backend that can degrade to partial results
// when some of its shards are unreachable (core.ShardedLiveDetector
// over remote shards). A Server detects the interface at construction
// and surfaces the counters through Stats.
type PartialReporter interface {
	// PartialStats reports queries answered with at least one shard
	// missing, and the total per-shard failures behind them.
	PartialStats() (partialQueries, shardErrors int64)
}

// FailoverReporter is a Backend whose shards can answer a read from
// more than one replica (core.ShardedLiveDetector over a cluster with
// replica.Set members). A Server detects the interface at
// construction and mirrors the counter through Stats — the healthy
// counterpart of PartialReporter: a failover kept the query whole
// where a plain shard would have degraded to partial results.
type FailoverReporter interface {
	// Failovers reports reads answered by a non-first-choice replica
	// after at least one replica failed.
	Failovers() int64
}

// ReshardReporter is a Backend whose shard set can be live-resharded
// (core.ShardedLiveDetector with an attached shard.Migration). A
// Server detects the interface at construction and surfaces the
// migration's progress snapshot through Stats.Reshard — state, handoff
// volume and dual-read-window hits — so an operator can watch an N→M
// migration from the serving plane.
type ReshardReporter interface {
	// ReshardStats returns the in-flight (or finished) migration's
	// progress snapshot; ok is false when no migration is attached.
	ReshardStats() (st shard.MigrationStats, ok bool)
}

// Config tunes a Server.
type Config struct {
	// CacheSize is the maximum number of cached query results across
	// both endpoints. Zero disables caching entirely (in-flight
	// coalescing still applies).
	CacheSize int
	// Obs, when non-nil, attaches the server to a metrics registry: the
	// request-latency histogram serve_request_ns, read-callback mirrors
	// of every Stats counter (serve_queries, serve_cache_hits,
	// serve_cache_misses, serve_coalesced, serve_invalidations,
	// serve_uncacheable, serve_cache_entries), and a slow-query ring
	// reachable through SlowLog. Nil keeps the request path free of
	// clock reads and trace assembly — the counters in Stats are always
	// maintained either way.
	Obs *obs.Registry
	// SlowLogSize bounds the slow-query ring (default 64 when Obs is
	// set); SlowLogThreshold is the minimum end-to-end latency a kept
	// trace has (zero keeps every request, useful in tests and demos).
	SlowLogSize      int
	SlowLogThreshold time.Duration
	// MaxQueryTerms caps the number of tokens a query may carry;
	// longer queries are rejected with ErrTooManyTerms. Zero means
	// unlimited. Empty queries are always rejected (ErrEmptyQuery).
	MaxQueryTerms int
	// MaxInflightMisses, when positive, bounds concurrent detector
	// computations: a cold miss that would start one beyond the bound
	// is shed with ErrOverloaded instead of queueing. Warm cache hits
	// and coalescing followers are never shed, so an overloaded server
	// degrades to a read-only cache. Zero disables shedding.
	MaxInflightMisses int
}

// DefaultConfig returns the serving defaults.
func DefaultConfig() Config { return Config{CacheSize: 4096, MaxQueryTerms: 64} }

// Stats is a snapshot of the server's counters.
type Stats struct {
	// Queries is the total number of requests served.
	Queries int64
	// CacheHits and CacheMisses split the admitted portion of Queries
	// by outcome: a miss ran the detector (or aborted waiting to), a
	// hit did not (served from cache or coalesced onto another
	// request's computation). CacheHits + CacheMisses + Shed + Rejected
	// always sums to Queries.
	CacheHits, CacheMisses int64
	// Shed counts cold misses refused with ErrOverloaded under
	// Config.MaxInflightMisses; Rejected counts degenerate queries
	// refused before the cache (ErrEmptyQuery, ErrTooManyTerms).
	Shed, Rejected int64
	// Coalesced counts the subset of CacheHits that waited on an
	// in-flight identical request instead of reading a stored entry.
	Coalesced int64
	// Invalidations counts cache entries dropped because the backend's
	// epoch moved past the entry's (live ingestion made them stale).
	Invalidations int64
	// CacheEntries is the current number of cached results; Epoch is
	// the backend's current epoch (for a vector backend, the scalar
	// digest — see EpochVector).
	CacheEntries int
	Epoch        uint64
	// EpochVector is the backend's current per-shard epoch vector; nil
	// for scalar backends. A core.EpochUnknown component means that
	// shard's transport is failing right now.
	EpochVector []uint64
	// Uncacheable counts requests served around the cache because the
	// epoch-vector sample contained an unknown component (a shard's
	// transport failed mid-sample): such a view can neither be trusted
	// against cached entries nor admit new ones.
	Uncacheable int64
	// PartialResults and ShardErrors mirror the backend's fail-fast
	// degradation counters (PartialReporter): queries answered with at
	// least one shard missing, and the per-shard failures behind them.
	// Zero for backends that cannot degrade.
	PartialResults, ShardErrors int64
	// Failovers mirrors the backend's replicated-read counter
	// (FailoverReporter): reads a replicated shard answered from a
	// non-first-choice replica after a replica failure — degradation
	// *avoided*, where PartialResults counts degradation suffered.
	// Zero for backends without replicated shards.
	Failovers int64
	// Reshard is the live-resharding progress snapshot of the
	// backend's attached migration (ReshardReporter); nil when the
	// backend cannot reshard or no migration is attached.
	Reshard *shard.MigrationStats
}

// cacheKey distinguishes the two endpoints for one canonical query —
// the sorted, de-duplicated token set, under which both the AND-match
// predicate and domain lookup are invariant, so every permutation and
// repetition of a query shares one slot.
type cacheKey struct {
	query    string
	baseline bool
}

// cacheEntry is one LRU slot. Exactly one of the epoch fields is
// meaningful: scalar backends tag entries with epoch, vector backends
// with epochVec (the buffer is owned by the entry and reused across
// refreshes).
type cacheEntry struct {
	key      cacheKey
	epoch    uint64
	epochVec []uint64
	experts  []expertise.Expert
}

// flight is one in-progress computation that duplicate requests wait
// on. experts and err are written once, before done closes and
// releases the waiters; a channel (not a WaitGroup) so a follower can
// stop waiting when its own context expires first.
type flight struct {
	done    chan struct{}
	experts []expertise.Expert
	err     error
}

// Server answers concurrent expert-search requests over a shared
// backend. All methods are safe for concurrent use.
type Server struct {
	backend Backend
	cfg     Config
	// vec is non-nil when the backend exposes a per-shard epoch vector;
	// vecPool recycles the per-request sample buffers so the hot path
	// stays allocation-free once warm. partial is non-nil when the
	// backend reports fail-fast degradation counters.
	vec      VectorBackend
	vecPool  sync.Pool // of *[]uint64
	partial  PartialReporter
	failover FailoverReporter
	reshard  ReshardReporter

	ctxBackend ContextBackend

	queries, hits, misses    atomic.Int64
	coalesced, invalidations atomic.Int64
	uncacheable              atomic.Int64
	shed, rejected           atomic.Int64

	// Observability (nil without Config.Obs): end-to-end latency
	// histogram and the slow-query ring. The Stats counters above are
	// mirrored into the registry by read callbacks, so instrumentation
	// adds no second accounting on the request path.
	obsOn    bool
	obsReqNS *obs.Histogram
	slow     *obs.SlowLog

	// mu guards the LRU structures and the in-flight table; detector
	// calls run outside the lock.
	mu       sync.Mutex
	order    *list.List // front = most recently used; values are *cacheEntry
	slots    map[cacheKey]*list.Element
	inflight map[cacheKey]*flight
}

// New wires a server over a backend (a frozen core.Detector, a live
// core.LiveDetector, or a sharded core.ShardedLiveDetector — the
// latter's epoch vector is detected and used for cache invalidation).
func New(b Backend, cfg Config) *Server {
	s := &Server{backend: b, cfg: cfg, inflight: make(map[cacheKey]*flight)}
	if vb, ok := b.(VectorBackend); ok {
		s.vec = vb
		s.vecPool.New = func() any { return new([]uint64) }
	}
	if pr, ok := b.(PartialReporter); ok {
		s.partial = pr
	}
	if fr, ok := b.(FailoverReporter); ok {
		s.failover = fr
	}
	if rr, ok := b.(ReshardReporter); ok {
		s.reshard = rr
	}
	if cb, ok := b.(ContextBackend); ok {
		s.ctxBackend = cb
	}
	if cfg.CacheSize > 0 {
		s.order = list.New()
		s.slots = make(map[cacheKey]*list.Element, cfg.CacheSize)
	}
	if cfg.Obs != nil {
		s.obsOn = true
		s.obsReqNS = cfg.Obs.Histogram("serve_request_ns")
		size := cfg.SlowLogSize
		if size <= 0 {
			size = 64
		}
		s.slow = obs.NewSlowLog(size, cfg.SlowLogThreshold)
		cfg.Obs.RegisterFunc("serve_queries", s.queries.Load)
		cfg.Obs.RegisterFunc("serve_cache_hits", s.hits.Load)
		cfg.Obs.RegisterFunc("serve_cache_misses", s.misses.Load)
		cfg.Obs.RegisterFunc("serve_coalesced", s.coalesced.Load)
		cfg.Obs.RegisterFunc("serve_invalidations", s.invalidations.Load)
		cfg.Obs.RegisterFunc("serve_uncacheable", s.uncacheable.Load)
		cfg.Obs.RegisterFunc("serve_shed", s.shed.Load)
		cfg.Obs.RegisterFunc("serve_rejected", s.rejected.Load)
		cfg.Obs.RegisterFunc("serve_cache_entries", func() int64 {
			if s.slots == nil {
				return 0
			}
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(s.order.Len())
		})
	}
	return s
}

// SlowLog returns the slow-query ring, nil when the server was built
// without Config.Obs.
func (s *Server) SlowLog() *obs.SlowLog { return s.slow }

// Backend returns the underlying query engine.
func (s *Server) Backend() Backend { return s.backend }

// Search answers one e# query. The returned slice may be shared with
// the cache and other callers — treat it as read-only. Degenerate
// queries return nil (use SearchContext for the typed error).
func (s *Server) Search(query string) []expertise.Expert {
	experts, _ := s.serve(context.Background(), query, false)
	return experts
}

// SearchBaseline answers one unexpanded Pal & Counts baseline query.
// The returned slice may be shared — treat it as read-only.
func (s *Server) SearchBaseline(query string) []expertise.Expert {
	experts, _ := s.serve(context.Background(), query, true)
	return experts
}

// SearchContext answers one e# query under the caller's context: the
// deadline propagates into the backend (ContextBackend), admission
// failures surface as ErrEmptyQuery / ErrTooManyTerms / ErrOverloaded,
// and an expired budget as the context's error. The returned slice may
// be shared with the cache and other callers — treat it as read-only.
func (s *Server) SearchContext(ctx context.Context, query string) ([]expertise.Expert, error) {
	return s.serve(ctx, query, false)
}

// SearchBaselineContext is SearchContext for the unexpanded Pal &
// Counts baseline endpoint.
func (s *Server) SearchBaselineContext(ctx context.Context, query string) ([]expertise.Expert, error) {
	return s.serve(ctx, query, true)
}

func (s *Server) serve(ctx context.Context, query string, baseline bool) ([]expertise.Expert, error) {
	if !s.obsOn {
		return s.serveTraced(ctx, query, baseline, nil)
	}
	// Instrumented path: time the request end to end, capture the
	// outcome and (for misses against an instrumented sharded backend)
	// the per-shard spans, and offer the trace to the slow-query ring.
	qt := obs.QueryTrace{Baseline: baseline, Start: time.Now()}
	var failovers0 int64
	if s.failover != nil {
		failovers0 = s.failover.Failovers()
	}
	start := time.Now()
	experts, err := s.serveTraced(ctx, query, baseline, &qt)
	qt.TotalNS = time.Since(start).Nanoseconds()
	if s.failover != nil {
		// Best-effort under concurrency: the delta of the backend's
		// cumulative counter across this request.
		qt.Failovers = s.failover.Failovers() - failovers0
	}
	s.obsReqNS.Observe(qt.TotalNS)
	s.slow.Record(qt)
	return experts, err
}

// serveTraced is the request path proper. qt, non-nil only on the
// instrumented path, receives the normalized query, the cache outcome
// and the detector-side trace fields.
func (s *Server) serveTraced(ctx context.Context, query string, baseline bool, qt *obs.QueryTrace) ([]expertise.Expert, error) {
	s.queries.Add(1)
	// Admission: tokenize once, reject degenerate queries before any
	// cache work. The backend receives the normalized (order-kept)
	// text; the cache keys on the canonical token set, so permutations
	// and repetitions of one query share a slot and a flight.
	toks := textutil.Tokenize(query)
	if len(toks) == 0 {
		s.rejected.Add(1)
		if qt != nil {
			qt.Outcome = obs.OutcomeRejected
		}
		return nil, ErrEmptyQuery
	}
	if s.cfg.MaxQueryTerms > 0 && len(toks) > s.cfg.MaxQueryTerms {
		s.rejected.Add(1)
		if qt != nil {
			qt.Query = strings.Join(toks, " ")
			qt.Outcome = obs.OutcomeRejected
		}
		return nil, ErrTooManyTerms
	}
	norm := strings.Join(toks, " ")
	canon := norm
	if !tokensCanonical(toks) {
		// CanonicalTokens sorts in place; norm is already materialized.
		canon = strings.Join(textutil.CanonicalTokens(toks), " ")
	}
	key := cacheKey{query: canon, baseline: baseline}
	if qt != nil {
		qt.Query = norm
	}
	// Sample the view identity before any cache decision: for a vector
	// backend the full per-shard vector (into a pooled buffer), for a
	// scalar backend the single epoch.
	var epoch uint64
	var evec []uint64
	uncacheable := false
	if s.vec != nil {
		buf := s.vecPool.Get().(*[]uint64)
		*buf = s.vec.EpochVector((*buf)[:0])
		evec = *buf
		defer s.vecPool.Put(buf)
		// A sample with an unknown component (a shard's transport failed
		// mid-sample) identifies no view at all: it can neither be
		// compared against cached entries nor tag a new one, so this
		// request goes around the cache in both directions. In-flight
		// coalescing still applies — identical degraded requests share
		// one computation.
		for _, e := range evec {
			if e == core.EpochUnknown {
				uncacheable = true
				s.uncacheable.Add(1)
				break
			}
		}
	} else {
		epoch = s.backend.Epoch()
	}

	var f *flight
	for {
		s.mu.Lock()
		if !uncacheable {
			if experts, ok := s.lookupLocked(key, epoch, evec); ok {
				s.mu.Unlock()
				s.hits.Add(1)
				if qt != nil {
					qt.Outcome = obs.OutcomeHit
				}
				return experts, nil
			}
		}
		prev := s.inflight[key]
		if prev == nil {
			break
		}
		// An identical request is already computing: coalesce onto it —
		// unless this request's own deadline fires first. The follower
		// observes the view the leader started under — standard
		// singleflight semantics.
		s.mu.Unlock()
		select {
		case <-prev.done:
		case <-ctx.Done():
			// Counted as a miss: the caller got no result, so "hit"
			// would overstate cache efficacy. Keeps the invariant
			// queries = hits + misses + shed + rejected.
			s.misses.Add(1)
			if qt != nil {
				qt.Outcome = obs.OutcomeMiss
			}
			return nil, ctx.Err()
		}
		if prev.err == nil {
			s.hits.Add(1)
			s.coalesced.Add(1)
			if qt != nil {
				qt.Outcome = obs.OutcomeCoalesced
			}
			return prev.experts, nil
		}
		// The leader failed — typically its own budget expired, which
		// says nothing about this request's. Loop and try again as
		// leader (or onto a fresher flight) under our own context.
	}
	// Cold miss. Under overload, shed it rather than queue detector
	// work: warm hits above are always answered, so a saturated server
	// degrades to a read-only cache.
	if s.cfg.MaxInflightMisses > 0 && len(s.inflight) >= s.cfg.MaxInflightMisses {
		s.mu.Unlock()
		s.shed.Add(1)
		if qt != nil {
			qt.Outcome = obs.OutcomeShed
		}
		return nil, ErrOverloaded
	}
	f = &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()

	s.misses.Add(1)
	// Deregister and release the waiters even if the backend panics —
	// otherwise the key would block every future request forever. Only
	// a completed, error-free computation is cached; a panic or a
	// deadline expiry caches nothing.
	completed := false
	defer func() {
		s.mu.Lock()
		if completed && !uncacheable && f.err == nil {
			// Tag the entry with the epoch (or vector) sampled before
			// computing: if the index moved mid-flight, the entry is
			// conservatively already stale and the next lookup
			// recomputes against the new view.
			s.insertLocked(key, f.experts, epoch, evec)
		}
		delete(s.inflight, key)
		s.mu.Unlock()
		close(f.done)
	}()
	if qt != nil {
		if uncacheable {
			qt.Outcome = obs.OutcomeUncacheable
		} else {
			qt.Outcome = obs.OutcomeMiss
		}
	}
	if baseline {
		if s.ctxBackend != nil {
			f.experts, f.err = s.ctxBackend.SearchBaselineContext(ctx, norm)
		} else {
			f.experts = s.backend.SearchBaseline(norm)
		}
	} else {
		var tr core.SearchTrace
		if s.ctxBackend != nil {
			f.experts, tr, f.err = s.ctxBackend.SearchContext(ctx, norm)
		} else {
			f.experts, tr = s.backend.Search(norm)
		}
		if qt != nil {
			qt.MatchedTweets = tr.MatchedTweets
			qt.MergeRankNS = tr.MergeRankNS
			qt.Shards = tr.Shards
		}
	}
	completed = true
	return f.experts, f.err
}

// tokensCanonical reports whether toks is already strictly increasing
// — sorted with no duplicates — so the normalized string can double as
// the canonical key without a second join. Single-token queries, the
// common case, always pass.
func tokensCanonical(toks []string) bool {
	for i := 1; i < len(toks); i++ {
		if toks[i] <= toks[i-1] {
			return false
		}
	}
	return true
}

// staleVec reports whether an entry tagged with vector entryVec is
// stale against the request's sample: stale as soon as any component
// advanced past the entry's. Components an entry is *ahead* on (a
// concurrent request cached it after an ingest) do not count against
// it — per-component monotonic forward steps are fresh, mirroring the
// scalar rule. A length mismatch (resharded backend) is conservatively
// stale.
func staleVec(entryVec, sample []uint64) bool {
	if len(entryVec) != len(sample) {
		return true
	}
	for i, e := range entryVec {
		if e < sample[i] {
			return true
		}
	}
	return false
}

// lookupLocked fetches a cached result and marks it most recently
// used. An entry from an older view — scalar epoch behind, or any
// vector component behind — is dropped: the live index has moved on,
// so serving it would return pre-ingest results.
func (s *Server) lookupLocked(key cacheKey, epoch uint64, evec []uint64) ([]expertise.Expert, bool) {
	if s.slots == nil {
		return nil, false
	}
	el, ok := s.slots[key]
	if !ok {
		return nil, false
	}
	entry := el.Value.(*cacheEntry)
	stale := false
	if evec != nil {
		stale = staleVec(entry.epochVec, evec)
	} else {
		// Staleness only: an entry tagged newer than this request's
		// epoch sample (a concurrent request cached it after an ingest)
		// is fresh — serving it is a monotonic step forward, not a
		// stale read.
		stale = entry.epoch < epoch
	}
	if stale {
		s.order.Remove(el)
		delete(s.slots, key)
		s.invalidations.Add(1)
		return nil, false
	}
	s.order.MoveToFront(el)
	return entry.experts, true
}

// insertLocked stores a result tagged with the request's sampled view
// (scalar epoch or per-shard vector), evicting the least recently used
// entry when the cache is full.
func (s *Server) insertLocked(key cacheKey, experts []expertise.Expert, epoch uint64, evec []uint64) {
	if s.slots == nil {
		return
	}
	if el, ok := s.slots[key]; ok {
		// A stale entry raced back in (or an invalidated key was
		// recomputed); refresh it and keep a single entry.
		entry := el.Value.(*cacheEntry)
		entry.experts = experts
		entry.epoch = epoch
		entry.epochVec = append(entry.epochVec[:0], evec...)
		s.order.MoveToFront(el)
		return
	}
	entry := &cacheEntry{key: key, epoch: epoch, experts: experts}
	if evec != nil {
		entry.epochVec = append([]uint64(nil), evec...)
	}
	s.slots[key] = s.order.PushFront(entry)
	if s.order.Len() > s.cfg.CacheSize {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.slots, oldest.Value.(*cacheEntry).key)
	}
}

// ResetStats zeroes the counters (the cache contents are kept). The
// backend's partial-result counters are cumulative and not reset.
func (s *Server) ResetStats() {
	s.queries.Store(0)
	s.hits.Store(0)
	s.misses.Store(0)
	s.coalesced.Store(0)
	s.invalidations.Store(0)
	s.uncacheable.Store(0)
	s.shed.Store(0)
	s.rejected.Store(0)
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Queries:       s.queries.Load(),
		CacheHits:     s.hits.Load(),
		CacheMisses:   s.misses.Load(),
		Coalesced:     s.coalesced.Load(),
		Invalidations: s.invalidations.Load(),
		Uncacheable:   s.uncacheable.Load(),
		Shed:          s.shed.Load(),
		Rejected:      s.rejected.Load(),
		Epoch:         s.backend.Epoch(),
	}
	if s.vec != nil {
		st.EpochVector = s.vec.EpochVector(nil)
	}
	if s.partial != nil {
		st.PartialResults, st.ShardErrors = s.partial.PartialStats()
	}
	if s.failover != nil {
		st.Failovers = s.failover.Failovers()
	}
	if s.reshard != nil {
		if rst, ok := s.reshard.ReshardStats(); ok {
			st.Reshard = &rst
		}
	}
	if s.slots != nil {
		s.mu.Lock()
		st.CacheEntries = s.order.Len()
		s.mu.Unlock()
	}
	return st
}
