package serve_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/domains"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/serve"
	"repro/internal/world"
)

// ExampleServer shows the serving front-end over a live backend: the
// first query computes and caches, the repeat hits, and an ingest
// advances the backend's epoch so the stale entry is dropped and
// recomputed instead of serving pre-ingest results.
func ExampleServer() {
	w := world.Build(world.TinyConfig())
	base := microblog.BuildCorpus(w, []microblog.Post{
		{Author: 0, Text: "espresso grinder settings"},
	})
	idx := ingest.New(base, ingest.DefaultConfig())
	defer idx.Close()
	// An empty collection means no query expansion — fine for a demo;
	// production passes the mined domain collection.
	live := core.NewLiveDetector(&domains.Collection{}, idx, core.DefaultOnlineConfig())
	s := serve.New(live, serve.DefaultConfig())

	s.Search("espresso") // cold miss -> computes and caches
	s.Search("espresso") // warm hit
	idx.Ingest(microblog.Post{Author: 1, Text: "espresso tasting notes"})
	s.Search("espresso") // stale epoch -> invalidated, recomputed

	st := s.Stats()
	fmt.Println("queries:", st.Queries)
	fmt.Println("hits:", st.CacheHits, "misses:", st.CacheMisses)
	fmt.Println("invalidations:", st.Invalidations)
	// Output:
	// queries: 3
	// hits: 1 misses: 2
	// invalidations: 1
}
