package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// LoadConfig parameterizes one load-generator run.
type LoadConfig struct {
	// Queries is the pool the generator cycles through (round-robin, so
	// runs are deterministic and every query gets equal weight).
	Queries []string
	// Total is the number of requests to issue.
	Total int
	// Workers is the number of concurrent client goroutines. Zero or
	// one means sequential.
	Workers int
	// BaselineEvery mixes a SearchBaseline request in every n-th
	// request (zero means e# queries only), exercising both endpoints
	// the way an A/B'd production front-end would.
	BaselineEvery int
}

// LoadResult reports one load-generator run.
type LoadResult struct {
	Queries  int
	Duration time.Duration
	// QPS is Queries / Duration.
	QPS float64
	// Answered counts requests that returned at least one expert.
	Answered int
	// Stats is the server counter snapshot taken over the run.
	Stats Stats
}

// RunLoad drives the server with cfg.Total requests spread over
// cfg.Workers concurrent clients and reports throughput. Server
// counters are reset at the start so Stats covers exactly this run.
func RunLoad(s *Server, cfg LoadConfig) LoadResult {
	if cfg.Total <= 0 || len(cfg.Queries) == 0 {
		return LoadResult{}
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > cfg.Total {
		workers = cfg.Total
	}
	s.ResetStats()

	var answered atomic.Int64
	run := func(i int) {
		q := cfg.Queries[i%len(cfg.Queries)]
		var experts int
		if cfg.BaselineEvery > 0 && (i+1)%cfg.BaselineEvery == 0 {
			experts = len(s.SearchBaseline(q))
		} else {
			experts = len(s.Search(q))
		}
		if experts > 0 {
			answered.Add(1)
		}
	}

	start := time.Now()
	if workers == 1 {
		for i := 0; i < cfg.Total; i++ {
			run(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= cfg.Total {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	dur := time.Since(start)

	return LoadResult{
		Queries:  cfg.Total,
		Duration: dur,
		QPS:      float64(cfg.Total) / dur.Seconds(),
		Answered: int(answered.Load()),
		Stats:    s.Stats(),
	}
}
