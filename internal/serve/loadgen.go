package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/microblog"
	"repro/internal/world"
)

// Sink is the write side a mixed load streams posts into. Both the
// single-node streaming index (*ingest.Index) and the
// author-partitioned router (*shard.Router) satisfy it, so the same
// generator measures single-node and sharded mixed throughput.
type Sink interface {
	// Ingest accepts one post; the returned id is sink-local (global
	// for an index, shard-local for a router).
	Ingest(p microblog.Post) microblog.TweetID
	// World returns the generating world posts are drawn from.
	World() *world.World
	// Epoch identifies the sink's current view (scalar digest for a
	// sharded sink), used to report the churn a run caused.
	Epoch() uint64
}

// LoadConfig parameterizes one load-generator run.
type LoadConfig struct {
	// Queries is the pool the generator cycles through (round-robin, so
	// runs are deterministic and every query gets equal weight).
	Queries []string
	// Total is the number of requests to issue.
	Total int
	// Workers is the number of concurrent client goroutines. Zero or
	// one means sequential.
	Workers int
	// BaselineEvery mixes a SearchBaseline request in every n-th
	// request (zero means e# queries only), exercising both endpoints
	// the way an A/B'd production front-end would.
	BaselineEvery int
}

// LoadResult reports one load-generator run.
type LoadResult struct {
	Queries  int
	Duration time.Duration
	// QPS is Queries / Duration.
	QPS float64
	// Answered counts requests that returned at least one expert.
	Answered int
	// Stats is the server counter snapshot taken over the run.
	Stats Stats
}

// RunLoad drives the server with cfg.Total requests spread over
// cfg.Workers concurrent clients and reports throughput. Server
// counters are reset at the start so Stats covers exactly this run.
func RunLoad(s *Server, cfg LoadConfig) LoadResult {
	if cfg.Total <= 0 || len(cfg.Queries) == 0 {
		return LoadResult{}
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > cfg.Total {
		workers = cfg.Total
	}
	s.ResetStats()

	var answered atomic.Int64
	run := func(i int) {
		q := cfg.Queries[i%len(cfg.Queries)]
		var experts int
		if cfg.BaselineEvery > 0 && (i+1)%cfg.BaselineEvery == 0 {
			experts = len(s.SearchBaseline(q))
		} else {
			experts = len(s.Search(q))
		}
		if experts > 0 {
			answered.Add(1)
		}
	}

	start := time.Now()
	if workers == 1 {
		for i := 0; i < cfg.Total; i++ {
			run(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= cfg.Total {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	dur := time.Since(start)

	return LoadResult{
		Queries:  cfg.Total,
		Duration: dur,
		QPS:      float64(cfg.Total) / dur.Seconds(),
		Answered: int(answered.Load()),
		Stats:    s.Stats(),
	}
}

// MixedLoadConfig parameterizes one mixed read/write run: search
// clients hammer the server while ingester goroutines stream live
// posts into the index the server's backend searches.
type MixedLoadConfig struct {
	// Queries is the search pool (round-robin).
	Queries []string
	// Searches is the total number of search requests; SearchWorkers
	// the concurrent clients issuing them (zero or one = sequential).
	Searches      int
	SearchWorkers int
	// Ingests is the total number of posts to stream; IngestWorkers
	// the concurrent writers (zero or one = a single writer). Each
	// worker draws from its own deterministic PostStream.
	Ingests       int
	IngestWorkers int
	// BaselineEvery mixes a SearchBaseline request in every n-th
	// search (zero means e# queries only).
	BaselineEvery int
	// Seed varies the post streams; worker w uses Seed+w.
	Seed uint64
	// Stream tunes post generation. A zero value means defaults.
	Stream microblog.StreamConfig
}

// MixedLoadResult reports one mixed read/write run.
type MixedLoadResult struct {
	Duration time.Duration
	// SearchQPS and IngestPerSec are the two throughputs over the
	// whole run (both sides run concurrently).
	Searches     int
	SearchQPS    float64
	Ingested     int
	IngestPerSec float64
	// Answered counts searches that returned at least one expert.
	Answered int
	// StartEpoch and EndEpoch bound the index churn the run caused.
	StartEpoch, EndEpoch uint64
	// Stats is the server counter snapshot taken over the run.
	Stats Stats
}

// RunMixedLoad drives the server with cfg.Searches requests while
// streaming cfg.Ingests posts into idx (a single-node *ingest.Index or
// a sharded *shard.Router), and reports both throughputs. Either side
// may be empty: a write-only run still ingests, a read-only run
// degenerates to RunLoad semantics. Server counters are reset at the
// start so Stats covers exactly this run. The server's backend should
// be a live or sharded detector over idx — otherwise searches never
// observe the writes.
func RunMixedLoad(s *Server, idx Sink, cfg MixedLoadConfig) MixedLoadResult {
	searching := cfg.Searches > 0 && len(cfg.Queries) > 0
	if !searching {
		cfg.Searches = 0
	}
	if !searching && cfg.Ingests <= 0 {
		return MixedLoadResult{}
	}
	searchWorkers := 0
	if searching {
		searchWorkers = max(cfg.SearchWorkers, 1)
		searchWorkers = min(searchWorkers, cfg.Searches)
	}
	ingestWorkers := max(cfg.IngestWorkers, 1)
	if cfg.Ingests <= 0 {
		ingestWorkers = 0
	}
	if stream := (microblog.StreamConfig{}); cfg.Stream == stream {
		cfg.Stream = microblog.DefaultStreamConfig(cfg.Seed)
	}
	s.ResetStats()
	startEpoch := idx.Epoch()

	var answered, ingested atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()

	for w := 0; w < ingestWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			streamCfg := cfg.Stream
			streamCfg.Seed = cfg.Seed + uint64(w)
			stream := microblog.NewPostStream(idx.World(), streamCfg)
			// Spread the total over the workers; the first takes the slack.
			n := cfg.Ingests / ingestWorkers
			if w == 0 {
				n += cfg.Ingests % ingestWorkers
			}
			for i := 0; i < n; i++ {
				idx.Ingest(stream.Next())
				ingested.Add(1)
			}
		}(w)
	}

	var next atomic.Int64
	for w := 0; w < searchWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Searches {
					return
				}
				q := cfg.Queries[i%len(cfg.Queries)]
				var experts int
				if cfg.BaselineEvery > 0 && (i+1)%cfg.BaselineEvery == 0 {
					experts = len(s.SearchBaseline(q))
				} else {
					experts = len(s.Search(q))
				}
				if experts > 0 {
					answered.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	dur := time.Since(start)

	return MixedLoadResult{
		Duration:     dur,
		Searches:     cfg.Searches,
		SearchQPS:    float64(cfg.Searches) / dur.Seconds(),
		Ingested:     int(ingested.Load()),
		IngestPerSec: float64(ingested.Load()) / dur.Seconds(),
		Answered:     int(answered.Load()),
		StartEpoch:   startEpoch,
		EndEpoch:     idx.Epoch(),
		Stats:        s.Stats(),
	}
}
