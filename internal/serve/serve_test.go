package serve

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/expertise"
)

var (
	pipeOnce sync.Once
	pipe     *core.Pipeline
	pipeErr  error
)

func testPipeline(t testing.TB) *core.Pipeline {
	t.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = core.BuildPipeline(core.TinyPipelineConfig())
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe
}

func sameExperts(a, b []expertise.Expert) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServerConcurrentMixedQueries hammers one server with many
// goroutines issuing interleaved e# and baseline queries (run under
// `go test -race` by `make race`) and checks every response against
// the single-threaded detector.
func TestServerConcurrentMixedQueries(t *testing.T) {
	p := testPipeline(t)
	queries := []string{"49ers", "diabetes", "nfl", "dow futures", "coffee", "sarah palin", "zzz-none"}
	wantES := make(map[string][]expertise.Expert, len(queries))
	wantBase := make(map[string][]expertise.Expert, len(queries))
	for _, q := range queries {
		wantES[q], _ = p.Detector.Search(q)
		wantBase[q] = p.Detector.SearchBaseline(q)
	}

	s := New(p.Detector, Config{CacheSize: 4}) // small cache => constant churn
	const workers, perWorker = 8, 150
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := queries[(w+i)%len(queries)]
				if (w+i)%3 == 0 {
					if got := s.SearchBaseline(q); !sameExperts(got, wantBase[q]) {
						errs <- errMismatchf(q, "baseline")
						return
					}
				} else {
					if got := s.Search(q); !sameExperts(got, wantES[q]) {
						errs <- errMismatchf(q, "esharp")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Queries != workers*perWorker {
		t.Fatalf("served %d queries, want %d", st.Queries, workers*perWorker)
	}
	if st.CacheHits+st.CacheMisses != st.Queries {
		t.Fatalf("hits %d + misses %d != queries %d", st.CacheHits, st.CacheMisses, st.Queries)
	}
	if st.CacheEntries > 4 {
		t.Fatalf("cache holds %d entries, cap is 4", st.CacheEntries)
	}
}

type errMismatch string

func (e errMismatch) Error() string { return string(e) }

func errMismatchf(q, kind string) error { return errMismatch(kind + " result mismatch for " + q) }

// TestCacheHitsAndEviction pins the LRU mechanics: repeats hit, the
// least recently used entry is the one evicted, and the two endpoints
// never share entries.
func TestCacheHitsAndEviction(t *testing.T) {
	p := testPipeline(t)
	s := New(p.Detector, Config{CacheSize: 2})

	s.Search("49ers")   // miss -> cached
	s.Search("49ers")   // hit
	s.Search("  49ERS") // hit: keys are normalized
	if st := s.Stats(); st.CacheHits != 2 || st.CacheMisses != 1 {
		t.Fatalf("after repeats: %+v", st)
	}

	s.SearchBaseline("49ers") // miss: baseline results cache separately
	if st := s.Stats(); st.CacheMisses != 2 {
		t.Fatalf("baseline should not share the e# entry: %+v", st)
	}

	// Touch the e# entry, then insert a third key: the baseline entry
	// (now LRU) must be the one evicted.
	s.Search("49ers")
	s.Search("diabetes")
	if st := s.Stats(); st.CacheEntries != 2 {
		t.Fatalf("cache should stay at cap: %+v", st)
	}
	before := s.Stats().CacheMisses
	s.Search("49ers") // still cached
	if got := s.Stats().CacheMisses; got != before {
		t.Fatal("recently used e# entry was evicted")
	}
	s.SearchBaseline("49ers") // evicted -> miss again
	if got := s.Stats().CacheMisses; got != before+1 {
		t.Fatal("LRU baseline entry should have been evicted")
	}
}

func TestCacheDisabled(t *testing.T) {
	p := testPipeline(t)
	s := New(p.Detector, Config{CacheSize: 0})
	for i := 0; i < 3; i++ {
		s.Search("49ers")
	}
	st := s.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 3 || st.CacheEntries != 0 {
		t.Fatalf("disabled cache should be all-miss: %+v", st)
	}
}

// TestRunLoadParallelMatchesSequential checks the load generator's
// accounting: the same workload answered sequentially and in parallel
// reports identical Answered counts and consistent counters.
func TestRunLoadParallelMatchesSequential(t *testing.T) {
	p := testPipeline(t)
	queries := []string{"49ers", "diabetes", "nfl", "zzz-none"}
	seqRes := RunLoad(New(p.Detector, DefaultConfig()),
		LoadConfig{Queries: queries, Total: 40, Workers: 1, BaselineEvery: 4})
	parRes := RunLoad(New(p.Detector, DefaultConfig()),
		LoadConfig{Queries: queries, Total: 40, Workers: 8, BaselineEvery: 4})
	if seqRes.Answered != parRes.Answered {
		t.Fatalf("answered: sequential %d, parallel %d", seqRes.Answered, parRes.Answered)
	}
	for _, res := range []LoadResult{seqRes, parRes} {
		if res.Queries != 40 || res.Stats.Queries != 40 {
			t.Fatalf("bad accounting: %+v", res)
		}
		if res.Stats.CacheHits+res.Stats.CacheMisses != 40 {
			t.Fatalf("hit/miss counters inconsistent: %+v", res.Stats)
		}
		if res.QPS <= 0 {
			t.Fatalf("non-positive QPS: %+v", res)
		}
	}
	if RunLoad(New(p.Detector, DefaultConfig()), LoadConfig{}).Queries != 0 {
		t.Fatal("empty load should be a no-op")
	}
}
