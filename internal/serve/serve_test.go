package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/expertise"
	"repro/internal/ingest"
	"repro/internal/microblog"
	"repro/internal/shard"
)

var (
	pipeOnce sync.Once
	pipe     *core.Pipeline
	pipeErr  error
)

func testPipeline(t testing.TB) *core.Pipeline {
	t.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = core.BuildPipeline(core.TinyPipelineConfig())
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe
}

func sameExperts(a, b []expertise.Expert) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServerConcurrentMixedQueries hammers one server with many
// goroutines issuing interleaved e# and baseline queries (run under
// `go test -race` by `make race`) and checks every response against
// the single-threaded detector.
func TestServerConcurrentMixedQueries(t *testing.T) {
	p := testPipeline(t)
	queries := []string{"49ers", "diabetes", "nfl", "dow futures", "coffee", "sarah palin", "zzz-none"}
	wantES := make(map[string][]expertise.Expert, len(queries))
	wantBase := make(map[string][]expertise.Expert, len(queries))
	for _, q := range queries {
		wantES[q], _ = p.Detector.Search(q)
		wantBase[q] = p.Detector.SearchBaseline(q)
	}

	s := New(p.Detector, Config{CacheSize: 4}) // small cache => constant churn
	const workers, perWorker = 8, 150
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := queries[(w+i)%len(queries)]
				if (w+i)%3 == 0 {
					if got := s.SearchBaseline(q); !sameExperts(got, wantBase[q]) {
						errs <- errMismatchf(q, "baseline")
						return
					}
				} else {
					if got := s.Search(q); !sameExperts(got, wantES[q]) {
						errs <- errMismatchf(q, "esharp")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Queries != workers*perWorker {
		t.Fatalf("served %d queries, want %d", st.Queries, workers*perWorker)
	}
	if st.CacheHits+st.CacheMisses != st.Queries {
		t.Fatalf("hits %d + misses %d != queries %d", st.CacheHits, st.CacheMisses, st.Queries)
	}
	if st.CacheEntries > 4 {
		t.Fatalf("cache holds %d entries, cap is 4", st.CacheEntries)
	}
}

type errMismatch string

func (e errMismatch) Error() string { return string(e) }

func errMismatchf(q, kind string) error { return errMismatch(kind + " result mismatch for " + q) }

// TestCacheHitsAndEviction pins the LRU mechanics: repeats hit, the
// least recently used entry is the one evicted, and the two endpoints
// never share entries.
func TestCacheHitsAndEviction(t *testing.T) {
	p := testPipeline(t)
	s := New(p.Detector, Config{CacheSize: 2})

	s.Search("49ers")   // miss -> cached
	s.Search("49ers")   // hit
	s.Search("  49ERS") // hit: keys are normalized
	if st := s.Stats(); st.CacheHits != 2 || st.CacheMisses != 1 {
		t.Fatalf("after repeats: %+v", st)
	}

	s.SearchBaseline("49ers") // miss: baseline results cache separately
	if st := s.Stats(); st.CacheMisses != 2 {
		t.Fatalf("baseline should not share the e# entry: %+v", st)
	}

	// Touch the e# entry, then insert a third key: the baseline entry
	// (now LRU) must be the one evicted.
	s.Search("49ers")
	s.Search("diabetes")
	if st := s.Stats(); st.CacheEntries != 2 {
		t.Fatalf("cache should stay at cap: %+v", st)
	}
	before := s.Stats().CacheMisses
	s.Search("49ers") // still cached
	if got := s.Stats().CacheMisses; got != before {
		t.Fatal("recently used e# entry was evicted")
	}
	s.SearchBaseline("49ers") // evicted -> miss again
	if got := s.Stats().CacheMisses; got != before+1 {
		t.Fatal("LRU baseline entry should have been evicted")
	}
}

func TestCacheDisabled(t *testing.T) {
	p := testPipeline(t)
	s := New(p.Detector, Config{CacheSize: 0})
	for i := 0; i < 3; i++ {
		s.Search("49ers")
	}
	st := s.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 3 || st.CacheEntries != 0 {
		t.Fatalf("disabled cache should be all-miss: %+v", st)
	}
}

// scriptedBackend is a controllable Backend for cache-mechanics tests:
// a settable epoch, a call counter, and an optional gate that blocks
// computations until the test releases it.
type scriptedBackend struct {
	epoch atomic.Uint64
	calls atomic.Int64
	gate  chan struct{} // nil = never block
}

func (b *scriptedBackend) answer(query string) []expertise.Expert {
	b.calls.Add(1)
	if b.gate != nil {
		<-b.gate
	}
	return []expertise.Expert{{User: 1, Score: float64(b.epoch.Load())}}
}

func (b *scriptedBackend) Search(query string) ([]expertise.Expert, core.SearchTrace) {
	return b.answer(query), core.SearchTrace{Query: query}
}
func (b *scriptedBackend) SearchBaseline(query string) []expertise.Expert {
	return b.answer(query)
}
func (b *scriptedBackend) Epoch() uint64 { return b.epoch.Load() }

// TestSingleflightColdMisses pins the coalescing contract: N concurrent
// identical cold queries run the backend once; everyone gets the
// leader's result.
func TestSingleflightColdMisses(t *testing.T) {
	backend := &scriptedBackend{gate: make(chan struct{})}
	s := New(backend, DefaultConfig())

	const n = 8
	results := make(chan []expertise.Expert, n)
	// Start the leader alone and wait until it is inside the backend
	// (its flight is registered by then), so every follower launched
	// afterwards finds the in-flight computation.
	go func() { results <- s.Search("49ers") }()
	for backend.calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 1; i < n; i++ {
		go func() { results <- s.Search("49ers") }()
	}
	// Wait until every follower has entered serve (the query counter
	// increments on entry), give them a beat to park on the flight,
	// then release the leader's computation.
	for s.Stats().Queries < n {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(backend.gate)
	var got [][]expertise.Expert
	for i := 0; i < n; i++ {
		got = append(got, <-results)
	}

	if calls := backend.calls.Load(); calls != 1 {
		t.Fatalf("backend computed %d times, want 1", calls)
	}
	st := s.Stats()
	if st.CacheMisses != 1 || st.CacheHits != n-1 {
		t.Fatalf("want 1 miss / %d hits, got %+v", n-1, st)
	}
	if st.Coalesced == 0 {
		t.Fatal("no request reported as coalesced")
	}
	for _, experts := range got {
		if !sameExperts(experts, got[0]) {
			t.Fatal("coalesced requests returned different results")
		}
	}
	// The two endpoints must not coalesce onto each other.
	s.SearchBaseline("49ers")
	if calls := backend.calls.Load(); calls != 2 {
		t.Fatalf("baseline should compute separately, backend ran %d times", calls)
	}
}

// panicOnceBackend panics on its first computation, then answers
// normally — modelling a backend bug a serving layer must survive.
type panicOnceBackend struct {
	scriptedBackend
	panicked atomic.Bool
}

func (b *panicOnceBackend) Search(query string) ([]expertise.Expert, core.SearchTrace) {
	if b.panicked.CompareAndSwap(false, true) {
		panic("backend bug")
	}
	return b.scriptedBackend.Search(query)
}

// TestBackendPanicDoesNotWedgeKey pins the singleflight cleanup: a
// panicking leader must deregister its flight (so the key is not
// blocked forever) and must not cache its incomplete result.
func TestBackendPanicDoesNotWedgeKey(t *testing.T) {
	backend := &panicOnceBackend{}
	s := New(backend, DefaultConfig())

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("backend panic did not propagate")
			}
		}()
		s.Search("49ers")
	}()

	// The key must be usable again, recompute (no cached nil from the
	// panicked flight), and then cache normally.
	done := make(chan []expertise.Expert, 1)
	go func() { done <- s.Search("49ers") }()
	select {
	case experts := <-done:
		if len(experts) == 0 {
			t.Fatal("recomputed query returned the panicked flight's empty result")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("key wedged: request after backend panic never returned")
	}
	s.Search("49ers")
	if st := s.Stats(); st.CacheHits != 1 {
		t.Fatalf("key did not re-cache after panic recovery: %+v", st)
	}
}

// TestEpochInvalidation pins the staleness contract: bumping the
// backend's epoch turns every cached entry for the old view into a
// miss, counted under Invalidations.
func TestEpochInvalidation(t *testing.T) {
	backend := &scriptedBackend{}
	s := New(backend, DefaultConfig())

	s.Search("49ers") // miss -> cached under epoch 0
	s.Search("49ers") // hit
	if st := s.Stats(); st.CacheHits != 1 || st.CacheMisses != 1 || st.Invalidations != 0 {
		t.Fatalf("before swap: %+v", st)
	}

	backend.epoch.Store(1) // snapshot swap: everything cached is stale
	experts := s.Search("49ers")
	st := s.Stats()
	if st.CacheMisses != 2 || st.Invalidations != 1 {
		t.Fatalf("stale entry not invalidated: %+v", st)
	}
	if experts[0].Score != 1 {
		t.Fatal("post-swap query served the pre-swap result")
	}
	s.Search("49ers") // re-cached under the new epoch
	if st := s.Stats(); st.CacheHits != 2 || st.Epoch != 1 {
		t.Fatalf("after re-cache: %+v", st)
	}
}

// TestStatsCountersUnderConcurrency hammers one server with goroutines
// over a churning-epoch backend and checks the counters stay coherent:
// hits + misses == queries, coalesced <= hits, entries <= cap.
func TestStatsCountersUnderConcurrency(t *testing.T) {
	backend := &scriptedBackend{}
	s := New(backend, Config{CacheSize: 3})
	queries := []string{"a", "b", "c", "d", "e"}

	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := queries[(w+i)%len(queries)]
				if (w+i)%7 == 0 {
					backend.epoch.Add(1) // concurrent snapshot swaps
				}
				if (w+i)%3 == 0 {
					s.SearchBaseline(q)
				} else {
					s.Search(q)
				}
			}
		}(w)
	}
	wg.Wait()

	st := s.Stats()
	if st.Queries != workers*perWorker {
		t.Fatalf("served %d queries, want %d", st.Queries, workers*perWorker)
	}
	if st.CacheHits+st.CacheMisses != st.Queries {
		t.Fatalf("hits %d + misses %d != queries %d", st.CacheHits, st.CacheMisses, st.Queries)
	}
	if st.Coalesced > st.CacheHits {
		t.Fatalf("coalesced %d exceeds hits %d", st.Coalesced, st.CacheHits)
	}
	if st.CacheEntries > 3 {
		t.Fatalf("cache holds %d entries, cap is 3", st.CacheEntries)
	}
	if st.CacheMisses != backend.calls.Load() {
		t.Fatalf("misses %d but backend computed %d times", st.CacheMisses, backend.calls.Load())
	}
}

// TestLiveServerInvalidatesOnIngest is the end-to-end epoch story: a
// server over a LiveDetector stops serving pre-ingest results as soon
// as the stream moves.
func TestLiveServerInvalidatesOnIngest(t *testing.T) {
	p := testPipeline(t)
	idx := ingest.New(p.Corpus, ingest.DefaultConfig())
	defer idx.Close()
	live := core.NewLiveDetector(p.Collection, idx, p.Cfg.Online)
	s := New(live, DefaultConfig())

	before := s.Search("49ers")
	s.Search("49ers")
	if st := s.Stats(); st.CacheHits != 1 {
		t.Fatalf("frozen stretch should hit: %+v", st)
	}

	stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(71))
	for i := 0; i < 50; i++ {
		idx.Ingest(stream.Next())
	}
	after := s.Search("49ers") // stale entry must be recomputed
	st := s.Stats()
	if st.Invalidations != 1 || st.CacheMisses != 2 {
		t.Fatalf("ingest did not invalidate: %+v", st)
	}
	// The recomputed result reflects the post-ingest view: check it
	// against a fresh uncached live search.
	want, _ := live.Search("49ers")
	if !sameExperts(after, want) {
		t.Fatal("post-ingest result does not match the live view")
	}
	_ = before
}

// TestRunMixedLoadAccounting drives the mixed read/write generator and
// checks both sides' accounting.
func TestRunMixedLoadAccounting(t *testing.T) {
	p := testPipeline(t)
	idx := ingest.New(p.Corpus, ingest.Config{SealThreshold: 64, CompactFanIn: 3})
	defer idx.Close()
	live := core.NewLiveDetector(p.Collection, idx, p.Cfg.Online)
	s := New(live, DefaultConfig())

	res := RunMixedLoad(s, idx, MixedLoadConfig{
		Queries:       []string{"49ers", "diabetes", "nfl", "zzz-none"},
		Searches:      60,
		SearchWorkers: 4,
		Ingests:       120,
		IngestWorkers: 2,
		BaselineEvery: 5,
		Seed:          7,
	})
	if res.Searches != 60 || res.Stats.Queries != 60 {
		t.Fatalf("bad search accounting: %+v", res)
	}
	if res.Ingested != 120 {
		t.Fatalf("ingested %d posts, want 120", res.Ingested)
	}
	if res.EndEpoch < res.StartEpoch+120 {
		t.Fatalf("epoch did not advance with ingestion: %d -> %d", res.StartEpoch, res.EndEpoch)
	}
	if res.Stats.CacheHits+res.Stats.CacheMisses != 60 {
		t.Fatalf("hit/miss counters inconsistent: %+v", res.Stats)
	}
	if st := idx.Stats(); st.Ingested != 120 {
		t.Fatalf("index saw %d ingests, want 120", st.Ingested)
	}
	if RunMixedLoad(s, idx, MixedLoadConfig{}).Searches != 0 {
		t.Fatal("empty mixed load should be a no-op")
	}

	// A write-only run (no search side) must still ingest.
	before := idx.Stats().Ingested
	wo := RunMixedLoad(s, idx, MixedLoadConfig{Ingests: 30, IngestWorkers: 2, Seed: 9})
	if wo.Ingested != 30 || idx.Stats().Ingested != before+30 {
		t.Fatalf("write-only run ingested %d posts, want 30", wo.Ingested)
	}
	if wo.Searches != 0 || wo.Stats.Queries != 0 {
		t.Fatalf("write-only run reported searches: %+v", wo)
	}
}

// TestRunLoadParallelMatchesSequential checks the load generator's
// accounting: the same workload answered sequentially and in parallel
// reports identical Answered counts and consistent counters.
func TestRunLoadParallelMatchesSequential(t *testing.T) {
	p := testPipeline(t)
	queries := []string{"49ers", "diabetes", "nfl", "zzz-none"}
	seqRes := RunLoad(New(p.Detector, DefaultConfig()),
		LoadConfig{Queries: queries, Total: 40, Workers: 1, BaselineEvery: 4})
	parRes := RunLoad(New(p.Detector, DefaultConfig()),
		LoadConfig{Queries: queries, Total: 40, Workers: 8, BaselineEvery: 4})
	if seqRes.Answered != parRes.Answered {
		t.Fatalf("answered: sequential %d, parallel %d", seqRes.Answered, parRes.Answered)
	}
	for _, res := range []LoadResult{seqRes, parRes} {
		if res.Queries != 40 || res.Stats.Queries != 40 {
			t.Fatalf("bad accounting: %+v", res)
		}
		if res.Stats.CacheHits+res.Stats.CacheMisses != 40 {
			t.Fatalf("hit/miss counters inconsistent: %+v", res.Stats)
		}
		if res.QPS <= 0 {
			t.Fatalf("non-positive QPS: %+v", res)
		}
	}
	if RunLoad(New(p.Detector, DefaultConfig()), LoadConfig{}).Queries != 0 {
		t.Fatal("empty load should be a no-op")
	}
}

// scriptedVectorBackend is a controllable VectorBackend: per-component
// epochs, a call counter, and an optional gate, for pinning the
// vector-epoch cache mechanics without a real sharded index.
type scriptedVectorBackend struct {
	scriptedBackend
	components []atomic.Uint64
}

func newScriptedVectorBackend(n int) *scriptedVectorBackend {
	return &scriptedVectorBackend{components: make([]atomic.Uint64, n)}
}

func (b *scriptedVectorBackend) EpochVector(dst []uint64) []uint64 {
	dst = dst[:0]
	for i := range b.components {
		dst = append(dst, b.components[i].Load())
	}
	return dst
}

func (b *scriptedVectorBackend) Epoch() uint64 {
	var sum uint64
	for i := range b.components {
		sum += b.components[i].Load()
	}
	return sum
}

// TestVectorEpochSingleComponentInvalidation pins the sharded staleness
// contract: a cache entry written at vector epoch E must be invalidated
// as soon as exactly one component advances — and stay fresh while the
// vector is unchanged.
func TestVectorEpochSingleComponentInvalidation(t *testing.T) {
	backend := newScriptedVectorBackend(4)
	s := New(backend, DefaultConfig())

	s.Search("49ers") // miss -> cached under [0 0 0 0]
	s.Search("49ers") // hit
	if st := s.Stats(); st.CacheHits != 1 || st.CacheMisses != 1 || st.Invalidations != 0 {
		t.Fatalf("before advance: %+v", st)
	}

	backend.components[2].Add(1) // one shard absorbs a post
	s.Search("49ers")
	st := s.Stats()
	if st.CacheMisses != 2 || st.Invalidations != 1 {
		t.Fatalf("single-component advance did not invalidate: %+v", st)
	}
	if len(st.EpochVector) != 4 || st.EpochVector[2] != 1 {
		t.Fatalf("stats vector wrong: %v", st.EpochVector)
	}

	s.Search("49ers") // re-cached under [0 0 1 0]
	if st := s.Stats(); st.CacheHits != 2 {
		t.Fatalf("after re-cache: %+v", st)
	}
	// Every remaining component advancing one at a time keeps
	// invalidating; an untouched vector keeps hitting.
	for i := 0; i < 4; i++ {
		backend.components[i].Add(1)
		s.Search("49ers")
	}
	if st := s.Stats(); st.Invalidations != 5 {
		t.Fatalf("per-component advances: %+v", st)
	}
}

// TestVectorSingleflightColdMisses pins that coalescing keys on the
// query, not the epoch vector: concurrent identical cold misses under a
// sharded backend still collapse onto one computation.
func TestVectorSingleflightColdMisses(t *testing.T) {
	backend := newScriptedVectorBackend(4)
	backend.gate = make(chan struct{})
	s := New(backend, DefaultConfig())

	const n = 8
	results := make(chan []expertise.Expert, n)
	go func() { results <- s.Search("49ers") }()
	for backend.calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// The index moves while the leader computes: followers sample newer
	// vectors but must still coalesce instead of recomputing.
	backend.components[1].Add(1)
	for i := 1; i < n; i++ {
		go func() { results <- s.Search("49ers") }()
	}
	for s.Stats().Queries < n {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(backend.gate)
	for i := 0; i < n; i++ {
		<-results
	}

	if calls := backend.calls.Load(); calls != 1 {
		t.Fatalf("backend computed %d times, want 1", calls)
	}
	st := s.Stats()
	if st.CacheMisses != 1 || st.CacheHits != n-1 || st.Coalesced == 0 {
		t.Fatalf("coalescing broke under vector epochs: %+v", st)
	}
	// The leader's entry carries its pre-compute vector [0 0 0 0]; the
	// post-ingest view [0 1 0 0] makes it conservatively stale.
	s.Search("49ers")
	if st := s.Stats(); st.Invalidations != 1 {
		t.Fatalf("mid-flight ingest should have staled the entry: %+v", st)
	}
}

// TestShardedServerInvalidatesOnIngest is the end-to-end vector story:
// a server over a ShardedLiveDetector stops serving pre-ingest results
// as soon as any single shard absorbs a post, and the recomputed result
// matches an uncached sharded search.
func TestShardedServerInvalidatesOnIngest(t *testing.T) {
	p := testPipeline(t)
	r := shard.New(p.Corpus, shard.Config{Shards: 4, Ingest: ingest.DefaultConfig()})
	defer r.Close()
	sharded := core.NewShardedLiveDetector(p.Collection, r, p.Cfg.Online)
	s := New(sharded, DefaultConfig())

	s.Search("49ers")
	s.Search("49ers")
	if st := s.Stats(); st.CacheHits != 1 {
		t.Fatalf("quiet stretch should hit: %+v", st)
	}

	// One post advances exactly one shard's component.
	stream := microblog.NewPostStream(p.World, microblog.DefaultStreamConfig(73))
	r.Ingest(stream.Next())
	after := s.Search("49ers")
	st := s.Stats()
	if st.Invalidations != 1 || st.CacheMisses != 2 {
		t.Fatalf("single-shard ingest did not invalidate: %+v", st)
	}
	want, _ := sharded.Search("49ers")
	if !sameExperts(after, want) {
		t.Fatal("post-ingest result does not match the sharded view")
	}
	if len(st.EpochVector) != 4 {
		t.Fatalf("stats should carry the 4-component vector: %v", st.EpochVector)
	}
}

// TestMixedLoadShardedSink drives the mixed read/write generator with a
// sharded router as the ingest sink and checks both sides' accounting.
func TestMixedLoadShardedSink(t *testing.T) {
	p := testPipeline(t)
	r := shard.New(p.Corpus, shard.Config{Shards: 4, Ingest: ingest.Config{SealThreshold: 64, CompactFanIn: 3}})
	defer r.Close()
	online := p.Cfg.Online
	online.MatchWorkers = 1
	sharded := core.NewShardedLiveDetector(p.Collection, r, online)
	s := New(sharded, DefaultConfig())

	res := RunMixedLoad(s, r, MixedLoadConfig{
		Queries:       []string{"49ers", "diabetes", "nfl", "zzz-none"},
		Searches:      60,
		SearchWorkers: 4,
		Ingests:       120,
		IngestWorkers: 2,
		BaselineEvery: 5,
		Seed:          7,
	})
	if res.Searches != 60 || res.Stats.Queries != 60 {
		t.Fatalf("bad search accounting: %+v", res)
	}
	if res.Ingested != 120 {
		t.Fatalf("ingested %d posts, want 120", res.Ingested)
	}
	if st := r.Stats(); st.Ingested != 120 {
		t.Fatalf("router saw %d ingests, want 120", st.Ingested)
	}
	if res.EndEpoch < res.StartEpoch+120 {
		t.Fatalf("vector digest did not advance with ingestion: %d -> %d",
			res.StartEpoch, res.EndEpoch)
	}
}

// TestRunLoadEdgeCases covers the load generator's degenerate inputs:
// zero totals and empty query pools return an empty result instead of
// hanging or dividing by zero, and worker counts are clamped to the
// request total.
func TestRunLoadEdgeCases(t *testing.T) {
	p := testPipeline(t)
	s := New(p.Detector, DefaultConfig())

	if res := RunLoad(s, LoadConfig{Total: 0, Queries: []string{"nfl"}}); res.Queries != 0 {
		t.Fatalf("zero-total run reported %d queries", res.Queries)
	}
	if res := RunLoad(s, LoadConfig{Total: 100}); res.Queries != 0 {
		t.Fatalf("empty-pool run reported %d queries", res.Queries)
	}
	// More workers than requests: every request still runs exactly once.
	res := RunLoad(s, LoadConfig{Total: 3, Workers: 64, Queries: []string{"49ers"}})
	if res.Queries != 3 || res.Stats.Queries != 3 {
		t.Fatalf("clamped run served %d/%d queries, want 3", res.Queries, res.Stats.Queries)
	}
	// BaselineEvery=1 routes every request to the baseline endpoint.
	s.ResetStats()
	res = RunLoad(s, LoadConfig{Total: 4, Queries: []string{"49ers"}, BaselineEvery: 1})
	if res.Stats.Queries != 4 {
		t.Fatalf("baseline-only run served %d", res.Stats.Queries)
	}
	if want := len(s.SearchBaseline("49ers")); want > 0 && res.Answered != 4 {
		t.Fatalf("baseline-only run answered %d of 4", res.Answered)
	}
}

// TestRunMixedLoadWriteOnlyAndReadOnly covers the Sink-facing halves of
// the mixed generator separately: a write-only run must push exactly
// Ingests posts into the sink and move its epoch with zero searches; a
// run with no ingests degenerates to pure read load; an all-empty
// config returns the zero result.
func TestRunMixedLoadWriteOnlyAndReadOnly(t *testing.T) {
	p := testPipeline(t)
	idx := ingest.New(p.Corpus, ingest.DefaultConfig())
	defer idx.Close()
	live := core.NewLiveDetector(p.Collection, idx, p.Cfg.Online)
	s := New(live, DefaultConfig())

	if res := RunMixedLoad(s, idx, MixedLoadConfig{}); res.Ingested != 0 || res.Searches != 0 {
		t.Fatalf("all-empty mixed run did something: %+v", res)
	}

	before := idx.Stats()
	res := RunMixedLoad(s, idx, MixedLoadConfig{Ingests: 120, IngestWorkers: 3, Seed: 7})
	if res.Searches != 0 || res.Ingested != 120 {
		t.Fatalf("write-only run: %d searches, %d ingests", res.Searches, res.Ingested)
	}
	if res.EndEpoch <= res.StartEpoch {
		t.Fatalf("write-only run did not advance the epoch: %d -> %d", res.StartEpoch, res.EndEpoch)
	}
	if after := idx.Stats(); after.Ingested != before.Ingested+120 {
		t.Fatalf("sink absorbed %d posts, want +120", after.Ingested-before.Ingested)
	}

	// Searches>0 with an empty pool is treated as read-silent, not a
	// divide-by-zero.
	if res := RunMixedLoad(s, idx, MixedLoadConfig{Searches: 50, Ingests: 10}); res.Searches != 0 || res.Ingested != 10 {
		t.Fatalf("empty-pool mixed run: %+v", res)
	}

	// Read-only: no ingest workers spin up, epochs stay put.
	res = RunMixedLoad(s, idx, MixedLoadConfig{Queries: []string{"49ers", "nfl"}, Searches: 40, SearchWorkers: 4, BaselineEvery: 3})
	if res.Ingested != 0 || res.Searches != 40 {
		t.Fatalf("read-only run: %+v", res)
	}
	if res.EndEpoch != res.StartEpoch {
		t.Fatalf("read-only run moved the epoch: %d -> %d", res.StartEpoch, res.EndEpoch)
	}
	if res.Stats.Queries != 40 {
		t.Fatalf("server saw %d queries, want 40", res.Stats.Queries)
	}
}

// failoverBackend is a scripted backend that also reports replicated
// read failovers (the FailoverReporter face of a replicated
// ShardedLiveDetector).
type failoverBackend struct {
	scriptedBackend
	failovers atomic.Int64
}

func (b *failoverBackend) Failovers() int64 { return b.failovers.Load() }

// TestFailoverStatsMirrored pins the serving-side surface of
// replication: a backend that reports failovers (FailoverReporter,
// detected at construction) has the counter mirrored into Stats, so a
// dashboard reading serving stats sees replica failovers — degradation
// avoided — next to the PartialResults it would have suffered without
// replication. A backend without the interface reports zero.
func TestFailoverStatsMirrored(t *testing.T) {
	b := &failoverBackend{}
	s := New(b, DefaultConfig())
	if st := s.Stats(); st.Failovers != 0 {
		t.Fatalf("fresh server reports %d failovers", st.Failovers)
	}
	s.Search("49ers")
	b.failovers.Store(7)
	if st := s.Stats(); st.Failovers != 7 {
		t.Fatalf("stats mirror %d failovers, backend reports 7", st.Failovers)
	}
	// ResetStats zeroes the server's own counters; the backend's
	// cumulative failover count, like PartialResults, is not reset.
	s.ResetStats()
	if st := s.Stats(); st.Failovers != 7 {
		t.Fatalf("reset clobbered the backend's cumulative failovers: %d", st.Failovers)
	}

	plain := &scriptedBackend{}
	if st := New(plain, DefaultConfig()).Stats(); st.Failovers != 0 {
		t.Fatalf("non-replicated backend reports %d failovers", st.Failovers)
	}
}
