package serve

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/expertise"
	"repro/internal/textutil"
)

// checkInvariant pins the counter contract: every request lands in
// exactly one of hits / misses / shed / rejected.
func checkInvariant(t *testing.T, s *Server) {
	t.Helper()
	st := s.Stats()
	if st.CacheHits+st.CacheMisses+st.Shed+st.Rejected != st.Queries {
		t.Fatalf("counter invariant broken: %+v", st)
	}
}

// TestSearchPermutationProperty is the cache-key canonicalization
// property test: for every multi-token query of every evaluation query
// set, a random permutation (and a duplicated token) must return
// bit-identical experts to the original — first against the detector
// directly (the AND predicate and domain lookup are order-invariant),
// then through a Server, where the permutation must also HIT the
// original's cache slot rather than recompute.
func TestSearchPermutationProperty(t *testing.T) {
	p := testPipeline(t)
	sets := eval.BuildQuerySets(p.World, p.Log, eval.SetSizes{PerCategory: 25, Top: 60})
	s := New(p.Detector, DefaultConfig())
	rng := rand.New(rand.NewSource(9))

	multi := 0
	for _, set := range sets {
		for _, q := range set.Queries {
			toks := textutil.Tokenize(q)
			if len(toks) < 2 {
				continue
			}
			multi++
			want, _ := p.Detector.Search(q)
			perm := append([]string(nil), toks...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			perm = append(perm, perm[0]) // repetition is also in the class
			pq := strings.Join(perm, " ")

			if got, _ := p.Detector.Search(pq); !sameExperts(got, want) {
				t.Fatalf("detector: Search(%q) != Search(%q)", pq, q)
			}

			first, err := s.SearchContext(context.Background(), q)
			if err != nil {
				t.Fatalf("serve %q: %v", q, err)
			}
			misses0 := s.Stats().CacheMisses
			second, err := s.SearchContext(context.Background(), pq)
			if err != nil {
				t.Fatalf("serve %q: %v", pq, err)
			}
			if !sameExperts(first, want) || !sameExperts(second, want) {
				t.Fatalf("serve: %q / %q diverge from detector", q, pq)
			}
			// The permutation must hit the original's canonical slot —
			// zero additional misses. (Query sets overlap, so the
			// original itself may already have been warm.)
			if d := s.Stats().CacheMisses - misses0; d != 0 {
				t.Fatalf("%q after %q recomputed (%d extra misses), want shared canonical slot", pq, q, d)
			}
		}
	}
	if multi == 0 {
		t.Fatal("no multi-token queries in eval sets")
	}
	checkInvariant(t, s)
}

// TestPermutationsShareFlight pins singleflight coalescing across
// reorderings: a follower asking the reversed query while the leader
// is still computing coalesces onto the leader's flight — the backend
// runs once for the whole canonical class.
func TestPermutationsShareFlight(t *testing.T) {
	backend := &scriptedBackend{gate: make(chan struct{})}
	s := New(backend, DefaultConfig())

	results := make(chan []expertise.Expert, 2)
	go func() { results <- s.Search("zebra apple") }()
	for backend.calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	go func() { results <- s.Search("apple zebra zebra") }()
	for s.Stats().Queries < 2 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(backend.gate)
	a, b := <-results, <-results

	if calls := backend.calls.Load(); calls != 1 {
		t.Fatalf("backend computed %d times for one canonical class, want 1", calls)
	}
	if !sameExperts(a, b) {
		t.Fatal("reordered duplicates returned different results")
	}
	st := s.Stats()
	if st.Coalesced != 1 || st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Fatalf("want 1 miss + 1 coalesced hit, got %+v", st)
	}
	// And a third ordering afterwards is a plain cache hit.
	s.Search("  ZEBRA   apple ")
	if st := s.Stats(); st.CacheHits != 2 || backend.calls.Load() != 1 {
		t.Fatalf("post-flight reordering missed the shared slot: %+v", st)
	}
	checkInvariant(t, s)
}

// TestDegenerateQueriesRejected pins the admission guard: empty and
// over-long queries fail with the typed errors, never reach the
// backend, and land in Stats.Rejected.
func TestDegenerateQueriesRejected(t *testing.T) {
	backend := &scriptedBackend{}
	cfg := DefaultConfig()
	cfg.MaxQueryTerms = 3
	s := New(backend, cfg)

	for _, q := range []string{"", "   ", "\t\n"} {
		if _, err := s.SearchContext(context.Background(), q); !errors.Is(err, ErrEmptyQuery) {
			t.Fatalf("SearchContext(%q) err = %v, want ErrEmptyQuery", q, err)
		}
		if got := s.Search(q); got != nil {
			t.Fatalf("Search(%q) = %v, want nil", q, got)
		}
	}
	if _, err := s.SearchBaselineContext(context.Background(), ""); !errors.Is(err, ErrEmptyQuery) {
		t.Fatal("baseline endpoint must reject empty queries too")
	}
	if _, err := s.SearchContext(context.Background(), "a b c d"); !errors.Is(err, ErrTooManyTerms) {
		t.Fatalf("4 tokens past MaxQueryTerms=3 not rejected")
	}
	// Duplicates count against the cap as typed, not canonicalized:
	// admission guards the raw request.
	if _, err := s.SearchContext(context.Background(), "a a a a"); !errors.Is(err, ErrTooManyTerms) {
		t.Fatal("repeated tokens past the cap not rejected")
	}
	if _, err := s.SearchContext(context.Background(), "a b c"); err != nil {
		t.Fatalf("3 tokens at the cap rejected: %v", err)
	}
	if backend.calls.Load() != 1 {
		t.Fatalf("backend ran %d times, want 1 (rejections must not reach it)", backend.calls.Load())
	}
	st := s.Stats()
	if st.Rejected != 9 {
		t.Fatalf("Rejected = %d, want 9: %+v", st.Rejected, st)
	}
	checkInvariant(t, s)
}

// TestLoadShedKeepsWarmHits pins the shedding priority: with one cold
// miss saturating MaxInflightMisses, further cold misses are shed with
// ErrOverloaded while warm cache hits keep being answered.
func TestLoadShedKeepsWarmHits(t *testing.T) {
	backend := &scriptedBackend{}
	cfg := DefaultConfig()
	cfg.MaxInflightMisses = 1
	s := New(backend, cfg)

	// Warm one entry while the backend is unconstrained.
	warm := s.Search("warm topic")
	backend.gate = make(chan struct{})

	done := make(chan []expertise.Expert, 1)
	go func() { done <- s.Search("cold one") }()
	for backend.calls.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	// A different cold query is shed...
	if _, err := s.SearchContext(context.Background(), "cold two"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("cold miss under overload: err = %v, want ErrOverloaded", err)
	}
	// ...but the warm hit and the coalescing duplicate are not.
	if got, err := s.SearchContext(context.Background(), "warm topic"); err != nil || !sameExperts(got, warm) {
		t.Fatalf("warm hit under overload failed: %v", err)
	}
	close(backend.gate)
	<-done
	if calls := backend.calls.Load(); calls != 2 {
		t.Fatalf("backend ran %d times, want 2 (shed request must not queue)", calls)
	}
	st := s.Stats()
	if st.Shed != 1 {
		t.Fatalf("Shed = %d, want 1: %+v", st.Shed, st)
	}
	checkInvariant(t, s)
}

// blockingCtxBackend parks every computation until the caller's
// context expires — a stand-in for a stalled shard behind the
// scatter-gather.
type blockingCtxBackend struct {
	scriptedBackend
	started atomic.Int64
}

func (b *blockingCtxBackend) SearchContext(ctx context.Context, query string) ([]expertise.Expert, core.SearchTrace, error) {
	b.started.Add(1)
	<-ctx.Done()
	return nil, core.SearchTrace{Query: query}, ctx.Err()
}

func (b *blockingCtxBackend) SearchBaselineContext(ctx context.Context, query string) ([]expertise.Expert, error) {
	b.started.Add(1)
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestDeadlineExpiryIsWholeQueryError pins deadline propagation at the
// serving layer: a leader whose budget expires gets the context error,
// nothing is cached, and the next request recomputes.
func TestDeadlineExpiryIsWholeQueryError(t *testing.T) {
	backend := &blockingCtxBackend{}
	s := New(backend, DefaultConfig())

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.SearchContext(ctx, "storm"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	st := s.Stats()
	if st.CacheEntries != 0 {
		t.Fatal("an errored computation was cached")
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if _, err := s.SearchContext(ctx2, "storm"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second attempt err = %v, want DeadlineExceeded (fresh computation)", err)
	}
	if n := backend.started.Load(); n != 2 {
		t.Fatalf("backend started %d times, want 2 — errors must not be cached", n)
	}
	checkInvariant(t, s)
}

// TestFollowerAbortsOnOwnDeadline pins the coalescing/deadline
// interaction: a follower whose own budget expires while the leader is
// still computing unblocks with its context error immediately; the
// leader is unaffected and its result lands in the cache.
func TestFollowerAbortsOnOwnDeadline(t *testing.T) {
	backend := &scriptedBackend{gate: make(chan struct{})}
	s := New(backend, DefaultConfig())

	leaderDone := make(chan []expertise.Expert, 1)
	go func() { leaderDone <- s.Search("niners") }()
	for backend.calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.SearchContext(ctx, "niners")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower err = %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("follower hung %v past its budget", waited)
	}
	close(backend.gate)
	want := <-leaderDone
	if got, err := s.SearchContext(context.Background(), "niners"); err != nil || !sameExperts(got, want) {
		t.Fatalf("leader's result not cached after follower abort: %v", err)
	}
	st := s.Stats()
	if st.CacheMisses != 2 || st.CacheHits != 1 {
		// leader miss + follower abort-miss, then one warm hit.
		t.Fatalf("want 2 misses + 1 hit, got %+v", st)
	}
	checkInvariant(t, s)
}

// errOnceCtxBackend fails its first computation with a budget error,
// then answers normally — the shape of a transient stall.
type errOnceCtxBackend struct {
	scriptedBackend
	failed atomic.Bool
	gate   chan struct{}
}

func (b *errOnceCtxBackend) SearchContext(ctx context.Context, query string) ([]expertise.Expert, core.SearchTrace, error) {
	if b.failed.CompareAndSwap(false, true) {
		<-b.gate
		return nil, core.SearchTrace{}, context.DeadlineExceeded
	}
	return b.answer(query), core.SearchTrace{Query: query}, nil
}

func (b *errOnceCtxBackend) SearchBaselineContext(ctx context.Context, query string) ([]expertise.Expert, error) {
	return b.answer(query), nil
}

// TestFollowerRetriesAfterLeaderError pins that a leader's failure is
// not inherited: the leader's budget error says nothing about the
// follower's, so the follower re-runs the query under its own context
// instead of reporting a 504 it never earned.
func TestFollowerRetriesAfterLeaderError(t *testing.T) {
	backend := &errOnceCtxBackend{gate: make(chan struct{})}
	s := New(backend, DefaultConfig())

	leaderErr := make(chan error, 1)
	go func() {
		_, err := s.SearchContext(context.Background(), "draft")
		leaderErr <- err
	}()
	for !backend.failed.Load() {
		time.Sleep(time.Millisecond)
	}
	followerDone := make(chan []expertise.Expert, 1)
	go func() {
		experts, err := s.SearchContext(context.Background(), "draft")
		if err != nil {
			t.Errorf("follower err = %v, want nil after retry", err)
		}
		followerDone <- experts
	}()
	for s.Stats().Queries < 2 {
		time.Sleep(time.Millisecond)
	}
	close(backend.gate)
	if err := <-leaderErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("leader err = %v, want DeadlineExceeded", err)
	}
	if got := <-followerDone; len(got) == 0 {
		t.Fatal("follower retry returned nothing")
	}
	if calls := backend.calls.Load(); calls != 1 {
		t.Fatalf("retry path ran the healthy backend %d times, want 1", calls)
	}
	checkInvariant(t, s)
}
