package domains

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/community"
	"repro/internal/querylog"
	"repro/internal/simgraph"
	"repro/internal/world"
)

// buildCollection runs the offline pipeline on the tiny world.
func buildCollection(t testing.TB) (*simgraph.Graph, *Collection) {
	t.Helper()
	w := world.Build(world.TinyConfig())
	log := querylog.AggregateRecords(
		querylog.NewGenerator(w, querylog.TinyGenConfig()).GenerateRecords(), 5)
	g := simgraph.Build(log, simgraph.DefaultConfig())
	res := community.DetectParallel(g.Discretize(20), community.DefaultOptions())
	return g, FromClustering(g, res)
}

func TestCollectionCoversAllTerms(t *testing.T) {
	g, c := buildCollection(t)
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		if _, ok := c.Lookup(g.Term(v)); !ok {
			t.Fatalf("term %q not in any domain", g.Term(v))
		}
	}
}

func TestTermsBelongToExactlyOneDomain(t *testing.T) {
	_, c := buildCollection(t)
	seen := map[string]int32{}
	for i := 0; i < c.NumDomains(); i++ {
		d := c.Domain(int32(i))
		for _, term := range d.Terms {
			if prev, dup := seen[term]; dup {
				t.Fatalf("term %q in domains %d and %d", term, prev, d.ID)
			}
			seen[term] = d.ID
		}
	}
}

func TestLookupNormalizes(t *testing.T) {
	_, c := buildCollection(t)
	d1, ok1 := c.Lookup("49ers")
	d2, ok2 := c.Lookup("  49ERS ")
	if !ok1 || !ok2 {
		t.Skip("49ers not in tiny collection")
	}
	if d1.ID != d2.ID {
		t.Error("lookup not normalization-invariant")
	}
	if _, ok := c.Lookup("no such term at all"); ok {
		t.Error("unknown term matched")
	}
}

func TestExpandExcludesQueryAndHonorsMax(t *testing.T) {
	_, c := buildCollection(t)
	terms := c.Expand("49ers", 5)
	if len(terms) > 5 {
		t.Fatalf("Expand returned %d terms, max 5", len(terms))
	}
	for _, term := range terms {
		if term == "49ers" {
			t.Error("expansion contains the query itself")
		}
	}
	if c.Expand("zzz unknown", 5) != nil {
		t.Error("expansion of unknown query should be nil")
	}
}

func TestExpansionContainsTopicSiblings(t *testing.T) {
	_, c := buildCollection(t)
	d, ok := c.Lookup("49ers")
	if !ok {
		t.Skip("49ers missing")
	}
	if d.Size() < 2 {
		t.Fatalf("49ers domain is an orphan (%d terms)", d.Size())
	}
	// The strongest sibling should be another 49ers-topic term, e.g.
	// "niners" — assert at least that one known sibling co-clusters.
	siblings := map[string]bool{}
	for _, term := range d.Terms {
		siblings[term] = true
	}
	if !siblings["niners"] && !siblings["#niners"] && !siblings["49ers draft"] {
		t.Errorf("49ers domain lacks all known siblings: %v", d.Terms)
	}
}

func TestHeadIsMostCentral(t *testing.T) {
	_, c := buildCollection(t)
	for i := 0; i < c.NumDomains(); i++ {
		d := c.Domain(int32(i))
		for j := 1; j < len(d.Weights); j++ {
			if d.Weights[j] > d.Weights[0] {
				t.Fatalf("domain %d head %q not most central", d.ID, d.Head())
			}
		}
	}
}

func TestClosestDomainsSorted(t *testing.T) {
	_, c := buildCollection(t)
	found := false
	for i := 0; i < c.NumDomains(); i++ {
		links := c.Closest(int32(i), 3)
		for j := 1; j < len(links); j++ {
			if links[j].Weight > links[j-1].Weight {
				t.Fatalf("Closest(%d) not sorted: %v", i, links)
			}
		}
		for _, l := range links {
			if l.ID == int32(i) {
				t.Fatalf("domain %d is its own neighbor", i)
			}
		}
		if len(links) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no domain has any neighbor; proximity graph empty")
	}
}

func TestSizeHistogramSums(t *testing.T) {
	_, c := buildCollection(t)
	h := c.SizeHistogram()
	if h[0]+h[1]+h[2]+h[3] != c.NumDomains() {
		t.Errorf("histogram %v does not sum to %d", h, c.NumDomains())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	_, c := buildCollection(t)
	path := filepath.Join(t.TempDir(), "domains.bin")
	n, err := c.Save(path)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("Save reported zero bytes")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != n {
		t.Errorf("Save reported %d bytes, file is %d", n, fi.Size())
	}

	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDomains() != c.NumDomains() {
		t.Fatalf("loaded %d domains, want %d", loaded.NumDomains(), c.NumDomains())
	}
	for i := 0; i < c.NumDomains(); i++ {
		a, b := c.Domain(int32(i)), loaded.Domain(int32(i))
		if a.Size() != b.Size() {
			t.Fatalf("domain %d size differs after round-trip", i)
		}
		for j := range a.Terms {
			if a.Terms[j] != b.Terms[j] || a.Weights[j] != b.Weights[j] {
				t.Fatalf("domain %d term %d differs", i, j)
			}
		}
		la, lb := c.Closest(int32(i), 100), loaded.Closest(int32(i), 100)
		if len(la) != len(lb) {
			t.Fatalf("domain %d proximity differs", i)
		}
		for j := range la {
			if la[j] != lb[j] {
				t.Fatalf("domain %d link %d differs", i, j)
			}
		}
	}
}

func TestLoadRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, []byte("not a domain file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("corrupt file loaded without error")
	}
	if _, err := Load(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("missing file loaded without error")
	}
	// Truncated valid file.
	_, c := buildCollection(t)
	good := filepath.Join(dir, "good.bin")
	if _, err := c.Save(good); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.bin")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(trunc); err == nil {
		t.Error("truncated file loaded without error")
	}
}

func TestLookupLatency(t *testing.T) {
	// Table 9 reports "Expansion < 100 ms"; our store must answer exact
	// lookups far faster than that even in a cold loop.
	_, c := buildCollection(t)
	start := time.Now()
	const n = 10000
	for i := 0; i < n; i++ {
		c.Lookup("49ers")
		c.Expand("49ers", 10)
	}
	perOp := time.Since(start) / n
	if perOp > time.Millisecond {
		t.Errorf("lookup+expand takes %v per op, want < 1ms", perOp)
	}
}

func BenchmarkLookup(b *testing.B) {
	_, c := buildCollection(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup("49ers")
	}
}

func BenchmarkExpand(b *testing.B) {
	_, c := buildCollection(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Expand("49ers", 10)
	}
}

func BenchmarkSaveLoad(b *testing.B) {
	_, c := buildCollection(b)
	path := filepath.Join(b.TempDir(), "domains.bin")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Save(path); err != nil {
			b.Fatal(err)
		}
		if _, err := Load(path); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLookupModeExactPreferred(t *testing.T) {
	_, c := buildCollection(t)
	exact, ok1 := c.LookupMode("49ers", MatchExact)
	phrase, ok2 := c.LookupMode("49ers", MatchPhrase)
	if !ok1 || !ok2 {
		t.Skip("49ers missing")
	}
	if exact.ID != phrase.ID {
		t.Error("exact term lookup differs across modes")
	}
}

func TestLookupModePhrase(t *testing.T) {
	_, c := buildCollection(t)
	// "draft" alone is not a domain term, but appears inside "49ers
	// draft"; phrase mode should find the 49ers domain.
	d, ok := c.LookupMode("draft", MatchPhrase)
	if !ok {
		t.Skip("no term contains 'draft' in tiny collection")
	}
	found := false
	for _, term := range d.Terms {
		if term == "49ers draft" || term == "nfl draft" {
			found = true
		}
	}
	if !found {
		t.Errorf("phrase match for 'draft' landed in unrelated domain: %v", d.Terms)
	}
	// Exact mode must NOT match it.
	if _, ok := c.LookupMode("draft", MatchExact); ok {
		t.Error("exact mode matched a non-term")
	}
}

func TestLookupModeANDOrderInsensitive(t *testing.T) {
	_, c := buildCollection(t)
	d1, ok1 := c.LookupMode("draft 49ers", MatchAND)
	d2, ok2 := c.LookupMode("49ers draft", MatchAND)
	if !ok1 || !ok2 {
		t.Skip("AND candidates missing")
	}
	if d1.ID != d2.ID {
		t.Error("AND match is order sensitive")
	}
	// Phrase mode requires order.
	if d, ok := c.LookupMode("draft 49ers", MatchPhrase); ok {
		for _, term := range d.Terms {
			if term == "49ers draft" {
				t.Error("phrase mode matched out-of-order tokens")
			}
		}
	}
}

func TestLookupModeUnknown(t *testing.T) {
	_, c := buildCollection(t)
	for _, mode := range []MatchMode{MatchExact, MatchPhrase, MatchAND} {
		if _, ok := c.LookupMode("zzqq never anywhere", mode); ok {
			t.Errorf("mode %v matched garbage", mode)
		}
		if _, ok := c.LookupMode("", mode); ok {
			t.Errorf("mode %v matched empty query", mode)
		}
	}
}

func TestExpandModeRelaxedFindsMore(t *testing.T) {
	_, c := buildCollection(t)
	exactHits, phraseHits := 0, 0
	probes := []string{"draft", "schedule", "49ers", "golden gate"}
	for _, q := range probes {
		if len(c.ExpandMode(q, 10, MatchExact)) > 0 {
			exactHits++
		}
		if len(c.ExpandMode(q, 10, MatchPhrase)) > 0 {
			phraseHits++
		}
	}
	if phraseHits < exactHits {
		t.Errorf("phrase mode (%d hits) weaker than exact (%d)", phraseHits, exactHits)
	}
}

func TestMatchModeString(t *testing.T) {
	if MatchExact.String() != "exact" || MatchPhrase.String() != "phrase" || MatchAND.String() != "and" {
		t.Error("bad mode names")
	}
}
