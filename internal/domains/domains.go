// Package domains holds the offline product of the e# pipeline: the
// collection of expertise domains (term communities), indexed for the
// exact-match lookup of Section 5 and persisted in a compact binary
// format. It replaces the paper's SQL Server 2014 store, whose only
// requirements are millisecond lookups and a ~100 MB footprint.
package domains

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"repro/internal/community"
	"repro/internal/simgraph"
	"repro/internal/textutil"
)

// Domain is one topic of expertise: a set of related query terms.
type Domain struct {
	// ID is the dense domain identifier.
	ID int32
	// Terms are the member query strings, sorted by descending weight
	// (the head term first).
	Terms []string
	// Weights mirror Terms: each term's total intra-domain edge weight,
	// used to order expansion terms by how central they are.
	Weights []float64
}

// Head returns the domain's most central term.
func (d *Domain) Head() string {
	if len(d.Terms) == 0 {
		return ""
	}
	return d.Terms[0]
}

// Size returns the number of member terms.
func (d *Domain) Size() int { return len(d.Terms) }

// Collection is the queryable set of domains.
type Collection struct {
	domains []Domain
	// byTerm maps every normalized member term to its domain.
	byTerm map[string]int32
	// proximity[a] lists the closest other domains of a, strongest
	// first (inter-domain similarity mass) — the data behind Figure 7.
	proximity [][]DomainLink
	// tokenIndex supports the relaxed match modes; built lazily.
	tokenOnce  sync.Once
	tokenIndex map[string][]tokenPosting
	// The canonical lookup tables below make Lookup a pure function of
	// the query's canonical token set (sorted, de-duplicated tokens), so
	// the serve layer may safely share one cache/singleflight entry
	// across reordered or duplicated spellings of the same query. Built
	// lazily like tokenIndex.
	canonOnce sync.Once
	// byCanon maps the canonical form of every member term to the
	// domain that wins that canonical class (highest intra-domain
	// weight; ties break toward the lower domain, then the more central
	// term).
	byCanon map[string]int32
	// canonLosers marks exact member terms whose canonical class
	// resolves to a different domain; Lookup routes them to the winner
	// so permuted spellings and the verbatim spelling agree.
	canonLosers map[string]bool
	// canonTerms mirrors domains[i].Terms with each term's canonical
	// form, for canonical-class exclusion during expansion.
	canonTerms [][]string
	// canonDup[i] reports whether domain i contains two member terms
	// sharing a canonical form; expansion must then exclude by
	// canonical equality rather than string identity.
	canonDup []bool
}

// DomainLink is a weighted reference to a nearby domain.
type DomainLink struct {
	ID     int32
	Weight float64
}

// FromClustering assembles a Collection from a similarity graph and a
// community detection result over its discretized form. Orphan
// communities (single terms) are kept: they still answer exact queries,
// they just contribute no expansion.
func FromClustering(g *simgraph.Graph, res *community.Result) *Collection {
	c := &Collection{
		domains: make([]Domain, res.NumCommunities),
		byTerm:  make(map[string]int32),
	}
	// Intra-domain term weights: sum of edge weights to co-members.
	intraWeight := make([]float64, g.NumVertices())
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for _, n := range g.Neighbors(v) {
			if res.Labels[v] == res.Labels[n.To] {
				intraWeight[v] += n.Weight
			}
		}
	}
	for _, members := range res.Members() {
		if len(members) == 0 {
			continue
		}
		id := res.Labels[members[0]]
		d := Domain{ID: id}
		sort.Slice(members, func(i, j int) bool {
			wi, wj := intraWeight[members[i]], intraWeight[members[j]]
			if wi != wj {
				return wi > wj
			}
			return members[i] < members[j]
		})
		for _, v := range members {
			term := g.Term(v)
			d.Terms = append(d.Terms, term)
			d.Weights = append(d.Weights, intraWeight[v])
			c.byTerm[term] = id
		}
		c.domains[id] = d
	}

	// Inter-domain proximity: accumulate cross-community edge weight
	// from both the strong (clustered) edges and the weak proximity
	// tier — the weak tier is what links a community to its Figure 7
	// neighbors after clustering separated them.
	cross := map[uint64]float64{}
	addCross := func(v, to int32, w float64) {
		a, b := res.Labels[v], res.Labels[to]
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		cross[uint64(uint32(a))<<32|uint64(uint32(b))] += w
	}
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for _, n := range g.Neighbors(v) {
			if n.To > v {
				addCross(v, n.To, n.Weight)
			}
		}
	}
	for _, e := range g.WeakEdges() {
		addCross(e.A, e.B, e.Weight)
	}
	c.proximity = make([][]DomainLink, len(c.domains))
	for k, w := range cross {
		a, b := int32(k>>32), int32(k&0xffffffff)
		c.proximity[a] = append(c.proximity[a], DomainLink{ID: b, Weight: w})
		c.proximity[b] = append(c.proximity[b], DomainLink{ID: a, Weight: w})
	}
	for i := range c.proximity {
		p := c.proximity[i]
		sort.Slice(p, func(x, y int) bool {
			if p[x].Weight != p[y].Weight {
				return p[x].Weight > p[y].Weight
			}
			return p[x].ID < p[y].ID
		})
	}
	return c
}

// NumDomains returns the number of domains.
func (c *Collection) NumDomains() int { return len(c.domains) }

// Domain returns the domain with the given ID.
func (c *Collection) Domain(id int32) *Domain { return &c.domains[id] }

// ensureCanonIndex lazily builds the canonical lookup tables. Safe for
// concurrent use; after the first call it is one atomic load.
func (c *Collection) ensureCanonIndex() {
	c.canonOnce.Do(func() {
		type winner struct {
			domain int32
			weight float64
		}
		best := map[string]winner{}
		c.canonTerms = make([][]string, len(c.domains))
		c.canonDup = make([]bool, len(c.domains))
		for i := range c.domains {
			d := &c.domains[i]
			ct := make([]string, len(d.Terms))
			seen := map[string]bool{}
			for j, t := range d.Terms {
				k := textutil.Canonical(t)
				ct[j] = k
				if seen[k] {
					c.canonDup[i] = true
				}
				seen[k] = true
				// Strict > keeps the first maximum: domains iterate in ID
				// order and Terms are weight-sorted, so ties resolve to the
				// lower domain and its most central term — deterministic.
				if w, ok := best[k]; !ok || d.Weights[j] > w.weight {
					best[k] = winner{domain: d.ID, weight: d.Weights[j]}
				}
			}
			c.canonTerms[i] = ct
		}
		c.byCanon = make(map[string]int32, len(best))
		for k, w := range best {
			c.byCanon[k] = w.domain
		}
		c.canonLosers = map[string]bool{}
		for t, id := range c.byTerm {
			if c.byCanon[textutil.Canonical(t)] != id {
				c.canonLosers[t] = true
			}
		}
	})
}

// Lookup finds the domain containing the query "exactly and in order,
// after lower-casing" (Section 5), falling back to the query's
// canonical token set when no verbatim member matches. The fallback
// makes Lookup — and therefore expansion and the whole search — a pure
// function of the canonical token set, which is what justifies the
// serve layer coalescing "rust go" onto "go rust": the tweet-matching
// predicate (AND over tokens) is itself order- and
// duplicate-insensitive, so token order only ever mattered here. When
// two member terms share a canonical form, every spelling routes to
// the one deterministic winner. The second return is false when no
// domain contains the term.
func (c *Collection) Lookup(query string) (*Domain, bool) {
	c.ensureCanonIndex()
	norm := textutil.Normalize(query)
	if id, ok := c.byTerm[norm]; ok && !c.canonLosers[norm] {
		return &c.domains[id], true
	}
	if id, ok := c.byCanon[textutil.Canonical(query)]; ok {
		return &c.domains[id], true
	}
	return nil, false
}

// Expand returns up to maxTerms related terms for the query (the other
// members of its domain, most central first), excluding the query
// itself. An empty slice means the query matched an orphan or no domain.
func (c *Collection) Expand(query string, maxTerms int) []string {
	d, ok := c.Lookup(query)
	if !ok {
		return nil
	}
	return c.expandFrom(d, query, maxTerms)
}

// expandFrom lists up to maxTerms members of d excluding every term in
// the query's canonical class (a reordered spelling of a member must
// not expand into itself).
func (c *Collection) expandFrom(d *Domain, query string, maxTerms int) []string {
	c.ensureCanonIndex()
	norm := textutil.Normalize(query)
	// Fast path: the query verbatim-matches a member of this very
	// domain and no two members share a canonical form — excluding the
	// literal member is then exactly canonical-class exclusion, with no
	// canonicalization work on the hot exact-hit path.
	if id, exact := c.byTerm[norm]; exact && id == d.ID && !c.canonDup[d.ID] && !c.canonLosers[norm] {
		out := make([]string, 0, min(maxTerms, len(d.Terms)))
		for _, t := range d.Terms {
			if t == norm {
				continue
			}
			out = append(out, t)
			if len(out) == maxTerms {
				break
			}
		}
		return out
	}
	canonQ := textutil.Canonical(query)
	ct := c.canonTerms[d.ID]
	out := make([]string, 0, min(maxTerms, len(d.Terms)))
	for i, t := range d.Terms {
		if ct[i] == canonQ {
			continue
		}
		out = append(out, t)
		if len(out) == maxTerms {
			break
		}
	}
	return out
}

// Closest returns up to k closest other domains (Figure 7's neighboring
// communities).
func (c *Collection) Closest(id int32, k int) []DomainLink {
	p := c.proximity[id]
	if len(p) > k {
		p = p[:k]
	}
	out := make([]DomainLink, len(p))
	copy(out, p)
	return out
}

// SizeHistogram buckets domain sizes as in Figure 6.
func (c *Collection) SizeHistogram() [4]int {
	var hist [4]int
	for i := range c.domains {
		switch n := c.domains[i].Size(); {
		case n <= 1:
			hist[0]++
		case n <= 10:
			hist[1]++
		case n <= 50:
			hist[2]++
		default:
			hist[3]++
		}
	}
	return hist
}

// magic identifies the on-disk format; bump the version on change.
var magic = [8]byte{'e', '#', 'd', 'o', 'm', 'v', '0', '1'}

// Save writes the collection in a compact varint-delimited binary
// format and returns the byte count written.
func (c *Collection) Save(path string) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("domains: create: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	cw := &countingWriter{w: bw}
	if err := c.encode(cw); err != nil {
		f.Close()
		return cw.n, fmt.Errorf("domains: encode: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return cw.n, err
	}
	return cw.n, f.Close()
}

// Load reads a collection written by Save.
func Load(path string) (*Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("domains: open: %w", err)
	}
	defer f.Close()
	c, err := decode(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("domains: decode %s: %w", path, err)
	}
	return c, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func (c *Collection) encode(w io.Writer) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := w.Write(buf[:n])
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := io.WriteString(w, s)
		return err
	}
	if err := writeUvarint(uint64(len(c.domains))); err != nil {
		return err
	}
	for i := range c.domains {
		d := &c.domains[i]
		if err := writeUvarint(uint64(len(d.Terms))); err != nil {
			return err
		}
		for j, t := range d.Terms {
			if err := writeString(t); err != nil {
				return err
			}
			if err := writeUvarint(math.Float64bits(d.Weights[j])); err != nil {
				return err
			}
		}
		links := c.proximity[i]
		if err := writeUvarint(uint64(len(links))); err != nil {
			return err
		}
		for _, l := range links {
			if err := writeUvarint(uint64(uint32(l.ID))); err != nil {
				return err
			}
			if err := writeUvarint(math.Float64bits(l.Weight)); err != nil {
				return err
			}
		}
	}
	return nil
}

func decode(r io.ByteReader) (*Collection, error) {
	readByte := func() (byte, error) { return r.ReadByte() }
	for _, m := range magic {
		b, err := readByte()
		if err != nil {
			return nil, err
		}
		if b != m {
			return nil, fmt.Errorf("bad magic byte %#x", b)
		}
	}
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(r) }
	readString := func() (string, error) {
		n, err := readUvarint()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("string length %d too large", n)
		}
		b := make([]byte, n)
		for i := range b {
			c, err := readByte()
			if err != nil {
				return "", err
			}
			b[i] = c
		}
		return string(b), nil
	}
	nd, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if nd > 1<<28 {
		return nil, fmt.Errorf("domain count %d too large", nd)
	}
	c := &Collection{
		domains:   make([]Domain, nd),
		byTerm:    map[string]int32{},
		proximity: make([][]DomainLink, nd),
	}
	for i := range c.domains {
		nt, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if nt > 1<<24 {
			return nil, fmt.Errorf("term count %d too large", nt)
		}
		d := Domain{ID: int32(i)}
		for j := uint64(0); j < nt; j++ {
			t, err := readString()
			if err != nil {
				return nil, err
			}
			wb, err := readUvarint()
			if err != nil {
				return nil, err
			}
			d.Terms = append(d.Terms, t)
			d.Weights = append(d.Weights, math.Float64frombits(wb))
			c.byTerm[t] = int32(i)
		}
		nl, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if nl > nd {
			return nil, fmt.Errorf("link count %d too large", nl)
		}
		for j := uint64(0); j < nl; j++ {
			idBits, err := readUvarint()
			if err != nil {
				return nil, err
			}
			wb, err := readUvarint()
			if err != nil {
				return nil, err
			}
			c.proximity[i] = append(c.proximity[i], DomainLink{
				ID:     int32(uint32(idBits)),
				Weight: math.Float64frombits(wb),
			})
		}
		c.domains[i] = d
	}
	return c, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MatchMode selects how an incoming query is matched to a domain.
// Section 5 describes the production behaviour (MatchExact) as
// "purposely conservative"; the looser modes are natural extensions
// benchmarked in the ablation suite.
type MatchMode int

const (
	// MatchExact requires the query to equal a domain term ("exactly
	// and in order, after lower-casing") — the paper's behaviour.
	MatchExact MatchMode = iota
	// MatchPhrase accepts a domain term that contains the query as a
	// contiguous token phrase ("49ers" matches the term "49ers draft").
	// Unlike the exact tier (which is canonical — see Lookup), this
	// relaxed tier stays order-sensitive by construction; it is an
	// ablation mode, not the production path.
	MatchPhrase
	// MatchAND accepts a domain term containing every query token in
	// any order.
	MatchAND
)

// String names the mode.
func (m MatchMode) String() string {
	switch m {
	case MatchExact:
		return "exact"
	case MatchPhrase:
		return "phrase"
	case MatchAND:
		return "and"
	default:
		return fmt.Sprintf("matchmode(%d)", int(m))
	}
}

// tokenPosting locates a term inside the collection.
type tokenPosting struct {
	domain int32
	term   int32 // index into the domain's Terms
}

// ensureTokenIndex lazily builds the token -> terms inverted index used
// by the relaxed match modes. Safe for concurrent use.
func (c *Collection) ensureTokenIndex() {
	c.tokenOnce.Do(func() {
		c.tokenIndex = map[string][]tokenPosting{}
		for d := range c.domains {
			for ti, term := range c.domains[d].Terms {
				seen := map[string]bool{}
				for _, tok := range textutil.Tokenize(term) {
					if seen[tok] {
						continue
					}
					seen[tok] = true
					c.tokenIndex[tok] = append(c.tokenIndex[tok],
						tokenPosting{domain: int32(d), term: int32(ti)})
				}
			}
		}
	})
}

// LookupMode finds the domain for a query under the given match mode.
// Exact matches always win; under the relaxed modes, ties between
// several containing terms break toward the term with the highest
// intra-domain weight (the most central match). MatchPhrase is the one
// mode whose exact tier stays verbatim (no canonical token-set
// fallback): the phrase ablation is order-sensitive by definition, and
// a pinned test holds it to that.
func (c *Collection) LookupMode(query string, mode MatchMode) (*Domain, bool) {
	if mode == MatchPhrase {
		if id, ok := c.byTerm[textutil.Normalize(query)]; ok {
			return &c.domains[id], true
		}
	} else if d, ok := c.Lookup(query); ok {
		return d, true
	}
	if mode == MatchExact {
		return nil, false
	}
	c.ensureTokenIndex()
	qTokens := textutil.Tokenize(query)
	if len(qTokens) == 0 {
		return nil, false
	}
	// Candidate terms must contain the rarest query token.
	rarest := qTokens[0]
	for _, tok := range qTokens[1:] {
		if len(c.tokenIndex[tok]) < len(c.tokenIndex[rarest]) {
			rarest = tok
		}
	}
	var (
		best       tokenPosting
		bestWeight = -1.0
	)
	for _, p := range c.tokenIndex[rarest] {
		term := c.domains[p.domain].Terms[p.term]
		tTokens := textutil.Tokenize(term)
		switch mode {
		case MatchPhrase:
			if !textutil.ContainsPhrase(tTokens, qTokens) {
				continue
			}
		case MatchAND:
			if !textutil.ContainsAll(tTokens, qTokens) {
				continue
			}
		}
		w := c.domains[p.domain].Weights[p.term]
		if w > bestWeight {
			best, bestWeight = p, w
		}
	}
	if bestWeight < 0 {
		return nil, false
	}
	return &c.domains[best.domain], true
}

// ExpandMode is Expand under an arbitrary match mode.
func (c *Collection) ExpandMode(query string, maxTerms int, mode MatchMode) []string {
	d, ok := c.LookupMode(query, mode)
	if !ok {
		return nil
	}
	return c.expandFrom(d, query, maxTerms)
}
