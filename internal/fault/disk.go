package fault

import (
	"sync"
	"sync/atomic"

	"repro/internal/diskseg"
)

// DiskIO wraps a diskseg.IO with scriptable file-level faults, the
// third seam of the chaos harness: the storage tier. It can refuse
// opens (disk gone), fail the map (mmap exhaustion), truncate the file
// mid-section (a crash between write and sync) or flip a byte (bit
// rot) — all without touching a real disk fault. Truncation and
// corruption apply to every file opened while armed; the view each
// reader gets is a private copy, so arming faults never disturbs files
// already mapped. Safe for concurrent use.
type DiskIO struct {
	inner diskseg.IO

	mu       sync.Mutex
	openErr  error
	mmapErr  error
	truncate int // cap the visible file to n bytes; <0 = off
	corrupt  int // XOR the byte at this offset; <0 = off

	opens atomic.Int64
}

// NewDiskIO returns the production diskseg.OS behind a fault gate with
// no faults armed.
func NewDiskIO() *DiskIO { return WrapDiskIO(diskseg.OS{}) }

// WrapDiskIO returns io behind a fault gate with no faults armed.
func WrapDiskIO(io diskseg.IO) *DiskIO {
	return &DiskIO{inner: io, truncate: -1, corrupt: -1}
}

// FailOpens makes every future Open fail with err (ErrKilled when err
// is nil); Heal undoes it.
func (d *DiskIO) FailOpens(err error) {
	if err == nil {
		err = ErrKilled
	}
	d.mu.Lock()
	d.openErr = err
	d.mu.Unlock()
}

// FailMmaps makes the map step of every future open fail with err
// (ErrKilled when err is nil); Heal undoes it.
func (d *DiskIO) FailMmaps(err error) {
	if err == nil {
		err = ErrKilled
	}
	d.mu.Lock()
	d.mmapErr = err
	d.mu.Unlock()
}

// TruncateTo caps every file opened from now on at n visible bytes —
// the short read of a crash between write and sync (negative n
// disarms).
func (d *DiskIO) TruncateTo(n int) {
	d.mu.Lock()
	d.truncate = n
	d.mu.Unlock()
}

// CorruptByte flips the byte at offset off in every file opened from
// now on (negative off disarms). The flip lands in the reader's
// private copy, never the real file.
func (d *DiskIO) CorruptByte(off int) {
	d.mu.Lock()
	d.corrupt = off
	d.mu.Unlock()
}

// Heal disarms every fault.
func (d *DiskIO) Heal() {
	d.mu.Lock()
	d.openErr, d.mmapErr, d.truncate, d.corrupt = nil, nil, -1, -1
	d.mu.Unlock()
}

// Opens returns how many opens were admitted past the gate.
func (d *DiskIO) Opens() int64 { return d.opens.Load() }

// Open implements diskseg.IO under the armed faults.
func (d *DiskIO) Open(path string) (diskseg.File, error) {
	d.mu.Lock()
	openErr, mmapErr, truncate, corrupt := d.openErr, d.mmapErr, d.truncate, d.corrupt
	d.mu.Unlock()
	if openErr != nil {
		return nil, openErr
	}
	f, err := d.inner.Open(path)
	if err != nil {
		return nil, err
	}
	d.opens.Add(1)
	return &diskFile{inner: f, mmapErr: mmapErr, truncate: truncate, corrupt: corrupt}, nil
}

// diskFile is one opened file under the faults armed at open time.
type diskFile struct {
	inner    diskseg.File
	mmapErr  error
	truncate int
	corrupt  int
	copied   []byte
}

// Size implements diskseg.File, reporting the truncated length when a
// truncation is armed.
func (f *diskFile) Size() (int64, error) {
	n, err := f.inner.Size()
	if err != nil {
		return 0, err
	}
	if f.truncate >= 0 && int64(f.truncate) < n {
		n = int64(f.truncate)
	}
	return n, nil
}

// Mmap implements diskseg.File. Truncation and corruption are applied
// to a private heap copy — the underlying map is read-only and shared.
func (f *diskFile) Mmap() ([]byte, error) {
	if f.mmapErr != nil {
		return nil, f.mmapErr
	}
	b, err := f.inner.Mmap()
	if err != nil {
		return nil, err
	}
	if f.truncate < 0 && f.corrupt < 0 {
		return b, nil
	}
	if f.copied == nil {
		if f.truncate >= 0 && f.truncate < len(b) {
			b = b[:f.truncate]
		}
		f.copied = append([]byte(nil), b...)
		if f.corrupt >= 0 && f.corrupt < len(f.copied) {
			f.copied[f.corrupt] ^= 0xff
		}
	}
	return f.copied, nil
}

// Close implements diskseg.File.
func (f *diskFile) Close() error {
	f.copied = nil
	return f.inner.Close()
}
